package dense

import (
	"sync"

	"spstream/internal/parallel"
)

// The products below cover the shapes CP-stream needs:
//
//   MulAB   C = A·B        (I×K)·(K×K) → I×K   factor × Gram transform
//   MulAtB  C = Aᵀ·B       (I×K)ᵀ·(I×K) → K×K  cross-Gram H = A_{t-1}ᵀA
//   MulABt  C = A·Bᵀ       (I×K)·(K×K)ᵀ → I×K  solve against Cholesky out
//   Gram    C = Aᵀ·A       (I×K) → K×K         SYRK-style symmetric Gram
//
// The long dimension (rows of A) is blocked and parallelized; the K×K
// inner kernels stay dense and sequential. Serial entry points run the
// row kernels directly; parallel ones dispatch ctx-style through the
// persistent default pool with argument blocks drawn from a free list,
// so steady-state calls allocate nothing either way.

// gemmArgs carries one parallel product's operands through the pool
// without a closure. Recycled via a free list.
type gemmArgs struct {
	dst, a, b *Matrix
}

var gemmArgsPool struct {
	sync.Mutex
	free []*gemmArgs
}

func getGemmArgs(dst, a, b *Matrix) *gemmArgs {
	gemmArgsPool.Lock()
	var g *gemmArgs
	if n := len(gemmArgsPool.free); n > 0 {
		g = gemmArgsPool.free[n-1]
		gemmArgsPool.free = gemmArgsPool.free[:n-1]
		gemmArgsPool.Unlock()
	} else {
		gemmArgsPool.Unlock()
		g = new(gemmArgs)
	}
	g.dst, g.a, g.b = dst, a, b
	return g
}

func putGemmArgs(g *gemmArgs) {
	g.dst, g.a, g.b = nil, nil, nil
	gemmArgsPool.Lock()
	gemmArgsPool.free = append(gemmArgsPool.free, g)
	gemmArgsPool.Unlock()
}

// MulAB computes dst = a·b where a is m×k and b is k×n. dst must be m×n
// and must not alias a or b.
func MulAB(dst, a, b *Matrix) {
	checkMulAB(dst, a, b)
	mulABRange(dst, a, b, 0, a.Rows)
}

func checkMulAB(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("dense: MulAB shape mismatch")
	}
}

func mulABRange(dst, a, b *Matrix, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		ra := a.Row(i)
		rd := dst.Row(i)
		for j := range rd {
			rd[j] = 0
		}
		// k-outer loop: stream rows of b, accumulate into rd.
		for kk, av := range ra {
			if av == 0 {
				continue
			}
			rb := b.Data[kk*b.Stride : kk*b.Stride+n]
			for j, bv := range rb {
				rd[j] += av * bv
			}
		}
	}
}

func mulABBody(ctx any, _ int, r parallel.Range) {
	g := ctx.(*gemmArgs)
	mulABRange(g.dst, g.a, g.b, r.Lo, r.Hi)
}

// MulABParallel is MulAB with the row dimension parallelized over the
// given number of workers.
func MulABParallel(dst, a, b *Matrix, workers int) {
	checkMulAB(dst, a, b)
	if workers == 1 || a.Rows <= 1 {
		mulABRange(dst, a, b, 0, a.Rows)
		return
	}
	g := getGemmArgs(dst, a, b)
	parallel.Default().Do(a.Rows, workers, g, mulABBody)
	putGemmArgs(g)
}

// MulAtB computes dst = aᵀ·b where a is m×ka and b is m×kb; dst must be
// ka×kb and must not alias a or b.
func MulAtB(dst, a, b *Matrix) {
	checkMulAtB(dst, a, b)
	dst.Zero()
	mulAtBRange(dst, a, b, 0, a.Rows)
}

func checkMulAtB(dst, a, b *Matrix) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("dense: MulAtB shape mismatch")
	}
}

func mulAtBBody(ctx any, _ int, r parallel.Range, acc []float64) {
	g := ctx.(*gemmArgs)
	kb := g.b.Cols
	for i := r.Lo; i < r.Hi; i++ {
		ra, rb := g.a.Row(i), g.b.Row(i)
		for p, av := range ra {
			if av == 0 {
				continue
			}
			row := acc[p*kb : p*kb+kb]
			for q, bv := range rb {
				row[q] += av * bv
			}
		}
	}
}

// MulAtBParallel is MulAtB parallelized over the shared row dimension
// with per-worker partial accumulators reduced in worker order
// (deterministic for a fixed worker count).
func MulAtBParallel(dst, a, b *Matrix, workers int) {
	checkMulAtB(dst, a, b)
	if workers == 1 || a.Rows <= 1 || dst.Stride != dst.Cols {
		dst.Zero()
		mulAtBRange(dst, a, b, 0, a.Rows)
		return
	}
	g := getGemmArgs(dst, a, b)
	parallel.Default().DoReduceVecInto(dst.Data[:dst.Rows*dst.Cols], a.Rows, workers, g, mulAtBBody)
	putGemmArgs(g)
}

// mulAtBRange accumulates aᵀb over rows [lo,hi) into dst (+=).
func mulAtBRange(dst, a, b *Matrix, lo, hi int) {
	kb := b.Cols
	for i := lo; i < hi; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for p, av := range ra {
			if av == 0 {
				continue
			}
			rd := dst.Data[p*dst.Stride : p*dst.Stride+kb]
			for q, bv := range rb {
				rd[q] += av * bv
			}
		}
	}
}

// MulABt computes dst = a·bᵀ where a is m×k and b is n×k; dst must be m×n
// and must not alias a or b.
func MulABt(dst, a, b *Matrix) {
	checkMulABt(dst, a, b)
	mulABtRange(dst, a, b, 0, a.Rows)
}

func checkMulABt(dst, a, b *Matrix) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("dense: MulABt shape mismatch")
	}
}

func mulABtRange(dst, a, b *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		ra := a.Row(i)
		rd := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			rb := b.Row(j)
			sum := 0.0
			for p, av := range ra {
				sum += av * rb[p]
			}
			rd[j] = sum
		}
	}
}

func mulABtBody(ctx any, _ int, r parallel.Range) {
	g := ctx.(*gemmArgs)
	mulABtRange(g.dst, g.a, g.b, r.Lo, r.Hi)
}

// MulABtParallel is MulABt with the row dimension parallelized.
func MulABtParallel(dst, a, b *Matrix, workers int) {
	checkMulABt(dst, a, b)
	if workers == 1 || a.Rows <= 1 {
		mulABtRange(dst, a, b, 0, a.Rows)
		return
	}
	g := getGemmArgs(dst, a, b)
	parallel.Default().Do(a.Rows, workers, g, mulABtBody)
	putGemmArgs(g)
}

// Gram computes dst = aᵀ·a (K×K symmetric) exploiting symmetry: only the
// upper triangle is accumulated, then mirrored.
func Gram(dst, a *Matrix) { GramParallel(dst, a, 1) }

// gramRange accumulates the upper triangle of aᵀa over rows [lo,hi) into
// a flat k×k accumulator (row-major, stride k).
func gramRange(acc []float64, a *Matrix, lo, hi int) {
	k := a.Cols
	for i := lo; i < hi; i++ {
		row := a.Row(i)
		for x, vx := range row {
			if vx == 0 {
				continue
			}
			off := x * k
			for y := x; y < k; y++ {
				acc[off+y] += vx * row[y]
			}
		}
	}
}

func gramBody(ctx any, _ int, r parallel.Range, acc []float64) {
	g := ctx.(*gemmArgs)
	gramRange(acc, g.a, r.Lo, r.Hi)
}

// GramParallel is Gram with the row dimension parallelized via
// deterministic per-worker partials summed in worker order.
func GramParallel(dst, a *Matrix, workers int) {
	if dst.Rows != a.Cols || dst.Cols != a.Cols {
		panic("dense: Gram shape mismatch")
	}
	k := a.Cols
	if workers == 1 || a.Rows <= 1 || dst.Stride != dst.Cols {
		dst.Zero()
		// Accumulate the upper triangle directly into dst row views.
		for i := 0; i < a.Rows; i++ {
			row := a.Row(i)
			for x, vx := range row {
				if vx == 0 {
					continue
				}
				rd := dst.Data[x*dst.Stride : x*dst.Stride+k]
				for y := x; y < k; y++ {
					rd[y] += vx * row[y]
				}
			}
		}
	} else {
		g := getGemmArgs(dst, a, nil)
		parallel.Default().DoReduceVecInto(dst.Data[:k*k], a.Rows, workers, g, gramBody)
		putGemmArgs(g)
	}
	// Mirror the upper triangle to the lower.
	for x := 0; x < k; x++ {
		for y := x + 1; y < k; y++ {
			dst.Data[y*dst.Stride+x] = dst.Data[x*dst.Stride+y]
		}
	}
}

// OuterProduct computes dst = u·vᵀ for vectors u (len m) and v (len n);
// dst must be m×n.
func OuterProduct(dst *Matrix, u, v []float64) {
	if dst.Rows != len(u) || dst.Cols != len(v) {
		panic("dense: OuterProduct shape mismatch")
	}
	for i, uv := range u {
		row := dst.Row(i)
		for j, vv := range v {
			row[j] = uv * vv
		}
	}
}

// MulVec computes dst = a·x for a m×k matrix and length-k vector.
func MulVec(dst []float64, a *Matrix, x []float64) {
	if len(dst) != a.Rows || len(x) != a.Cols {
		panic("dense: MulVec shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		sum := 0.0
		for j, v := range row {
			sum += v * x[j]
		}
		dst[i] = sum
	}
}

// MulVecT computes dst = aᵀ·x for a m×k matrix and length-m vector x;
// dst has length k.
func MulVecT(dst []float64, a *Matrix, x []float64) {
	if len(dst) != a.Cols || len(x) != a.Rows {
		panic("dense: MulVecT shape mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			dst[j] += xi * v
		}
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(u, v []float64) float64 {
	if len(u) != len(v) {
		panic("dense: Dot length mismatch")
	}
	sum := 0.0
	for i, x := range u {
		sum += x * v[i]
	}
	return sum
}
