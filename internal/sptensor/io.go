package sptensor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"spstream/internal/resilience"
)

// ReadTNS parses the FROSTT ".tns" text format: one nonzero per line as
// whitespace-separated 1-based coordinates followed by the value. Blank
// lines and lines starting with '#' are skipped. Mode lengths are
// inferred as the maximum coordinate seen per mode unless dims is
// non-nil, in which case coordinates are validated against it.
func ReadTNS(r io.Reader, dims []int) (*Tensor, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var t *Tensor
	var maxIdx []int32
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("sptensor: line %d: need at least one coordinate and a value", lineNo)
		}
		nModes := len(fields) - 1
		if t == nil {
			if dims != nil {
				if len(dims) != nModes {
					return nil, fmt.Errorf("sptensor: line %d: %d coordinates but %d dims given", lineNo, nModes, len(dims))
				}
				t = New(dims...)
			} else {
				t = New(make([]int, nModes)...)
			}
			maxIdx = make([]int32, nModes)
		} else if nModes != t.NModes() {
			return nil, fmt.Errorf("sptensor: line %d: %d coordinates, expected %d", lineNo, nModes, t.NModes())
		}
		coord := make([]int32, nModes)
		for m := 0; m < nModes; m++ {
			v, err := strconv.ParseInt(fields[m], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("sptensor: line %d: bad coordinate %q: %v", lineNo, fields[m], err)
			}
			if v < 1 {
				return nil, fmt.Errorf("sptensor: line %d: coordinate %d is not 1-based", lineNo, v)
			}
			coord[m] = int32(v - 1)
			if dims != nil && int(coord[m]) >= dims[m] {
				return nil, fmt.Errorf("sptensor: line %d: coordinate %d exceeds dim %d of mode %d", lineNo, v, dims[m], m)
			}
			if coord[m] > maxIdx[m] {
				maxIdx[m] = coord[m]
			}
		}
		val, err := strconv.ParseFloat(fields[nModes], 64)
		if err != nil {
			return nil, fmt.Errorf("sptensor: line %d: bad value %q: %v", lineNo, fields[nModes], err)
		}
		if math.IsNaN(val) || math.IsInf(val, 0) {
			return nil, fmt.Errorf("sptensor: line %d: non-finite value %v", lineNo, val)
		}
		t.Append(coord, val)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sptensor: reading tns: %w", err)
	}
	if t == nil {
		return nil, fmt.Errorf("sptensor: empty tns input")
	}
	if dims == nil {
		for m := range t.Dims {
			t.Dims[m] = int(maxIdx[m]) + 1
		}
	}
	return t, nil
}

// WriteTNS writes the tensor in FROSTT text format (1-based coordinates).
func WriteTNS(w io.Writer, t *Tensor) error {
	bw := bufio.NewWriter(w)
	for e := 0; e < t.NNZ(); e++ {
		for m := range t.Inds {
			if _, err := fmt.Fprintf(bw, "%d ", t.Inds[m][e]+1); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, "%g\n", t.Vals[e]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTNSFile reads a .tns file from disk.
func ReadTNSFile(path string) (*Tensor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTNS(f, nil)
}

// WriteTNSFile writes a .tns file to disk atomically (temp file +
// fsync + rename), so an interrupted write never leaves a torn file.
func WriteTNSFile(path string, t *Tensor) error {
	return resilience.AtomicWriteFile(path, func(w io.Writer) error {
		return WriteTNS(w, t)
	})
}

// binMagic identifies the binary tensor container.
var binMagic = [4]byte{'S', 'P', 'T', '1'}

// WriteBinary serializes the tensor in a compact little-endian binary
// format (magic, #modes, dims, nnz, index columns, values). The binary
// path exists because text parsing dominates load time for multi-million
// nonzero tensors.
func WriteBinary(w io.Writer, t *Tensor) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binMagic[:]); err != nil {
		return err
	}
	header := make([]uint64, 0, 2+len(t.Dims))
	header = append(header, uint64(t.NModes()))
	for _, d := range t.Dims {
		header = append(header, uint64(d))
	}
	header = append(header, uint64(t.NNZ()))
	for _, h := range header {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	for m := range t.Inds {
		if err := binary.Write(bw, binary.LittleEndian, t.Inds[m]); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, t.Vals); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserializes a tensor written by WriteBinary.
func ReadBinary(r io.Reader) (*Tensor, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("sptensor: reading magic: %w", err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("sptensor: bad magic %q", magic)
	}
	var nModes uint64
	if err := binary.Read(br, binary.LittleEndian, &nModes); err != nil {
		return nil, err
	}
	if nModes == 0 || nModes > 16 {
		return nil, fmt.Errorf("sptensor: implausible mode count %d", nModes)
	}
	dims := make([]int, nModes)
	for m := range dims {
		var d uint64
		if err := binary.Read(br, binary.LittleEndian, &d); err != nil {
			return nil, err
		}
		if d > math.MaxInt32 {
			return nil, fmt.Errorf("sptensor: dim %d overflows int32", d)
		}
		dims[m] = int(d)
	}
	var nnz uint64
	if err := binary.Read(br, binary.LittleEndian, &nnz); err != nil {
		return nil, err
	}
	if nnz > math.MaxInt32 {
		return nil, fmt.Errorf("sptensor: implausible nonzero count %d", nnz)
	}
	// Read in bounded chunks so a corrupt header claiming a huge count
	// fails at EOF after a small allocation instead of attempting a
	// multi-gigabyte make().
	t := New(dims...)
	for m := range t.Inds {
		col, err := readInt32Chunked(br, int(nnz))
		if err != nil {
			return nil, err
		}
		t.Inds[m] = col
	}
	vals, err := readFloat64Chunked(br, int(nnz))
	if err != nil {
		return nil, err
	}
	t.Vals = vals
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// readChunk is the element budget per incremental read (1 MiB of int32).
const readChunk = 1 << 18

func readInt32Chunked(r io.Reader, n int) ([]int32, error) {
	out := make([]int32, 0, min(n, readChunk))
	for len(out) < n {
		c := n - len(out)
		if c > readChunk {
			c = readChunk
		}
		buf := make([]int32, c)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
	}
	return out, nil
}

func readFloat64Chunked(r io.Reader, n int) ([]float64, error) {
	out := make([]float64, 0, min(n, readChunk))
	for len(out) < n {
		c := n - len(out)
		if c > readChunk {
			c = readChunk
		}
		buf := make([]float64, c)
		if err := binary.Read(r, binary.LittleEndian, buf); err != nil {
			return nil, err
		}
		out = append(out, buf...)
	}
	return out, nil
}
