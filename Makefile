# spstream — build, test and reproduction targets.

GO ?= go

# Build identification stamped into every binary (internal/version).
VERSION   ?= $(shell git describe --tags --always --dirty 2>/dev/null || echo dev)
COMMIT    ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)
BUILDDATE ?= $(shell date -u +%Y-%m-%dT%H:%M:%SZ)
LDFLAGS   = -ldflags "-X spstream/internal/version.Version=$(VERSION) \
	-X spstream/internal/version.Commit=$(COMMIT) \
	-X spstream/internal/version.BuildDate=$(BUILDDATE)"

.PHONY: all build test race cover bench bench-skew bench-compare benchcmp bench-go bench-ooc threshold lint repro repro-measure fuzz e2e wal-chaos cluster-chaos clean

all: build test

build:
	$(GO) build $(LDFLAGS) ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Reproducible benchmark pipeline: MTTKRP kernel grid (lock / plan /
# CSF, ns/op + B/op + allocs/op + effective GFLOP/s, worker sweep up to
# GOMAXPROCS) and end-to-end slices under each kernel + layout policy,
# written to BENCH_PR10.json and compared against the previous committed
# baseline, then the out-of-core flat-memory records are appended (the
# ooc experiment preserves the bench records already in the file).
# BENCH_BASE resolves to the newest committed BENCH_PR*.json;
# `make bench-compare` diffs a fresh run against it (advisory: warns
# past 10%, never fails).
BENCH_BASE ?= $(shell ls BENCH_PR*.json 2>/dev/null | sort -V | tail -1)

bench:
	$(GO) run ./cmd/paperbench -exp bench -benchjson BENCH_PR10.json -compare BENCH_PR6.json
	$(GO) run ./cmd/paperbench -exp ooc -benchjson BENCH_PR10.json

# Out-of-core acceptance gate: stream a slice grown to 100× nonzeros
# under a fixed -mem-budget and HARD-fail if the sampled heap
# high-water exceeds 1.25× the budget (plus an advisory streamed/
# in-memory throughput ratio on the 1× config). Fresh results land in
# bench_ooc_fresh.json; the compare against the committed baseline is
# advisory.
bench-ooc:
	$(GO) run ./cmd/paperbench -exp ooc -benchjson bench_ooc_fresh.json -compare $(BENCH_BASE)

bench-compare:
	$(GO) run ./cmd/paperbench -exp bench -benchjson bench_fresh.json -compare $(BENCH_BASE)

# Just the layout-sensitive configs (skewed + dupheavy): the quick
# check that hot-row remapping still pays off on this host.
bench-skew:
	$(GO) run ./cmd/paperbench -exp bench -benchconfigs dupheavy,skewed

# Per-config speedup table between two committed bench files:
#   make benchcmp OLD=BENCH_PR5.json NEW=BENCH_PR6.json
OLD ?= BENCH_PR5.json
NEW ?= BENCH_PR6.json
benchcmp:
	$(GO) run ./cmd/paperbench -exp benchcmp -old $(OLD) -new $(NEW)

# Raw go test micro-benchmarks across all packages.
bench-go:
	$(GO) test -bench=. -benchmem ./...

# Short-mode threshold calibration sweep (mttkrp.DefaultShortModeThreshold).
threshold:
	$(GO) run ./cmd/paperbench -exp threshold

# Static analysis beyond vet. The extra tools are optional locally (CI
# installs them); absent tools are skipped, not failed.
lint:
	$(GO) vet ./...
	@command -v staticcheck >/dev/null 2>&1 && staticcheck ./... || echo "staticcheck not installed; skipping"
	@command -v govulncheck >/dev/null 2>&1 && govulncheck ./... || echo "govulncheck not installed; skipping"

# Regenerate every table and figure of the paper (model mode) plus the
# machine-readable CSV series under docs/csv/.
repro:
	$(GO) run ./cmd/paperbench -exp all -csv docs/csv | tee docs/paperbench_model.txt

# Measure the real kernels on this host (worker sweep up to GOMAXPROCS).
repro-measure:
	$(GO) run ./cmd/paperbench -exp all -mode measure -scale 0.1 -slices 2 | tee docs/paperbench_measure.txt

# End-to-end smoke of the serving daemon: builds cmd/spstreamd, runs it
# through overload (429), breaker-open (503), SIGTERM drain/checkpoint
# and resume phases over real HTTP, all under the race detector.
e2e:
	$(GO) test -race -run 'TestE2E' -v ./cmd/spstreamd/

# Durable-backlog chaos: disk faults (short writes, failed fsyncs, torn
# records, ENOSPC) against the spill WAL, exact accounting under
# concurrent producers, and the SIGKILL-and-replay e2e — all under the
# race detector.
wal-chaos:
	$(GO) test -race -run 'TestSpill|TestShortWrite|TestFailedSync|TestTorn|TestENOSPC' -v ./internal/ingest/ ./internal/resilience/faultinject/
	$(GO) test -race ./internal/ingest/wal/
	$(GO) test -race -run 'TestWALSIGKILLReplay' -v ./cmd/spstreamd/

# Sharded-cluster chaos: real binaries, 3 shards behind the gateway,
# SIGKILL one mid-stream, assert degraded-but-available reads (partial
# merges with exact missing row ranges), restart the shard (WAL +
# checkpoint replay) and prove the merged model is bit-identical to an
# uncrashed single-node control — all under the race detector.
cluster-chaos:
	$(GO) test -race -run 'TestClusterChaos' -v ./cmd/spstream-gateway/
	$(GO) test -race ./internal/cluster/ ./internal/serve/httpx/

fuzz:
	$(GO) test -fuzz FuzzReadTNS -fuzztime 30s ./internal/sptensor/
	$(GO) test -fuzz FuzzReadBinary -fuzztime 30s ./internal/sptensor/
	$(GO) test -fuzz FuzzCoalesce -fuzztime 30s ./internal/sptensor/
	$(GO) test -fuzz FuzzBlockReader -fuzztime 30s ./internal/sptensor/ooc/
	$(GO) test -fuzz FuzzParseEvent -fuzztime 30s ./cmd/watch/
	$(GO) test -fuzz FuzzWALRecord -fuzztime 30s ./internal/ingest/wal/
	$(GO) test -fuzz FuzzWALSegment -fuzztime 30s ./internal/ingest/wal/

clean:
	$(GO) clean -testcache -fuzzcache
