package cluster

import (
	"fmt"

	"spstream/internal/sptensor"
)

// Router deterministically assigns events to shards by the mode-0
// coordinate (the first non-streaming mode) over contiguous row
// blocks: shard s of n owns rows [⌊s·d/n⌋, ⌊(s+1)·d/n⌋) of mode 0,
// where d = dims[0]. Contiguous blocks are the communication-minimal
// partition for MTTKRP-style access (Ballard/Rouse/Knight), and they
// make the factor merge a concatenation and the Gram merge a K×K sum.
//
// The assignment is pure integer arithmetic on (row, d, n) — no seeds,
// no maps, no floating point — so it is stable across process
// restarts, hosts, and Go versions: the same event always lands on the
// same shard, which is what lets a restarted shard's WAL replay meet
// the gateway's redelivered backlog without reshuffling rows.
type Router struct {
	dims []int
	n    int
}

// NewRouter builds a router for n shards over tensors of the given
// mode lengths.
func NewRouter(dims []int, n int) (*Router, error) {
	if len(dims) < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 modes, got %d", len(dims))
	}
	for m, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("cluster: bad dim %d for mode %d", d, m)
		}
	}
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 shard, got %d", n)
	}
	return &Router{dims: append([]int(nil), dims...), n: n}, nil
}

// Shards returns the shard count n.
func (r *Router) Shards() int { return r.n }

// Dims returns a copy of the mode lengths.
func (r *Router) Dims() []int { return append([]int(nil), r.dims...) }

// Block returns the contiguous mode-0 row range [lo, hi) owned by
// shard s (0-based, half-open). Blocks tile [0, dims[0]) in shard
// order with no gaps or overlaps; when dims[0] < n some blocks are
// empty (lo == hi).
func (r *Router) Block(s int) (lo, hi int) {
	d := r.dims[0]
	return s * d / r.n, (s + 1) * d / r.n
}

// ShardForRow returns the shard owning mode-0 row i — the exact
// inverse of Block: the unique s with Block(s).lo ≤ i < Block(s).hi.
func (r *Router) ShardForRow(i int) int {
	return ((i+1)*r.n - 1) / r.dims[0]
}

// ShardFor validates ev against the router's dims (coordinate count
// and per-mode bounds) and returns its owning shard.
func (r *Router) ShardFor(ev sptensor.Event) (int, error) {
	if len(ev.Coord) != len(r.dims) {
		return 0, fmt.Errorf("cluster: want %d coordinates, got %d", len(r.dims), len(ev.Coord))
	}
	for m, c := range ev.Coord {
		if c < 0 || int(c) >= r.dims[m] {
			return 0, fmt.Errorf("cluster: coordinate %d out of range for mode %d (dim %d)", c, m, r.dims[m])
		}
	}
	return r.ShardForRow(int(ev.Coord[0])), nil
}

// Partition buckets events by owning shard, preserving order within
// each bucket. It is all-or-nothing: any event that fails validation
// aborts the whole partition with zero batches, so a malformed batch
// can never be half-forwarded — accepted by some shards and rejected
// by the validation here after others already saw their share.
func (r *Router) Partition(events []sptensor.Event) ([][]sptensor.Event, error) {
	batches := make([][]sptensor.Event, r.n)
	for i, ev := range events {
		s, err := r.ShardFor(ev)
		if err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		batches[s] = append(batches[s], ev)
	}
	return batches, nil
}
