package sptensor

import (
	"math"
	"sync/atomic"
	"time"
)

// ChannelSource adapts a Go channel of slices to the SliceSource
// interface, for live ingestion pipelines: one or more producer
// goroutines build slices (e.g. by windowing incoming events) and the
// decomposer consumes them with ProcessStream. Closing the channel ends
// the stream.
//
// Slices arriving from a live producer are untrusted: Next drops any
// slice whose shape does not match the declared dims or whose
// coordinates are out of range (either would panic inside the compute
// kernels) and counts the drop in Rejected. Value-level validation
// (NaN/Inf) is the resilience layer's input scan, not the source's —
// the source only guarantees structural safety.
//
// Next must be called from a single consumer, but Rejected may be
// polled concurrently (e.g. by a stats reporter) while producers feed
// the channel.
type ChannelSource struct {
	dims     []int
	ch       <-chan *Tensor
	rejected atomic.Int64
}

// NewChannelSource wraps a channel of slices with the given mode
// lengths.
func NewChannelSource(dims []int, ch <-chan *Tensor) *ChannelSource {
	return &ChannelSource{dims: append([]int(nil), dims...), ch: ch}
}

// Dims implements SliceSource.
func (c *ChannelSource) Dims() []int { return c.dims }

// Rejected returns how many structurally invalid slices Next has
// dropped so far. Safe to call concurrently with Next and producers.
func (c *ChannelSource) Rejected() int { return int(c.rejected.Load()) }

// Next implements SliceSource; it blocks until a structurally valid
// slice arrives or the channel closes (returning nil). Invalid slices
// are dropped and counted.
func (c *ChannelSource) Next() *Tensor {
	for {
		x, ok := <-c.ch
		if !ok {
			return nil
		}
		if !c.valid(x) {
			c.rejected.Add(1)
			continue
		}
		return x
	}
}

func (c *ChannelSource) valid(x *Tensor) bool {
	if x == nil || x.NModes() != len(c.dims) {
		return false
	}
	for m, dim := range x.Dims {
		if dim != c.dims[m] {
			return false
		}
	}
	return x.Validate() == nil
}

// Event is one timestamped nonzero for the window accumulator.
type Event struct {
	// Coord holds one index per (non-streaming) mode.
	Coord []int32
	Value float64
}

// WindowAccumulator groups events into windows and emits one coalesced
// slice per window — the standard way to turn an event feed (log lines,
// messages, flows) into a tensor stream. A window closes when it
// reaches WindowEvents events, or — when WindowTimeout is set — when
// the wall-clock age of its first event exceeds the timeout, so sparse
// feeds cannot stall a window open indefinitely.
//
// Events are untrusted input: an out-of-range or wrong-arity
// coordinate would panic inside the compute kernels, and a non-finite
// value would poison every factor. Add drops such events and counts
// them in Rejected instead of admitting them to the window.
//
// The accumulator is single-goroutine (the producer's); the window
// size may be changed between events with SetWindowEvents, which the
// overload degradation ladder uses to widen windows under load.
type WindowAccumulator struct {
	dims     []int
	current  *Tensor
	count    int
	rejected int
	started  time.Time // admission time of the window's first event
	now      func() time.Time
	// WindowEvents is the number of events per emitted slice.
	WindowEvents int
	// WindowTimeout, when positive, closes a non-empty window whose
	// first event is older than the timeout, even if WindowEvents has
	// not been reached. The check runs inside Add and Poll.
	WindowTimeout time.Duration
}

// NewWindowAccumulator creates an accumulator emitting a slice every
// windowEvents events.
func NewWindowAccumulator(dims []int, windowEvents int) *WindowAccumulator {
	if windowEvents < 1 {
		windowEvents = 1
	}
	w := &WindowAccumulator{
		dims:         append([]int(nil), dims...),
		WindowEvents: windowEvents,
		now:          time.Now,
	}
	w.reset()
	return w
}

// SetClock replaces the wall clock used for the timeout trigger
// (testing).
func (w *WindowAccumulator) SetClock(now func() time.Time) { w.now = now }

// SetWindowEvents changes the events-per-window threshold, effective
// immediately (a window already at or past the new threshold closes on
// the next Add).
func (w *WindowAccumulator) SetWindowEvents(n int) {
	if n < 1 {
		n = 1
	}
	w.WindowEvents = n
}

func (w *WindowAccumulator) reset() {
	w.current = New(w.dims...)
	w.current.Reserve(w.WindowEvents)
	w.count = 0
	w.started = time.Time{}
}

// Rejected returns how many malformed events Add has dropped so far.
func (w *WindowAccumulator) Rejected() int { return w.rejected }

// Pending returns the number of events in the open window.
func (w *WindowAccumulator) Pending() int { return w.count }

// accept reports whether the event is safe to admit: correct arity,
// in-range coordinates, finite value.
func (w *WindowAccumulator) accept(e Event) bool {
	if len(e.Coord) != len(w.dims) {
		return false
	}
	for m, c := range e.Coord {
		if c < 0 || int(c) >= w.dims[m] {
			return false
		}
	}
	return !math.IsNaN(e.Value) && !math.IsInf(e.Value, 0)
}

// timedOut reports whether the open window is past its wall-clock
// deadline.
func (w *WindowAccumulator) timedOut() bool {
	return w.WindowTimeout > 0 && w.count > 0 && w.now().Sub(w.started) >= w.WindowTimeout
}

// emit closes the current window and starts a fresh one.
func (w *WindowAccumulator) emit() *Tensor {
	out := w.current
	out.Coalesce()
	w.reset()
	return out
}

// Add appends one event; when the window fills (by count, or by age
// under WindowTimeout), the coalesced slice is returned and a fresh
// window started, otherwise nil. Malformed events are dropped, counted
// in Rejected, and do not advance the window.
func (w *WindowAccumulator) Add(e Event) *Tensor {
	if !w.accept(e) {
		w.rejected++
		return nil
	}
	if w.count == 0 {
		w.started = w.now()
	}
	w.current.Append(e.Coord, e.Value)
	w.count++
	if w.count < w.WindowEvents && !w.timedOut() {
		return nil
	}
	return w.emit()
}

// Poll returns the open window as a slice if it has passed the
// wall-clock timeout, else nil. Tick-driven producers call it so a
// window that stopped receiving events still closes.
func (w *WindowAccumulator) Poll() *Tensor {
	if !w.timedOut() {
		return nil
	}
	return w.emit()
}

// Flush returns the partial window as a slice (nil when empty) and
// starts a fresh window. Call at end of stream.
func (w *WindowAccumulator) Flush() *Tensor {
	if w.count == 0 {
		return nil
	}
	return w.emit()
}
