package sptensor

import "fmt"

// Stream is an ordered sequence of N-way time slices obtained by fixing
// the streaming mode of an (N+1)-way tensor — the X₁,…,X_T view used by
// CP-stream. Slice t contains all nonzeros whose streaming-mode index
// was t, with the streaming coordinate removed.
type Stream struct {
	// Dims are the mode lengths of each slice (streaming mode removed).
	Dims []int
	// Slices[t] is Xₜ; empty slices are represented by tensors with zero
	// nonzeros (real streams have quiet periods).
	Slices []*Tensor
}

// T returns the number of time steps.
func (s *Stream) T() int { return len(s.Slices) }

// NModes returns the number of modes of each slice.
func (s *Stream) NModes() int { return len(s.Dims) }

// NNZ returns the total nonzeros across all slices.
func (s *Stream) NNZ() int {
	n := 0
	for _, sl := range s.Slices {
		n += sl.NNZ()
	}
	return n
}

// Split partitions tensor t along streamMode into a Stream with one
// slice per index value of that mode (including empty slices for absent
// indices). The input tensor is not modified.
func Split(t *Tensor, streamMode int) (*Stream, error) {
	if streamMode < 0 || streamMode >= t.NModes() {
		return nil, fmt.Errorf("sptensor: stream mode %d out of range for %d modes", streamMode, t.NModes())
	}
	if t.NModes() < 2 {
		return nil, fmt.Errorf("sptensor: cannot stream a %d-way tensor", t.NModes())
	}
	sliceDims := make([]int, 0, t.NModes()-1)
	otherModes := make([]int, 0, t.NModes()-1)
	for m, d := range t.Dims {
		if m != streamMode {
			sliceDims = append(sliceDims, d)
			otherModes = append(otherModes, m)
		}
	}
	tSteps := t.Dims[streamMode]
	// Count nonzeros per time step to size slice storage exactly.
	counts := make([]int, tSteps)
	for _, ti := range t.Inds[streamMode] {
		counts[ti]++
	}
	slices := make([]*Tensor, tSteps)
	for step := range slices {
		sl := New(sliceDims...)
		sl.Reserve(counts[step])
		slices[step] = sl
	}
	coord := make([]int32, len(otherModes))
	for e := 0; e < t.NNZ(); e++ {
		step := t.Inds[streamMode][e]
		for c, m := range otherModes {
			coord[c] = t.Inds[m][e]
		}
		slices[step].Append(coord, t.Vals[e])
	}
	return &Stream{Dims: sliceDims, Slices: slices}, nil
}

// Merge reassembles a Stream into an (N+1)-way tensor with the streaming
// mode appended last. It is the inverse of Split up to mode order and
// nonzero ordering; tests use it for round-trip checks.
func Merge(s *Stream) *Tensor {
	dims := append(append([]int(nil), s.Dims...), s.T())
	out := New(dims...)
	out.Reserve(s.NNZ())
	n := len(s.Dims)
	coord := make([]int32, n+1)
	for step, sl := range s.Slices {
		coord[n] = int32(step)
		for e := 0; e < sl.NNZ(); e++ {
			for m := 0; m < n; m++ {
				coord[m] = sl.Inds[m][e]
			}
			out.Append(coord, sl.Vals[e])
		}
	}
	return out
}

// SliceSource yields time slices one at a time — the interface the
// streaming decomposer consumes so that slices can come from a
// pre-split tensor, a generator, or a network feed. Next returns nil
// when the stream is exhausted.
type SliceSource interface {
	// Dims returns the mode lengths of every slice.
	Dims() []int
	// Next returns the next slice or nil at end of stream.
	Next() *Tensor
}

// streamSource adapts Stream to SliceSource.
type streamSource struct {
	s   *Stream
	pos int
}

// Source returns a SliceSource that replays the stream from the start.
func (s *Stream) Source() SliceSource { return &streamSource{s: s} }

func (ss *streamSource) Dims() []int { return ss.s.Dims }

func (ss *streamSource) Next() *Tensor {
	if ss.pos >= ss.s.T() {
		return nil
	}
	sl := ss.s.Slices[ss.pos]
	ss.pos++
	return sl
}
