package spstream

import (
	"math"
	"sort"
)

// RowWeight pairs a factor-matrix row index with its absolute weight in
// one component.
type RowWeight struct {
	Row    int
	Weight float64
}

// TopRows returns the n rows of mode's factor matrix with the largest
// absolute weight in component comp, sorted descending — the
// "top terms per topic" operation of interpretable decompositions. n is
// clamped to the mode length.
func TopRows(d *Decomposer, mode, comp, n int) []RowWeight {
	f := d.Factor(mode)
	if comp < 0 || comp >= f.Cols {
		return nil
	}
	all := make([]RowWeight, f.Rows)
	for i := 0; i < f.Rows; i++ {
		all[i] = RowWeight{Row: i, Weight: math.Abs(f.At(i, comp))}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].Weight > all[b].Weight })
	if n > len(all) {
		n = len(all)
	}
	if n < 0 {
		n = 0
	}
	return all[:n]
}

// ComponentStrengths returns, for each component k, the product of the
// factor column norms times |sₜ[k]| for the most recent slice — the
// scale of each rank-1 term in the current model. Components are
// returned in component order.
func ComponentStrengths(d *Decomposer) []float64 {
	k := d.Rank()
	strengths := make([]float64, k)
	s := d.LastS()
	for j := 0; j < k; j++ {
		v := math.Abs(s[j])
		for m := range d.Dims() {
			f := d.Factor(m)
			norm2 := 0.0
			for i := 0; i < f.Rows; i++ {
				x := f.At(i, j)
				norm2 += x * x
			}
			v *= math.Sqrt(norm2)
		}
		strengths[j] = v
	}
	return strengths
}

// RankComponents returns component indices sorted by descending
// ComponentStrengths.
func RankComponents(d *Decomposer) []int {
	strengths := ComponentStrengths(d)
	order := make([]int, len(strengths))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return strengths[order[a]] > strengths[order[b]] })
	return order
}

// ReconstructAt evaluates the current model X̂ₜ = [[A…; sₜ]] at one
// coordinate of the latest slice — useful for spot-checking predictions
// or imputing missing entries.
func ReconstructAt(d *Decomposer, coord []int32) float64 {
	s := d.LastS()
	sum := 0.0
	for k := range s {
		p := s[k]
		for m := range d.Dims() {
			p *= d.Factor(m).At(int(coord[m]), k)
		}
		sum += p
	}
	return sum
}
