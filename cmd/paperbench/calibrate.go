package main

import (
	"fmt"

	"spstream/internal/admm"
	"spstream/internal/dense"
	"spstream/internal/mttkrp"
	"spstream/internal/perfmodel"
	"spstream/internal/roofline"
)

// calibrate cross-checks the performance model against reality: the
// real single-worker kernels are timed on this host and compared to the
// model's 1-thread predictions for the *same* slice (profile measured
// from it, machine set to one core of this host's approximate speed).
// Agreement within a small factor justifies trusting the model's
// 56-thread extrapolations; the output reports the measured/model ratio
// per kernel.
func (h *harness) calibrate() error {
	h.header("Calibration — measured single-core kernels vs model predictions",
		"methodology check for the perfmodel substitution (DESIGN.md §2)")
	s, err := h.stream("nips")
	if err != nil {
		return err
	}
	x := s.Slices[s.T()/2]
	prof := perfmodel.Profile(x)
	// Model one core of a generic ~2.7 GHz host.
	mo := perfmodel.Model{M: roofline.Machine{
		PeakFlopsPerCore:   8e9,
		BandwidthPerSocket: 20e9,
		CoresPerSocket:     1,
		Sockets:            1,
		CacheBytes:         8 << 20,
	}, P: perfmodel.DefaultParams()}

	const k = 16
	factors := randomFactors(s.Dims, k, 3)
	c := mttkrp.NewComputer(1)
	fmt.Fprintf(h.out, "slice: nnz=%d dims=%v rank=%d\n\n", x.NNZ(), s.Dims, k)
	fmt.Fprintf(h.out, "%-22s %12s %12s %10s\n", "kernel", "measured(s)", "model(s)", "meas/model")

	report := func(name string, measured, modeled float64) {
		ratio := 0.0
		if modeled > 0 {
			ratio = measured / modeled
		}
		fmt.Fprintf(h.out, "%-22s %12.6f %12.6f %10.2f\n", name, measured, modeled, ratio)
	}

	// MTTKRP kernels (all modes).
	outs := make([]*dense.Matrix, len(s.Dims))
	for m, d := range s.Dims {
		outs[m] = dense.NewMatrix(d, k)
	}
	measLock := minDuration(measureTrials, func() {
		for m := range s.Dims {
			c.Lock(outs[m], x, factors, m)
		}
	}).Seconds()
	report("mttkrp-lock", measLock, mo.MTTKRPTime(perfmodel.MTTKRPLock, prof, k, 1))
	measHL := minDuration(measureTrials, func() {
		for m := range s.Dims {
			c.Hybrid(outs[m], x, factors, m)
		}
	}).Seconds()
	report("mttkrp-hybrid", measHL, mo.MTTKRPTime(perfmodel.MTTKRPHybrid, prof, k, 1))
	sv := make([]float64, k)
	measTM := minDuration(measureTrials, func() { c.TimeMode(sv, x, factors) }).Seconds()
	report("timemode", measTM, mo.TimeModeUpdateTime(prof, k, 1, false))

	// ADMM kernels on the largest mode, fixed 10 iterations.
	const admmIters = 10
	big := factors[len(factors)-1]
	phi := dense.NewMatrix(k, k)
	dense.Gram(phi, big.RowView(0, 4*k))
	dense.AddScaledIdentity(phi, phi, 1)
	psi := dense.NewMatrix(big.Rows, k)
	dense.MulAB(psi, big, phi)
	solver := admm.NewSolver(admm.Options{Workers: 1, Tol: 1e-30, MaxIters: admmIters})
	measBase := minDuration(measureTrials, func() {
		a := big.Clone()
		if _, err := solver.Baseline(a, phi, psi, admm.NonNeg{}); err != nil {
			panic(err)
		}
	}).Seconds() / admmIters
	report("admm-baseline/iter", measBase, mo.ADMMIterTime(perfmodel.ADMMBaseline, big.Rows, k, 1))
	measBF := minDuration(measureTrials, func() {
		a := big.Clone()
		if _, err := solver.BlockedFused(a, phi, psi, admm.NonNeg{}); err != nil {
			panic(err)
		}
	}).Seconds() / admmIters
	report("admm-bf/iter", measBF, mo.ADMMIterTime(perfmodel.ADMMBlockedFused, big.Rows, k, 1))

	fmt.Fprintln(h.out, "\nratios within roughly 0.2–5× indicate the model's cost constants are")
	fmt.Fprintln(h.out, "the right order of magnitude on this host; thread-scaling *shapes* come")
	fmt.Fprintln(h.out, "from the contention/bandwidth mechanisms, not these absolute constants.")
	return nil
}
