package core

import (
	"bytes"
	"testing"
)

// FuzzRestoreState: arbitrary bytes fed to RestoreState must either
// restore (only possible for a byte-exact valid checkpoint) or return
// an error — never panic, and never allocate proportionally to claimed
// (rather than actual) input sizes. Every length field is validated
// against the receiving decomposer before it drives an allocation, so
// a forged header cannot OOM the process.
func FuzzRestoreState(f *testing.F) {
	dims := []int{6, 7}
	opt := Options{Rank: 3, Seed: 1, Workers: 1}

	// Seed with a genuine checkpoint and targeted mutations of it.
	s := testStream(f, 401, dims, 60, 3)
	d, err := NewDecomposer(dims, opt)
	if err != nil {
		f.Fatal(err)
	}
	for _, x := range s.Slices {
		if _, err := d.ProcessSlice(x); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := d.SaveState(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-4]) // missing footer
	f.Add(valid[:8])            // magic only
	f.Add([]byte{})
	f.Add([]byte("SPSTRM01"))
	f.Add([]byte("SPSTRM02"))
	f.Add([]byte("SPSTRM99 and then some garbage"))
	// A forged header claiming an astronomical temporal history.
	forged := append([]byte(nil), valid[:32]...)
	for i := 24; i < 32; i++ {
		forged[i] = 0xff
	}
	f.Add(forged)

	f.Fuzz(func(t *testing.T, input []byte) {
		fresh, err := NewDecomposer(dims, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.RestoreState(bytes.NewReader(input)); err != nil {
			return
		}
		// A successful restore must leave a usable decomposer: the slice
		// counter matches the temporal history and processing continues.
		if fresh.T() != len(fresh.sHist) {
			t.Fatalf("restored T=%d with %d temporal rows", fresh.T(), len(fresh.sHist))
		}
		if _, err := fresh.ProcessSlice(s.Slices[0]); err != nil {
			t.Fatalf("decomposer broken after accepted restore: %v", err)
		}
	})
}
