// Package trace accumulates per-phase execution time for the CP-stream
// solvers, mirroring the breakdown of paper Fig. 8 (Pre, Post, Update,
// Inverse, MTTKRP, Gram, Historical, Error, Misc).
package trace

import (
	"fmt"
	"strings"
	"time"
)

// Phase identifies one breakdown category.
type Phase int

// Phases in Fig. 8 order.
const (
	Pre Phase = iota
	Post
	Update
	Inverse
	MTTKRP
	Gram
	Historical
	Error
	Misc
	numPhases
)

// NumPhases is the number of breakdown categories.
const NumPhases = int(numPhases)

var phaseNames = [...]string{"Pre", "Post", "Update", "Inverse", "MTTKRP", "Gram", "Historical", "Error", "Misc"}

// String returns the phase name.
func (p Phase) String() string {
	if p < 0 || int(p) >= NumPhases {
		return fmt.Sprintf("Phase(%d)", int(p))
	}
	return phaseNames[p]
}

// Breakdown accumulates wall time per phase plus an iteration count so
// per-iteration figures can be derived.
type Breakdown struct {
	Times [NumPhases]time.Duration
	Iters int
}

// Add accumulates d into phase p.
func (b *Breakdown) Add(p Phase, d time.Duration) { b.Times[p] += d }

// Time runs f and charges its wall time to phase p.
func (b *Breakdown) Time(p Phase, f func()) {
	start := time.Now()
	f()
	b.Times[p] += time.Since(start)
}

// Total returns the summed time across phases.
func (b *Breakdown) Total() time.Duration {
	var t time.Duration
	for _, d := range b.Times {
		t += d
	}
	return t
}

// PerIter returns phase times divided by the iteration count (total
// times when Iters == 0).
func (b *Breakdown) PerIter() [NumPhases]time.Duration {
	out := b.Times
	if b.Iters > 0 {
		for i := range out {
			out[i] /= time.Duration(b.Iters)
		}
	}
	return out
}

// Merge adds other's times and iterations into b.
func (b *Breakdown) Merge(other *Breakdown) {
	for i := range b.Times {
		b.Times[i] += other.Times[i]
	}
	b.Iters += other.Iters
}

// Reset zeroes the breakdown.
func (b *Breakdown) Reset() { *b = Breakdown{} }

// String renders the breakdown as "Phase=dur" pairs.
func (b *Breakdown) String() string {
	var sb strings.Builder
	for i, d := range b.Times {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%v", Phase(i), d)
	}
	fmt.Fprintf(&sb, " iters=%d", b.Iters)
	return sb.String()
}
