package perfmodel

import (
	"math"
	"testing"

	"spstream/internal/sptensor"
)

// slice2 builds a coalesced 2-way slice from coordinate pairs.
func slice2(dims []int, coords [][2]int32) *sptensor.Tensor {
	x := sptensor.New(dims...)
	for _, c := range coords {
		x.Append([]int32{c[0], c[1]}, 1)
	}
	x.Coalesce()
	return x
}

// TestLayoutFoldDecay: folding is exponential decay plus the new counts,
// with Tot maintained exactly, and the epoch/fold bookkeeping advancing
// once per distinct stream position.
func TestLayoutFoldDecay(t *testing.T) {
	var pf Profiler
	var p SliceProfile
	lay := NewLayout(DefaultLayoutParams(), []int{5, 4})

	a := slice2([]int{5, 4}, [][2]int32{{0, 0}, {0, 1}, {3, 2}})
	pf.Profile(&p, a, lay, 0)
	if lay.Epoch != 1 || lay.FoldedT != 0 {
		t.Fatalf("after first fold: Epoch=%d FoldedT=%d", lay.Epoch, lay.FoldedT)
	}
	st := &lay.Modes[0]
	if st.Hist[0] != 2 || st.Hist[3] != 1 || st.Tot != 3 {
		t.Fatalf("first fold hist = %v tot = %g", st.Hist, st.Tot)
	}

	b := slice2([]int{5, 4}, [][2]int32{{1, 0}, {3, 3}})
	pf.Profile(&p, b, lay, 1)
	d := lay.P.Decay
	want := []float64{2 * d, 1, 0, d + 1, 0}
	tot := 0.0
	for i, w := range want {
		if math.Abs(st.Hist[i]-w) > 1e-12 {
			t.Fatalf("decayed hist[%d] = %g, want %g", i, st.Hist[i], w)
		}
		tot += w
	}
	if math.Abs(st.Tot-tot) > 1e-12 {
		t.Fatalf("Tot = %g, want %g", st.Tot, tot)
	}

	// Re-profiling the same stream position (a retried slice) must not
	// double-count: the fold is idempotent per t.
	pf.Profile(&p, b, lay, 1)
	if lay.Epoch != 2 || math.Abs(st.Tot-tot) > 1e-12 {
		t.Fatalf("retry fold not idempotent: Epoch=%d Tot=%g", lay.Epoch, st.Tot)
	}
}

// TestLayoutRebuildDeterministic: the learned permutation orders rows by
// decayed count descending with ties broken by row ascending, and two
// managers fed the identical stream hold identical state — the replay
// property checkpoint restore depends on.
func TestLayoutRebuildDeterministic(t *testing.T) {
	dims := []int{6, 3}
	stream := []*sptensor.Tensor{
		slice2(dims, [][2]int32{{4, 0}, {4, 1}, {4, 2}, {1, 0}, {1, 1}, {0, 0}}),
		slice2(dims, [][2]int32{{4, 0}, {1, 0}, {5, 2}}),
	}
	run := func() *Layout {
		var pf Profiler
		var p SliceProfile
		lay := NewLayout(DefaultLayoutParams(), dims)
		for i, x := range stream {
			pf.Profile(&p, x, lay, i)
		}
		return lay
	}
	a, b := run(), run()

	st := &a.Modes[0]
	if st.Perm == nil {
		t.Fatal("no permutation learned")
	}
	// After slice 0: counts 4→3, 1→2, 0→1, rest 0 → hot order 4,1,0,2,3,5.
	// (Perm is rebuilt at epoch 1 and kept — coverage cannot drop below
	// the rebuild threshold with HotRows ≫ dim.)
	wantPerm := []int32{4, 1, 0, 2, 3, 5}
	for i, w := range wantPerm {
		if st.Perm[i] != w {
			t.Fatalf("Perm = %v, want %v", st.Perm, wantPerm)
		}
		if st.Rank[w] != int32(i) {
			t.Fatalf("Rank is not Perm's inverse: Rank[%d]=%d", w, st.Rank[w])
		}
	}

	// Replay identity.
	if a.Epoch != b.Epoch || a.Rebuilds != b.Rebuilds {
		t.Fatalf("replay diverged: epochs %d/%d rebuilds %d/%d", a.Epoch, b.Epoch, a.Rebuilds, b.Rebuilds)
	}
	for m := range a.Modes {
		sa, sb := &a.Modes[m], &b.Modes[m]
		for i := range sa.Hist {
			if sa.Hist[i] != sb.Hist[i] {
				t.Fatalf("mode %d hist diverged at %d", m, i)
			}
		}
		for i := range sa.Perm {
			if sa.Perm[i] != sb.Perm[i] {
				t.Fatalf("mode %d perm diverged at %d", m, i)
			}
		}
	}
}

// layoutFingerprint flattens the mutable state Decide could touch.
func layoutFingerprint(l *Layout) []float64 {
	var fp []float64
	fp = append(fp, float64(l.Epoch), float64(l.FoldedT), float64(l.Rebuilds))
	for m := range l.Modes {
		st := &l.Modes[m]
		fp = append(fp, st.Tot, st.Cover, st.CoverAtRebuild, float64(st.RebuildEpoch))
		fp = append(fp, st.Hist...)
		for _, g := range st.Perm {
			fp = append(fp, float64(g))
		}
	}
	return fp
}

// TestDecidePure: Decide never mutates the layout state and is
// deterministic for a fixed (profile, state, options) triple.
func TestDecidePure(t *testing.T) {
	dims := []int{4000, 3000}
	var pf Profiler
	var p SliceProfile
	lay := NewLayout(DefaultLayoutParams(), dims)
	x := slice2(dims, [][2]int32{{0, 0}, {0, 1}, {1, 0}, {3999, 2999}})
	pf.Profile(&p, x, lay, 0)

	before := layoutFingerprint(lay)
	d1 := lay.Decide(p, 16, 4)
	d2 := lay.Decide(p, 16, 4)
	after := layoutFingerprint(lay)
	if len(before) != len(after) {
		t.Fatal("Decide changed state shape")
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("Decide mutated layout state")
		}
	}
	if d1.Remap != d2.Remap || (d1.HotFirst == nil) != (d2.HotFirst == nil) {
		t.Fatal("Decide not deterministic")
	}

	// Nil receiver is a valid "layout off" state.
	var nilLay *Layout
	if dec := nilLay.Decide(p, 16, 4); dec.Remap {
		t.Fatal("nil layout must never remap")
	}
	if s := nilLay.Stats(); s.Epoch != 0 {
		t.Fatal("nil layout stats must be zero")
	}
}

// TestDecideThresholds drives the remap cost model through its three
// regimes with hand-set constants: not compactable (dense activity),
// compactable but not worth it (gain below build cost), and clearly
// profitable (large skipped zero fill).
func TestDecideThresholds(t *testing.T) {
	p := DefaultLayoutParams()
	lay := NewLayout(p, []int{100000, 50})

	mk := func(nzRows0 int) SliceProfile {
		return SliceProfile{
			NNZ: 1000,
			Modes: []ModeProfile{
				{Dim: 100000, NZRows: nzRows0},
				{Dim: 50, NZRows: 50},
			},
		}
	}

	// 90% of rows active: MaxNZFrac rejects every mode → never remap.
	if dec := lay.Decide(mk(90000), 16, 4); dec.Remap {
		t.Fatal("dense-activity slice must not remap")
	}
	// 1000 active rows of 100000: skipped zero fill dwarfs the build →
	// remap.
	if dec := lay.Decide(mk(1000), 16, 4); !dec.Remap {
		t.Fatal("skewed slice must remap")
	}
	// Same slice with one amortization iteration and a huge fixed cost:
	// the build cannot pay for itself.
	expensive := p
	expensive.RemapFixedNs = 1e12
	lay2 := NewLayout(expensive, []int{100000, 50})
	if dec := lay2.Decide(mk(1000), 16, 1); dec.Remap {
		t.Fatal("unamortizable build must not remap")
	}
	// Empty slice is a no-op.
	if dec := lay.Decide(SliceProfile{}, 16, 4); dec.Remap {
		t.Fatal("empty profile must not remap")
	}
}

// TestDecideHotFirst: the hot-first order is offered only when a
// permutation exists, its coverage holds up, and the mode's full factor
// overflows the cache budget.
func TestDecideHotFirst(t *testing.T) {
	prm := DefaultLayoutParams()
	// Budget between the compact set (23·16·8 ≈ 3KB) and the full set
	// (140·16·8 ≈ 17.5KB): the cache term fires, and mode 0's full
	// factor (12.5KB) overflows while mode 1's (5KB) fits.
	prm.CacheBytes = 8 << 10
	dims := []int{100, 40}
	lay := NewLayout(prm, dims)

	var pf Profiler
	var p SliceProfile
	x := slice2(dims, [][2]int32{{7, 0}, {7, 1}, {2, 0}})
	pf.Profile(&p, x, lay, 0) // epoch 1: perm rebuilt, cover = 1 (HotRows ≫ dim)

	prof := SliceProfile{
		NNZ: 100000,
		Modes: []ModeProfile{
			{Dim: 100, NZRows: 3},
			{Dim: 40, NZRows: 20},
		},
	}
	dec := lay.Decide(prof, 16, 4)
	if !dec.Remap {
		t.Fatal("expected remap")
	}
	if dec.HotFirst == nil || dec.HotFirst[0] == nil {
		t.Fatal("expected hot-first order for the overflowing mode")
	}
	if dec.HotFirst[0][0] != 7 {
		t.Fatalf("hot-first order should lead with the hottest row, got %d", dec.HotFirst[0][0])
	}

	// With the cache comfortably holding the full factor, ordering inside
	// the compact space cannot matter → ascending order kept.
	roomy := prm
	roomy.CacheBytes = 1 << 30
	lay.P = roomy
	dec = lay.Decide(prof, 16, 4)
	if dec.Remap && dec.HotFirst != nil {
		t.Fatal("hot-first must be withheld when factors fit in cache")
	}
}

// TestScanOrder pins down the sortedness/pair-count scan: Pair01 counts
// distinct (mode0, mode1) prefixes on sorted slices, tolerates duplicate
// coordinates, and is zero (with Sorted=false) on unsorted input.
func TestScanOrder(t *testing.T) {
	dims := []int{10, 10, 10}
	x := sptensor.New(dims...)
	for _, c := range [][3]int32{{0, 0, 1}, {0, 0, 3}, {0, 2, 0}, {1, 0, 0}, {1, 0, 0}, {1, 0, 5}} {
		x.Append(c[:], 1)
	}
	sorted, pairs := scanOrder(x)
	if !sorted {
		t.Fatal("lex-sorted slice (with a duplicate) must report sorted")
	}
	// Distinct (m0,m1) prefixes: (0,0), (0,2), (1,0).
	if pairs != 3 {
		t.Fatalf("Pair01 = %d, want 3", pairs)
	}

	y := sptensor.New(dims...)
	y.Append([]int32{5, 0, 0}, 1)
	y.Append([]int32{2, 0, 0}, 1)
	if sorted, pairs := scanOrder(y); sorted || pairs != 0 {
		t.Fatalf("unsorted slice: sorted=%v pairs=%d", sorted, pairs)
	}

	empty := sptensor.New(dims...)
	if sorted, pairs := scanOrder(empty); !sorted || pairs != 0 {
		t.Fatal("empty slice must be trivially sorted with zero pairs")
	}
}

// TestProfilerZeroAllocWithLayout: the fold shares the profiling pass
// and must keep it allocation-free once warm.
func TestProfilerZeroAllocWithLayout(t *testing.T) {
	dims := []int{300, 200}
	lay := NewLayout(DefaultLayoutParams(), dims)
	var pf Profiler
	var p SliceProfile
	xs := []*sptensor.Tensor{
		slice2(dims, [][2]int32{{0, 0}, {1, 1}, {299, 199}}),
		slice2(dims, [][2]int32{{5, 5}, {7, 9}}),
	}
	pf.Profile(&p, xs[0], lay, 0)
	pf.Profile(&p, xs[1], lay, 1)
	tpos := 2
	allocs := testing.AllocsPerRun(20, func() {
		pf.Profile(&p, xs[tpos%2], lay, tpos)
		tpos++
	})
	if allocs != 0 {
		t.Fatalf("profile+fold allocates %v times per slice", allocs)
	}
}
