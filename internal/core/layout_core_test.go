package core

import (
	"bytes"
	"testing"

	"spstream/internal/sptensor"
	"spstream/internal/synth"
)

// remapStream generates a stream skewed enough for the layout manager to
// choose remapping under the default cost model: one long mode whose
// activity touches a small fraction of its rows, so the z-row solve
// collapse dominates the remap build cost even at small ranks.
func remapStream(t testing.TB, seed uint64, slices int) *sptensor.Stream {
	t.Helper()
	s, err := synth.Generate(synth.Config{
		Name: "remap",
		Dists: []synth.IndexDist{
			synth.NewZipf(20000, 1.1),
			synth.Uniform{N: 60},
			synth.NewZipf(80, 1.2),
		},
		T:           slices,
		NNZPerSlice: 600,
		Values:      synth.ValuePlanted,
		PlantedRank: 3,
		NoiseStd:    0.01,
		Seed:        seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// scheduleTrace runs one slice and appends the resolved kernel table and
// layout verdict — the per-slice schedule fingerprint the determinism
// contract is stated in.
func scheduleTrace(t *testing.T, d *Decomposer, x *sptensor.Tensor, trace []byte) []byte {
	t.Helper()
	if _, err := d.ProcessSlice(x); err != nil {
		t.Fatal(err)
	}
	trace = d.KernelSchedule(trace)
	rm, hot := d.LastLayoutDecision()
	code := byte('-')
	switch {
	case rm && hot:
		code = 'H'
	case rm:
		code = 'R'
	}
	return append(trace, code, '|')
}

// TestLayoutCheckpointRoundTrip is the determinism acceptance test: save
// mid-stream with an active permutation and remap schedule, restore into
// a fresh decomposer, and finish the stream — the factors must be
// bit-identical to an uninterrupted run and the kernel+layout schedule
// of every remaining slice identical. The layout histograms are part of
// the SPSTRM03 payload; losing them would silently change the schedule
// (and with it the rounding order, hence the factors).
func TestLayoutCheckpointRoundTrip(t *testing.T) {
	s := remapStream(t, 404, 8)
	opt := Options{Rank: 4, Algorithm: Optimized, Workers: 1, Seed: 5}
	cut := 4

	ref, err := NewDecomposer(s.Dims, opt)
	if err != nil {
		t.Fatal(err)
	}
	var refTrace []byte
	for _, x := range s.Slices {
		refTrace = scheduleTrace(t, ref, x, refTrace)
	}

	first, err := NewDecomposer(s.Dims, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range s.Slices[:cut] {
		if _, err := first.ProcessSlice(x); err != nil {
			t.Fatal(err)
		}
	}
	if rm, _ := first.LastLayoutDecision(); !rm {
		t.Fatal("stream does not trigger remapping — test is vacuous")
	}
	if st := first.LayoutStats(); st.Epoch != cut {
		t.Fatalf("layout epoch = %d before save, want %d", st.Epoch, cut)
	}

	var buf bytes.Buffer
	if err := first.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	second, err := NewDecomposer(s.Dims, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := second.RestoreState(&buf); err != nil {
		t.Fatal(err)
	}
	if st := second.LayoutStats(); st != first.LayoutStats() {
		t.Fatalf("restored layout stats %+v != saved %+v", st, first.LayoutStats())
	}

	// Finish both runs, comparing the schedule slice by slice.
	var tailRef, tailSecond []byte
	for ti := cut; ti < s.T(); ti++ {
		tailRef = scheduleTrace(t, first, s.Slices[ti], tailRef)
		tailSecond = scheduleTrace(t, second, s.Slices[ti], tailSecond)
	}
	if !bytes.Equal(tailRef, tailSecond) {
		t.Fatalf("restored schedule %q != interrupted-run schedule %q", tailSecond, tailRef)
	}
	// The full reference trace must agree with the interrupted run's
	// tail too (the restore replays the same decisions the uninterrupted
	// stream made).
	if !bytes.Equal(refTrace[len(refTrace)-len(tailRef):], tailRef) {
		t.Fatalf("schedule tail %q != uninterrupted %q", tailRef, refTrace)
	}
	if d := maxFactorDiff(ref, second); d != 0 {
		t.Fatalf("restored factors differ from uninterrupted by %g", d)
	}
	if d := ref.Temporal().MaxAbsDiff(second.Temporal()); d != 0 {
		t.Fatalf("temporal factors differ by %g", d)
	}
}

// TestExplicitRemapEquivalence: the remapped inner loop computes the
// same updates as the layout-off path up to floating-point
// reassociation (the z-row solves compose Q·Φ⁻¹ before touching the
// rows). The factor trajectories must stay close across a whole stream.
func TestExplicitRemapEquivalence(t *testing.T) {
	s := remapStream(t, 405, 6)
	on, _ := runStream(t, s, Options{Rank: 4, Algorithm: Optimized, Workers: 1, Seed: 5, Layout: LayoutAuto})
	off, _ := runStream(t, s, Options{Rank: 4, Algorithm: Optimized, Workers: 1, Seed: 5, Layout: LayoutOff})
	if rm, _ := on.LastLayoutDecision(); !rm {
		t.Fatal("layout-on run never remapped — test is vacuous")
	}
	if rm, _ := off.LastLayoutDecision(); rm {
		t.Fatal("layout-off run remapped")
	}
	if d := maxFactorDiff(on, off); d > 1e-6 {
		t.Fatalf("remap path diverges from layout-off by %g", d)
	}
}

// TestExplicitRemapIterateZeroAlloc extends the steady-state guarantee
// to the remapped inner loop: compact kernels, fused historical term,
// compact solves, the z-row composition, and the per-mode gather refresh
// all run on pooled storage.
func TestExplicitRemapIterateZeroAlloc(t *testing.T) {
	s := remapStream(t, 406, 3)
	d, err := NewDecomposer(s.Dims, Options{Rank: 4, Algorithm: Optimized, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range s.Slices[:2] {
		if _, err := d.ProcessSlice(x); err != nil {
			t.Fatal(err)
		}
	}
	run, err := d.beginExplicit(s.Slices[2])
	if err != nil {
		t.Fatal(err)
	}
	if run.rm == nil {
		t.Fatal("slice not remapped — test is vacuous")
	}
	if _, err := d.iterateExplicit(run); err != nil { // warm scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := d.iterateExplicit(run); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("remapped inner iteration allocates %.1f times per run, want 0", allocs)
	}
}

// TestLayoutPolicyTuning covers the runtime layout knob: validation,
// freezing via LayoutOff (decisions stop, learned state kept), and
// re-enabling.
func TestLayoutPolicyTuning(t *testing.T) {
	s := remapStream(t, 407, 4)
	d, err := NewDecomposer(s.Dims, Options{Rank: 4, Algorithm: Optimized, Workers: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetLayoutPolicy(LayoutPolicy(99)); err == nil {
		t.Fatal("invalid layout policy accepted")
	}
	if _, err := d.ProcessSlice(s.Slices[0]); err != nil {
		t.Fatal(err)
	}
	if rm, _ := d.LastLayoutDecision(); !rm {
		t.Fatal("expected remap on slice 0")
	}
	epoch := d.LayoutStats().Epoch

	if err := d.SetLayoutPolicy(LayoutOff); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ProcessSlice(s.Slices[1]); err != nil {
		t.Fatal(err)
	}
	if rm, _ := d.LastLayoutDecision(); rm {
		t.Fatal("LayoutOff slice still remapped")
	}
	if got := d.LayoutStats().Epoch; got != epoch {
		t.Fatalf("frozen layout kept learning: epoch %d → %d", epoch, got)
	}

	if err := d.SetLayoutPolicy(LayoutAuto); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ProcessSlice(s.Slices[2]); err != nil {
		t.Fatal(err)
	}
	if rm, _ := d.LastLayoutDecision(); !rm {
		t.Fatal("re-enabled layout did not resume remapping")
	}
	if got := d.LayoutStats().Epoch; got != epoch+1 {
		t.Fatalf("re-enabled layout epoch = %d, want %d", got, epoch+1)
	}
}
