package core

import (
	"spstream/internal/csf"
	"spstream/internal/mttkrp"
	"spstream/internal/perfmodel"
	"spstream/internal/sptensor"
)

// This file threads the MTTKRP kernel policy through the slice
// lifecycle. At every slice begin, chooseKernels resolves the policy
// (Options.MTTKRPKernel, adjustable between slices via
// SetMTTKRPKernel) into one concrete kernel per mode; the iterate
// phases dispatch on that table. Under KernelAuto the perfmodel
// selector compares the predicted cost of the compiled coordinate plan
// against the tiled CSF engine per mode, using the measured slice shape
// — a pure function of (slice, options), so checkpoint-restored and
// retried slices reproduce the original kernel schedule exactly.

// kernelChoice is one mode's resolved kernel for the current slice.
type kernelChoice int8

const (
	kcLock kernelChoice = iota
	kcPlan
	kcCSF
)

// kernelPolicy resolves KernelDefault to the per-algorithm default.
func (d *Decomposer) kernelPolicy() MTTKRPKernel {
	if d.opt.MTTKRPKernel != KernelDefault {
		return d.opt.MTTKRPKernel
	}
	if d.opt.Algorithm == Baseline {
		return KernelLock
	}
	return KernelAuto
}

// selectorAmortIters is the inner-iteration count the per-slice build
// cost is amortized over in Auto selection: MaxIters capped low, so a
// stream that converges quickly is not charged for builds it would
// never amortize. Deliberately conservative — underestimating the
// iteration count biases toward the cheaper-to-build plan.
func (d *Decomposer) selectorAmortIters() int {
	it := d.opt.MaxIters
	if it > 8 {
		it = 8
	}
	return it
}

// chooseKernels fills d.kernels with one choice per mode of x and
// reports which compiled layouts the slice needs. x is the tensor the
// kernels will run over (the remapped slice for spCP-stream).
func (d *Decomposer) chooseKernels(x *sptensor.Tensor) (needPlan, needCSF bool) {
	n := x.NModes()
	if cap(d.kernels) < n {
		d.kernels = make([]kernelChoice, n)
	}
	d.kernels = d.kernels[:n]
	switch d.kernelPolicy() {
	case KernelLock:
		for m := range d.kernels {
			d.kernels[m] = kcLock
		}
	case KernelPlan:
		for m := range d.kernels {
			d.kernels[m] = kcPlan
		}
	case KernelCSF:
		for m := range d.kernels {
			d.kernels[m] = kcCSF
		}
	default: // KernelAuto
		d.profCounts = perfmodel.ProfileInto(&d.prof, x, d.profCounts)
		amort := d.selectorAmortIters()
		for m := range d.kernels {
			if d.sel.SelectMTTKRP(d.prof, m, d.k, amort) == perfmodel.MTTKRPCSF {
				d.kernels[m] = kcCSF
			} else {
				d.kernels[m] = kcPlan
			}
		}
	}
	for _, kc := range d.kernels {
		switch kc {
		case kcPlan:
			needPlan = true
		case kcCSF:
			needCSF = true
		}
	}
	return needPlan, needCSF
}

// ensureEngine lazily creates the CSF engine on the Decomposer's pool.
func (d *Decomposer) ensureEngine() *csf.Engine {
	if d.csfEng == nil {
		d.csfEng = csf.NewEngineWithPool(d.opt.Workers, d.pool)
	}
	return d.csfEng
}

// beginKernels resolves the kernel table for slice x and compiles the
// layouts it needs: CSF trees for the CSF modes (built eagerly so the
// cost lands in the Pre phase, not the first iteration) and the
// coordinate plan for the plan modes. Returns the plan (nil when no
// mode uses it).
func (d *Decomposer) beginKernels(x *sptensor.Tensor) *mttkrp.Plan {
	needPlan, needCSF := d.chooseKernels(x)
	if needCSF {
		eng := d.ensureEngine()
		eng.Begin(x)
		for m, kc := range d.kernels {
			if kc == kcCSF {
				eng.Build(m)
			}
		}
	}
	if !needPlan {
		return nil
	}
	if allPlan(d.kernels) {
		return d.mt.NewPlan(x)
	}
	need := make([]bool, len(d.kernels))
	for m, kc := range d.kernels {
		need[m] = kc == kcPlan
	}
	return d.mt.NewPlanFor(x, need)
}

func allPlan(ks []kernelChoice) bool {
	for _, kc := range ks {
		if kc != kcPlan {
			return false
		}
	}
	return true
}
