package mttkrp

import (
	"math"
	"testing"
	"testing/quick"

	"spstream/internal/dense"
	"spstream/internal/sptensor"
	"spstream/internal/synth"
)

// randomSlice builds a random 3-way slice with the given dims and nnz.
func randomSlice(seed uint64, dims []int, nnz int) *sptensor.Tensor {
	r := synth.NewRNG(seed)
	x := sptensor.New(dims...)
	coord := make([]int32, len(dims))
	for e := 0; e < nnz; e++ {
		for m, d := range dims {
			coord[m] = int32(r.Intn(d))
		}
		x.Append(coord, r.NormFloat64())
	}
	x.Coalesce()
	return x
}

// randomFactors builds random In×K factors for every mode.
func randomFactors(seed uint64, dims []int, k int) []*dense.Matrix {
	r := synth.NewRNG(seed)
	out := make([]*dense.Matrix, len(dims))
	for m, d := range dims {
		f := dense.NewMatrix(d, k)
		for i := range f.Data {
			f.Data[i] = r.NormFloat64()
		}
		out[m] = f
	}
	return out
}

// denseReference computes MTTKRP via the textbook definition
// X₍ₙ₎ · (⊙_{v≠n} A⁽ᵛ⁾) on the dense matricization.
func denseReference(t *testing.T, x *sptensor.Tensor, factors []*dense.Matrix, mode int) *dense.Matrix {
	t.Helper()
	xm, err := sptensor.Matricize(x, mode)
	if err != nil {
		t.Fatal(err)
	}
	others := make([]*dense.Matrix, 0, len(factors)-1)
	for v, f := range factors {
		if v != mode {
			others = append(others, f)
		}
	}
	kr := dense.KhatriRaoAll(others)
	out := dense.NewMatrix(x.Dims[mode], factors[0].Cols)
	dense.MulAB(out, xm, kr)
	return out
}

func TestSequentialAgainstDenseDefinition(t *testing.T) {
	dims := []int{5, 6, 4}
	x := randomSlice(1, dims, 40)
	factors := randomFactors(2, dims, 3)
	for mode := range dims {
		want := denseReference(t, x, factors, mode)
		got := dense.NewMatrix(dims[mode], 3)
		Sequential(got, x, factors, mode)
		if d := got.MaxAbsDiff(want); d > 1e-10 {
			t.Fatalf("mode %d: sequential MTTKRP differs from dense definition by %g", mode, d)
		}
	}
}

func TestSequentialFourWay(t *testing.T) {
	dims := []int{4, 3, 5, 2}
	x := randomSlice(3, dims, 60)
	factors := randomFactors(4, dims, 2)
	for mode := range dims {
		want := denseReference(t, x, factors, mode)
		got := dense.NewMatrix(dims[mode], 2)
		Sequential(got, x, factors, mode)
		if d := got.MaxAbsDiff(want); d > 1e-10 {
			t.Fatalf("mode %d: 4-way MTTKRP off by %g", mode, d)
		}
	}
}

// All parallel kernels must agree with the sequential reference.
func TestKernelEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		dims := []int{20, 30, 15}
		x := randomSlice(seed, dims, 300)
		factors := randomFactors(seed+1, dims, 4)
		for _, workers := range []int{1, 4} {
			c := NewComputer(workers)
			for mode := range dims {
				want := dense.NewMatrix(dims[mode], 4)
				Sequential(want, x, factors, mode)
				lock := dense.NewMatrix(dims[mode], 4)
				c.Lock(lock, x, factors, mode)
				if lock.MaxAbsDiff(want) > 1e-9 {
					return false
				}
				hyb := dense.NewMatrix(dims[mode], 4)
				c.Hybrid(hyb, x, factors, mode)
				if hyb.MaxAbsDiff(want) > 1e-9 {
					return false
				}
				local := dense.NewMatrix(dims[mode], 4)
				c.localAccumulate(local, x, factors, mode)
				if local.MaxAbsDiff(want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHybridUsesLockPathForLongModes(t *testing.T) {
	dims := []int{5000, 10, 10}
	x := randomSlice(9, dims, 500)
	factors := randomFactors(10, dims, 2)
	c := NewComputer(2)
	c.ShortModeThreshold = 100
	want := dense.NewMatrix(5000, 2)
	Sequential(want, x, factors, 0)
	got := dense.NewMatrix(5000, 2)
	c.Hybrid(got, x, factors, 0) // rows > threshold → lock path
	if got.MaxAbsDiff(want) > 1e-9 {
		t.Fatal("hybrid long-mode path wrong")
	}
}

func TestTimeModeAgainstDefinition(t *testing.T) {
	dims := []int{6, 7, 5}
	x := randomSlice(11, dims, 100)
	factors := randomFactors(12, dims, 3)
	// ψ[k] = Σ_e val_e ∏_v A⁽ᵛ⁾[i_v][k].
	want := make([]float64, 3)
	for e := 0; e < x.NNZ(); e++ {
		for k := 0; k < 3; k++ {
			p := x.Vals[e]
			for v, f := range factors {
				p *= f.At(int(x.Inds[v][e]), k)
			}
			want[k] += p
		}
	}
	for _, workers := range []int{1, 4} {
		c := NewComputer(workers)
		got := make([]float64, 3)
		c.TimeMode(got, x, factors)
		for k := range want {
			if math.Abs(got[k]-want[k]) > 1e-9 {
				t.Fatalf("workers=%d: TimeMode[%d]=%v want %v", workers, k, got[k], want[k])
			}
		}
		locked := make([]float64, 3)
		c.TimeModeLocked(locked, x, factors)
		for k := range want {
			if math.Abs(locked[k]-want[k]) > 1e-9 {
				t.Fatalf("workers=%d: TimeModeLocked[%d]=%v want %v", workers, k, locked[k], want[k])
			}
		}
	}
}

func TestTimeModeDeterministic(t *testing.T) {
	dims := []int{10, 10, 10}
	x := randomSlice(13, dims, 5000)
	factors := randomFactors(14, dims, 4)
	c := NewComputer(4)
	first := make([]float64, 4)
	c.TimeMode(first, x, factors)
	for trial := 0; trial < 5; trial++ {
		again := make([]float64, 4)
		c.TimeMode(again, x, factors)
		for k := range first {
			if first[k] != again[k] {
				t.Fatal("TimeMode not deterministic for fixed worker count")
			}
		}
	}
}

func TestEmptySlice(t *testing.T) {
	dims := []int{5, 5, 5}
	x := sptensor.New(dims...)
	factors := randomFactors(15, dims, 3)
	c := NewComputer(4)
	out := dense.NewMatrix(5, 3)
	out.Fill(9)
	c.Hybrid(out, x, factors, 0)
	for _, v := range out.Data {
		if v != 0 {
			t.Fatal("empty-slice MTTKRP must zero the output")
		}
	}
	out.Fill(9)
	c.Lock(out, x, factors, 0)
	for _, v := range out.Data {
		if v != 0 {
			t.Fatal("empty-slice lock MTTKRP must zero the output")
		}
	}
	s := make([]float64, 3)
	s[0] = 5
	c.TimeMode(s, x, factors)
	if s[0] != 0 {
		t.Fatal("empty-slice TimeMode must zero the output")
	}
}

func TestCheckArgsPanics(t *testing.T) {
	dims := []int{4, 4}
	x := randomSlice(16, dims, 10)
	factors := randomFactors(17, dims, 2)
	cases := []func(){
		func() { Sequential(dense.NewMatrix(4, 2), x, factors[:1], 0) }, // factor count
		func() { Sequential(dense.NewMatrix(4, 2), x, factors, 5) },     // mode range
		func() { Sequential(dense.NewMatrix(3, 2), x, factors, 0) },     // out shape
		func() { // rank mismatch
			bad := []*dense.Matrix{dense.NewMatrix(4, 3), factors[1]}
			Sequential(dense.NewMatrix(4, 3), x, bad, 0)
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
