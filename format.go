package spstream

import "strconv"

// formatFloat renders a float64 compactly for text export.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 10, 64)
}
