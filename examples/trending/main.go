// Trending-topic monitoring: the motivating application of streaming
// tensor decomposition (paper §I — "new updates on social media").
//
// A (user × term) interaction stream is generated from three hidden
// topics whose popularity drifts over time; one topic "breaks out"
// mid-stream. spCP-stream tracks the factorization slice by slice, and
// the temporal weights sₜ reveal the breakout as it happens, while the
// term-mode factor names the terms driving each component.
//
// Run with: go run ./examples/trending
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"spstream"
	"spstream/internal/synth"
)

const (
	nUsers   = 400
	nTerms   = 300
	nTopics  = 3
	nSlices  = 24
	breakout = 12 // the slice where topic 2 surges
	rank     = 6
)

// topicTerms assigns each hidden topic a disjoint vocabulary block.
func topicTerm(topic, i int) int { return topic*(nTerms/nTopics) + i }

func main() {
	stream := generateStream()

	dec, err := spstream.New([]int{nUsers, nTerms}, spstream.Options{
		Rank:      rank,
		Algorithm: spstream.SpCPStream,
		Seed:      7,
		// A lower forgetting factor adapts faster to the breakout;
		// normalization makes sₜ directly interpretable as component
		// strength (factor columns have unit norm).
		Mu:        0.9,
		Normalize: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("slice | strongest component | top terms (term-mode factor)")
	fmt.Println("------+---------------------+-----------------------------")
	for t, slice := range stream.Slices {
		if _, err := dec.ProcessSlice(slice); err != nil {
			log.Fatal(err)
		}
		comp, weight := strongestComponent(dec.LastS())
		terms := topTerms(dec, comp, 4)
		marker := ""
		if t == breakout {
			marker = "   <-- injected breakout"
		}
		fmt.Printf("%5d | comp %d (s=%6.2f)    | %v%s\n", t, comp, weight, terms, marker)
	}

	fmt.Println("\nexpected: after the breakout slice the strongest component's top")
	fmt.Println("terms shift into the topic-2 vocabulary block (term-200…term-299).")
}

// strongestComponent returns the index and weight of the largest |sₜ|
// entry.
func strongestComponent(s []float64) (int, float64) {
	best, bestAbs := 0, 0.0
	for k, v := range s {
		if a := math.Abs(v); a > bestAbs {
			best, bestAbs = k, a
		}
	}
	return best, s[best]
}

// topTerms lists the term-mode rows with the largest weight in one
// component.
func topTerms(dec *spstream.Decomposer, comp, n int) []string {
	f := dec.Factor(1) // term mode
	type tw struct {
		term   int
		weight float64
	}
	all := make([]tw, f.Rows)
	for i := 0; i < f.Rows; i++ {
		all[i] = tw{i, math.Abs(f.At(i, comp))}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].weight > all[b].weight })
	out := make([]string, 0, n)
	for _, t := range all[:n] {
		out = append(out, fmt.Sprintf("term-%d", t.term))
	}
	return out
}

// generateStream builds the synthetic interaction stream: every slice
// draws user-term events from the topic mixture of that time step.
func generateStream() *spstream.Stream {
	r := synth.NewRNG(42)
	stream := &spstream.Stream{Dims: []int{nUsers, nTerms}}
	termsPerTopic := nTerms / nTopics
	for t := 0; t < nSlices; t++ {
		// Topic popularity: topics 0/1 slowly fade, topic 2 surges at
		// the breakout slice.
		pop := []float64{1.0 - 0.02*float64(t), 0.8, 0.15}
		if t >= breakout {
			pop[2] = 3.0
		}
		total := pop[0] + pop[1] + pop[2]
		slice := spstream.NewTensor(nUsers, nTerms)
		for e := 0; e < 3000; e++ {
			// Pick a topic by popularity, then a user and an in-topic
			// term (with a little cross-topic noise).
			u := r.Float64() * total
			topic := 0
			for u > pop[topic] {
				u -= pop[topic]
				topic++
			}
			user := int32(r.Intn(nUsers))
			var term int32
			if r.Float64() < 0.9 {
				term = int32(topicTerm(topic, r.Intn(termsPerTopic)))
			} else {
				term = int32(r.Intn(nTerms))
			}
			slice.Append([]int32{user, term}, 1)
		}
		slice.Coalesce()
		stream.Slices = append(stream.Slices, slice)
	}
	return stream
}
