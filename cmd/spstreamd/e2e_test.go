package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestE2E is the end-to-end chaos smoke test of the daemon binary: it
// builds spstreamd, runs it with injected solver faults and stalls,
// and asserts the serving contract phase by phase —
//
//  1. healthy ingest: 200s, the model advances;
//  2. chaos (injected divergence): the circuit breaker opens, /readyz
//     goes 503, ingest sheds with 503 + Retry-After;
//  3. recovery: after the cooldown a probe slice closes the breaker
//     and /readyz returns 200;
//  4. overload (injected stalls + tiny queue): ingest answers 429 +
//     Retry-After, never hangs;
//  5. SIGTERM: the backlog drains, a checkpoint is written, exit 0;
//  6. restart: the restored daemon serves the same model (t, factors,
//     temporal row identical to the pre-shutdown state).
func TestE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds and runs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "spstreamd")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	build.Env = append(os.Environ(), "CGO_ENABLED=1")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	ckptDir := t.TempDir()

	// Begin-attempt timeline (window = 4 events, skip policy retries
	// each failed slice once, so one failed slice = 2 begins):
	//   1-2    phase 1's two healthy windows
	//   3-8    fail → three skipped slices → breaker opens (threshold 3)
	//   9      the half-open probe (succeeds, closes the breaker)
	//   10-40  stall 400ms → phase 4's overload
	args := []string{
		"-addr", "127.0.0.1:0",
		"-dims", "10,8", "-rank", "3", "-window", "4",
		"-queue", "1", "-shed-policy", "drop-newest",
		"-on-error", "skip",
		"-breaker-failures", "3", "-breaker-cooldown", "500ms",
		"-checkpoint-dir", ckptDir, "-every", "1", "-keep", "3",
		"-drain-timeout", "20s",
		"-chaos", "fail=3-8,stall=10-40:400ms",
	}
	base, cmd := startDaemon(t, bin, args)

	// Phase 1: healthy ingest commits two windows. One window per post,
	// retrying 429s (with queue=1 a shed can race the consumer's pop;
	// a shed window is not admitted, so it consumes no begin attempt
	// and the chaos timeline stays exact).
	for w := 0; w < 2; w++ {
		waitFor(t, "healthy window to be admitted", func() bool {
			code, _ := post(t, base, eventLines(4, 4*w))
			if code != http.StatusOK && code != http.StatusTooManyRequests {
				t.Fatalf("healthy ingest = %d, want 200 or 429", code)
			}
			return code == http.StatusOK
		})
		want := w + 1
		waitFor(t, "model to advance", func() bool { return statT(t, base) >= want })
	}

	// Phase 2: the next three windows hit injected divergence; the
	// breaker opens and readiness drops. Posted one window per request
	// so each failure is delivered before the next admission.
	for i := 0; i < 3; i++ {
		code, _ := post(t, base, eventLines(4, 8+4*i))
		if code != http.StatusOK && code != http.StatusServiceUnavailable {
			t.Fatalf("chaos ingest %d = %d, want 200 or 503", i, code)
		}
	}
	waitFor(t, "breaker to open (readyz 503)", func() bool { return get(t, base, "/readyz") == http.StatusServiceUnavailable })

	code, hdr := post(t, base, eventLines(4, 20))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("breaker-open ingest = %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("breaker-open 503 without Retry-After")
	}

	// Phase 3: after the cooldown, one probe window closes the breaker.
	waitFor(t, "breaker probe to close the breaker", func() bool {
		if get(t, base, "/readyz") == http.StatusOK {
			return true
		}
		post(t, base, eventLines(4, 24))
		return false
	})

	// Phase 4: stalled solver + queue of 1 → sustained posting must
	// observe backpressure (429 + Retry-After), never a hang or a 500.
	saw429 := false
	waitFor(t, "a 429 under overload", func() bool {
		code, hdr := post(t, base, eventLines(4, 28))
		switch code {
		case http.StatusTooManyRequests:
			if hdr.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			saw429 = true
			return true
		case http.StatusOK, http.StatusServiceUnavailable:
			return false
		default:
			t.Fatalf("overload ingest = %d, want 200/429/503", code)
			return false
		}
	})
	if !saw429 {
		t.Fatal("never saw backpressure under overload")
	}

	// Quiesce: stop posting, wait for the queue to empty and t to hold
	// still for a full second (queue depth alone misses the in-flight
	// slice the consumer has already popped — and a stalled solve
	// outlasts one poll interval), then capture the model the restart
	// must reproduce.
	lastT, stableSince := -1, time.Now()
	waitFor(t, "queue to drain and t to stabilize", func() bool {
		st := stats(t, base)
		cur := int(st["t"].(float64))
		depth := int(st["queue_depth"].(float64))
		if cur != lastT || depth != 0 {
			lastT, stableSince = cur, time.Now()
			return false
		}
		return cur > 0 && time.Since(stableSince) > time.Second
	})
	preFactors := factors(t, base)

	// Breaker counters made it into the stats document.
	st := stats(t, base)
	brk := st["breaker"].(map[string]any)
	if int(brk["opens"].(float64)) < 1 || int(brk["probes"].(float64)) < 1 {
		t.Fatalf("breaker stats = %+v, want ≥1 open and ≥1 probe", brk)
	}
	if int(st["overload"].(map[string]any)["shed_breaker"].(float64)) < 1 {
		t.Fatal("no breaker sheds counted despite the 503 phase")
	}

	// Phase 5: SIGTERM → graceful drain, final checkpoint, exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v", err)
	}
	ckpts, _ := filepath.Glob(filepath.Join(ckptDir, "ckpt-*.spstrm"))
	if len(ckpts) == 0 {
		t.Fatal("no checkpoint after graceful shutdown")
	}

	// Phase 6: restart restores the newest checkpoint; the served
	// model is identical (no chaos this time — clean flags).
	base2, cmd2 := startDaemon(t, bin, []string{
		"-addr", "127.0.0.1:0",
		"-dims", "10,8", "-rank", "3", "-window", "4",
		"-checkpoint-dir", ckptDir,
	})
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	postFactors := factors(t, base2)
	for _, key := range []string{"t", "s", "factors"} {
		if !reflect.DeepEqual(preFactors[key], postFactors[key]) {
			t.Fatalf("restored %q differs from the pre-shutdown model:\npre:  %v\npost: %v",
				key, preFactors[key], postFactors[key])
		}
	}
}

// startDaemon launches the binary and parses the "listening on" line.
func startDaemon(t *testing.T, bin string, args []string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	sc := bufio.NewScanner(stdout)
	addr := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if i := strings.LastIndex(line, "listening on "); i >= 0 {
				addr <- strings.TrimSpace(line[i+len("listening on "):])
			}
		}
	}()
	select {
	case a := <-addr:
		return "http://" + a, cmd
	case <-time.After(15 * time.Second):
		t.Fatal("daemon never printed its listen address")
		return "", nil
	}
}

// eventLines renders n events with a rotating coordinate offset.
func eventLines(n, offset int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d %d 1.0\n", (offset+i)%10+1, (offset+i)%8+1)
	}
	return b.String()
}

func post(t *testing.T, base, body string) (int, http.Header) {
	t.Helper()
	resp, err := http.Post(base+"/v1/ingest", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/ingest: %v", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header
}

func get(t *testing.T, base, path string) int {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

func getJSON(t *testing.T, base, path string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	io.Copy(&buf, resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, buf.String())
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", path, err)
	}
	return m
}

func stats(t *testing.T, base string) map[string]any   { return getJSON(t, base, "/v1/stats") }
func factors(t *testing.T, base string) map[string]any { return getJSON(t, base, "/v1/factors") }

func statT(t *testing.T, base string) int {
	return int(stats(t, base)["t"].(float64))
}

// waitFor polls cond (≤15s) — state transitions are asserted by
// polling, not exact counts, so scheduling noise cannot flake the
// phases.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
