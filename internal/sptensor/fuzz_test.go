package sptensor

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTNS: arbitrary text input must either parse into a valid
// tensor or return an error — never panic, never produce an invalid
// tensor.
func FuzzReadTNS(f *testing.F) {
	f.Add("1 2 3 1.5\n2 3 1 -0.5\n")
	f.Add("# comment\n1 1 0.0\n")
	f.Add("")
	f.Add("1\n")
	f.Add("0 1 1.0\n")
	f.Add("1 1 NaN\n")
	f.Add("9999999999999 1 1.0\n")
	f.Add("1 1 1.0\n1 2.0\n")
	f.Fuzz(func(t *testing.T, input string) {
		ts, err := ReadTNS(strings.NewReader(input), nil)
		if err != nil {
			return
		}
		if vErr := ts.Validate(); vErr != nil {
			t.Fatalf("parsed tensor invalid: %v (input %q)", vErr, input)
		}
		// Round trip: what we parsed must re-serialize and re-parse to
		// the same shape.
		var buf bytes.Buffer
		if wErr := WriteTNS(&buf, ts); wErr != nil {
			t.Fatal(wErr)
		}
		back, rErr := ReadTNS(&buf, ts.Dims)
		if rErr != nil {
			t.Fatalf("round trip failed: %v", rErr)
		}
		if back.NNZ() != ts.NNZ() {
			t.Fatalf("round trip changed nnz: %d vs %d", back.NNZ(), ts.NNZ())
		}
	})
}

// FuzzReadBinary: arbitrary bytes must never panic the binary reader.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid serialization.
	valid := New(3, 4)
	valid.Append([]int32{1, 2}, 1.5)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("SPT1"))
	f.Add([]byte("garbage that is long enough to contain stuff"))
	f.Fuzz(func(t *testing.T, input []byte) {
		ts, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		if vErr := ts.Validate(); vErr != nil {
			t.Fatalf("binary reader produced invalid tensor: %v", vErr)
		}
	})
}

// FuzzCoalesce: coalescing any structurally valid tensor preserves
// total mass and validity.
func FuzzCoalesce(f *testing.F) {
	f.Add(uint16(5), uint16(7), uint16(20))
	f.Fuzz(func(t *testing.T, d0raw, d1raw, nnzRaw uint16) {
		d0 := int(d0raw%16) + 1
		d1 := int(d1raw%16) + 1
		nnz := int(nnzRaw % 128)
		ts := New(d0, d1)
		state := uint64(d0raw)<<32 | uint64(d1raw)<<16 | uint64(nnzRaw) | 1
		next := func(n int) int32 {
			state = state*6364136223846793005 + 1442695040888963407
			return int32((state >> 33) % uint64(n))
		}
		sum := 0.0
		for e := 0; e < nnz; e++ {
			v := float64(next(9)) + 1
			ts.Append([]int32{next(d0), next(d1)}, v)
			sum += v
		}
		ts.Coalesce()
		if err := ts.Validate(); err != nil {
			t.Fatal(err)
		}
		got := 0.0
		for _, v := range ts.Vals {
			got += v
		}
		if diff := got - sum; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("coalesce changed mass: %v vs %v", got, sum)
		}
	})
}
