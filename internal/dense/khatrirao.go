package dense

// KhatriRao computes the column-wise Kronecker (Khatri-Rao) product
// C = A ⊙ B where A is Ia×K and B is Ib×K; C is (Ia·Ib)×K with
// C[i*Ib+j][k] = A[i][k]·B[j][k]. It is used by tests (to validate the
// MTTKRP kernels against the dense definition X₍ₙ₎·(⊙ A)) and by the
// dense reference decomposition; the production kernels never
// materialize it.
func KhatriRao(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic("dense: KhatriRao column mismatch")
	}
	out := NewMatrix(a.Rows*b.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		ra := a.Row(i)
		for j := 0; j < b.Rows; j++ {
			rb := b.Row(j)
			ro := out.Row(i*b.Rows + j)
			for k := range ro {
				ro[k] = ra[k] * rb[k]
			}
		}
	}
	return out
}

// KhatriRaoAll folds KhatriRao over a list of matrices left to right:
// mats[0] ⊙ mats[1] ⊙ … ⊙ mats[len-1]. With row-major matricization
// X₍ₙ₎ of a tensor whose fastest-varying index is the last mode, the
// MTTKRP for mode n equals X₍ₙ₎ · KhatriRaoAll(all factors except n, in
// mode order).
func KhatriRaoAll(mats []*Matrix) *Matrix {
	if len(mats) == 0 {
		panic("dense: KhatriRaoAll of empty list")
	}
	out := mats[0]
	for _, m := range mats[1:] {
		out = KhatriRao(out, m)
	}
	return out
}

// HadamardAll computes the Hadamard product of a list of equal-shape
// matrices into a new matrix.
func HadamardAll(mats []*Matrix) *Matrix {
	if len(mats) == 0 {
		panic("dense: HadamardAll of empty list")
	}
	out := mats[0].Clone()
	for _, m := range mats[1:] {
		Hadamard(out, out, m)
	}
	return out
}
