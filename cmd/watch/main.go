// Command watch runs a live streaming decomposition over an event feed:
// each input line is one event ("i j k value", 1-based coordinates, the
// value optional and defaulting to 1), events are windowed into slices,
// and after every window the tool prints the model's component summary —
// the end-to-end shape of the monitoring deployments the paper's
// introduction motivates ("topic monitoring, trend analysis").
//
// The feed goes through a bounded ingestion pipeline, so a producer
// that outruns the solver cannot grow memory without bound: the
// -shed-policy flag selects what happens to windows the solver cannot
// keep up with, -max-lag sheds windows that have gone stale in the
// queue, and -degrade arms the lag-aware controller that trades model
// quality for throughput under sustained overload (and restores full
// quality once the queue calms). With -spill-dir, overflow is never
// shed at all: it rides a crash-safe on-disk WAL and replays in order,
// resuming from the newest checkpoint after a crash.
// SIGINT/SIGTERM drain gracefully: the
// backlog is flushed (bounded by -drain-timeout), a final checkpoint is
// written when -checkpoint-dir is set, and the overload counters are
// reported with -stats. A second signal force-quits.
//
// Examples:
//
//	tensorgen -preset uber -scale 0.1 -o - | watch -dims 24,110,170 -rank 8
//	tail -f events.log | watch -dims 100,100 -window 5000 -top 3 \
//	    -shed-policy coalesce -max-lag 2s -degrade -stats
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"spstream"
	"spstream/internal/version"
)

// config is the parsed flag set; run takes it whole so tests can drive
// every combination without a flag round-trip.
type config struct {
	dims          []int
	window        int
	rank          int
	topN          int
	mu            float64
	alg           spstream.Algorithm
	queueCap      int
	policy        spstream.ShedPolicy
	maxLag        time.Duration
	degrade       bool
	drainTimeout  time.Duration
	windowTimeout time.Duration
	checkpointDir string
	spillDir      string
	spillMaxBytes int64
	spillFsync    time.Duration
	stats         bool
}

func main() {
	var (
		dimsFlag   = flag.String("dims", "", "mode lengths of each event's coordinates, comma separated (required)")
		window     = flag.Int("window", 10000, "events per window/slice")
		rank       = flag.Int("rank", 8, "decomposition rank")
		topN       = flag.Int("top", 3, "top rows to print per component")
		mu         = flag.Float64("mu", 0.95, "forgetting factor")
		alg        = flag.String("alg", "spcp", "algorithm: baseline, optimized, spcp")
		queueCap   = flag.Int("queue", 8, "max windows buffered between feed and solver")
		shed       = flag.String("shed-policy", "block", "full-queue policy: block, drop-newest, drop-oldest, coalesce, spill")
		maxLag     = flag.Duration("max-lag", 0, "shed windows older than this at solve time (0 = never)")
		degrade    = flag.Bool("degrade", false, "degrade model quality under sustained overload instead of falling behind")
		drainTO    = flag.Duration("drain-timeout", 30*time.Second, "max time to flush the backlog on shutdown")
		windowTO   = flag.Duration("window-timeout", 0, "emit a partial window after this much wall-clock time (0 = count only)")
		ckptDir    = flag.String("checkpoint-dir", "", "restore the newest checkpoint from here at startup and write one on graceful shutdown")
		spillDir   = flag.String("spill-dir", "", "durable backlog directory: queue overflow spills to a crash-safe WAL here and replays in order (implies -shed-policy spill)")
		spillMax   = flag.Int64("spill-max-bytes", 0, "cap on the on-disk spill backlog; 0 = unbounded (past the cap overflow is shed)")
		spillFsync = flag.Duration("spill-fsync-interval", 0, "WAL group-commit window — how much freshly spilled data a hard crash may lose (0 = fsync every window)")
		statsFlag  = flag.Bool("stats", false, "print produced/processed/shed/coalesced/rejected counters on exit")
		showVer    = flag.Bool("version", false, "print version/build information and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("watch", version.String())
		return
	}
	dims, err := parseDims(*dimsFlag)
	if err != nil {
		fatal(err)
	}
	algorithm, err := parseAlg(*alg)
	if err != nil {
		fatal(err)
	}
	policy, err := spstream.ParseShedPolicy(*shed)
	if err != nil {
		fatal(err)
	}

	// First signal: graceful drain. Restoring default handling as soon
	// as it fires means a second signal force-quits a wedged drain.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	err = run(ctx, os.Stdin, os.Stdout, config{
		dims:          dims,
		window:        *window,
		rank:          *rank,
		topN:          *topN,
		mu:            *mu,
		alg:           algorithm,
		queueCap:      *queueCap,
		policy:        policy,
		maxLag:        *maxLag,
		degrade:       *degrade,
		drainTimeout:  *drainTO,
		windowTimeout: *windowTO,
		checkpointDir: *ckptDir,
		spillDir:      *spillDir,
		spillMaxBytes: *spillMax,
		spillFsync:    *spillFsync,
		stats:         *statsFlag,
	})
	if err != nil {
		fatal(err)
	}
}

// lockedWriter serializes output: window summaries arrive from the
// pipeline's consumer goroutine while rejection warnings come from the
// producer loop.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// run is the testable core: it consumes the event feed from r and
// writes per-window summaries to w until EOF or ctx cancellation
// (signal), then drains gracefully.
func run(ctx context.Context, r io.Reader, w io.Writer, cfg config) error {
	out := &lockedWriter{w: w}
	dec, err := spstream.New(cfg.dims, spstream.Options{
		Rank:      cfg.rank,
		Algorithm: cfg.alg,
		Mu:        cfg.mu,
		TrackFit:  true,
		Normalize: true,
	})
	if err != nil {
		return err
	}
	// A checkpoint directory arms restart: pick up where the last run
	// (graceful or crashed) left off, so a spilled backlog replays
	// against the state it was admitted after.
	if cfg.checkpointDir != "" {
		switch path, err := spstream.RestoreNewestCheckpoint(cfg.checkpointDir, dec); {
		case err == nil:
			fmt.Fprintf(out, "restored checkpoint %s (t=%d)\n", path, dec.T())
		case errors.Is(err, spstream.ErrNoCheckpoint):
			// Fresh start.
		default:
			return err
		}
	}

	pcfg := spstream.IngestConfig{
		QueueCap:     cfg.queueCap,
		Policy:       cfg.policy,
		MaxLag:       cfg.maxLag,
		DrainTimeout: cfg.drainTimeout,
		OnResult: func(res spstream.SliceResult) {
			printWindow(out, dec, res, cfg.dims, cfg.topN)
		},
		OnError: func(err error) {
			fmt.Fprintf(out, "window dropped: %v\n", err)
		},
	}
	if cfg.degrade {
		pcfg.Degrade = &spstream.DegradeConfig{MaxLag: cfg.maxLag}
	}
	if cfg.spillDir != "" {
		pcfg.Policy = spstream.ShedSpill
		pcfg.Spill = &spstream.SpillConfig{
			Dir:           cfg.spillDir,
			MaxBytes:      cfg.spillMaxBytes,
			FsyncInterval: cfg.spillFsync,
			ReplayFrom:    dec.T(),
		}
	} else if cfg.policy == spstream.ShedSpill {
		return fmt.Errorf("-shed-policy spill requires -spill-dir")
	}
	p, err := spstream.NewIngestPipeline(dec, pcfg)
	if err != nil {
		return err
	}
	// The consumer gets its own context: the signal only stops the
	// producer, and the backlog still drains (bounded by DrainTimeout).
	p.Start(context.Background())

	acc := spstream.NewWindowAccumulator(cfg.dims, cfg.window)
	acc.WindowTimeout = cfg.windowTimeout

	// The scanner runs in its own goroutine so a signal interrupts the
	// loop even while a read is pending on a quiet feed.
	lines := make(chan string, 64)
	scanErr := make(chan error, 1)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 1<<16), 1<<22)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			case <-ctx.Done():
				return
			}
		}
		scanErr <- sc.Err()
	}()

	var tick <-chan time.Time
	if cfg.windowTimeout > 0 {
		ticker := time.NewTicker(cfg.windowTimeout)
		defer ticker.Stop()
		tick = ticker.C
	}

	lineNo, rejected := 0, 0
	interrupted := false
feed:
	for {
		select {
		case <-ctx.Done():
			interrupted = true
			break feed
		case <-tick:
			// A sparse feed must not stall a partial window forever.
			if slice := acc.Poll(); slice != nil {
				if err := p.Offer(slice); err != nil {
					break feed
				}
			}
		case line, ok := <-lines:
			if !ok {
				break feed
			}
			lineNo++
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			ev, err := parseEvent(line, cfg.dims)
			if err != nil {
				// A live feed keeps going past garbage; the count is
				// reported with -stats.
				rejected++
				if rejected <= 3 {
					fmt.Fprintf(out, "rejected line %d: %v\n", lineNo, err)
				}
				continue
			}
			if cfg.degrade {
				// The controller widens windows under load; the
				// accumulator follows between events.
				acc.SetWindowEvents(cfg.window * p.WindowFactor())
			}
			if slice := acc.Add(ev); slice != nil {
				if err := p.Offer(slice); err != nil {
					break feed
				}
			}
		}
	}

	// Graceful drain: flush the partial window, process the backlog,
	// checkpoint, report.
	if slice := acc.Flush(); slice != nil {
		_ = p.Offer(slice)
	}
	snap := p.Drain(context.Background())
	if interrupted {
		fmt.Fprintln(out, "interrupted: backlog drained")
	} else if err := <-scanErr; err != nil {
		return err
	}
	if cfg.checkpointDir != "" && dec.T() > 0 {
		mgr, err := spstream.NewCheckpointManager(cfg.checkpointDir, 1, 3)
		if err != nil {
			return err
		}
		path, err := mgr.Write(dec.T(), dec)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "checkpoint: %s\n", path)
	}
	if cfg.stats {
		fmt.Fprintf(out, "stats: %s rejected=%d\n", snap.String(), rejected)
	}
	if dec.T() == 0 {
		return fmt.Errorf("no complete windows in the input")
	}
	return nil
}

// printWindow renders one processed window's summary (called from the
// pipeline's consumer goroutine).
func printWindow(w io.Writer, dec *spstream.Decomposer, res spstream.SliceResult, dims []int, topN int) {
	fmt.Fprintf(w, "window %d: %d nnz, fit %.4f, %d iterations\n", res.T, res.NNZ, res.Fit, res.Iters)
	for rankPos, comp := range spstream.RankComponents(dec) {
		if rankPos >= 2 {
			break
		}
		fmt.Fprintf(w, "  component %d:", comp)
		for m := range dims {
			top := spstream.TopRows(dec, m, comp, topN)
			fmt.Fprintf(w, " mode%d=%s", m, rowList(top))
		}
		fmt.Fprintln(w)
	}
}

// parseEvent parses "i j k [value]" with 1-based coordinates. Anything
// malformed — wrong field count, out-of-range or overflowing
// coordinates, non-finite values — is an error, never a panic: the
// function is the trust boundary for arbitrary feed input.
func parseEvent(line string, dims []int) (spstream.Event, error) {
	fields := strings.Fields(line)
	if len(fields) != len(dims) && len(fields) != len(dims)+1 {
		return spstream.Event{}, fmt.Errorf("want %d coordinates (+ optional value), got %d fields", len(dims), len(fields))
	}
	ev := spstream.Event{Coord: make([]int32, len(dims)), Value: 1}
	for m := range dims {
		v, err := strconv.ParseInt(fields[m], 10, 32)
		if err != nil || v < 1 || int(v) > dims[m] {
			return spstream.Event{}, fmt.Errorf("bad coordinate %q for mode %d (dim %d)", fields[m], m, dims[m])
		}
		ev.Coord[m] = int32(v - 1)
	}
	if len(fields) == len(dims)+1 {
		v, err := strconv.ParseFloat(fields[len(dims)], 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
			return spstream.Event{}, fmt.Errorf("bad value %q", fields[len(dims)])
		}
		ev.Value = v
	}
	return ev, nil
}

func parseDims(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("-dims is required")
	}
	var dims []int
	for _, part := range strings.Split(s, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d < 1 {
			return nil, fmt.Errorf("bad dimension %q", part)
		}
		dims = append(dims, d)
	}
	if len(dims) < 2 {
		return nil, fmt.Errorf("need at least 2 modes")
	}
	return dims, nil
}

func parseAlg(s string) (spstream.Algorithm, error) {
	switch s {
	case "baseline":
		return spstream.Baseline, nil
	case "optimized":
		return spstream.Optimized, nil
	case "spcp":
		return spstream.SpCPStream, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

func rowList(rows []spstream.RowWeight) string {
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = strconv.Itoa(r.Row + 1) // back to 1-based, matching the input
	}
	return "[" + strings.Join(parts, ",") + "]"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "watch:", err)
	os.Exit(1)
}
