// Benchmarks mirroring the paper's evaluation (one per table/figure).
// These measure the real Go kernels on the current host at a reduced
// dataset scale; cmd/paperbench reproduces the paper's 56-core scaling
// curves via the calibrated performance model, and EXPERIMENTS.md maps
// each benchmark to its table/figure.
//
// Run with: go test -bench=. -benchmem
package spstream_test

import (
	"sync"
	"testing"

	"spstream"
	"spstream/internal/admm"
	"spstream/internal/core"
	"spstream/internal/csf"
	"spstream/internal/dense"
	"spstream/internal/mttkrp"
	"spstream/internal/roofline"
	"spstream/internal/sptensor"
	"spstream/internal/synth"
)

// benchScale keeps benchmark datasets small enough for CI-class
// machines while preserving the structural properties that drive the
// paper's results.
const benchScale = 0.1

var (
	benchMu      sync.Mutex
	benchStreams = map[string]*sptensor.Stream{}
)

func benchStream(b *testing.B, name string) *sptensor.Stream {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if s, ok := benchStreams[name]; ok {
		return s
	}
	cfg, err := synth.Preset(name, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	s, err := synth.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	benchStreams[name] = s
	return s
}

func benchFactors(dims []int, k int) []*dense.Matrix {
	r := synth.NewRNG(77)
	out := make([]*dense.Matrix, len(dims))
	for m, d := range dims {
		f := dense.NewMatrix(d, k)
		for i := range f.Data {
			f.Data[i] = r.Float64() + 0.1
		}
		out[m] = f
	}
	return out
}

// admmProblem builds a feasible constrained least-squares instance of
// the shape CP-stream hands to ADMM.
func admmProblem(rows, k int) (a, phi, psi *dense.Matrix) {
	r := synth.NewRNG(13)
	b := dense.NewMatrix(k+4, k)
	for i := range b.Data {
		b.Data[i] = r.NormFloat64()
	}
	phi = dense.NewMatrix(k, k)
	dense.Gram(phi, b)
	dense.AddScaledIdentity(phi, phi, 1)
	a = dense.NewMatrix(rows, k)
	for i := range a.Data {
		a.Data[i] = r.Float64()
	}
	psi = dense.NewMatrix(rows, k)
	dense.MulAB(psi, a, phi)
	return a, phi, psi
}

// BenchmarkTable1ADMMCostModel exercises the analytical cost model of
// Table I (trivial compute; included so every table has a bench target
// and regressions in the model code are caught).
func BenchmarkTable1ADMMCostModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tot := roofline.ADMMBaselineTotal(100000, 16)
		fused := roofline.ADMMFusedTotal(100000, 16)
		if tot.Words() <= fused.Words() {
			b.Fatal("cost model inverted")
		}
	}
}

// BenchmarkTable2Generate measures synthetic dataset generation (the
// Table II substitution substrate).
func BenchmarkTable2Generate(b *testing.B) {
	for _, name := range []string{"uber", "nips"} {
		b.Run(name, func(b *testing.B) {
			cfg, err := synth.Preset(name, 0.05)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := synth.Generate(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig1Histogram measures the per-mode nonzero histogram used
// by Fig. 1.
func BenchmarkFig1Histogram(b *testing.B) {
	s := benchStream(b, "flickr")
	x := s.Slices[s.T()/2]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for mode := 0; mode < x.NModes(); mode++ {
			sptensor.Histogram(x, mode, 48)
		}
	}
}

// BenchmarkFig2ADMM compares the baseline and Blocked & Fused ADMM
// kernels (Fig. 2) on a NIPS-sized mode at ranks 16 and 32.
func BenchmarkFig2ADMM(b *testing.B) {
	for _, k := range []int{16, 32} {
		a0, phi, psi := admmProblem(14000/10, k)
		for _, kind := range []string{"baseline", "blockedfused"} {
			b.Run(kind+"/rank"+itoa(k), func(b *testing.B) {
				solver := admm.NewSolver(admm.Options{Tol: 1e-30, MaxIters: 10})
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					a := a0.Clone()
					var err error
					if kind == "baseline" {
						_, err = solver.Baseline(a, phi, psi, admm.NonNeg{})
					} else {
						_, err = solver.BlockedFused(a, phi, psi, admm.NonNeg{})
					}
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig3Kernels measures both kernels across the three Fig. 3
// datasets at rank 16.
func BenchmarkFig3Kernels(b *testing.B) {
	for _, name := range []string{"patents", "nips", "uber"} {
		s := benchStream(b, name)
		x := s.Slices[s.T()/2]
		factors := benchFactors(s.Dims, 16)
		b.Run(name+"/mttkrp-lock", func(b *testing.B) {
			c := mttkrp.NewComputer(0)
			out := dense.NewMatrix(s.Dims[0], 16)
			for i := 0; i < b.N; i++ {
				c.Lock(out, x, factors, 0)
			}
		})
		b.Run(name+"/mttkrp-hybrid", func(b *testing.B) {
			c := mttkrp.NewComputer(0)
			out := dense.NewMatrix(s.Dims[0], 16)
			for i := 0; i < b.N; i++ {
				c.Hybrid(out, x, factors, 0)
			}
		})
	}
}

// BenchmarkFig4MTTKRP compares the Lock and Hybrid MTTKRP kernels plus
// the streaming-mode update across all modes (Fig. 4) on NIPS.
func BenchmarkFig4MTTKRP(b *testing.B) {
	s := benchStream(b, "nips")
	x := s.Slices[s.T()/2]
	for _, k := range []int{16, 128} {
		factors := benchFactors(s.Dims, k)
		b.Run("baseline/rank"+itoa(k), func(b *testing.B) {
			c := mttkrp.NewComputer(0)
			sv := make([]float64, k)
			outs := make([]*dense.Matrix, len(s.Dims))
			for m, d := range s.Dims {
				outs[m] = dense.NewMatrix(d, k)
			}
			for i := 0; i < b.N; i++ {
				for m := range s.Dims {
					c.Lock(outs[m], x, factors, m)
				}
				c.TimeModeLocked(sv, x, factors)
			}
		})
		b.Run("hybridlock/rank"+itoa(k), func(b *testing.B) {
			c := mttkrp.NewComputer(0)
			sv := make([]float64, k)
			outs := make([]*dense.Matrix, len(s.Dims))
			for m, d := range s.Dims {
				outs[m] = dense.NewMatrix(d, k)
			}
			for i := 0; i < b.N; i++ {
				for m := range s.Dims {
					c.Hybrid(outs[m], x, factors, m)
				}
				c.TimeMode(sv, x, factors)
			}
		})
		b.Run("rowsparse/rank"+itoa(k), func(b *testing.B) {
			c := mttkrp.NewComputer(0)
			rm := mttkrp.Remap(x)
			gathered := rm.GatherFactors(factors)
			outs := make([]*dense.Matrix, len(s.Dims))
			for m := range s.Dims {
				outs[m] = dense.NewMatrix(len(rm.NZ[m]), k)
			}
			for i := 0; i < b.N; i++ {
				for m := range s.Dims {
					c.RowSparse(outs[m], rm, gathered, m)
				}
			}
		})
	}
}

// BenchmarkFig5Constrained measures one constrained slice update with
// both kernel sets (Fig. 5) on NIPS at rank 16.
func BenchmarkFig5Constrained(b *testing.B) {
	s := benchStream(b, "nips")
	for _, alg := range []core.Algorithm{core.Baseline, core.Optimized} {
		b.Run(alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dec, err := core.NewDecomposer(s.Dims, core.Options{
					Rank: 16, Algorithm: alg, Constraint: admm.NonNeg{},
					Seed: 5, MaxIters: 3, ADMMMaxIters: 10,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := dec.ProcessSlice(s.Slices[0]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6NonConstrained measures one non-constrained slice update
// per algorithm (Fig. 6) on NIPS.
func BenchmarkFig6NonConstrained(b *testing.B) {
	benchNonConstrained(b, "nips", []int{16, 128})
}

// BenchmarkFig7Datasets is Fig. 7: the remaining datasets at rank 16.
func BenchmarkFig7Datasets(b *testing.B) {
	for _, name := range []string{"patents", "uber", "flickr"} {
		benchNonConstrained(b, name, []int{16})
	}
}

func benchNonConstrained(b *testing.B, name string, ranks []int) {
	s := benchStream(b, name)
	for _, k := range ranks {
		for _, alg := range []core.Algorithm{core.Baseline, core.Optimized, core.SpCPStream} {
			b.Run(name+"/"+alg.String()+"/rank"+itoa(k), func(b *testing.B) {
				dec, err := core.NewDecomposer(s.Dims, core.Options{
					Rank: k, Algorithm: alg, Seed: 5, MaxIters: 3,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := dec.ProcessSlice(s.Slices[i%s.T()]); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig8Breakdown runs the instrumented Flickr decomposition
// whose phase breakdown reproduces Fig. 8.
func BenchmarkFig8Breakdown(b *testing.B) {
	s := benchStream(b, "flickr")
	for _, alg := range []core.Algorithm{core.Baseline, core.Optimized, core.SpCPStream} {
		b.Run(alg.String(), func(b *testing.B) {
			dec, err := core.NewDecomposer(s.Dims, core.Options{
				Rank: 16, Algorithm: alg, Seed: 5, MaxIters: 3,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dec.ProcessSlice(s.Slices[i%s.T()]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if dec.Breakdown().Total() <= 0 {
				b.Fatal("no breakdown recorded")
			}
		})
	}
}

// BenchmarkAblationCz compares the incremental C_z maintenance of
// Algorithm 4 (lines 8–11) against recomputing C_z,t−1 from scratch
// every slice — the design choice called out in DESIGN.md.
func BenchmarkAblationCz(b *testing.B) {
	s := benchStream(b, "flickr")
	for _, direct := range []bool{false, true} {
		name := "incremental"
		if direct {
			name = "direct"
		}
		b.Run(name, func(b *testing.B) {
			dec, err := core.NewDecomposer(s.Dims, core.Options{
				Rank: 16, Algorithm: core.SpCPStream, Seed: 5, MaxIters: 3, DirectCz: direct,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dec.ProcessSlice(s.Slices[i%s.T()]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationConstrainedSpCP compares the experimental
// constrained spCP-stream extension (paper §VII future work) against
// the exact constrained Optimized algorithm.
func BenchmarkAblationConstrainedSpCP(b *testing.B) {
	s := benchStream(b, "flickr")
	run := func(b *testing.B, opt core.Options) {
		dec, err := core.NewDecomposer(s.Dims, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dec.ProcessSlice(s.Slices[i%s.T()]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("optimized-constrained", func(b *testing.B) {
		run(b, core.Options{
			Rank: 16, Algorithm: core.Optimized, Constraint: admm.NonNeg{},
			Seed: 5, MaxIters: 3, ADMMMaxIters: 10,
		})
	})
	b.Run("spcp-constrained", func(b *testing.B) {
		run(b, core.Options{
			Rank: 16, Algorithm: core.SpCPStream, Constraint: admm.NonNeg{},
			ConstrainedSpCP: true, Seed: 5, MaxIters: 3, ADMMMaxIters: 10,
		})
	})
}

// BenchmarkAblationADMMBlockSize sweeps the Blocked & Fused row-block
// size (the cache-blocking knob of Algorithm 3).
func BenchmarkAblationADMMBlockSize(b *testing.B) {
	a0, phi, psi := admmProblem(8000, 16)
	for _, rows := range []int{16, 64, 256, 1024} {
		b.Run("block"+itoa(rows), func(b *testing.B) {
			solver := admm.NewSolver(admm.Options{Tol: 1e-30, MaxIters: 10, BlockRows: rows})
			for i := 0; i < b.N; i++ {
				a := a0.Clone()
				if _, err := solver.BlockedFused(a, phi, psi, admm.NonNeg{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPublicAPI measures the facade path end to end (quickstart
// shape).
func BenchmarkPublicAPI(b *testing.B) {
	stream, err := spstream.GeneratePreset("uber", 0.05)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dec, err := spstream.New(stream.Dims, spstream.Options{Rank: 8, Algorithm: spstream.SpCPStream, MaxIters: 3})
		if err != nil {
			b.Fatal(err)
		}
		for t := 0; t < 3; t++ {
			if _, err := dec.ProcessSlice(stream.Slices[t]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblationPlanMTTKRP compares the per-slice compiled plan
// kernel against the lock-based and hybrid kernels on the same slice
// (plan construction excluded, as it is amortized over the inner
// iterations; see BenchmarkPlanVsLockInnerIters in internal/mttkrp for
// the amortized comparison including build cost).
func BenchmarkAblationPlanMTTKRP(b *testing.B) {
	s := benchStream(b, "nips")
	x := s.Slices[s.T()/2]
	factors := benchFactors(s.Dims, 16)
	mode := 2 // the long, skewed word mode
	out := dense.NewMatrix(s.Dims[mode], 16)
	c := mttkrp.NewComputer(0)
	plan := c.NewPlan(x)
	b.Run("lock", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Lock(out, x, factors, mode)
		}
	})
	b.Run("hybrid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Hybrid(out, x, factors, mode)
		}
	})
	b.Run("plan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.PlanMTTKRP(out, plan, factors, mode)
		}
	})
}

// BenchmarkAblationCSF compares the CSF (SPLATT-style, related work
// [15]) MTTKRP against the paper's COO kernels on the same slice —
// tree construction excluded, as CSF amortizes it across iterations.
func BenchmarkAblationCSF(b *testing.B) {
	s := benchStream(b, "nips")
	x := s.Slices[s.T()/2]
	factors := benchFactors(s.Dims, 16)
	forest, err := csf.NewForest(x)
	if err != nil {
		b.Fatal(err)
	}
	c := mttkrp.NewComputer(0)
	outs := make([]*dense.Matrix, len(s.Dims))
	for m, d := range s.Dims {
		outs[m] = dense.NewMatrix(d, 16)
	}
	b.Run("coo-hybrid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for m := range s.Dims {
				c.Hybrid(outs[m], x, factors, m)
			}
		}
	})
	b.Run("csf", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for m := range s.Dims {
				forest.MTTKRP(outs[m], factors, m, 0)
			}
		}
	})
	b.Run("csf-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := csf.NewForest(x); err != nil {
				b.Fatal(err)
			}
		}
	})
}
