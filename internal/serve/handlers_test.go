package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"spstream/internal/core"
)

// newTestServer builds an unstarted server (no consumer goroutine:
// admissions queue up, making backpressure deterministic).
func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Dims:         []int{8, 6},
		Options:      core.Options{Rank: 2, Seed: 1},
		WindowEvents: 4,
		QueueCap:     2,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// eventBody renders n valid events — exactly n/WindowEvents windows
// when n is a multiple.
func eventBody(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d %d 1.0\n", i%8+1, i%6+1)
	}
	return b.String()
}

func doReq(h http.Handler, method, target, body string) *httptest.ResponseRecorder {
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, target, nil)
	} else {
		r = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	return rec
}

func TestIngestBackpressure429(t *testing.T) {
	srv := newTestServer(t, nil)
	h := srv.Handler()

	// Queue cap 2, no consumer: two windows fit, the third sheds.
	rec := doReq(h, "POST", "/v1/ingest", eventBody(8))
	if rec.Code != http.StatusOK {
		t.Fatalf("first two windows = %d, want 200 (%s)", rec.Code, rec.Body)
	}
	rec = doReq(h, "POST", "/v1/ingest", eventBody(4))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("third window = %d, want 429 (%s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var resp ingestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Shed != 1 || resp.Accepted != 4 {
		t.Fatalf("shed response = %+v", resp)
	}
}

func TestIngestBreakerOpen503(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.BreakerFailures = 2 })
	h := srv.Handler()
	srv.breaker.OnFailure()
	srv.breaker.OnFailure()

	rec := doReq(h, "POST", "/v1/ingest", eventBody(4))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("breaker-open ingest = %d, want 503 (%s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if rec = doReq(h, "GET", "/readyz", ""); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with open breaker = %d, want 503", rec.Code)
	}
	if got := srv.Overload().ShedBreaker; got != 1 {
		t.Fatalf("ShedBreaker = %d, want 1", got)
	}
	// Liveness is unaffected: the process itself is healthy.
	if rec = doReq(h, "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", rec.Code)
	}
}

func TestIngestBadInput400(t *testing.T) {
	srv := newTestServer(t, nil)
	h := srv.Handler()
	rec := doReq(h, "POST", "/v1/ingest", "99 99 nope\n1 999\n")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("all-garbage body = %d, want 400 (%s)", rec.Code, rec.Body)
	}
	// Garbage mixed with valid events is absorbed, not fatal.
	rec = doReq(h, "POST", "/v1/ingest", "nonsense\n1 1 2.0\n")
	if rec.Code != http.StatusOK {
		t.Fatalf("mixed body = %d, want 200 (%s)", rec.Code, rec.Body)
	}
	var resp ingestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 1 || resp.Rejected != 1 {
		t.Fatalf("mixed response = %+v", resp)
	}
}

// TestIngestReportsFirstRejectedLine: a multi-line body with garbage in
// the middle reports the 1-based line number (counting every body line,
// blanks and comments included) and the parse error of the first
// rejected event, both in the 200 envelope and in the all-garbage 400.
func TestIngestReportsFirstRejectedLine(t *testing.T) {
	srv := newTestServer(t, nil)
	h := srv.Handler()

	body := "# header comment\n1 1 2.0\n\n99 1 1.0\nalso bad\n2 2 1.0\n"
	rec := doReq(h, "POST", "/v1/ingest", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("mixed body = %d, want 200 (%s)", rec.Code, rec.Body)
	}
	var resp ingestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 2 || resp.Rejected != 2 {
		t.Fatalf("mixed response = %+v", resp)
	}
	if resp.FirstRejectedLine != 4 {
		t.Fatalf("first_rejected_line = %d, want 4 (%+v)", resp.FirstRejectedLine, resp)
	}
	if resp.FirstRejectedError == "" {
		t.Fatal("first rejected event lost its parse error")
	}

	// All-garbage body: the 400 names the line too.
	rec = doReq(h, "POST", "/v1/ingest", "# only comments up here\nbogus line\n")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("all-garbage body = %d, want 400", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "line 2") {
		t.Fatalf("400 body does not locate the bad line: %s", rec.Body)
	}

	// A clean body reports no rejection position at all.
	rec = doReq(h, "POST", "/v1/ingest", "1 1 2.0\n")
	if strings.Contains(rec.Body.String(), "first_rejected_line") {
		t.Fatalf("clean body leaked a rejected-line field: %s", rec.Body)
	}
}

// TestStatsShardBlock: a daemon configured as one shard of a cluster
// reports its mode-0 row block in /v1/stats; an unsharded daemon omits
// the field entirely.
func TestStatsShardBlock(t *testing.T) {
	srv := newTestServer(t, func(c *Config) {
		c.Shard = &ShardInfo{ID: 1, Count: 3, RowLo: 2, RowHi: 5}
	})
	var sr statsResponse
	rec := doReq(srv.Handler(), "GET", "/v1/stats", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Shard == nil || sr.Shard.ID != 1 || sr.Shard.Count != 3 || sr.Shard.RowLo != 2 || sr.Shard.RowHi != 5 {
		t.Fatalf("shard block = %+v", sr.Shard)
	}

	plain := newTestServer(t, nil)
	rec = doReq(plain.Handler(), "GET", "/v1/stats", "")
	if strings.Contains(rec.Body.String(), "\"shard\"") {
		t.Fatalf("unsharded daemon reports a shard block: %s", rec.Body)
	}
}

func TestIngestBodyLimit413(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.BodyLimit = 64 })
	rec := doReq(srv.Handler(), "POST", "/v1/ingest", eventBody(100))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413 (%s)", rec.Code, rec.Body)
	}
}

func TestPanicContained500(t *testing.T) {
	srv := newTestServer(t, nil)
	srv.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) {
		panic("kernel exploded")
	})
	h := srv.Handler()
	if rec := doReq(h, "GET", "/boom", ""); rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", rec.Code)
	}
	// The daemon survives: the next request is served normally.
	if rec := doReq(h, "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz after panic = %d, want 200", rec.Code)
	}
}

func TestFactorsAndReconstruct(t *testing.T) {
	srv := newTestServer(t, nil)
	h := srv.Handler()

	rec := doReq(h, "GET", "/v1/factors", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("factors = %d", rec.Code)
	}
	var fr factorsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Rank != 2 || len(fr.Factors) != 2 || len(fr.Factors[0]) != 8 {
		t.Fatalf("factors shape = t=%d rank=%d modes=%d", fr.T, fr.Rank, len(fr.Factors))
	}
	if rec = doReq(h, "GET", "/v1/factors?mode=1", ""); rec.Code != http.StatusOK {
		t.Fatalf("factors?mode=1 = %d", rec.Code)
	}
	if rec = doReq(h, "GET", "/v1/factors?mode=7", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("factors?mode=7 = %d, want 400", rec.Code)
	}

	if rec = doReq(h, "GET", "/v1/reconstruct?coord=1,1", ""); rec.Code != http.StatusOK {
		t.Fatalf("reconstruct = %d (%s)", rec.Code, rec.Body)
	}
	if rec = doReq(h, "GET", "/v1/reconstruct?coord=9,1", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range reconstruct = %d, want 400", rec.Code)
	}
	if rec = doReq(h, "GET", "/v1/reconstruct?coord=1", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("wrong-arity reconstruct = %d, want 400", rec.Code)
	}
	if rec = doReq(h, "GET", "/v1/reconstruct", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("missing coord = %d, want 400", rec.Code)
	}
}

func TestStatsDocument(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.Version = "test-1.2.3" })
	rec := doReq(srv.Handler(), "GET", "/v1/stats", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d", rec.Code)
	}
	var sr statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Version != "test-1.2.3" {
		t.Fatalf("version = %q", sr.Version)
	}
	if sr.Breaker.State != "closed" {
		t.Fatalf("breaker state = %q, want closed", sr.Breaker.State)
	}
	if _, ok := sr.Overload["shed_breaker"]; !ok {
		t.Fatal("stats missing shed_breaker counter")
	}
}

func TestDrainingRefusesIngest(t *testing.T) {
	srv := newTestServer(t, nil)
	srv.draining.Store(true)
	h := srv.Handler()
	if rec := doReq(h, "POST", "/v1/ingest", eventBody(4)); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining ingest = %d, want 503", rec.Code)
	}
	if rec := doReq(h, "GET", "/readyz", ""); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", rec.Code)
	}
	// Reads still work during the drain.
	if rec := doReq(h, "GET", "/v1/factors", ""); rec.Code != http.StatusOK {
		t.Fatalf("draining factors = %d, want 200", rec.Code)
	}
}
