package synth

import (
	"fmt"
	"math"
)

// IndexDist draws nonzero coordinates for one (non-streaming) mode of a
// time slice. Sample receives the time step so distributions can drift
// over the stream (the mechanism behind clustered modes).
type IndexDist interface {
	// Dim returns the mode length.
	Dim() int
	// Sample returns one index in [0, Dim()) for time step t.
	Sample(r *RNG, t int) int32
	// Describe returns a short human-readable summary.
	Describe() string
}

// Uniform draws indices uniformly over the mode — a mode whose activity
// is spread evenly (paper Fig. 1, modes 1 and 3).
type Uniform struct{ N int }

// Dim implements IndexDist.
func (u Uniform) Dim() int { return u.N }

// Sample implements IndexDist.
func (u Uniform) Sample(r *RNG, _ int) int32 { return int32(r.Intn(u.N)) }

// Describe implements IndexDist.
func (u Uniform) Describe() string { return fmt.Sprintf("uniform(%d)", u.N) }

// Zipf draws indices from a Zipf(s) law over [0, N): a popularity-skewed
// mode such as terms or tags, where a few rows receive most updates (the
// distribution that stresses lock contention in the baseline MTTKRP).
type Zipf struct {
	N int
	S float64 // exponent, > 1
	// cached inverse-CDF table; built lazily on first Sample.
	cdf []float64
}

// NewZipf builds a Zipf sampler with a precomputed CDF table. For mode
// lengths up to a few hundred thousand the table is small and sampling
// is a binary search.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("synth: Zipf with non-positive dim")
	}
	if s <= 0 {
		panic("synth: Zipf exponent must be positive")
	}
	z := &Zipf{N: n, S: s}
	z.cdf = make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	inv := 1 / sum
	for i := range z.cdf {
		z.cdf[i] *= inv
	}
	return z
}

// Dim implements IndexDist.
func (z *Zipf) Dim() int { return z.N }

// Sample implements IndexDist (binary search of the CDF).
func (z *Zipf) Sample(r *RNG, _ int) int32 {
	u := r.Float64()
	lo, hi := 0, z.N-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int32(lo)
}

// Describe implements IndexDist.
func (z *Zipf) Describe() string { return fmt.Sprintf("zipf(%d, s=%.2f)", z.N, z.S) }

// Clustered models the Flickr image mode (paper §V-A, Fig. 1): at each
// time step only a small, mostly-contiguous window of the index range is
// active ("images are never tagged again after the initial tag and
// upload"). The window advances with t so that over the full stream the
// whole range is covered, but any single slice touches roughly
// Window + Revisit·Window rows out of N — the ~99% zero-row regime where
// spCP-stream wins big.
type Clustered struct {
	N       int
	Window  int     // size of the fresh-index window per slice
	Drift   int     // how far the window advances per time step
	Revisit float64 // probability a draw revisits an older index instead
}

// Dim implements IndexDist.
func (c Clustered) Dim() int { return c.N }

// Sample implements IndexDist.
func (c Clustered) Sample(r *RNG, t int) int32 {
	base := (t * c.Drift) % c.N
	if c.Revisit > 0 && base > 0 && r.Float64() < c.Revisit {
		// Revisit an older index (long-tail re-tagging of an old image).
		return int32(r.Intn(base))
	}
	off := r.Intn(c.Window)
	return int32((base + off) % c.N)
}

// Describe implements IndexDist.
func (c Clustered) Describe() string {
	return fmt.Sprintf("clustered(%d, window=%d, drift=%d, revisit=%.2f)", c.N, c.Window, c.Drift, c.Revisit)
}

// Fixed always returns index 0; used for degenerate single-row modes in
// tests.
type Fixed struct{}

// Dim implements IndexDist.
func (Fixed) Dim() int { return 1 }

// Sample implements IndexDist.
func (Fixed) Sample(*RNG, int) int32 { return 0 }

// Describe implements IndexDist.
func (Fixed) Describe() string { return "fixed(1)" }
