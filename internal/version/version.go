// Package version carries the build identification stamped into every
// command binary at link time:
//
//	go build -ldflags "-X spstream/internal/version.Version=v1.2.3 \
//	    -X spstream/internal/version.Commit=abc1234 \
//	    -X spstream/internal/version.BuildDate=2026-08-06T12:00:00Z"
//
// The Makefile's build targets pass these automatically (git describe /
// rev-parse / date -u). Unstamped builds report "dev". The daemon
// exposes the same triple in /v1/stats so a fleet can be audited for
// stragglers after a rollout.
package version

import (
	"fmt"
	"runtime"
)

// Set at link time via -ldflags -X; the defaults describe a plain
// `go build` with no stamping.
var (
	// Version is the semantic or describe-style release tag.
	Version = "dev"
	// Commit is the short VCS revision.
	Commit = "unknown"
	// BuildDate is the UTC build timestamp (RFC 3339).
	BuildDate = "unknown"
)

// String renders the standard one-line version banner.
func String() string {
	return fmt.Sprintf("%s (commit %s, built %s, %s)", Version, Commit, BuildDate, runtime.Version())
}
