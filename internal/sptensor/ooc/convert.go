package ooc

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"spstream/internal/resilience"
	"spstream/internal/sptensor"
)

// ConvertOptions configures the .tns → .spblk external conversion.
type ConvertOptions struct {
	// TargetBlockNNZ is the per-block nonzero target for BlockShape
	// (≤0 uses DefaultBlockNNZ).
	TargetBlockNNZ int
	// MemBudget caps the converter's sort working set in bytes (≤0
	// uses 256 MiB). Peak heap is O(MemBudget + largest block), never a
	// function of the input's total nonzero count: the input is sorted
	// in budget-sized chunks spilled to temporary run files and k-way
	// merged into the output.
	MemBudget int64
	// Dims optionally fixes the mode lengths (validated against every
	// coordinate); nil infers them from the input.
	Dims []int
}

// ConvertStats reports what a conversion produced.
type ConvertStats struct {
	Dims   []int
	NNZ    int
	Splits []int
	Blocks int
	Runs   int
}

// runEntry framing: each temporary run file is a raw sequence of
// (nModes×int32 coordinates, float64 value) records, already sorted by
// grid rank. Stability: within a run sort.SliceStable preserves input
// order, and the merge breaks rank ties by run index, so the output's
// block concatenation is the stable grid-sort of the input — the same
// canonical order WriteTensor produces in memory.

// ConvertTNS converts a FROSTT text tensor into an SPBLK001 block
// file with bounded memory: one streaming pass to learn dims and nnz,
// one chunked pass writing sorted run files, and a k-way merge written
// atomically to outPath.
func ConvertTNS(tnsPath, outPath string, opt ConvertOptions) (*ConvertStats, error) {
	if opt.TargetBlockNNZ <= 0 {
		opt.TargetBlockNNZ = DefaultBlockNNZ
	}
	if opt.MemBudget <= 0 {
		opt.MemBudget = 256 << 20
	}

	// Pass 1: shape scan.
	in, err := os.Open(tnsPath)
	if err != nil {
		return nil, err
	}
	dims, nnz, err := sptensor.ScanTNS(in, opt.Dims, func([]int32, float64) error { return nil })
	in.Close()
	if err != nil {
		return nil, err
	}
	if len(dims) > MaxModes {
		return nil, fmt.Errorf("ooc: cannot convert %d-mode tensor", len(dims))
	}
	nModes := len(dims)
	lay := Layout{Dims: dims, Splits: BlockShape(dims, nnz, opt.TargetBlockNNZ)}

	// Chunk capacity: coordinates + value + rank + sort permutation.
	perEntry := int64(4*nModes + 8 + 8 + 8)
	chunkCap := int(opt.MemBudget / perEntry)
	if chunkCap < 1024 {
		chunkCap = 1024
	}
	if chunkCap > nnz {
		chunkCap = nnz
	}

	// Pass 2: chunked stable sort into temporary runs beside the
	// output (same filesystem, so the merge's reads and the atomic
	// rename stay local).
	dir := filepath.Dir(outPath)
	chunk := newConvertChunk(nModes, chunkCap)
	var runs []*os.File
	cleanup := func() {
		for _, f := range runs {
			name := f.Name()
			f.Close()
			os.Remove(name)
		}
	}
	defer cleanup()

	spill := func() error {
		if chunk.n == 0 {
			return nil
		}
		f, err := os.CreateTemp(dir, ".spblk-run-*")
		if err != nil {
			return err
		}
		runs = append(runs, f)
		if err := chunk.sortAndWrite(f, lay); err != nil {
			return err
		}
		chunk.n = 0
		return nil
	}

	in, err = os.Open(tnsPath)
	if err != nil {
		return nil, err
	}
	_, _, err = sptensor.ScanTNS(in, dims, func(coord []int32, val float64) error {
		if chunk.n == chunkCap {
			if err := spill(); err != nil {
				return err
			}
		}
		chunk.add(coord, val)
		return nil
	})
	in.Close()
	if err != nil {
		return nil, err
	}
	if err := spill(); err != nil {
		return nil, err
	}

	// Merge the runs into the block file.
	st := &ConvertStats{Dims: dims, NNZ: nnz, Splits: lay.Splits, Runs: len(runs)}
	err = resilience.AtomicWriteFile(outPath, func(w io.Writer) error {
		fw, err := newFileWriter(w, lay)
		if err != nil {
			return err
		}
		if err := mergeRuns(fw, runs, lay); err != nil {
			return err
		}
		if fw.nnz != int64(nnz) {
			return fmt.Errorf("ooc: merged %d nonzeros, scanned %d", fw.nnz, nnz)
		}
		st.Blocks = len(fw.idx)
		return fw.finish()
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// convertChunk is one in-memory sort batch, columnar like the tensor.
type convertChunk struct {
	coords [][]int32
	vals   []float64
	ranks  []int64
	perm   []int
	n      int
}

func newConvertChunk(nModes, capacity int) *convertChunk {
	c := &convertChunk{
		coords: make([][]int32, nModes),
		vals:   make([]float64, capacity),
		ranks:  make([]int64, capacity),
		perm:   make([]int, capacity),
	}
	for m := range c.coords {
		c.coords[m] = make([]int32, capacity)
	}
	return c
}

func (c *convertChunk) add(coord []int32, val float64) {
	for m, v := range coord {
		c.coords[m][c.n] = v
	}
	c.vals[c.n] = val
	c.n++
}

func (c *convertChunk) sortAndWrite(f *os.File, lay Layout) error {
	for e := 0; e < c.n; e++ {
		r := int64(0)
		for m := range c.coords {
			r = r*int64(lay.GridDim(m)) + int64(lay.GridCoord(m, c.coords[m][e]))
		}
		c.ranks[e] = r
	}
	perm := c.perm[:c.n]
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return c.ranks[perm[a]] < c.ranks[perm[b]] })

	bw := bufio.NewWriterSize(f, 1<<16)
	var rec [4*MaxModes + 8]byte
	recLen := entryBytes(len(c.coords))
	for _, p := range perm {
		off := 0
		for m := range c.coords {
			putU32(rec[off:], uint32(c.coords[m][p]))
			off += 4
		}
		putU64(rec[off:], floatBits(c.vals[p]))
		if _, err := bw.Write(rec[:recLen]); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	_, err := f.Seek(0, io.SeekStart)
	return err
}

// runCursor streams one sorted run during the merge.
type runCursor struct {
	r     *bufio.Reader
	rec   []byte
	coord []int32
	val   float64
	rank  int64
	done  bool
}

func (rc *runCursor) advance(lay Layout) error {
	if _, err := io.ReadFull(rc.r, rc.rec); err != nil {
		if err == io.EOF {
			rc.done = true
			return nil
		}
		return err
	}
	off := 0
	r := int64(0)
	for m := range rc.coord {
		c := int32(binary.LittleEndian.Uint32(rc.rec[off:]))
		off += 4
		rc.coord[m] = c
		r = r*int64(lay.GridDim(m)) + int64(lay.GridCoord(m, c))
	}
	rc.val = math.Float64frombits(binary.LittleEndian.Uint64(rc.rec[off:]))
	rc.rank = r
	return nil
}

// mergeRuns k-way merges the sorted runs into block sections, buffering
// exactly one block at a time. Rank ties break by run index, which is
// chunk order, which is input order — the stability half of the
// canonical grid-sort.
func mergeRuns(fw *fileWriter, runs []*os.File, lay Layout) error {
	nModes := len(lay.Dims)
	cursors := make([]*runCursor, len(runs))
	for i, f := range runs {
		cursors[i] = &runCursor{
			r:     bufio.NewReaderSize(f, 1<<16),
			rec:   make([]byte, entryBytes(nModes)),
			coord: make([]int32, nModes),
		}
		if err := cursors[i].advance(lay); err != nil {
			return err
		}
	}

	grid := make([]int32, nModes)
	coords := make([][]int32, nModes)
	var vals []float64
	curRank := int64(-1)
	flush := func() error {
		if len(vals) == 0 {
			return nil
		}
		err := fw.writeBlock(grid, coords, vals)
		for m := range coords {
			coords[m] = coords[m][:0]
		}
		vals = vals[:0]
		return err
	}
	for {
		best := -1
		for i, rc := range cursors {
			if rc.done {
				continue
			}
			if best < 0 || rc.rank < cursors[best].rank {
				best = i
			}
		}
		if best < 0 {
			break
		}
		rc := cursors[best]
		if rc.rank != curRank {
			if err := flush(); err != nil {
				return err
			}
			curRank = rc.rank
			for m := 0; m < nModes; m++ {
				grid[m] = lay.GridCoord(m, rc.coord[m])
			}
		}
		for m := 0; m < nModes; m++ {
			coords[m] = append(coords[m], rc.coord[m])
		}
		vals = append(vals, rc.val)
		if err := rc.advance(lay); err != nil {
			return err
		}
	}
	return flush()
}
