package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"spstream/internal/dense"
	"spstream/internal/mttkrp"
	"spstream/internal/parallel"
	"spstream/internal/resilience"
	"spstream/internal/sptensor"
	"spstream/internal/trace"
)

// spcpRun holds the per-slice state of Algorithm 4 between the
// begin/iterate/finish phases: the remapped slice, its compiled MTTKRP
// plan, the gathered A_nz iterates, and the per-mode final transforms.
type spcpRun struct {
	x         *sptensor.Tensor
	rm        *mttkrp.Remapped
	plan      *mttkrp.Plan
	aNzPrev   []*dense.Matrix
	aNz       []*dense.Matrix
	tFinal    []*dense.Matrix
	czCur     []*dense.Matrix
	tmpKK     *dense.Matrix
	deltaPrev float64
	res       SliceResult
}

// processSliceSpCP runs one time slice of the paper's Algorithm 4
// (spCP-stream). Factor rows are partitioned per mode into the nz(n)
// subset touched by this slice's nonzeros and the untouched z(n)
// subset. Only A_nz is materialized and iterated on; the z rows are
// carried implicitly through the K×K Gram matrices C_z (Eq. 11) and
// updated explicitly once, after convergence, by the accumulated
// transform Q·Φ⁻¹ of the final iteration (Eq. 6). The inner loop
// therefore costs O(nnz·K + |nz|·K² + K³) per mode instead of
// O(nnz·K + Iₙ·K²) — the source of the 102× speedups on skewed tensors.
func (d *Decomposer) processSliceSpCP(ctx context.Context, x *sptensor.Tensor) (SliceResult, error) {
	run, err := d.beginSpCP(x)
	if err != nil {
		return run.res, err
	}
	for iter := 1; iter <= d.opt.MaxIters; iter++ {
		d.iterNo = iter
		if err := ctx.Err(); err != nil {
			return run.res, err
		}
		if err := d.injectFault(resilience.StageIterate, iter); err != nil {
			return run.res, err
		}
		converged, err := d.iterateSpCP(run)
		if err != nil {
			return run.res, err
		}
		if converged {
			run.res.Converged = true
			break
		}
	}
	return d.finishSpCP(run), nil
}

// beginSpCP performs the Pre work: remap, nz bookkeeping, incremental
// C_z,t−1 maintenance, the A_nz gathers, the per-slice MTTKRP plan over
// the remapped slice (amortized across all inner iterations), and the
// sₜ warm start.
func (d *Decomposer) beginSpCP(x *sptensor.Tensor) (*spcpRun, error) {
	run := &spcpRun{
		x:         x,
		deltaPrev: math.Inf(1),
		res:       SliceResult{T: d.t, NNZ: x.NNZ(), Fit: math.NaN()},
	}
	var err error
	d.bd.Time(trace.Pre, func() {
		// Pooled remap (ascending local ids — spCP's incremental C_z
		// bookkeeping relies on sorted NZ sets): the dense LUT scratch,
		// NZ lists, and index columns are reused across slices.
		run.rm = d.remapper.Begin(x, nil)
		rm := run.rm
		if d.prevNZ == nil || d.opt.DirectCz {
			// First slice (or the DirectCz ablation): C_z,t−1 =
			// C − Gram(A_nz) from scratch.
			for m := range d.a {
				aNzPrevM := gatherNZ(d.a[m], rm.NZ[m])
				gram := dense.NewMatrix(d.k, d.k)
				dense.GramParallel(gram, aNzPrevM, d.opt.Workers)
				dense.Sub(d.cz[m], d.c[m], gram)
			}
		} else {
			// Algorithm 4 lines 8–11: adjust C_z,t−1 by the rows that
			// left (add) and entered (subtract) the nz set.
			for m := range d.a {
				left := mttkrp.SetDiff(d.prevNZ[m], rm.NZ[m])
				entered := mttkrp.SetDiff(rm.NZ[m], d.prevNZ[m])
				if len(left) > 0 {
					g := dense.NewMatrix(d.k, d.k)
					dense.GramParallel(g, gatherNZ(d.a[m], left), d.opt.Workers)
					dense.Add(d.cz[m], d.cz[m], g)
				}
				if len(entered) > 0 {
					g := dense.NewMatrix(d.k, d.k)
					dense.GramParallel(g, gatherNZ(d.a[m], entered), d.opt.Workers)
					dense.Sub(d.cz[m], d.cz[m], g)
				}
			}
		}
		// Gather A_nz,t−1 and initialize the iterate A_nz from it; seed
		// the Gram state exactly like the explicit path.
		run.aNzPrev = make([]*dense.Matrix, d.n)
		run.aNz = make([]*dense.Matrix, d.n)
		run.tFinal = make([]*dense.Matrix, d.n)
		run.czCur = make([]*dense.Matrix, d.n)
		for m := range d.a {
			run.aNzPrev[m] = gatherNZ(d.a[m], rm.NZ[m])
			run.aNz[m] = run.aNzPrev[m].Clone()
			run.tFinal[m] = dense.NewMatrix(d.k, d.k)
			run.czCur[m] = dense.NewMatrix(d.k, d.k)
			d.cPrev[m].CopyFrom(d.c[m])
			d.h[m].CopyFrom(d.c[m])
		}
		run.tmpKK = dense.NewMatrix(d.k, d.k)
		// Ψ_nz workspaces sized per mode (row counts differ across
		// modes, so each mode owns its own buffer — resizing one shared
		// buffer would allocate on every inner iteration).
		d.ensureNzPsi(rm)
		// The compiled MTTKRP layouts over the remapped slice, reused by
		// every A_nz update of the inner loop. Kernel selection profiles
		// the remapped slice — its mode lengths are the nz-row counts, so
		// the cost model sees the problem the kernels actually run on.
		run.plan = d.beginKernels(rm.X)
		// sₜ update over the remapped slice and gathered prev factors
		// (identical values, slice-local footprint).
		err = d.solveS(rm.X, run.aNzPrev, false)
	})
	if err != nil {
		return run, err
	}
	d.bd.Time(trace.Misc, d.buildMuG)
	return run, nil
}

// iterateSpCP runs one inner iteration of Algorithm 4 and reports
// convergence. Steady-state allocation-free, like iterateExplicit.
func (d *Decomposer) iterateSpCP(run *spcpRun) (bool, error) {
	run.res.Iters++
	d.bd.Iters++
	phi := d.scratch1
	q := d.scratch2
	for n := 0; n < d.n; n++ {
		// Q⁽ⁿ⁾ (Eq. 14) — Hadamard of K×K Grams, replacing the
		// baseline's giant Historical matrix products.
		t0 := time.Now()
		d.buildQ(q, n)
		d.bd.Add(trace.Historical, time.Since(t0))
		t0 = time.Now()
		d.buildPhi(phi, n)
		err := d.factorize(phi)
		d.bd.Add(trace.Inverse, time.Since(t0))
		if err != nil {
			return false, fmt.Errorf("core: spcp mode %d Φ factorization: %w", n, err)
		}
		// A_nz update (Eq. 7): plan-based spMTTKRP over gathered factors
		// plus the nz part of the historical term, then the Φ solve.
		t0 = time.Now()
		psi := d.nzPsi[n]
		switch d.kernels[n] {
		case kcCSF:
			d.csfEng.MTTKRP(psi, run.aNz, n)
		case kcPlan:
			d.mt.PlanMTTKRP(psi, run.plan, run.aNz, n)
		default:
			d.mt.Lock(psi, run.rm.X, run.aNz, n)
		}
		// Column-scale by sₜ: the time mode's single Khatri-Rao row
		// (see processSliceExplicit).
		dense.ScaleColumns(psi, psi, d.s)
		d.bd.Add(trace.MTTKRP, time.Since(t0))
		t0 = time.Now()
		d.addMulAB(psi, run.aNzPrev[n], q)
		if d.opt.Constraint == nil {
			d.solveRows(run.aNz[n], psi, &d.chol)
		} else {
			// Experimental constrained extension (§VII): the nz rows
			// are solved with BF-ADMM (warm-started from the previous
			// iterate); the z rows stay linear and are projected once
			// per slice in Post.
			st, e := d.solver.BlockedFused(run.aNz[n], phi, psi, d.opt.Constraint)
			run.res.ADMMIters += st.Iters
			err = e
		}
		d.bd.Add(trace.Update, time.Since(t0))
		if err != nil {
			return false, fmt.Errorf("core: spcp mode %d ADMM: %w", n, err)
		}
		// Gram refresh: C_nz from the explicit nz rows; the H_nz
		// cross-Gram is historical-term work (Fig. 8 accounting) …
		t0 = time.Now()
		dense.GramParallel(d.c[n], run.aNz[n], d.opt.Workers) // C_nz into c[n]
		d.bd.Add(trace.Gram, time.Since(t0))
		t0 = time.Now()
		dense.MulAtBParallel(d.h[n], run.aNzPrev[n], run.aNz[n], d.opt.Workers)
		// … and the implicit z parts (Eqs. 11, 13): T = QΦ⁻¹,
		// H_z = C_z,t−1·T, C_z = Tᵀ·C_z,t−1·T. All K×K.
		d.chol.SolveRowsInto(run.tFinal[n], q)
		dense.MulAB(run.tmpKK, d.cz[n], run.tFinal[n]) // C_z,t−1·T
		dense.Add(d.h[n], d.h[n], run.tmpKK)           // H = H_nz + H_z
		dense.MulAtB(run.czCur[n], run.tFinal[n], run.tmpKK)
		dense.Add(d.c[n], d.c[n], run.czCur[n]) // C = C_nz + C_z
		d.bd.Add(trace.Historical, time.Since(t0))
		if d.opt.Normalize {
			t0 = time.Now()
			d.normalizeModeSpCP(n, run.aNz[n], run.tFinal[n], run.czCur[n])
			d.bd.Add(trace.Misc, time.Since(t0))
		}
	}
	// Time-mode ALS block: refresh sₜ over the remapped slice and the
	// gathered current factors, then the µG + ssᵀ operand.
	t0 := time.Now()
	err := d.solveS(run.rm.X, run.aNz, false)
	d.bd.Add(trace.MTTKRP, time.Since(t0))
	if err != nil {
		return false, err
	}
	t0 = time.Now()
	d.buildMuG()
	d.bd.Add(trace.Misc, time.Since(t0))
	// Trace-form convergence (Eqs. 16–17):
	// ‖A−Aₜ₋₁‖² = tr(C) + tr(Cₜ₋₁) − 2tr(H), ‖A‖² = tr(C).
	t0 = time.Now()
	var delta float64
	for n := 0; n < d.n; n++ {
		den := dense.Trace(d.c[n])
		num := den + dense.Trace(d.cPrev[n]) - 2*dense.Trace(d.h[n])
		if num < 0 {
			num = 0 // floating-point cancellation guard
		}
		if den > 0 {
			delta += math.Sqrt(num / den)
		}
	}
	d.bd.Add(trace.Error, time.Since(t0))
	run.res.Delta = delta
	converged := math.Abs(delta-run.deltaPrev) < d.opt.Tol
	run.deltaPrev = delta
	return converged, nil
}

// finishSpCP materializes A = A_z ⊕ A_nz (Alg. 4 line 34) and performs
// the shared Post bookkeeping.
func (d *Decomposer) finishSpCP(run *spcpRun) SliceResult {
	rm := run.rm
	d.bd.Time(trace.Post, func() {
		for m := range d.a {
			projected := d.applyZTransform(d.a[m], rm.NZ[m], run.tFinal[m])
			rm.ScatterMode(d.a[m], run.aNz[m], m)
			if projected {
				// The z rows changed beyond the linear transform, so
				// re-synchronize C_z (and with it C) from the
				// materialized rows — one Gram pass per slice.
				gramExcluding(d.cz[m], d.a[m], rm.NZ[m], d.opt.Workers)
				gram := dense.NewMatrix(d.k, d.k)
				dense.GramParallel(gram, run.aNz[m], d.opt.Workers)
				dense.Add(d.c[m], d.cz[m], gram)
			} else {
				d.cz[m].CopyFrom(run.czCur[m])
			}
		}
		if d.prevNZ == nil {
			d.prevNZ = make([][]int32, d.n)
		}
		// Deep copy: the pooled remapper reuses rm.NZ's storage on the
		// next Begin, so aliasing it here would corrupt the incremental
		// C_z bookkeeping of the following slice.
		for m := range rm.NZ {
			d.prevNZ[m] = append(d.prevNZ[m][:0], rm.NZ[m]...)
		}
	})
	if d.opt.TrackFit {
		d.bd.Time(trace.Misc, func() { run.res.Fit = d.sliceFit(run.x) })
	}
	d.bd.Time(trace.Post, d.finishSlice)
	return run.res
}

// ensureNzPsi sizes the per-mode Ψ_nz workspaces to the remapped
// slice's nz row counts, reallocating only the modes whose count
// changed since the previous slice.
func (d *Decomposer) ensureNzPsi(rm *mttkrp.Remapped) {
	if d.nzPsi == nil {
		d.nzPsi = make([]*dense.Matrix, d.n)
	}
	for m := range d.nzPsi {
		rows := len(rm.NZ[m])
		if d.nzPsi[m] == nil || d.nzPsi[m].Rows != rows || d.nzPsi[m].Cols != d.k {
			d.nzPsi[m] = dense.NewMatrix(rows, d.k)
		}
	}
}

// applyZTransform updates every z row of the full factor in place:
// row ← row·T (Eq. 6 with A_z,t−1 being the untouched rows of a). nz is
// the sorted nonzero-row list; all other rows are transformed. In the
// constrained extension the materialized z rows are additionally
// projected onto the constraint set; the return value reports whether
// that projection ran (the caller must then re-synchronize the Grams).
func (d *Decomposer) applyZTransform(a *dense.Matrix, nz []int32, t *dense.Matrix) bool {
	isNZ := make([]bool, a.Rows)
	for _, i := range nz {
		isNZ[i] = true
	}
	k := d.k
	con := d.opt.Constraint
	parallel.For(a.Rows, d.opt.Workers, func(_ int, r parallel.Range) {
		tmp := make([]float64, k)
		for i := r.Lo; i < r.Hi; i++ {
			if isNZ[i] {
				continue
			}
			row := a.Row(i)
			for j := 0; j < k; j++ {
				sum := 0.0
				for p := 0; p < k; p++ {
					sum += row[p] * t.Data[p*t.Stride+j]
				}
				tmp[j] = sum
			}
			copy(row, tmp)
			if con != nil {
				rowView := a.RowView(i, i+1)
				con.Project(rowView, nil, 1)
			}
		}
	})
	return con != nil
}

// gramExcluding computes dst = Σ_{i ∉ nz} a[i]ᵀa[i] — the Gram of the z
// rows — without gathering them, via per-worker partials reduced in
// worker order.
func gramExcluding(dst, a *dense.Matrix, nz []int32, workers int) {
	isNZ := make([]bool, a.Rows)
	for _, i := range nz {
		isNZ[i] = true
	}
	k := a.Cols
	partial := parallel.ReduceVec(a.Rows, workers, k*k, func(_ int, r parallel.Range, acc []float64) {
		for i := r.Lo; i < r.Hi; i++ {
			if isNZ[i] {
				continue
			}
			row := a.Row(i)
			for x, vx := range row {
				if vx == 0 {
					continue
				}
				off := x * k
				for y := x; y < k; y++ {
					acc[off+y] += vx * row[y]
				}
			}
		}
	})
	for x := 0; x < k; x++ {
		for y := x; y < k; y++ {
			v := partial[x*k+y]
			dst.Data[x*dst.Stride+y] = v
			dst.Data[y*dst.Stride+x] = v
		}
	}
}

// gatherNZ gathers the rows listed in idx (int32) from src.
func gatherNZ(src *dense.Matrix, idx []int32) *dense.Matrix {
	out := dense.NewMatrix(len(idx), src.Cols)
	for r, i := range idx {
		copy(out.Row(r), src.Row(int(i)))
	}
	return out
}
