package csf

import (
	"fmt"

	"spstream/internal/dense"
	"spstream/internal/parallel"
	"spstream/internal/sptensor"
)

// tileTargetNNZ is the nonzero budget of one schedulable tile. The tile
// decomposition depends only on the tree (never on the worker count), so
// the summation order — and therefore the floating-point result — is
// identical for any number of workers.
const tileTargetNNZ = 4096

// splitThresholdNNZ is the root size above which a root stops being
// schedulable as a unit and is split at child (level-1) granularity into
// shard tiles that accumulate privately and merge afterwards.
const splitThresholdNNZ = tileTargetNNZ + tileTargetNNZ/2

// ModeOrder writes the CSF level order for a tree rooted at mode root
// into buf and returns it: the root first, then the remaining modes by
// increasing length (ties broken by mode index), which maximizes prefix
// sharing near the top of the tree. buf is reused when its capacity
// suffices; pass nil to allocate.
func ModeOrder(buf []int, dims []int, root int) []int {
	buf = buf[:0]
	buf = append(buf, root)
	for m := range dims {
		if m != root {
			buf = append(buf, m)
		}
	}
	rest := buf[1:]
	// Insertion sort: n is tiny and this must not allocate.
	for i := 1; i < len(rest); i++ {
		for j := i; j > 0; j-- {
			a, b := rest[j-1], rest[j]
			if dims[a] < dims[b] || (dims[a] == dims[b] && a < b) {
				break
			}
			rest[j-1], rest[j] = b, a
		}
	}
	return buf
}

// ModeOrderBase writes the sorted-base level order for a tree rooted at
// mode root into buf and returns it: the root first, then the remaining
// modes in storage (ascending-index) order. For a slice stored in
// lexicographic mode order — what sptensor.Coalesce produces — this is
// the order the engine can build with at most one counting-sort pass
// instead of one per level: stable-sorting a lexicographically sorted
// slice by a single mode leaves the tie groups in exactly this nested
// order.
func ModeOrderBase(buf []int, n, root int) []int {
	buf = buf[:0]
	buf = append(buf, root)
	for m := 0; m < n; m++ {
		if m != root {
			buf = append(buf, m)
		}
	}
	return buf
}

// tile is one unit of kernel work. A whole-root tile (shard < 0) owns
// roots [rLo, rHi) and writes their output rows directly — no other tile
// touches those rows. A shard tile (shard ≥ 0) owns the children
// [cLo, cHi) of the single oversized root rLo and accumulates into the
// engine's shard slot `shard`; the shards are folded into the root's
// output row serially, in tile order, after the parallel phase.
type tile struct {
	rLo, rHi int32
	cLo, cHi int32
	shard    int32
}

// tree is one pooled CSF orientation: the fiber forest rooted at a
// single output mode, plus its tile schedule. All slices are reused
// across Begin calls, so steady-state rebuilds allocate nothing.
type tree struct {
	order  []int
	levels []Level
	vals   []float64
	// rootVal[r] / childVal[c] are the value indices where root r's /
	// level-1 node c's subtree begins (one sentinel entry at the end), so
	// subtree nonzero counts are O(1) — the tile scheduler's weights.
	rootVal  []int32
	childVal []int32

	tiles   []tile
	cumTile []int32 // cumulative tile nonzero weights, len(tiles)+1
	wb      []int32 // worker→tile boundaries from WeightedBoundaries
	nSplit  int     // shard slots needed (number of shard tiles)
	built   bool
	// sortPasses records how many counting-sort passes the last build
	// spent (N for the radix path, 0–1 for the sorted-base fast path);
	// diagnostics only.
	sortPasses int8
}

// Engine is a pooled, multi-mode CSF MTTKRP engine: one tree orientation
// per output mode, built per slice (lazily, on the first MTTKRP of each
// mode, or eagerly via Build) with radix sorts into reusable buffers,
// and a tiled kernel on a persistent parallel.Pool. In steady state —
// once buffers have grown to the stream's working size — Begin, Build,
// and MTTKRP allocate nothing.
//
// Results are bit-identical across worker counts and across repeated
// calls: the tile decomposition depends only on the tree, whole-root
// tiles own their output rows, and shard tiles merge in tile order.
type Engine struct {
	workers int
	pool    *parallel.Pool

	// Exactly one of x (in-memory slice, via Begin) and src (blocked
	// slice, via BeginBlocks) is non-nil while the engine is active.
	// dims mirrors the active slice's mode lengths either way, so the
	// kernels and shape checks never need the tensor itself — in blocked
	// mode only the built trees are resident, never the nonzeros.
	x     *sptensor.Tensor
	src   sptensor.BlockSource
	dims  []int
	trees []*tree

	// Sorted-base fast path: baseHint is the caller's claim that the
	// active slice is lexicographically sorted by storage mode order;
	// baseState caches the engine's own verification of that claim
	// (never trusted blindly — an unsorted slice through the fast path
	// would produce duplicate roots and break the tile scheduler's
	// exclusive-ownership invariant).
	baseHint  bool
	baseState int8 // 0 unchecked, 1 verified sorted, 2 refuted

	// Build scratch: the double-buffered radix-sort permutation, the
	// counting-sort histogram, and the previous-coordinate register.
	perm, perm2 []int32
	count       []int32
	prev        []int32

	// gx is the blocked build's reusable slab gather buffer.
	gx sptensor.Tensor

	// Kernel scratch: per worker, lcap partial-product rows of kcap
	// floats (one per internal tree level).
	scratch [][]float64
	kcap    int
	lcap    int

	// Shard accumulators for split roots, k floats per shard tile.
	shards []float64

	args engineArgs
}

// engineArgs carries one MTTKRP invocation through the pool without a
// closure; owned by the Engine and cleared after each call.
type engineArgs struct {
	e       *Engine
	t       *tree
	out     *dense.Matrix
	factors []*dense.Matrix
	k       int
}

func (a *engineArgs) reset() {
	e := a.e
	*a = engineArgs{e: e}
}

// NewEngine creates an engine for the given worker count (≤0 means
// GOMAXPROCS), dispatching through the shared default pool.
func NewEngine(workers int) *Engine {
	return NewEngineWithPool(workers, parallel.Default())
}

// NewEngineWithPool is NewEngine on an explicit pool.
func NewEngineWithPool(workers int, pool *parallel.Pool) *Engine {
	if workers <= 0 {
		workers = parallel.DefaultWorkers()
	}
	e := &Engine{workers: workers, pool: pool}
	e.args.e = e
	return e
}

// Workers returns the worker count the engine schedules for.
func (e *Engine) Workers() int { return e.workers }

// Begin points the engine at a new slice and invalidates every tree.
// The slice must not be mutated while the engine is in use. Trees are
// rebuilt lazily on the first MTTKRP per mode (or eagerly via Build).
func (e *Engine) Begin(x *sptensor.Tensor) {
	e.x = x
	e.src = nil
	e.begin(x.Dims)
}

// begin resets the per-slice state shared by Begin and BeginBlocks.
func (e *Engine) begin(dims []int) {
	e.dims = dims
	e.baseHint = false
	e.baseState = 0
	if len(e.trees) != len(dims) {
		e.trees = make([]*tree, len(dims))
	}
	for _, t := range e.trees {
		if t != nil {
			t.built = false
		}
	}
}

// SetSortedBase declares that the slice passed to the latest Begin is
// stored in lexicographic (mode 0, 1, …) order, enabling the sorted
// fast build: trees use the ModeOrderBase level order and need zero
// (root mode 0) or one (other roots) counting-sort passes instead of
// one per level. The claim is verified once per Begin with a single
// O(nnz) scan before the first build uses it; a refuted claim silently
// falls back to the full radix path, so a wrong hint costs only the
// scan. Cleared by the next Begin.
func (e *Engine) SetSortedBase() {
	e.baseHint = true
}

// baseUsable verifies the sorted-base hint on first use.
func (e *Engine) baseUsable() bool {
	if !e.baseHint || e.x == nil {
		return false
	}
	if e.baseState == 0 {
		if lexSorted(e.x) {
			e.baseState = 1
		} else {
			e.baseState = 2
		}
	}
	return e.baseState == 1
}

// lexSorted reports whether x is strictly sorted lexicographically by
// storage mode order. Strictness matters: with no duplicate
// coordinates, every nonzero opens its own leaf, which is what lets the
// sorted build bulk-fill the leaf level. Coalesced slices are strictly
// sorted by construction; a duplicated coordinate refutes the hint and
// the build falls back to the duplicate-coalescing radix path.
func lexSorted(x *sptensor.Tensor) bool {
	n := x.NModes()
	for e := 1; e < x.NNZ(); e++ {
		tie := true
		for m := 0; m < n; m++ {
			a, b := x.Inds[m][e-1], x.Inds[m][e]
			if a < b {
				tie = false
				break
			}
			if a > b {
				return false
			}
		}
		if tie {
			return false
		}
	}
	return true
}

// Build constructs the tree rooted at mode now (normally done lazily by
// MTTKRP). Exposed so callers can keep the build inside their Pre phase.
func (e *Engine) Build(mode int) {
	e.tree(mode)
}

// Built reports whether mode's tree is current for the active slice.
func (e *Engine) Built(mode int) bool {
	return (e.x != nil || e.src != nil) && mode < len(e.trees) && e.trees[mode] != nil && e.trees[mode].built
}

func (e *Engine) tree(mode int) *tree {
	if e.x == nil && e.src == nil {
		panic("csf: Engine used before Begin")
	}
	if mode < 0 || mode >= len(e.trees) {
		panic(fmt.Sprintf("csf: mode %d out of range", mode))
	}
	t := e.trees[mode]
	if t == nil {
		t = &tree{levels: make([]Level, len(e.dims))}
		e.trees[mode] = t
	}
	if !t.built {
		e.buildTree(t, mode)
	}
	return t
}

// buildTree (re)builds t as the CSF orientation rooted at mode: an LSD
// radix sort of the nonzeros (one stable counting sort per level, last
// level first) followed by a single pass that opens a node at level l
// whenever any coordinate at levels ≤ l changes, then the tile schedule.
func (e *Engine) buildTree(t *tree, mode int) {
	n := len(e.dims)
	if n < 2 {
		panic("csf: need ≥ 2 modes")
	}
	if e.src != nil {
		e.buildTreeBlocked(t, mode)
		return
	}
	x := e.x
	if e.baseUsable() {
		t.order = ModeOrderBase(t.order, n, mode)
		perm := e.sortPermSorted(x, mode, t)
		e.buildLevelsSorted(t, perm)
	} else {
		t.order = ModeOrder(t.order, x.Dims, mode)
		perm := e.sortPerm(x, t.order)
		t.sortPasses = int8(n)
		e.buildLevels(t, perm)
	}

	t.buildTiles(e.workers)
	t.built = true
}

// buildLevels is the general level construction: one pass over the
// sorted permutation, opening a node at level l whenever any coordinate
// at levels ≤ l changes; duplicate coordinates (div == n) coalesce into
// the previous leaf's value range.
func (e *Engine) buildLevels(t *tree, perm []int32) {
	e.resetLevels(t)
	total := e.appendLevels(t, e.x, perm, 0)
	e.finalizeLevels(t, total)
}

// resetLevels clears the tree's level arrays before an incremental
// build (one appendLevels call per sorted batch).
func (e *Engine) resetLevels(t *tree) {
	for l := range t.levels {
		t.levels[l].IDs = t.levels[l].IDs[:0]
		t.levels[l].Ptr = t.levels[l].Ptr[:0]
	}
	t.vals = t.vals[:0]
	t.rootVal = t.rootVal[:0]
	t.childVal = t.childVal[:0]
}

// appendLevels appends the sorted batch perm of x to the tree under
// construction and returns the new global nonzero count. base is the
// count before this batch; e.prev carries the previous nonzero's
// coordinates across batches, so feeding the global sorted order in
// pieces produces exactly the tree a single-batch build would — the
// seam the blocked build relies on.
func (e *Engine) appendLevels(t *tree, x *sptensor.Tensor, perm []int32, base int) int {
	n := len(e.dims)
	if cap(e.prev) < n {
		e.prev = make([]int32, n)
	}
	prev := e.prev[:n]

	for i, p := range perm {
		g := base + i
		t.vals = append(t.vals, x.Vals[p])
		// div = first level whose coordinate differs from the previous
		// nonzero; duplicates (div == n) extend the last leaf's value
		// range, coalescing for free.
		div := 0
		if g > 0 {
			div = n
			for l := 0; l < n; l++ {
				if x.Inds[t.order[l]][p] != prev[l] {
					div = l
					break
				}
			}
		}
		for l := div; l < n; l++ {
			idx := x.Inds[t.order[l]][p]
			prev[l] = idx
			lev := &t.levels[l]
			lev.IDs = append(lev.IDs, idx)
			if l == n-1 {
				lev.Ptr = append(lev.Ptr, int32(g))
			} else {
				// Child start = the next level's node count before this
				// round appends to it (levels are opened top-down).
				lev.Ptr = append(lev.Ptr, int32(len(t.levels[l+1].IDs)))
			}
			if l == 0 {
				t.rootVal = append(t.rootVal, int32(g))
			}
			if l == 1 {
				t.childVal = append(t.childVal, int32(g))
			}
		}
	}
	return base + len(perm)
}

// finalizeLevels appends the sentinel entries once every batch is in.
func (e *Engine) finalizeLevels(t *tree, nnz int) {
	n := len(e.dims)
	for l := 0; l < n-1; l++ {
		t.levels[l].Ptr = append(t.levels[l].Ptr, int32(len(t.levels[l+1].IDs)))
	}
	t.levels[n-1].Ptr = append(t.levels[n-1].Ptr, int32(nnz))
	t.rootVal = append(t.rootVal, int32(nnz))
	t.childVal = append(t.childVal, int32(nnz))
}

// buildLevelsSorted is the level construction for verified strictly
// sorted slices (see lexSorted): every nonzero opens its own leaf, so
// the leaf level's IDs/Ptr and the value array are bulk-filled, and the
// per-nonzero loop only compares the n−1 upper coordinates — the
// append-per-level work of the general path collapses to the (rare)
// upper-node opens. This is what makes CSF builds over coalesced
// streaming slices nearly free of sorting AND construction cost.
func (e *Engine) buildLevelsSorted(t *tree, perm []int32) {
	x := e.x
	n := x.NModes()
	nnz := len(perm)

	leaf := &t.levels[n-1]
	leaf.IDs = growI32(leaf.IDs, nnz)
	leaf.Ptr = growI32(leaf.Ptr, nnz+1)
	t.vals = growF64(t.vals, nnz)
	leafCol := x.Inds[t.order[n-1]]
	for i, p := range perm {
		t.vals[i] = x.Vals[p]
		leaf.IDs[i] = leafCol[p]
	}
	for i := range leaf.Ptr {
		leaf.Ptr[i] = int32(i)
	}

	for l := 0; l < n-1; l++ {
		t.levels[l].IDs = t.levels[l].IDs[:0]
		t.levels[l].Ptr = t.levels[l].Ptr[:0]
	}
	t.rootVal = t.rootVal[:0]
	t.childVal = t.childVal[:0]
	if cap(e.prev) < n {
		e.prev = make([]int32, n)
	}
	prev := e.prev[:n]

	for i := 0; i < nnz; i++ {
		p := perm[i]
		div := 0
		if i > 0 {
			div = n - 1
			for l := 0; l < n-1; l++ {
				if x.Inds[t.order[l]][p] != prev[l] {
					div = l
					break
				}
			}
		}
		for l := div; l < n-1; l++ {
			idx := x.Inds[t.order[l]][p]
			prev[l] = idx
			lev := &t.levels[l]
			lev.IDs = append(lev.IDs, idx)
			if l == n-2 {
				// The child level is the bulk-filled leaf: its node
				// count at this point is exactly i.
				lev.Ptr = append(lev.Ptr, int32(i))
			} else {
				lev.Ptr = append(lev.Ptr, int32(len(t.levels[l+1].IDs)))
			}
			if l == 0 {
				t.rootVal = append(t.rootVal, int32(i))
			}
			if l == 1 {
				t.childVal = append(t.childVal, int32(i))
			}
		}
	}
	for l := 0; l < n-2; l++ {
		t.levels[l].Ptr = append(t.levels[l].Ptr, int32(len(t.levels[l+1].IDs)))
	}
	t.levels[n-2].Ptr = append(t.levels[n-2].Ptr, int32(nnz))
	if n == 2 {
		// Level 1 is the leaf itself: its value ranges are the identity,
		// like the leaf Ptr.
		t.childVal = growI32(t.childVal, nnz+1)
		for i := range t.childVal {
			t.childVal[i] = int32(i)
		}
	} else {
		t.childVal = append(t.childVal, int32(nnz))
	}
	t.rootVal = append(t.rootVal, int32(nnz))
}

// growI32 reslices s to length n, reallocating only when capacity is
// short (contents are overwritten by the caller).
func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// sortPerm returns the nonzero permutation sorted lexicographically by
// the coordinates in level order, via one stable counting sort per level
// from the last key to the first. Both permutation buffers and the
// histogram are engine-owned and reused.
func (e *Engine) sortPerm(x *sptensor.Tensor, order []int) []int32 {
	nnz := x.NNZ()
	if cap(e.perm) < nnz {
		e.perm = make([]int32, nnz)
	}
	if cap(e.perm2) < nnz {
		e.perm2 = make([]int32, nnz)
	}
	src, dst := e.perm[:nnz], e.perm2[:nnz]
	for i := range src {
		src[i] = int32(i)
	}
	for l := len(order) - 1; l >= 0; l-- {
		col := x.Inds[order[l]]
		dim := x.Dims[order[l]]
		if cap(e.count) < dim {
			e.count = make([]int32, dim)
		}
		cnt := e.count[:dim]
		for i := range cnt {
			cnt[i] = 0
		}
		for _, p := range src {
			cnt[col[p]]++
		}
		sum := int32(0)
		for i, c := range cnt {
			cnt[i] = sum
			sum += c
		}
		for _, p := range src {
			i := col[p]
			dst[cnt[i]] = p
			cnt[i]++
		}
		src, dst = dst, src
	}
	e.perm, e.perm2 = src[:cap(src)], dst[:cap(dst)]
	return src
}

// sortPermSorted is the verified-sorted fast path for the ModeOrderBase
// level order: the slice is already in lexicographic storage order, so
// a tree rooted at mode 0 needs the identity permutation and any other
// root needs exactly one stable counting sort by the root coordinate —
// stability preserves the lexicographic order of the remaining modes
// inside each root group, which is precisely the (root, 0, 1, …) order
// the tree wants.
func (e *Engine) sortPermSorted(x *sptensor.Tensor, root int, t *tree) []int32 {
	nnz := x.NNZ()
	if cap(e.perm) < nnz {
		e.perm = make([]int32, nnz)
	}
	src := e.perm[:nnz]
	for i := range src {
		src[i] = int32(i)
	}
	if root == 0 {
		t.sortPasses = 0
		return src
	}
	if cap(e.perm2) < nnz {
		e.perm2 = make([]int32, nnz)
	}
	dst := e.perm2[:nnz]
	col := x.Inds[root]
	dim := x.Dims[root]
	if cap(e.count) < dim {
		e.count = make([]int32, dim)
	}
	cnt := e.count[:dim]
	for i := range cnt {
		cnt[i] = 0
	}
	for _, i := range col {
		cnt[i]++
	}
	sum := int32(0)
	for i, c := range cnt {
		cnt[i] = sum
		sum += c
	}
	for p := int32(0); p < int32(nnz); p++ {
		i := col[p]
		dst[cnt[i]] = p
		cnt[i]++
	}
	e.perm, e.perm2 = dst[:cap(dst)], src[:cap(src)]
	t.sortPasses = 1
	return dst
}

// buildTiles decomposes the tree into ~tileTargetNNZ-nonzero tiles:
// consecutive small roots are batched into whole-root tiles; a root
// above splitThresholdNNZ becomes shard tiles cut at child granularity.
// The decomposition depends only on the tree; workers only affects the
// nnz-balanced boundary assignment.
func (t *tree) buildTiles(workers int) {
	t.tiles = t.tiles[:0]
	t.nSplit = 0
	roots := len(t.levels[0].IDs)
	r := 0
	for r < roots {
		if int(t.rootVal[r+1]-t.rootVal[r]) > splitThresholdNNZ {
			cHi := int(t.levels[0].Ptr[r+1])
			c := int(t.levels[0].Ptr[r])
			first := len(t.tiles)
			for c < cHi {
				cs := c
				base := int(t.childVal[c])
				for c < cHi && int(t.childVal[c+1])-base <= tileTargetNNZ {
					c++
				}
				if c == cs {
					c++ // a single child exceeding the budget is one tile
				}
				t.tiles = append(t.tiles, tile{
					rLo: int32(r), rHi: int32(r + 1),
					cLo: int32(cs), cHi: int32(c),
					shard: int32(t.nSplit),
				})
				t.nSplit++
			}
			if len(t.tiles) == first+1 {
				// The whole root fit one tile after all: no sharing, so
				// write the output row directly.
				t.tiles[first] = tile{rLo: int32(r), rHi: int32(r + 1), shard: -1}
				t.nSplit--
			}
			r++
			continue
		}
		start := r
		base := int(t.rootVal[r])
		for r < roots && int(t.rootVal[r+1])-base <= tileTargetNNZ {
			r++
		}
		if r == start {
			r++ // single root in (target, splitThreshold]: keep whole
		}
		t.tiles = append(t.tiles, tile{rLo: int32(start), rHi: int32(r), shard: -1})
	}

	nt := len(t.tiles)
	if cap(t.cumTile) < nt+1 {
		t.cumTile = make([]int32, nt+1)
	}
	t.cumTile = t.cumTile[:nt+1]
	t.cumTile[0] = 0
	for i := range t.tiles {
		tl := &t.tiles[i]
		var w int32
		if tl.shard >= 0 {
			w = t.childVal[tl.cHi] - t.childVal[tl.cLo]
		} else {
			w = t.rootVal[tl.rHi] - t.rootVal[tl.rLo]
		}
		t.cumTile[i+1] = t.cumTile[i] + w
	}
	t.wb = parallel.WeightedBoundaries(t.wb, t.cumTile, workers)
}

// ensureScratch grows the per-worker partial-product arenas to hold one
// rank-k row per tree level.
func (e *Engine) ensureScratch(k, nLevels int) {
	if k > e.kcap || nLevels > e.lcap {
		if k > e.kcap {
			e.kcap = k
		}
		if nLevels > e.lcap {
			e.lcap = nLevels
		}
		for w := range e.scratch {
			e.scratch[w] = make([]float64, e.lcap*e.kcap)
		}
	}
	for len(e.scratch) < e.workers {
		e.scratch = append(e.scratch, make([]float64, e.lcap*e.kcap))
	}
}

func (e *Engine) ensureShards(n int) {
	if cap(e.shards) < n {
		e.shards = make([]float64, n)
	}
	e.shards = e.shards[:n]
}

func (e *Engine) checkShapes(out *dense.Matrix, factors []*dense.Matrix, mode int) int {
	if len(factors) != len(e.dims) {
		panic(fmt.Sprintf("csf: %d factors for %d modes", len(factors), len(e.dims)))
	}
	k := factors[0].Cols
	for m, f := range factors {
		if f.Cols != k {
			panic("csf: factor rank mismatch")
		}
		if f.Rows != e.dims[m] {
			panic(fmt.Sprintf("csf: factor %d has %d rows for dim %d", m, f.Rows, e.dims[m]))
		}
	}
	if out.Rows != e.dims[mode] || out.Cols != k {
		panic("csf: output shape mismatch")
	}
	return k
}

// MTTKRP computes out = MTTKRP(x, factors, mode) over the pooled tree
// rooted at mode (built now if the slice changed since the last call).
// Steady-state allocation-free; bit-identical across worker counts.
func (e *Engine) MTTKRP(out *dense.Matrix, factors []*dense.Matrix, mode int) {
	t := e.tree(mode)
	k := e.checkShapes(out, factors, mode)
	out.Zero()
	if len(t.vals) == 0 {
		return
	}
	e.ensureScratch(k, len(t.order))
	e.ensureShards(t.nSplit * k)
	a := &e.args
	a.t, a.out, a.factors, a.k = t, out, factors, k
	active := len(t.wb) - 1
	e.pool.Do(active, active, a, tileBody)
	// Fold shard partials into their root rows in tile order — serial
	// and deterministic regardless of which worker produced each shard.
	if t.nSplit > 0 {
		ids := t.levels[0].IDs
		for i := range t.tiles {
			tl := &t.tiles[i]
			if tl.shard < 0 {
				continue
			}
			row := out.Row(int(ids[tl.rLo]))
			sh := e.shards[int(tl.shard)*k : int(tl.shard)*k+k]
			for j, v := range sh {
				row[j] += v
			}
		}
	}
	a.reset()
}

func tileBody(ctx any, w int, r parallel.Range) {
	a := ctx.(*engineArgs)
	e, t := a.e, a.t
	sc := e.scratch[w]
	three := len(t.order) == 3
	var fB, fC *dense.Matrix
	if three {
		fB, fC = a.factors[t.order[1]], a.factors[t.order[2]]
	}
	ids, ptr := t.levels[0].IDs, t.levels[0].Ptr
	for wi := r.Lo; wi < r.Hi; wi++ {
		for ti := t.wb[wi]; ti < t.wb[wi+1]; ti++ {
			tl := &t.tiles[ti]
			if tl.shard >= 0 {
				dst := e.shards[int(tl.shard)*a.k : int(tl.shard)*a.k+a.k]
				for j := range dst {
					dst[j] = 0
				}
				if three {
					t.walk3Into(sc, int(tl.cLo), int(tl.cHi), fB, fC, dst, a.k)
				} else {
					t.walkInto(sc, e.kcap, 1, int(tl.cLo), int(tl.cHi), a.factors, dst, a.k)
				}
				continue
			}
			for root := tl.rLo; root < tl.rHi; root++ {
				dst := a.out.Row(int(ids[root]))
				if three {
					t.walk3Into(sc, int(ptr[root]), int(ptr[root+1]), fB, fC, dst, a.k)
				} else {
					t.walkInto(sc, e.kcap, 1, int(ptr[root]), int(ptr[root+1]), a.factors, dst, a.k)
				}
			}
		}
	}
}

// walkInto processes nodes [lo, hi) of level l, accumulating each
// node's subtree contribution (scaled by the node's factor row) into
// dst. sc provides one kcap-strided partial row per level.
func (t *tree) walkInto(sc []float64, kcap, l, lo, hi int, factors []*dense.Matrix, dst []float64, k int) {
	lev := &t.levels[l]
	f := factors[t.order[l]]
	if l == len(t.order)-1 {
		for node := lo; node < hi; node++ {
			row := f.Row(int(lev.IDs[node]))
			v := 0.0
			for e := lev.Ptr[node]; e < lev.Ptr[node+1]; e++ {
				v += t.vals[e]
			}
			for j := 0; j < k; j++ {
				dst[j] += v * row[j]
			}
		}
		return
	}
	acc := sc[l*kcap : l*kcap+k]
	for node := lo; node < hi; node++ {
		row := f.Row(int(lev.IDs[node]))
		for j := range acc {
			acc[j] = 0
		}
		t.walkInto(sc, kcap, l+1, int(lev.Ptr[node]), int(lev.Ptr[node+1]), factors, acc, k)
		for j := 0; j < k; j++ {
			dst[j] += acc[j] * row[j]
		}
	}
}

// walk3Into is the fused three-way fast path: level-1 nodes [lo, hi)
// with their leaves inlined, one partial row, no recursion.
func (t *tree) walk3Into(sc []float64, lo, hi int, fB, fC *dense.Matrix, dst []float64, k int) {
	l1, l2 := &t.levels[1], &t.levels[2]
	acc := sc[:k]
	for c := lo; c < hi; c++ {
		rb := fB.Row(int(l1.IDs[c]))
		for j := range acc {
			acc[j] = 0
		}
		for leaf := l1.Ptr[c]; leaf < l1.Ptr[c+1]; leaf++ {
			rc := fC.Row(int(l2.IDs[leaf]))
			v := t.vals[l2.Ptr[leaf]]
			for e := l2.Ptr[leaf] + 1; e < l2.Ptr[leaf+1]; e++ {
				v += t.vals[e]
			}
			for j := 0; j < k; j++ {
				acc[j] += v * rc[j]
			}
		}
		for j := 0; j < k; j++ {
			dst[j] += acc[j] * rb[j]
		}
	}
}

// Stats summarizes one built tree for diagnostics and the cost model's
// cross-checks: node counts per level and the tile decomposition.
type Stats struct {
	Order      []int
	LevelNodes []int
	Tiles      int
	ShardTiles int
	// SortPasses is the counting-sort pass count of the last build:
	// one per level on the radix path, 0–1 on the sorted-base path.
	SortPasses int
}

// TreeStats returns layout statistics for mode's tree, building it if
// needed. Allocates; intended for tests, benchmarks, and diagnostics.
func (e *Engine) TreeStats(mode int) Stats {
	t := e.tree(mode)
	s := Stats{
		Order:      append([]int(nil), t.order...),
		LevelNodes: make([]int, len(t.levels)),
		Tiles:      len(t.tiles),
		ShardTiles: t.nSplit,
		SortPasses: int(t.sortPasses),
	}
	for l := range t.levels {
		s.LevelNodes[l] = len(t.levels[l].IDs)
	}
	return s
}
