// Constrained streaming decomposition: non-negative factors for
// interpretability (paper §IV). A NIPS-like publication stream
// (paper × author × word, one slice per year) is decomposed with the
// non-negativity constraint solved by ADMM; the example compares the
// paper's two ADMM implementations — the baseline Algorithm 2 and the
// Blocked & Fused Algorithm 3 — on identical inputs, then prints the
// non-negative word-mode components.
//
// Run with: go run ./examples/constrained
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"spstream"
)

func main() {
	stream, err := spstream.GeneratePreset("nips", 0.08)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream: dims=%v T=%d nnz=%d\n\n", stream.Dims, stream.T(), stream.NNZ())

	// Constrained CP-stream with the baseline kernels (Algorithm 2
	// pass-per-op ADMM + lock-pool MTTKRP) …
	tBase, base := run(stream, spstream.Baseline)
	// … and with the paper's optimized kernels (Blocked & Fused ADMM +
	// Hybrid Lock MTTKRP).
	tOpt, opt := run(stream, spstream.Optimized)

	fmt.Printf("baseline  constrained CP-stream: %v\n", tBase.Round(time.Millisecond))
	fmt.Printf("optimized constrained CP-stream: %v  (%.2fx)\n\n",
		tOpt.Round(time.Millisecond), float64(tBase)/float64(tOpt))

	// Both solvers enforce feasibility: every factor entry must be ≥ 0.
	for m := range stream.Dims {
		for _, v := range opt.Factor(m).Data {
			if v < 0 {
				log.Fatalf("mode %d: negative entry %g escaped the constraint", m, v)
			}
		}
	}
	fmt.Println("all factor entries are non-negative (constraint satisfied)")

	// Interpretable components: top words per component, all with
	// non-negative weights.
	words := opt.Factor(2)
	fmt.Println("\ntop words per component (word-mode factor, non-negative):")
	for k := 0; k < min(4, opt.Rank()); k++ {
		type ww struct {
			word   int
			weight float64
		}
		all := make([]ww, words.Rows)
		for i := 0; i < words.Rows; i++ {
			all[i] = ww{i, words.At(i, k)}
		}
		sort.Slice(all, func(a, b int) bool { return all[a].weight > all[b].weight })
		fmt.Printf("  component %d:", k)
		for _, w := range all[:5] {
			fmt.Printf(" word-%d(%.3f)", w.word, w.weight)
		}
		fmt.Println()
	}

	// Sanity: the two implementations agree on the factorization. They
	// follow the same ADMM iterate sequence but the fused variant ends
	// one half-step ahead, so with a loose ADMM iteration budget the
	// factors differ by a few percent relative to their scale.
	worst := 0.0
	for m := range stream.Dims {
		f := opt.Factor(m)
		scale := 0.0
		for _, v := range f.Data {
			if v > scale {
				scale = v
			}
		}
		if scale == 0 {
			scale = 1
		}
		if d := base.Factor(m).MaxAbsDiff(f) / scale; d > worst {
			worst = d
		}
	}
	fmt.Printf("\nmax relative |baseline − optimized| factor difference: %.1f%%\n", 100*worst)
}

func run(stream *spstream.Stream, alg spstream.Algorithm) (time.Duration, *spstream.Decomposer) {
	dec, err := spstream.New(stream.Dims, spstream.Options{
		Rank:         8,
		Algorithm:    alg,
		Constraint:   spstream.NonNeg(),
		Seed:         11,
		MaxIters:     10,
		ADMMMaxIters: 25,
	})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if _, err := dec.ProcessStream(stream.Source(), nil); err != nil {
		log.Fatal(err)
	}
	return time.Since(start), dec
}
