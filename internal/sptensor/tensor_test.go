package sptensor

import (
	"testing"
	"testing/quick"
)

// buildTestTensor returns a small 3-way tensor with known contents.
func buildTestTensor() *Tensor {
	t := New(3, 4, 2)
	t.Append([]int32{0, 1, 0}, 1.5)
	t.Append([]int32{2, 3, 1}, -2.0)
	t.Append([]int32{1, 0, 0}, 3.0)
	t.Append([]int32{2, 1, 1}, 0.5)
	return t
}

func TestAppendAndBasics(t *testing.T) {
	ts := buildTestTensor()
	if ts.NModes() != 3 || ts.NNZ() != 4 {
		t.Fatalf("modes=%d nnz=%d", ts.NModes(), ts.NNZ())
	}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	if ts.Norm2() != 1.5*1.5+4+9+0.25 {
		t.Fatalf("Norm2 = %v", ts.Norm2())
	}
}

func TestAppendWrongArity(t *testing.T) {
	ts := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ts.Append([]int32{0}, 1)
}

func TestValidateCatchesOutOfRange(t *testing.T) {
	ts := New(2, 2)
	ts.Append([]int32{1, 1}, 1)
	ts.Inds[0][0] = 5
	if err := ts.Validate(); err == nil {
		t.Fatal("expected range error")
	}
}

func TestValidateCatchesRaggedColumns(t *testing.T) {
	ts := New(2, 2)
	ts.Append([]int32{0, 0}, 1)
	ts.Inds[1] = ts.Inds[1][:0]
	if err := ts.Validate(); err == nil {
		t.Fatal("expected column-length error")
	}
}

func TestCloneIndependent(t *testing.T) {
	ts := buildTestTensor()
	c := ts.Clone()
	c.Vals[0] = 99
	c.Inds[0][0] = 1
	if ts.Vals[0] == 99 || ts.Inds[0][0] == 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestSortByMode(t *testing.T) {
	ts := buildTestTensor()
	ts.SortByMode(1)
	prev := int32(-1)
	for _, i := range ts.Inds[1] {
		if i < prev {
			t.Fatal("not sorted by mode 1")
		}
		prev = i
	}
	if ts.NNZ() != 4 {
		t.Fatal("sort changed nnz")
	}
}

func TestCoalesceSumsDuplicates(t *testing.T) {
	ts := New(2, 2)
	ts.Append([]int32{0, 1}, 1)
	ts.Append([]int32{0, 1}, 2)
	ts.Append([]int32{1, 0}, 5)
	ts.Coalesce()
	if ts.NNZ() != 2 {
		t.Fatalf("nnz after coalesce = %d", ts.NNZ())
	}
	total := 0.0
	for _, v := range ts.Vals {
		total += v
	}
	if total != 8 {
		t.Fatalf("coalesce lost mass: %v", total)
	}
}

func TestCoalesceDropsCancellation(t *testing.T) {
	ts := New(2, 2)
	ts.Append([]int32{0, 0}, 1)
	ts.Append([]int32{0, 0}, -1)
	ts.Append([]int32{1, 1}, 2)
	ts.Coalesce()
	if ts.NNZ() != 1 || ts.Vals[0] != 2 {
		t.Fatalf("cancellation not dropped: %v", ts.Vals)
	}
}

func TestCoalescePreservesNorm(t *testing.T) {
	f := func(seed int64) bool {
		rng := uint64(seed)
		next := func(n int) int32 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int32((rng >> 33) % uint64(n))
		}
		ts := New(4, 4)
		sum := 0.0
		for e := 0; e < 50; e++ {
			v := float64(next(10)) + 1
			ts.Append([]int32{next(4), next(4)}, v)
			sum += v
		}
		ts.Coalesce()
		got := 0.0
		for _, v := range ts.Vals {
			got += v
		}
		return got == sum && ts.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNonzeroSlices(t *testing.T) {
	ts := buildTestTensor()
	nz := ts.NonzeroSlices(0)
	want := []int32{0, 1, 2}
	if len(nz) != len(want) {
		t.Fatalf("nz = %v", nz)
	}
	for i := range want {
		if nz[i] != want[i] {
			t.Fatalf("nz = %v", nz)
		}
	}
	nz2 := ts.NonzeroSlices(2)
	if len(nz2) != 2 {
		t.Fatalf("mode 2 nz = %v", nz2)
	}
	empty := New(3, 3)
	if empty.NonzeroSlices(0) != nil {
		t.Fatal("empty tensor should have nil nz")
	}
}

func TestDensity(t *testing.T) {
	ts := buildTestTensor()
	want := 4.0 / 24.0
	if ts.Density() != want {
		t.Fatalf("density = %v", ts.Density())
	}
}

func TestReserveKeepsContents(t *testing.T) {
	ts := New(2, 2)
	ts.Append([]int32{1, 1}, 7)
	ts.Reserve(100)
	if ts.NNZ() != 1 || ts.Vals[0] != 7 || ts.Inds[0][0] != 1 {
		t.Fatal("Reserve corrupted contents")
	}
}

func TestPermuteModes(t *testing.T) {
	ts := buildTestTensor() // 3×4×2
	p, err := ts.PermuteModes([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Dims[0] != 2 || p.Dims[1] != 3 || p.Dims[2] != 4 {
		t.Fatalf("dims = %v", p.Dims)
	}
	for e := 0; e < ts.NNZ(); e++ {
		if p.Inds[0][e] != ts.Inds[2][e] || p.Inds[1][e] != ts.Inds[0][e] || p.Vals[e] != ts.Vals[e] {
			t.Fatal("permutation scrambled coordinates")
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The copy is independent.
	p.Vals[0] = 99
	if ts.Vals[0] == 99 {
		t.Fatal("PermuteModes shares storage")
	}
	for _, bad := range [][]int{{0}, {0, 0, 1}, {0, 1, 3}} {
		if _, err := ts.PermuteModes(bad); err == nil {
			t.Fatalf("accepted %v", bad)
		}
	}
}
