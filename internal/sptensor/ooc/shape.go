package ooc

// BlockShape picks the block grid for a tensor: the per-mode split
// counts such that ∏splits ≥ ⌈nnz/targetBlockNNZ⌉, halving the widest
// remaining side at each step. Always cutting the longest current side
// keeps the blocks as close to hypercubes as the dims allow — the
// balanced hyper-rectangular shape Ballard/Rouse/Knight show minimizes
// factor-row traffic per block for MTTKRP (the same rule PR 8's shard
// partitioner applies across nodes, here applied within one node's
// memory hierarchy). Under uniform occupancy each block then holds
// ≈ targetBlockNNZ nonzeros; skewed tensors can concentrate more into
// one block, which the writer tolerates (block sizes are data, only
// the grid is the rule).
//
// The result is deterministic in (dims, nnz, targetBlockNNZ).
func BlockShape(dims []int, nnz, targetBlockNNZ int) []int {
	splits := make([]int, len(dims))
	for m := range splits {
		splits[m] = 1
	}
	if targetBlockNNZ < 1 || nnz <= targetBlockNNZ {
		return splits
	}
	want := int64((nnz + targetBlockNNZ - 1) / targetBlockNNZ)
	prod := int64(1)
	for prod < want {
		// Widest current side; ties resolve to the lowest mode.
		best, bestSide := -1, 1
		for m, d := range dims {
			side := (d + splits[m] - 1) / splits[m]
			if side > bestSide {
				best, bestSide = m, side
			}
		}
		if best < 0 {
			break // every side is already 1 coordinate wide
		}
		next := splits[best] * 2
		if next > dims[best] {
			next = dims[best]
		}
		prod = prod / int64(splits[best]) * int64(next)
		splits[best] = next
	}
	return splits
}
