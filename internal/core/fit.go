package core

import (
	"fmt"
	"math"

	"spstream/internal/dense"
	"spstream/internal/sptensor"
)

// sliceFit computes the fit 1 − ‖Xₜ − X̂ₜ‖_F/‖Xₜ‖_F of the current model
// X̂ₜ = [[A⁽¹⁾,…,A⁽ᴺ⁾; sₜ]] against the slice, entirely in sparse form:
//
//	‖X−X̂‖² = ‖X‖² − 2·⟨X, X̂⟩ + ‖X̂‖²
//	⟨X, X̂⟩  = sᵀ·ψ with ψ the streaming-mode MTTKRP over current factors
//	‖X̂‖²    = sᵀ(⊛_v C⁽ᵛ⁾)s
func (d *Decomposer) sliceFit(x *sptensor.Tensor) float64 {
	xnorm2 := x.Norm2()
	if xnorm2 == 0 {
		return math.NaN()
	}
	psi := make([]float64, d.k)
	d.mt.TimeMode(psi, x, d.a)
	had := d.scratch1
	had.Fill(1)
	for m := range d.c {
		dense.Hadamard(had, had, d.c[m])
	}
	tmp := make([]float64, d.k)
	dense.MulVec(tmp, had, d.s)
	model2 := dense.Dot(d.s, tmp)
	inner := dense.Dot(d.s, psi)
	err2 := xnorm2 - 2*inner + model2
	if err2 < 0 {
		err2 = 0
	}
	return 1 - math.Sqrt(err2/xnorm2)
}

// FitOf evaluates the current model's fit 1 − ‖X−X̂‖_F/‖X‖_F against an
// arbitrary slice-shaped tensor using the latest temporal weights —
// e.g. to score a held-out or incoming slice before folding it in.
// Returns NaN for an empty slice.
func (d *Decomposer) FitOf(x *sptensor.Tensor) (float64, error) {
	if x == nil || x.NModes() != d.n {
		return math.NaN(), fmt.Errorf("core: FitOf slice has wrong mode count")
	}
	for m, dim := range x.Dims {
		if dim != d.dims[m] {
			return math.NaN(), fmt.Errorf("core: FitOf slice mode %d length %d ≠ %d", m, dim, d.dims[m])
		}
	}
	return d.sliceFit(x), nil
}
