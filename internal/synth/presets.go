package synth

import (
	"fmt"
	"sort"
	"strings"
)

// The presets mirror the four FROSTT datasets of paper Table II, scaled
// down (the real Patents tensor has 3.5B nonzeros). Scale = 1 gives a
// workstation-sized workload for benchmarks; tests use Scale ≈ 0.05. The
// streaming mode of the original dataset is removed (it becomes the
// slice sequence) and the remaining modes keep their qualitative index
// distributions:
//
//	Patents  year(46)ˢ × terms(239K) × terms(239K), 3.5B nnz —
//	         Zipf term popularity, two large modes.
//	Flickr   user(320K) × image(28M) × tag(1.6M) × date(731)ˢ, 113M —
//	         the image mode is Clustered: each slice touches ≈1% of
//	         rows (paper Fig. 1), tags Zipf, users Zipf.
//	Uber     date(183)ˢ × hour(24) × lat(1.1K) × long(1.7K), 3.3M —
//	         small dims; factor matrices fit in cache.
//	NIPS     paper(2.5K) × author(2.9K) × word(14K) × year(7)ˢ, 3.1M —
//	         moderate dims, Zipf words.
type presetBuilder func(scale float64) Config

var presets = map[string]presetBuilder{
	"patents": func(s float64) Config {
		terms := scaled(20000, s, 64)
		return Config{
			Name: "patents",
			Dists: []IndexDist{
				NewZipf(terms, 0.75),
				NewZipf(terms, 0.75),
			},
			T:           clampT(20, s),
			NNZPerSlice: scaled(120000, s, 200),
			Values:      ValuePlanted,
			PlantedRank: 8,
			NoiseStd:    0.05,
			Seed:        42,
		}
	},
	"flickr": func(s float64) Config {
		users := scaled(4000, s, 40)
		images := scaled(400000, s, 400)
		tags := scaled(20000, s, 60)
		window := images / 60
		if window < 8 {
			window = 8
		}
		return Config{
			Name: "flickr",
			Dists: []IndexDist{
				NewZipf(users, 0.7),
				Clustered{N: images, Window: window, Drift: window * 2 / 3, Revisit: 0.02},
				NewZipf(tags, 0.7),
			},
			T:           clampT(30, s),
			NNZPerSlice: scaled(20000, s, 100),
			Values:      ValuePlanted,
			PlantedRank: 8,
			NoiseStd:    0.05,
			Seed:        43,
		}
	},
	"uber": func(s float64) Config {
		return Config{
			Name: "uber",
			Dists: []IndexDist{
				Uniform{N: 24},
				Uniform{N: scaled(1100, s, 24)},
				Uniform{N: scaled(1700, s, 24)},
			},
			T:           clampT(40, s),
			NNZPerSlice: scaled(18000, s, 100),
			Values:      ValuePlanted,
			PlantedRank: 8,
			NoiseStd:    0.05,
			Seed:        44,
		}
	},
	"nips": func(s float64) Config {
		return Config{
			Name: "nips",
			Dists: []IndexDist{
				Uniform{N: scaled(2500, s, 40)},
				NewZipf(scaled(2900, s, 40), 0.6),
				NewZipf(scaled(14000, s, 60), 0.6),
			},
			T:           7,
			NNZPerSlice: scaled(150000, s, 200),
			Values:      ValuePlanted,
			PlantedRank: 8,
			NoiseStd:    0.05,
			Seed:        45,
		}
	},
}

// PresetNames lists available presets in sorted order.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Preset returns the Config for a named dataset analogue at the given
// scale (1 = benchmark size). Unknown names return an error listing the
// available presets.
func Preset(name string, scale float64) (Config, error) {
	b, ok := presets[strings.ToLower(name)]
	if !ok {
		return Config{}, fmt.Errorf("synth: unknown preset %q (available: %s)", name, strings.Join(PresetNames(), ", "))
	}
	if scale <= 0 {
		return Config{}, fmt.Errorf("synth: scale must be positive, got %g", scale)
	}
	return b(scale), nil
}

// scaled multiplies n by scale with a floor.
func scaled(n int, scale float64, floor int) int {
	v := int(float64(n) * scale)
	if v < floor {
		v = floor
	}
	return v
}

// clampT shrinks the slice count for very small scales so tests stay
// fast, but never below 5 slices (streaming needs history).
func clampT(t int, scale float64) int {
	if scale >= 0.5 {
		return t
	}
	v := t / 2
	if v < 5 {
		v = 5
	}
	return v
}
