// Package cluster is the sharded multi-node serving layer: a
// stateless HTTP gateway (cmd/spstream-gateway) in front of N
// spstreamd shards, each a full single-node daemon owning a
// contiguous block of mode-0 rows.
//
// Writes: POST /v1/ingest is parsed at the gateway (same trust
// boundary as the single-node daemon), partitioned by the Router, and
// forwarded through one bounded FIFO + sender goroutine per shard
// with retry, capped exponential backoff with jitter, and a circuit
// breaker per upstream. A batch a shard has consumed is never resent
// (no double ingestion); a batch that cannot be delivered is
// accounted, never silently lost — the gateway's overload ledger
// keeps produced == forwarded + failed + shed + pending exact.
//
// Reads: /v1/factors, /v1/reconstruct and /v1/stats fan out to all
// shards and merge (row-block concatenation for the mode-0 factor,
// Gram-partial + Hadamard contraction for the model norm). When
// shards are down, reads degrade instead of failing: 200 with
// "partial": true and the exact missing row ranges.
package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spstream/internal/resilience"
	"spstream/internal/serve"
	"spstream/internal/sptensor"
	"spstream/internal/serve/httpx"
	"spstream/internal/trace"
)

// Config parameterizes a Gateway. Router and Shards are required and
// must agree on the shard count; everything else has serviceable
// defaults.
type Config struct {
	// Router is the row-block partition (also defines the tensor dims
	// the gateway validates ingest against).
	Router *Router
	// Shards are the shard base URLs, index = shard id.
	Shards []string
	// Version is the build stamp reported in /v1/stats.
	Version string

	// QueueEvents bounds each shard's forward queue, in events.
	// Default 65536.
	QueueEvents int
	// SendRetries caps delivery attempts per batch; 0 or negative
	// retries until shutdown (the chaos posture: a down shard's
	// backlog waits in the queue for its restart).
	SendRetries int
	// ReadRetries is how many extra attempts a fan-out read gets per
	// shard. Default 1.
	ReadRetries int
	// RequestTimeout bounds each upstream request. Default 5s.
	RequestTimeout time.Duration
	// ProbeInterval is the per-shard /readyz probe cadence feeding the
	// breakers. Default 1s.
	ProbeInterval time.Duration
	// Backoff shapes the retry ladder (send and read paths share it).
	Backoff resilience.BackoffConfig
	// Breaker parameterizes the per-shard circuit breakers.
	Breaker resilience.BreakerConfig
	// BodyLimit caps ingest request bodies. Default 8 MiB.
	BodyLimit int64
	// DrainTimeout bounds the shutdown flush of the forward queues.
	// Default 30s.
	DrainTimeout time.Duration

	// Logf receives operational messages. Default: discard.
	Logf func(format string, args ...any)
	// Sleep replaces the retry/probe waits (testing). It returns false
	// when the gateway was killed mid-wait. Default: real sleep,
	// aborted by shutdown.
	Sleep func(d time.Duration) bool
	// HTTP overrides the upstream client (testing).
	HTTP *http.Client
}

func (c Config) withDefaults() Config {
	if c.QueueEvents <= 0 {
		c.QueueEvents = 65536
	}
	if c.ReadRetries < 0 {
		c.ReadRetries = 0
	} else if c.ReadRetries == 0 {
		c.ReadRetries = 1
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.BodyLimit <= 0 {
		c.BodyLimit = 8 << 20
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.HTTP == nil {
		c.HTTP = &http.Client{}
	}
	return c
}

// shard is the gateway's per-upstream state: client, breaker, forward
// queue, and the sender's in-flight gauge.
type shard struct {
	id       int
	lo, hi   int
	client   *ShardClient
	breaker  *resilience.Breaker
	queue    *forwardQueue
	inflight atomic.Int64 // events the sender holds right now
}

// Gateway is the stateless cluster front door. All durable state
// lives in the shards; the gateway holds only routing arithmetic,
// breakers, and the bounded forward backlog.
type Gateway struct {
	cfg     Config
	router  *Router
	shards  []*shard
	backoff *resilience.Backoff
	ov      trace.Overload
	mux     *http.ServeMux

	draining atomic.Bool
	killed   chan struct{}
	killOnce sync.Once
	sendWg   sync.WaitGroup // senders (graceful drain waits on these)
	probeWg  sync.WaitGroup
	started  atomic.Bool
}

// New builds a gateway. The shard list length must match the router's
// shard count — a silent mismatch would route rows to nobody.
func New(cfg Config) (*Gateway, error) {
	if cfg.Router == nil {
		return nil, fmt.Errorf("cluster: Config.Router is required")
	}
	if len(cfg.Shards) != cfg.Router.Shards() {
		return nil, fmt.Errorf("cluster: router expects %d shards, got %d URLs", cfg.Router.Shards(), len(cfg.Shards))
	}
	cfg = cfg.withDefaults()
	g := &Gateway{
		cfg:     cfg,
		router:  cfg.Router,
		backoff: resilience.NewBackoff(cfg.Backoff),
		mux:     http.NewServeMux(),
		killed:  make(chan struct{}),
	}
	breakers := resilience.NewBreakers(len(cfg.Shards), cfg.Breaker)
	for i, base := range cfg.Shards {
		lo, hi := g.router.Block(i)
		g.shards = append(g.shards, &shard{
			id:      i,
			lo:      lo,
			hi:      hi,
			client:  &ShardClient{Base: strings.TrimRight(base, "/"), HTTP: cfg.HTTP},
			breaker: breakers[i],
			queue:   newForwardQueue(cfg.QueueEvents),
		})
	}
	g.routes()
	return g, nil
}

func (g *Gateway) routes() {
	g.mux.HandleFunc("POST /v1/ingest", g.handleIngest)
	g.mux.HandleFunc("GET /v1/factors", g.handleFactors)
	g.mux.HandleFunc("GET /v1/reconstruct", g.handleReconstruct)
	g.mux.HandleFunc("GET /v1/stats", g.handleStats)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /readyz", g.handleReadyz)
}

// Handler returns the gateway's HTTP surface with panic containment.
func (g *Gateway) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				g.cfg.Logf("panic in %s %s: %v", r.Method, r.URL.Path, p)
				http.Error(w, "internal error", http.StatusInternalServerError)
			}
		}()
		g.mux.ServeHTTP(w, r)
	})
}

// Overload snapshots the gateway's forward ledger. In gateway terms:
// Produced = events accepted at the front door, Processed = events a
// shard confirmed, Failed = events a shard rejected or whose batch
// exhausted its retries, ShedNewest = full-queue sheds at admission,
// ShedDrain = backlog abandoned at the drain deadline.
func (g *Gateway) Overload() trace.OverloadSnapshot { return g.ov.Snapshot() }

// Pending returns the events accepted but not yet resolved: queued
// plus in flight. The ledger invariant is
//
//	produced == processed + failed + shed + pending
//
// at every instant (Pending is read after the counters it balances,
// so transient over-counts are possible mid-flight; it is exact when
// ingest is quiescent).
func (g *Gateway) Pending() int64 {
	var n int64
	for _, s := range g.shards {
		_, ev := s.queue.depth()
		n += int64(ev) + s.inflight.Load()
	}
	return n
}

// Start launches the senders and probe loops without serving HTTP
// (tests drive the Handler directly).
func (g *Gateway) Start() {
	if !g.started.CompareAndSwap(false, true) {
		return
	}
	for _, s := range g.shards {
		g.sendWg.Add(1)
		go g.sender(s)
		g.probeWg.Add(1)
		go g.prober(s)
	}
}

// Shutdown drains the forward queues (bounded by DrainTimeout), then
// kills the remaining waits. Safe to call once after Start.
func (g *Gateway) Shutdown() {
	g.draining.Store(true)
	for _, s := range g.shards {
		s.queue.close()
	}
	done := make(chan struct{})
	go func() {
		g.sendWg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(g.cfg.DrainTimeout):
		g.cfg.Logf("drain timeout after %v; shedding the remaining backlog", g.cfg.DrainTimeout)
	}
	g.kill()
	g.sendWg.Wait()
	g.probeWg.Wait()
}

// Run serves HTTP on ln until ctx is cancelled, then drains and
// returns. The standard daemon entrypoint.
func (g *Gateway) Run(ctx context.Context, ln net.Listener) error {
	g.Start()
	hs := &http.Server{Handler: g.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	g.cfg.Logf("draining: flushing forward queues (timeout %v)", g.cfg.DrainTimeout)
	g.Shutdown()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	ov := g.ov.Snapshot()
	g.cfg.Logf("drained: %s", ov)
	return nil
}

func (g *Gateway) kill() {
	g.killOnce.Do(func() {
		close(g.killed)
		for _, s := range g.shards {
			s.queue.kill()
		}
	})
}

func (g *Gateway) isKilled() bool {
	select {
	case <-g.killed:
		return true
	default:
		return false
	}
}

// sleep waits d or until the gateway is killed (false).
func (g *Gateway) sleep(d time.Duration) bool {
	if g.cfg.Sleep != nil {
		return g.cfg.Sleep(d)
	}
	if d <= 0 {
		return !g.isKilled()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-g.killed:
		return false
	case <-t.C:
		return true
	}
}

// ---------------------------------------------------------------------
// Write path: per-shard sender with retry, backoff, and the breaker.

// sender is shard s's single delivery goroutine: FIFO order within a
// shard is absolute, so retries can never reorder its substream.
func (g *Gateway) sender(s *shard) {
	defer g.sendWg.Done()
	for {
		b, ok := s.queue.pop()
		if !ok {
			return
		}
		s.inflight.Store(int64(len(b.events)))
		g.deliver(s, b)
		s.inflight.Store(0)
	}
}

// deliver pushes one batch at shard s until it is consumed or
// declared dead, walking the backoff ladder between attempts. Every
// event ends in exactly one ledger bucket.
func (g *Gateway) deliver(s *shard, b batch) {
	n := int64(len(b.events))
	body := renderBody(b.events)
	attempts := 0 // actual POSTs, for the SendRetries cap
	step := 0     // backoff rung, also advanced by breaker waits
	for {
		if g.isKilled() {
			g.ov.ShedDrain.Add(n)
			return
		}
		if !s.breaker.Allow() {
			if !g.sleep(g.backoff.Delay(step, s.breaker.RetryAfter())) {
				g.ov.ShedDrain.Add(n)
				return
			}
			step++
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), g.cfg.RequestTimeout)
		out, err := s.client.PostIngest(ctx, body, b.flush)
		cancel()
		attempts++

		var retryAfter time.Duration
		switch {
		case err != nil:
			// No HTTP response: the batch state at the shard is unknown.
			// Redelivering risks duplication, dropping risks loss; the
			// gateway chooses at-least-once (the shard may have died
			// before ingesting) and documents the ambiguity.
			s.breaker.OnFailure()
			g.cfg.Logf("shard %d: ingest attempt %d failed: %v", s.id, attempts, err)
		case out.Consumed:
			// The shard absorbed the batch (even on 429/503 its
			// accumulator has the events — only whole windows past
			// admission are governed by its own shed policy). Terminal:
			// resending would double-ingest.
			s.breaker.OnSuccess()
			g.ov.Processed.Add(int64(out.Accepted))
			rest := n - int64(out.Accepted)
			if rest > 0 {
				// Shard-side rejections should be impossible — the
				// gateway validated against the same dims — so a nonzero
				// residue is a topology mismatch worth shouting about.
				g.ov.Failed.Add(rest)
				g.cfg.Logf("shard %d: %d/%d events rejected upstream (first: line %d: %s)",
					s.id, rest, n, out.FirstRejectedLine, out.FirstRejectedError)
			}
			if out.Shed > 0 {
				g.cfg.Logf("shard %d: shed %d window(s) at admission (status %d)", s.id, out.Shed, out.Status)
			}
			return
		case out.Status >= 400 && out.Status < 500 && out.Status != http.StatusTooManyRequests:
			// 400/413/…: the shard refused the body outright. The
			// gateway produced it from validated events, so this is a
			// configuration bug (dims mismatch, body limit below the
			// gateway's); retrying the same bytes cannot succeed.
			s.breaker.OnSuccess() // the shard is alive and answering
			g.ov.Failed.Add(n)
			g.cfg.Logf("shard %d: batch of %d events refused with %d: %s", s.id, n, out.Status, out.ErrorMsg)
			return
		default:
			// 5xx or a pre-parse 503 (draining/unready): transient.
			s.breaker.OnFailure()
			retryAfter = out.RetryAfter
			g.cfg.Logf("shard %d: ingest attempt %d got %d: %s", s.id, attempts, out.Status, out.ErrorMsg)
		}

		if g.cfg.SendRetries > 0 && attempts >= g.cfg.SendRetries {
			g.ov.Failed.Add(n)
			g.cfg.Logf("shard %d: dropping batch of %d events after %d attempts", s.id, n, attempts)
			return
		}
		if !g.sleep(g.backoff.Delay(step, retryAfter)) {
			g.ov.ShedDrain.Add(n)
			return
		}
		step++
	}
}

// prober feeds shard s's breaker from /readyz so recovery is detected
// without waiting for traffic: a restarted shard's first good probe
// closes the breaker and the sender resumes the backlog.
func (g *Gateway) prober(s *shard) {
	defer g.probeWg.Done()
	for {
		if !g.sleep(g.cfg.ProbeInterval) {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), g.cfg.RequestTimeout)
		err := s.client.Ready(ctx)
		cancel()
		if err == nil {
			s.breaker.OnSuccess()
		} else {
			s.breaker.OnFailure()
		}
	}
}

// ---------------------------------------------------------------------
// Read path: fan-out with bounded retries, merge, degrade.

// fetchJSON reads path from shard s with the shared retry ladder. A
// breaker-refused attempt fails fast (degraded read) rather than
// waiting out a cooldown.
func (g *Gateway) fetchJSON(ctx context.Context, s *shard, path string, out any) error {
	var last error
	for attempt := 0; ; attempt++ {
		if !s.breaker.Allow() {
			last = fmt.Errorf("shard %d unavailable (breaker %s)", s.id, s.breaker.State())
		} else {
			rctx, cancel := context.WithTimeout(ctx, g.cfg.RequestTimeout)
			err := s.client.GetJSON(rctx, path, out)
			cancel()
			if err == nil {
				s.breaker.OnSuccess()
				return nil
			}
			s.breaker.OnFailure()
			last = err
		}
		if attempt >= g.cfg.ReadRetries || ctx.Err() != nil {
			return last
		}
		var retryAfter time.Duration
		var se *StatusError
		if errors.As(last, &se) {
			retryAfter = se.RetryAfter
		}
		if !g.sleep(g.backoff.Delay(attempt, retryAfter)) {
			return last
		}
	}
}

// shardFactorsDoc is the slice of a shard's /v1/factors response the
// merge needs.
type shardFactorsDoc struct {
	T       int           `json:"t"`
	Dims    []int         `json:"dims"`
	Rank    int           `json:"rank"`
	Fit     *float64      `json:"fit"`
	S       []float64     `json:"s"`
	Factors [][][]float64 `json:"factors"`
}

// fetchAllFactors fans /v1/factors out to every shard. docs[i] is nil
// for unreachable shards; errs[i] says why.
func (g *Gateway) fetchAllFactors(ctx context.Context) (docs []*shardFactorsDoc, errs []error) {
	docs = make([]*shardFactorsDoc, len(g.shards))
	errs = make([]error, len(g.shards))
	var wg sync.WaitGroup
	for i, s := range g.shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			var doc shardFactorsDoc
			if err := g.fetchJSON(ctx, s, "/v1/factors", &doc); err != nil {
				errs[i] = err
				return
			}
			if len(doc.Dims) != len(g.router.Dims()) || doc.Dims[0] != g.router.Dims()[0] {
				errs[i] = fmt.Errorf("shard %d reports dims %v, gateway routes %v", i, doc.Dims, g.router.Dims())
				return
			}
			docs[i] = &doc
		}(i, s)
	}
	wg.Wait()
	return docs, errs
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// gatewayIngestResponse is the gateway's POST /v1/ingest envelope.
// Shapes match the single-node daemon where the semantics do;
// forwarding adds enqueued/shed (delivery is asynchronous, so
// "accepted" means accepted for forwarding, not yet solved).
type gatewayIngestResponse struct {
	Accepted           int    `json:"accepted"`
	Rejected           int    `json:"rejected"`
	Enqueued           int    `json:"enqueued"`
	ShedEvents         int    `json:"shed_events"`
	FirstRejectedLine  int    `json:"first_rejected_line,omitempty"`
	FirstRejectedError string `json:"first_rejected_error,omitempty"`
}

// handleIngest parses the same wire format as spstreamd, partitions by
// mode-0 row, and enqueues each shard's share. Full queues shed with
// 429 + Retry-After and exact counts — never block, never lie.
func (g *Gateway) handleIngest(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() || g.isKilled() {
		w.Header().Set("Retry-After", httpx.RetryAfterSeconds(time.Second))
		jsonError(w, http.StatusServiceUnavailable, "gateway is draining")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, g.cfg.BodyLimit)
	flush := r.URL.Query().Get("flush") != ""
	dims := g.router.Dims()

	// Parse + bucket in one pass; ParseEvent bounds-checks against the
	// router dims, so the row→shard lookup cannot fail afterwards.
	var resp gatewayIngestResponse
	buckets := make([][]sptensor.Event, len(g.shards))
	lineNo := 0
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ev, err := serve.ParseEvent(line, dims)
		if err != nil {
			resp.Rejected++
			if resp.FirstRejectedLine == 0 {
				resp.FirstRejectedLine = lineNo
				resp.FirstRejectedError = err.Error()
			}
			continue
		}
		resp.Accepted++
		sid := g.router.ShardForRow(int(ev.Coord[0]))
		buckets[sid] = append(buckets[sid], ev)
	}
	if scanErr := sc.Err(); scanErr != nil {
		var tooBig *http.MaxBytesError
		if errors.As(scanErr, &tooBig) {
			jsonError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", g.cfg.BodyLimit)
			return
		}
		jsonError(w, http.StatusBadRequest, "reading body: %v", scanErr)
		return
	}
	if resp.Accepted == 0 && resp.Rejected > 0 {
		jsonError(w, http.StatusBadRequest, "no valid events in body (%d rejected; line %d: %s)",
			resp.Rejected, resp.FirstRejectedLine, resp.FirstRejectedError)
		return
	}

	g.ov.Produced.Add(int64(resp.Accepted))
	for sid, s := range g.shards {
		evsHere := buckets[sid]
		if len(evsHere) == 0 && !flush {
			continue
		}
		if s.queue.push(batch{events: evsHere, flush: flush}) {
			resp.Enqueued += len(evsHere)
		} else {
			resp.ShedEvents += len(evsHere)
			g.ov.ShedNewest.Add(int64(len(evsHere)))
		}
	}
	g.ov.RaiseHighWater(g.Pending())

	if resp.ShedEvents > 0 {
		w.Header().Set("Retry-After", httpx.RetryAfterSeconds(time.Second))
		writeJSON(w, http.StatusTooManyRequests, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// gatewayFactorsResponse is the merged /v1/factors document. Mode-0 is
// the row-block concatenation; modes ≥ 1 live per shard (the cluster
// model is additive over disjoint row blocks, so there is no single
// global factor for them — see DESIGN §14).
type gatewayFactorsResponse struct {
	T          int                `json:"t"`
	Dims       []int              `json:"dims"`
	Rank       int                `json:"rank"`
	Partial    bool               `json:"partial"`
	Missing    []RowRange         `json:"missing,omitempty"`
	Mode0      [][]float64        `json:"mode0"`
	ModelNorm2 float64            `json:"model_norm2"`
	Shards     []gatewayShardView `json:"shards"`
}

// gatewayShardView is one shard's slot in a merged read.
type gatewayShardView struct {
	ID    int      `json:"id"`
	RowLo int      `json:"row_lo"`
	RowHi int      `json:"row_hi"`
	OK    bool     `json:"ok"`
	T     int      `json:"t,omitempty"`
	Fit   *float64 `json:"fit,omitempty"`
	Norm2 float64  `json:"norm2,omitempty"`
	Error string   `json:"error,omitempty"`
}

// mergeFactors builds the merged factors document from a fan-out
// result. Shared by /v1/factors and coordinate-less /v1/reconstruct.
func (g *Gateway) mergeFactors(docs []*shardFactorsDoc, errs []error) gatewayFactorsResponse {
	resp := gatewayFactorsResponse{Dims: g.router.Dims(), T: -1}
	rank := 0
	for _, doc := range docs {
		if doc != nil && doc.Rank > rank {
			rank = doc.Rank
		}
	}
	resp.Rank = rank
	perShard := make([][][]float64, len(docs))
	for i, doc := range docs {
		view := gatewayShardView{ID: i, RowLo: g.shards[i].lo, RowHi: g.shards[i].hi}
		if doc == nil {
			view.Error = errMsg(errs[i])
			resp.Partial = true
			resp.Shards = append(resp.Shards, view)
			continue
		}
		view.OK = true
		view.T = doc.T
		view.Fit = doc.Fit
		view.Norm2 = BlockNorm2(doc.Factors, doc.S, g.shards[i].lo, g.shards[i].hi)
		resp.ModelNorm2 += view.Norm2
		if resp.T == -1 || doc.T < resp.T {
			resp.T = doc.T // the conservative cluster position
		}
		if len(doc.Factors) > 0 {
			perShard[i] = doc.Factors[0]
		}
		resp.Shards = append(resp.Shards, view)
	}
	if resp.T == -1 {
		resp.T = 0
	}
	mode0, missing := MergeMode0(g.router, perShard, rank)
	resp.Mode0 = mode0
	resp.Missing = missing
	if len(missing) > 0 {
		resp.Partial = true
	}
	return resp
}

func errMsg(err error) string {
	if err == nil {
		return "unreachable"
	}
	return err.Error()
}

// handleFactors is the merged read: 200 even when shards are down,
// with partial=true and the missing row ranges (graceful degradation
// beats a 502 that hides the nine healthy shards behind the one dead
// one).
func (g *Gateway) handleFactors(w http.ResponseWriter, r *http.Request) {
	docs, errs := g.fetchAllFactors(r.Context())
	writeJSON(w, http.StatusOK, g.mergeFactors(docs, errs))
}

// handleReconstruct routes a point read to the one shard owning the
// row (exact — the additive model has a single owner per mode-0 row).
// Without ?coord it reports the merged model energy ‖X̂‖² = Σ_s ‖X̂_s‖²
// via the Gram/Hadamard contraction.
func (g *Gateway) handleReconstruct(w http.ResponseWriter, r *http.Request) {
	coordStr := r.URL.Query().Get("coord")
	if coordStr == "" {
		docs, errs := g.fetchAllFactors(r.Context())
		m := g.mergeFactors(docs, errs)
		writeJSON(w, http.StatusOK, map[string]any{
			"t":           m.T,
			"model_norm2": m.ModelNorm2,
			"partial":     m.Partial,
			"missing":     m.Missing,
			"shards":      m.Shards,
		})
		return
	}
	dims := g.router.Dims()
	parts := strings.Split(coordStr, ",")
	if len(parts) != len(dims) {
		jsonError(w, http.StatusBadRequest, "want %d coordinates, got %d", len(dims), len(parts))
		return
	}
	coord := make([]int, len(parts))
	for m, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 || v > dims[m] {
			jsonError(w, http.StatusBadRequest, "bad coordinate %q for mode %d (dim %d)", p, m, dims[m])
			return
		}
		coord[m] = v
	}
	s := g.shards[g.router.ShardForRow(coord[0]-1)]
	var doc map[string]any
	if err := g.fetchJSON(r.Context(), s, "/v1/reconstruct?coord="+coordStr, &doc); err != nil {
		// A point read has exactly one authority; with it down there is
		// no partial answer to give. 503 + Retry-After is the honest
		// response (the degraded-read contract covers fan-out reads).
		w.Header().Set("Retry-After", httpx.RetryAfterSeconds(s.breaker.RetryAfter()))
		jsonError(w, http.StatusServiceUnavailable, "shard %d owns row %d and is unavailable: %v", s.id, coord[0], err)
		return
	}
	doc["shard"] = s.id
	writeJSON(w, http.StatusOK, doc)
}

// shardStatsDoc is the slice of a shard's /v1/stats the gateway needs.
type shardStatsDoc struct {
	Version string   `json:"version"`
	T       int      `json:"t"`
	Fit     *float64 `json:"fit"`
	Shard   *struct {
		ID    int `json:"id"`
		Count int `json:"count"`
		RowLo int `json:"row_lo"`
		RowHi int `json:"row_hi"`
	} `json:"shard"`
	Overload map[string]int64 `json:"overload"`
}

// gatewayStatsResponse is GET /v1/stats at the gateway: the forward
// ledger plus one row per shard with breaker and backlog state.
type gatewayStatsResponse struct {
	Version  string             `json:"version"`
	Draining bool               `json:"draining"`
	Partial  bool               `json:"partial"`
	Shards   []gatewayShardStat `json:"shards"`
	Overload map[string]int64   `json:"overload"`
}

type gatewayShardStat struct {
	ID           int    `json:"id"`
	URL          string `json:"url"`
	RowLo        int    `json:"row_lo"`
	RowHi        int    `json:"row_hi"`
	Breaker      string `json:"breaker"`
	QueueBatches int    `json:"queue_batches"`
	QueueEvents  int    `json:"queue_events"`
	Inflight     int64  `json:"inflight"`
	OK           bool   `json:"ok"`
	T            int    `json:"t,omitempty"`
	Version      string `json:"version,omitempty"`
	Mismatch     string `json:"mismatch,omitempty"`
	Error        string `json:"error,omitempty"`
}

// handleStats fans /v1/stats out and audits each shard's self-reported
// row block against the gateway's router: a daemon started with the
// wrong -shard-id or -shard-count answers confidently and corrupts the
// merge, so topology disagreement is surfaced here, loudly.
func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := gatewayStatsResponse{
		Version:  g.cfg.Version,
		Draining: g.draining.Load(),
		Shards:   make([]gatewayShardStat, len(g.shards)),
	}
	var wg sync.WaitGroup
	for i, s := range g.shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			qb, qe := s.queue.depth()
			st := gatewayShardStat{
				ID: i, URL: s.client.Base, RowLo: s.lo, RowHi: s.hi,
				Breaker:      s.breaker.State().String(),
				QueueBatches: qb, QueueEvents: qe,
				Inflight: s.inflight.Load(),
			}
			var doc shardStatsDoc
			if err := g.fetchJSON(r.Context(), s, "/v1/stats", &doc); err != nil {
				st.Error = err.Error()
			} else {
				st.OK = true
				st.T = doc.T
				st.Version = doc.Version
				if sh := doc.Shard; sh != nil && (sh.ID != i || sh.Count != len(g.shards) || sh.RowLo != s.lo || sh.RowHi != s.hi) {
					st.Mismatch = fmt.Sprintf("shard reports id=%d/%d rows [%d,%d), gateway expects id=%d/%d rows [%d,%d)",
						sh.ID, sh.Count, sh.RowLo, sh.RowHi, i, len(g.shards), s.lo, s.hi)
					g.cfg.Logf("topology mismatch at %s: %s", s.client.Base, st.Mismatch)
				}
			}
			resp.Shards[i] = st
		}(i, s)
	}
	wg.Wait()
	for _, st := range resp.Shards {
		if !st.OK {
			resp.Partial = true
		}
	}
	ov := g.ov.Snapshot()
	pending := g.Pending()
	resp.Overload = map[string]int64{
		"produced":    ov.Produced,
		"forwarded":   ov.Processed,
		"failed":      ov.Failed,
		"shed_newest": ov.ShedNewest,
		"shed_drain":  ov.ShedDrain,
		"shed":        ov.Shed(),
		"pending":     pending,
		"queue_high":  ov.QueueHighWater,
	}
	writeJSON(w, http.StatusOK, resp)
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz: the gateway is ready while it can do useful work —
// not draining and at least one shard admissible. With every breaker
// open, reads would merge nothing and ingest would only queue, so the
// honest answer is 503 with the soonest shard's Retry-After.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() || g.isKilled() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	open := 0
	soonest := time.Duration(math.MaxInt64)
	for _, s := range g.shards {
		if s.breaker.State() == resilience.BreakerOpen {
			open++
			if ra := s.breaker.RetryAfter(); ra < soonest {
				soonest = ra
			}
		}
	}
	if open == len(g.shards) {
		w.Header().Set("Retry-After", httpx.RetryAfterSeconds(soonest))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "all shards unavailable", "shards_open": open,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ready", "shards_total": len(g.shards), "shards_open": open,
	})
}
