package core

import (
	"testing"

	"spstream/internal/dense"
	"spstream/internal/sptensor"
	"spstream/internal/synth"
)

// TestExplicitMatchesDenseReference validates one full slice update of
// the explicit algorithm against a brute-force dense implementation of
// the textbook formulation: factor matrices updated mode by mode via
//
//	Zₙ = (⊙_{v≠n} A⁽ᵛ⁾)·diag(sₜ)   (Khatri-Rao with the time row)
//	A⁽ⁿ⁾ = X₍ₙ₎·Zₙ·(ZₙᵀZₙ + ridge·I)⁻¹
//
// on the first slice (G₀ = 0, so the historical term vanishes for any
// µ) with a single inner iteration, replicating the solver's exact
// update order (sₜ warm start → modes in order → sₜ refresh). Everything on the reference side goes through dense
// matricization — no MTTKRP, no Hadamard shortcut identities — so any
// wiring bug in Ψ/Φ construction or the sₜ column scaling shows up.
func TestExplicitMatchesDenseReference(t *testing.T) {
	dims := []int{4, 3, 5}
	const k = 2
	x := referenceSlice(t, dims)

	opt := Options{
		Rank:      k,
		Algorithm: Optimized,
		MaxIters:  1,
		Tol:       1e-30,
		Seed:      7,
		Workers:   1,
	}
	d, err := NewDecomposer(dims, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot the initial factors for the reference before the solver
	// mutates them.
	init := make([]*dense.Matrix, len(dims))
	for m := range dims {
		init[m] = d.Factor(m).Clone()
	}
	if _, err := d.ProcessSlice(x); err != nil {
		t.Fatal(err)
	}

	// --- dense reference ---------------------------------------------
	a := make([]*dense.Matrix, len(dims))
	for m := range init {
		a[m] = init[m].Clone()
	}
	xvec, err := sptensor.ToDenseVector(x)
	if err != nil {
		t.Fatal(err)
	}
	solveS := func() []float64 {
		// ψ = (⊙ all factors)ᵀ·vec(X); Φs = ZᵀZ + λI.
		z := dense.KhatriRaoAll(a)
		psi := make([]float64, k)
		dense.MulVecT(psi, z, xvec)
		phiS := dense.NewMatrix(k, k)
		dense.Gram(phiS, z)
		dense.AddScaledIdentity(phiS, phiS, opt.withDefaults().StreamRidge)
		chol, err := dense.Factor(phiS)
		if err != nil {
			t.Fatal(err)
		}
		chol.SolveVec(psi)
		return psi
	}
	s := solveS()
	for n := range dims {
		// Zₙ over the other modes, columns scaled by sₜ.
		others := make([]*dense.Matrix, 0, len(dims)-1)
		for v := range dims {
			if v != n {
				others = append(others, a[v])
			}
		}
		z := dense.KhatriRaoAll(others)
		dense.ScaleColumns(z, z, s)
		xn, err := sptensor.Matricize(x, n)
		if err != nil {
			t.Fatal(err)
		}
		psi := dense.NewMatrix(dims[n], k)
		dense.MulAB(psi, xn, z)
		phi := dense.NewMatrix(k, k)
		dense.Gram(phi, z)
		// Same relative ridge the solver applies (µG = 0 on slice 1).
		ridge := opt.withDefaults().FactorRidgeRel * dense.Trace(phi) / float64(k)
		chol, err := dense.FactorRidge(phi, ridge)
		if err != nil {
			t.Fatal(err)
		}
		chol.SolveRowsInto(a[n], psi)
	}
	sFinal := solveS()

	for m := range dims {
		if diff := a[m].MaxAbsDiff(d.Factor(m)); diff > 1e-6 {
			t.Fatalf("mode %d: solver differs from dense reference by %g", m, diff)
		}
	}
	for j := range sFinal {
		got := d.LastS()[j]
		if diff := sFinal[j] - got; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("sₜ[%d]: solver %g vs reference %g", j, got, sFinal[j])
		}
	}
}

// referenceSlice builds a small dense-ish random slice.
func referenceSlice(t *testing.T, dims []int) *sptensor.Tensor {
	t.Helper()
	r := synth.NewRNG(99)
	x := sptensor.New(dims...)
	coord := make([]int32, len(dims))
	for e := 0; e < 40; e++ {
		for m, dim := range dims {
			coord[m] = int32(r.Intn(dim))
		}
		x.Append(coord, r.NormFloat64()+2)
	}
	x.Coalesce()
	return x
}

// TestTinyMuAllowed: a near-zero forgetting factor (pure per-slice ALS,
// essentially no history) must stay numerically stable.
func TestTinyMuAllowed(t *testing.T) {
	d, err := NewDecomposer([]int{6, 7}, Options{Rank: 2, Mu: 1e-9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	x := sptensor.New(6, 7)
	x.Append([]int32{1, 2}, 1)
	x.Append([]int32{3, 4}, 2)
	for i := 0; i < 3; i++ {
		if _, err := d.ProcessSlice(x); err != nil {
			t.Fatal(err)
		}
	}
	if d.Factor(0).HasNaN() {
		t.Fatal("NaN with tiny µ")
	}
}
