package core

import (
	"fmt"
	"math"

	"spstream/internal/dense"
	"spstream/internal/mttkrp"
	"spstream/internal/parallel"
	"spstream/internal/sptensor"
	"spstream/internal/trace"
)

// processSliceSpCP runs one time slice of the paper's Algorithm 4
// (spCP-stream). Factor rows are partitioned per mode into the nz(n)
// subset touched by this slice's nonzeros and the untouched z(n)
// subset. Only A_nz is materialized and iterated on; the z rows are
// carried implicitly through the K×K Gram matrices C_z (Eq. 11) and
// updated explicitly once, after convergence, by the accumulated
// transform Q·Φ⁻¹ of the final iteration (Eq. 6). The inner loop
// therefore costs O(nnz·K + |nz|·K² + K³) per mode instead of
// O(nnz·K + Iₙ·K²) — the source of the 102× speedups on skewed tensors.
func (d *Decomposer) processSliceSpCP(x *sptensor.Tensor) (SliceResult, error) {
	res := SliceResult{T: d.t, NNZ: x.NNZ(), Fit: math.NaN()}
	var err error

	// --- Pre: remap, nz bookkeeping, incremental C_z,t−1 -------------
	var rm *mttkrp.Remapped
	var aNzPrev, aNz []*dense.Matrix
	d.bd.Time(trace.Pre, func() {
		rm = mttkrp.Remap(x)
		if d.prevNZ == nil || d.opt.DirectCz {
			// First slice (or the DirectCz ablation): C_z,t−1 =
			// C − Gram(A_nz) from scratch.
			for m := range d.a {
				aNzPrevM := gatherNZ(d.a[m], rm.NZ[m])
				gram := dense.NewMatrix(d.k, d.k)
				dense.GramParallel(gram, aNzPrevM, d.opt.Workers)
				dense.Sub(d.cz[m], d.c[m], gram)
			}
		} else {
			// Algorithm 4 lines 8–11: adjust C_z,t−1 by the rows that
			// left (add) and entered (subtract) the nz set.
			for m := range d.a {
				left := mttkrp.SetDiff(d.prevNZ[m], rm.NZ[m])
				entered := mttkrp.SetDiff(rm.NZ[m], d.prevNZ[m])
				if len(left) > 0 {
					g := dense.NewMatrix(d.k, d.k)
					dense.GramParallel(g, gatherNZ(d.a[m], left), d.opt.Workers)
					dense.Add(d.cz[m], d.cz[m], g)
				}
				if len(entered) > 0 {
					g := dense.NewMatrix(d.k, d.k)
					dense.GramParallel(g, gatherNZ(d.a[m], entered), d.opt.Workers)
					dense.Sub(d.cz[m], d.cz[m], g)
				}
			}
		}
		// Gather A_nz,t−1 and initialize the iterate A_nz from it; seed
		// the Gram state exactly like the explicit path.
		aNzPrev = make([]*dense.Matrix, d.n)
		aNz = make([]*dense.Matrix, d.n)
		for m := range d.a {
			aNzPrev[m] = gatherNZ(d.a[m], rm.NZ[m])
			aNz[m] = aNzPrev[m].Clone()
			d.cPrev[m].CopyFrom(d.c[m])
			d.h[m].CopyFrom(d.c[m])
		}
		// sₜ update over the remapped slice and gathered prev factors
		// (identical values, slice-local footprint).
		err = d.solveS(rm.X, aNzPrev, false)
	})
	if err != nil {
		return res, err
	}
	d.bd.Time(trace.Misc, d.buildMuG)

	// Per-mode final transform T⁽ⁿ⁾ = Q⁽ⁿ⁾(Φ⁽ⁿ⁾)⁻¹ of the last
	// iteration, applied to the z rows in Post, and the per-iteration
	// current C_z.
	tFinal := make([]*dense.Matrix, d.n)
	czCur := make([]*dense.Matrix, d.n)
	for m := range tFinal {
		tFinal[m] = dense.NewMatrix(d.k, d.k)
		czCur[m] = dense.NewMatrix(d.k, d.k)
	}
	phi := d.scratch1
	q := d.scratch2
	tmpKK := dense.NewMatrix(d.k, d.k)
	deltaPrev := math.Inf(1)

	for iter := 1; iter <= d.opt.MaxIters; iter++ {
		res.Iters = iter
		d.bd.Iters++
		for n := 0; n < d.n; n++ {
			// Q⁽ⁿ⁾ (Eq. 14) — Hadamard of K×K Grams, replacing the
			// baseline's giant Historical matrix products.
			d.bd.Time(trace.Historical, func() {
				d.buildQ(q, n)
			})
			var chol *dense.Cholesky
			d.bd.Time(trace.Inverse, func() {
				d.buildPhi(phi, n)
				chol, err = dense.Factor(phi)
			})
			if err != nil {
				return res, fmt.Errorf("core: spcp mode %d Φ factorization: %w", n, err)
			}
			// A_nz update (Eq. 7): spMTTKRP over gathered factors plus
			// the nz part of the historical term, then the Φ solve.
			d.bd.Time(trace.MTTKRP, func() {
				psi := d.ensureNzPsi(aNz[n].Rows)
				d.mt.RowSparse(psi, rm, aNz, n)
				// Column-scale by sₜ: the time mode's single Khatri-Rao
				// row (see processSliceExplicit).
				dense.ScaleColumns(psi, psi, d.s)
			})
			d.bd.Time(trace.Update, func() {
				psi := d.nzPsi
				addMulAB(psi, aNzPrev[n], q, d.opt.Workers)
				if d.opt.Constraint == nil {
					solveRowsParallel(aNz[n], psi, chol, d.opt.Workers)
					return
				}
				// Experimental constrained extension (§VII): the nz
				// rows are solved with BF-ADMM (warm-started from the
				// previous iterate); the z rows stay linear and are
				// projected once per slice in Post.
				st, e := d.solver.BlockedFused(aNz[n], phi, psi, d.opt.Constraint)
				res.ADMMIters += st.Iters
				err = e
			})
			if err != nil {
				return res, fmt.Errorf("core: spcp mode %d ADMM: %w", n, err)
			}
			// Gram refresh: C_nz from the explicit nz rows; the H_nz
			// cross-Gram is historical-term work (Fig. 8 accounting) …
			d.bd.Time(trace.Gram, func() {
				dense.GramParallel(d.c[n], aNz[n], d.opt.Workers) // C_nz into c[n]
			})
			d.bd.Time(trace.Historical, func() {
				dense.MulAtBParallel(d.h[n], aNzPrev[n], aNz[n], d.opt.Workers)
			})
			// … and the implicit z parts (Eqs. 11, 13): T = QΦ⁻¹,
			// H_z = C_z,t−1·T, C_z = Tᵀ·C_z,t−1·T. All K×K.
			d.bd.Time(trace.Historical, func() {
				chol.SolveRowsInto(tFinal[n], q)
				dense.MulAB(tmpKK, d.cz[n], tFinal[n]) // C_z,t−1·T
				dense.Add(d.h[n], d.h[n], tmpKK)       // H = H_nz + H_z
				dense.MulAtB(czCur[n], tFinal[n], tmpKK)
				dense.Add(d.c[n], d.c[n], czCur[n]) // C = C_nz + C_z
			})
			if d.opt.Normalize {
				d.bd.Time(trace.Misc, func() {
					d.normalizeModeSpCP(n, aNz[n], tFinal[n], czCur[n])
				})
			}
		}
		// Time-mode ALS block: refresh sₜ over the remapped slice and
		// the gathered current factors, then the µG + ssᵀ operand.
		d.bd.Time(trace.MTTKRP, func() {
			err = d.solveS(rm.X, aNz, false)
		})
		if err != nil {
			return res, err
		}
		d.bd.Time(trace.Misc, d.buildMuG)
		// Trace-form convergence (Eqs. 16–17):
		// ‖A−Aₜ₋₁‖² = tr(C) + tr(Cₜ₋₁) − 2tr(H), ‖A‖² = tr(C).
		var delta float64
		d.bd.Time(trace.Error, func() {
			for n := 0; n < d.n; n++ {
				den := dense.Trace(d.c[n])
				num := den + dense.Trace(d.cPrev[n]) - 2*dense.Trace(d.h[n])
				if num < 0 {
					num = 0 // floating-point cancellation guard
				}
				if den > 0 {
					delta += math.Sqrt(num / den)
				}
			}
		})
		res.Delta = delta
		if math.Abs(delta-deltaPrev) < d.opt.Tol {
			res.Converged = true
			break
		}
		deltaPrev = delta
	}

	// --- Post: materialize A = A_z ⊕ A_nz (Alg. 4 line 34) ------------
	d.bd.Time(trace.Post, func() {
		for m := range d.a {
			projected := d.applyZTransform(d.a[m], rm.NZ[m], tFinal[m])
			rm.ScatterMode(d.a[m], aNz[m], m)
			if projected {
				// The z rows changed beyond the linear transform, so
				// re-synchronize C_z (and with it C) from the
				// materialized rows — one Gram pass per slice.
				gramExcluding(d.cz[m], d.a[m], rm.NZ[m], d.opt.Workers)
				gram := dense.NewMatrix(d.k, d.k)
				dense.GramParallel(gram, aNz[m], d.opt.Workers)
				dense.Add(d.c[m], d.cz[m], gram)
			} else {
				d.cz[m].CopyFrom(czCur[m])
			}
		}
		if d.prevNZ == nil {
			d.prevNZ = make([][]int32, d.n)
		}
		copy(d.prevNZ, rm.NZ)
	})

	if d.opt.TrackFit {
		d.bd.Time(trace.Misc, func() { res.Fit = d.sliceFit(x) })
	}
	d.bd.Time(trace.Post, d.finishSlice)
	return res, nil
}

// ensureNzPsi returns the Ψ_nz workspace with the requested row count.
func (d *Decomposer) ensureNzPsi(rows int) *dense.Matrix {
	if d.nzPsi == nil || d.nzPsi.Rows != rows || d.nzPsi.Cols != d.k {
		d.nzPsi = dense.NewMatrix(rows, d.k)
	}
	return d.nzPsi
}

// applyZTransform updates every z row of the full factor in place:
// row ← row·T (Eq. 6 with A_z,t−1 being the untouched rows of a). nz is
// the sorted nonzero-row list; all other rows are transformed. In the
// constrained extension the materialized z rows are additionally
// projected onto the constraint set; the return value reports whether
// that projection ran (the caller must then re-synchronize the Grams).
func (d *Decomposer) applyZTransform(a *dense.Matrix, nz []int32, t *dense.Matrix) bool {
	isNZ := make([]bool, a.Rows)
	for _, i := range nz {
		isNZ[i] = true
	}
	k := d.k
	con := d.opt.Constraint
	parallel.For(a.Rows, d.opt.Workers, func(_ int, r parallel.Range) {
		tmp := make([]float64, k)
		for i := r.Lo; i < r.Hi; i++ {
			if isNZ[i] {
				continue
			}
			row := a.Row(i)
			for j := 0; j < k; j++ {
				sum := 0.0
				for p := 0; p < k; p++ {
					sum += row[p] * t.Data[p*t.Stride+j]
				}
				tmp[j] = sum
			}
			copy(row, tmp)
			if con != nil {
				rowView := a.RowView(i, i+1)
				con.Project(rowView, nil, 1)
			}
		}
	})
	return con != nil
}

// gramExcluding computes dst = Σ_{i ∉ nz} a[i]ᵀa[i] — the Gram of the z
// rows — without gathering them, via per-worker partials reduced in
// worker order.
func gramExcluding(dst, a *dense.Matrix, nz []int32, workers int) {
	isNZ := make([]bool, a.Rows)
	for _, i := range nz {
		isNZ[i] = true
	}
	k := a.Cols
	partial := parallel.ReduceVec(a.Rows, workers, k*k, func(_ int, r parallel.Range, acc []float64) {
		for i := r.Lo; i < r.Hi; i++ {
			if isNZ[i] {
				continue
			}
			row := a.Row(i)
			for x, vx := range row {
				if vx == 0 {
					continue
				}
				off := x * k
				for y := x; y < k; y++ {
					acc[off+y] += vx * row[y]
				}
			}
		}
	})
	for x := 0; x < k; x++ {
		for y := x; y < k; y++ {
			v := partial[x*k+y]
			dst.Data[x*dst.Stride+y] = v
			dst.Data[y*dst.Stride+x] = v
		}
	}
}

// gatherNZ gathers the rows listed in idx (int32) from src.
func gatherNZ(src *dense.Matrix, idx []int32) *dense.Matrix {
	out := dense.NewMatrix(len(idx), src.Cols)
	for r, i := range idx {
		copy(out.Row(r), src.Row(int(i)))
	}
	return out
}
