// Package synth generates synthetic streaming sparse tensors whose
// structural properties — mode lengths, nonzeros per time slice, and the
// per-mode nonzero-index distributions (uniform, Zipf-skewed, or
// clustered/bursty à la the Flickr image mode) — match the four FROSTT
// datasets the paper evaluates (Table II), scaled to fit in laptop
// memory. Values can be drawn from a planted low-rank model so that the
// decomposition has meaningful structure to recover, or from a simple
// positive count model.
//
// All randomness flows through a deterministic SplitMix64 generator
// seeded explicitly, so every dataset is exactly reproducible.
package synth

import "math"

// RNG is a deterministic SplitMix64 pseudo-random generator. It is
// intentionally minimal — the generators only need uniform integers,
// uniform floats, Gaussians, and a Zipf sampler (zipf.go).
type RNG struct {
	state uint64
	// spare Gaussian from the Box-Muller pair, NaN when absent.
	spare float64
	ok    bool
}

// NewRNG creates a generator from a seed. Distinct seeds yield
// independent-looking streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 uniformly random bits (SplitMix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics when n ≤ 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("synth: Intn with non-positive bound")
	}
	// Lemire-style rejection to avoid modulo bias.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// NormFloat64 returns a standard normal variate (Box-Muller with spare).
func (r *RNG) NormFloat64() float64 {
	if r.ok {
		r.ok = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.ok = true
		return u * f
	}
}

// LogNormal returns exp(mu + sigma·N(0,1)) — the positive count model
// used for non-planted values.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Split derives an independent RNG for a sub-task (e.g. one time slice)
// so slices can be generated in any order with identical results.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xD1B54A32D192ED03)
}
