package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"spstream/internal/core"
	"spstream/internal/csf"
	"spstream/internal/dense"
	"spstream/internal/mttkrp"
	"spstream/internal/parallel"
	"spstream/internal/sptensor"
	"spstream/internal/synth"
)

// The bench experiment is the reproducible benchmark pipeline behind
// `make bench`: it times the three factor-mode MTTKRP kernels (lock,
// coordinate plan, tiled CSF) and full end-to-end slices under each
// kernel policy on fixed synthetic configs, and emits the results as
// machine-readable JSON (BENCH_PR<n>.json). The newest committed copy
// of that file is the regression baseline CI compares fresh runs
// against (advisory: >10% slowdowns warn, they do not fail the build —
// shared runners are too noisy for a hard gate).

// benchRecord is one benchmark measurement. Name is the stable identity
// compare runs match on.
type benchRecord struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"`   // "kernel" or "slice"
	Config      string  `json:"config"` // synthetic config name
	Kernel      string  `json:"kernel"` // lock|plan|csf, or the slice policy auto|plan|csf
	Mode        int     `json:"mode"`   // target mode; -1 for slice benches
	Rank        int     `json:"rank"`
	Workers     int     `json:"workers"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// GFLOPS is the effective rate at nnz·K·N flops per MTTKRP (one
	// K-wide multiply chain over the N−1 source modes plus the
	// accumulate, per nonzero). Zero for slice benches.
	GFLOPS float64 `json:"gflops,omitempty"`
	// Remapped / HotFirst record the layout manager's verdict on the
	// final slice of an end-to-end bench (slice records only).
	Remapped bool `json:"remapped,omitempty"`
	HotFirst bool `json:"hot_first,omitempty"`
	// LiveHeapBytes / PeakHeapBytes are the out-of-core experiment's
	// memory evidence (ooc records only): post-GC live-heap delta and
	// sampled heap high-water delta over the pre-run baseline.
	LiveHeapBytes int64 `json:"live_heap_bytes,omitempty"`
	PeakHeapBytes int64 `json:"peak_heap_bytes,omitempty"`
}

// benchFile is the JSON document. CSFBestSpeedup is the best
// CSF-over-plan kernel ratio observed anywhere in the grid — the
// headline number the PR's acceptance criterion (≥1.3× on at least one
// config) reads directly.
type benchFile struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Baseline names the committed bench file this run was compared
	// against when it was produced (the -compare flag), so a committed
	// BENCH_PR<n>.json records its own lineage.
	Baseline       string        `json:"baseline,omitempty"`
	CSFBestSpeedup float64       `json:"csf_best_speedup"`
	CSFBestAt      string        `json:"csf_best_at"`
	Records        []benchRecord `json:"records"`
}

// benchConfig is one synthetic workload of the grid. The four configs
// pin the regimes the kernel selector discriminates: a short leading
// mode (heavy output-row sharing, the plan's worst case), a uniform
// cube (both kernels comfortable), a duplicate-heavy slice whose
// coalesced fiber tree is much smaller than its nonzero count (CSF's
// best case), and a skewed slice with long, sparsely-touched modes —
// the layout manager's target regime, where per-slice activity covers
// a small hot fraction of huge factor matrices.
type benchConfig struct {
	name  string
	dists []synth.IndexDist
	nnz   int
}

func benchConfigs() []benchConfig {
	return []benchConfig{
		{"shortmode", []synth.IndexDist{synth.Uniform{N: 32}, synth.Uniform{N: 3000}, synth.Uniform{N: 3000}}, 200000},
		{"cube", []synth.IndexDist{synth.Uniform{N: 800}, synth.Uniform{N: 800}, synth.Uniform{N: 800}}, 200000},
		{"dupheavy", []synth.IndexDist{synth.NewZipf(24, 0.5), synth.NewZipf(1100, 0.9), synth.NewZipf(1700, 0.9)}, 300000},
		{"skewed", []synth.IndexDist{
			synth.NewZipf(40000, 1.1),
			synth.Clustered{N: 60000, Window: 1500, Drift: 900, Revisit: 0.2},
			synth.NewZipf(50000, 1.05),
		}, 200000},
	}
}

var benchRanks = []int{16, 32}

// benchSlices generates the config's stream (a few slices, fixed seed).
func benchSlices(cfg benchConfig, t int) ([]*sptensor.Tensor, []int, error) {
	sc := synth.Config{Name: cfg.name, Dists: cfg.dists, T: t, NNZPerSlice: cfg.nnz, Seed: 17}
	s, err := synth.Generate(sc)
	if err != nil {
		return nil, nil, err
	}
	return s.Slices, s.Dims, nil
}

// benchSelected filters the grid by the -benchconfigs flag (empty =
// all), so `make bench-skew` can rerun just the layout-sensitive
// configs without the full grid's wall clock.
func (h *harness) benchSelected() ([]benchConfig, error) {
	all := benchConfigs()
	if h.benchOnly == "" {
		return all, nil
	}
	byName := make(map[string]benchConfig, len(all))
	for _, c := range all {
		byName[c.name] = c
	}
	var out []benchConfig
	for _, name := range strings.Split(h.benchOnly, ",") {
		name = strings.TrimSpace(name)
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown bench config %q", name)
		}
		out = append(out, c)
	}
	return out, nil
}

// bench runs the kernel + end-to-end grid and writes the JSON.
func (h *harness) bench() error {
	h.header("Bench — MTTKRP kernel and end-to-end slice pipeline",
		"reproducible regression baseline; kernel grid backs the cost-model selector")
	doc := benchFile{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0), Baseline: h.benchCompare}
	cfgs, err := h.benchSelected()
	if err != nil {
		return err
	}
	workers := h.measureWorkers()

	// --- kernel grid ---------------------------------------------------
	fmt.Fprintf(h.out, "\nkernel grid (%d trials each):\n", 1)
	fmt.Fprintf(h.out, "%-10s %5s %5s %8s %-6s %14s %12s %10s %9s\n",
		"config", "mode", "rank", "workers", "kernel", "ns/op", "B/op", "allocs/op", "GFLOP/s")
	for _, cfg := range cfgs {
		slices, dims, err := benchSlices(cfg, 2)
		if err != nil {
			return err
		}
		x := slices[len(slices)-1]
		n := len(dims)
		for _, k := range benchRanks {
			factors := randomFactors(dims, k, 23)
			for _, w := range workers {
				pool := parallel.NewPool(w)
				for mode := 0; mode < n; mode++ {
					out := dense.NewMatrix(dims[mode], k)
					flops := float64(x.NNZ()) * float64(k) * float64(n)
					for _, kernel := range []string{"lock", "plan", "csf"} {
						r := benchKernelOnce(kernel, x, factors, out, mode, w, pool)
						rec := benchRecord{
							Name: fmt.Sprintf("kernel/%s/mode%d/k%d/w%d/%s", cfg.name, mode, k, w, kernel),
							Kind: "kernel", Config: cfg.name, Kernel: kernel,
							Mode: mode, Rank: k, Workers: w,
							NsPerOp:     float64(r.NsPerOp()),
							BytesPerOp:  r.AllocedBytesPerOp(),
							AllocsPerOp: r.AllocsPerOp(),
							GFLOPS:      flops / float64(r.NsPerOp()),
						}
						doc.Records = append(doc.Records, rec)
						fmt.Fprintf(h.out, "%-10s %5d %5d %8d %-6s %14.0f %12d %10d %9.3f\n",
							cfg.name, mode, k, w, kernel, rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp, rec.GFLOPS)
					}
					// Track the best CSF-over-plan ratio for the summary.
					nr := len(doc.Records)
					plan, csfRec := doc.Records[nr-2], doc.Records[nr-1]
					if ratio := plan.NsPerOp / csfRec.NsPerOp; ratio > doc.CSFBestSpeedup {
						doc.CSFBestSpeedup = ratio
						doc.CSFBestAt = csfRec.Name
					}
				}
				pool.Close()
			}
		}
	}
	fmt.Fprintf(h.out, "\nbest CSF speedup over plan: %.2fx at %s\n", doc.CSFBestSpeedup, doc.CSFBestAt)

	// --- end-to-end slices ---------------------------------------------
	// Optimized CP-stream over the same configs under each forced policy
	// plus Auto (with and without the layout manager, isolating the
	// hot-row remapping payoff); the selector check is that Auto never
	// loses to the best forced kernel by more than measurement slack.
	fmt.Fprintf(h.out, "\nend-to-end slices (optimized CP-stream, %d inner iters, min of %d interleaved trials):\n", 4, e2eTrials)
	fmt.Fprintf(h.out, "%-10s %5s %8s %-14s %14s %6s %4s\n", "config", "rank", "workers", "policy", "ns/slice", "remap", "hot")
	pols := e2ePolicies()
	w := workers[len(workers)-1]
	for _, cfg := range cfgs {
		slices, dims, err := benchSlices(cfg, 3)
		if err != nil {
			return err
		}
		for _, k := range benchRanks {
			best := make([]float64, len(pols))
			for i := range best {
				best[i] = math.Inf(1)
			}
			remapped := make([]bool, len(pols))
			hotFirst := make([]bool, len(pols))
			// Interleave the policies within each trial and rotate the
			// starting policy per trial: back-to-back runs of the same
			// policy share correlated scheduler and cache state, and a
			// fixed order hands later policies a warmer process. The
			// rotation distributes any position effect evenly, so the
			// per-policy minima are comparable.
			for tr := 0; tr < e2eTrials; tr++ {
				for po := range pols {
					pi := (po + tr) % len(pols)
					pol := pols[pi]
					opt := core.Options{Rank: k, Algorithm: core.Optimized, Workers: w,
						Seed: 9, MaxIters: 4, Tol: 0, MTTKRPKernel: pol.kernel, Layout: pol.layout}
					d, rm, hf, err := benchSliceOnce(dims, slices, opt)
					if err != nil {
						return err
					}
					if ns := float64(d.Nanoseconds()) / float64(len(slices)); ns < best[pi] {
						best[pi] = ns
					}
					remapped[pi], hotFirst[pi] = rm, hf
				}
			}
			perPolicy := make(map[string]float64, len(pols))
			for pi, pol := range pols {
				perPolicy[pol.name] = best[pi]
				rec := benchRecord{
					Name: fmt.Sprintf("slice/%s/k%d/w%d/%s", cfg.name, k, w, pol.name),
					Kind: "slice", Config: cfg.name, Kernel: pol.name,
					Mode: -1, Rank: k, Workers: w, NsPerOp: best[pi],
					Remapped: remapped[pi], HotFirst: hotFirst[pi],
				}
				doc.Records = append(doc.Records, rec)
				fmt.Fprintf(h.out, "%-10s %5d %8d %-14s %14.0f %6v %4v\n",
					cfg.name, k, w, pol.name, best[pi], remapped[pi], hotFirst[pi])
			}
			bestForced := perPolicy["plan"]
			if perPolicy["csf"] < bestForced {
				bestForced = perPolicy["csf"]
			}
			if perPolicy["auto"] > bestForced*1.10 {
				fmt.Fprintf(h.out, "WARN: %s k=%d: auto policy (%.0f ns) regresses %.0f%% vs best forced kernel (%.0f ns)\n",
					cfg.name, k, perPolicy["auto"], 100*(perPolicy["auto"]/bestForced-1), bestForced)
			}
		}
	}

	// --- emit + compare ------------------------------------------------
	if h.benchJSON != "" {
		data, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(h.benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(h.out, "\nwrote %s (%d records)\n", h.benchJSON, len(doc.Records))
	}
	if h.benchCompare != "" {
		if err := compareBench(h, &doc); err != nil {
			return err
		}
	}
	return nil
}

// benchKernelOnce times one (kernel, mode) cell. Per-slice compile work
// (plan build, CSF tree build) happens outside the timed loop — the
// kernel grid measures steady-state inner-iteration cost; build costs
// show up in the end-to-end slice benches.
func benchKernelOnce(kernel string, x *sptensor.Tensor, factors []*dense.Matrix, out *dense.Matrix, mode, w int, pool *parallel.Pool) testing.BenchmarkResult {
	switch kernel {
	case "lock":
		c := mttkrp.NewComputer(w)
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Lock(out, x, factors, mode)
			}
		})
	case "plan":
		c := mttkrp.NewComputer(w)
		plan := c.NewPlan(x)
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.PlanMTTKRP(out, plan, factors, mode)
			}
		})
	default: // csf
		eng := csf.NewEngineWithPool(w, pool)
		eng.Begin(x)
		eng.Build(mode)
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.MTTKRP(out, factors, mode)
			}
		})
	}
}

// e2eTrials is the trial count for the end-to-end slice grid; the
// minimum over interleaved, rotation-ordered trials is reported.
const e2eTrials = 4

// e2ePolicy is one end-to-end run configuration: a kernel policy plus a
// layout policy.
type e2ePolicy struct {
	name   string
	kernel core.MTTKRPKernel
	layout core.LayoutPolicy
}

// e2ePolicies returns the end-to-end grid: the adaptive selector with
// and without the layout manager (their gap is the hot-row remapping
// payoff) and each forced kernel. Forced kernels never remap, so their
// layout policy is irrelevant.
func e2ePolicies() []e2ePolicy {
	return []e2ePolicy{
		{"auto", core.KernelAuto, core.LayoutDefault},
		{"auto-nolayout", core.KernelAuto, core.LayoutOff},
		{"plan", core.KernelPlan, core.LayoutDefault},
		{"csf", core.KernelCSF, core.LayoutDefault},
	}
}

// benchSliceOnce runs the stream once through a fresh decomposer and
// returns the wall time plus the layout verdict of the final slice.
// Per-slice Pre work (kernel selection, layout builds) is inside the
// measurement; construction is too, matching earlier baselines.
func benchSliceOnce(dims []int, slices []*sptensor.Tensor, opt core.Options) (time.Duration, bool, bool, error) {
	start := time.Now()
	dec, err := core.NewDecomposer(dims, opt)
	if err != nil {
		return 0, false, false, err
	}
	for _, x := range slices {
		if _, err := dec.ProcessSlice(x); err != nil {
			return 0, false, false, err
		}
	}
	d := time.Since(start)
	rm, hot := dec.LastLayoutDecision()
	return d, rm, hot, nil
}

// compareBench diffs the fresh run against a committed baseline,
// benchstat-style but advisory: regressions beyond 10% print WARN lines
// and never fail the run (exit stays 0) — CI runners are too noisy for
// a hard benchmark gate, but the warnings make regressions visible in
// the job log.
func compareBench(h *harness, fresh *benchFile) error {
	data, err := os.ReadFile(h.benchCompare)
	if err != nil {
		return fmt.Errorf("compare baseline: %w", err)
	}
	var base benchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("compare baseline %s: %w", h.benchCompare, err)
	}
	byName := make(map[string]benchRecord, len(base.Records))
	for _, r := range base.Records {
		byName[r.Name] = r
	}
	fmt.Fprintf(h.out, "\ncomparison vs %s (advisory, threshold +10%%):\n", h.benchCompare)
	regressions, matched := 0, 0
	for _, r := range fresh.Records {
		b, ok := byName[r.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		matched++
		delta := r.NsPerOp/b.NsPerOp - 1
		if delta > 0.10 {
			regressions++
			fmt.Fprintf(h.out, "WARN: %-45s %+6.1f%% (%.0f → %.0f ns/op)\n", r.Name, 100*delta, b.NsPerOp, r.NsPerOp)
		}
	}
	if regressions == 0 {
		fmt.Fprintf(h.out, "no regressions beyond 10%% across %d matched benchmarks\n", matched)
	} else {
		fmt.Fprintf(h.out, "%d of %d matched benchmarks regressed beyond 10%% (advisory only)\n", regressions, matched)
	}
	return nil
}

// benchcmp prints a per-config speedup table between two committed
// bench files (`make benchcmp OLD=BENCH_PR5.json NEW=BENCH_PR6.json`).
// Only records present in both files are compared, so the table is
// apples-to-apples even when the newer file adds configs or policies.
func (h *harness) benchcmpExp() error {
	if h.cmpOld == "" || h.cmpNew == "" {
		return fmt.Errorf("benchcmp needs -old and -new bench JSON files")
	}
	old, err := readBenchFile(h.cmpOld)
	if err != nil {
		return err
	}
	fresh, err := readBenchFile(h.cmpNew)
	if err != nil {
		return err
	}
	h.header(fmt.Sprintf("Benchcmp — %s vs %s", h.cmpOld, h.cmpNew),
		"per-config speedup of matched records (old ns / new ns; >1 is faster)")

	byName := make(map[string]benchRecord, len(old.Records))
	for _, r := range old.Records {
		byName[r.Name] = r
	}
	type row struct {
		rec     benchRecord
		oldNs   float64
		speedup float64
	}
	perConfig := map[string][]row{}
	var configs []string
	for _, r := range fresh.Records {
		b, ok := byName[r.Name]
		if !ok || b.NsPerOp <= 0 || r.NsPerOp <= 0 {
			continue
		}
		if _, seen := perConfig[r.Config]; !seen {
			configs = append(configs, r.Config)
		}
		perConfig[r.Config] = append(perConfig[r.Config], row{r, b.NsPerOp, b.NsPerOp / r.NsPerOp})
	}
	sort.Strings(configs)
	matched := 0
	for _, cfg := range configs {
		rows := perConfig[cfg]
		fmt.Fprintf(h.out, "\n%s:\n", cfg)
		fmt.Fprintf(h.out, "  %-45s %14s %14s %9s\n", "name", "old ns/op", "new ns/op", "speedup")
		logSum, sliceLogSum, slices := 0.0, 0.0, 0
		for _, rw := range rows {
			fmt.Fprintf(h.out, "  %-45s %14.0f %14.0f %8.2fx\n", rw.rec.Name, rw.oldNs, rw.rec.NsPerOp, rw.speedup)
			logSum += math.Log(rw.speedup)
			if rw.rec.Kind == "slice" {
				sliceLogSum += math.Log(rw.speedup)
				slices++
			}
		}
		matched += len(rows)
		fmt.Fprintf(h.out, "  geomean %.3fx over %d records", math.Exp(logSum/float64(len(rows))), len(rows))
		if slices > 0 {
			fmt.Fprintf(h.out, " (end-to-end slices: %.3fx over %d)", math.Exp(sliceLogSum/float64(slices)), slices)
		}
		fmt.Fprintln(h.out)
	}
	if matched == 0 {
		return fmt.Errorf("no records matched between %s and %s", h.cmpOld, h.cmpNew)
	}
	return nil
}

// readBenchFile loads a bench results JSON document.
func readBenchFile(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}
