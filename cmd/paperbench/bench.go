package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"spstream/internal/core"
	"spstream/internal/csf"
	"spstream/internal/dense"
	"spstream/internal/mttkrp"
	"spstream/internal/parallel"
	"spstream/internal/sptensor"
	"spstream/internal/synth"
)

// The bench experiment is the reproducible benchmark pipeline behind
// `make bench`: it times the three factor-mode MTTKRP kernels (lock,
// coordinate plan, tiled CSF) and full end-to-end slices under each
// kernel policy on fixed synthetic configs, and emits the results as
// machine-readable JSON (BENCH_PR5.json). The committed copy of that
// file is the regression baseline CI compares fresh runs against
// (advisory: >10% slowdowns warn, they do not fail the build — shared
// runners are too noisy for a hard gate).

// benchRecord is one benchmark measurement. Name is the stable identity
// compare runs match on.
type benchRecord struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"`   // "kernel" or "slice"
	Config      string  `json:"config"` // synthetic config name
	Kernel      string  `json:"kernel"` // lock|plan|csf, or the slice policy auto|plan|csf
	Mode        int     `json:"mode"`   // target mode; -1 for slice benches
	Rank        int     `json:"rank"`
	Workers     int     `json:"workers"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// GFLOPS is the effective rate at nnz·K·N flops per MTTKRP (one
	// K-wide multiply chain over the N−1 source modes plus the
	// accumulate, per nonzero). Zero for slice benches.
	GFLOPS float64 `json:"gflops,omitempty"`
}

// benchFile is the JSON document. CSFBestSpeedup is the best
// CSF-over-plan kernel ratio observed anywhere in the grid — the
// headline number the PR's acceptance criterion (≥1.3× on at least one
// config) reads directly.
type benchFile struct {
	GoVersion      string        `json:"go_version"`
	GOMAXPROCS     int           `json:"gomaxprocs"`
	CSFBestSpeedup float64       `json:"csf_best_speedup"`
	CSFBestAt      string        `json:"csf_best_at"`
	Records        []benchRecord `json:"records"`
}

// benchConfig is one synthetic workload of the grid. The three configs
// pin the regimes the kernel selector discriminates: a short leading
// mode (heavy output-row sharing, the plan's worst case), a uniform
// cube (both kernels comfortable), and a duplicate-heavy slice whose
// coalesced fiber tree is much smaller than its nonzero count (CSF's
// best case).
type benchConfig struct {
	name  string
	dists []synth.IndexDist
	nnz   int
}

func benchConfigs() []benchConfig {
	return []benchConfig{
		{"shortmode", []synth.IndexDist{synth.Uniform{N: 32}, synth.Uniform{N: 3000}, synth.Uniform{N: 3000}}, 200000},
		{"cube", []synth.IndexDist{synth.Uniform{N: 800}, synth.Uniform{N: 800}, synth.Uniform{N: 800}}, 200000},
		{"dupheavy", []synth.IndexDist{synth.NewZipf(24, 0.5), synth.NewZipf(1100, 0.9), synth.NewZipf(1700, 0.9)}, 300000},
	}
}

var benchRanks = []int{16, 32}

// benchSlices generates the config's stream (a few slices, fixed seed).
func benchSlices(cfg benchConfig, t int) ([]*sptensor.Tensor, []int, error) {
	sc := synth.Config{Name: cfg.name, Dists: cfg.dists, T: t, NNZPerSlice: cfg.nnz, Seed: 17}
	s, err := synth.Generate(sc)
	if err != nil {
		return nil, nil, err
	}
	return s.Slices, s.Dims, nil
}

// bench runs the kernel + end-to-end grid and writes the JSON.
func (h *harness) bench() error {
	h.header("Bench — MTTKRP kernel and end-to-end slice pipeline (BENCH_PR5.json)",
		"reproducible regression baseline; kernel grid backs the cost-model selector")
	doc := benchFile{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	workers := h.measureWorkers()

	// --- kernel grid ---------------------------------------------------
	fmt.Fprintf(h.out, "\nkernel grid (%d trials each):\n", 1)
	fmt.Fprintf(h.out, "%-10s %5s %5s %8s %-6s %14s %12s %10s %9s\n",
		"config", "mode", "rank", "workers", "kernel", "ns/op", "B/op", "allocs/op", "GFLOP/s")
	for _, cfg := range benchConfigs() {
		slices, dims, err := benchSlices(cfg, 2)
		if err != nil {
			return err
		}
		x := slices[len(slices)-1]
		n := len(dims)
		for _, k := range benchRanks {
			factors := randomFactors(dims, k, 23)
			for _, w := range workers {
				pool := parallel.NewPool(w)
				for mode := 0; mode < n; mode++ {
					out := dense.NewMatrix(dims[mode], k)
					flops := float64(x.NNZ()) * float64(k) * float64(n)
					for _, kernel := range []string{"lock", "plan", "csf"} {
						r := benchKernelOnce(kernel, x, factors, out, mode, w, pool)
						rec := benchRecord{
							Name: fmt.Sprintf("kernel/%s/mode%d/k%d/w%d/%s", cfg.name, mode, k, w, kernel),
							Kind: "kernel", Config: cfg.name, Kernel: kernel,
							Mode: mode, Rank: k, Workers: w,
							NsPerOp:     float64(r.NsPerOp()),
							BytesPerOp:  r.AllocedBytesPerOp(),
							AllocsPerOp: r.AllocsPerOp(),
							GFLOPS:      flops / float64(r.NsPerOp()),
						}
						doc.Records = append(doc.Records, rec)
						fmt.Fprintf(h.out, "%-10s %5d %5d %8d %-6s %14.0f %12d %10d %9.3f\n",
							cfg.name, mode, k, w, kernel, rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp, rec.GFLOPS)
					}
					// Track the best CSF-over-plan ratio for the summary.
					nr := len(doc.Records)
					plan, csfRec := doc.Records[nr-2], doc.Records[nr-1]
					if ratio := plan.NsPerOp / csfRec.NsPerOp; ratio > doc.CSFBestSpeedup {
						doc.CSFBestSpeedup = ratio
						doc.CSFBestAt = csfRec.Name
					}
				}
				pool.Close()
			}
		}
	}
	fmt.Fprintf(h.out, "\nbest CSF speedup over plan: %.2fx at %s\n", doc.CSFBestSpeedup, doc.CSFBestAt)

	// --- end-to-end slices ---------------------------------------------
	// Optimized CP-stream over the same configs under each forced policy
	// plus Auto; the selector check is that Auto never loses to the best
	// forced kernel by more than measurement slack.
	fmt.Fprintf(h.out, "\nend-to-end slices (optimized CP-stream, %d inner iters):\n", 4)
	fmt.Fprintf(h.out, "%-10s %5s %8s %-6s %14s\n", "config", "rank", "workers", "policy", "ns/slice")
	policies := []struct {
		name string
		k    core.MTTKRPKernel
	}{{"auto", core.KernelAuto}, {"plan", core.KernelPlan}, {"csf", core.KernelCSF}}
	w := workers[len(workers)-1]
	for _, cfg := range benchConfigs() {
		slices, dims, err := benchSlices(cfg, 3)
		if err != nil {
			return err
		}
		for _, k := range benchRanks {
			perPolicy := make(map[string]float64, len(policies))
			for _, pol := range policies {
				opt := core.Options{Rank: k, Algorithm: core.Optimized, Workers: w,
					Seed: 9, MaxIters: 4, Tol: 0, MTTKRPKernel: pol.k}
				ns, err := benchSliceRun(dims, slices, opt)
				if err != nil {
					return err
				}
				perPolicy[pol.name] = ns
				rec := benchRecord{
					Name: fmt.Sprintf("slice/%s/k%d/w%d/%s", cfg.name, k, w, pol.name),
					Kind: "slice", Config: cfg.name, Kernel: pol.name,
					Mode: -1, Rank: k, Workers: w, NsPerOp: ns,
				}
				doc.Records = append(doc.Records, rec)
				fmt.Fprintf(h.out, "%-10s %5d %8d %-6s %14.0f\n", cfg.name, k, w, pol.name, ns)
			}
			best := perPolicy["plan"]
			if perPolicy["csf"] < best {
				best = perPolicy["csf"]
			}
			if perPolicy["auto"] > best*1.10 {
				fmt.Fprintf(h.out, "WARN: %s k=%d: auto policy (%.0f ns) regresses %.0f%% vs best forced kernel (%.0f ns)\n",
					cfg.name, k, perPolicy["auto"], 100*(perPolicy["auto"]/best-1), best)
			}
		}
	}

	// --- emit + compare ------------------------------------------------
	if h.benchJSON != "" {
		data, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(h.benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(h.out, "\nwrote %s (%d records)\n", h.benchJSON, len(doc.Records))
	}
	if h.benchCompare != "" {
		if err := compareBench(h, &doc); err != nil {
			return err
		}
	}
	return nil
}

// benchKernelOnce times one (kernel, mode) cell. Per-slice compile work
// (plan build, CSF tree build) happens outside the timed loop — the
// kernel grid measures steady-state inner-iteration cost; build costs
// show up in the end-to-end slice benches.
func benchKernelOnce(kernel string, x *sptensor.Tensor, factors []*dense.Matrix, out *dense.Matrix, mode, w int, pool *parallel.Pool) testing.BenchmarkResult {
	switch kernel {
	case "lock":
		c := mttkrp.NewComputer(w)
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Lock(out, x, factors, mode)
			}
		})
	case "plan":
		c := mttkrp.NewComputer(w)
		plan := c.NewPlan(x)
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.PlanMTTKRP(out, plan, factors, mode)
			}
		})
	default: // csf
		eng := csf.NewEngineWithPool(w, pool)
		eng.Begin(x)
		eng.Build(mode)
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.MTTKRP(out, factors, mode)
			}
		})
	}
}

// benchSliceRun processes the stream and returns ns per slice, taking
// the fastest of measureTrials runs with a fresh decomposer each trial
// — so per-slice Pre work (kernel selection, layout builds) is inside
// the measurement, while scheduler noise between trials is not.
func benchSliceRun(dims []int, slices []*sptensor.Tensor, opt core.Options) (float64, error) {
	var err error
	d := minDuration(measureTrials, func() {
		dec, err2 := core.NewDecomposer(dims, opt)
		if err2 != nil {
			err = err2
			return
		}
		for _, x := range slices {
			if _, err2 := dec.ProcessSlice(x); err2 != nil {
				err = err2
				return
			}
		}
	})
	if err != nil {
		return 0, err
	}
	return float64(d.Nanoseconds()) / float64(len(slices)), nil
}

// compareBench diffs the fresh run against a committed baseline,
// benchstat-style but advisory: regressions beyond 10% print WARN lines
// and never fail the run (exit stays 0) — CI runners are too noisy for
// a hard benchmark gate, but the warnings make regressions visible in
// the job log.
func compareBench(h *harness, fresh *benchFile) error {
	data, err := os.ReadFile(h.benchCompare)
	if err != nil {
		return fmt.Errorf("compare baseline: %w", err)
	}
	var base benchFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("compare baseline %s: %w", h.benchCompare, err)
	}
	byName := make(map[string]benchRecord, len(base.Records))
	for _, r := range base.Records {
		byName[r.Name] = r
	}
	fmt.Fprintf(h.out, "\ncomparison vs %s (advisory, threshold +10%%):\n", h.benchCompare)
	regressions, matched := 0, 0
	for _, r := range fresh.Records {
		b, ok := byName[r.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		matched++
		delta := r.NsPerOp/b.NsPerOp - 1
		if delta > 0.10 {
			regressions++
			fmt.Fprintf(h.out, "WARN: %-45s %+6.1f%% (%.0f → %.0f ns/op)\n", r.Name, 100*delta, b.NsPerOp, r.NsPerOp)
		}
	}
	if regressions == 0 {
		fmt.Fprintf(h.out, "no regressions beyond 10%% across %d matched benchmarks\n", matched)
	} else {
		fmt.Fprintf(h.out, "%d of %d matched benchmarks regressed beyond 10%% (advisory only)\n", regressions, matched)
	}
	return nil
}
