package ooc

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"spstream/internal/sptensor"
)

// blockFile abstracts how section bytes reach the decoder: the mmap
// backend (file_mmap.go) returns zero-copy subslices of the mapping,
// the pread fallback (file_pread.go, or the spblk_pread build tag)
// reads into the caller's scratch. Either way the decoder sees one
// contiguous []byte per section.
type blockFile interface {
	// section returns n bytes at off, using scratch as the destination
	// when a copy is unavoidable. The result is valid until the next
	// section call with the same scratch.
	section(scratch []byte, off, n int64) ([]byte, error)
	size() int64
	close() error
}

// BlockReader is the random-access reader for SPBLK001 files. It
// implements sptensor.BlockSource: Block(b) decodes one block into a
// reusable buffer, so iterating every block over and over (one pass
// per mode per iteration in the streamed kernels) allocates nothing
// after the first full pass. CRCs are verified on a block's first
// access and skipped on re-reads — repeated kernel passes pay decode
// cost only.
type BlockReader struct {
	f        blockFile
	lay      Layout
	totalNNZ int64
	idx      []indexEntry

	scratch  []byte
	verified []bool
	blk      sptensor.Tensor
}

// Open maps (or opens) an SPBLK001 file and parses + validates its
// footer and block index. Every count and offset is bounded by the
// file size before any dependent allocation, so corrupt metadata
// produces an error, never an OOM.
func Open(path string) (*BlockReader, error) {
	f, err := openBlockFile(path)
	if err != nil {
		return nil, err
	}
	r, err := newReader(f)
	if err != nil {
		f.close()
		return nil, err
	}
	return r, nil
}

func newReader(f blockFile) (*BlockReader, error) {
	size := f.size()
	minSize := int64(len(Magic)) + sectionHeaderLen + trailerLen
	if size < minSize {
		return nil, fmt.Errorf("ooc: file of %d bytes is shorter than the smallest valid block file", size)
	}
	head, err := f.section(nil, 0, int64(len(Magic)))
	if err != nil {
		return nil, err
	}
	if string(head) != Magic {
		return nil, fmt.Errorf("ooc: bad magic %q", head)
	}
	trailer, err := f.section(nil, size-trailerLen, trailerLen)
	if err != nil {
		return nil, err
	}
	if string(trailer[8:16]) != EndMagic {
		return nil, fmt.Errorf("ooc: bad end magic %q (truncated file?)", trailer[8:16])
	}
	footerOff := binary.LittleEndian.Uint64(trailer[0:8])
	if footerOff > math.MaxInt64 || int64(footerOff) < int64(len(Magic)) ||
		int64(footerOff)+sectionHeaderLen > size-trailerLen {
		return nil, fmt.Errorf("ooc: footer offset %d outside file of %d bytes", footerOff, size)
	}
	fOff := int64(footerOff)
	hdr, err := f.section(nil, fOff, sectionHeaderLen)
	if err != nil {
		return nil, err
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[0:4])
	fLen := binary.LittleEndian.Uint64(hdr[4:12])
	if fLen > uint64(size-trailerLen-fOff-sectionHeaderLen) {
		return nil, fmt.Errorf("ooc: footer length %d exceeds file", fLen)
	}
	payload, err := f.section(nil, fOff+sectionHeaderLen, int64(fLen))
	if err != nil {
		return nil, err
	}
	if got := crc32.Checksum(payload, crcTable); got != wantCRC {
		return nil, fmt.Errorf("ooc: footer checksum %08x, want %08x", got, wantCRC)
	}
	lay, totalNNZ, idx, err := decodeFooter(payload, fOff)
	if err != nil {
		return nil, err
	}
	r := &BlockReader{
		f:        f,
		lay:      lay,
		totalNNZ: totalNNZ,
		idx:      idx,
		verified: make([]bool, len(idx)),
	}
	r.blk.Dims = lay.Dims
	r.blk.Inds = make([][]int32, len(lay.Dims))
	return r, nil
}

// Close releases the mapping or file handle.
func (r *BlockReader) Close() error { return r.f.close() }

// Dims returns the mode lengths of the whole tensor.
func (r *BlockReader) Dims() []int { return r.lay.Dims }

// NNZ returns the total nonzero count.
func (r *BlockReader) NNZ() int { return int(r.totalNNZ) }

// Blocks returns the number of stored (non-empty) blocks.
func (r *BlockReader) Blocks() int { return len(r.idx) }

// Layout returns the block grid of the file.
func (r *BlockReader) Layout() Layout { return r.lay }

// Extent returns the half-open coordinate range of block b in mode m —
// the hook the blocked CSF build uses to group blocks into disjoint
// root-coordinate slabs.
func (r *BlockReader) Extent(b, m int) (lo, hi int32) {
	return r.lay.Extent(m, r.idx[b].grid[m])
}

// BlockNNZ returns block b's nonzero count without decoding it.
func (r *BlockReader) BlockNNZ(b int) int { return int(r.idx[b].nnz) }

// BlockGrid returns block b's grid coordinate (aliased, do not mutate).
func (r *BlockReader) BlockGrid(b int) []int32 { return r.idx[b].grid }

// BlockOffset returns the file offset of block b's section.
func (r *BlockReader) BlockOffset(b int) int64 { return r.idx[b].offset }

// MaxBlockNNZ returns the largest per-block nonzero count — what
// consumers size their reusable per-block scratch to.
func (r *BlockReader) MaxBlockNNZ() int {
	maxNNZ := int64(0)
	for i := range r.idx {
		if r.idx[i].nnz > maxNNZ {
			maxNNZ = r.idx[i].nnz
		}
	}
	return int(maxNNZ)
}

// Block decodes block b into the reader's reusable buffer. The result
// is valid until the next Block call. The block's coordinates are
// validated against its grid extent, so a value that decodes out of
// range (bit rot past the CRC, or a forged index) is an error rather
// than a later out-of-bounds kernel access.
func (r *BlockReader) Block(b int) (*sptensor.Tensor, error) {
	if b < 0 || b >= len(r.idx) {
		return nil, fmt.Errorf("ooc: block %d out of range [0,%d)", b, len(r.idx))
	}
	e := &r.idx[b]
	nModes := len(r.lay.Dims)
	wantLen := blockPayloadLen(nModes, e.nnz)
	hdr, err := r.f.section(r.smallScratch(), e.offset, sectionHeaderLen)
	if err != nil {
		return nil, err
	}
	wantCRC := binary.LittleEndian.Uint32(hdr[0:4])
	gotLen := binary.LittleEndian.Uint64(hdr[4:12])
	if gotLen != uint64(wantLen) {
		return nil, fmt.Errorf("ooc: block %d section length %d, index implies %d", b, gotLen, wantLen)
	}
	if cap(r.scratch) < int(wantLen) {
		r.scratch = make([]byte, wantLen)
	}
	payload, err := r.f.section(r.scratch[:wantLen], e.offset+sectionHeaderLen, wantLen)
	if err != nil {
		return nil, err
	}
	if !r.verified[b] {
		if got := crc32.Checksum(payload, crcTable); got != wantCRC {
			return nil, fmt.Errorf("ooc: block %d checksum %08x, want %08x", b, got, wantCRC)
		}
		r.verified[b] = true
	}
	if got := binary.LittleEndian.Uint64(payload[0:8]); got != uint64(e.nnz) {
		return nil, fmt.Errorf("ooc: block %d payload declares %d nonzeros, index %d", b, got, e.nnz)
	}
	nnz := int(e.nnz)
	off := 8
	for m := 0; m < nModes; m++ {
		if cap(r.blk.Inds[m]) < nnz {
			r.blk.Inds[m] = make([]int32, nnz)
		}
		col := r.blk.Inds[m][:nnz]
		lo, hi := r.lay.Extent(m, e.grid[m])
		for i := 0; i < nnz; i++ {
			c := int32(binary.LittleEndian.Uint32(payload[off:]))
			off += 4
			if c < lo || c >= hi {
				return nil, fmt.Errorf("ooc: block %d mode-%d coordinate %d outside extent [%d,%d)", b, m, c, lo, hi)
			}
			col[i] = c
		}
		r.blk.Inds[m] = col
	}
	if cap(r.blk.Vals) < nnz {
		r.blk.Vals = make([]float64, nnz)
	}
	vals := r.blk.Vals[:nnz]
	for i := 0; i < nnz; i++ {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[off:]))
		off += 8
	}
	r.blk.Vals = vals
	return &r.blk, nil
}

// smallScratch returns a header-sized prefix of the scratch buffer.
func (r *BlockReader) smallScratch() []byte {
	if cap(r.scratch) < sectionHeaderLen {
		r.scratch = make([]byte, sectionHeaderLen)
	}
	return r.scratch[:sectionHeaderLen]
}
