// Network-traffic anomaly detection with streaming tensor
// decomposition: a (source × destination × port) traffic tensor arrives
// in per-minute slices. Normal traffic follows a stable low-rank
// communication pattern, so the per-slice fit of the streaming model is
// stable; a port scan (one source probing every destination across many
// ports) injects a large structure the learned factors do not have, so
// the slice's fit and the factor-drift measure δ both deviate sharply
// from their running profile. The detector flags slices whose fit
// deviates from the running median by more than a threshold in either
// direction — a sudden *rise* is just as anomalous as a drop (the scan
// is a huge rank-1 block that dominates the slice's mass).
//
// Run with: go run ./examples/anomaly
package main

import (
	"fmt"
	"log"
	"sort"

	"spstream"
	"spstream/internal/synth"
)

const (
	nSrc    = 60
	nDst    = 60
	nPort   = 32
	nSlices = 30
	rank    = 8
)

// scanSlices are the minutes during which the attacker scans.
var scanSlices = map[int]bool{17: true, 18: true}

func main() {
	stream := generateTraffic()

	dec, err := spstream.New([]int{nSrc, nDst, nPort}, spstream.Options{
		Rank:      rank,
		Algorithm: spstream.SpCPStream,
		TrackFit:  true,
		Mu:        0.95,
		Seed:      3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fits := make([]float64, 0, nSlices)
	fmt.Println("slice |   fit   | verdict")
	fmt.Println("------+---------+--------")
	detected := 0
	for t, slice := range stream.Slices {
		res, err := dec.ProcessSlice(slice)
		if err != nil {
			log.Fatal(err)
		}
		verdict := ""
		flagged := false
		// Compare against the running median of recent fits (warm-up of
		// 5 slices before judging). Either direction of deviation is
		// anomalous.
		if t >= 5 {
			med := median(fits)
			dev := res.Fit - med
			if dev > 0.15 || dev < -0.15 {
				verdict = "ANOMALY"
				flagged = true
				detected++
			}
		}
		marker := ""
		if scanSlices[t] {
			marker = "   <-- injected port scan"
		}
		fmt.Printf("%5d | %7.4f | %-8s%s\n", t, res.Fit, verdict, marker)
		// Keep the running window clean: do not let anomalous slices
		// poison the baseline profile.
		if !flagged {
			fits = append(fits, res.Fit)
			if len(fits) > 10 {
				fits = fits[1:]
			}
		}
	}
	fmt.Printf("\nflagged %d slices (expected ≥ %d, the injected scan minutes)\n", detected, len(scanSlices))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// generateTraffic builds the traffic stream: a stable low-rank pattern
// (a few service clusters) plus noise, with a port scan injected on the
// scan slices.
func generateTraffic() *spstream.Stream {
	r := synth.NewRNG(99)
	stream := &spstream.Stream{Dims: []int{nSrc, nDst, nPort}}
	// Three stable "services": groups of sources talk to groups of
	// destinations on a small set of ports.
	type service struct {
		srcLo, dstLo, port int
	}
	services := []service{{0, 0, 4}, {20, 20, 10}, {40, 40, 22}}
	for t := 0; t < nSlices; t++ {
		slice := spstream.NewTensor(nSrc, nDst, nPort)
		for e := 0; e < 4000; e++ {
			sv := services[r.Intn(len(services))]
			src := int32(sv.srcLo + r.Intn(20))
			dst := int32(sv.dstLo + r.Intn(20))
			port := int32(sv.port)
			if r.Float64() < 0.1 { // background noise
				src, dst, port = int32(r.Intn(nSrc)), int32(r.Intn(nDst)), int32(r.Intn(nPort))
			}
			slice.Append([]int32{src, dst, port}, 1+0.2*r.NormFloat64())
		}
		if scanSlices[t] {
			// Port scan: source 7 probes every destination on many ports
			// with high intensity, swamping the learned structure.
			for dst := 0; dst < nDst; dst++ {
				for port := 0; port < nPort; port += 2 {
					slice.Append([]int32{7, int32(dst), int32(port)}, 8)
				}
			}
		}
		slice.Coalesce()
		stream.Slices = append(stream.Slices, slice)
	}
	return stream
}
