package dense

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddSubScaleAXPY(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	sum := NewMatrix(2, 2)
	Add(sum, a, b)
	if sum.At(1, 1) != 44 {
		t.Fatal("Add wrong")
	}
	diff := NewMatrix(2, 2)
	Sub(diff, b, a)
	if diff.At(0, 0) != 9 {
		t.Fatal("Sub wrong")
	}
	Scale(diff, 2, diff)
	if diff.At(0, 0) != 18 {
		t.Fatal("Scale in place wrong")
	}
	AXPY(sum, -1, b)
	if !sum.Equal(a, 0) {
		t.Fatal("AXPY wrong")
	}
}

func TestHadamardCommutative(t *testing.T) {
	f := func(seed int64) bool {
		a := randomMatrix(seed, 4, 4)
		b := randomMatrix(seed+1, 4, 4)
		ab := NewMatrix(4, 4)
		ba := NewMatrix(4, 4)
		Hadamard(ab, a, b)
		Hadamard(ba, b, a)
		return ab.Equal(ba, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddScaledIdentity(t *testing.T) {
	a := NewMatrix(3, 3)
	AddScaledIdentity(a, a, 2.5)
	if a.At(0, 0) != 2.5 || a.At(0, 1) != 0 {
		t.Fatal("AddScaledIdentity wrong")
	}
}

func TestTraceAndNorms(t *testing.T) {
	a := FromRows([][]float64{{3, 0}, {0, 4}})
	if Trace(a) != 7 {
		t.Fatal("Trace wrong")
	}
	if FrobNorm2(a) != 25 {
		t.Fatal("FrobNorm2 wrong")
	}
	if FrobNorm(a) != 5 {
		t.Fatal("FrobNorm wrong")
	}
	b := NewMatrix(2, 2)
	if FrobNorm2Diff(a, b) != 25 {
		t.Fatal("FrobNorm2Diff wrong")
	}
}

func TestParallelFrobNorm2DiffMatchesSerial(t *testing.T) {
	a := randomMatrix(1, 333, 5)
	b := randomMatrix(2, 333, 5)
	serial := FrobNorm2Diff(a, b)
	par := ParallelFrobNorm2Diff(a, b, 4)
	if math.Abs(serial-par) > 1e-9*math.Abs(serial) {
		t.Fatalf("parallel %v vs serial %v", par, serial)
	}
}

func TestColNorms2Accumulates(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	acc := []float64{100, 200}
	ColNorms2(acc, a)
	if acc[0] != 110 || acc[1] != 220 {
		t.Fatalf("ColNorms2 = %v", acc)
	}
}

func TestScaleColumnsRows(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	ScaleColumns(a, a, []float64{10, 100})
	if a.At(1, 0) != 30 || a.At(0, 1) != 200 {
		t.Fatalf("ScaleColumns wrong: %v", a)
	}
	ScaleRows(a, a, []float64{1, 0.5})
	if a.At(1, 0) != 15 || a.At(0, 0) != 10 {
		t.Fatalf("ScaleRows wrong: %v", a)
	}
}

func TestGatherScatterRows(t *testing.T) {
	src := FromRows([][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	g := GatherRows(src, []int{3, 1})
	if g.At(0, 0) != 3 || g.At(1, 1) != 1 {
		t.Fatalf("GatherRows wrong: %v", g)
	}
	dst := NewMatrix(4, 2)
	ScatterRows(dst, g, []int{3, 1})
	if dst.At(3, 0) != 3 || dst.At(1, 0) != 1 || dst.At(0, 0) != 0 {
		t.Fatalf("ScatterRows wrong: %v", dst)
	}
	g2 := NewMatrix(2, 2)
	GatherRowsInto(g2, src, []int{0, 2})
	if g2.At(1, 1) != 2 {
		t.Fatal("GatherRowsInto wrong")
	}
}

// Property: gather then scatter with the same index list restores the
// gathered rows exactly.
func TestGatherScatterRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		src := randomMatrix(seed, 8, 3)
		idx := []int{1, 4, 6}
		g := GatherRows(src, idx)
		dst := src.Clone()
		dst.Zero()
		ScatterRows(dst, g, idx)
		for _, i := range idx {
			for j := 0; j < 3; j++ {
				if dst.At(i, j) != src.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
