package spstream_test

import (
	"math"
	"testing"

	"spstream"
)

func smallDecomposer(t *testing.T) (*spstream.Decomposer, *spstream.Stream) {
	t.Helper()
	stream, err := spstream.GeneratePreset("uber", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := spstream.New(stream.Dims, spstream.Options{Rank: 4, Seed: 3, MaxIters: 5})
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < 2; ti++ {
		if _, err := dec.ProcessSlice(stream.Slices[ti]); err != nil {
			t.Fatal(err)
		}
	}
	return dec, stream
}

func TestTopRows(t *testing.T) {
	dec, stream := smallDecomposer(t)
	top := spstream.TopRows(dec, 1, 0, 5)
	if len(top) != 5 {
		t.Fatalf("got %d rows", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Weight > top[i-1].Weight {
			t.Fatal("not sorted descending")
		}
	}
	// Weights come from the factor matrix itself.
	f := dec.Factor(1)
	if top[0].Weight != math.Abs(f.At(top[0].Row, 0)) {
		t.Fatal("weight mismatch")
	}
	// Clamping and bad component handling.
	if got := spstream.TopRows(dec, 0, 0, 10000); len(got) != stream.Dims[0] {
		t.Fatalf("clamp failed: %d", len(got))
	}
	if spstream.TopRows(dec, 0, 99, 3) != nil {
		t.Fatal("bad component should return nil")
	}
	if got := spstream.TopRows(dec, 0, 0, -1); len(got) != 0 {
		t.Fatal("negative n should return empty")
	}
}

func TestComponentStrengthsAndRanking(t *testing.T) {
	dec, _ := smallDecomposer(t)
	strengths := spstream.ComponentStrengths(dec)
	if len(strengths) != 4 {
		t.Fatalf("got %d strengths", len(strengths))
	}
	for _, s := range strengths {
		if s < 0 || math.IsNaN(s) {
			t.Fatalf("bad strength %v", s)
		}
	}
	order := spstream.RankComponents(dec)
	if len(order) != 4 {
		t.Fatal("ranking length wrong")
	}
	for i := 1; i < len(order); i++ {
		if strengths[order[i]] > strengths[order[i-1]] {
			t.Fatal("ranking not descending")
		}
	}
}

func TestReconstructAt(t *testing.T) {
	dec, _ := smallDecomposer(t)
	// Manual evaluation of the model at one coordinate.
	coord := []int32{1, 2, 3}
	s := dec.LastS()
	want := 0.0
	for k := 0; k < dec.Rank(); k++ {
		p := s[k]
		for m := range dec.Dims() {
			p *= dec.Factor(m).At(int(coord[m]), k)
		}
		want += p
	}
	if got := spstream.ReconstructAt(dec, coord); math.Abs(got-want) > 1e-12 {
		t.Fatalf("ReconstructAt = %v want %v", got, want)
	}
}

func TestWindowedIngestionThroughFacade(t *testing.T) {
	dims := []int{6, 6}
	ch := make(chan *spstream.Tensor, 4)
	go func() {
		w := spstream.NewWindowAccumulator(dims, 50)
		for i := 0; i < 200; i++ {
			if out := w.Add(spstream.Event{Coord: []int32{int32(i % 6), int32((i / 2) % 6)}, Value: 1}); out != nil {
				ch <- out
			}
		}
		if out := w.Flush(); out != nil {
			ch <- out
		}
		close(ch)
	}()
	dec, err := spstream.New(dims, spstream.Options{Rank: 2, MaxIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	results, err := dec.ProcessStream(spstream.NewChannelSource(dims, ch), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("processed %d windows", len(results))
	}
}
