package cluster

import (
	"math"
	"math/rand"
	"testing"
)

// bruteNorm2 evaluates ‖X̂‖² restricted to mode-0 rows [lo,hi) the slow
// way: reconstruct every entry and sum the squares.
func bruteNorm2(factors [][][]float64, s []float64, lo, hi int) float64 {
	dims := make([]int, len(factors))
	for m, f := range factors {
		dims[m] = len(f)
	}
	coord := make([]int, len(dims))
	var walk func(m int) float64
	walk = func(m int) float64 {
		if m == len(dims) {
			v := 0.0
			for k := range s {
				p := s[k]
				for mm, c := range coord {
					p *= factors[mm][c][k]
				}
				v += p
			}
			return v * v
		}
		rlo, rhi := 0, dims[m]
		if m == 0 {
			rlo, rhi = lo, hi
		}
		sum := 0.0
		for c := rlo; c < rhi; c++ {
			coord[m] = c
			sum += walk(m + 1)
		}
		return sum
	}
	return walk(0)
}

// TestBlockNorm2MatchesBruteForce: the Gram/Hadamard contraction equals
// the entrywise sum of squares, for 2- and 3-mode models, full blocks,
// partial blocks, and empty blocks.
func TestBlockNorm2MatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randFactor := func(rows, k int) [][]float64 {
		f := make([][]float64, rows)
		for i := range f {
			f[i] = make([]float64, k)
			for j := range f[i] {
				f[i][j] = rng.NormFloat64()
			}
		}
		return f
	}
	cases := []struct {
		dims   []int
		k      int
		lo, hi int
	}{
		{[]int{6, 4}, 3, 0, 6},  // full block, 2 modes
		{[]int{6, 4}, 3, 2, 5},  // interior block
		{[]int{6, 4}, 3, 4, 4},  // empty block
		{[]int{5, 3, 4}, 2, 1, 4}, // 3 modes
		{[]int{5, 3, 4}, 4, 0, 2},
		{[]int{1, 2, 2}, 1, 0, 1}, // minimal
	}
	for _, c := range cases {
		factors := make([][][]float64, len(c.dims))
		for m, d := range c.dims {
			factors[m] = randFactor(d, c.k)
		}
		s := make([]float64, c.k)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		got := BlockNorm2(factors, s, c.lo, c.hi)
		want := bruteNorm2(factors, s, c.lo, c.hi)
		if diff := math.Abs(got - want); diff > 1e-9*(1+math.Abs(want)) {
			t.Errorf("dims=%v k=%d block=[%d,%d): BlockNorm2=%g brute=%g (diff %g)",
				c.dims, c.k, c.lo, c.hi, got, want, diff)
		}
	}
}

// TestBlockNorm2Additivity: with disjoint blocks tiling mode 0, the
// per-block norms sum to the full norm — the identity that lets the
// gateway report a global ‖X̂‖² as a plain sum over shards.
func TestBlockNorm2Additivity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dims := []int{10, 4, 3}
	k := 3
	factors := make([][][]float64, len(dims))
	for m, d := range dims {
		factors[m] = make([][]float64, d)
		for i := range factors[m] {
			factors[m][i] = make([]float64, k)
			for j := range factors[m][i] {
				factors[m][i][j] = rng.NormFloat64()
			}
		}
	}
	s := []float64{0.7, -1.2, 0.3}
	r, _ := NewRouter(dims, 3)
	sum := 0.0
	for sh := 0; sh < r.Shards(); sh++ {
		lo, hi := r.Block(sh)
		sum += BlockNorm2(factors, s, lo, hi)
	}
	full := BlockNorm2(factors, s, 0, dims[0])
	if diff := math.Abs(sum - full); diff > 1e-9*(1+math.Abs(full)) {
		t.Errorf("block sum %g != full norm %g (diff %g)", sum, full, diff)
	}
}

// TestMergeMode0: rows land in the right global slots, unreachable
// shards yield missing ranges (not silent zeros), and empty blocks are
// never reported missing.
func TestMergeMode0(t *testing.T) {
	r, _ := NewRouter([]int{7, 4}, 3) // blocks [0,2) [2,4) [4,7)
	rank := 2
	mk := func(tag float64) [][]float64 {
		f := make([][]float64, 7)
		for i := range f {
			f[i] = []float64{tag, float64(i)}
		}
		return f
	}
	perShard := [][][]float64{mk(1), nil, mk(3)}
	rows, missing := MergeMode0(r, perShard, rank)
	if len(rows) != 7 {
		t.Fatalf("merged height %d, want 7", len(rows))
	}
	for i := 0; i < 2; i++ {
		if rows[i][0] != 1 || rows[i][1] != float64(i) {
			t.Errorf("row %d = %v, want shard 0's row", i, rows[i])
		}
	}
	for i := 2; i < 4; i++ {
		if rows[i][0] != 0 || rows[i][1] != 0 {
			t.Errorf("row %d = %v, want zeros for missing shard", i, rows[i])
		}
	}
	for i := 4; i < 7; i++ {
		if rows[i][0] != 3 || rows[i][1] != float64(i) {
			t.Errorf("row %d = %v, want shard 2's row", i, rows[i])
		}
	}
	if len(missing) != 1 || missing[0] != (RowRange{Shard: 1, Lo: 2, Hi: 4}) {
		t.Fatalf("missing = %v, want [{1 2 4}]", missing)
	}

	// All shards reachable: no missing ranges.
	if _, miss := MergeMode0(r, [][][]float64{mk(1), mk(2), mk(3)}, rank); len(miss) != 0 {
		t.Fatalf("fully covered merge reported missing %v", miss)
	}

	// dims[0] < shards: empty blocks are not "missing" even when nil.
	r2, _ := NewRouter([]int{2, 4}, 3) // blocks [0,0) [0,1) [1,2) or similar tiling
	_, miss := MergeMode0(r2, [][][]float64{nil, nil, nil}, rank)
	want := 0
	for s := 0; s < 3; s++ {
		if lo, hi := r2.Block(s); lo < hi {
			want++
		}
	}
	if len(miss) != want {
		t.Fatalf("missing = %v, want %d non-empty blocks", miss, want)
	}
}
