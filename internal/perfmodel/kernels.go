package perfmodel

import "spstream/internal/roofline"

// ADMMKind selects the ADMM implementation being modeled.
type ADMMKind int

const (
	// ADMMBaseline is Algorithm 2: one fine-grained parallel pass per
	// operation.
	ADMMBaseline ADMMKind = iota
	// ADMMBlockedFused is Algorithm 3.
	ADMMBlockedFused
)

// ADMMIterTime predicts the time of one ADMM iteration on an I×K
// iterate with p threads.
//
// Baseline: five separate passes; traffic 22·I·K + K² words; the
// one-thread-per-element parallelization adds ElemNs·(1/p + α) per
// element — the α component models coherence/false-sharing work that
// does not parallelize, which is what caps baseline scaling (Fig. 2
// flattens past 14 threads for both, but baseline flattens far higher).
//
// Blocked & Fused: a single fused pass; traffic 15·I·K + K² words; row
// blocks keep the five operands cache-resident within the fused chain.
func (mo Model) ADMMIterTime(kind ADMMKind, i, k, p int) float64 {
	p = mo.clampThreads(p)
	ii, kk := int64(i), int64(k)
	footprint := 5 * ii * kk * 8 // A, Ã, A₀, U, Ψ
	switch kind {
	case ADMMBaseline:
		tot := roofline.ADMMBaselineTotal(ii, kk)
		t := mo.memTime(float64(tot.Flops), float64(tot.Words()*8), footprint, p)
		elems := float64(ii * kk)
		sched := elems * mo.P.ElemNs * (1/float64(p) + mo.P.ElemAlpha) * 1e-9
		return t + sched + 5*mo.barrier(p)
	default:
		tot := roofline.ADMMFusedTotal(ii, kk)
		t := mo.memTime(float64(tot.Flops), float64(tot.Words()*8), footprint, p)
		return t + float64(ii*kk)*mo.P.GramNsPerElem*1e-9/float64(p) + mo.barrier(p)
	}
}

// MTTKRPKind selects the MTTKRP implementation being modeled.
type MTTKRPKind int

const (
	// MTTKRPLock is the baseline mutex-pool kernel.
	MTTKRPLock MTTKRPKind = iota
	// MTTKRPHybrid is the paper's Hybrid Lock kernel.
	MTTKRPHybrid
	// MTTKRPRowSparse is spCP-stream's spMTTKRP over gathered nz rows.
	MTTKRPRowSparse
	// MTTKRPPlan is the per-slice compiled segmented-reduction kernel
	// (mttkrp.Plan). Contention-free; modeled by Selector.PlanModeTime.
	MTTKRPPlan
	// MTTKRPCSF is the tiled CSF fiber-tree kernel (csf.Engine).
	// Modeled by Selector.CSFModeTime.
	MTTKRPCSF
)

// shortModeThreshold mirrors the kernel's switch point.
const shortModeThreshold = 1024

// lockPoolSize mirrors the striped pool size.
const lockPoolSize = 1024

// contendCost is the cost of a contended lock handoff: one cache-line
// transfer plus arbitration that grows with the number of cores
// hammering the line (cross-socket transfers past 14 cores).
func (mo Model) contendCost(p int) float64 {
	if p <= 1 {
		return 0
	}
	return mo.P.ContendNs * (1 + float64(p)/8)
}

// rowWork returns the lock-free per-nonzero cost (ns): the K-wide
// product chain over the source modes plus the fixed per-nonzero
// overhead shared by all kernel variants.
func (mo Model) rowWork(k, nModes int) float64 {
	return float64(k)*float64(nModes)*mo.P.RowProductNsPerK + mo.P.NnzOverheadNs
}

// updateWork returns the in-critical-section accumulate cost (ns).
func (mo Model) updateWork(k int) float64 { return float64(k) * 0.2 }

// lockedModeTime models the mutex-pool path. Three bounds compete:
// the parallel work, the serial drain of the hottest lock (whose
// handoff cost grows with contenders — this is what makes the baseline
// *degrade* with threads on skewed modes, Fig. 4), and memory bandwidth.
func (mo Model) lockedModeTime(rows int, topRowFrac float64, nnz float64, k, nModes, p int, footprint int64) float64 {
	effRows := rows
	if effRows > lockPoolSize {
		effRows = lockPoolSize
	}
	if effRows < 1 {
		effRows = 1
	}
	hotFrac := topRowFrac
	if floor := 1 / float64(effRows); hotFrac < floor {
		hotFrac = floor
	}
	collide := func(f float64) float64 {
		c := float64(p-1) * f
		if c > 1 {
			c = 1
		}
		return c
	}
	cc := mo.contendCost(p)
	if footprint <= mo.P.TinyFootprintBytes {
		cc *= mo.P.CacheContendFactor
	}
	hotLockCost := mo.P.LockNs + collide(hotFrac)*cc
	coldLockCost := mo.P.LockNs + collide(1/float64(effRows))*cc
	work := nnz * mo.rowWork(k, nModes)
	lockTotal := nnz * (hotFrac*hotLockCost + (1-hotFrac)*coldLockCost)
	parallel := (work + lockTotal) / float64(p) * 1e-9
	hotSerial := nnz * hotFrac * (mo.updateWork(k) + hotLockCost) * 1e-9
	t := parallel
	if hotSerial > t {
		t = hotSerial
	}
	// Bandwidth bound on streaming the nonzeros (value + indices) and
	// factor-row reads.
	mem := mo.memTime(0, nnz*float64(8+4*nModes), footprint, p)
	if mem > t {
		t = mem
	}
	return t + mo.barrier(p)
}

// localModeTime models the thread-local accumulate path: perfectly
// parallel work plus the serial p-way reduction of the rows×K output.
func (mo Model) localModeTime(rows int, nnz float64, k, nModes, p int, workScale float64) float64 {
	work := nnz * mo.rowWork(k, nModes) * workScale / float64(p) * 1e-9
	reduce := float64(rows) * float64(k) * float64(p) * mo.P.ReduceNs * 1e-9
	return work + reduce + mo.barrier(p)
}

// mttkrpModeTime predicts the MTTKRP for one target mode.
func (mo Model) mttkrpModeTime(kind MTTKRPKind, s SliceProfile, mode, k, p int) float64 {
	p = mo.clampThreads(p)
	m := s.Modes[mode]
	nnz := float64(s.NNZ)
	if nnz == 0 {
		return 0
	}
	n := len(s.Modes)
	// Footprint of the factor rows the kernel touches.
	var rows int64
	for _, mm := range s.Modes {
		rows += int64(mm.Dim)
	}
	footprint := rows * int64(k) * 8
	switch kind {
	case MTTKRPRowSparse:
		// Post-remap the mode length shrinks to |nz(n)| and the factors
		// are the gathered A_nz, so the footprint is slice-local.
		var nzRows int64
		for _, mm := range s.Modes {
			nzRows += int64(mm.NZRows)
		}
		spFootprint := nzRows * int64(k) * 8
		workScale := 1.0
		if mo.cacheResident(spFootprint, p) {
			workScale = mo.P.SpLocalityFactor
		}
		if m.NZRows <= shortModeThreshold {
			return mo.localModeTime(m.NZRows, nnz, k, n, p, workScale)
		}
		t := mo.lockedModeTime(m.NZRows, m.TopRowFrac, nnz, k, n, p, spFootprint)
		return t * workScale
	case MTTKRPHybrid:
		if m.Dim <= shortModeThreshold {
			return mo.localModeTime(m.Dim, nnz, k, n, p, 1)
		}
		return mo.lockedModeTime(m.Dim, m.TopRowFrac, nnz, k, n, p, footprint)
	case MTTKRPPlan, MTTKRPCSF:
		// Per-slice compiled contention-free kernels: parallel work with
		// no locks and no p-way output reduction (the plan gives every
		// output row a single writer; the CSF engine's shard merge is
		// negligible). Host-accurate predictions live in Selector; this
		// case keeps the paper-testbed model total.
		work := nnz * mo.rowWork(k, n) / float64(p) * 1e-9
		mem := mo.memTime(0, nnz*float64(8+4*n), footprint, p)
		if mem > work {
			work = mem
		}
		return work + mo.barrier(p)
	default:
		return mo.lockedModeTime(m.Dim, m.TopRowFrac, nnz, k, n, p, footprint)
	}
}

// MTTKRPTime predicts the summed MTTKRP time across all N modes of one
// inner iteration (the streaming-mode update is separate; see
// TimeModeUpdateTime).
func (mo Model) MTTKRPTime(kind MTTKRPKind, s SliceProfile, k, p int) float64 {
	t := 0.0
	for mode := range s.Modes {
		t += mo.mttkrpModeTime(kind, s, mode, k, p)
	}
	return t
}

// TimeModeUpdateTime predicts the streaming-mode (sₜ) MTTKRP: a single
// output row, computed once per inner iteration. locked selects the
// baseline's one-lock path — every update serializes on one mutex whose
// line ping-pongs between all p cores, so this kernel gets *slower*
// with more threads; otherwise the thread-local reduction path scales.
func (mo Model) TimeModeUpdateTime(s SliceProfile, k, p int, locked bool) float64 {
	p = mo.clampThreads(p)
	nnz := float64(s.NNZ)
	n := len(s.Modes)
	if !locked {
		return mo.localModeTime(1, nnz, k, n, p, 1)
	}
	if p == 1 {
		return nnz * (mo.rowWork(k, n) + mo.updateWork(k) + mo.P.LockNs) * 1e-9
	}
	var rows int64
	for _, mm := range s.Modes {
		rows += int64(mm.Dim)
	}
	cc := mo.contendCost(p)
	if rows*int64(k)*8 <= mo.P.TinyFootprintBytes {
		cc *= mo.P.CacheContendFactor
	}
	serial := nnz * (mo.updateWork(k) + mo.P.LockNs + cc) * 1e-9
	parallelWork := nnz * mo.rowWork(k, n) / float64(p) * 1e-9
	if parallelWork > serial {
		serial = parallelWork
	}
	return serial + mo.barrier(p)
}
