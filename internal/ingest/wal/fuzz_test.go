package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// fuzzMaxRecord keeps fuzz-side allocations bounded; the decoder must
// reject anything claiming more without allocating it.
const fuzzMaxRecord = 1 << 16

// FuzzWALRecord throws arbitrary bytes at the record decoder: it must
// never panic, never allocate beyond the claimed bound, and classify
// every outcome as a clean boundary (EOF), a torn record, corruption,
// or a valid frame whose payload round-trips.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(appendRecord(nil, []byte("hello")))
	f.Add(appendRecord(nil, []byte("hello"))[:5]) // torn header
	f.Add(appendRecord(nil, []byte("hello"))[:9]) // torn payload
	huge := make([]byte, recHeaderSize)
	binary.LittleEndian.PutUint32(huge, 0xFFFFFFFF)
	f.Add(huge) // oversized claim
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		payload, err := readRecord(br, fuzzMaxRecord)
		switch {
		case err == nil:
			// A valid frame: the framing must reproduce it exactly.
			if len(payload) == 0 || len(payload) > fuzzMaxRecord {
				t.Fatalf("accepted payload of size %d", len(payload))
			}
			re := appendRecord(nil, payload)
			if !bytes.Equal(re, data[:len(re)]) {
				t.Fatal("re-encoded frame differs from input prefix")
			}
		case err == io.EOF:
			if len(data) != 0 {
				t.Fatalf("EOF with %d unread bytes", len(data))
			}
		case errors.Is(err, ErrTornRecord), errors.Is(err, ErrCorruptRecord):
			// The expected rejection classes.
		default:
			t.Fatalf("unclassified decode error: %v", err)
		}
	})
}

// FuzzWALSegment writes arbitrary bytes as a segment file and opens the
// log over it: Open must never panic, never loop, and always leave a
// usable log behind — whatever recovery had to cut.
func FuzzWALSegment(f *testing.F) {
	valid := func(records ...[]byte) []byte {
		var b []byte
		b = append(b, segMagic[:]...)
		b = binary.LittleEndian.AppendUint64(b, 1)
		for _, r := range records {
			b = appendRecord(b, r)
		}
		return b
	}
	f.Add(valid([]byte("a"), []byte("bb")))
	f.Add(valid([]byte("a"))[:10])        // torn header
	f.Add(valid([]byte("abcdef"))[:20])   // torn record
	f.Add([]byte("not a segment at all")) // bad magic
	corrupt := valid([]byte("aaaa"), []byte("bbbb"))
	corrupt[segHeaderSize+recHeaderSize+1] ^= 0x40 // flip inside record 1
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-000000001.seg"), data, 0o644); err != nil {
			t.Skip()
		}
		l, rec, err := Open(Options{Dir: dir, MaxRecordBytes: fuzzMaxRecord})
		if err != nil {
			// A rejected segment is an acceptable outcome for torn
			// headers mid-chain; the log must not exist half-open.
			if l != nil {
				t.Fatal("Open returned both a log and an error")
			}
			return
		}
		defer l.Close()
		// Whatever recovered, the log must append and read coherently.
		seq, err := l.Append([]byte("post-recovery"))
		if err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		var got uint64
		for i := uint64(0); i < rec.Records+8; i++ {
			p, s, ok, err := l.Next()
			if err != nil {
				var loss *LossError
				if !errors.As(err, &loss) {
					t.Fatalf("Next: %v", err)
				}
				continue
			}
			if !ok {
				break
			}
			if s > seq {
				t.Fatalf("read seq %d beyond appended %d", s, seq)
			}
			if len(p) == 0 {
				t.Fatal("empty payload surfaced")
			}
			got = s
		}
		if got != seq {
			t.Fatalf("never read back the post-recovery append (last seq %d, want %d)", got, seq)
		}
	})
}
