// Package spstream is a high-performance streaming sparse tensor
// decomposition library: a from-scratch Go implementation of the
// CP-stream algorithm family from "High Performance Streaming Tensor
// Decomposition" (Soh et al., IPDPS 2021), including the paper's two
// contributions — the optimized constrained CP-stream (Blocked & Fused
// ADMM + Hybrid Lock MTTKRP) and the new spCP-stream algorithm that
// keeps untouched factor rows in K×K Gram form.
//
// # Quick start
//
//	stream, _ := spstream.GeneratePreset("nips", 0.1)
//	dec, _ := spstream.New(stream.Dims, spstream.Options{
//		Rank:      16,
//		Algorithm: spstream.SpCPStream,
//	})
//	results, _ := dec.ProcessStream(stream.Source(), nil)
//	factors := dec.Factor(0) // mode-0 factor matrix
//	_ = results
//
// Slices can also come from FROSTT .tns files (LoadTNS + SplitStream)
// or any custom SliceSource implementation.
//
// The decomposition state after t slices is the rank-K model
// {A⁽¹⁾,…,A⁽ᴺ⁾, S} with S holding one temporal row per slice; slice t
// is approximated by [[A⁽¹⁾,…,A⁽ᴺ⁾; sₜ]].
package spstream

import (
	"io"

	"spstream/internal/admm"
	"spstream/internal/baselines"
	"spstream/internal/core"
	"spstream/internal/dense"
	"spstream/internal/ingest"
	"spstream/internal/resilience"
	"spstream/internal/sptensor"
	"spstream/internal/sptensor/ooc"
	"spstream/internal/synth"
	"spstream/internal/trace"
)

// Re-exported core types. The facade keeps downstream users on one
// import path while the implementation lives in internal packages.
type (
	// Options configures a Decomposer; see the field docs in
	// internal/core.Options.
	Options = core.Options
	// Algorithm selects the solver variant.
	Algorithm = core.Algorithm
	// SliceResult reports per-slice outcomes.
	SliceResult = core.SliceResult
	// Decomposer is the streaming decomposition engine.
	Decomposer = core.Decomposer
	// Tensor is an N-way sparse tensor in coordinate format.
	Tensor = sptensor.Tensor
	// Stream is an ordered sequence of time slices.
	Stream = sptensor.Stream
	// SliceSource yields time slices one at a time.
	SliceSource = sptensor.SliceSource
	// Matrix is a dense row-major matrix.
	Matrix = dense.Matrix
	// Breakdown is the per-phase timing accumulator (Fig. 8 categories).
	Breakdown = trace.Breakdown
	// Constraint is a factor-matrix constraint for ADMM.
	Constraint = admm.Constraint
	// SynthConfig describes a synthetic streaming tensor.
	SynthConfig = synth.Config
	// ChannelSource adapts a channel of slices to SliceSource (live
	// ingestion).
	ChannelSource = sptensor.ChannelSource
	// WindowAccumulator turns an event feed into fixed-size slices.
	WindowAccumulator = sptensor.WindowAccumulator
	// Event is one timestamped nonzero for the window accumulator.
	Event = sptensor.Event
	// ResilienceConfig enables guarded slice processing (recovery
	// ladder, health checks, rollback, policies) via
	// Options.Resilience.
	ResilienceConfig = resilience.Config
	// ResiliencePolicy selects what happens after in-slice recovery
	// fails: AbortOnError, RetrySlice, or SkipSlice.
	ResiliencePolicy = resilience.Policy
	// ResilienceStats are the per-stream recovery counters
	// (Decomposer.ResilienceStats).
	ResilienceStats = resilience.Stats
	// CheckpointManager writes crash-safe periodic checkpoints into a
	// directory and restores the newest valid one.
	CheckpointManager = resilience.Manager
	// IngestPipeline is the bounded live-ingestion pipeline: a shed
	// queue feeding a consumer goroutine, with optional lag-aware
	// graceful degradation.
	IngestPipeline = ingest.Pipeline
	// IngestConfig configures an IngestPipeline (queue capacity, shed
	// policy, max lag, degradation, drain timeout).
	IngestConfig = ingest.Config
	// ShedPolicy selects what a full ingest queue does with new slices.
	ShedPolicy = ingest.ShedPolicy
	// DegradeConfig tunes the lag-aware degradation controller
	// (IngestConfig.Degrade).
	DegradeConfig = ingest.ControllerConfig
	// SpillConfig configures the durable spill-to-disk backlog
	// (IngestConfig.Spill, required by ShedSpill): WAL directory, disk
	// budget, group-commit window, and the checkpoint counter to replay
	// from after a crash.
	SpillConfig = ingest.SpillConfig
	// OverloadStats is a point-in-time snapshot of the overload
	// counters (produced, processed, shed, coalesced, …).
	OverloadStats = trace.OverloadSnapshot
	// BlockSource delivers a slice one bounded block at a time — the
	// out-of-core input to Decomposer.ProcessBlockSlice. Implemented by
	// BlockReader (.spblk files) and sptensor.MemBlocks.
	BlockSource = sptensor.BlockSource
	// BlockReader reads a block-partitioned .spblk tensor file,
	// decoding one CRC-checked block at a time (mmap-backed where the
	// platform allows).
	BlockReader = ooc.BlockReader
	// ConvertOptions configures the bounded-memory .tns → .spblk
	// converter.
	ConvertOptions = ooc.ConvertOptions
	// ConvertStats reports what the converter did.
	ConvertStats = ooc.ConvertStats
)

// Resilience policies (see ResiliencePolicy).
const (
	// AbortOnError returns the failure to the caller (default).
	AbortOnError = resilience.Abort
	// RetrySlice re-runs the failed slice from the last-good snapshot.
	RetrySlice = resilience.RetrySlice
	// SkipSlice drops the failed slice and continues the stream.
	SkipSlice = resilience.SkipSlice
)

// Shed policies for a full ingest queue (see ShedPolicy).
const (
	// ShedBlock applies backpressure: Offer waits for space.
	ShedBlock = ingest.Block
	// ShedDropNewest rejects the incoming slice.
	ShedDropNewest = ingest.DropNewest
	// ShedDropOldest evicts the oldest queued slice.
	ShedDropOldest = ingest.DropOldest
	// ShedCoalesce merges the incoming slice into the newest queued
	// one — no events lost, coarser windows.
	ShedCoalesce = ingest.Coalesce
	// ShedSpill appends overflow to a crash-safe on-disk WAL
	// (IngestConfig.Spill) and replays it in admission order as
	// capacity frees — nothing is lost, memory stays bounded.
	ShedSpill = ingest.Spill
)

// NewIngestPipeline wraps a decomposer (or any Processor) in a bounded
// ingestion pipeline. Call Start, Offer slices from any goroutine, and
// Drain on shutdown.
func NewIngestPipeline(proc ingest.Processor, cfg IngestConfig) (*IngestPipeline, error) {
	return ingest.New(proc, cfg)
}

// ParseShedPolicy parses "block", "drop-newest", "drop-oldest",
// "coalesce" or "spill" (flag values).
func ParseShedPolicy(s string) (ShedPolicy, error) { return ingest.ParseShedPolicy(s) }

// ErrIngestDraining is returned by IngestPipeline.Offer after Drain has
// begun.
var ErrIngestDraining = ingest.ErrDraining

// Resilience sentinel errors, matched with errors.Is.
var (
	// ErrDiverged reports a failed post-slice numerical health check.
	ErrDiverged = resilience.ErrDiverged
	// ErrSliceSkipped wraps the error of a slice dropped under
	// SkipSlice.
	ErrSliceSkipped = resilience.ErrSliceSkipped
	// ErrNoCheckpoint reports a directory with no restorable
	// checkpoint.
	ErrNoCheckpoint = resilience.ErrNoCheckpoint
)

// NewCheckpointManager creates (if needed) dir and returns a manager
// checkpointing every `every` slices, retaining the newest `keep`
// files.
func NewCheckpointManager(dir string, every, keep int) (*CheckpointManager, error) {
	return resilience.NewManager(dir, every, keep)
}

// RestoreNewestCheckpoint restores the newest valid checkpoint under
// dir into the decomposer, returning the path used.
func RestoreNewestCheckpoint(dir string, d *Decomposer) (string, error) {
	return resilience.RestoreNewest(dir, d.RestoreState)
}

// NewChannelSource wraps a channel of slices with the given mode
// lengths.
func NewChannelSource(dims []int, ch <-chan *Tensor) *ChannelSource {
	return sptensor.NewChannelSource(dims, ch)
}

// NewWindowAccumulator creates an accumulator emitting one coalesced
// slice every windowEvents events.
func NewWindowAccumulator(dims []int, windowEvents int) *WindowAccumulator {
	return sptensor.NewWindowAccumulator(dims, windowEvents)
}

// Algorithm variants.
const (
	// Baseline is the unoptimized CP-stream reference implementation.
	Baseline = core.Baseline
	// Optimized is CP-stream with the paper's kernel optimizations.
	Optimized = core.Optimized
	// SpCPStream is the paper's new Gram-form algorithm
	// (non-constrained problems only).
	SpCPStream = core.SpCPStream
)

// NonNeg returns the non-negativity constraint for constrained runs.
func NonNeg() Constraint { return admm.NonNeg{} }

// L1 returns the sparsity (soft-threshold) constraint with weight
// lambda.
func L1(lambda float64) Constraint { return admm.L1{Lambda: lambda} }

// NonNegMaxColNorm returns non-negativity with a column-norm cap r.
func NonNegMaxColNorm(r float64) Constraint { return admm.NonNegMaxColNorm{R: r} }

// New creates a streaming decomposer for slices with the given mode
// lengths.
func New(dims []int, opt Options) (*Decomposer, error) {
	return core.NewDecomposer(dims, opt)
}

// Related-work comparators (paper §II), exposed for benchmarking and
// the comparison example.
type (
	// OnlineCP is the accumulation-based streaming method of Zhou et
	// al. (KDD'16), adapted to sparse slices.
	OnlineCP = baselines.OnlineCP
	// OnlineSGD is the stochastic-gradient streaming method of Mardani
	// et al. (TSP'15).
	OnlineSGD = baselines.OnlineSGD
)

// NewOnlineCP creates an OnlineCP comparator.
func NewOnlineCP(dims []int, rank, workers int, seed uint64) (*OnlineCP, error) {
	return baselines.NewOnlineCP(dims, rank, workers, seed)
}

// NewOnlineSGD creates an Online-SGD comparator.
func NewOnlineSGD(dims []int, rank, workers int, seed uint64) (*OnlineSGD, error) {
	return baselines.NewOnlineSGD(dims, rank, workers, seed)
}

// NewTensor allocates an empty sparse tensor with the given mode
// lengths.
func NewTensor(dims ...int) *Tensor { return sptensor.New(dims...) }

// LoadTNS reads a FROSTT .tns file from disk.
func LoadTNS(path string) (*Tensor, error) { return sptensor.ReadTNSFile(path) }

// ReadTNS parses FROSTT .tns text from a reader; dims may be nil to
// infer mode lengths from the data.
func ReadTNS(r io.Reader, dims []int) (*Tensor, error) { return sptensor.ReadTNS(r, dims) }

// SaveTNS writes a tensor in FROSTT .tns format.
func SaveTNS(path string, t *Tensor) error { return sptensor.WriteTNSFile(path, t) }

// SplitStream partitions an (N+1)-way tensor along streamMode into a
// stream of N-way time slices.
func SplitStream(t *Tensor, streamMode int) (*Stream, error) { return sptensor.Split(t, streamMode) }

// OpenBlocks opens a block-partitioned .spblk tensor file for
// out-of-core processing (Decomposer.ProcessBlockSlice). Close the
// reader when done.
func OpenBlocks(path string) (*BlockReader, error) { return ooc.Open(path) }

// WriteBlocks writes a tensor as a block-partitioned .spblk file with
// roughly targetBlockNNZ nonzeros per block (atomically: temp file +
// fsync + rename).
func WriteBlocks(path string, t *Tensor, targetBlockNNZ int) error {
	return ooc.WriteTensor(path, t, targetBlockNNZ)
}

// ConvertTNS converts a FROSTT .tns file to the .spblk block format
// without materializing the tensor: peak memory is bounded by
// ConvertOptions, not by the nonzero count.
func ConvertTNS(tnsPath, outPath string, opt ConvertOptions) (*ConvertStats, error) {
	return ooc.ConvertTNS(tnsPath, outPath, opt)
}

// SplitTensorBlocks wraps an in-memory tensor as a BlockSource of
// consecutive runs of at most blockNNZ nonzeros (no copying).
func SplitTensorBlocks(t *Tensor, blockNNZ int) (BlockSource, error) {
	return sptensor.SplitBlocks(t, blockNNZ)
}

// Generate materializes a synthetic stream from a SynthConfig.
func Generate(cfg SynthConfig) (*Stream, error) { return synth.Generate(cfg) }

// GeneratePreset materializes one of the built-in dataset analogues
// ("patents", "flickr", "uber", "nips") at the given scale (1 =
// benchmark size, 0.05 ≈ test size).
func GeneratePreset(name string, scale float64) (*Stream, error) {
	cfg, err := synth.Preset(name, scale)
	if err != nil {
		return nil, err
	}
	return synth.Generate(cfg)
}

// PresetNames lists the built-in dataset analogues.
func PresetNames() []string { return synth.PresetNames() }

// WriteFactorsTNS is a small convenience that dumps every factor matrix
// of a decomposer to w as whitespace-separated text (one matrix after
// another, blank-line separated), for downstream analysis tools.
func WriteFactorsTNS(w io.Writer, d *Decomposer) error {
	for m := 0; m < len(d.Dims()); m++ {
		f := d.Factor(m)
		for i := 0; i < f.Rows; i++ {
			row := f.Row(i)
			for j, v := range row {
				sep := " "
				if j == len(row)-1 {
					sep = "\n"
				}
				if _, err := io.WriteString(w, formatFloat(v)+sep); err != nil {
					return err
				}
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// SaveFactors writes WriteFactorsTNS output to a file atomically (temp
// file + fsync + rename), so an interrupted write never leaves a torn
// factor file.
func SaveFactors(path string, d *Decomposer) error {
	return resilience.AtomicWriteFile(path, func(w io.Writer) error {
		return WriteFactorsTNS(w, d)
	})
}
