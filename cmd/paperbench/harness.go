package main

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"

	"spstream/internal/perfmodel"
	"spstream/internal/sptensor"
	"spstream/internal/synth"
)

// paperThreads is the thread sweep of the paper's evaluation.
var paperThreads = []int{1, 7, 14, 28, 56}

// paperRanks is the rank sweep of the paper's evaluation.
var paperRanks = []int{16, 32, 64, 128}

// harness holds shared configuration and caches for the experiments.
type harness struct {
	mode       string
	scale      float64
	rank       int
	slices     int
	maxWorkers int
	out        io.Writer

	// csvDir, when non-empty, receives one <experiment>.csv per
	// experiment with the raw series (for plotting).
	csvDir string

	// benchJSON / benchCompare configure the bench experiment: the
	// output path for the results JSON and an optional committed
	// baseline to diff against (advisory). benchOnly restricts the grid
	// to a comma-separated subset of config names (make bench-skew).
	benchJSON    string
	benchCompare string
	benchOnly    string

	// cmpOld / cmpNew are the two bench JSON files the benchcmp
	// experiment diffs.
	cmpOld string
	cmpNew string

	model    perfmodel.Model
	modelOK  bool
	streams  map[string]*sptensor.Stream
	profiles map[string]perfmodel.SliceProfile
}

// writeCSV writes rows (with a header) to <csvDir>/<name>.csv; it is a
// no-op when csvDir is unset.
func (h *harness) writeCSV(name string, header []string, rows [][]string) error {
	if h.csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(h.csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(h.csvDir, name+".csv"))
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		f.Close()
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (h *harness) validate() error {
	switch h.mode {
	case "model", "measure":
	default:
		return fmt.Errorf("unknown mode %q (want model or measure)", h.mode)
	}
	if h.scale <= 0 {
		return fmt.Errorf("scale must be positive")
	}
	if h.rank < 1 {
		return fmt.Errorf("rank must be ≥ 1")
	}
	return nil
}

func (h *harness) perfModel() perfmodel.Model {
	if !h.modelOK {
		h.model = perfmodel.PaperModel()
		h.modelOK = true
	}
	return h.model
}

// stream returns (and caches) the synthetic analogue of a dataset.
func (h *harness) stream(name string) (*sptensor.Stream, error) {
	if h.streams == nil {
		h.streams = map[string]*sptensor.Stream{}
	}
	if s, ok := h.streams[name]; ok {
		return s, nil
	}
	cfg, err := synth.Preset(name, h.scale)
	if err != nil {
		return nil, err
	}
	s, err := synth.Generate(cfg)
	if err != nil {
		return nil, err
	}
	h.streams[name] = s
	return s, nil
}

// profile returns a mid-stream slice profile of a dataset analogue at
// paper scale (scale 1), regardless of the measurement scale: the
// performance model should see the paper-sized workload structure even
// when measured runs use a scaled-down stream. The single slice is
// generated directly (GenerateSlice), so this stays cheap.
func (h *harness) profile(name string) (perfmodel.SliceProfile, error) {
	if h.profiles == nil {
		h.profiles = map[string]perfmodel.SliceProfile{}
	}
	if p, ok := h.profiles[name]; ok {
		return p, nil
	}
	cfg, err := synth.Preset(name, 1)
	if err != nil {
		return perfmodel.SliceProfile{}, err
	}
	x, err := synth.GenerateSlice(cfg, cfg.T/2)
	if err != nil {
		return perfmodel.SliceProfile{}, err
	}
	p := perfmodel.Profile(x)
	h.profiles[name] = p
	return p, nil
}

// measureWorkers returns the worker sweep for measure mode.
func (h *harness) measureWorkers() []int {
	maxW := h.maxWorkers
	if maxW <= 0 {
		maxW = runtime.GOMAXPROCS(0)
	}
	var out []int
	for w := 1; w <= maxW; w *= 2 {
		out = append(out, w)
	}
	if out[len(out)-1] != maxW {
		out = append(out, maxW)
	}
	return out
}

func (h *harness) header(title, paper string) {
	fmt.Fprintf(h.out, "\n================================================================\n")
	fmt.Fprintf(h.out, "%s\n", title)
	fmt.Fprintf(h.out, "paper reference: %s\n", paper)
	fmt.Fprintf(h.out, "mode=%s scale=%g\n", h.mode, h.scale)
	fmt.Fprintf(h.out, "================================================================\n")
}

// itoa/ftoa are tiny formatting helpers for the CSV rows.
func itoa(v int) string { return strconv.Itoa(v) }

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// bar renders a crude text bar for histogram-style output.
func bar(count, maxCount, width int) string {
	if maxCount == 0 {
		return ""
	}
	n := count * width / maxCount
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
