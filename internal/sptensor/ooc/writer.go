package ooc

import (
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"spstream/internal/resilience"
	"spstream/internal/sptensor"
)

// DefaultBlockNNZ is the target nonzero count per block when the
// caller does not choose one: big enough that per-block kernel launch
// and CRC costs amortize, small enough that a decoded block plus its
// sort scratch stays a few megabytes for typical mode counts.
const DefaultBlockNNZ = 1 << 16

// fileWriter emits one SPBLK001 file sequentially: magic, block
// sections in ascending grid-rank order, footer, trailer. It tracks
// offsets itself so it can run inside resilience.AtomicWriteFile's
// temp-file writer, which has no Seek.
type fileWriter struct {
	w       io.Writer
	lay     Layout
	off     int64
	idx     []indexEntry
	grids   []int32
	payload []byte
	nnz     int64
}

func newFileWriter(w io.Writer, lay Layout) (*fileWriter, error) {
	if err := lay.validate(); err != nil {
		return nil, err
	}
	fw := &fileWriter{w: w, lay: lay}
	if err := fw.write([]byte(Magic)); err != nil {
		return nil, err
	}
	return fw, nil
}

func (fw *fileWriter) write(b []byte) error {
	n, err := fw.w.Write(b)
	fw.off += int64(n)
	return err
}

// writeBlock appends one block section. Blocks must arrive in strictly
// ascending grid-rank order with every coordinate inside the block's
// extent — the writer enforces the invariants the reader will check.
func (fw *fileWriter) writeBlock(grid []int32, coords [][]int32, vals []float64) error {
	nModes := len(fw.lay.Dims)
	if len(grid) != nModes || len(coords) != nModes {
		return fmt.Errorf("ooc: block with %d modes written to %d-mode file", len(grid), nModes)
	}
	nnz := len(vals)
	if nnz == 0 {
		return nil // empty blocks are simply not stored
	}
	rank := fw.lay.Rank(grid)
	if n := len(fw.idx); n > 0 && fw.lay.Rank(fw.idx[n-1].grid) >= rank {
		return fmt.Errorf("ooc: block rank %d not after %d (blocks must be written in grid order)", rank, fw.lay.Rank(fw.idx[n-1].grid))
	}
	for m := 0; m < nModes; m++ {
		if len(coords[m]) != nnz {
			return fmt.Errorf("ooc: block mode %d has %d coordinates for %d values", m, len(coords[m]), nnz)
		}
		lo, hi := fw.lay.Extent(m, grid[m])
		for _, c := range coords[m] {
			if c < lo || c >= hi {
				return fmt.Errorf("ooc: mode-%d coordinate %d outside block extent [%d,%d)", m, c, lo, hi)
			}
		}
	}

	fw.payload = fw.payload[:0]
	fw.payload = appendU64(fw.payload, uint64(nnz))
	for m := 0; m < nModes; m++ {
		for _, c := range coords[m] {
			fw.payload = appendU32(fw.payload, uint32(c))
		}
	}
	for _, v := range vals {
		fw.payload = appendU64(fw.payload, floatBits(v))
	}

	offset := fw.off
	var hdr [sectionHeaderLen]byte
	crc := crc32.Checksum(fw.payload, crcTable)
	putU32(hdr[0:4], crc)
	putU64(hdr[4:12], uint64(len(fw.payload)))
	if err := fw.write(hdr[:]); err != nil {
		return err
	}
	if err := fw.write(fw.payload); err != nil {
		return err
	}
	fw.grids = append(fw.grids, grid...)
	g := fw.grids[len(fw.grids)-nModes:]
	fw.idx = append(fw.idx, indexEntry{grid: g, offset: offset, nnz: int64(nnz)})
	fw.nnz += int64(nnz)
	return nil
}

// finish writes the footer and trailer.
func (fw *fileWriter) finish() error {
	footerOff := fw.off
	fw.payload = encodeFooter(fw.payload, fw.lay, fw.nnz, fw.idx)
	var hdr [sectionHeaderLen]byte
	putU32(hdr[0:4], crc32.Checksum(fw.payload, crcTable))
	putU64(hdr[4:12], uint64(len(fw.payload)))
	if err := fw.write(hdr[:]); err != nil {
		return err
	}
	if err := fw.write(fw.payload); err != nil {
		return err
	}
	var trailer [trailerLen]byte
	putU64(trailer[0:8], uint64(footerOff))
	copy(trailer[8:16], EndMagic)
	return fw.write(trailer[:])
}

// WriteTensor writes an in-memory tensor to path as an SPBLK001 file,
// blocked by BlockShape at the given target block size (≤0 uses
// DefaultBlockNNZ). Nonzeros are stably partitioned into grid order —
// within a block the original storage order is preserved, so the
// file's block concatenation is the stable grid-sort of the input.
// The write is atomic (temp + fsync + rename).
func WriteTensor(path string, x *sptensor.Tensor, targetBlockNNZ int) error {
	if err := x.Validate(); err != nil {
		return err
	}
	if x.NModes() < 1 || x.NModes() > MaxModes {
		return fmt.Errorf("ooc: cannot write %d-mode tensor", x.NModes())
	}
	for m, d := range x.Dims {
		if d < 1 {
			return fmt.Errorf("ooc: mode %d has zero length; block grid needs positive dims", m)
		}
	}
	if targetBlockNNZ <= 0 {
		targetBlockNNZ = DefaultBlockNNZ
	}
	lay := Layout{Dims: x.Dims, Splits: BlockShape(x.Dims, x.NNZ(), targetBlockNNZ)}

	n := x.NNZ()
	nModes := x.NModes()
	ranks := make([]int64, n)
	for e := 0; e < n; e++ {
		r := int64(0)
		for m := 0; m < nModes; m++ {
			r = r*int64(lay.GridDim(m)) + int64(lay.GridCoord(m, x.Inds[m][e]))
		}
		ranks[e] = r
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return ranks[perm[a]] < ranks[perm[b]] })

	return resilience.AtomicWriteFile(path, func(w io.Writer) error {
		fw, err := newFileWriter(w, lay)
		if err != nil {
			return err
		}
		grid := make([]int32, nModes)
		coords := make([][]int32, nModes)
		var vals []float64
		flush := func() error {
			if len(vals) == 0 {
				return nil
			}
			err := fw.writeBlock(grid, coords, vals)
			for m := range coords {
				coords[m] = coords[m][:0]
			}
			vals = vals[:0]
			return err
		}
		last := int64(-1)
		for _, p := range perm {
			if ranks[p] != last {
				if err := flush(); err != nil {
					return err
				}
				last = ranks[p]
				for m := 0; m < nModes; m++ {
					grid[m] = lay.GridCoord(m, x.Inds[m][p])
				}
			}
			for m := 0; m < nModes; m++ {
				coords[m] = append(coords[m], x.Inds[m][p])
			}
			vals = append(vals, x.Vals[p])
		}
		if err := flush(); err != nil {
			return err
		}
		return fw.finish()
	})
}
