package resilience

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// StateWriter is the serialization half of a checkpointable decomposer
// (core.Decomposer satisfies it).
type StateWriter interface {
	SaveState(w io.Writer) error
}

// Manager writes crash-safe periodic checkpoints into a directory and
// restores the newest valid one. Files are named ckpt-<slice>.spstrm;
// each write is atomic (temp file + fsync + rename), so the directory
// only ever contains complete checkpoints, and the state format's CRC
// footer rejects any that were corrupted at rest.
type Manager struct {
	dir   string
	every int
	keep  int
}

// checkpointExt is the checkpoint file suffix.
const checkpointExt = ".spstrm"

// NewManager creates (if needed) the checkpoint directory and returns a
// manager that checkpoints every `every` slices (≤0 means every slice)
// and retains the newest `keep` files (≤0 means 2). Keeping more than
// one file means a checkpoint corrupted at rest still leaves an older
// restorable one.
func NewManager(dir string, every, keep int) (*Manager, error) {
	if every <= 0 {
		every = 1
	}
	if keep <= 0 {
		keep = 2
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	sweepStaleTemps(dir)
	return &Manager{dir: dir, every: every, keep: keep}, nil
}

// sweepStaleTemps deletes temp files a crashed AtomicWriteFile left
// behind (".<name>.tmp-*"). They are invisible to ListCheckpoints but
// would otherwise accumulate forever, one per crash mid-write. Startup
// is the only safe moment: no writer is mid-rename.
func sweepStaleTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp-") {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// Dir returns the checkpoint directory.
func (m *Manager) Dir() string { return m.dir }

// Every returns the checkpoint interval in slices.
func (m *Manager) Every() int { return m.every }

// Path returns the checkpoint file path for slice counter t.
func (m *Manager) Path(t int) string {
	return filepath.Join(m.dir, fmt.Sprintf("ckpt-%09d%s", t, checkpointExt))
}

// MaybeWrite checkpoints the state when the slice counter t is a
// multiple of the interval. It returns the written path ("" when the
// interval did not trigger).
func (m *Manager) MaybeWrite(t int, s StateWriter) (string, error) {
	if t <= 0 || t%m.every != 0 {
		return "", nil
	}
	return m.Write(t, s)
}

// Write checkpoints the state for slice counter t atomically and prunes
// old checkpoints beyond the retention count.
func (m *Manager) Write(t int, s StateWriter) (string, error) {
	path := m.Path(t)
	if err := AtomicWriteFile(path, s.SaveState); err != nil {
		return "", err
	}
	m.prune()
	return path, nil
}

// Checkpoints returns the checkpoint paths in the directory, newest
// (highest slice counter) first.
func (m *Manager) Checkpoints() []string {
	return ListCheckpoints(m.dir)
}

// ListCheckpoints returns the checkpoint paths under dir, newest first.
func ListCheckpoints(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	type ck struct {
		path string
		t    int
	}
	var cks []ck
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, checkpointExt) {
			continue
		}
		t, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), checkpointExt))
		if err != nil {
			continue
		}
		cks = append(cks, ck{filepath.Join(dir, name), t})
	}
	sort.Slice(cks, func(a, b int) bool { return cks[a].t > cks[b].t })
	out := make([]string, len(cks))
	for i, c := range cks {
		out[i] = c.path
	}
	return out
}

// prune removes all but the newest keep checkpoints.
func (m *Manager) prune() {
	for _, path := range m.Checkpoints()[minInt(m.keep, len(m.Checkpoints())):] {
		os.Remove(path)
	}
}

// RestoreLatest tries the checkpoints newest-first, calling restore on
// each until one succeeds (the restore callback is expected to verify
// integrity — core.RestoreState checks the CRC footer). It returns the
// path that restored, or ErrNoCheckpoint wrapped with the last failure.
func (m *Manager) RestoreLatest(restore func(io.Reader) error) (string, error) {
	return RestoreNewest(m.dir, restore)
}

// RestoreNewest is RestoreLatest over an arbitrary directory.
func RestoreNewest(dir string, restore func(io.Reader) error) (string, error) {
	var lastErr error
	for _, path := range ListCheckpoints(dir) {
		f, err := os.Open(path)
		if err != nil {
			lastErr = err
			continue
		}
		err = restore(f)
		f.Close()
		if err == nil {
			return path, nil
		}
		lastErr = fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	if lastErr != nil {
		return "", fmt.Errorf("%w: %v", ErrNoCheckpoint, lastErr)
	}
	return "", ErrNoCheckpoint
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
