package csf

import (
	"fmt"
	"sort"

	"spstream/internal/sptensor"
)

// The blocked build constructs the same CSF trees as the in-memory
// build without ever holding the whole slice: blocks are grouped into
// "slabs" — connected components of overlapping root-mode extents, in
// ascending root order — and each slab is gathered, radix-sorted, and
// appended to the tree incrementally.
//
// Why this is exact: the in-memory build sorts all nonzeros stably and
// lexicographically by the tree's level order (root first). Slab root
// intervals are disjoint and ascending, so no sort key crosses a slab
// boundary; within a slab the gather visits blocks in source order, so
// a stable per-slab sort preserves exactly the relative order the
// global stable sort would. Concatenating the per-slab sorts therefore
// IS the global stable sort, and appendLevels consumes it in pieces
// with carried state. Working memory is O(largest slab + tree), not
// O(nnz): for a grid-partitioned .spblk file a slab is one root-mode
// grid band.

// blockExtents is the optional fast path for sources that know their
// per-block bounding extents without decoding (ooc.BlockReader derives
// them from the grid layout). Sources without it are scanned once.
type blockExtents interface {
	Extent(b, m int) (lo, hi int32)
}

// BeginBlocks points the engine at a blocked slice and invalidates
// every tree. Trees are rebuilt lazily on the first MTTKRP per mode (or
// eagerly via Build), reading the source one block at a time; only the
// built trees stay resident. The source must remain valid — and its
// underlying data unchanged — while the engine is in use.
func (e *Engine) BeginBlocks(src sptensor.BlockSource) {
	e.x = nil
	e.src = src
	e.begin(src.Dims())
}

// buildTreeBlocked is buildTree for a block source. Blocked slices are
// not globally sorted in any mode order, so only the general radix path
// applies — there is no sorted-base fast path to miss.
func (e *Engine) buildTreeBlocked(t *tree, mode int) {
	t.order = ModeOrder(t.order, e.dims, mode)
	t.sortPasses = int8(len(e.dims))
	slabs, err := e.rootSlabs(mode)
	if err != nil {
		panic(fmt.Sprintf("csf: blocked build: %v", err))
	}
	e.resetLevels(t)
	base := 0
	for _, slab := range slabs {
		if err := e.gatherSlab(slab); err != nil {
			panic(fmt.Sprintf("csf: blocked build: %v", err))
		}
		perm := e.sortPerm(&e.gx, t.order)
		base = e.appendLevels(t, &e.gx, perm, base)
	}
	if base != e.src.NNZ() {
		panic(fmt.Sprintf("csf: blocked build gathered %d nonzeros, source declared %d", base, e.src.NNZ()))
	}
	e.finalizeLevels(t, base)
	t.buildTiles(e.workers)
	t.built = true
}

// slabSpan is one block's root-mode interval during slab grouping.
type slabSpan struct {
	lo, hi int32
	b      int
}

// rootSlabs groups the source's blocks by overlapping root-mode extent
// and returns the groups in ascending root order, each group's blocks
// in ascending source order.
func (e *Engine) rootSlabs(root int) ([][]int, error) {
	nb := e.src.Blocks()
	spans := make([]slabSpan, 0, nb)
	ext, hasExt := e.src.(blockExtents)
	for b := 0; b < nb; b++ {
		var lo, hi int32
		if hasExt {
			lo, hi = ext.Extent(b, root)
		} else {
			// One decode pass to learn the block's root bounding range.
			blk, err := e.src.Block(b)
			if err != nil {
				return nil, err
			}
			if blk.NNZ() == 0 {
				continue
			}
			col := blk.Inds[root]
			lo, hi = col[0], col[0]
			for _, c := range col {
				if c < lo {
					lo = c
				}
				if c > hi {
					hi = c
				}
			}
			hi++
		}
		spans = append(spans, slabSpan{lo: lo, hi: hi, b: b})
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].lo != spans[j].lo {
			return spans[i].lo < spans[j].lo
		}
		return spans[i].b < spans[j].b
	})
	var slabs [][]int
	curHi := int32(-1)
	for _, s := range spans {
		if len(slabs) == 0 || s.lo >= curHi {
			slabs = append(slabs, nil)
			curHi = s.hi
		} else if s.hi > curHi {
			curHi = s.hi
		}
		slabs[len(slabs)-1] = append(slabs[len(slabs)-1], s.b)
	}
	// Restore source order inside each slab — the gather order must be
	// the concatenation order for the stable-sort argument to hold.
	for _, slab := range slabs {
		sort.Ints(slab)
	}
	return slabs, nil
}

// gatherSlab concatenates the given blocks (in slice order) into the
// engine's reusable gather tensor e.gx.
func (e *Engine) gatherSlab(blocks []int) error {
	n := len(e.dims)
	if len(e.gx.Inds) != n {
		e.gx.Inds = make([][]int32, n)
	}
	e.gx.Dims = e.dims
	for m := range e.gx.Inds {
		e.gx.Inds[m] = e.gx.Inds[m][:0]
	}
	e.gx.Vals = e.gx.Vals[:0]
	for _, b := range blocks {
		blk, err := e.src.Block(b)
		if err != nil {
			return err
		}
		for m := 0; m < n; m++ {
			e.gx.Inds[m] = append(e.gx.Inds[m], blk.Inds[m]...)
		}
		e.gx.Vals = append(e.gx.Vals, blk.Vals...)
	}
	return nil
}
