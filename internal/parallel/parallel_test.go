package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPartitionCoversRange(t *testing.T) {
	f := func(n uint16, w uint8) bool {
		nn := int(n%1000) + 1
		ww := int(w%16) + 1
		ranges := Partition(nn, ww)
		covered := 0
		prev := 0
		for _, r := range ranges {
			if r.Lo != prev || r.Hi <= r.Lo {
				return false
			}
			covered += r.Hi - r.Lo
			prev = r.Hi
		}
		return covered == nn && prev == nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionBalance(t *testing.T) {
	ranges := Partition(10, 3)
	if len(ranges) != 3 {
		t.Fatalf("got %d ranges", len(ranges))
	}
	sizes := []int{ranges[0].Hi - ranges[0].Lo, ranges[1].Hi - ranges[1].Lo, ranges[2].Hi - ranges[2].Lo}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Fatalf("unbalanced partition: %v", sizes)
	}
}

func TestPartitionDegenerate(t *testing.T) {
	if Partition(0, 4) != nil {
		t.Fatal("Partition(0) should be nil")
	}
	if got := Partition(2, 8); len(got) != 2 {
		t.Fatalf("Partition(2,8) = %v", got)
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 5, 16} {
		n := 1000
		visits := make([]int32, n)
		For(n, workers, func(_ int, r Range) {
			for i := r.Lo; i < r.Hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestForWorkerIDsDistinct(t *testing.T) {
	n := 100
	seen := make(map[int]bool)
	ids := make(chan int, 16)
	For(n, 4, func(w int, r Range) {
		ids <- w
	})
	close(ids)
	for w := range ids {
		if seen[w] {
			t.Fatalf("worker id %d used twice", w)
		}
		seen[w] = true
	}
}

func TestForChunkedCoversAll(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		n := 2357
		visits := make([]int32, n)
		ForChunked(n, workers, 64, func(_ int, r Range) {
			for i := r.Lo; i < r.Hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestReduceFloat64Deterministic(t *testing.T) {
	n := 10000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i%7) * 0.1
	}
	body := func(_ int, r Range) float64 {
		s := 0.0
		for i := r.Lo; i < r.Hi; i++ {
			s += vals[i]
		}
		return s
	}
	first := ReduceFloat64(n, 4, body)
	for trial := 0; trial < 10; trial++ {
		if got := ReduceFloat64(n, 4, body); got != first {
			t.Fatal("ReduceFloat64 not deterministic for fixed worker count")
		}
	}
	serial := ReduceFloat64(n, 1, body)
	if diff := first - serial; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("parallel %v far from serial %v", first, serial)
	}
}

func TestReduceVec(t *testing.T) {
	n := 100
	got := ReduceVec(n, 4, 2, func(_ int, r Range, acc []float64) {
		for i := r.Lo; i < r.Hi; i++ {
			acc[0] += 1
			acc[1] += float64(i)
		}
	})
	if got[0] != 100 {
		t.Fatalf("count = %v", got[0])
	}
	if got[1] != 4950 {
		t.Fatalf("sum = %v", got[1])
	}
}

func TestReduceVecEmpty(t *testing.T) {
	got := ReduceVec(0, 4, 3, func(_ int, _ Range, _ []float64) {})
	if len(got) != 3 || got[0] != 0 {
		t.Fatalf("empty ReduceVec = %v", got)
	}
}

func TestMutexPoolStriping(t *testing.T) {
	p := NewMutexPool(10)
	if p.Len() != 16 {
		t.Fatalf("pool size %d, want 16 (next pow2)", p.Len())
	}
	// Concurrent increments guarded by the pool must not race.
	counters := make([]int, 64)
	For(64*100, 8, func(_ int, r Range) {
		for i := r.Lo; i < r.Hi; i++ {
			row := i % 64
			p.Lock(row)
			counters[row]++
			p.Unlock(row)
		}
	})
	for row, c := range counters {
		if c != 100 {
			t.Fatalf("row %d count %d", row, c)
		}
	}
}

func TestLocalBuffers(t *testing.T) {
	lb := NewLocalBuffers(3, 4)
	b0 := lb.Get(0, 4)
	for i := range b0 {
		b0[i] = float64(i)
	}
	// Get zeroes on reuse.
	b0again := lb.Get(0, 4)
	for _, v := range b0again {
		if v != 0 {
			t.Fatal("Get did not zero")
		}
	}
	// Grow beyond initial worker count.
	b5 := lb.Get(5, 2)
	if len(b5) != 2 {
		t.Fatal("lazy worker growth failed")
	}
	if lb.Workers() < 6 {
		t.Fatal("worker count did not grow")
	}
	// Reduce sums in worker order.
	lb2 := NewLocalBuffers(2, 3)
	a := lb2.Get(0, 3)
	b := lb2.Get(1, 3)
	a[0], a[1], a[2] = 1, 2, 3
	b[0], b[1], b[2] = 10, 20, 30
	dst := make([]float64, 3)
	lb2.Reduce(dst, 2, 3)
	if dst[0] != 11 || dst[2] != 33 {
		t.Fatalf("Reduce = %v", dst)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers must be ≥ 1")
	}
	// Zero/negative requests fall back to the default in For.
	var count int32
	For(10, -3, func(_ int, r Range) { atomic.AddInt32(&count, int32(r.Hi-r.Lo)) })
	if count != 10 {
		t.Fatal("negative worker request mishandled")
	}
}

func TestMutexPoolMinimumSize(t *testing.T) {
	p := NewMutexPool(0)
	if p.Len() != 1 {
		t.Fatalf("pool of 0 should clamp to 1, got %d", p.Len())
	}
	p.Lock(5)
	p.Unlock(5)
}

func TestLocalBuffersReduceEdgeCases(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	// Asking Reduce for more workers than buffers exist, or for a size
	// larger than some worker's buffer, is a sizing bug: a silent skip
	// would drop that worker's partial sums. Both must panic.
	short := NewLocalBuffers(2, 0)
	short.Get(0, 2)[1] = 5
	mustPanic("undersized buffer", func() {
		dst := make([]float64, 4)
		short.Reduce(dst, 2, 4) // worker 1 has size 0 < 4
	})
	lb := NewLocalBuffers(2, 4)
	lb.Get(0, 4)[0] = 1
	mustPanic("too many workers", func() {
		dst := make([]float64, 4)
		lb.Reduce(dst, 10, 4)
	})
	// In-range reductions still work.
	dst := make([]float64, 4)
	lb.Get(1, 4)[0] = 2
	lb.Reduce(dst, 2, 4)
	if dst[0] != 3 {
		t.Fatalf("reduce = %v", dst)
	}
}
