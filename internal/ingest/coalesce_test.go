package ingest

import (
	"testing"

	"spstream/internal/core"
	"spstream/internal/synth"
)

// TestCoalescedStreamConvergesClose is the model-quality half of the
// Coalesce policy's contract: merging adjacent windows into coarser
// slices (what the policy does under overload) must yield a model
// close to the undegraded one. It is fully deterministic — the merge
// schedule is fixed (every adjacent pair), not timing-dependent.
func TestCoalescedStreamConvergesClose(t *testing.T) {
	// Denser slices than the throughput harness: per-slice fit on very
	// sparse windows is dominated by sampling noise, which would
	// drown the comparison this test is about.
	s, err := synth.Generate(synth.Config{
		Name:        "coalesce",
		Dists:       []synth.IndexDist{synth.Uniform{N: 25}, synth.Uniform{N: 30}},
		T:           24,
		NNZPerSlice: 4000,
		Values:      synth.ValuePlanted,
		PlantedRank: 3,
		NoiseStd:    0.01,
		Seed:        21,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{Rank: 4, Algorithm: core.Optimized, Seed: 3, TrackFit: true}

	full, err := core.NewDecomposer(s.Dims, opt)
	if err != nil {
		t.Fatal(err)
	}
	var fullFits []float64
	for _, x := range s.Slices {
		res, err := full.ProcessSlice(x.Clone())
		if err != nil {
			t.Fatal(err)
		}
		fullFits = append(fullFits, res.Fit)
	}

	// Coalesce adjacent pairs exactly as queue.push does under the
	// Coalesce policy: merge, then re-coalesce duplicates.
	coarse, err := core.NewDecomposer(s.Dims, opt)
	if err != nil {
		t.Fatal(err)
	}
	var coarseFits []float64
	for i := 0; i < len(s.Slices); i += 2 {
		merged := s.Slices[i].Clone()
		if i+1 < len(s.Slices) {
			if err := merged.Merge(s.Slices[i+1]); err != nil {
				t.Fatal(err)
			}
		}
		res, err := coarse.ProcessSlice(merged)
		if err != nil {
			t.Fatal(err)
		}
		coarseFits = append(coarseFits, res.Fit)
	}

	mean := func(v []float64) float64 {
		sum := 0.0
		for _, x := range v {
			sum += x
		}
		return sum / float64(len(v))
	}
	mf, mc := mean(fullFits), mean(coarseFits)
	if mf < 0.5 {
		t.Fatalf("undegraded run fits poorly (%.3f); fixture broken", mf)
	}
	// The coarser windows still come from the same planted model, so
	// the coalesced run must track the undegraded fit closely.
	if mc < mf-0.05 {
		t.Fatalf("coalesced fit %.4f much worse than undegraded %.4f", mc, mf)
	}
	// Sanity: coalescing preserved the total event mass.
	var nnzFull, nnzCoarse float64
	for _, x := range s.Slices {
		for _, v := range x.Vals {
			nnzFull += v
		}
	}
	for i := 0; i < len(s.Slices); i += 2 {
		merged := s.Slices[i].Clone()
		if i+1 < len(s.Slices) {
			if err := merged.Merge(s.Slices[i+1]); err != nil {
				t.Fatal(err)
			}
		}
		for _, v := range merged.Vals {
			nnzCoarse += v
		}
	}
	if diff := nnzFull - nnzCoarse; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("coalescing changed total value mass by %g", diff)
	}
}
