// Package wal is the durable spill tier of the ingest pipeline: a
// segment-based write-ahead log for slices the bounded in-memory queue
// cannot hold. Records are length-prefixed and CRC32-checked
// individually, segments are fixed-size append-only files created and
// rotated under the same fsync-the-directory discipline as the
// checkpoint layer, and appends group-commit — fsync happens at a
// configurable interval rather than per record, bounding both the
// fsync rate and the data-loss window of a hard crash.
//
// The log carries a consumer-offset sidecar file recording, per
// decomposer checkpoint T, how far consumption had durably progressed.
// Replay after SIGKILL seeks to the offset bound to the restored
// checkpoint, so every slice after the checkpoint is re-applied exactly
// once and the recovered stream converges to the same factors as an
// uncrashed run. All filesystem access flows through the FS seam so the
// fault-injection harness (internal/resilience/faultinject) can produce
// short writes, failed fsyncs, torn final records, and ENOSPC
// deterministically.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"spstream/internal/resilience"
)

// FS is the filesystem seam. Production uses OSFS; the fault harness
// wraps it to inject disk failures at exact operation ordinals.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	Stat(name string) (fs.FileInfo, error)
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory, making created/renamed entries
	// durable (the syncDir discipline of the checkpoint layer).
	SyncDir(dir string) error
}

// File is the subset of *os.File the log needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// osFS is the production FS.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Rename(o, n string) error                   { return os.Rename(o, n) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error     { return os.Truncate(name, size) }
func (osFS) Stat(name string) (fs.FileInfo, error)      { return os.Stat(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) SyncDir(dir string) error { return resilience.SyncDir(dir) }

// OSFS returns the production filesystem.
func OSFS() FS { return osFS{} }

// Structured errors.
var (
	// ErrFull reports that appending would exceed Options.MaxBytes —
	// the log's own disk budget, the soft form of ENOSPC.
	ErrFull = errors.New("wal: log is full (MaxBytes reached)")
	// ErrClosed reports an operation on a closed log.
	ErrClosed = errors.New("wal: log is closed")
	// ErrTornRecord reports a record cut short by a crash mid-write —
	// expected at the tail of the newest segment, where recovery
	// truncates it away.
	ErrTornRecord = errors.New("wal: torn record (truncated mid-write)")
	// ErrCorruptRecord reports a record whose CRC or framing is invalid
	// — at-rest corruption, never silently returned to the consumer.
	ErrCorruptRecord = errors.New("wal: corrupt record")
)

// LossError reports records the reader had to skip because at-rest
// corruption made part of a segment unreadable. The consumer accounts
// Lost records as shed and continues at the next segment.
type LossError struct {
	// Lost is how many appended records became unreachable.
	Lost uint64
	// Err is the underlying decode failure.
	Err error
}

func (e *LossError) Error() string {
	return fmt.Sprintf("wal: %d record(s) lost to corruption: %v", e.Lost, e.Err)
}

func (e *LossError) Unwrap() error { return e.Err }

// Segment and sidecar naming.
const (
	segPrefix  = "wal-"
	segExt     = ".seg"
	offsetName = "offsets"
)

// segMagic identifies a segment file and its format version; offMagic
// the consumer-offset sidecar.
var (
	segMagic = [8]byte{'S', 'P', 'W', 'A', 'L', 'S', '0', '1'}
	offMagic = [8]byte{'S', 'P', 'W', 'A', 'L', 'O', '0', '1'}
)

// segHeaderSize is magic + first sequence number.
const segHeaderSize = 8 + 8

// recHeaderSize is the per-record frame: u32 payload length + u32
// CRC32(payload).
const recHeaderSize = 4 + 4

// Options parameterizes Open. Dir is required; every zero field gets a
// production-safe default.
type Options struct {
	// Dir is the log directory (created if missing).
	Dir string
	// SegmentBytes is the rotation threshold. Default 4 MiB.
	SegmentBytes int64
	// MaxBytes, when positive, caps the total bytes across segments;
	// Append returns ErrFull past it so the caller can shed instead of
	// filling the disk.
	MaxBytes int64
	// MaxRecordBytes bounds a single record; oversized appends are
	// rejected and oversized lengths read from disk are treated as
	// corruption, never allocated. Default 64 MiB.
	MaxRecordBytes int
	// SyncEvery is the group-commit interval: an Append fsyncs only
	// when this much time has passed since the last fsync. Zero means
	// every append fsyncs (strict durability).
	SyncEvery time.Duration
	// FS replaces the filesystem (fault injection). Default OSFS.
	FS FS
	// Clock replaces time.Now (group-commit interval tests).
	Clock func() time.Time
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = 64 << 20
	}
	if o.FS == nil {
		o.FS = OSFS()
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// segment is the in-memory index entry for one segment file.
type segment struct {
	index    int64  // file-name ordinal
	firstSeq uint64 // sequence number of its first record
	count    uint64 // valid records
	size     int64  // valid bytes (logical end; the file may be longer before recovery truncates)
}

func (s *segment) lastSeq() uint64 { return s.firstSeq + s.count - 1 }

// offsetEntry binds a decomposer checkpoint T to the highest WAL
// sequence number whose slice that checkpoint's state already
// includes.
type offsetEntry struct {
	t   int
	seq uint64
}

// maxOffsetEntries bounds the sidecar history; it only needs to cover
// the checkpoints the Manager retains, with slack.
const maxOffsetEntries = 16

// Recovery reports what Open found on disk.
type Recovery struct {
	// Segments and Records are the valid state recovered.
	Segments int
	Records  uint64
	// TruncatedBytes is how much torn tail was cut off the newest
	// segment (a crash mid-append).
	TruncatedBytes int64
	// LostRecords counts records unreachable behind mid-segment
	// corruption (skipped, never returned to the consumer).
	LostRecords uint64
}

// Log is the write-ahead log. One writer (Append) and one reader
// (Next) may run concurrently with each other and with CommitOffset;
// all state is guarded by one mutex — the log is disk-bound, not
// lock-bound.
type Log struct {
	opts Options

	mu     sync.Mutex
	segs   []*segment
	w      File   // active append handle (last segment)
	wPath  string // its path
	closed bool
	broken error // set when a failed append could not be rolled back

	nextSeq  uint64 // seq the next Append gets
	readSeq  uint64 // seq the next Next returns
	dirty    bool   // unsynced appends
	lastSync time.Time

	offsets []offsetEntry

	// read cursor
	rFile  File
	rBuf   *bufio.Reader
	rSeg   int // index into segs
	rInSeg uint64

	scratch []byte
}

// Open opens (creating if needed) the log in opts.Dir, validates every
// segment record by record, truncates a torn tail off the newest
// segment, and loads the consumer-offset sidecar. The read cursor
// starts at the oldest record on disk; callers coordinating with a
// checkpoint should follow with SeekTo(OffsetFor(t)).
func Open(opts Options) (*Log, Recovery, error) {
	opts = opts.withDefaults()
	var rec Recovery
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, rec, fmt.Errorf("wal: mkdir: %w", err)
	}
	l := &Log{opts: opts, nextSeq: 1, readSeq: 1, lastSync: opts.Clock()}

	entries, err := opts.FS.ReadDir(opts.Dir)
	if err != nil {
		return nil, rec, fmt.Errorf("wal: readdir: %w", err)
	}
	var indices []int64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segExt) {
			continue
		}
		n, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segExt), 10, 64)
		if err != nil {
			continue
		}
		indices = append(indices, n)
	}
	sort.Slice(indices, func(a, b int) bool { return indices[a] < indices[b] })

	for i, idx := range indices {
		last := i == len(indices)-1
		seg, tornBytes, lost, err := l.scanSegment(idx, last)
		if err != nil {
			if last {
				// An unreadable newest segment (e.g. a header cut short
				// by a crash between create and the first append) holds
				// no records; drop it and recreate below.
				_ = opts.FS.Remove(l.segPath(idx))
				continue
			}
			return nil, rec, fmt.Errorf("wal: segment %d: %w", idx, err)
		}
		rec.TruncatedBytes += tornBytes
		rec.LostRecords += lost
		l.segs = append(l.segs, seg)
		rec.Records += seg.count
	}
	rec.Segments = len(l.segs)

	if len(l.segs) == 0 {
		if err := l.createSegment(1, 1); err != nil {
			return nil, rec, err
		}
	} else {
		tail := l.segs[len(l.segs)-1]
		l.nextSeq = tail.firstSeq + tail.count
		l.readSeq = l.segs[0].firstSeq
		w, err := opts.FS.OpenFile(l.segPath(tail.index), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, rec, fmt.Errorf("wal: reopen tail segment: %w", err)
		}
		l.w, l.wPath = w, l.segPath(tail.index)
	}
	l.rSeg = -1

	l.loadOffsets() // corruption here degrades to replay-everything, never fails Open
	return l, rec, nil
}

// segPath names segment idx.
func (l *Log) segPath(idx int64) string {
	return filepath.Join(l.opts.Dir, fmt.Sprintf("%s%09d%s", segPrefix, idx, segExt))
}

// scanSegment validates one segment record by record. For the last
// (append) segment a torn final record is truncated away; for earlier
// segments it is corruption. A CRC failure mid-segment ends the
// segment's valid range there; the records behind it are lost and
// counted.
func (l *Log) scanSegment(idx int64, last bool) (*segment, int64, uint64, error) {
	path := l.segPath(idx)
	f, err := l.opts.FS.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, 0, 0, err
	}
	defer f.Close()
	info, err := l.opts.FS.Stat(path)
	if err != nil {
		return nil, 0, 0, err
	}
	fileSize := info.Size()

	br := bufio.NewReader(f)
	firstSeq, err := readSegHeader(br)
	if err != nil {
		return nil, 0, 0, err
	}
	seg := &segment{index: idx, firstSeq: firstSeq, size: segHeaderSize}
	var lost uint64
	for {
		payload, err := readRecord(br, l.opts.MaxRecordBytes)
		if err == io.EOF {
			break
		}
		if err != nil {
			if last {
				// The append segment must END at its last valid record
				// or future appends land behind unreadable bytes: cut
				// the damage off. A torn record is the expected crash
				// shape (nothing lost — the append never completed);
				// corruption means at-rest damage destroyed records
				// (the count is unknowable; report at least one).
				torn := fileSize - seg.size
				if terr := l.opts.FS.Truncate(path, seg.size); terr != nil {
					return nil, 0, 0, fmt.Errorf("truncating damaged tail: %w", terr)
				}
				if errors.Is(err, ErrTornRecord) {
					return seg, torn, 0, nil
				}
				return seg, torn, 1, nil
			}
			// Mid-segment corruption in a sealed segment: framing is
			// unreliable from here on, so the rest of the segment is
			// unreachable. The lost count is unknowable; report at
			// least one.
			lost = 1
			break
		}
		seg.count++
		seg.size += int64(recHeaderSize + len(payload))
	}
	return seg, 0, lost, nil
}

// createSegment makes segment idx with the given first sequence number
// durable: write the header, fsync the file, fsync the directory.
func (l *Log) createSegment(idx int64, firstSeq uint64) error {
	path := l.segPath(idx)
	f, err := l.opts.FS.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:8], segMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], firstSeq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment header sync: %w", err)
	}
	if err := l.opts.FS.SyncDir(l.opts.Dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: segment dir sync: %w", err)
	}
	l.segs = append(l.segs, &segment{index: idx, firstSeq: firstSeq, size: segHeaderSize})
	l.w, l.wPath = f, path
	return nil
}

// Append writes one record and returns its sequence number. Durability
// follows the group-commit policy (Options.SyncEvery); call Sync to
// force it. A failed write is rolled back by truncating the segment to
// its last valid record, so one disk fault sheds one record, not the
// log.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.broken != nil {
		return 0, l.broken
	}
	if len(payload) == 0 || len(payload) > l.opts.MaxRecordBytes {
		return 0, fmt.Errorf("wal: record size %d out of range (1..%d)", len(payload), l.opts.MaxRecordBytes)
	}
	recSize := int64(recHeaderSize + len(payload))
	if l.opts.MaxBytes > 0 && l.diskBytesLocked()+recSize > l.opts.MaxBytes {
		return 0, ErrFull
	}

	tail := l.segs[len(l.segs)-1]
	if tail.size+recSize > l.opts.SegmentBytes && tail.count > 0 {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
		tail = l.segs[len(l.segs)-1]
	}

	l.scratch = appendRecord(l.scratch[:0], payload)
	if _, err := l.w.Write(l.scratch); err != nil {
		// Roll the segment back to its last valid record. The write may
		// have landed partially; truncate + reopen restores framing.
		if rerr := l.rollbackTailLocked(tail); rerr != nil {
			l.broken = fmt.Errorf("wal: append failed (%v) and rollback failed: %w", err, rerr)
			return 0, l.broken
		}
		return 0, fmt.Errorf("wal: append: %w", err)
	}

	// Group commit. A failed fsync rolls the record back too: an append
	// either returns a sequence number the caller may rely on for
	// durability (modulo the SyncEvery window) or it returns an error
	// and the log is exactly as before — never a half-state.
	synced := false
	if l.opts.SyncEvery <= 0 || l.opts.Clock().Sub(l.lastSync) >= l.opts.SyncEvery {
		if err := l.w.Sync(); err != nil {
			if rerr := l.rollbackTailLocked(tail); rerr != nil {
				l.broken = fmt.Errorf("wal: sync failed (%v) and rollback failed: %w", err, rerr)
				return 0, l.broken
			}
			return 0, fmt.Errorf("wal: group-commit sync: %w", err)
		}
		synced = true
	}
	seq := l.nextSeq
	l.nextSeq++
	tail.count++
	tail.size += recSize
	l.dirty = !synced
	if synced {
		l.lastSync = l.opts.Clock()
	}
	return seq, nil
}

// rollbackTailLocked truncates the active segment to its last valid
// record and reopens the append handle.
func (l *Log) rollbackTailLocked(tail *segment) error {
	l.w.Close()
	if err := l.opts.FS.Truncate(l.wPath, tail.size); err != nil {
		return err
	}
	w, err := l.opts.FS.OpenFile(l.wPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.w = w
	return nil
}

// rotateLocked finalizes the active segment (fsync + close) and
// creates the next one.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return fmt.Errorf("wal: rotate sync: %w", err)
	}
	if err := l.w.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	tail := l.segs[len(l.segs)-1]
	return l.createSegment(tail.index+1, l.nextSeq)
}

// Sync forces the group commit: every appended record becomes durable.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.w.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.lastSync = l.opts.Clock()
	return nil
}

// Dirty reports whether unsynced appends exist (drives the background
// group-commit flusher).
func (l *Log) Dirty() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dirty
}

// Next returns the next unread record in sequence order. ok=false
// means the reader has caught up with the writer (not an error). A
// decode failure skips the rest of the damaged segment — the error
// reports how many records were lost — and the next call continues at
// the following segment.
func (l *Log) Next() (payload []byte, seq uint64, ok bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, 0, false, ErrClosed
	}
	if l.readSeq >= l.nextSeq {
		return nil, 0, false, nil
	}
	skipped, err := l.positionCursorLocked()
	if err != nil {
		return nil, 0, false, err
	}
	if skipped > 0 {
		// The cursor crossed a gap: records recovery already declared
		// lost (mid-segment corruption found at Open). Surface the
		// exact count so the consumer's backlog accounting stays
		// balanced; the cursor is positioned, the next call reads on.
		return nil, 0, false, &LossError{Lost: skipped, Err: ErrCorruptRecord}
	}
	seg := l.segs[l.rSeg]
	p, err := readRecord(l.rBuf, l.opts.MaxRecordBytes)
	if err != nil {
		// Undecodable mid-stream: framing is gone for this segment;
		// skip what remains of it.
		lost := seg.count - l.rInSeg
		l.readSeq += lost
		l.invalidateCursorLocked()
		return nil, 0, false, &LossError{Lost: lost, Err: err}
	}
	seq = l.readSeq
	l.readSeq++
	l.rInSeg++
	return p, seq, true, nil
}

// positionCursorLocked makes the read cursor point at readSeq (or the
// first readable record after it). The skipped return is how many
// sequence numbers the cursor had to jump over — records lost to
// corruption recovery already cut out of a segment's valid range.
func (l *Log) positionCursorLocked() (skipped uint64, err error) {
	if l.rSeg >= 0 && l.rSeg < len(l.segs) {
		seg := l.segs[l.rSeg]
		if l.readSeq == seg.firstSeq+l.rInSeg && l.rInSeg < seg.count {
			return 0, nil // already positioned
		}
	}
	l.invalidateCursorLocked()
	idx := -1
	for i, s := range l.segs {
		if l.readSeq >= s.firstSeq && l.readSeq < s.firstSeq+s.count {
			idx = i
			break
		}
	}
	if idx < 0 {
		// readSeq sits in a gap (records lost to corruption or GC'd
		// segments): advance to the first segment holding it or more.
		for i, s := range l.segs {
			if s.firstSeq+s.count > l.readSeq {
				if s.firstSeq > l.readSeq {
					skipped = s.firstSeq - l.readSeq
					l.readSeq = s.firstSeq
				} else {
					// Inside a segment's range but unindexed cannot
					// happen (the range check above would have hit);
					// defensive.
					l.readSeq = s.firstSeq + s.count
					continue
				}
				if l.readSeq >= l.nextSeq {
					return skipped, fmt.Errorf("wal: no readable record at or after seq %d", l.readSeq)
				}
				idx = i
				break
			}
		}
		if idx < 0 {
			// Everything at or after readSeq is gone (tail corruption
			// of the final segment): report the remainder as skipped.
			skipped = l.nextSeq - l.readSeq
			l.readSeq = l.nextSeq
			return skipped, nil
		}
	}
	seg := l.segs[idx]
	f, err := l.opts.FS.OpenFile(l.segPath(seg.index), os.O_RDONLY, 0)
	if err != nil {
		return skipped, fmt.Errorf("wal: open segment for read: %w", err)
	}
	br := bufio.NewReaderSize(f, 1<<16)
	if _, err := readSegHeader(br); err != nil {
		f.Close()
		return skipped, err
	}
	// Skip records below the cursor.
	for skip := l.readSeq - seg.firstSeq; skip > 0; skip-- {
		if _, err := readRecord(br, l.opts.MaxRecordBytes); err != nil {
			f.Close()
			return skipped, fmt.Errorf("wal: seeking within segment %d: %w", seg.index, err)
		}
	}
	l.rFile, l.rBuf, l.rSeg, l.rInSeg = f, br, idx, l.readSeq-seg.firstSeq
	return skipped, nil
}

func (l *Log) invalidateCursorLocked() {
	if l.rFile != nil {
		l.rFile.Close()
		l.rFile = nil
	}
	l.rBuf = nil
	l.rSeg = -1
	l.rInSeg = 0
}

// SeekTo positions the reader after seq: the next record returned is
// the oldest on disk with a sequence number greater than seq.
func (l *Log) SeekTo(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	target := seq + 1
	if len(l.segs) > 0 && target < l.segs[0].firstSeq {
		target = l.segs[0].firstSeq
	}
	if target > l.nextSeq {
		target = l.nextSeq
	}
	l.readSeq = target
	l.invalidateCursorLocked()
}

// Pending returns how many appended records the reader has not
// consumed yet.
func (l *Log) Pending() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.nextSeq <= l.readSeq {
		return 0
	}
	return l.nextSeq - l.readSeq
}

// AppendedSeq returns the highest sequence number appended (0 when
// empty).
func (l *Log) AppendedSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// Segments returns the number of live segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

// DiskBytes returns the total valid bytes across segments.
func (l *Log) DiskBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.diskBytesLocked()
}

func (l *Log) diskBytesLocked() int64 {
	var n int64
	for _, s := range l.segs {
		n += s.size
	}
	return n
}

// CommitOffset durably records that the state checkpointed at
// decomposer slice counter t already includes every record up to and
// including seq, then garbage-collects segments no retained offset can
// reach. Call it BEFORE writing checkpoint t: if the crash lands
// between the two writes, restore falls back to an older checkpoint
// whose offset entry is still retained — replaying too much is
// impossible, replaying exactly right is the common case.
func (l *Log) CommitOffset(t int, seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	// Group-commit flush first: an offset must never claim durability
	// for records the segment has not fsynced.
	if err := l.syncLocked(); err != nil {
		return fmt.Errorf("wal: commit offset sync: %w", err)
	}
	// Replace any entry for the same t, keep the history bounded.
	kept := l.offsets[:0]
	for _, e := range l.offsets {
		if e.t != t {
			kept = append(kept, e)
		}
	}
	l.offsets = append(kept, offsetEntry{t: t, seq: seq})
	sort.Slice(l.offsets, func(a, b int) bool { return l.offsets[a].t < l.offsets[b].t })
	if len(l.offsets) > maxOffsetEntries {
		l.offsets = append(l.offsets[:0], l.offsets[len(l.offsets)-maxOffsetEntries:]...)
	}
	if err := l.writeOffsetsLocked(); err != nil {
		return err
	}
	l.gcLocked()
	return nil
}

// OffsetFor returns the consumption offset bound to checkpoint t. When
// no exact entry exists (the sidecar predates t or was lost), it falls
// back to the newest entry at or below t; with no entry at all it
// returns (0, false) — replay everything on disk, the fail-safe
// at-least-once default.
func (l *Log) OffsetFor(t int) (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var best uint64
	found := false
	for _, e := range l.offsets {
		if e.t <= t {
			best = e.seq
			found = true
		}
	}
	return best, found
}

// gcLocked deletes segments every retained offset has passed and the
// reader is done with.
func (l *Log) gcLocked() {
	if len(l.offsets) == 0 {
		return
	}
	floor := l.offsets[0].seq
	for _, e := range l.offsets[1:] {
		if e.seq < floor {
			floor = e.seq
		}
	}
	if l.readSeq-1 < floor {
		floor = l.readSeq - 1
	}
	for len(l.segs) > 1 { // never the active append segment
		s := l.segs[0]
		if s.count > 0 && s.lastSeq() > floor {
			break
		}
		if l.rSeg == 0 {
			l.invalidateCursorLocked()
		}
		_ = l.opts.FS.Remove(l.segPath(s.index))
		l.segs = l.segs[1:]
		if l.rSeg > 0 {
			l.rSeg--
		}
	}
	_ = l.opts.FS.SyncDir(l.opts.Dir)
}

// writeOffsetsLocked rewrites the sidecar atomically: temp file, fsync,
// rename, directory fsync.
func (l *Log) writeOffsetsLocked() error {
	buf := make([]byte, 0, segHeaderSize+len(l.offsets)*16+4)
	buf = append(buf, offMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l.offsets)))
	for _, e := range l.offsets {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.t))
		buf = binary.LittleEndian.AppendUint64(buf, e.seq)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))

	path := filepath.Join(l.opts.Dir, offsetName)
	tmp := path + ".tmp"
	f, err := l.opts.FS.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: offsets temp: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		l.opts.FS.Remove(tmp)
		return fmt.Errorf("wal: offsets write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		l.opts.FS.Remove(tmp)
		return fmt.Errorf("wal: offsets sync: %w", err)
	}
	if err := f.Close(); err != nil {
		l.opts.FS.Remove(tmp)
		return err
	}
	if err := l.opts.FS.Rename(tmp, path); err != nil {
		l.opts.FS.Remove(tmp)
		return fmt.Errorf("wal: offsets rename: %w", err)
	}
	return l.opts.FS.SyncDir(l.opts.Dir)
}

// loadOffsets reads the sidecar; any damage degrades to an empty table
// (replay everything) rather than an error.
func (l *Log) loadOffsets() {
	path := filepath.Join(l.opts.Dir, offsetName)
	f, err := l.opts.FS.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return
	}
	defer f.Close()
	data, err := io.ReadAll(io.LimitReader(f, 8+4+maxOffsetEntries*16+4+1))
	if err != nil || len(data) < 8+4+4 {
		return
	}
	if string(data[:8]) != string(offMagic[:]) {
		return
	}
	body, foot := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(foot) {
		return
	}
	n := binary.LittleEndian.Uint32(data[8:12])
	if int(n) > maxOffsetEntries || len(body) != 12+int(n)*16 {
		return
	}
	off := 12
	for i := uint32(0); i < n; i++ {
		t := int(int64(binary.LittleEndian.Uint64(body[off:])))
		seq := binary.LittleEndian.Uint64(body[off+8:])
		l.offsets = append(l.offsets, offsetEntry{t: t, seq: seq})
		off += 16
	}
}

// Close flushes the group commit and closes every handle.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	err := l.syncLocked()
	l.closeLocked()
	return err
}

// Abort closes every handle WITHOUT flushing — the SIGKILL shape,
// used by the pipeline's emergency stop so crash tests exercise the
// same recovery path a real kill does.
func (l *Log) Abort() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closeLocked()
}

func (l *Log) closeLocked() {
	l.closed = true
	if l.w != nil {
		l.w.Close()
		l.w = nil
	}
	l.invalidateCursorLocked()
}

// --- record framing -------------------------------------------------

// appendRecord frames one payload onto dst: u32 length, u32
// CRC32(payload), payload.
func appendRecord(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// readSegHeader validates the segment magic and returns the first
// sequence number.
func readSegHeader(br *bufio.Reader) (uint64, error) {
	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: short segment header", ErrTornRecord)
	}
	if [8]byte(hdr[:8]) != segMagic {
		return 0, fmt.Errorf("%w: bad segment magic %q", ErrCorruptRecord, hdr[:8])
	}
	seq := binary.LittleEndian.Uint64(hdr[8:])
	if seq == 0 {
		return 0, fmt.Errorf("%w: zero first sequence", ErrCorruptRecord)
	}
	return seq, nil
}

// readRecord decodes one frame. io.EOF means a clean record boundary;
// ErrTornRecord a frame cut short (crash mid-write); ErrCorruptRecord
// a CRC mismatch or an implausible length. It never allocates more
// than maxBytes and never panics, whatever the input — the fuzz
// contract.
func readRecord(br *bufio.Reader, maxBytes int) ([]byte, error) {
	var hdr [recHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF // clean boundary
		}
		return nil, fmt.Errorf("%w: short record header", ErrTornRecord)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n == 0 || int64(n) > int64(maxBytes) {
		return nil, fmt.Errorf("%w: implausible record length %d", ErrCorruptRecord, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("%w: payload cut short of %d bytes", ErrTornRecord, n)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorruptRecord)
	}
	return payload, nil
}
