package main

import (
	"fmt"
	"time"

	"spstream/internal/admm"
	"spstream/internal/core"
	"spstream/internal/dense"
	"spstream/internal/mttkrp"
	"spstream/internal/sptensor"
	"spstream/internal/synth"
	"spstream/internal/trace"
)

// measureTrials is the repeat count for kernel timings; the minimum is
// reported, as in the paper (§VI-C).
const measureTrials = 3

// randomFactors builds random factors for a slice's modes.
func randomFactors(dims []int, k int, seed uint64) []*dense.Matrix {
	r := synth.NewRNG(seed)
	out := make([]*dense.Matrix, len(dims))
	for m, d := range dims {
		f := dense.NewMatrix(d, k)
		for i := range f.Data {
			f.Data[i] = r.Float64() + 0.1
		}
		out[m] = f
	}
	return out
}

// minDuration runs f trials times and returns the fastest wall time.
func minDuration(trials int, f func()) time.Duration {
	best := time.Duration(0)
	for t := 0; t < trials; t++ {
		start := time.Now()
		f()
		d := time.Since(start)
		if t == 0 || d < best {
			best = d
		}
	}
	return best
}

// estimateADMMIters runs a small real constrained decomposition and
// returns the average ADMM iteration count per mode update, used to
// weight the constrained cost model.
func (h *harness) estimateADMMIters() (int, error) {
	cfg, err := synth.Preset("nips", 0.05)
	if err != nil {
		return 0, err
	}
	st, err := synth.Generate(cfg)
	if err != nil {
		return 0, err
	}
	dec, err := core.NewDecomposer(st.Dims, core.Options{
		Rank:       8,
		Algorithm:  core.Optimized,
		Constraint: admm.NonNeg{},
		MaxIters:   5,
	})
	if err != nil {
		return 0, err
	}
	totalADMM, totalUpdates := 0, 0
	for t := 0; t < 3 && t < st.T(); t++ {
		res, err := dec.ProcessSlice(st.Slices[t])
		if err != nil {
			return 0, err
		}
		totalADMM += res.ADMMIters
		totalUpdates += res.Iters * len(st.Dims)
	}
	if totalUpdates == 0 {
		return 10, nil
	}
	iters := totalADMM / totalUpdates
	if iters < 1 {
		iters = 1
	}
	return iters, nil
}

// measureFig2 times the real ADMM kernels on this host.
func (h *harness) measureFig2() error {
	s, err := h.stream("nips")
	if err != nil {
		return err
	}
	const admmIters = 10
	for _, k := range []int{16, 32} {
		fmt.Fprintf(h.out, "\nrank %d (fixed %d ADMM iterations per solve, min of %d trials):\n",
			k, admmIters, measureTrials)
		fmt.Fprintf(h.out, "%8s %14s %14s %10s\n", "workers", "baseline(s)", "BF(s)", "speedup")
		factors := randomFactors(s.Dims, k, 7)
		phi := dense.NewMatrix(k, k)
		dense.Gram(phi, factors[len(factors)-1])
		dense.AddScaledIdentity(phi, phi, 1)
		for _, w := range h.measureWorkers() {
			opt := admm.Options{Workers: w, Tol: 1e-30, MaxIters: admmIters}
			var tBase, tBF time.Duration
			for m, f := range factors {
				psi := dense.NewMatrix(f.Rows, k)
				dense.MulAB(psi, f, phi)
				warm := f.Clone()
				solver := admm.NewSolver(opt)
				tBase += minDuration(measureTrials, func() {
					a := warm.Clone()
					if _, err := solver.Baseline(a, phi, psi, admm.NonNeg{}); err != nil {
						panic(err)
					}
				})
				tBF += minDuration(measureTrials, func() {
					a := warm.Clone()
					if _, err := solver.BlockedFused(a, phi, psi, admm.NonNeg{}); err != nil {
						panic(err)
					}
				})
				_ = m
			}
			fmt.Fprintf(h.out, "%8d %14.6f %14.6f %9.2fx\n",
				w, tBase.Seconds()/admmIters, tBF.Seconds()/admmIters,
				float64(tBase)/float64(tBF))
		}
	}
	return nil
}

// measureFig3 reports measured kernel speedups at the host's maximum
// worker count.
func (h *harness) measureFig3() error {
	ws := h.measureWorkers()
	w := ws[len(ws)-1]
	fmt.Fprintf(h.out, "(workers = %d, min of %d trials)\n", w, measureTrials)
	fmt.Fprintf(h.out, "%6s %-8s %12s %14s\n", "rank", "dataset", "ADMM", "MTTKRP")
	for _, k := range paperRanks {
		for _, name := range []string{"patents", "nips", "uber"} {
			s, err := h.stream(name)
			if err != nil {
				return err
			}
			aSpeed, err := measureADMMSpeedup(s.Dims, k, w)
			if err != nil {
				return err
			}
			mSpeed := measureMTTKRPSpeedup(s.Slices[s.T()/2], s.Dims, k, w)
			fmt.Fprintf(h.out, "%6d %-8s %11.2fx %13.2fx\n", k, name, aSpeed, mSpeed)
		}
	}
	return nil
}

func measureADMMSpeedup(dims []int, k, w int) (float64, error) {
	factors := randomFactors(dims, k, 3)
	phi := dense.NewMatrix(k, k)
	dense.Gram(phi, factors[0].RowView(0, minInt(factors[0].Rows, 4*k)))
	dense.AddScaledIdentity(phi, phi, 1)
	opt := admm.Options{Workers: w, Tol: 1e-30, MaxIters: 5}
	solver := admm.NewSolver(opt)
	var tBase, tBF time.Duration
	for _, f := range factors {
		psi := dense.NewMatrix(f.Rows, k)
		dense.MulAB(psi, f, phi)
		tBase += minDuration(measureTrials, func() {
			a := f.Clone()
			if _, err := solver.Baseline(a, phi, psi, admm.NonNeg{}); err != nil {
				panic(err)
			}
		})
		tBF += minDuration(measureTrials, func() {
			a := f.Clone()
			if _, err := solver.BlockedFused(a, phi, psi, admm.NonNeg{}); err != nil {
				panic(err)
			}
		})
	}
	return float64(tBase) / float64(tBF), nil
}

func measureMTTKRPSpeedup(x *sptensor.Tensor, dims []int, k, w int) float64 {
	factors := randomFactors(dims, k, 5)
	c := mttkrp.NewComputer(w)
	s := make([]float64, k)
	var tLock, tHL time.Duration
	for mode := range dims {
		out := dense.NewMatrix(dims[mode], k)
		tLock += minDuration(measureTrials, func() { c.Lock(out, x, factors, mode) })
		tHL += minDuration(measureTrials, func() { c.Hybrid(out, x, factors, mode) })
	}
	tLock += minDuration(measureTrials, func() { c.TimeModeLocked(s, x, factors) })
	tHL += minDuration(measureTrials, func() { c.TimeMode(s, x, factors) })
	return float64(tLock) / float64(tHL)
}

// measureFig4 times the real MTTKRP kernels across the worker sweep.
func (h *harness) measureFig4() error {
	s, err := h.stream("nips")
	if err != nil {
		return err
	}
	x := s.Slices[s.T()/2]
	for _, k := range []int{16, 128} {
		factors := randomFactors(s.Dims, k, 11)
		fmt.Fprintf(h.out, "\nrank %d (all modes + streaming-mode update, min of %d trials):\n", k, measureTrials)
		fmt.Fprintf(h.out, "%8s %14s %14s %10s\n", "workers", "baseline(s)", "HL(s)", "speedup")
		for _, w := range h.measureWorkers() {
			c := mttkrp.NewComputer(w)
			sv := make([]float64, k)
			var tLock, tHL time.Duration
			for mode := range s.Dims {
				out := dense.NewMatrix(s.Dims[mode], k)
				tLock += minDuration(measureTrials, func() { c.Lock(out, x, factors, mode) })
				tHL += minDuration(measureTrials, func() { c.Hybrid(out, x, factors, mode) })
			}
			tLock += minDuration(measureTrials, func() { c.TimeModeLocked(sv, x, factors) })
			tHL += minDuration(measureTrials, func() { c.TimeMode(sv, x, factors) })
			fmt.Fprintf(h.out, "%8d %14.6f %14.6f %9.2fx\n", w, tLock.Seconds(), tHL.Seconds(), float64(tLock)/float64(tHL))
		}
	}
	return nil
}

// measureFig5 runs real constrained decompositions end to end.
func (h *harness) measureFig5() error {
	ws := h.measureWorkers()
	w := ws[len(ws)-1]
	fmt.Fprintf(h.out, "(workers = %d, %d slices per run)\n", w, h.slices)
	fmt.Fprintf(h.out, "%6s %-8s %10s\n", "rank", "dataset", "speedup")
	for _, k := range []int{16, 32} {
		for _, name := range []string{"patents", "nips", "uber"} {
			b, err := h.runDecomposition(name, core.Baseline, k, w, true)
			if err != nil {
				return err
			}
			o, err := h.runDecomposition(name, core.Optimized, k, w, true)
			if err != nil {
				return err
			}
			fmt.Fprintf(h.out, "%6d %-8s %9.2fx\n", k, name, b/o)
		}
	}
	return nil
}

// measureNonConstrained runs the three non-constrained algorithms.
func (h *harness) measureNonConstrained(datasets []string, ranks []int) error {
	for _, name := range datasets {
		for _, k := range ranks {
			fmt.Fprintf(h.out, "\n%s rank %d (per-iteration seconds, %d slices):\n", name, k, h.slices)
			fmt.Fprintf(h.out, "%8s %12s %12s %12s %8s %8s\n", "workers", "baseline", "optimized", "spCP", "N/B", "O/B")
			for _, w := range h.measureWorkers() {
				b, err := h.runDecomposition(name, core.Baseline, k, w, false)
				if err != nil {
					return err
				}
				o, err := h.runDecomposition(name, core.Optimized, k, w, false)
				if err != nil {
					return err
				}
				n, err := h.runDecomposition(name, core.SpCPStream, k, w, false)
				if err != nil {
					return err
				}
				fmt.Fprintf(h.out, "%8d %12.6f %12.6f %12.6f %7.2fx %7.2fx\n", w, b, o, n, b/n, b/o)
			}
		}
	}
	return nil
}

// runDecomposition runs h.slices slices and returns the per-inner-
// iteration wall time in seconds.
func (h *harness) runDecomposition(name string, alg core.Algorithm, k, w int, constrained bool) (float64, error) {
	s, err := h.stream(name)
	if err != nil {
		return 0, err
	}
	opt := core.Options{Rank: k, Algorithm: alg, Workers: w, Seed: 9, MaxIters: 5}
	if constrained {
		opt.Constraint = admm.NonNeg{}
		opt.ADMMMaxIters = 10
	}
	dec, err := core.NewDecomposer(s.Dims, opt)
	if err != nil {
		return 0, err
	}
	iters := 0
	start := time.Now()
	for t := 0; t < h.slices && t < s.T(); t++ {
		res, err := dec.ProcessSlice(s.Slices[t])
		if err != nil {
			return 0, err
		}
		iters += res.Iters
	}
	elapsed := time.Since(start)
	if iters == 0 {
		iters = 1
	}
	return elapsed.Seconds() / float64(iters), nil
}

// measureFig8 runs the three algorithms on Flickr and prints the real
// measured phase breakdown.
func (h *harness) measureFig8() error {
	ws := h.measureWorkers()
	w := ws[len(ws)-1]
	s, err := h.stream("flickr")
	if err != nil {
		return err
	}
	fmt.Fprintf(h.out, "(workers = %d, %d slices, rank 16; per-iteration ms)\n\n", w, h.slices)
	fmt.Fprintf(h.out, "%-12s %10s", "algorithm", "total")
	for ph := 0; ph < trace.NumPhases; ph++ {
		fmt.Fprintf(h.out, " %10s", trace.Phase(ph))
	}
	fmt.Fprintln(h.out)
	for _, alg := range []core.Algorithm{core.Baseline, core.Optimized, core.SpCPStream} {
		dec, err := core.NewDecomposer(s.Dims, core.Options{Rank: 16, Algorithm: alg, Workers: w, Seed: 9, MaxIters: 5})
		if err != nil {
			return err
		}
		for t := 0; t < h.slices && t < s.T(); t++ {
			if _, err := dec.ProcessSlice(s.Slices[t]); err != nil {
				return err
			}
		}
		bd := dec.Breakdown()
		per := bd.PerIter()
		fmt.Fprintf(h.out, "%-12s %10.3f", alg, bd.Total().Seconds()*1e3/float64(maxInt(bd.Iters, 1)))
		for ph := 0; ph < trace.NumPhases; ph++ {
			fmt.Fprintf(h.out, " %10.4f", per[ph].Seconds()*1e3)
		}
		fmt.Fprintln(h.out)
	}
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
