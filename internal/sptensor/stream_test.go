package sptensor

import "testing"

func buildStreamTensor() *Tensor {
	// 3 modes: 2×3 slices over 4 time steps (stream mode = 2).
	t := New(2, 3, 4)
	t.Append([]int32{0, 0, 0}, 1)
	t.Append([]int32{1, 2, 0}, 2)
	t.Append([]int32{0, 1, 2}, 3)
	t.Append([]int32{1, 1, 2}, 4)
	t.Append([]int32{1, 0, 3}, 5)
	return t
}

func TestSplitBasics(t *testing.T) {
	ts := buildStreamTensor()
	s, err := Split(ts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.T() != 4 || s.NModes() != 2 {
		t.Fatalf("T=%d modes=%d", s.T(), s.NModes())
	}
	if s.Dims[0] != 2 || s.Dims[1] != 3 {
		t.Fatalf("dims = %v", s.Dims)
	}
	if s.Slices[0].NNZ() != 2 || s.Slices[1].NNZ() != 0 || s.Slices[2].NNZ() != 2 || s.Slices[3].NNZ() != 1 {
		t.Fatal("nonzeros routed to wrong slices")
	}
	if s.NNZ() != 5 {
		t.Fatalf("total nnz = %d", s.NNZ())
	}
	// Slice 3 holds coordinate (1,0) value 5.
	sl := s.Slices[3]
	if sl.Inds[0][0] != 1 || sl.Inds[1][0] != 0 || sl.Vals[0] != 5 {
		t.Fatal("slice contents wrong")
	}
}

func TestSplitMiddleMode(t *testing.T) {
	ts := buildStreamTensor()
	s, err := Split(ts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.T() != 3 {
		t.Fatalf("T = %d", s.T())
	}
	if s.Dims[0] != 2 || s.Dims[1] != 4 {
		t.Fatalf("dims = %v", s.Dims)
	}
	if s.NNZ() != 5 {
		t.Fatal("lost nonzeros")
	}
}

func TestSplitErrors(t *testing.T) {
	ts := buildStreamTensor()
	if _, err := Split(ts, 5); err == nil {
		t.Fatal("expected mode range error")
	}
	one := New(4)
	one.Append([]int32{1}, 1)
	if _, err := Split(one, 0); err == nil {
		t.Fatal("expected error for 1-way tensor")
	}
}

func TestMergeRoundTrip(t *testing.T) {
	ts := buildStreamTensor()
	s, err := Split(ts, 2) // stream mode last, so Merge restores mode order
	if err != nil {
		t.Fatal(err)
	}
	back := Merge(s)
	if back.NNZ() != ts.NNZ() {
		t.Fatalf("nnz %d vs %d", back.NNZ(), ts.NNZ())
	}
	back.Coalesce()
	orig := ts.Clone()
	orig.Coalesce()
	if back.Norm2() != orig.Norm2() {
		t.Fatal("Merge/Split changed values")
	}
	for m := range orig.Dims {
		if back.Dims[m] != orig.Dims[m] {
			t.Fatalf("dims changed: %v vs %v", back.Dims, orig.Dims)
		}
	}
}

func TestSource(t *testing.T) {
	ts := buildStreamTensor()
	s, _ := Split(ts, 2)
	src := s.Source()
	if len(src.Dims()) != 2 {
		t.Fatal("source dims wrong")
	}
	count := 0
	for src.Next() != nil {
		count++
	}
	if count != 4 {
		t.Fatalf("source yielded %d slices", count)
	}
	if src.Next() != nil {
		t.Fatal("exhausted source should keep returning nil")
	}
}
