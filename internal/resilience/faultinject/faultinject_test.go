package faultinject

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"spstream/internal/dense"
	"spstream/internal/resilience"
	"spstream/internal/sptensor"
)

func testTensor() *sptensor.Tensor {
	x := sptensor.New(4, 5)
	x.Append([]int32{0, 1}, 1.5)
	x.Append([]int32{2, 3}, -2.0)
	x.Append([]int32{3, 4}, 0.5)
	return x
}

func TestCorruptValuesDeterministic(t *testing.T) {
	a, b := testTensor(), testTensor()
	New(7).CorruptValues(a, 2)
	New(7).CorruptValues(b, 2)
	nan := 0
	for e := range a.Vals {
		if math.IsNaN(a.Vals[e]) != math.IsNaN(b.Vals[e]) {
			t.Fatalf("entry %d differs between same-seed injectors", e)
		}
		if math.IsNaN(a.Vals[e]) {
			nan++
		}
	}
	if nan == 0 {
		t.Fatal("CorruptValues(2) left no NaN")
	}
}

func TestCorruptCoordGoesOutOfRange(t *testing.T) {
	x := testTensor()
	if !New(3).CorruptCoord(x) {
		t.Fatal("CorruptCoord reported no corruption")
	}
	if err := x.Validate(); err == nil {
		t.Fatal("corrupted tensor still validates")
	}
}

func TestFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TruncateFile(path, 4); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "012345" {
		t.Fatalf("truncated to %q", data)
	}
	if err := New(1).BitFlip(path); err != nil {
		t.Fatal(err)
	}
	flipped, _ := os.ReadFile(path)
	diff := 0
	for i := range flipped {
		if flipped[i] != "012345"[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("BitFlip changed %d bytes, want exactly 1", diff)
	}
}

func TestPlanHook(t *testing.T) {
	plan := Plan{
		NotSPD:  map[int]int{3: 2},
		PanicAt: map[int]bool{5: true},
	}
	hook := plan.Hook()
	// Forced non-SPD is consumed exactly twice, first attempt only.
	for i := 0; i < 2; i++ {
		err := hook(resilience.Fault{Stage: resilience.StageFactorize, Slice: 3})
		if !errors.Is(err, dense.ErrNotSPD) {
			t.Fatalf("call %d: got %v, want ErrNotSPD", i, err)
		}
	}
	if err := hook(resilience.Fault{Stage: resilience.StageFactorize, Slice: 3}); err != nil {
		t.Fatalf("third call still fails: %v", err)
	}
	if err := hook(resilience.Fault{Stage: resilience.StageFactorize, Slice: 3, Attempt: 1}); err != nil {
		t.Fatalf("retry attempt should not be failed: %v", err)
	}
	// The panic fires once, then the slice is clean.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("no panic at scheduled slice")
			}
		}()
		hook(resilience.Fault{Stage: resilience.StageIterate, Slice: 5, Iter: 1})
	}()
	if err := hook(resilience.Fault{Stage: resilience.StageIterate, Slice: 5, Iter: 2}); err != nil {
		t.Fatal(err)
	}
	// Independent consumption state per compiled hook.
	if err := plan.Hook()(resilience.Fault{Stage: resilience.StageFactorize, Slice: 3}); !errors.Is(err, dense.ErrNotSPD) {
		t.Fatal("second compiled hook shares state with the first")
	}
}
