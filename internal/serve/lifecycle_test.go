package serve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"spstream/internal/core"
	"spstream/internal/resilience"
)

// TestRunGracefulShutdown drives the full daemon lifecycle over real
// HTTP: serve, ingest, cancel (the SIGTERM path), drain, final
// checkpoint — then restart and verify the restored model resumes at
// the same slice counter with identical published factors.
func TestRunGracefulShutdown(t *testing.T) {
	ckptDir := t.TempDir()
	cfg := Config{
		Dims:          []int{8, 6},
		Options:       core.Options{Rank: 2, Seed: 1},
		WindowEvents:  4,
		QueueCap:      8,
		CheckpointDir: ckptDir,
		DrainTimeout:  10 * time.Second,
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx, ln) }()

	// Ingest 5 windows (the last via flush) and wait for them to solve.
	var body strings.Builder
	for i := 0; i < 18; i++ {
		fmt.Fprintf(&body, "%d %d 1.0\n", i%8+1, i%6+1)
	}
	resp, err := http.Post(base+"/v1/ingest?flush=1", "text/plain", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d", resp.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.Snapshot().T < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d slices solved before deadline", srv.Snapshot().T)
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("Run returned %v after graceful shutdown", err)
	}
	if got := len(resilience.ListCheckpoints(ckptDir)); got == 0 {
		t.Fatal("no final checkpoint written")
	}
	final := srv.Snapshot()

	// Restart: New restores the newest checkpoint.
	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	restored := srv2.Snapshot()
	if restored.T != final.T {
		t.Fatalf("restored T = %d, want %d", restored.T, final.T)
	}
	if !restored.Equal(final) {
		t.Fatal("restored snapshot differs from the pre-shutdown model")
	}
}
