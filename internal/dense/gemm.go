package dense

import "spstream/internal/parallel"

// The products below cover the shapes CP-stream needs:
//
//   MulAB   C = A·B        (I×K)·(K×K) → I×K   factor × Gram transform
//   MulAtB  C = Aᵀ·B       (I×K)ᵀ·(I×K) → K×K  cross-Gram H = A_{t-1}ᵀA
//   MulABt  C = A·Bᵀ       (I×K)·(K×K)ᵀ → I×K  solve against Cholesky out
//   Gram    C = Aᵀ·A       (I×K) → K×K         SYRK-style symmetric Gram
//
// The long dimension (rows of A) is blocked and parallelized; the K×K
// inner kernels stay dense and sequential.

// MulAB computes dst = a·b where a is m×k and b is k×n. dst must be m×n
// and must not alias a or b.
func MulAB(dst, a, b *Matrix) { MulABParallel(dst, a, b, 1) }

// MulABParallel is MulAB with the row dimension parallelized over the
// given number of workers.
func MulABParallel(dst, a, b *Matrix, workers int) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("dense: MulAB shape mismatch")
	}
	n := b.Cols
	parallel.For(a.Rows, workers, func(_ int, r parallel.Range) {
		for i := r.Lo; i < r.Hi; i++ {
			ra := a.Row(i)
			rd := dst.Row(i)
			for j := range rd {
				rd[j] = 0
			}
			// k-outer loop: stream rows of b, accumulate into rd.
			for kk, av := range ra {
				if av == 0 {
					continue
				}
				rb := b.Data[kk*b.Stride : kk*b.Stride+n]
				for j, bv := range rb {
					rd[j] += av * bv
				}
			}
		}
	})
}

// MulAtB computes dst = aᵀ·b where a is m×ka and b is m×kb; dst must be
// ka×kb and must not alias a or b. Parallelized over row blocks of the
// shared m dimension with per-worker partial accumulators reduced in
// worker order (deterministic).
func MulAtB(dst, a, b *Matrix) { MulAtBParallel(dst, a, b, 1) }

// MulAtBParallel is MulAtB parallelized over the shared row dimension.
func MulAtBParallel(dst, a, b *Matrix, workers int) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("dense: MulAtB shape mismatch")
	}
	ka, kb := a.Cols, b.Cols
	ranges := parallel.Partition(a.Rows, workers)
	if len(ranges) <= 1 {
		dst.Zero()
		mulAtBRange(dst, a, b, 0, a.Rows)
		return
	}
	partials := make([]*Matrix, len(ranges))
	parallel.For(len(ranges), len(ranges), func(w int, r parallel.Range) {
		for t := r.Lo; t < r.Hi; t++ {
			p := NewMatrix(ka, kb)
			mulAtBRange(p, a, b, ranges[t].Lo, ranges[t].Hi)
			partials[t] = p
		}
	})
	dst.Zero()
	for _, p := range partials {
		AXPY(dst, 1, p)
	}
}

// mulAtBRange accumulates aᵀb over rows [lo,hi) into dst (+=).
func mulAtBRange(dst, a, b *Matrix, lo, hi int) {
	kb := b.Cols
	for i := lo; i < hi; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for p, av := range ra {
			if av == 0 {
				continue
			}
			rd := dst.Data[p*dst.Stride : p*dst.Stride+kb]
			for q, bv := range rb {
				rd[q] += av * bv
			}
		}
	}
}

// MulABt computes dst = a·bᵀ where a is m×k and b is n×k; dst must be m×n
// and must not alias a or b.
func MulABt(dst, a, b *Matrix) { MulABtParallel(dst, a, b, 1) }

// MulABtParallel is MulABt with the row dimension parallelized.
func MulABtParallel(dst, a, b *Matrix, workers int) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("dense: MulABt shape mismatch")
	}
	parallel.For(a.Rows, workers, func(_ int, r parallel.Range) {
		for i := r.Lo; i < r.Hi; i++ {
			ra := a.Row(i)
			rd := dst.Row(i)
			for j := 0; j < b.Rows; j++ {
				rb := b.Row(j)
				sum := 0.0
				for p, av := range ra {
					sum += av * rb[p]
				}
				rd[j] = sum
			}
		}
	})
}

// Gram computes dst = aᵀ·a (K×K symmetric) exploiting symmetry: only the
// upper triangle is accumulated, then mirrored.
func Gram(dst, a *Matrix) { GramParallel(dst, a, 1) }

// GramParallel is Gram with the row dimension parallelized via
// deterministic per-worker partials.
func GramParallel(dst, a *Matrix, workers int) {
	if dst.Rows != a.Cols || dst.Cols != a.Cols {
		panic("dense: Gram shape mismatch")
	}
	k := a.Cols
	ranges := parallel.Partition(a.Rows, workers)
	accumulate := func(p *Matrix, lo, hi int) {
		for i := lo; i < hi; i++ {
			row := a.Row(i)
			for x, vx := range row {
				if vx == 0 {
					continue
				}
				rp := p.Data[x*p.Stride : x*p.Stride+k]
				for y := x; y < k; y++ {
					rp[y] += vx * row[y]
				}
			}
		}
	}
	if len(ranges) <= 1 {
		dst.Zero()
		accumulate(dst, 0, a.Rows)
	} else {
		partials := make([]*Matrix, len(ranges))
		parallel.For(len(ranges), len(ranges), func(_ int, r parallel.Range) {
			for t := r.Lo; t < r.Hi; t++ {
				p := NewMatrix(k, k)
				accumulate(p, ranges[t].Lo, ranges[t].Hi)
				partials[t] = p
			}
		})
		dst.Zero()
		for _, p := range partials {
			AXPY(dst, 1, p)
		}
	}
	// Mirror the upper triangle to the lower.
	for x := 0; x < k; x++ {
		for y := x + 1; y < k; y++ {
			dst.Data[y*dst.Stride+x] = dst.Data[x*dst.Stride+y]
		}
	}
}

// OuterProduct computes dst = u·vᵀ for vectors u (len m) and v (len n);
// dst must be m×n.
func OuterProduct(dst *Matrix, u, v []float64) {
	if dst.Rows != len(u) || dst.Cols != len(v) {
		panic("dense: OuterProduct shape mismatch")
	}
	for i, uv := range u {
		row := dst.Row(i)
		for j, vv := range v {
			row[j] = uv * vv
		}
	}
}

// MulVec computes dst = a·x for a m×k matrix and length-k vector.
func MulVec(dst []float64, a *Matrix, x []float64) {
	if len(dst) != a.Rows || len(x) != a.Cols {
		panic("dense: MulVec shape mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		sum := 0.0
		for j, v := range row {
			sum += v * x[j]
		}
		dst[i] = sum
	}
}

// MulVecT computes dst = aᵀ·x for a m×k matrix and length-m vector x;
// dst has length k.
func MulVecT(dst []float64, a *Matrix, x []float64) {
	if len(dst) != a.Cols || len(x) != a.Rows {
		panic("dense: MulVecT shape mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		xi := x[i]
		if xi == 0 {
			continue
		}
		for j, v := range row {
			dst[j] += xi * v
		}
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(u, v []float64) float64 {
	if len(u) != len(v) {
		panic("dense: Dot length mismatch")
	}
	sum := 0.0
	for i, x := range u {
		sum += x * v[i]
	}
	return sum
}
