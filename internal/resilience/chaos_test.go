package resilience_test

// Chaos tests: a corrupted 40-slice stream must survive end to end
// under the SkipSlice policy, with every fault class — NaN-poisoned
// values, an out-of-range coordinate that panics inside a parallel
// kernel, and a forced non-SPD factorization — either recovered or
// cleanly skipped, and the surviving fit within tolerance of a clean
// run. These live outside package resilience (which must not import
// core) and drive the real decomposer.

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"spstream/internal/core"
	"spstream/internal/resilience"
	"spstream/internal/resilience/faultinject"
	"spstream/internal/sptensor"
	"spstream/internal/synth"
)

const chaosSlices = 40

func chaosStream(t *testing.T, seed uint64) *sptensor.Stream {
	t.Helper()
	s, err := synth.Generate(synth.Config{
		Name:        "chaos",
		Dists:       []synth.IndexDist{synth.Uniform{N: 30}, synth.Uniform{N: 40}},
		T:           chaosSlices,
		NNZPerSlice: 400,
		Values:      synth.ValuePlanted,
		PlantedRank: 3,
		NoiseStd:    0.01,
		Seed:        seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func cloneStream(s *sptensor.Stream) *sptensor.Stream {
	out := &sptensor.Stream{Dims: append([]int(nil), s.Dims...)}
	for _, x := range s.Slices {
		out.Slices = append(out.Slices, x.Clone())
	}
	return out
}

func meanFit(results []core.SliceResult) float64 {
	sum, n := 0.0, 0
	for _, r := range results {
		if !r.Skipped && !math.IsNaN(r.Fit) {
			sum += r.Fit
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

func newChaosDecomposer(t *testing.T, dims []int, cfg *resilience.Config) *core.Decomposer {
	t.Helper()
	d, err := core.NewDecomposer(dims, core.Options{
		Rank:       4,
		Workers:    4,
		TrackFit:   true,
		Seed:       11,
		Resilience: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestChaosStreamSurvives is the headline acceptance scenario: NaN
// slices, a corrupt coordinate (a genuine kernel panic in a pool
// worker), and a forced ErrNotSPD, processed with the input scan
// disabled so every fault reaches the hard recovery paths.
func TestChaosStreamSurvives(t *testing.T) {
	clean := chaosStream(t, 42)
	dirty := cloneStream(clean)
	inj := faultinject.New(99)
	// Three NaN-poisoned slices and one slice whose coordinate is out
	// of range (panics inside the MTTKRP kernel).
	nanSlices := []int{5, 17, 29}
	for _, i := range nanSlices {
		inj.CorruptValues(dirty.Slices[i], 3)
	}
	if !inj.CorruptCoord(dirty.Slices[11]) {
		t.Fatal("coordinate corruption did not apply")
	}
	// One forced non-SPD factorization early, before any skip shifts
	// the slice counter; the Gram is actually fine, so the ridge ladder
	// must rescue it and the slice must succeed.
	plan := faultinject.Plan{NotSPD: map[int]int{2: 1}}

	cfg := &resilience.Config{
		Policy:           resilience.SkipSlice,
		DisableInputScan: true,
		FaultHook:        plan.Hook(),
	}
	d := newChaosDecomposer(t, dirty.Dims, cfg)
	results, err := d.ProcessStreamContext(context.Background(), dirty.Source(), nil)
	if err != nil {
		t.Fatalf("chaos stream died: %v", err)
	}
	if len(results) != chaosSlices {
		t.Fatalf("got %d results, want %d", len(results), chaosSlices)
	}
	skipped := 0
	for _, r := range results {
		if r.Skipped {
			skipped++
		}
	}
	if want := len(nanSlices) + 1; skipped != want {
		t.Errorf("skipped %d slices, want %d", skipped, want)
	}
	st := d.ResilienceStats()
	if st.SlicesSkipped != skipped {
		t.Errorf("stats.SlicesSkipped = %d, want %d", st.SlicesSkipped, skipped)
	}
	if st.PanicsRecovered == 0 {
		t.Error("no panics recovered; the corrupt coordinate should panic a kernel")
	}
	if st.RidgeRecoveries == 0 {
		t.Error("no ridge recoveries; the forced non-SPD should be rescued")
	}
	if st.Rollbacks < skipped {
		t.Errorf("rollbacks %d < skips %d", st.Rollbacks, skipped)
	}
	if st.SliceRetries == 0 {
		t.Error("no slice retries recorded")
	}

	// The surviving slices must still track the planted model: mean fit
	// within tolerance of an identical decomposer run on the clean
	// stream.
	dClean := newChaosDecomposer(t, clean.Dims, nil)
	cleanResults, err := dClean.ProcessStream(clean.Source(), nil)
	if err != nil {
		t.Fatal(err)
	}
	fitChaos, fitClean := meanFit(results), meanFit(cleanResults)
	if math.IsNaN(fitChaos) || math.Abs(fitChaos-fitClean) > 0.15 {
		t.Errorf("chaos mean fit %.4f vs clean %.4f (tolerance 0.15)", fitChaos, fitClean)
	}
	if d.T() != chaosSlices-skipped {
		t.Errorf("slice counter %d, want %d processed", d.T(), chaosSlices-skipped)
	}
}

// TestChaosInputScanRejects runs the same corruptions with the input
// scan on: every poisoned slice is rejected before touching the
// kernels, with no rollbacks or panics needed.
func TestChaosInputScanRejects(t *testing.T) {
	dirty := cloneStream(chaosStream(t, 42))
	inj := faultinject.New(99)
	inj.CorruptValues(dirty.Slices[5], 3)
	inj.CorruptCoord(dirty.Slices[11])

	d := newChaosDecomposer(t, dirty.Dims, &resilience.Config{Policy: resilience.SkipSlice})
	results, err := d.ProcessStreamContext(context.Background(), dirty.Source(), nil)
	if err != nil {
		t.Fatalf("stream died: %v", err)
	}
	if len(results) != chaosSlices {
		t.Fatalf("got %d results, want %d", len(results), chaosSlices)
	}
	st := d.ResilienceStats()
	if st.InputRejects != 2 {
		t.Errorf("InputRejects = %d, want 2", st.InputRejects)
	}
	if st.SlicesSkipped != 2 {
		t.Errorf("SlicesSkipped = %d, want 2", st.SlicesSkipped)
	}
	if st.PanicsRecovered != 0 || st.Rollbacks != 0 {
		t.Errorf("scan-on run needed hard recovery: %+v", st)
	}
}

// TestChaosAbortPolicy: with the default Abort policy a poisoned slice
// stops the stream with an error, and the decomposer is left at the
// last-good snapshot (slice counter = slices completed).
func TestChaosAbortPolicy(t *testing.T) {
	dirty := cloneStream(chaosStream(t, 42))
	faultinject.New(7).CorruptValues(dirty.Slices[4], 2)

	d := newChaosDecomposer(t, dirty.Dims, &resilience.Config{
		Policy:           resilience.Abort,
		DisableInputScan: true,
	})
	results, err := d.ProcessStreamContext(context.Background(), dirty.Source(), nil)
	if err == nil {
		t.Fatal("abort policy swallowed the poisoned slice")
	}
	if errors.Is(err, resilience.ErrSliceSkipped) {
		t.Fatal("abort policy must not skip")
	}
	if len(results) != 4 || d.T() != 4 {
		t.Fatalf("got %d results, T=%d; want 4 completed slices before the abort", len(results), d.T())
	}
}

// TestChaosStallTimeout: a hook-injected stall trips the per-slice
// deadline; under RetrySlice the retry (not stalled) succeeds and the
// stream finishes complete.
func TestChaosStallTimeout(t *testing.T) {
	s := chaosStream(t, 43)
	// The timeout must sit well above the honest solve time even with
	// race-detector instrumentation (which slows solves ~10×), or the
	// un-stalled retry itself trips the deadline and the test flakes.
	d := newChaosDecomposer(t, s.Dims, &resilience.Config{
		Policy:       resilience.RetrySlice,
		SliceTimeout: 300 * time.Millisecond,
		FaultHook:    faultinject.Plan{StallAt: map[int]time.Duration{3: 500 * time.Millisecond}}.Hook(),
	})
	results, err := d.ProcessStreamContext(context.Background(), s.Source(), nil)
	if err != nil {
		t.Fatalf("stalled slice not recovered: %v", err)
	}
	if len(results) != chaosSlices {
		t.Fatalf("got %d results, want %d", len(results), chaosSlices)
	}
	st := d.ResilienceStats()
	if st.Timeouts == 0 || st.SliceRetries == 0 {
		t.Errorf("expected a timeout and a retry, got %+v", st)
	}
}

// TestChaosHookPanicContained: a hook panic at an iteration boundary
// (outside any pool worker) is also contained, rolled back, and the
// retry succeeds.
func TestChaosHookPanicContained(t *testing.T) {
	s := chaosStream(t, 44)
	d := newChaosDecomposer(t, s.Dims, &resilience.Config{
		Policy:    resilience.RetrySlice,
		FaultHook: faultinject.Plan{PanicAt: map[int]bool{6: true}}.Hook(),
	})
	results, err := d.ProcessStreamContext(context.Background(), s.Source(), nil)
	if err != nil {
		t.Fatalf("hook panic not recovered: %v", err)
	}
	if len(results) != chaosSlices {
		t.Fatalf("got %d results, want %d", len(results), chaosSlices)
	}
	st := d.ResilienceStats()
	if st.PanicsRecovered != 1 || st.Rollbacks != 1 {
		t.Errorf("got %+v, want exactly one recovered panic and one rollback", st)
	}
}
