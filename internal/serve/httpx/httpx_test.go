package httpx

import (
	"net/http"
	"testing"
	"time"
)

func TestRetryAfterSecondsRendering(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},                      // floor 1: never invite a busy-poll
		{-5 * time.Second, "1"},       // negative clamps up too
		{time.Millisecond, "1"},       // sub-second ceils to 1
		{999 * time.Millisecond, "1"}, // still sub-second
		{time.Second, "1"},
		{1001 * time.Millisecond, "2"}, // just past a boundary rounds up
		{1500 * time.Millisecond, "2"},
		{2 * time.Second, "2"},
		{59*time.Second + time.Nanosecond, "60"},
		{5 * time.Minute, "300"},
	}
	for _, c := range cases {
		if got := RetryAfterSeconds(c.d); got != c.want {
			t.Errorf("RetryAfterSeconds(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestParseRetryAfterDeltaSeconds(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, false},
		{"  ", 0, false},
		{"nonsense", 0, false},
		{"-3", 0, false},
		{"1.5", 0, false}, // delta-seconds is an integer per RFC 7231
		{"0", 0, true},    // retry immediately
		{"1", time.Second, true},
		{" 7 ", 7 * time.Second, true},
		{"300", 5 * time.Minute, true},
	}
	for _, c := range cases {
		got, ok := ParseRetryAfter(c.in, now)
		if got != c.want || ok != c.ok {
			t.Errorf("ParseRetryAfter(%q) = (%v, %v), want (%v, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestParseRetryAfterHTTPDate(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	future := now.Add(42 * time.Second)
	if got, ok := ParseRetryAfter(future.Format(http.TimeFormat), now); !ok || got != 42*time.Second {
		t.Errorf("future HTTP-date = (%v, %v), want (42s, true)", got, ok)
	}
	past := now.Add(-time.Hour)
	if got, ok := ParseRetryAfter(past.Format(http.TimeFormat), now); !ok || got != 0 {
		t.Errorf("past HTTP-date = (%v, %v), want (0, true)", got, ok)
	}
}

// TestRetryAfterRoundTrip proves the shard's rendering and the
// gateway's parsing agree: for any duration, the wire value parses back
// to a wait of at least the original (the ceil) and at least one
// second.
func TestRetryAfterRoundTrip(t *testing.T) {
	now := time.Now()
	for _, d := range []time.Duration{
		0, time.Nanosecond, 10 * time.Millisecond, 999 * time.Millisecond,
		time.Second, 1200 * time.Millisecond, 5 * time.Second,
		59*time.Second + 500*time.Millisecond, 2 * time.Minute,
	} {
		back, ok := ParseRetryAfter(RetryAfterSeconds(d), now)
		if !ok {
			t.Fatalf("round trip of %v failed to parse", d)
		}
		if back < d {
			t.Errorf("round trip of %v lost time: parsed %v", d, back)
		}
		if back < time.Second {
			t.Errorf("round trip of %v = %v, want ≥ 1s", d, back)
		}
		if back > d+time.Second {
			t.Errorf("round trip of %v overshot: parsed %v", d, back)
		}
	}
}
