package core

import (
	"fmt"
	"math"
	"testing"
)

// Golden regression test: a fixed small stream through every algorithm
// must keep producing the same summary statistics (rounded to absorb
// architecture-level FMA differences). This guards the numerical core
// against silent drift from refactoring — if an intentional algorithm
// change moves these values, regenerate them with -run Golden -v and
// update the table alongside the change.
func TestGoldenTrajectories(t *testing.T) {
	golden := map[Algorithm][]string{
		Baseline:   {"fit=0.6695 iters=20", "fit=0.5551 iters=20", "fit=0.5442 iters=20"},
		Optimized:  {"fit=0.6695 iters=20", "fit=0.5551 iters=20", "fit=0.5442 iters=20"},
		SpCPStream: {"fit=0.6695 iters=20", "fit=0.5551 iters=20", "fit=0.5442 iters=20"},
	}
	s := testStream(t, 777, []int{8, 9, 7}, 1500, 3)
	for alg, want := range golden {
		d, err := NewDecomposer(s.Dims, Options{
			Rank: 4, Algorithm: alg, Seed: 11, Workers: 1, TrackFit: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for ti, x := range s.Slices {
			res, err := d.ProcessSlice(x)
			if err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
			got := fmt.Sprintf("fit=%.4f iters=%d", round4(res.Fit), res.Iters)
			if got != want[ti] {
				t.Fatalf("%v slice %d: got %q want %q (if the change is intentional, update the golden table)",
					alg, ti, got, want[ti])
			}
		}
	}
}

func round4(v float64) float64 {
	return math.Round(v*1e4) / 1e4
}
