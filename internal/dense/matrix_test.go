package dense

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 4 {
		t.Fatalf("unexpected shape: %+v", m)
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("NewMatrix not zeroed")
		}
	}
}

func TestNewMatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimensions")
		}
	}()
	NewMatrix(-1, 2)
}

func TestFromRowsAndAt(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.At(0, 0) != 1 || m.At(2, 1) != 6 {
		t.Fatalf("FromRows wrong contents: %v", m)
	}
	m.Set(1, 0, 9)
	if m.At(1, 0) != 9 {
		t.Fatal("Set/At mismatch")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	m := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("Identity[%d][%d] = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestRowViewSharesStorage(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}})
	v := m.RowView(1, 3)
	if v.Rows != 2 || v.Cols != 2 {
		t.Fatalf("view shape %d×%d", v.Rows, v.Cols)
	}
	v.Set(0, 0, 42)
	if m.At(1, 0) != 42 {
		t.Fatal("RowView does not share storage")
	}
	if v.At(1, 1) != 6 {
		t.Fatalf("view contents wrong: %v", v.At(1, 1))
	}
}

func TestRowViewOutOfRangePanics(t *testing.T) {
	m := NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.RowView(1, 3)
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T shape %d×%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		m := randomMatrix(seed, 5, 3)
		return m.T().T().Equal(m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMaxAbsDiffAndEqual(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{1, 2.5}, {3, 4}})
	if d := a.MaxAbsDiff(b); d != 0.5 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
	if a.Equal(b, 0.4) {
		t.Fatal("Equal with tol 0.4 should fail")
	}
	if !a.Equal(b, 0.6) {
		t.Fatal("Equal with tol 0.6 should pass")
	}
}

func TestHasNaN(t *testing.T) {
	m := NewMatrix(2, 2)
	if m.HasNaN() {
		t.Fatal("zero matrix reported NaN")
	}
	m.Set(1, 1, math.NaN())
	if !m.HasNaN() {
		t.Fatal("NaN not detected")
	}
	m.Set(1, 1, math.Inf(1))
	if !m.HasNaN() {
		t.Fatal("Inf not detected")
	}
}

func TestZeroAndFill(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	m.Fill(7)
	for _, v := range m.Data {
		if v != 7 {
			t.Fatal("Fill failed")
		}
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

// randomMatrix builds a deterministic pseudo-random matrix for tests.
func randomMatrix(seed int64, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	state := uint64(seed)*2654435761 + 12345
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(int64(state%2000)-1000) / 250.0
	}
	for i := range m.Data {
		m.Data[i] = next()
	}
	return m
}
