package main

import (
	"os"
	"path/filepath"
	"testing"

	"spstream"
)

func writeTestTNS(t *testing.T) string {
	t.Helper()
	tensor := spstream.NewTensor(5, 6, 3)
	tensor.Append([]int32{0, 1, 0}, 1.5)
	tensor.Append([]int32{4, 5, 2}, 2.5)
	tensor.Append([]int32{2, 3, 1}, 3.5)
	path := filepath.Join(t.TempDir(), "x.tns")
	if err := spstream.SaveTNS(path, tensor); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadStreamFromFile(t *testing.T) {
	path := writeTestTNS(t)
	s, err := loadStream(path, 2, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.T() != 3 || len(s.Dims) != 2 {
		t.Fatalf("stream shape: T=%d dims=%v", s.T(), s.Dims)
	}
}

func TestLoadStreamFromPreset(t *testing.T) {
	s, err := loadStream("", -1, "uber", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if s.T() < 5 {
		t.Fatalf("preset stream too short: %d", s.T())
	}
}

func TestLoadStreamErrors(t *testing.T) {
	if _, err := loadStream("", -1, "", 0); err == nil {
		t.Fatal("no input accepted")
	}
	if _, err := loadStream("x.tns", 0, "uber", 1); err == nil {
		t.Fatal("both inputs accepted")
	}
	if _, err := loadStream(writeTestTNS(t), -1, "", 0); err == nil {
		t.Fatal("missing streammode accepted")
	}
	if _, err := loadStream(filepath.Join(t.TempDir(), "missing.tns"), 0, "", 0); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := loadStream("", -1, "bogus", 1); err == nil {
		t.Fatal("bogus preset accepted")
	}
}

func TestMainHelpDoesNotPanic(t *testing.T) {
	// Sanity: the binary builds and the flag set parses defaults (the
	// full main path is covered by the repo's smoke scripts).
	if os.Getenv("RUN_CPSTREAM_MAIN") == "" {
		t.Skip("main() exercised via smoke runs")
	}
}
