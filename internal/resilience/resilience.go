// Package resilience defines the fault-tolerance layer of the streaming
// runtime: recovery policies and counters for the guarded slice
// processing in internal/core, crash-safe checkpoint management, and
// the injection points the deterministic fault harness
// (internal/resilience/faultinject) hooks into.
//
// The design goal is that a long-running stream degrades instead of
// dying: a non-SPD Gram matrix triggers a bounded ridge-escalation
// ladder, a NaN-corrupted slice or a panicking kernel rolls the
// decomposer back to its last-good in-memory snapshot and applies a
// configurable policy, and checkpoints are written atomically with an
// integrity footer so a crash mid-write never leaves a state file that
// restores silently wrong.
package resilience

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"time"
)

// Policy selects what guarded slice processing does after the in-slice
// recovery ladder is exhausted and the decomposer has been rolled back
// to its last-good snapshot.
type Policy int

const (
	// Abort returns the error to the caller (the default). The
	// decomposer is left at the last-good snapshot, so the caller can
	// checkpoint or resume it.
	Abort Policy = iota
	// RetrySlice re-runs the whole slice from the snapshot up to
	// MaxSliceRetries times, then aborts. Useful when failures are
	// transient (stalls, injected faults, scheduling noise).
	RetrySlice
	// SkipSlice re-runs like RetrySlice, then drops the slice and
	// continues the stream, surfacing ErrSliceSkipped and counting the
	// skip in Stats.
	SkipSlice
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Abort:
		return "abort"
	case RetrySlice:
		return "retry"
	case SkipSlice:
		return "skip"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy parses "abort", "retry", or "skip".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "abort":
		return Abort, nil
	case "retry":
		return RetrySlice, nil
	case "skip":
		return SkipSlice, nil
	default:
		return Abort, fmt.Errorf("resilience: unknown policy %q (want abort, retry, skip)", s)
	}
}

// Structured error values. Callers match with errors.Is; the wrapping
// errors carry the slice index and root cause.
var (
	// ErrDiverged reports that the post-slice health check found
	// non-finite factors or an exploding convergence measure.
	ErrDiverged = errors.New("resilience: decomposition diverged")
	// ErrSliceSkipped reports that a slice was dropped under the
	// SkipSlice policy after its retries were exhausted. The decomposer
	// state is the last-good snapshot; the stream can continue.
	ErrSliceSkipped = errors.New("resilience: slice skipped")
	// ErrNoCheckpoint reports that a checkpoint directory held no
	// restorable checkpoint.
	ErrNoCheckpoint = errors.New("resilience: no valid checkpoint found")
)

// Config enables guarded slice processing when set on core.Options.
// The zero value is usable: Abort policy with the default recovery
// ladder, input and factor health checks on, and no slice deadline.
type Config struct {
	// Policy applied after in-slice recovery fails.
	Policy Policy
	// MaxFactorizeRetries bounds the ridge-escalation ladder run when a
	// Φ factorization returns dense.ErrNotSPD. Default 3.
	MaxFactorizeRetries int
	// RidgeBoost is the first escalation ridge, relative to tr(Φ)/K.
	// Default 1e-6.
	RidgeBoost float64
	// RidgeGrowth multiplies the ridge between ladder rungs. Default 100.
	RidgeGrowth float64
	// MaxSliceRetries bounds whole-slice re-runs (RetrySlice/SkipSlice
	// policies) after a rollback. Default 1.
	MaxSliceRetries int
	// SliceTimeout, when positive, is a per-slice deadline; a slice
	// exceeding it is abandoned at the next iteration boundary, rolled
	// back, and handed to the policy.
	SliceTimeout time.Duration
	// MaxDelta is the divergence guard on the per-slice convergence
	// measure δ; a slice finishing with δ > MaxDelta (or non-finite δ or
	// factors) fails the health check with ErrDiverged. Default 1e9.
	MaxDelta float64
	// FitFloor, when non-zero and fit tracking is enabled, fails the
	// health check for slices whose fit falls below it.
	FitFloor float64
	// DisableInputScan skips the pre-processing scan that rejects slices
	// with non-finite values or out-of-range coordinates. With the scan
	// off such slices reach the kernels, where NaNs surface as solver
	// failures and corrupt indices as contained panics — the harder
	// recovery paths the fault-injection tests exercise.
	DisableInputScan bool
	// Checkpoint, when non-nil, receives MaybeWrite after every
	// successfully processed slice during ProcessStreamContext.
	Checkpoint *Manager
	// FaultHook, when non-nil, is invoked at the named stages of guarded
	// slice processing; a non-nil return is treated as that stage
	// failing. Exists for the deterministic fault-injection harness and
	// must be nil in production.
	FaultHook Hook
}

// WithDefaults returns a copy with zero fields replaced by defaults.
func (c Config) WithDefaults() Config {
	if c.MaxFactorizeRetries <= 0 {
		c.MaxFactorizeRetries = 3
	}
	if c.RidgeBoost <= 0 {
		c.RidgeBoost = 1e-6
	}
	if c.RidgeGrowth <= 1 {
		c.RidgeGrowth = 100
	}
	if c.MaxSliceRetries < 0 {
		c.MaxSliceRetries = 0
	} else if c.MaxSliceRetries == 0 {
		c.MaxSliceRetries = 1
	}
	if c.MaxDelta <= 0 {
		c.MaxDelta = 1e9
	}
	return c
}

// Stage identifies an injection point inside guarded slice processing.
type Stage string

const (
	// StageBegin fires once per slice attempt, before the Pre work.
	StageBegin Stage = "begin"
	// StageIterate fires between inner iterations.
	StageIterate Stage = "iterate"
	// StageFactorize fires before every Φ Cholesky factorization; an
	// injected error is handled exactly like a factorization failure
	// (including the ridge-escalation ladder for ErrNotSPD).
	StageFactorize Stage = "factorize"
)

// Fault describes one injection point invocation.
type Fault struct {
	Stage Stage
	// Slice is the decomposer's slice counter (Decomposer.T()).
	Slice int
	// Iter is the inner iteration (0 during begin).
	Iter int
	// Attempt is the slice attempt number (0 = first run, >0 retries).
	Attempt int
}

// Hook is a fault-injection callback; returning a non-nil error makes
// the stage fail with it. A Hook may also sleep (to simulate stalls) or
// panic (to simulate kernel crashes).
type Hook func(Fault) error

// Stats are the per-stream recovery counters, readable via
// Decomposer.ResilienceStats. All counters are cumulative over the
// decomposer's lifetime.
type Stats struct {
	// SliceRetries counts whole-slice re-runs after a rollback.
	SliceRetries int
	// RidgeRetries counts ridge-escalation factorization attempts.
	RidgeRetries int
	// RidgeRecoveries counts factorizations rescued by the ladder.
	RidgeRecoveries int
	// PanicsRecovered counts kernel panics converted to slice errors.
	PanicsRecovered int
	// SlicesSkipped counts slices dropped under SkipSlice.
	SlicesSkipped int
	// Rollbacks counts restores of the last-good in-memory snapshot.
	Rollbacks int
	// HealthFailures counts post-slice health-check failures
	// (non-finite factors, exploding δ, fit floor).
	HealthFailures int
	// InputRejects counts slices rejected by the pre-processing scan.
	InputRejects int
	// Timeouts counts per-slice deadline expiries.
	Timeouts int
	// Cancellations counts slices abandoned because the caller's
	// context was cancelled.
	Cancellations int
	// CheckpointWrites and CheckpointErrors count periodic checkpoint
	// outcomes during ProcessStreamContext.
	CheckpointWrites int
	CheckpointErrors int
	// OverloadSheds counts slices the ingestion pipeline shed under
	// load (queue policy, staleness, or the drain deadline) instead of
	// solving.
	OverloadSheds int
	// OverloadCoalesced counts slices the ingestion pipeline merged
	// into a coarser slice under the Coalesce shed policy.
	OverloadCoalesced int
	// StaleSheds counts the subset of OverloadSheds dropped because
	// they exceeded the max-lag deadline between admission and solving.
	StaleSheds int
	// DrainedSlices counts slices processed during a graceful drain
	// (after the producer stopped, before shutdown).
	DrainedSlices int
	// BreakerOpens counts circuit-breaker open transitions (the solver
	// loop hit the consecutive-failure threshold, or a half-open probe
	// failed).
	BreakerOpens int
	// BreakerProbes counts half-open probe slices admitted after a
	// cooldown.
	BreakerProbes int
	// BreakerSheds counts slices refused at admission while the breaker
	// was open — the serving layer's distinct shed cause, kept separate
	// from the queue-policy and staleness sheds in OverloadSheds'
	// accounting.
	BreakerSheds int
	// SpilledSlices counts slices diverted to the durable on-disk WAL
	// backlog under the Spill shed policy instead of being dropped.
	SpilledSlices int
	// SpillReplayed counts slices read back from the WAL backlog into
	// the queue — both live drain as capacity freed and startup replay
	// after a crash.
	SpillReplayed int
	// SpillPending is the durable backlog still on disk when the stats
	// were folded: spilled (plus crash-recovered) minus replayed. These
	// slices are not lost — they are processed when capacity frees or
	// after a restart.
	SpillPending int
}

// renameFile is the rename step of AtomicWriteFile, indirected so the
// durability tests can inject a rename that fails (a crash between the
// temp write and the publish). Production code never replaces it.
var renameFile = os.Rename

// AtomicWriteFile writes a file via a temp file in the same directory,
// fsyncs it, renames it over path, and finally fsyncs the directory
// itself, so readers never observe a torn or partial file — an
// interrupted write leaves the previous content (or nothing) in place.
// The directory sync matters for crash durability: rename alone only
// updates the in-memory directory entry, and a power loss right after
// it can roll the directory back to the old name on some filesystems,
// losing the checkpoint the caller was just told exists.
func AtomicWriteFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := renameFile(tmpName, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// SyncDir fsyncs a directory, making a just-renamed or just-created
// entry durable. Filesystems that refuse to fsync directories (some
// network mounts) degrade to rename-only durability rather than
// failing the write. Exported for the ingest WAL, which follows the
// same create/rotate discipline for its segment files.
func SyncDir(dir string) error { return syncDir(dir) }

// syncDir fsyncs a directory, making a just-renamed entry durable.
// Filesystems that refuse to fsync directories (some network mounts)
// degrade to rename-only durability rather than failing the write.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}
