package sptensor

import (
	"math"
	"testing"
)

func TestChannelSource(t *testing.T) {
	ch := make(chan *Tensor, 2)
	src := NewChannelSource([]int{3, 3}, ch)
	if len(src.Dims()) != 2 {
		t.Fatal("dims wrong")
	}
	a := New(3, 3)
	a.Append([]int32{0, 0}, 1)
	ch <- a
	close(ch)
	if got := src.Next(); got == nil || got.NNZ() != 1 {
		t.Fatal("first slice wrong")
	}
	if src.Next() != nil {
		t.Fatal("closed channel should yield nil")
	}
}

func TestWindowAccumulator(t *testing.T) {
	w := NewWindowAccumulator([]int{4, 4}, 3)
	if out := w.Add(Event{Coord: []int32{0, 0}, Value: 1}); out != nil {
		t.Fatal("window emitted early")
	}
	if out := w.Add(Event{Coord: []int32{0, 0}, Value: 2}); out != nil {
		t.Fatal("window emitted early")
	}
	out := w.Add(Event{Coord: []int32{1, 1}, Value: 5})
	if out == nil {
		t.Fatal("full window did not emit")
	}
	// Duplicates coalesced: (0,0)=3, (1,1)=5.
	if out.NNZ() != 2 {
		t.Fatalf("coalesced nnz = %d", out.NNZ())
	}
	total := 0.0
	for _, v := range out.Vals {
		total += v
	}
	if total != 8 {
		t.Fatalf("mass = %v", total)
	}
	// Next window starts clean.
	if w.Flush() != nil {
		t.Fatal("fresh window should flush to nil")
	}
	w.Add(Event{Coord: []int32{2, 2}, Value: 7})
	fl := w.Flush()
	if fl == nil || fl.NNZ() != 1 {
		t.Fatal("flush of partial window wrong")
	}
	if w.Flush() != nil {
		t.Fatal("double flush should be nil")
	}
}

func TestWindowAccumulatorMinWindow(t *testing.T) {
	w := NewWindowAccumulator([]int{2, 2}, 0) // clamps to 1
	if out := w.Add(Event{Coord: []int32{0, 1}, Value: 1}); out == nil {
		t.Fatal("window of 1 should emit every event")
	}
}

// End-to-end: a producer goroutine feeds windows through a channel into
// a decomposer-style consumer loop.
func TestChannelSourceEndToEnd(t *testing.T) {
	ch := make(chan *Tensor)
	go func() {
		w := NewWindowAccumulator([]int{5, 5}, 4)
		for i := 0; i < 10; i++ {
			if out := w.Add(Event{Coord: []int32{int32(i % 5), int32((i * 2) % 5)}, Value: 1}); out != nil {
				ch <- out
			}
		}
		if out := w.Flush(); out != nil {
			ch <- out
		}
		close(ch)
	}()
	src := NewChannelSource([]int{5, 5}, ch)
	slices, events := 0, 0
	for {
		x := src.Next()
		if x == nil {
			break
		}
		slices++
		for _, v := range x.Vals {
			events += int(v)
		}
	}
	if slices != 3 { // 4+4+2 events
		t.Fatalf("slices = %d", slices)
	}
	if events != 10 {
		t.Fatalf("events = %d", events)
	}
}

func TestWindowAccumulatorRejectsMalformedEvents(t *testing.T) {
	w := NewWindowAccumulator([]int{4, 4}, 2)
	bad := []Event{
		{Coord: []int32{0}, Value: 1},     // wrong arity
		{Coord: []int32{4, 0}, Value: 1},  // out of range
		{Coord: []int32{-1, 0}, Value: 1}, // negative
		{Coord: []int32{0, 0}, Value: math.NaN()},
		{Coord: []int32{0, 0}, Value: math.Inf(1)},
	}
	for i, e := range bad {
		if out := w.Add(e); out != nil {
			t.Fatalf("bad event %d emitted a slice", i)
		}
	}
	if w.Rejected() != len(bad) {
		t.Fatalf("Rejected = %d, want %d", w.Rejected(), len(bad))
	}
	// Bad events do not advance the window: two good events still fill it.
	if out := w.Add(Event{Coord: []int32{1, 1}, Value: 2}); out != nil {
		t.Fatal("window emitted early")
	}
	out := w.Add(Event{Coord: []int32{2, 2}, Value: 3})
	if out == nil || out.NNZ() != 2 {
		t.Fatalf("good events lost: %v", out)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChannelSourceRejectsInvalidSlices(t *testing.T) {
	ch := make(chan *Tensor, 4)
	src := NewChannelSource([]int{3, 3}, ch)

	wrongShape := New(3, 4)
	corrupt := New(3, 3)
	corrupt.Append([]int32{0, 0}, 1)
	corrupt.Inds[0][0] = 7 // out of range
	good := New(3, 3)
	good.Append([]int32{1, 1}, 2)

	ch <- wrongShape
	ch <- nil
	ch <- corrupt
	ch <- good
	close(ch)

	got := src.Next()
	if got == nil || got.NNZ() != 1 || got.Vals[0] != 2 {
		t.Fatalf("Next did not skip to the valid slice: %v", got)
	}
	if src.Rejected() != 3 {
		t.Fatalf("Rejected = %d, want 3", src.Rejected())
	}
	if src.Next() != nil {
		t.Fatal("closed channel should yield nil")
	}
}
