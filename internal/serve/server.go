package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"spstream/internal/core"
	"spstream/internal/ingest"
	"spstream/internal/perfmodel"
	"spstream/internal/resilience"
	"spstream/internal/sptensor"
	"spstream/internal/trace"
)

// Config parameterizes a Server. Dims and Options are required; every
// zero field gets a production-safe default.
type Config struct {
	// Dims are the slice mode lengths the daemon decomposes.
	Dims []int
	// Options configures the decomposer. Options.Resilience should be
	// set for a daemon that must survive bad slices; WithServerDefaults
	// installs a SkipSlice policy when it is nil.
	Options core.Options

	// WindowEvents is the number of ingested events accumulated into
	// one slice. Default 1000.
	WindowEvents int

	// QueueCap, Policy, MaxLag and DrainTimeout configure the bounded
	// ingest pipeline. The default policy is DropNewest: the serving
	// layer translates the shed into a 429 so the producer — not the
	// queue — holds the backlog.
	QueueCap     int
	Policy       ingest.ShedPolicy
	MaxLag       time.Duration
	DrainTimeout time.Duration

	// SpillDir, when set, switches the shed policy to Spill: queue
	// overflow is appended to a crash-safe WAL under this directory and
	// replayed in admission order as capacity frees, instead of being
	// shed with a 429. Keep it on the same filesystem as CheckpointDir.
	// SpillMaxBytes caps the on-disk backlog (0 = unbounded; past the
	// cap overflow is shed again). SpillFsyncInterval is the WAL
	// group-commit window — how much freshly spilled data a hard crash
	// may lose; zero fsyncs every spilled window.
	SpillDir           string
	SpillMaxBytes      int64
	SpillFsyncInterval time.Duration

	// CheckpointDir, when set, arms crash-safe checkpointing: restore
	// the newest checkpoint at startup, write every CheckpointEvery
	// committed slices (default 10, keeping CheckpointKeep files,
	// default 3), and write a final checkpoint during graceful
	// shutdown.
	CheckpointDir   string
	CheckpointEvery int
	CheckpointKeep  int

	// BreakerFailures consecutive solver failures open the circuit
	// breaker (default 3); BreakerCooldown is the open→half-open delay
	// (default 5s).
	BreakerFailures int
	BreakerCooldown time.Duration

	// BodyLimit caps request body bytes (default 8 MiB);
	// RequestTimeout bounds every handler (default 30s).
	BodyLimit      int64
	RequestTimeout time.Duration

	// Shard identifies this daemon's slot in a row-sharded
	// spstream-cluster deployment (nil outside a cluster): the gateway
	// routes every event whose mode-0 coordinate falls in
	// [RowLo, RowHi) here. Purely informational to the daemon itself —
	// it is surfaced in /v1/stats so the gateway and operators can
	// audit that the topology and the shard's view of it agree.
	Shard *ShardInfo

	// Version is reported in /v1/stats (build-stamped by cmd/spstreamd).
	Version string

	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// ShardInfo is one daemon's slot in a row-sharded cluster: shard ID of
// Count owns the contiguous mode-0 row block [RowLo, RowHi), 0-based
// and half-open.
type ShardInfo struct {
	ID    int
	Count int
	RowLo int
	RowHi int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.WindowEvents <= 0 {
		c.WindowEvents = 1000
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 8
	}
	if c.Policy == ingest.Block {
		// Blocking admission would turn queue pressure into hung HTTP
		// requests; shedding + 429 is the serving-layer contract.
		c.Policy = ingest.DropNewest
	}
	if c.SpillDir != "" {
		// A spill directory arms the durable backlog: overflow rides the
		// WAL instead of being shed.
		c.Policy = ingest.Spill
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 10
	}
	if c.CheckpointKeep <= 0 {
		c.CheckpointKeep = 3
	}
	if c.BreakerFailures <= 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.BodyLimit <= 0 {
		c.BodyLimit = 8 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Options.Resilience == nil {
		// A serving daemon must outlive bad slices: retry once from the
		// snapshot, then drop the slice and keep the stream alive.
		c.Options.Resilience = &resilience.Config{Policy: resilience.SkipSlice}
	}
	return c
}

// statsView is the consumer-published copy of the state that is unsafe
// to read concurrently from handlers (decomposer counters). It is
// republished after every slice outcome.
type statsView struct {
	T          int
	Fit        float64
	Resilience resilience.Stats
	Layout     perfmodel.LayoutStats
	Remapped   bool
	HotFirst   bool
}

// Server is the daemon: decomposer + ingest pipeline + breaker + HTTP
// API. Create with New, serve with Run.
type Server struct {
	cfg     Config
	dec     *core.Decomposer
	pipe    *ingest.Pipeline
	breaker *resilience.Breaker
	ckpt    *resilience.Manager

	// snap is the published model; handlers only ever load it.
	snap atomic.Pointer[FactorSnapshot]
	// stats is the published copy of the consumer-side counters.
	stats atomic.Pointer[statsView]

	// accMu serializes the window accumulator and admission (POST
	// handlers are concurrent; the accumulator is not).
	accMu    sync.Mutex
	acc      *sptensor.WindowAccumulator
	rejected atomic.Int64

	draining atomic.Bool
	mux      *http.ServeMux
	httpSrv  *http.Server
}

// New builds the server: decomposer (restored from the newest
// checkpoint when CheckpointDir has one), pipeline, breaker, and
// routes. The pipeline is not started until Run.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg}

	var err error
	if cfg.CheckpointDir != "" {
		s.ckpt, err = resilience.NewManager(cfg.CheckpointDir, cfg.CheckpointEvery, cfg.CheckpointKeep)
		if err != nil {
			return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
		}
	}
	s.dec, err = core.NewDecomposer(cfg.Dims, cfg.Options)
	if err != nil {
		return nil, err
	}
	if s.ckpt != nil {
		path, err := s.ckpt.RestoreLatest(s.dec.RestoreState)
		switch {
		case err == nil:
			cfg.Logf("restored checkpoint %s (t=%d)", path, s.dec.T())
		case errors.Is(err, resilience.ErrNoCheckpoint):
			// Fresh start.
		default:
			return nil, fmt.Errorf("serve: restore: %w", err)
		}
	}

	s.breaker = resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: cfg.BreakerFailures,
		Cooldown:         cfg.BreakerCooldown,
	})
	s.acc = sptensor.NewWindowAccumulator(cfg.Dims, cfg.WindowEvents)

	// Snapshot publication rides the commit hook: it fires only after a
	// slice commits, on the consumer goroutine, with the decomposer
	// quiescent — the only moment a copy is both safe and guaranteed
	// never to be retracted by a later rollback.
	s.dec.SetCommitHook(func(res core.SliceResult) {
		s.snap.Store(TakeSnapshot(s.dec, res.Fit))
	})

	// The durable backlog replays from the offset bound to the restored
	// checkpoint, so a restart neither re-solves committed slices nor
	// drops admitted ones.
	var spill *ingest.SpillConfig
	if cfg.SpillDir != "" {
		spill = &ingest.SpillConfig{
			Dir:           cfg.SpillDir,
			MaxBytes:      cfg.SpillMaxBytes,
			FsyncInterval: cfg.SpillFsyncInterval,
			ReplayFrom:    s.dec.T(),
		}
	}
	s.pipe, err = ingest.New(s.dec, ingest.Config{
		QueueCap:     cfg.QueueCap,
		Policy:       cfg.Policy,
		MaxLag:       cfg.MaxLag,
		DrainTimeout: cfg.DrainTimeout,
		Spill:        spill,
		Gate:         s.breaker.Allow,
		OnResult:     s.onResult,
		OnError:      s.onError,
	})
	if err != nil {
		return nil, err
	}
	if spill != nil {
		if n := s.pipe.Stats().SpillRecovered; n > 0 {
			cfg.Logf("spill: recovered %d durable backlog slices (replay bound to t=%d)", n, spill.ReplayFrom)
		}
	}

	// The pre-stream snapshot: reads before the first committed slice
	// see the (restored or initial) state, never a 404 race.
	s.snap.Store(TakeSnapshot(s.dec, math.NaN()))
	s.publishStats(math.NaN())

	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// onResult runs on the pipeline's consumer goroutine after every
// committed slice: breaker success, periodic checkpoint, stats.
func (s *Server) onResult(res core.SliceResult) {
	s.breaker.OnSuccess()
	if s.ckpt != nil {
		t := s.dec.T()
		// The replay/offset protocol: durably bind the spill-consumption
		// offset BEFORE the checkpoint that depends on it, and only when a
		// checkpoint is actually due (each mark costs an fsync).
		if t > 0 && t%s.cfg.CheckpointEvery == 0 {
			if err := s.pipe.SpillMark(t); err != nil {
				s.cfg.Logf("spill offset commit failed: %v", err)
			}
		}
		if _, err := s.ckpt.MaybeWrite(t, s.dec); err != nil {
			s.cfg.Logf("checkpoint write failed: %v", err)
		}
	}
	s.publishStats(res.Fit)
}

// onError runs on the consumer goroutine for absorbed per-slice
// errors. Staleness (the max-lag deadline) is overload, not solver
// sickness — it must not open the breaker, or a traffic spike would be
// misdiagnosed as a broken solver and turn 429s into 503s.
func (s *Server) onError(err error) {
	if !errors.Is(err, context.DeadlineExceeded) {
		s.breaker.OnFailure()
		if st := s.breaker.Snapshot(); st.State == resilience.BreakerOpen {
			s.cfg.Logf("circuit breaker open after %d consecutive failures: %v", st.ConsecutiveFailures, err)
		}
	}
	s.publishStats(math.NaN())
}

// publishStats republishes the consumer-side counters (called only
// from the consumer goroutine or while the pipeline is quiescent).
func (s *Server) publishStats(fit float64) {
	rm, hot := s.dec.LastLayoutDecision()
	s.stats.Store(&statsView{
		T:          s.dec.T(),
		Fit:        fit,
		Resilience: s.dec.ResilienceStats(),
		Layout:     s.dec.LayoutStats(),
		Remapped:   rm,
		HotFirst:   hot,
	})
}

// Snapshot returns the current published model (never nil after New).
func (s *Server) Snapshot() *FactorSnapshot { return s.snap.Load() }

// Breaker exposes the circuit breaker (tests, stats).
func (s *Server) Breaker() *resilience.Breaker { return s.breaker }

// Overload snapshots the pipeline's overload counters.
func (s *Server) Overload() trace.OverloadSnapshot { return s.pipe.Stats() }

// Handler returns the fully wrapped HTTP handler: panic containment
// innermost, then the request deadline. The timeout wrapper replies
// 503 to requests that exceed RequestTimeout, so a wedged handler
// cannot accumulate goroutines without bound.
func (s *Server) Handler() http.Handler {
	var h http.Handler = s.mux
	h = s.recoverMiddleware(h)
	return http.TimeoutHandler(h, s.cfg.RequestTimeout, "request timed out\n")
}

// Run serves HTTP on ln until ctx is cancelled, then performs the
// graceful shutdown: stop admissions, flush the partial window, drain
// the backlog (bounded by DrainTimeout), fold the breaker counters,
// write the final checkpoint, and finish in-flight reads. It returns
// the fatal serve error, or nil after a clean drain.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	s.pipe.Start(context.Background())
	s.httpSrv = &http.Server{Handler: s.Handler()}

	serveErr := make(chan error, 1)
	go func() { serveErr <- s.httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	s.cfg.Logf("shutdown: draining")
	s.draining.Store(true) // readyz goes 503, ingest refuses

	// Flush the partial window into the queue before draining, so a
	// final sub-window of events is solved, not lost.
	s.accMu.Lock()
	if slice := s.acc.Flush(); slice != nil {
		_ = s.pipe.Offer(slice)
	}
	s.accMu.Unlock()

	snap := s.pipe.Drain(context.Background())
	// The pipeline is quiescent now: fold the breaker's counters into
	// the decomposer's recovery stats and republish.
	bs := s.breaker.Snapshot()
	s.dec.NoteBreaker(int(bs.Opens), int(bs.Probes), int(snap.ShedBreaker))
	s.publishStats(math.NaN())

	if s.ckpt != nil && s.dec.T() > 0 {
		if path, err := s.ckpt.Write(s.dec.T(), s.dec); err != nil {
			s.cfg.Logf("final checkpoint failed: %v", err)
		} else {
			s.cfg.Logf("final checkpoint: %s", path)
		}
	}

	// In-flight reads finish; new connections are refused.
	shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
	defer cancel()
	if err := s.httpSrv.Shutdown(shutCtx); err != nil {
		return err
	}
	<-serveErr // Serve has returned ErrServerClosed
	s.cfg.Logf("shutdown: complete (t=%d, %s)", s.dec.T(), snap.String())
	return nil
}
