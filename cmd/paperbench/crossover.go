package main

import (
	"fmt"

	"spstream/internal/perfmodel"
	"spstream/internal/synth"
)

// crossover maps spCP-stream's advantage over optimized CP-stream as a
// function of the mode length — the claim of §VI-E3 that the Gram-form
// reformulation pays off on "any tensors with very large dimension
// sizes": the slice's nonzero count is held fixed while one mode grows
// from a few times the nz-row count to ~100×, so the explicit
// algorithms' full-factor Historical products and row solves grow while
// spCP-stream's per-iteration cost stays pinned to the nz rows.
func (h *harness) crossover() error {
	h.header("Crossover — spCP-stream gain vs mode length (extension of §VI-E3)",
		"§VI-E3 (\"this behavior should occur in any tensors with very large dimension sizes\")")
	mo := h.perfModel()
	const nnz = 20000
	fmt.Fprintf(h.out, "%10s %14s %12s %12s %10s\n", "dim", "zeroRowFrac", "optimized(s)", "spCP(s)", "N/O")
	var rows [][]string
	for _, images := range []int{25000, 50000, 100000, 400000, 1600000} {
		cfg := synth.Config{
			Name: "crossover",
			Dists: []synth.IndexDist{
				synth.NewZipf(4000, 0.7),
				synth.Clustered{N: images, Window: images, Drift: images / 2, Revisit: 0.02},
				synth.NewZipf(20000, 0.7),
			},
			T:           3,
			NNZPerSlice: nnz,
			Seed:        3,
		}
		x, err := synth.GenerateSlice(cfg, 1)
		if err != nil {
			return err
		}
		prof := perfmodel.Profile(x)
		zeroFrac := 1 - float64(prof.Modes[1].NZRows)/float64(prof.Modes[1].Dim)
		o := mo.IterTime(perfmodel.AlgOptimized, prof, 16, 56, 6)
		n := mo.IterTime(perfmodel.AlgSpCP, prof, 16, 56, 6)
		fmt.Fprintf(h.out, "%10d %14.4f %12.6f %12.6f %9.1fx\n", images, zeroFrac, o, n, o/n)
		rows = append(rows, []string{itoa(images), ftoa(zeroFrac), ftoa(o), ftoa(n), ftoa(o / n)})
	}
	fmt.Fprintln(h.out, "\nexpected: the N/O gain grows with the mode length — the explicit")
	fmt.Fprintln(h.out, "algorithms pay O(Iₙ·K²) per iteration for the Historical term and row")
	fmt.Fprintln(h.out, "solves, while spCP-stream pays only O(|nz|·K² + K³).")
	return h.writeCSV("crossover", []string{"dim", "zero_row_frac", "optimized_s", "spcp_s", "gain"}, rows)
}
