package ingest

import (
	"sync/atomic"
	"time"

	"spstream/internal/core"
	"spstream/internal/trace"
)

// Tunable is the runtime tuning surface the controller drives —
// implemented by core.Decomposer (internal/core/tune.go). Wrappers
// (e.g. a test throttler) can embed a Decomposer to forward it.
type Tunable interface {
	MaxIters() int
	SetMaxIters(int)
	ADMMMaxIters() int
	SetADMMMaxIters(int)
	Algorithm() core.Algorithm
	SetAlgorithm(core.Algorithm) error
}

// ControllerConfig parameterizes the lag-aware degradation controller.
// The zero value gives the documented defaults.
type ControllerConfig struct {
	// HighWater is the queue-depth fraction at or above which the
	// controller steps the quality ladder down. Default 0.75.
	HighWater float64
	// LowWater is the queue-depth fraction at or below which a slice
	// counts as calm (a step-up candidate). Default 0.25.
	LowWater float64
	// MaxLag, when positive, is the target admission-to-solve lag: lag
	// beyond it is pressure regardless of queue depth, and calm
	// additionally requires lag ≤ MaxLag/2.
	MaxLag time.Duration
	// StepUpAfter is the hysteresis: consecutive calm slices required
	// before one step back up the ladder. Default 3. After a burst the
	// controller is therefore back at full quality within
	// level×StepUpAfter calm slices.
	StepUpAfter int
	// LagAlpha is the EWMA weight of the newest lag observation.
	// Default 0.3.
	LagAlpha float64
}

func (c ControllerConfig) withDefaults() ControllerConfig {
	if c.HighWater <= 0 || c.HighWater > 1 {
		c.HighWater = 0.75
	}
	if c.LowWater <= 0 || c.LowWater >= c.HighWater {
		c.LowWater = 0.25
		if c.LowWater >= c.HighWater {
			c.LowWater = c.HighWater / 2
		}
	}
	if c.StepUpAfter < 1 {
		c.StepUpAfter = 3
	}
	if c.LagAlpha <= 0 || c.LagAlpha > 1 {
		c.LagAlpha = 0.3
	}
	return c
}

// Ladder levels. Each level is applied absolutely (not incrementally),
// so the controller can jump to any level and land in a consistent
// configuration.
const (
	// levelFull is the configuration the decomposer was built with.
	levelFull = iota
	// levelFewerIters halves the inner (and ADMM) iteration bounds.
	levelFewerIters
	// levelWiderWindow additionally doubles the accumulation window
	// (producers poll WindowFactor).
	levelWiderWindow
	// levelFastAlg additionally switches to the cheapest compatible
	// algorithm (spCP-stream; constrained runs quarter their iteration
	// bounds instead) and quadruples the window.
	levelFastAlg
	numLevels
)

// Controller steps a quality ladder down under sustained overload and
// hysteretically back up once the pipeline catches up — the live
// path's analogue of the paper's own exactness/speed trade (spCP-
// stream): under pressure the model takes cheaper, coarser steps; at
// calm it returns to full fidelity.
//
// Observe is called by the pipeline's consumer loop between slices
// (the only time the Tunable may be mutated); Level and WindowFactor
// are safe to read from other goroutines.
type Controller struct {
	cfg ControllerConfig
	tun Tunable
	ov  *trace.Overload

	// Base configuration captured at construction — the "full quality"
	// the ladder restores to.
	baseIters, baseADMM int
	baseAlg             core.Algorithm

	level        atomic.Int32
	windowFactor atomic.Int32
	calmRun      int
	lagEWMA      time.Duration
}

// NewController captures tun's current configuration as full quality.
func NewController(tun Tunable, cfg ControllerConfig, ov *trace.Overload) *Controller {
	c := &Controller{
		cfg:       cfg.withDefaults(),
		tun:       tun,
		ov:        ov,
		baseIters: tun.MaxIters(),
		baseADMM:  tun.ADMMMaxIters(),
		baseAlg:   tun.Algorithm(),
	}
	c.windowFactor.Store(1)
	return c
}

// Level returns the current ladder level (0 = full quality).
func (c *Controller) Level() int { return int(c.level.Load()) }

// WindowFactor returns the multiplier producers should apply to the
// base accumulation window (1, 2, or 4). Safe for concurrent reads.
func (c *Controller) WindowFactor() int { return int(c.windowFactor.Load()) }

// LagEWMA returns the smoothed admission-to-solve lag.
func (c *Controller) LagEWMA() time.Duration { return c.lagEWMA }

// Observe feeds one post-slice measurement (or one shed event) into
// the controller: the queue depth just after the pop, the queue
// capacity, the slice's admission-to-solve lag, and the durable spill
// backlog (0 without the Spill policy). It applies at most one ladder
// transition per call.
//
// A growing spill backlog is a lag signal even while the in-memory
// queue looks healthy: every spilled slice is deferred work, and left
// alone it fills the disk. Any pending spill is therefore pressure,
// and calm — the hysteretic path back up the quality ladder — demands
// the spill tier be fully drained first, so the controller never
// restores quality while the disk still holds backlog.
func (c *Controller) Observe(depth, capacity int, lag time.Duration, spillPending int64) {
	if c.lagEWMA == 0 {
		c.lagEWMA = lag
	} else {
		c.lagEWMA += time.Duration(c.cfg.LagAlpha * float64(lag-c.lagEWMA))
	}
	c.ov.LagEWMANanos.Store(int64(c.lagEWMA))

	fill := float64(depth) / float64(capacity)
	pressure := fill >= c.cfg.HighWater ||
		(c.cfg.MaxLag > 0 && c.lagEWMA > c.cfg.MaxLag) ||
		spillPending > 0
	calm := fill <= c.cfg.LowWater && spillPending == 0 &&
		(c.cfg.MaxLag == 0 || c.lagEWMA <= c.cfg.MaxLag/2)

	level := int(c.level.Load())
	switch {
	case pressure && level < numLevels-1:
		c.calmRun = 0
		c.apply(level + 1)
		c.ov.DegradeSteps.Add(1)
	case calm && level > 0:
		c.calmRun++
		if c.calmRun >= c.cfg.StepUpAfter {
			c.calmRun = 0
			c.apply(level - 1)
			c.ov.RestoreSteps.Add(1)
		}
	case !calm:
		c.calmRun = 0
	}
}

// apply moves the Tunable to the given ladder level. Levels are
// absolute: each sets every knob from the captured base configuration.
func (c *Controller) apply(level int) {
	iters, admm := c.baseIters, c.baseADMM
	alg := c.baseAlg
	window := 1
	if level >= levelFewerIters {
		iters = max(2, c.baseIters/2)
		admm = max(5, c.baseADMM/2)
	}
	if level >= levelWiderWindow {
		window = 2
	}
	if level >= levelFastAlg {
		window = 4
		// The cheapest solve path: spCP-stream keeps untouched rows in
		// Gram form. Constrained models cannot take it (unless the
		// experimental extension is armed), so they deepen the
		// iteration cut instead.
		if c.tun.SetAlgorithm(core.SpCPStream) != nil {
			alg = c.tun.Algorithm()
			iters = max(1, c.baseIters/4)
			admm = max(2, c.baseADMM/4)
		} else {
			alg = core.SpCPStream
		}
	}
	if level < levelFastAlg && c.tun.Algorithm() != alg {
		// Stepping back up: restore the configured algorithm.
		if err := c.tun.SetAlgorithm(alg); err != nil {
			// Cannot happen for a base algorithm the decomposer was
			// built with, but stay consistent if it does.
			alg = c.tun.Algorithm()
		}
	}
	c.tun.SetMaxIters(iters)
	c.tun.SetADMMMaxIters(admm)
	c.windowFactor.Store(int32(window))
	c.level.Store(int32(level))
}
