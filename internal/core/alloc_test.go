package core

import (
	"testing"
)

// The steady-state inner iteration of every algorithm must be
// allocation-free: the begin phase compiles the per-slice plan and
// sizes all workspaces, after which the inner ALS loop — MTTKRP,
// historical term, Φ factorization, row solves, Gram refreshes, and the
// convergence check — runs entirely on Decomposer-owned storage. These
// are the regression tests the tentpole promises; a single closure or
// undersized buffer on the hot path fails them.
//
// Workers is pinned to 1 so every parallel helper takes its inline
// path regardless of GOMAXPROCS; the pool's own zero-spawn dispatch is
// covered by the parallel and mttkrp alloc tests with explicit pools.

func TestExplicitIterateZeroAlloc(t *testing.T) {
	for _, alg := range []Algorithm{Baseline, Optimized} {
		s := skewedStream(t, 314)
		d, err := NewDecomposer(s.Dims, Options{Rank: 4, Algorithm: alg, Seed: 7, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Prime cross-slice state (sHist growth, chol storage, psi).
		if _, err := d.ProcessSlice(s.Slices[0]); err != nil {
			t.Fatal(err)
		}
		run, err := d.beginExplicit(s.Slices[1])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.iterateExplicit(run); err != nil { // warm scratch
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := d.iterateExplicit(run); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v inner iteration allocates %.1f times per run, want 0", alg, allocs)
		}
	}
}

func TestSpCPIterateZeroAlloc(t *testing.T) {
	s := skewedStream(t, 314)
	d, err := NewDecomposer(s.Dims, Options{Rank: 4, Algorithm: SpCPStream, Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ProcessSlice(s.Slices[0]); err != nil {
		t.Fatal(err)
	}
	run, err := d.beginSpCP(s.Slices[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.iterateSpCP(run); err != nil { // warm scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := d.iterateSpCP(run); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("spCP inner iteration allocates %.1f times per run, want 0", allocs)
	}
}
