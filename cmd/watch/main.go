// Command watch runs a live streaming decomposition over an event feed:
// each input line is one event ("i j k value", 1-based coordinates, the
// value optional and defaulting to 1), events are windowed into slices,
// and after every window the tool prints the model's component summary —
// the end-to-end shape of the monitoring deployments the paper's
// introduction motivates ("topic monitoring, trend analysis").
//
// Examples:
//
//	tensorgen -preset uber -scale 0.1 -o - | watch -dims 24,110,170 -rank 8
//	tail -f events.log | watch -dims 100,100 -window 5000 -top 3
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"spstream"
)

func main() {
	var (
		dimsFlag = flag.String("dims", "", "mode lengths of each event's coordinates, comma separated (required)")
		window   = flag.Int("window", 10000, "events per window/slice")
		rank     = flag.Int("rank", 8, "decomposition rank")
		topN     = flag.Int("top", 3, "top rows to print per component")
		mu       = flag.Float64("mu", 0.95, "forgetting factor")
		alg      = flag.String("alg", "spcp", "algorithm: baseline, optimized, spcp")
	)
	flag.Parse()
	dims, err := parseDims(*dimsFlag)
	if err != nil {
		fatal(err)
	}
	algorithm, err := parseAlg(*alg)
	if err != nil {
		fatal(err)
	}
	if err := run(os.Stdin, os.Stdout, dims, *window, *rank, *topN, *mu, algorithm); err != nil {
		fatal(err)
	}
}

// run is the testable core: it consumes the event feed from r and
// writes per-window summaries to w.
func run(r io.Reader, w io.Writer, dims []int, window, rank, topN int, mu float64, alg spstream.Algorithm) error {
	dec, err := spstream.New(dims, spstream.Options{
		Rank:      rank,
		Algorithm: alg,
		Mu:        mu,
		TrackFit:  true,
		Normalize: true,
	})
	if err != nil {
		return err
	}
	acc := spstream.NewWindowAccumulator(dims, window)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	process := func(slice *spstream.Tensor) error {
		res, err := dec.ProcessSlice(slice)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "window %d: %d nnz, fit %.4f, %d iterations\n", res.T, res.NNZ, res.Fit, res.Iters)
		for rankPos, comp := range spstream.RankComponents(dec) {
			if rankPos >= 2 {
				break
			}
			fmt.Fprintf(w, "  component %d:", comp)
			for m := range dims {
				top := spstream.TopRows(dec, m, comp, topN)
				fmt.Fprintf(w, " mode%d=%s", m, rowList(top))
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ev, err := parseEvent(line, dims)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if slice := acc.Add(ev); slice != nil {
			if err := process(slice); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if slice := acc.Flush(); slice != nil {
		if err := process(slice); err != nil {
			return err
		}
	}
	if dec.T() == 0 {
		return fmt.Errorf("no complete windows in the input")
	}
	return nil
}

// parseEvent parses "i j k [value]" with 1-based coordinates.
func parseEvent(line string, dims []int) (spstream.Event, error) {
	fields := strings.Fields(line)
	if len(fields) != len(dims) && len(fields) != len(dims)+1 {
		return spstream.Event{}, fmt.Errorf("want %d coordinates (+ optional value), got %d fields", len(dims), len(fields))
	}
	ev := spstream.Event{Coord: make([]int32, len(dims)), Value: 1}
	for m := range dims {
		v, err := strconv.ParseInt(fields[m], 10, 32)
		if err != nil || v < 1 || int(v) > dims[m] {
			return spstream.Event{}, fmt.Errorf("bad coordinate %q for mode %d (dim %d)", fields[m], m, dims[m])
		}
		ev.Coord[m] = int32(v - 1)
	}
	if len(fields) == len(dims)+1 {
		v, err := strconv.ParseFloat(fields[len(dims)], 64)
		if err != nil {
			return spstream.Event{}, fmt.Errorf("bad value %q", fields[len(dims)])
		}
		ev.Value = v
	}
	return ev, nil
}

func parseDims(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("-dims is required")
	}
	var dims []int
	for _, part := range strings.Split(s, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d < 1 {
			return nil, fmt.Errorf("bad dimension %q", part)
		}
		dims = append(dims, d)
	}
	if len(dims) < 2 {
		return nil, fmt.Errorf("need at least 2 modes")
	}
	return dims, nil
}

func parseAlg(s string) (spstream.Algorithm, error) {
	switch s {
	case "baseline":
		return spstream.Baseline, nil
	case "optimized":
		return spstream.Optimized, nil
	case "spcp":
		return spstream.SpCPStream, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

func rowList(rows []spstream.RowWeight) string {
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = strconv.Itoa(r.Row + 1) // back to 1-based, matching the input
	}
	return "[" + strings.Join(parts, ",") + "]"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "watch:", err)
	os.Exit(1)
}
