package core

import (
	"math"
	"testing"

	"spstream/internal/admm"
	"spstream/internal/dense"
	"spstream/internal/sptensor"
)

// Rank larger than every mode length: Φ is rank-deficient before the
// ridge, and the solver must remain stable.
func TestRankExceedsModeLengths(t *testing.T) {
	dims := []int{4, 5}
	for _, alg := range []Algorithm{Optimized, SpCPStream} {
		d, err := NewDecomposer(dims, Options{Rank: 8, Algorithm: alg, Seed: 2, MaxIters: 5})
		if err != nil {
			t.Fatal(err)
		}
		x := sptensor.New(dims...)
		x.Append([]int32{0, 1}, 1)
		x.Append([]int32{3, 4}, 2)
		x.Append([]int32{2, 0}, -1)
		for i := 0; i < 3; i++ {
			if _, err := d.ProcessSlice(x); err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
		}
		for m := range dims {
			if d.Factor(m).HasNaN() {
				t.Fatalf("%v: NaN with rank > dims", alg)
			}
		}
	}
}

// More workers than rows, nonzeros, or modes must be harmless.
func TestOversubscribedWorkers(t *testing.T) {
	dims := []int{6, 7}
	d, err := NewDecomposer(dims, Options{Rank: 2, Workers: 64, Seed: 3, MaxIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	x := sptensor.New(dims...)
	x.Append([]int32{1, 1}, 1)
	if _, err := d.ProcessSlice(x); err != nil {
		t.Fatal(err)
	}
}

// SliceResult bookkeeping: NNZ echoes the slice, ADMMIters stays zero
// without a constraint, T increments, Fit is NaN unless tracked.
func TestSliceResultFields(t *testing.T) {
	s := testStream(t, 201, []int{10, 12}, 150, 3)
	d, err := NewDecomposer(s.Dims, Options{Rank: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.ProcessSlice(s.Slices[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.T != 0 || res.NNZ != s.Slices[0].NNZ() {
		t.Fatalf("result bookkeeping wrong: %+v", res)
	}
	if res.ADMMIters != 0 {
		t.Fatal("ADMMIters non-zero without a constraint")
	}
	if !math.IsNaN(res.Fit) {
		t.Fatal("Fit should be NaN when TrackFit is off")
	}
	res2, err := d.ProcessSlice(s.Slices[1])
	if err != nil {
		t.Fatal(err)
	}
	if res2.T != 1 {
		t.Fatalf("second slice T = %d", res2.T)
	}
	if res2.Iters < 1 || res2.Delta < 0 {
		t.Fatalf("implausible iteration stats: %+v", res2)
	}
}

// TrackFit on an all-empty slice: fit is NaN (no mass), not a crash.
func TestTrackFitEmptySlice(t *testing.T) {
	d, err := NewDecomposer([]int{5, 5}, Options{Rank: 2, TrackFit: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.ProcessSlice(sptensor.New(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(res.Fit) {
		t.Fatalf("empty-slice fit = %v, want NaN", res.Fit)
	}
}

// A single nonzero per slice (extreme sparsity) through all algorithms.
func TestSingleNonzeroSlices(t *testing.T) {
	dims := []int{50, 60}
	for _, alg := range []Algorithm{Baseline, Optimized, SpCPStream} {
		d, err := NewDecomposer(dims, Options{Rank: 3, Algorithm: alg, Seed: 5, MaxIters: 4})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			x := sptensor.New(dims...)
			x.Append([]int32{int32(i * 7 % 50), int32(i * 11 % 60)}, float64(i+1))
			if _, err := d.ProcessSlice(x); err != nil {
				t.Fatalf("%v slice %d: %v", alg, i, err)
			}
		}
		for m := range dims {
			if d.Factor(m).HasNaN() {
				t.Fatalf("%v: NaN on single-nonzero stream", alg)
			}
		}
	}
}

// The Breakdown must attribute time to the phases each algorithm
// actually exercises.
func TestBreakdownPhaseAttribution(t *testing.T) {
	s := skewedStream(t, 202)
	// Explicit: Historical (full-factor products) must show up.
	dOpt, _ := runStream(t, s, Options{Rank: 3, Algorithm: Optimized, Seed: 1})
	bdOpt := dOpt.Breakdown()
	if bdOpt.Times[6] <= 0 || bdOpt.Times[4] <= 0 { // Historical, MTTKRP
		t.Fatalf("optimized breakdown missing phases: %v", bdOpt)
	}
	// spCP: Pre (remap) and Post (z materialization) must show up.
	dSp, _ := runStream(t, s, Options{Rank: 3, Algorithm: SpCPStream, Seed: 1})
	bdSp := dSp.Breakdown()
	if bdSp.Times[0] <= 0 || bdSp.Times[1] <= 0 {
		t.Fatalf("spCP breakdown missing pre/post: %v", bdSp)
	}
	if bdSp.Iters == 0 || bdOpt.Iters == 0 {
		t.Fatal("iteration counts not recorded")
	}
}

// Constrained spCP with L1 (the other constraint the paper names).
func TestConstrainedSpCPWithL1(t *testing.T) {
	s := skewedStream(t, 203)
	d, err := NewDecomposer(s.Dims, Options{
		Rank: 3, Algorithm: SpCPStream, Constraint: admm.L1{Lambda: 0.01},
		ConstrainedSpCP: true, Seed: 2, MaxIters: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := d.ProcessSlice(s.Slices[i]); err != nil {
			t.Fatal(err)
		}
	}
	for m := range s.Dims {
		if d.Factor(m).HasNaN() {
			t.Fatal("NaN with L1 constrained spCP")
		}
	}
}

func TestAlgorithmStringNames(t *testing.T) {
	if Baseline.String() != "baseline" || Optimized.String() != "optimized" || SpCPStream.String() != "spcp-stream" {
		t.Fatal("algorithm names wrong")
	}
	if Algorithm(99).String() == "" {
		t.Fatal("unknown algorithm should render")
	}
}

func TestFitOf(t *testing.T) {
	s := testStream(t, 204, []int{10, 10}, 500, 3)
	d, _ := runStream(t, s, Options{Rank: 3, Seed: 1, TrackFit: true})
	// Scoring the last seen slice must match the tracked fit closely.
	fit, err := d.FitOf(s.Slices[2])
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(fit) {
		t.Fatal("FitOf NaN on non-empty slice")
	}
	// Errors on shape mismatches.
	if _, err := d.FitOf(sptensor.New(10, 11)); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := d.FitOf(sptensor.New(10, 10, 10)); err == nil {
		t.Fatal("mode mismatch accepted")
	}
	if _, err := d.FitOf(nil); err == nil {
		t.Fatal("nil slice accepted")
	}
}

// Streaming invariants: the temporal Gram G stays symmetric positive
// semidefinite across slices (it is a µ-weighted sum of outer products),
// and tracked fits never exceed 1.
func TestStreamingInvariants(t *testing.T) {
	s := skewedStream(t, 205)
	d, err := NewDecomposer(s.Dims, Options{Rank: 4, Algorithm: SpCPStream, Seed: 8, TrackFit: true})
	if err != nil {
		t.Fatal(err)
	}
	for ti, x := range s.Slices {
		res, err := d.ProcessSlice(x)
		if err != nil {
			t.Fatal(err)
		}
		if !math.IsNaN(res.Fit) && res.Fit > 1+1e-9 {
			t.Fatalf("slice %d: fit %v > 1", ti, res.Fit)
		}
		g := d.TemporalGram()
		// Symmetry.
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if diff := g.At(i, j) - g.At(j, i); diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("slice %d: G asymmetric", ti)
				}
			}
		}
		// PSD: G + εI must factor.
		if _, err := dense.FactorRidge(g, 1e-9*(1+dense.Trace(g))); err != nil {
			t.Fatalf("slice %d: G not PSD: %v", ti, err)
		}
		// The Gram invariant: d.c[m] equals Gram(d.a[m]) at slice ends.
		for m := range s.Dims {
			fresh := dense.NewMatrix(4, 4)
			dense.Gram(fresh, d.Factor(m))
			if fresh.MaxAbsDiff(d.c[m]) > 1e-6*(1+dense.Trace(fresh)) {
				t.Fatalf("slice %d mode %d: cached C drifted from Gram(A)", ti, m)
			}
		}
	}
}
