package ingest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"spstream/internal/ingest/wal"
	"spstream/internal/sptensor"
	"spstream/internal/trace"
)

// SpillConfig parameterizes the durable backlog behind the Spill shed
// policy. Dir is required; everything else defaults.
type SpillConfig struct {
	// Dir is the WAL directory (created if missing). Keep it on the
	// same filesystem as the checkpoint directory so a crash loses
	// neither or both of a checkpoint/offset pair's durability.
	Dir string
	// MaxBytes, when positive, caps the on-disk backlog; past it new
	// overflow is shed (counted ShedSpill) instead of filling the disk.
	MaxBytes int64
	// SegmentBytes is the WAL segment rotation threshold. Default 4 MiB.
	SegmentBytes int64
	// FsyncInterval is the group-commit window: how much recently
	// spilled data a hard crash may lose. Zero means every spill
	// fsyncs — strict durability, one fsync per overflowing slice.
	FsyncInterval time.Duration
	// MaxRecordBytes bounds one encoded slice. Default 64 MiB.
	MaxRecordBytes int
	// ReplayFrom is the slice counter T of the checkpoint the processor
	// was restored from (0 for a fresh start). Replay seeks to the
	// consumer offset committed for that checkpoint, making restart
	// exactly-once with respect to committed slices; with no matching
	// offset record the whole backlog replays (at-least-once fallback).
	ReplayFrom int
	// FS replaces the filesystem (disk-fault injection). Default the
	// real one.
	FS wal.FS
}

// spillRecord framing: the admission timestamp precedes the tensor so
// replayed slices keep their original lag deadline.
const spillHeaderSize = 8

func encodeSpillRecord(x *sptensor.Tensor, admitted time.Time) ([]byte, error) {
	var buf bytes.Buffer
	var hdr [spillHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(admitted.UnixNano()))
	buf.Write(hdr[:])
	if err := sptensor.WriteBinary(&buf, x); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeSpillRecord(payload []byte) (*sptensor.Tensor, time.Time, error) {
	if len(payload) < spillHeaderSize {
		return nil, time.Time{}, errors.New("ingest: spill record too short")
	}
	admitted := time.Unix(0, int64(binary.LittleEndian.Uint64(payload[:spillHeaderSize])))
	x, err := sptensor.ReadBinary(bytes.NewReader(payload[spillHeaderSize:]))
	if err != nil {
		return nil, time.Time{}, err
	}
	return x, admitted, nil
}

// spiller owns the WAL and the refill goroutine that reads the durable
// backlog back into the queue as capacity frees. FIFO order is
// preserved by the sticky rule: while the backlog is non-empty, every
// admission goes to the WAL (behind the queued slices' successors),
// never directly to the queue.
type spiller struct {
	log   *wal.Log
	q     *queue
	ov    *trace.Overload
	clock func() time.Time

	mu   sync.Mutex
	cond *sync.Cond
	// backlog counts records appended (or recovered) but not yet
	// re-admitted to the queue — the sticky-spill condition. It is NOT
	// log.Pending(): a record popped off the log but still waiting for
	// queue space must keep admissions spilling or FIFO breaks.
	backlog uint64
	closed  bool // admissions ended (drain); refill keeps going
	killed  bool // emergency stop; refill gives up

	done chan struct{}
}

func newSpiller(cfg SpillConfig, q *queue, ov *trace.Overload, clock func() time.Time) (*spiller, error) {
	if cfg.Dir == "" {
		return nil, errors.New("ingest: Spill policy requires SpillConfig.Dir")
	}
	log, _, err := wal.Open(wal.Options{
		Dir:            cfg.Dir,
		SegmentBytes:   cfg.SegmentBytes,
		MaxBytes:       cfg.MaxBytes,
		MaxRecordBytes: cfg.MaxRecordBytes,
		SyncEvery:      cfg.FsyncInterval,
		FS:             cfg.FS,
	})
	if err != nil {
		return nil, err
	}
	// Seek replay to the offset the restored checkpoint committed;
	// everything after it was produced but never folded into the
	// restored state, so it re-enters accounting as recovered backlog.
	if seq, ok := log.OffsetFor(cfg.ReplayFrom); ok {
		log.SeekTo(seq)
	} else {
		log.SeekTo(0)
	}
	s := &spiller{log: log, q: q, ov: ov, clock: clock, done: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)
	s.backlog = log.Pending()
	ov.SpillRecovered.Add(int64(s.backlog))
	return s, nil
}

// start registers the refiller and launches it.
func (s *spiller) start() {
	s.q.addRefiller()
	go s.run()
}

// admit routes one produced slice under the Spill policy: straight to
// the queue when there is room and no backlog (fast path), otherwise
// durably to the WAL. The error return is non-nil only for the lossy
// outcome — the slice could not be made durable and was shed.
func (s *spiller) admit(x *sptensor.Tensor) error {
	s.mu.Lock()
	if s.backlog == 0 && s.q.tryPush(x) {
		s.mu.Unlock()
		return nil
	}
	// Queue full or backlog ahead of us: spill. Encoding and the disk
	// write happen under the spiller lock — admissions are serialized
	// anyway by WAL ordering, and the lock is what guarantees a
	// concurrent producer cannot slip a newer slice into the queue
	// while ours goes to disk.
	payload, err := encodeSpillRecord(x, s.clock())
	if err == nil {
		if _, err = s.log.Append(payload); err == nil {
			s.backlog++
			s.ov.Spilled.Add(1)
			s.ov.SpillBytes.Add(int64(len(payload)))
			s.cond.Signal()
			s.mu.Unlock()
			return nil
		}
	}
	s.mu.Unlock()
	// The only lossy path under Spill: the WAL refused the slice (disk
	// full, write fault, encode failure).
	s.ov.ShedSpill.Add(1)
	return fmt.Errorf("%w: spill failed: %v", ErrQueueFull, err)
}

// run is the refill loop: read the durable backlog in order and push
// it back into the queue as capacity frees.
func (s *spiller) run() {
	defer close(s.done)
	defer s.q.refillerDone()
	for {
		s.mu.Lock()
		for s.backlog == 0 && !s.closed && !s.killed {
			s.cond.Wait()
		}
		if s.killed || (s.closed && s.backlog == 0) {
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()

		payload, seq, ok, err := s.log.Next()
		if err != nil {
			var loss *wal.LossError
			if errors.As(err, &loss) {
				// Records behind at-rest corruption are gone: account
				// them out of the backlog as shed so the invariant
				// stays exact. (SpillDrained tracks records leaving
				// the backlog, whether into the queue or lost.)
				s.ov.ShedSpill.Add(int64(loss.Lost))
				s.ov.SpillDrained.Add(int64(loss.Lost))
				s.consumeBacklog(loss.Lost)
				continue
			}
			// Closed under us (emergency stop) or unreadable state;
			// leave the backlog durable for the next run.
			return
		}
		if !ok {
			// The appender is ahead of the group commit's visibility
			// only transiently; backlog>0 with nothing readable means
			// we raced a concurrent append's bookkeeping. Re-check.
			continue
		}
		x, admitted, err := decodeSpillRecord(payload)
		if err != nil {
			// CRC passed but the payload does not decode — count it
			// out, keep draining.
			s.ov.ShedSpill.Add(1)
			s.ov.SpillDrained.Add(1)
			s.consumeBacklog(1)
			continue
		}
		if !s.q.refillPush(item{slice: x, admitted: admitted, walSeq: seq}) {
			// Killed: the record stays durable on disk; a restart
			// replays it. Rewind the reader so the in-memory cursor
			// agrees (matters only for tests that reuse the log).
			s.log.SeekTo(seq - 1)
			return
		}
		s.ov.SpillDrained.Add(1)
		s.consumeBacklog(1)
	}
}

func (s *spiller) consumeBacklog(n uint64) {
	s.mu.Lock()
	if n > s.backlog {
		n = s.backlog
	}
	s.backlog -= n
	s.mu.Unlock()
}

// pending returns the durable backlog not yet re-admitted.
func (s *spiller) pending() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.backlog
}

// closeAdmissions tells the refiller no more spills are coming; it
// exits once the backlog is flushed into the queue.
func (s *spiller) closeAdmissions() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// kill is the emergency stop: the refiller exits at the next
// opportunity, leaving the rest of the backlog durable on disk.
func (s *spiller) kill() {
	s.mu.Lock()
	s.killed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

// wait blocks until the refill goroutine has exited.
func (s *spiller) wait() { <-s.done }

// commitOffset durably binds checkpoint t to consumption progress.
func (s *spiller) commitOffset(t int, seq uint64) error {
	err := s.log.CommitOffset(t, seq)
	if errors.Is(err, wal.ErrClosed) {
		return nil
	}
	return err
}

// requeue returns a popped-but-unprocessed WAL item to the backlog
// accounting after a drain deadline: the record is still on disk and
// below any committed offset, so the next run replays it. Reverses the
// SpillDrained count its refill added.
func (s *spiller) requeue() {
	s.ov.SpillDrained.Add(-1)
	s.mu.Lock()
	s.backlog++
	s.mu.Unlock()
}

// close flushes the group commit and closes the WAL.
func (s *spiller) close() error { return s.log.Close() }

// abort closes the WAL without flushing — the crash-simulation path.
func (s *spiller) abort() { s.log.Abort() }
