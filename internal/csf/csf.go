// Package csf implements a Compressed Sparse Fiber tensor — the storage
// format of SPLATT (Smith & Karypis, the paper's related work [15]) —
// and an MTTKRP kernel over it. CSF arranges a slice's nonzeros as a
// forest: one tree level per mode, with nonzeros sharing an index
// prefix sharing the corresponding tree path. The MTTKRP then reuses
// each internal node's partial Khatri-Rao product across all of its
// leaves, cutting the per-nonzero work from (N−1)·K multiplies to
// roughly K at the deepest level, and — like the sorted-segment kernel —
// each root owns its output row, so no synchronization is needed.
//
// The paper's own kernels operate on plain COO; this package exists as
// the storage-format counterpoint its related-work section contrasts
// against, with benchmarks comparing the two directions (bench_test.go).
package csf

import (
	"fmt"
	"sort"

	"spstream/internal/dense"
	"spstream/internal/parallel"
	"spstream/internal/sptensor"
)

// Level is one depth of the fiber forest. Node i at this level has
// index IDs[i] (in its mode's index space) and children (or value
// range, at the deepest level) [Ptr[i], Ptr[i+1]).
type Level struct {
	IDs []int32
	Ptr []int32
}

// Tensor is a CSF representation of a sparse tensor for one mode
// ordering. Order[0] is the root mode whose MTTKRP this tree computes
// without synchronization.
type Tensor struct {
	Order []int // mode permutation: tree level l holds mode Order[l]
	Dims  []int // original mode lengths
	// Levels has one entry per mode; Levels[len-1].Ptr indexes Vals.
	Levels []Level
	Vals   []float64
}

// New builds the CSF tree for x with the given mode ordering (a
// permutation of 0..N-1). The input is not modified.
func New(x *sptensor.Tensor, order []int) (*Tensor, error) {
	n := x.NModes()
	if len(order) != n {
		return nil, fmt.Errorf("csf: order has %d modes, tensor %d", len(order), n)
	}
	seen := make([]bool, n)
	for _, m := range order {
		if m < 0 || m >= n || seen[m] {
			return nil, fmt.Errorf("csf: order %v is not a permutation", order)
		}
		seen[m] = true
	}
	t := &Tensor{
		Order:  append([]int(nil), order...),
		Dims:   append([]int(nil), x.Dims...),
		Levels: make([]Level, n),
	}
	nnz := x.NNZ()
	perm := make([]int, nnz)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		for _, m := range order {
			ia, ib := x.Inds[m][perm[a]], x.Inds[m][perm[b]]
			if ia != ib {
				return ia < ib
			}
		}
		return false
	})
	t.Vals = make([]float64, nnz)
	for i, p := range perm {
		t.Vals[i] = x.Vals[p]
	}
	// Build levels top-down: a new node opens at level l whenever any
	// index at levels ≤ l changes.
	for l := 0; l < n; l++ {
		mode := order[l]
		var ids, ptr []int32
		for e := 0; e < nnz; e++ {
			boundary := e == 0
			if !boundary {
				for ll := 0; ll <= l; ll++ {
					if x.Inds[order[ll]][perm[e]] != x.Inds[order[ll]][perm[e-1]] {
						boundary = true
						break
					}
				}
			}
			if boundary {
				ids = append(ids, x.Inds[mode][perm[e]])
				ptr = append(ptr, int32(e))
			}
		}
		ptr = append(ptr, int32(nnz))
		// Convert leaf offsets into child-node offsets for non-leaf
		// levels (done after the next level exists; see fixup below).
		t.Levels[l] = Level{IDs: ids, Ptr: ptr}
	}
	// Fix up Ptr for internal levels: they currently point at nonzero
	// ranges; convert to child-index ranges by locating each boundary in
	// the next level's nonzero starts.
	for l := 0; l < n-1; l++ {
		next := t.Levels[l+1]
		cur := &t.Levels[l]
		childAt := make(map[int32]int32, len(next.Ptr))
		for i, start := range next.Ptr {
			childAt[start] = int32(i)
		}
		for i, start := range cur.Ptr {
			ci, ok := childAt[start]
			if !ok {
				return nil, fmt.Errorf("csf: internal boundary mismatch at level %d node %d", l, i)
			}
			cur.Ptr[i] = ci
		}
	}
	return t, nil
}

// NNZ returns the stored nonzero count.
func (t *Tensor) NNZ() int { return len(t.Vals) }

// Roots returns the number of root nodes (distinct root-mode indices).
func (t *Tensor) Roots() int { return len(t.Levels[0].IDs) }

// MTTKRPRoot computes out = MTTKRP(x, factors, Order[0]) — the MTTKRP
// for the tree's root mode — by a depth-first traversal that reuses
// each internal node's partial product across its subtree. Roots are
// distributed over workers; every output row is owned by exactly one
// root, so the kernel is synchronization-free.
func (t *Tensor) MTTKRPRoot(out *dense.Matrix, factors []*dense.Matrix, workers int) {
	n := len(t.Order)
	k := factors[0].Cols
	if out.Rows != t.Dims[t.Order[0]] || out.Cols != k {
		panic("csf: output shape mismatch")
	}
	for m, f := range factors {
		if f.Rows != t.Dims[m] || f.Cols != k {
			panic("csf: factor shape mismatch")
		}
	}
	out.Zero()
	if t.NNZ() == 0 {
		return
	}
	parallel.For(t.Roots(), workers, func(_ int, r parallel.Range) {
		// acc[l] accumulates the partial result flowing up to level l.
		acc := dense.NewMatrix(n, k)
		for root := r.Lo; root < r.Hi; root++ {
			rowOut := out.Row(int(t.Levels[0].IDs[root]))
			t.walk(1, int(t.Levels[0].Ptr[root]), int(t.Levels[0].Ptr[root+1]), factors, acc, rowOut)
		}
	})
}

// walk processes nodes [lo, hi) of level l, accumulating each node's
// subtree contribution (element-wise scaled by the node's factor row)
// into dst.
func (t *Tensor) walk(l, lo, hi int, factors []*dense.Matrix, acc *dense.Matrix, dst []float64) {
	mode := t.Order[l]
	level := t.Levels[l]
	last := len(t.Order) - 1
	for node := lo; node < hi; node++ {
		row := factors[mode].Row(int(level.IDs[node]))
		if l == last {
			// Leaf: contribution = Σ vals · row.
			sum := 0.0
			for e := level.Ptr[node]; e < level.Ptr[node+1]; e++ {
				sum += t.Vals[e]
			}
			for j := range dst {
				dst[j] += sum * row[j]
			}
			continue
		}
		// Internal node: recurse into children, then scale by this
		// node's row.
		sub := acc.Row(l)
		for j := range sub {
			sub[j] = 0
		}
		t.walk(l+1, int(level.Ptr[node]), int(level.Ptr[node+1]), factors, acc, sub)
		for j := range dst {
			dst[j] += sub[j] * row[j]
		}
	}
}

// Forest holds one CSF tree rooted at every mode (SPLATT's ALLMODE
// strategy), so the MTTKRP of any mode runs synchronization-free at the
// cost of N-fold storage.
type Forest struct {
	Trees []*Tensor
}

// NewForest builds a tree per mode, each rooted at that mode with the
// remaining modes in increasing order.
func NewForest(x *sptensor.Tensor) (*Forest, error) {
	n := x.NModes()
	f := &Forest{Trees: make([]*Tensor, n)}
	for root := 0; root < n; root++ {
		order := make([]int, 0, n)
		order = append(order, root)
		for m := 0; m < n; m++ {
			if m != root {
				order = append(order, m)
			}
		}
		tree, err := New(x, order)
		if err != nil {
			return nil, err
		}
		f.Trees[root] = tree
	}
	return f, nil
}

// MTTKRP computes the MTTKRP for the given mode using its tree.
func (f *Forest) MTTKRP(out *dense.Matrix, factors []*dense.Matrix, mode, workers int) {
	f.Trees[mode].MTTKRPRoot(out, factors, workers)
}
