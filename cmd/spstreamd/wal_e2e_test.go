package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"
)

// TestWALSIGKILLReplay is the end-to-end crash-safety test of the
// durable spill backlog: the real daemon binary is SIGKILLed mid-stream
// with a non-empty spilled backlog, restarted against the same
// directories, and must converge to factors bit-identical to a run that
// was never crashed.
//
//  1. control: a healthy daemon ingests the whole feed; capture its
//     final /v1/factors.
//  2. crash: a daemon with a stalled solver (-chaos stall), queue 1,
//     and -spill-dir ingests the same feed; every overflowing window
//     rides the WAL. Once ≥2 windows are committed (so nothing
//     unprocessed is still in the volatile queue) and the backlog is
//     non-empty, SIGKILL — no drain, no WAL flush, no offset commit.
//  3. replay: a clean daemon on the same -spill-dir/-checkpoint-dir
//     restores the newest checkpoint, replays the backlog from its
//     committed offset, and must serve the control run's exact model.
func TestWALSIGKILLReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e builds and runs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "spstreamd")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	build.Env = append(os.Environ(), "CGO_ENABLED=1")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	const totalEvents = 60 // windows of 4 → 15 slices
	feed := eventLines(totalEvents, 0)
	modelArgs := []string{"-dims", "10,8", "-rank", "3", "-window", "4"}

	// Control: never crashed, queue big enough that nothing sheds.
	base, cmd := startDaemon(t, bin, append([]string{
		"-addr", "127.0.0.1:0", "-queue", "64",
	}, modelArgs...))
	if code, _ := post(t, base, feed); code != 200 {
		t.Fatalf("control ingest = %d, want 200", code)
	}
	waitFor(t, "control run to finish the stream", func() bool { return statT(t, base) == 15 })
	controlFactors := factors(t, base)
	cmd.Process.Signal(syscall.SIGTERM)
	cmd.Wait()

	// Crash run: slow solver, queue 1 — the feed lands almost entirely
	// in the WAL. -every 1 checkpoints (offset first) each slice;
	// -spill-fsync-interval 0 makes every spill durable before its 200.
	ckptDir, spillDir := t.TempDir(), t.TempDir()
	base2, cmd2 := startDaemon(t, bin, append([]string{
		"-addr", "127.0.0.1:0", "-queue", "1",
		"-spill-dir", spillDir, "-spill-fsync-interval", "0",
		"-checkpoint-dir", ckptDir, "-every", "1", "-keep", "4",
		"-chaos", "stall=1-1000:150ms",
	}, modelArgs...))
	if code, _ := post(t, base2, feed); code != 200 {
		t.Fatalf("spill ingest = %d, want 200 (spill must not shed)", code)
	}
	// Kill precondition: with queue 1 at most two windows (one queued,
	// one in-flight) ever bypassed the WAL; once t ≥ 2 those are
	// committed, so every unprocessed window is disk-resident.
	waitFor(t, "committed slices and a durable backlog", func() bool {
		st := stats(t, base2)
		ov := st["overload"].(map[string]any)
		return int(st["t"].(float64)) >= 2 && ov["spill_pending"].(float64) > 0
	})
	if err := cmd2.Process.Kill(); err != nil { // SIGKILL: the crash
		t.Fatal(err)
	}
	cmd2.Wait() // "signal: killed" — expected

	// Replay run: clean flags, same directories. The daemon must report
	// recovered backlog, replay it, and land on the control model.
	base3, cmd3 := startDaemon(t, bin, append([]string{
		"-addr", "127.0.0.1:0", "-queue", "1",
		"-spill-dir", spillDir,
		"-checkpoint-dir", ckptDir, "-every", "1", "-keep", "4",
	}, modelArgs...))
	defer func() {
		cmd3.Process.Signal(syscall.SIGTERM)
		cmd3.Wait()
	}()
	if n := stats(t, base3)["overload"].(map[string]any)["spill_recovered"].(float64); n == 0 {
		t.Fatal("restart recovered an empty backlog; the kill proved nothing")
	}
	waitFor(t, "replay to finish the stream", func() bool {
		st := stats(t, base3)
		ov := st["overload"].(map[string]any)
		return int(st["t"].(float64)) == 15 && ov["spill_pending"].(float64) == 0
	})
	// Let the last publish settle before the byte-for-byte comparison.
	time.Sleep(100 * time.Millisecond)

	replayFactors := factors(t, base3)
	for _, key := range []string{"t", "s", "factors"} {
		if !reflect.DeepEqual(controlFactors[key], replayFactors[key]) {
			t.Fatalf("replayed %q differs from the uncrashed run:\ncontrol: %v\nreplay:  %v",
				key, controlFactors[key], replayFactors[key])
		}
	}
}
