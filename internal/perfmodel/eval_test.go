package perfmodel

import "testing"

func TestSelectEval(t *testing.T) {
	s := NewSelector(4)
	// Unconstrained budget never streams.
	if got := s.SelectEval(1<<30, 3, 0); got != EvalInMemory {
		t.Fatalf("no budget: got %v", got)
	}
	if got := s.SelectEval(1<<30, 3, -1); got != EvalInMemory {
		t.Fatalf("negative budget: got %v", got)
	}
	// A 3-mode slice costs 20 bytes/nnz raw, 80 modeled: 1e5 nonzeros
	// fit an 8 MiB budget and bust a 4 MiB one.
	if got := s.SelectEval(1e5, 3, 8<<20); got != EvalInMemory {
		t.Fatalf("fits: got %v", got)
	}
	if got := s.SelectEval(1e5, 3, 4<<20); got != EvalStreamed {
		t.Fatalf("exceeds: got %v", got)
	}
	// Threshold is monotone in nnz: streaming once selected stays
	// selected as the slice grows.
	budget := int64(4 << 20)
	streamedAt := -1
	for nnz := 1 << 10; nnz <= 1<<24; nnz <<= 1 {
		m := s.SelectEval(nnz, 3, budget)
		if m == EvalStreamed && streamedAt < 0 {
			streamedAt = nnz
		}
		if streamedAt >= 0 && m != EvalStreamed {
			t.Fatalf("non-monotone selection at nnz=%d", nnz)
		}
	}
	if streamedAt < 0 {
		t.Fatal("budget never triggered streaming")
	}
	if ResidentBytes(streamedAt, 3) <= budget {
		t.Fatalf("streamed at %d nonzeros while modeled bytes still fit", streamedAt)
	}
	if m := EvalStreamed.String(); m != "streamed" {
		t.Fatalf("String: %q", m)
	}
}
