package core

import (
	"math"
	"testing"

	"spstream/internal/admm"
	"spstream/internal/sptensor"
	"spstream/internal/synth"
)

// testStream generates a small planted-structure stream.
func testStream(t testing.TB, seed uint64, dims []int, nnzPerSlice, slices int) *sptensor.Stream {
	t.Helper()
	dists := make([]synth.IndexDist, len(dims))
	for m, d := range dims {
		dists[m] = synth.Uniform{N: d}
	}
	s, err := synth.Generate(synth.Config{
		Name:        "test",
		Dists:       dists,
		T:           slices,
		NNZPerSlice: nnzPerSlice,
		Values:      synth.ValuePlanted,
		PlantedRank: 3,
		NoiseStd:    0.01,
		Seed:        seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// skewedStream generates a stream with a clustered mode (many zero rows)
// to exercise the nz/z split meaningfully.
func skewedStream(t *testing.T, seed uint64) *sptensor.Stream {
	t.Helper()
	s, err := synth.Generate(synth.Config{
		Name: "skewed",
		Dists: []synth.IndexDist{
			synth.Uniform{N: 25},
			synth.Clustered{N: 400, Window: 30, Drift: 20, Revisit: 0.1},
			synth.NewZipf(60, 1.2),
		},
		T:           6,
		NNZPerSlice: 500,
		Values:      synth.ValuePlanted,
		PlantedRank: 3,
		NoiseStd:    0.01,
		Seed:        seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func runStream(t *testing.T, s *sptensor.Stream, opt Options) (*Decomposer, []SliceResult) {
	t.Helper()
	d, err := NewDecomposer(s.Dims, opt)
	if err != nil {
		t.Fatal(err)
	}
	results, err := d.ProcessStream(s.Source(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return d, results
}

func maxFactorDiff(a, b *Decomposer) float64 {
	worst := 0.0
	for m := range a.a {
		if d := a.Factor(m).MaxAbsDiff(b.Factor(m)); d > worst {
			worst = d
		}
	}
	return worst
}

// Baseline and Optimized run the same algorithm with different kernels;
// their factor trajectories must agree to lock-ordering FP noise.
func TestBaselineOptimizedEquivalence(t *testing.T) {
	s := testStream(t, 21, []int{20, 30, 15}, 400, 5)
	base, resB := runStream(t, s, Options{Rank: 4, Algorithm: Baseline, Seed: 5, Workers: 2})
	opt, resO := runStream(t, s, Options{Rank: 4, Algorithm: Optimized, Seed: 5, Workers: 2})
	if len(resB) != len(resO) {
		t.Fatal("slice counts differ")
	}
	if d := maxFactorDiff(base, opt); d > 1e-6 {
		t.Fatalf("baseline vs optimized factors differ by %g", d)
	}
	for i := range resB {
		if math.Abs(resB[i].Delta-resO[i].Delta) > 1e-6 {
			t.Fatalf("slice %d: deltas differ: %g vs %g", i, resB[i].Delta, resO[i].Delta)
		}
	}
}

// The central correctness property of the reproduction: spCP-stream's
// Gram-form updates produce the same factorization as explicit
// CP-stream.
func TestSpCPMatchesExplicit(t *testing.T) {
	for _, tc := range []struct {
		name   string
		stream *sptensor.Stream
	}{
		{"uniform", testStream(t, 31, []int{20, 30, 15}, 400, 5)},
		{"skewed", skewedStream(t, 32)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opt, _ := runStream(t, tc.stream, Options{Rank: 4, Algorithm: Optimized, Seed: 5, Workers: 2})
			spc, _ := runStream(t, tc.stream, Options{Rank: 4, Algorithm: SpCPStream, Seed: 5, Workers: 2})
			if d := maxFactorDiff(opt, spc); d > 1e-5 {
				t.Fatalf("spCP vs explicit factors differ by %g", d)
			}
			// Temporal state must match too.
			if d := opt.TemporalGram().MaxAbsDiff(spc.TemporalGram()); d > 1e-5 {
				t.Fatalf("temporal Gram differs by %g", d)
			}
			st1, st2 := opt.Temporal(), spc.Temporal()
			if d := st1.MaxAbsDiff(st2); d > 1e-5 {
				t.Fatalf("temporal factors differ by %g", d)
			}
		})
	}
}

// The trace-form convergence measure (Eqs. 16–17) must equal the
// explicit Frobenius form (Eq. 15) per slice.
func TestTraceDeltaMatchesExplicitDelta(t *testing.T) {
	s := skewedStream(t, 33)
	_, resExp := runStream(t, s, Options{Rank: 4, Algorithm: Optimized, Seed: 9, Workers: 1, MaxIters: 3, Tol: 1e-12})
	_, resSp := runStream(t, s, Options{Rank: 4, Algorithm: SpCPStream, Seed: 9, Workers: 1, MaxIters: 3, Tol: 1e-12})
	for i := range resExp {
		if resExp[i].Iters != resSp[i].Iters {
			t.Fatalf("slice %d: iteration counts differ (%d vs %d)", i, resExp[i].Iters, resSp[i].Iters)
		}
		rel := math.Abs(resExp[i].Delta - resSp[i].Delta)
		if resExp[i].Delta > 0 {
			rel /= resExp[i].Delta
		}
		if rel > 1e-6 {
			t.Fatalf("slice %d: delta %g (explicit) vs %g (trace form)", i, resExp[i].Delta, resSp[i].Delta)
		}
	}
}

func TestFitImprovesOnPlantedData(t *testing.T) {
	// Dense-ish slices (sampling with replacement covers ~85% of a
	// 10×10×10 tensor at 3000 draws), so a rank-6 model of rank-3
	// planted data can reach a high fit. On very sparse slices a
	// low-rank model cannot fit the unsampled zeros and fit is
	// legitimately near 0 — that regime is covered by
	// TestSpCPFitComparableToExplicit instead.
	s := testStream(t, 41, []int{10, 10, 10}, 3000, 6)
	_, res := runStream(t, s, Options{Rank: 6, Algorithm: Optimized, Seed: 3, TrackFit: true, MaxIters: 30})
	last := res[len(res)-1]
	if math.IsNaN(last.Fit) || last.Fit < 0.5 {
		t.Fatalf("final fit %.3f too low for planted data", last.Fit)
	}
	// And fits should not be wildly worse at the end than the start.
	if res[0].Fit > last.Fit+0.3 {
		t.Fatalf("fit degraded across stream: first %.3f last %.3f", res[0].Fit, last.Fit)
	}
}

func TestSpCPFitComparableToExplicit(t *testing.T) {
	s := skewedStream(t, 42)
	_, resO := runStream(t, s, Options{Rank: 4, Seed: 3, TrackFit: true})
	_, resS := runStream(t, s, Options{Rank: 4, Algorithm: SpCPStream, Seed: 3, TrackFit: true})
	for i := range resO {
		if math.Abs(resO[i].Fit-resS[i].Fit) > 1e-3 {
			t.Fatalf("slice %d: fits diverge: %.5f vs %.5f", i, resO[i].Fit, resS[i].Fit)
		}
	}
}

func TestConstrainedNonNegFeasible(t *testing.T) {
	s := testStream(t, 51, []int{15, 20, 10}, 300, 4)
	for _, alg := range []Algorithm{Baseline, Optimized} {
		d, res := runStream(t, s, Options{Rank: 3, Algorithm: alg, Constraint: admm.NonNeg{}, Seed: 7})
		for m := 0; m < 3; m++ {
			for _, v := range d.Factor(m).Data {
				if v < 0 {
					t.Fatalf("%v: negative factor entry %g", alg, v)
				}
			}
		}
		total := 0
		for _, r := range res {
			total += r.ADMMIters
		}
		if total == 0 {
			t.Fatalf("%v: ADMM never ran", alg)
		}
	}
}

func TestConstrainedBaselineOptimizedClose(t *testing.T) {
	s := testStream(t, 52, []int{15, 20, 10}, 300, 4)
	base, _ := runStream(t, s, Options{Rank: 3, Algorithm: Baseline, Constraint: admm.NonNeg{}, Seed: 7, ADMMTol: 1e-8, ADMMMaxIters: 200})
	opt, _ := runStream(t, s, Options{Rank: 3, Algorithm: Optimized, Constraint: admm.NonNeg{}, Seed: 7, ADMMTol: 1e-8, ADMMMaxIters: 200})
	if d := maxFactorDiff(base, opt); d > 1e-2 {
		t.Fatalf("constrained baseline vs optimized differ by %g", d)
	}
}

func TestEmptySlices(t *testing.T) {
	dims := []int{10, 12}
	empty := sptensor.New(dims...)
	full := sptensor.New(dims...)
	full.Append([]int32{1, 2}, 1.0)
	full.Append([]int32{3, 4}, 2.0)
	for _, alg := range []Algorithm{Baseline, Optimized, SpCPStream} {
		d, err := NewDecomposer(dims, Options{Rank: 2, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range []*sptensor.Tensor{full, empty, full, empty} {
			if _, err := d.ProcessSlice(x); err != nil {
				t.Fatalf("%v slice %d: %v", alg, i, err)
			}
		}
		for m := range dims {
			if d.Factor(m).HasNaN() {
				t.Fatalf("%v: NaN in factors after empty slices", alg)
			}
		}
		if d.T() != 4 {
			t.Fatalf("T = %d", d.T())
		}
	}
}

func TestNormalizeKeepsEquivalenceAndUnitColumns(t *testing.T) {
	s := skewedStream(t, 61)
	opt, _ := runStream(t, s, Options{Rank: 3, Algorithm: Optimized, Seed: 2, Normalize: true})
	spc, _ := runStream(t, s, Options{Rank: 3, Algorithm: SpCPStream, Seed: 2, Normalize: true})
	if d := maxFactorDiff(opt, spc); d > 1e-5 {
		t.Fatalf("normalized runs differ by %g", d)
	}
	// Columns must have unit norm.
	for m := 0; m < 3; m++ {
		f := opt.Factor(m)
		norms := make([]float64, f.Cols)
		for i := 0; i < f.Rows; i++ {
			row := f.Row(i)
			for j, v := range row {
				norms[j] += v * v
			}
		}
		for j, n2 := range norms {
			if math.Abs(math.Sqrt(n2)-1) > 1e-8 {
				t.Fatalf("mode %d column %d norm %g ≠ 1", m, j, math.Sqrt(n2))
			}
		}
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := NewDecomposer([]int{10, 10}, Options{Rank: 0}); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := NewDecomposer([]int{10}, Options{Rank: 2}); err == nil {
		t.Fatal("single mode accepted")
	}
	if _, err := NewDecomposer([]int{10, 0}, Options{Rank: 2}); err == nil {
		t.Fatal("zero-length mode accepted")
	}
	if _, err := NewDecomposer([]int{10, 10}, Options{Rank: 2, Mu: 1.5}); err == nil {
		t.Fatal("µ > 1 accepted")
	}
	if _, err := NewDecomposer([]int{10, 10}, Options{Rank: 2, Algorithm: SpCPStream, Constraint: admm.NonNeg{}}); err == nil {
		t.Fatal("constrained spCP accepted")
	}
	d, err := NewDecomposer([]int{10, 10}, Options{Rank: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.ProcessSlice(nil); err == nil {
		t.Fatal("nil slice accepted")
	}
	bad := sptensor.New(10, 11)
	if _, err := d.ProcessSlice(bad); err == nil {
		t.Fatal("mismatched dims accepted")
	}
	threeWay := sptensor.New(10, 10, 10)
	if _, err := d.ProcessSlice(threeWay); err == nil {
		t.Fatal("wrong mode count accepted")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	s := testStream(t, 71, []int{12, 14, 9}, 200, 3)
	a1, _ := runStream(t, s, Options{Rank: 3, Algorithm: SpCPStream, Seed: 13, Workers: 1})
	a2, _ := runStream(t, s, Options{Rank: 3, Algorithm: SpCPStream, Seed: 13, Workers: 1})
	if d := maxFactorDiff(a1, a2); d != 0 {
		t.Fatalf("same-seed runs differ by %g", d)
	}
}

func TestTemporalAccessors(t *testing.T) {
	s := testStream(t, 81, []int{10, 10}, 100, 4)
	d, res := runStream(t, s, Options{Rank: 2})
	if d.T() != 4 || len(res) != 4 {
		t.Fatal("slice count wrong")
	}
	st := d.Temporal()
	if st.Rows != 4 || st.Cols != 2 {
		t.Fatalf("temporal factor shape %d×%d", st.Rows, st.Cols)
	}
	if len(d.LastS()) != 2 || d.Rank() != 2 || len(d.Dims()) != 2 {
		t.Fatal("accessor shapes wrong")
	}
	if d.Breakdown().Total() <= 0 {
		t.Fatal("no time recorded in breakdown")
	}
	d.ResetBreakdown()
	if d.Breakdown().Total() != 0 {
		t.Fatal("breakdown reset failed")
	}
}

func TestFourWayStream(t *testing.T) {
	s := testStream(t, 91, []int{8, 10, 6, 7}, 300, 4)
	opt, _ := runStream(t, s, Options{Rank: 3, Algorithm: Optimized, Seed: 4})
	spc, _ := runStream(t, s, Options{Rank: 3, Algorithm: SpCPStream, Seed: 4})
	if d := maxFactorDiff(opt, spc); d > 1e-5 {
		t.Fatalf("4-way spCP vs explicit differ by %g", d)
	}
}
