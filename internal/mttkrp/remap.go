package mttkrp

import (
	"sort"

	"spstream/internal/dense"
	"spstream/internal/sptensor"
)

// Remapped is a time slice whose coordinates have been renumbered into
// the dense local index space of its nonzero rows: mode m's coordinates
// lie in [0, len(NZ[m])) and NZ[m][local] recovers the global row. This
// is the pre-processing step of spCP-stream (paper §V-D): it is built
// once per slice and amortized over all inner iterations, and it is what
// lets spMTTKRP access only the gathered A_nz matrices — a footprint of
// |nz(n)|·K instead of Iₙ·K rows (paper §VI-E1).
type Remapped struct {
	// X holds the renumbered slice; X.Dims[m] == len(NZ[m]).
	X *sptensor.Tensor
	// NZ[m] is the sorted list of global row indices present in mode m
	// (the nz(n) sets).
	NZ [][]int32
}

// Remap builds the local-index view of a slice. Cost is O(nnz·N) plus a
// sort of each nz set.
func Remap(x *sptensor.Tensor) *Remapped {
	n := x.NModes()
	rm := &Remapped{NZ: make([][]int32, n)}
	localDims := make([]int, n)
	lookups := make([]map[int32]int32, n)
	for m := 0; m < n; m++ {
		nz := x.NonzeroSlices(m)
		rm.NZ[m] = nz
		localDims[m] = len(nz)
		lut := make(map[int32]int32, len(nz))
		for local, global := range nz {
			lut[global] = int32(local)
		}
		lookups[m] = lut
	}
	local := sptensor.New(localDims...)
	local.Reserve(x.NNZ())
	coord := make([]int32, n)
	for e := 0; e < x.NNZ(); e++ {
		for m := 0; m < n; m++ {
			coord[m] = lookups[m][x.Inds[m][e]]
		}
		local.Append(coord, x.Vals[e])
	}
	rm.X = local
	return rm
}

// GatherFactors extracts the A_nz matrices for every mode: out[m] is the
// len(NZ[m])×K gather of full[m]'s nz rows.
func (rm *Remapped) GatherFactors(full []*dense.Matrix) []*dense.Matrix {
	out := make([]*dense.Matrix, len(full))
	for m, f := range full {
		idx := make([]int, len(rm.NZ[m]))
		for i, g := range rm.NZ[m] {
			idx[i] = int(g)
		}
		out[m] = dense.GatherRows(f, idx)
	}
	return out
}

// GatherFactorsInto refreshes previously allocated gathers in place.
func (rm *Remapped) GatherFactorsInto(dst, full []*dense.Matrix) {
	for m, f := range full {
		gatherInt32(dst[m], f, rm.NZ[m])
	}
}

func gatherInt32(dst, src *dense.Matrix, idx []int32) {
	if dst.Rows != len(idx) || dst.Cols != src.Cols {
		panic("mttkrp: gather shape mismatch")
	}
	for r, i := range idx {
		copy(dst.Row(r), src.Row(int(i)))
	}
}

// ScatterMode writes the len(NZ[mode])×K matrix src back into the nz
// rows of the full factor matrix (the ⊕ recombination).
func (rm *Remapped) ScatterMode(full, src *dense.Matrix, mode int) {
	idx := rm.NZ[mode]
	if src.Rows != len(idx) {
		panic("mttkrp: scatter shape mismatch")
	}
	for r, i := range idx {
		copy(full.Row(int(i)), src.Row(r))
	}
}

// ZeroRows returns the complement z(n) = {0..dim-1} \ NZ[mode] for the
// given full mode length. Used by tests and by the incremental C_z
// maintenance.
func (rm *Remapped) ZeroRows(mode, dim int) []int32 {
	nz := rm.NZ[mode]
	out := make([]int32, 0, dim-len(nz))
	p := 0
	for i := int32(0); i < int32(dim); i++ {
		if p < len(nz) && nz[p] == i {
			p++
			continue
		}
		out = append(out, i)
	}
	return out
}

// RowSparse computes Ψ_nz = spMTTKRP(Xt, {A_nz}) for one mode: a plain
// MTTKRP over the remapped slice and gathered factors. The output has
// len(NZ[mode]) rows. Uses the hybrid-lock strategy internally — after
// remapping, modes are short by construction, so this nearly always
// takes the thread-local path.
func (c *Computer) RowSparse(out *dense.Matrix, rm *Remapped, gathered []*dense.Matrix, mode int) {
	c.Hybrid(out, rm.X, gathered, mode)
}

// SetDiff returns the elements of a not present in b; both inputs must
// be sorted ascending. Used for the nz(n)ₜ₋₁ \ nz(n) bookkeeping of
// Algorithm 4 (lines 9–10).
func SetDiff(a, b []int32) []int32 {
	out := make([]int32, 0)
	i, j := 0, 0
	for i < len(a) {
		switch {
		case j >= len(b) || a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] == b[j]:
			i++
			j++
		default:
			j++
		}
	}
	return out
}

// SetUnion merges two sorted int32 sets.
func SetUnion(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// SortedInt32 reports whether s is sorted ascending (test helper).
func SortedInt32(s []int32) bool {
	return sort.SliceIsSorted(s, func(a, b int) bool { return s[a] < s[b] })
}
