package core

import (
	"errors"
	"testing"

	"spstream/internal/resilience"
	"spstream/internal/sptensor"
	"spstream/internal/synth"
)

// TestCommitHookFiresOnlyOnCommit: the hook observes exactly the
// slices that committed (advanced t), never slices that failed the
// health check, were skipped, or rolled back.
func TestCommitHookFiresOnlyOnCommit(t *testing.T) {
	s, err := synth.Generate(synth.Config{
		Name:  "hook",
		Dists: []synth.IndexDist{synth.Uniform{N: 12}, synth.Uniform{N: 10}},
		T:     8, NNZPerSlice: 60, Values: synth.ValuePlanted, PlantedRank: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fail the 3rd and 6th distinct slices (every attempt); SkipSlice
	// drops them. Keyed on a first-attempt ordinal, not f.Slice: t does
	// not advance across skipped slices, so a slice-index key would
	// fail every slice from the first injected failure onward.
	var firstAttempts int
	rcfg := &resilience.Config{
		Policy:          resilience.SkipSlice,
		MaxSliceRetries: 1,
		FaultHook: func(f resilience.Fault) error {
			if f.Stage != resilience.StageBegin {
				return nil
			}
			if f.Attempt == 0 {
				firstAttempts++
			}
			if firstAttempts == 3 || firstAttempts == 6 {
				return resilience.ErrDiverged
			}
			return nil
		},
	}
	dec, err := NewDecomposer(s.Dims, Options{Rank: 3, Seed: 1, Resilience: rcfg})
	if err != nil {
		t.Fatal(err)
	}
	var committed []int
	dec.SetCommitHook(func(res SliceResult) {
		committed = append(committed, res.T)
		if dec.T() != res.T+1 {
			t.Errorf("hook for slice %d ran before t advanced (t=%d)", res.T, dec.T())
		}
	})
	var skips int
	for _, x := range s.Slices {
		if _, err := dec.ProcessSlice(x); err != nil {
			if !errors.Is(err, resilience.ErrSliceSkipped) {
				t.Fatal(err)
			}
			skips++
		}
	}
	if skips != 2 {
		t.Fatalf("skips = %d, want 2", skips)
	}
	want := []int{0, 1, 2, 3, 4, 5} // t does not advance on skipped slices
	if len(committed) != len(want) {
		t.Fatalf("hook fired %d times (%v), want %d", len(committed), committed, len(want))
	}
	for i, w := range want {
		if committed[i] != w {
			t.Fatalf("committed = %v, want %v", committed, want)
		}
	}
}

// TestCommitHookUnguardedPath: without a resilience config the hook
// still fires per processed slice.
func TestCommitHookUnguardedPath(t *testing.T) {
	dims := []int{6, 5}
	dec, err := NewDecomposer(dims, Options{Rank: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	dec.SetCommitHook(func(SliceResult) { n++ })
	x := sptensor.New(dims...)
	x.Append([]int32{1, 2}, 1.5)
	x.Append([]int32{3, 4}, -0.5)
	for i := 0; i < 3; i++ {
		if _, err := dec.ProcessSlice(x); err != nil {
			t.Fatal(err)
		}
	}
	if n != 3 {
		t.Fatalf("hook fired %d times, want 3", n)
	}
}
