package perfmodel

import (
	"testing"

	"spstream/internal/synth"
)

// profileOf builds a SliceProfile by hand: dims and per-mode nz-row
// counts, one synthetic top-row fraction.
func profileOf(nnz int, dims, nzRows []int) SliceProfile {
	p := SliceProfile{NNZ: nnz}
	for m := range dims {
		p.Modes = append(p.Modes, ModeProfile{Dim: dims[m], NZRows: nzRows[m], TopRowFrac: 0.01})
	}
	return p
}

// A tiny slice amortized over a single iteration must pick the plan:
// the CSF build (N radix passes per tree) cannot pay for itself.
func TestSelectTinySlicePrefersPlan(t *testing.T) {
	sel := NewSelector(1)
	p := profileOf(500, []int{8, 9, 7}, []int{8, 9, 7})
	for m := range p.Modes {
		if got := sel.SelectMTTKRP(p, m, 4, 1); got != MTTKRPPlan {
			t.Fatalf("mode %d: tiny slice selected %v, want plan", m, got)
		}
	}
}

// A duplicate-heavy slice — far fewer distinct coordinate prefixes than
// nonzeros — is CSF's best case: the fiber tree collapses the shared
// prefixes, so with enough iterations to amortize the build the
// selector must route at least one mode to CSF.
func TestSelectDupHeavyPrefersCSF(t *testing.T) {
	sel := NewSelector(1)
	p := profileOf(300000, []int{24, 1100, 1700}, []int{24, 1100, 1700})
	picked := false
	for m := range p.Modes {
		if sel.SelectMTTKRP(p, m, 32, 8) == MTTKRPCSF {
			picked = true
		}
	}
	if !picked {
		t.Fatal("dup-heavy 300k-nnz slice never selected CSF at rank 32")
	}
}

// Prediction sanity: more workers must not increase predicted kernel
// times, and both predictions grow with rank.
func TestSelectorPredictionsMonotone(t *testing.T) {
	p := profileOf(100000, []int{100, 2000, 3000}, []int{100, 1800, 2500})
	s1, s4 := NewSelector(1), NewSelector(4)
	for m := range p.Modes {
		if s4.PlanModeTime(p, m, 16) > s1.PlanModeTime(p, m, 16) {
			t.Fatalf("mode %d: plan prediction grew with workers", m)
		}
		if s4.CSFModeTime(p, m, 16) > s1.CSFModeTime(p, m, 16) {
			t.Fatalf("mode %d: CSF prediction grew with workers", m)
		}
		if s1.PlanModeTime(p, m, 64) <= s1.PlanModeTime(p, m, 8) {
			t.Fatalf("mode %d: plan prediction not increasing in rank", m)
		}
		if s1.CSFModeTime(p, m, 64) <= s1.CSFModeTime(p, m, 8) {
			t.Fatalf("mode %d: CSF prediction not increasing in rank", m)
		}
	}
}

// distinct() is the birthday estimate: bounded by both the draw count
// and the space, and exact in the space-≫-draws limit.
func TestDistinctEstimate(t *testing.T) {
	if d := distinct(10, 1e9); d > 10 {
		t.Fatalf("distinct exceeded the space: %g", d)
	}
	if d := distinct(1e12, 100); d > 100 || d < 99 {
		t.Fatalf("sparse-regime distinct = %g, want ≈100", d)
	}
	if d := distinct(50, 0); d != 0 {
		t.Fatalf("distinct(_, 0) = %g", d)
	}
	if d := distinct(0, 5); d != 1 {
		t.Fatalf("distinct(0, n) = %g, want clamp to 1", d)
	}
}

// ProfileInto allocates nothing once its buffers have grown.
func TestProfileIntoZeroAlloc(t *testing.T) {
	s, err := synth.Generate(synth.Config{
		Name:        "prof",
		Dists:       []synth.IndexDist{synth.Uniform{N: 40}, synth.Uniform{N: 300}, synth.Uniform{N: 200}},
		T:           3,
		NNZPerSlice: 2000,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var p SliceProfile
	var counts []int32
	for _, x := range s.Slices {
		counts = ProfileInto(&p, x, counts)
	}
	i := 0
	allocs := testing.AllocsPerRun(10, func() {
		counts = ProfileInto(&p, s.Slices[i%len(s.Slices)], counts)
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state ProfileInto allocates %v times", allocs)
	}
	// Cross-check one profile against the allocating Profile.
	want := Profile(s.Slices[len(s.Slices)-1])
	counts = ProfileInto(&p, s.Slices[len(s.Slices)-1], counts)
	if p.NNZ != want.NNZ || len(p.Modes) != len(want.Modes) {
		t.Fatal("ProfileInto disagrees with Profile on shape")
	}
	for m := range want.Modes {
		if p.Modes[m] != want.Modes[m] {
			t.Fatalf("mode %d: ProfileInto %+v ≠ Profile %+v", m, p.Modes[m], want.Modes[m])
		}
	}
}
