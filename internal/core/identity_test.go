package core

import (
	"math"
	"testing"
	"testing/quick"

	"spstream/internal/dense"
	"spstream/internal/synth"
)

// Direct property tests for the algebraic identities spCP-stream is
// built on (paper Eqs. 10–17), independent of the solver code.

// randomSplit builds a random I×K matrix and a random nz/z row split.
func randomSplit(seed uint64, rows, k int) (a *dense.Matrix, nz, z []int) {
	r := synth.NewRNG(seed)
	a = dense.NewMatrix(rows, k)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	for i := 0; i < rows; i++ {
		if r.Float64() < 0.3 {
			nz = append(nz, i)
		} else {
			z = append(z, i)
		}
	}
	return a, nz, z
}

// Eq. 10: C = AᵀA = A_nzᵀA_nz + A_zᵀA_z.
func TestGramSplitIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		a, nz, z := randomSplit(seed, 40, 5)
		full := dense.NewMatrix(5, 5)
		dense.Gram(full, a)
		cnz := dense.NewMatrix(5, 5)
		dense.Gram(cnz, dense.GatherRows(a, nz))
		cz := dense.NewMatrix(5, 5)
		dense.Gram(cz, dense.GatherRows(a, z))
		sum := dense.NewMatrix(5, 5)
		dense.Add(sum, cnz, cz)
		return sum.Equal(full, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Eq. 11: if A_z = A_z,prev·T then A_zᵀA_z = Tᵀ·C_z,prev·T.
func TestZRowTransformGramIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		aPrev, _, z := randomSplit(seed, 30, 4)
		r := synth.NewRNG(seed + 1)
		tr := dense.NewMatrix(4, 4)
		for i := range tr.Data {
			tr.Data[i] = r.NormFloat64()
		}
		azPrev := dense.GatherRows(aPrev, z)
		az := dense.NewMatrix(azPrev.Rows, 4)
		dense.MulAB(az, azPrev, tr)
		// Left: Gram of the transformed rows.
		left := dense.NewMatrix(4, 4)
		dense.Gram(left, az)
		// Right: Tᵀ·C_z,prev·T.
		czPrev := dense.NewMatrix(4, 4)
		dense.Gram(czPrev, azPrev)
		tmp := dense.NewMatrix(4, 4)
		dense.MulAB(tmp, czPrev, tr)
		right := dense.NewMatrix(4, 4)
		dense.MulAtB(right, tr, tmp)
		return left.Equal(right, 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Eq. 13: H_z = A_z,prevᵀ·(A_z,prev·T) = C_z,prev·T.
func TestHzIdentity(t *testing.T) {
	f := func(seed uint64) bool {
		aPrev, _, z := randomSplit(seed, 25, 3)
		r := synth.NewRNG(seed + 2)
		tr := dense.NewMatrix(3, 3)
		for i := range tr.Data {
			tr.Data[i] = r.NormFloat64()
		}
		azPrev := dense.GatherRows(aPrev, z)
		az := dense.NewMatrix(azPrev.Rows, 3)
		dense.MulAB(az, azPrev, tr)
		left := dense.NewMatrix(3, 3)
		dense.MulAtB(left, azPrev, az)
		czPrev := dense.NewMatrix(3, 3)
		dense.Gram(czPrev, azPrev)
		right := dense.NewMatrix(3, 3)
		dense.MulAB(right, czPrev, tr)
		return left.Equal(right, 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Eqs. 16–17: ‖A‖²_F = tr(C) and
// ‖A−B‖²_F = tr(C_A) + tr(C_B) − 2·tr(AᵀB).
func TestTraceNormIdentities(t *testing.T) {
	f := func(seed uint64) bool {
		r := synth.NewRNG(seed)
		a := dense.NewMatrix(20, 4)
		b := dense.NewMatrix(20, 4)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
			b.Data[i] = r.NormFloat64()
		}
		ca := dense.NewMatrix(4, 4)
		cb := dense.NewMatrix(4, 4)
		h := dense.NewMatrix(4, 4)
		dense.Gram(ca, a)
		dense.Gram(cb, b)
		dense.MulAtB(h, a, b)
		if math.Abs(dense.FrobNorm2(a)-dense.Trace(ca)) > 1e-9 {
			return false
		}
		want := dense.FrobNorm2Diff(a, b)
		got := dense.Trace(ca) + dense.Trace(cb) - 2*dense.Trace(h)
		return math.Abs(want-got) < 1e-8*(1+want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The collapsed update (Eq. 4) splits exactly into the nz part (Eq. 7)
// and the z part (Eq. 6): rows untouched by the slice receive no
// MTTKRP contribution, so their update is the pure Gram transform.
func TestCollapsedUpdateSplit(t *testing.T) {
	f := func(seed uint64) bool {
		r := synth.NewRNG(seed)
		const rows, k = 18, 3
		aPrev, nz, z := randomSplit(seed, rows, k)
		// Random SPD Φ and transform Q.
		b := dense.NewMatrix(k+2, k)
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		phi := dense.NewMatrix(k, k)
		dense.Gram(phi, b)
		dense.AddScaledIdentity(phi, phi, 1)
		q := dense.NewMatrix(k, k)
		for i := range q.Data {
			q.Data[i] = r.NormFloat64()
		}
		// MTTKRP output that is zero on z rows (by construction).
		mtt := dense.NewMatrix(rows, k)
		for _, i := range nz {
			row := mtt.Row(i)
			for j := range row {
				row[j] = r.NormFloat64()
			}
		}
		// Full update: A = (MTTKRP + Aprev·Q)·Φ⁻¹.
		full := dense.NewMatrix(rows, k)
		dense.MulAB(full, aPrev, q)
		dense.Add(full, full, mtt)
		chol, err := dense.Factor(phi)
		if err != nil {
			return false
		}
		chol.SolveRows(full)
		// Z-part shortcut: A_z = A_z,prev·(Q·Φ⁻¹).
		tr := dense.NewMatrix(k, k)
		chol.SolveRowsInto(tr, q)
		azPrev := dense.GatherRows(aPrev, z)
		az := dense.NewMatrix(azPrev.Rows, k)
		dense.MulAB(az, azPrev, tr)
		for local, i := range z {
			for j := 0; j < k; j++ {
				if math.Abs(az.At(local, j)-full.At(i, j)) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
