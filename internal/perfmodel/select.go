package perfmodel

import (
	"math"

	"spstream/internal/csf"
	"spstream/internal/roofline"
	"spstream/internal/sptensor"
)

// This file is the runtime kernel selector: given a measured slice
// shape, it predicts the per-mode cost of the two per-slice compiled
// MTTKRP kernels — the coordinate plan (mttkrp.Plan) and the tiled CSF
// engine (csf.Engine) — and picks the faster one. Unlike the paper-
// testbed model in kernels.go (which reproduces published scaling
// curves), the selector runs on whatever host the stream runs on, so
// its constants are calibrated against measured single-core kernel
// times (EXPERIMENTS.md, "CSF vs plan crossover") and it only needs the
// *ordering* of the two predictions to be right, with a conservative
// margin absorbing the residual model error.

// SelectorParams holds the host-generic per-operation costs (ns) of the
// two compiled kernels. Defaults were fit on a commodity x86-64 core
// against the measured kernel grid in BENCH_PR5.json (`make bench`) at
// ranks 16–32 and 2·10⁵–3·10⁵ nonzeros; see EXPERIMENTS.md.
type SelectorParams struct {
	// Plan kernel: cost per nonzero = PlanNsPerNnz + K·PlanNsPerRank
	// (permutation gather, two factor-row gathers, 3-op row product).
	PlanNsPerNnz  float64
	PlanNsPerRank float64
	// PlanLastModeFactor scales the plan prediction for the slice's last
	// mode. Coalesced slices are stored in lexicographic order, so the
	// plan permutation for the last mode visits the nonzero arrays in
	// maximally scattered order (every consecutive gather jumps), while
	// earlier modes read in long sequential runs; the measured grid
	// shows the last mode costing ~1.7–2.2× the others.
	PlanLastModeFactor float64
	// CSF kernel: every stored value costs CSFValNs + K·CSFLeafNsPerRank
	// (sequential value stream + leaf factor row); every internal node
	// at the levels above the leaves costs CSFNodeNs + K·CSFNodeNsPerRank
	// (one factor row gather + partial-product scale-add). Leaves carry
	// no node cost — their work is the per-value term.
	CSFValNs         float64
	CSFLeafNsPerRank float64
	CSFNodeNs        float64
	CSFNodeNsPerRank float64
	// Build costs per nonzero: the plan's one counting sort per mode vs
	// the CSF engine's N-pass radix sort + tree pass per tree. Amortized
	// over the expected inner iterations.
	PlanBuildNsPerNnz float64
	CSFBuildNsPerNnz  float64 // per nonzero per level of one tree
	// Sorted-slice build refinement: when the profile proves the slice
	// lexicographically sorted, the engine's sorted-base fast path
	// replaces the N radix passes with 0 (root = mode 0) or 1 (any
	// other root), so the build is CSFSortNsPerPass per remaining pass
	// plus the CSFTreeNsPerNnz node-emission pass. Used only by the
	// Ex variants; zero values fall back to the legacy N-pass formula.
	CSFSortNsPerPass float64
	CSFTreeNsPerNnz  float64
	// ColdFactor scales a kernel's factor-row gather terms when the
	// gathered matrices overflow CacheBytes: random gathers from a
	// matrix larger than the cache miss on nearly every row, which the
	// flat per-rank constants (fit on cache-resident grids) miss badly
	// on paper-§VI-scale skewed modes.
	ColdFactor float64
	CacheBytes int64
	// Margin < 1: CSF is selected only when its predicted time is below
	// Margin × the plan's prediction, so prediction noise near the
	// crossover resolves to the kernel whose worst case is milder.
	Margin float64
}

// DefaultSelectorParams returns the host-generic calibration.
func DefaultSelectorParams() SelectorParams {
	return SelectorParams{
		PlanNsPerNnz:       8,
		PlanNsPerRank:      3.4,
		PlanLastModeFactor: 1.8,
		CSFValNs:           5,
		CSFLeafNsPerRank:   2,
		CSFNodeNs:          10,
		CSFNodeNsPerRank:   1,
		PlanBuildNsPerNnz:  11,
		CSFBuildNsPerNnz:   28,
		CSFSortNsPerPass:   18,
		CSFTreeNsPerNnz:    30,
		ColdFactor:         1.6,
		CacheBytes:         8 << 20,
		Margin:             0.9,
	}
}

// Selector predicts and compares the compiled MTTKRP kernels.
type Selector struct {
	P SelectorParams
	// Workers is the parallel width both kernels run at.
	Workers int
}

// NewSelector returns a selector for the given worker count with the
// default calibration.
func NewSelector(workers int) Selector {
	if workers < 1 {
		workers = 1
	}
	return Selector{P: DefaultSelectorParams(), Workers: workers}
}

// distinct returns the birthday-problem estimate of how many distinct
// values n uniform draws from a space of given size produce:
// space·(1 − e^(−n/space)), clamped to [1, n]. It is exact in
// expectation for uniform coordinates and a usable upper bound for
// skewed ones (skew only reduces distinct counts, making CSF cheaper
// than predicted — an error in the conservative direction for the
// plan, absorbed by Margin on the CSF side).
func distinct(space, n float64) float64 {
	if n <= 0 {
		return 0
	}
	if space <= 0 {
		return 1
	}
	d := space * (1 - math.Exp(-n/space))
	if d > n {
		d = n
	}
	if d < 1 {
		d = 1
	}
	return d
}

// coldScale returns ColdFactor when gathering rank-k rows from a
// dim-row matrix misses the cache budget (1 otherwise, and 1 when the
// cold refinement is not configured).
func (se Selector) coldScale(dim, k int) float64 {
	if se.P.ColdFactor <= 1 || se.P.CacheBytes <= 0 {
		return 1
	}
	if int64(dim)*int64(k)*8 > se.P.CacheBytes {
		return se.P.ColdFactor
	}
	return 1
}

// PlanModeTime predicts one plan-kernel MTTKRP (seconds, excluding
// build) for one mode of the profiled slice. The per-rank gather term
// is scaled by ColdFactor when the source factors (every mode but the
// output) overflow the cache budget.
func (se Selector) PlanModeTime(s SliceProfile, mode, k int) float64 {
	nnz := float64(s.NNZ)
	srcDim := 0
	for m := range s.Modes {
		if m != mode {
			srcDim += s.Modes[m].Dim
		}
	}
	rankNs := float64(k) * se.P.PlanNsPerRank * se.coldScale(srcDim, k)
	t := nnz * (se.P.PlanNsPerNnz + rankNs) / float64(se.Workers) * 1e-9
	if mode == len(s.Modes)-1 {
		t *= se.P.PlanLastModeFactor
	}
	return t
}

// CSFModeTime predicts one CSF-engine MTTKRP (seconds, excluding build)
// for one mode: the tree is rooted at the mode with the remaining modes
// by increasing length (mirroring csf.ModeOrder), and the node count at
// each internal level below the root is the birthday estimate of
// distinct coordinate prefixes.
func (se Selector) CSFModeTime(s SliceProfile, mode, k int) float64 {
	return se.CSFModeTimeEx(s, mode, k, false)
}

// CSFModeTimeEx is CSFModeTime with the tree's level order chosen the
// way the engine will actually build it: sortedBase mirrors
// csf.ModeOrderBase (root first, remaining modes in storage order —
// the engine's reduced-pass layout for sorted slices), false mirrors
// csf.ModeOrder. When the first two levels are modes {0,1} and the
// profile carries a measured distinct-pair count, that count replaces
// the birthday estimate for the level-1 nodes; per-level gather terms
// are scaled by ColdFactor when the level's factor overflows the cache
// budget.
func (se Selector) CSFModeTimeEx(s SliceProfile, mode, k int, sortedBase bool) float64 {
	nnz := float64(s.NNZ)
	if nnz == 0 {
		return 0
	}
	n := len(s.Modes)
	order := make([]int, 0, n)
	if sortedBase {
		order = csf.ModeOrderBase(order, n, mode)
	} else {
		dims := make([]int, n)
		for m := range s.Modes {
			dims[m] = s.Modes[m].Dim
		}
		order = csf.ModeOrder(order, dims, mode)
	}
	// Every stored value pays the leaf term; internal nodes exist at
	// levels 1..n-2 (the roots are amortized into their subtrees, the
	// leaves are the values themselves). Level l's node count is the
	// birthday estimate of distinct (order[0..l]) coordinate prefixes —
	// replaced by the measured count where one is available — and the
	// prefix space is capped by the observed per-mode nz-row counts,
	// which are tighter than the full mode lengths on sparse slices.
	leafScale := (se.P.CSFValNs + float64(k)*se.P.CSFLeafNsPerRank) *
		se.coldScale(s.Modes[order[n-1]].Dim, k)
	cost := nnz * leafScale
	space := rowSpace(s.Modes[order[0]])
	for l := 1; l < n-1; l++ {
		space *= rowSpace(s.Modes[order[l]])
		nodes := distinct(space, nnz)
		if l == 1 && s.Pair01 > 0 && (order[0]|order[1]) == 1 && order[0] != order[1] {
			nodes = float64(s.Pair01)
		}
		nodeScale := (se.P.CSFNodeNs + float64(k)*se.P.CSFNodeNsPerRank) *
			se.coldScale(s.Modes[order[l]].Dim, k)
		cost += nodes * nodeScale
	}
	return cost / float64(se.Workers) * 1e-9
}

// rowSpace is the effective coordinate space of one mode: the observed
// distinct-row count when available, else the mode length.
func rowSpace(m ModeProfile) float64 {
	if m.NZRows > 0 {
		return float64(m.NZRows)
	}
	if m.Dim > 0 {
		return float64(m.Dim)
	}
	return 1
}

// PlanBuildTime and CSFBuildTime predict the per-slice compile cost of
// one mode's layout (seconds). The CSF build is serial per tree (radix
// sort passes); the plan build is one counting sort.
func (se Selector) PlanBuildTime(s SliceProfile) float64 {
	return float64(s.NNZ) * se.P.PlanBuildNsPerNnz * 1e-9
}

// CSFBuildTime predicts building one CSF tree for the slice.
func (se Selector) CSFBuildTime(s SliceProfile) float64 {
	return float64(s.NNZ) * float64(len(s.Modes)) * se.P.CSFBuildNsPerNnz * 1e-9
}

// CSFBuildTimeEx refines CSFBuildTime for a specific root mode when
// the slice is known sorted: the engine's sorted-base path needs no
// sort pass for a tree rooted at mode 0 and exactly one stable
// counting pass for any other root, plus the node-emission pass.
func (se Selector) CSFBuildTimeEx(s SliceProfile, mode int) float64 {
	if !s.Sorted || se.P.CSFSortNsPerPass == 0 {
		return se.CSFBuildTime(s)
	}
	passes := 1.0
	if mode == 0 {
		passes = 0
	}
	return float64(s.NNZ) * (passes*se.P.CSFSortNsPerPass + se.P.CSFTreeNsPerNnz) * 1e-9
}

// SelectMTTKRP chooses the kernel for one mode of the profiled slice:
// MTTKRPCSF when the CSF prediction — including its build amortized
// over amortIters inner iterations — beats the plan prediction by the
// conservative margin, else MTTKRPPlan. The choice is a pure function
// of (profile, mode, k, amortIters, params), never of runtime history,
// so checkpoint-restored runs reproduce the original kernel schedule
// bit-for-bit.
func (se Selector) SelectMTTKRP(s SliceProfile, mode, k, amortIters int) MTTKRPKind {
	return se.SelectMTTKRPEx(s, mode, k, amortIters, false)
}

// SelectMTTKRPEx is SelectMTTKRP with the sorted-base refinement:
// when sortedBase is set (the caller verified the slice is sorted and
// will hint the engine with csf.Engine.SetSortedBase), the CSF side is
// modeled with the base-order tree shape and the reduced-pass build
// cost. Still a pure function of its arguments.
func (se Selector) SelectMTTKRPEx(s SliceProfile, mode, k, amortIters int, sortedBase bool) MTTKRPKind {
	if amortIters < 1 {
		amortIters = 1
	}
	iters := float64(amortIters)
	plan := se.PlanModeTime(s, mode, k) + se.PlanBuildTime(s)/iters
	var csft float64
	if sortedBase {
		csft = se.CSFModeTimeEx(s, mode, k, true) + se.CSFBuildTimeEx(s, mode)/iters
	} else {
		csft = se.CSFModeTime(s, mode, k) + se.CSFBuildTime(s)/iters
	}
	if csft < se.P.Margin*plan {
		return MTTKRPCSF
	}
	return MTTKRPPlan
}

// HostModel returns a Model describing a generic current-generation
// host with the given core count — the machine stand-in the runtime
// selector and host-side experiments use when the paper's quad-socket
// testbed is not the target.
func HostModel(cores int) Model {
	if cores < 1 {
		cores = 1
	}
	return Model{
		M: roofline.Machine{
			PeakFlopsPerCore:   8e9,
			BandwidthPerSocket: 20e9,
			CoresPerSocket:     cores,
			Sockets:            1,
			CacheBytes:         8 << 20,
		},
		P: DefaultParams(),
	}
}

// ProfileInto measures a SliceProfile from x into p, reusing p's Modes
// slice and the counts scratch buffer (grown to the longest mode, then
// reused). It returns the scratch for the caller to keep. Unlike
// Profile it allocates nothing in steady state, so per-slice kernel
// selection stays off the allocator.
func ProfileInto(p *SliceProfile, x *sptensor.Tensor, counts []int32) []int32 {
	n := x.NModes()
	p.NNZ = x.NNZ()
	if cap(p.Modes) < n {
		p.Modes = make([]ModeProfile, n)
	}
	p.Modes = p.Modes[:n]
	for m := 0; m < n; m++ {
		dim := x.Dims[m]
		if cap(counts) < dim {
			counts = make([]int32, dim)
		}
		c := counts[:dim]
		for i := range c {
			c[i] = 0
		}
		for _, i := range x.Inds[m] {
			c[i]++
		}
		nzRows, maxPer := 0, int32(0)
		for _, v := range c {
			if v > 0 {
				nzRows++
			}
			if v > maxPer {
				maxPer = v
			}
		}
		top := 0.0
		if p.NNZ > 0 {
			top = float64(maxPer) / float64(p.NNZ)
		}
		p.Modes[m] = ModeProfile{Dim: dim, NZRows: nzRows, TopRowFrac: top}
	}
	return counts
}
