package mttkrp

import (
	"testing"
	"testing/quick"

	"spstream/internal/dense"
	"spstream/internal/parallel"
)

// Plan-based segmented MTTKRP must match Sequential *bit for bit* on
// random slices, across modes, ranks, and worker counts: the stable
// counting sort preserves the original entry order within each output
// row, and each row has exactly one writer.
func TestPlanMTTKRPBitIdenticalToSequential(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	f := func(seed uint64, rankSel uint8, nnzSel uint16) bool {
		dims := []int{17, 41, 9}
		k := 1 + int(rankSel%7)
		nnz := 1 + int(nnzSel%800)
		x := randomSlice(seed, dims, nnz)
		factors := randomFactors(seed+1, dims, k)
		for _, workers := range []int{1, 2, 4} {
			c := NewComputerWithPool(workers, pool)
			plan := c.NewPlan(x)
			for mode := range dims {
				want := dense.NewMatrix(dims[mode], k)
				Sequential(want, x, factors, mode)
				got := dense.NewMatrix(dims[mode], k)
				c.PlanMTTKRP(got, plan, factors, mode)
				for i := range want.Data {
					if got.Data[i] != want.Data[i] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanMTTKRPFourWay(t *testing.T) {
	dims := []int{4, 3, 5, 2}
	x := randomSlice(3, dims, 60)
	factors := randomFactors(4, dims, 2)
	c := NewComputer(2)
	plan := c.NewPlan(x)
	for mode := range dims {
		want := denseReference(t, x, factors, mode)
		got := dense.NewMatrix(dims[mode], 2)
		c.PlanMTTKRP(got, plan, factors, mode)
		if d := got.MaxAbsDiff(want); d > 1e-10 {
			t.Fatalf("mode %d: plan MTTKRP off by %g", mode, d)
		}
	}
}

func TestPlanEmptySlice(t *testing.T) {
	dims := []int{5, 5, 5}
	x := randomSlice(7, dims, 0)
	factors := randomFactors(8, dims, 3)
	c := NewComputer(4)
	plan := c.NewPlan(x)
	out := dense.NewMatrix(5, 3)
	out.Fill(9)
	c.PlanMTTKRP(out, plan, factors, 0)
	for _, v := range out.Data {
		if v != 0 {
			t.Fatal("empty-slice plan MTTKRP must zero the output")
		}
	}
}

// The plan partition must cover every segment exactly once, with
// monotone per-worker boundaries, for adversarial skew (one giant row).
func TestPlanWorkerPartition(t *testing.T) {
	col := make([]int32, 1000)
	for i := 600; i < 1000; i++ {
		col[i] = int32(1 + i%7)
	}
	pm := buildPlanMode(col, 8, len(col), 4)
	if pm.workerSeg[0] != 0 || int(pm.workerSeg[pm.active]) != len(pm.rows) {
		t.Fatalf("partition endpoints wrong: %v over %d segments", pm.workerSeg, len(pm.rows))
	}
	for w := 1; w <= pm.active; w++ {
		if pm.workerSeg[w] < pm.workerSeg[w-1] {
			t.Fatalf("non-monotone partition %v", pm.workerSeg)
		}
	}
	// Permutation must be a bijection on [0, nnz).
	seen := make([]bool, len(col))
	for _, e := range pm.perm {
		if seen[e] {
			t.Fatalf("index %d permuted twice", e)
		}
		seen[e] = true
	}
}

// Steady-state kernels must be allocation-free once the plan is built
// and the scratch arenas are warm. Uses an owned pool larger than the
// worker count so the zero-alloc pool path is taken even on a
// single-core host.
func TestKernelsZeroAllocSteadyState(t *testing.T) {
	pool := parallel.NewPool(4)
	defer pool.Close()
	dims := []int{50, 300, 40}
	x := randomSlice(21, dims, 5000)
	factors := randomFactors(22, dims, 8)
	c := NewComputerWithPool(4, pool)
	plan := c.NewPlan(x)
	out := dense.NewMatrix(dims[0], 8)
	s := make([]float64, 8)
	// Warm up every kernel once (scratch + thread-local buffers).
	c.PlanMTTKRP(out, plan, factors, 0)
	c.Lock(out, x, factors, 0)
	c.Hybrid(out, x, factors, 0)
	c.TimeMode(s, x, factors)
	c.TimeModeLocked(s, x, factors)
	cases := map[string]func(){
		"PlanMTTKRP":     func() { c.PlanMTTKRP(out, plan, factors, 0) },
		"Lock":           func() { c.Lock(out, x, factors, 0) },
		"Hybrid":         func() { c.Hybrid(out, x, factors, 0) },
		"TimeMode":       func() { c.TimeMode(s, x, factors) },
		"TimeModeLocked": func() { c.TimeModeLocked(s, x, factors) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(50, fn); allocs != 0 {
			t.Errorf("%s: %v allocs per steady-state call, want 0", name, allocs)
		}
	}
}

// The K > 512 fallback used to heap-allocate a rank-sized buffer per
// 4096-nonzero chunk; the per-worker arenas must have eliminated that.
func TestKernelsZeroAllocLargeRank(t *testing.T) {
	pool := parallel.NewPool(2)
	defer pool.Close()
	dims := []int{30, 20, 10}
	x := randomSlice(23, dims, 2000)
	factors := randomFactors(24, dims, 600) // K > 512
	c := NewComputerWithPool(2, pool)
	out := dense.NewMatrix(dims[0], 600)
	c.Lock(out, x, factors, 0)
	if allocs := testing.AllocsPerRun(20, func() { c.Lock(out, x, factors, 0) }); allocs != 0 {
		t.Errorf("Lock at K=600: %v allocs per call, want 0", allocs)
	}
	s := make([]float64, 600)
	c.TimeMode(s, x, factors)
	if allocs := testing.AllocsPerRun(20, func() { c.TimeMode(s, x, factors) }); allocs != 0 {
		t.Errorf("TimeMode at K=600: %v allocs per call, want 0", allocs)
	}
}

// BenchmarkPlanVsLockInnerIters compares one slice's inner loop — the
// MTTKRP over every mode, repeated innerIters times — with the plan
// build amortized over those iterations (exactly how core uses it)
// against the lock-pool and hybrid kernels that re-walk the raw COO
// slice each iteration.
func BenchmarkPlanVsLockInnerIters(b *testing.B) {
	const innerIters = 5
	dims := []int{100, 2000, 300}
	x := randomSlice(31, dims, 50000)
	factors := randomFactors(32, dims, 16)
	outs := make([]*dense.Matrix, len(dims))
	for m, d := range dims {
		outs[m] = dense.NewMatrix(d, 16)
	}
	c := NewComputer(0)
	b.Run("lock", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for it := 0; it < innerIters; it++ {
				for mode := range dims {
					c.Lock(outs[mode], x, factors, mode)
				}
			}
		}
	})
	b.Run("hybrid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for it := 0; it < innerIters; it++ {
				for mode := range dims {
					c.Hybrid(outs[mode], x, factors, mode)
				}
			}
		}
	})
	b.Run("plan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan := c.NewPlan(x) // amortized: built once per slice
			for it := 0; it < innerIters; it++ {
				for mode := range dims {
					c.PlanMTTKRP(outs[mode], plan, factors, mode)
				}
			}
		}
	})
	b.Run("plan-steady", func(b *testing.B) {
		plan := c.NewPlan(x) // excluded: pure per-iteration cost
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for it := 0; it < innerIters; it++ {
				for mode := range dims {
					c.PlanMTTKRP(outs[mode], plan, factors, mode)
				}
			}
		}
	})
}
