package admm

import (
	"spstream/internal/dense"
	"spstream/internal/parallel"
)

// Baseline solves min ½‖Ψ − AΦ^{1/2}…‖ s.t. A ∈ C via the paper's
// Algorithm 2, updating a in place (a is the warm start). Each ADMM
// operation is its own fine-grained parallel pass over the I×K
// matrices, faithfully reproducing the memory-traffic profile of the
// original implementation (Table I: 22·I·K + K² words per iteration).
func (s *Solver) Baseline(a, phi, psi *dense.Matrix, con Constraint) (Stats, error) {
	if err := checkShapes(a, phi, psi); err != nil {
		return Stats{}, err
	}
	opt := s.opt
	rows, k := a.Rows, a.Cols
	s.ensureWorkspace(rows, k)
	u, atld, a0 := s.u, s.atld, s.a0
	u.Zero()

	p := rho(phi)
	chol, err := dense.FactorRidge(phi, p)
	if err != nil {
		return Stats{}, err
	}

	var stats Stats
	for iter := 1; iter <= opt.MaxIters; iter++ {
		if err := s.cancelled(); err != nil {
			return stats, err
		}
		stats.Iters = iter
		// init: A₀ ← A (separate pass, as in Alg. 2 line 4).
		parallel.For(rows, opt.Workers, func(_ int, r parallel.Range) {
			for i := r.Lo; i < r.Hi; i++ {
				copy(a0.Row(i), a.Row(i))
			}
		})
		// solve: Ã ← (Ψ + ρ(A + U)) (Φ + ρI)⁻¹.
		parallel.For(rows, opt.Workers, func(_ int, r parallel.Range) {
			for i := r.Lo; i < r.Hi; i++ {
				ra, ru, rp, rt := a.Row(i), u.Row(i), psi.Row(i), atld.Row(i)
				for j := range rt {
					rt[j] = rp[j] + p*(ra[j]+ru[j])
				}
				chol.SolveVec(rt)
			}
		})
		// project: A ← Proj_C(Ã − U); column norms of the pre-projection
		// matrix are computed in a separate reduction pass when needed.
		parallel.For(rows, opt.Workers, func(_ int, r parallel.Range) {
			for i := r.Lo; i < r.Hi; i++ {
				ra, ru, rt := a.Row(i), u.Row(i), atld.Row(i)
				for j := range ra {
					ra[j] = rt[j] - ru[j]
				}
			}
		})
		var colNorms2 []float64
		if con.NeedsColNorms() {
			colNorms2 = parallel.ReduceVec(rows, opt.Workers, k, func(_ int, r parallel.Range, acc []float64) {
				dense.ColNorms2(acc, a.RowView(r.Lo, r.Hi))
			})
		}
		parallel.For(rows, opt.Workers, func(_ int, r parallel.Range) {
			con.Project(a.RowView(r.Lo, r.Hi), colNorms2, p)
		})
		// update: U ← U + A − Ã.
		parallel.For(rows, opt.Workers, func(_ int, r parallel.Range) {
			for i := r.Lo; i < r.Hi; i++ {
				ra, ru, rt := a.Row(i), u.Row(i), atld.Row(i)
				for j := range ru {
					ru[j] += ra[j] - rt[j]
				}
			}
		})
		// error: ‖A−Ã‖²/‖A‖² and ‖A−A₀‖²/‖U‖².
		errs := parallel.ReduceVec(rows, opt.Workers, 4, func(_ int, r parallel.Range, acc []float64) {
			for i := r.Lo; i < r.Hi; i++ {
				ra, ru, rt, r0 := a.Row(i), u.Row(i), atld.Row(i), a0.Row(i)
				for j := range ra {
					x := ra[j]
					y := x - rt[j]
					pdiff := x - r0[j]
					acc[0] += y * y
					acc[1] += x * x
					acc[2] += pdiff * pdiff
					acc[3] += ru[j] * ru[j]
				}
			}
		})
		if relConverged(errs[0], errs[1], opt.Tol) && relConverged(errs[2], errs[3], opt.Tol) {
			stats.Converged = true
			return stats, nil
		}
		// Residual balancing (Boyd §3.4.1): keep the primal residual
		// ‖A−Ã‖² and the proxy dual residual ‖A−A₀‖² within RhoBalance
		// of each other by adapting ρ, rescaling U to keep ρ·U (the
		// unscaled dual) continuous, and re-factorizing Φ+ρI.
		if opt.AdaptiveRho {
			grew := errs[0] > opt.RhoBalance*errs[2] && errs[2] > 0
			shrank := errs[2] > opt.RhoBalance*errs[0] && errs[0] > 0
			if grew || shrank {
				factor := 2.0
				if shrank {
					factor = 0.5
				}
				p *= factor
				dense.Scale(u, 1/factor, u)
				chol, err = dense.FactorRidge(phi, p)
				if err != nil {
					return stats, err
				}
			}
		}
	}
	return stats, nil
}
