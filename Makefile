# spstream — build, test and reproduction targets.

GO ?= go

.PHONY: all build test race cover bench lint repro repro-measure fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Static analysis beyond vet. The extra tools are optional locally (CI
# installs them); absent tools are skipped, not failed.
lint:
	$(GO) vet ./...
	@command -v staticcheck >/dev/null 2>&1 && staticcheck ./... || echo "staticcheck not installed; skipping"
	@command -v govulncheck >/dev/null 2>&1 && govulncheck ./... || echo "govulncheck not installed; skipping"

# Regenerate every table and figure of the paper (model mode) plus the
# machine-readable CSV series under docs/csv/.
repro:
	$(GO) run ./cmd/paperbench -exp all -csv docs/csv | tee docs/paperbench_model.txt

# Measure the real kernels on this host (worker sweep up to GOMAXPROCS).
repro-measure:
	$(GO) run ./cmd/paperbench -exp all -mode measure -scale 0.1 -slices 2 | tee docs/paperbench_measure.txt

fuzz:
	$(GO) test -fuzz FuzzReadTNS -fuzztime 30s ./internal/sptensor/
	$(GO) test -fuzz FuzzReadBinary -fuzztime 30s ./internal/sptensor/
	$(GO) test -fuzz FuzzCoalesce -fuzztime 30s ./internal/sptensor/
	$(GO) test -fuzz FuzzParseEvent -fuzztime 30s ./cmd/watch/

clean:
	$(GO) clean -testcache -fuzzcache
