package resilience

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{Abort, RetrySlice, SkipSlice} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted garbage")
	}
}

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.MaxFactorizeRetries != 3 || c.RidgeBoost != 1e-6 || c.RidgeGrowth != 100 ||
		c.MaxSliceRetries != 1 || c.MaxDelta != 1e9 {
		t.Errorf("unexpected defaults: %+v", c)
	}
	// Explicit settings survive; negative MaxSliceRetries means zero.
	c = Config{MaxFactorizeRetries: 7, MaxSliceRetries: -1}.WithDefaults()
	if c.MaxFactorizeRetries != 7 || c.MaxSliceRetries != 0 {
		t.Errorf("explicit settings clobbered: %+v", c)
	}
}

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out")
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("v1"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// A failing write callback must leave the previous content intact
	// and no temp litter behind.
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		w.Write([]byte("garbage"))
		return errors.New("simulated crash")
	}); err == nil {
		t.Fatal("error from the write callback was swallowed")
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "v1" {
		t.Fatalf("content after failed write: %q, %v", data, err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %d entries", len(entries))
	}
}

// fakeState is a trivial StateWriter whose payload identifies the
// version written.
type fakeState struct{ payload string }

func (f fakeState) SaveState(w io.Writer) error {
	_, err := io.WriteString(w, f.payload)
	return err
}

func TestManagerWritePruneRestore(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Interval: t=1 skipped, t=2 and t=4 and t=6 written, keep=2 prunes
	// the oldest.
	for tt := 1; tt <= 6; tt++ {
		path, err := m.MaybeWrite(tt, fakeState{fmt.Sprintf("state-%d", tt)})
		if err != nil {
			t.Fatal(err)
		}
		if (tt%2 == 0) != (path != "") {
			t.Errorf("t=%d: path %q", tt, path)
		}
	}
	cks := m.Checkpoints()
	if len(cks) != 2 {
		t.Fatalf("kept %d checkpoints, want 2", len(cks))
	}
	if filepath.Base(cks[0]) != "ckpt-000000006.spstrm" || filepath.Base(cks[1]) != "ckpt-000000004.spstrm" {
		t.Fatalf("checkpoints not newest-first: %v", cks)
	}

	// RestoreLatest walks newest-first and skips invalid files.
	restored := ""
	rejectNewest := func(r io.Reader) error {
		b, _ := io.ReadAll(r)
		if string(b) == "state-6" {
			return errors.New("corrupt")
		}
		restored = string(b)
		return nil
	}
	path, err := m.RestoreLatest(rejectNewest)
	if err != nil {
		t.Fatal(err)
	}
	if restored != "state-4" || filepath.Base(path) != "ckpt-000000004.spstrm" {
		t.Fatalf("restored %q from %q", restored, path)
	}

	// All candidates invalid → ErrNoCheckpoint.
	_, err = m.RestoreLatest(func(io.Reader) error { return errors.New("bad") })
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("got %v, want ErrNoCheckpoint", err)
	}
	// Empty dir → ErrNoCheckpoint too.
	_, err = RestoreNewest(t.TempDir(), func(io.Reader) error { return nil })
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("got %v, want ErrNoCheckpoint", err)
	}
}

func TestListCheckpointsIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"ckpt-000000003.spstrm", "notes.txt", "ckpt-junk.spstrm", "ckpt-000000010.spstrm.tmp-x"} {
		os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644)
	}
	cks := ListCheckpoints(dir)
	if len(cks) != 1 || filepath.Base(cks[0]) != "ckpt-000000003.spstrm" {
		t.Fatalf("ListCheckpoints = %v", cks)
	}
}

// TestNewManagerSweepsStaleTemps: a crash between AtomicWriteFile's
// temp write and its rename leaves a hidden ".…tmp-*" orphan; the next
// startup must delete it without touching real checkpoints or foreign
// files.
func TestNewManagerSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, ".ckpt-000000007.spstrm.tmp-1234567")
	if err := os.WriteFile(stale, []byte("half-written checkpoint"), 0o600); err != nil {
		t.Fatal(err)
	}
	keep := []string{"ckpt-000000003.spstrm", "notes.txt"}
	for _, name := range keep {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := NewManager(dir, 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived the startup sweep (stat err: %v)", err)
	}
	for _, name := range keep {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("sweep deleted %s: %v", name, err)
		}
	}
}
