package cluster

import (
	"math/rand"
	"testing"

	"spstream/internal/sptensor"
)

// TestRouterBlocksTile: for awkward (dim, n) combinations — dim < n,
// dim % n ≠ 0, n = 1 — the blocks tile [0, dim) contiguously with no
// gaps and no overlaps, and ShardForRow inverts Block exactly.
func TestRouterBlocksTile(t *testing.T) {
	cases := []struct{ dim, n int }{
		{10, 3}, {12, 3}, {7, 4}, {1, 1}, {1, 5}, {2, 3}, {3, 7},
		{5, 2}, {100, 7}, {64, 64}, {63, 64}, {65, 64}, {1000, 1},
	}
	for _, c := range cases {
		r, err := NewRouter([]int{c.dim, 4}, c.n)
		if err != nil {
			t.Fatalf("(%d,%d): %v", c.dim, c.n, err)
		}
		prevHi := 0
		total := 0
		for s := 0; s < c.n; s++ {
			lo, hi := r.Block(s)
			if lo != prevHi {
				t.Errorf("(%d,%d): block %d starts at %d, want %d (gap or overlap)", c.dim, c.n, s, lo, prevHi)
			}
			if hi < lo {
				t.Errorf("(%d,%d): block %d inverted: [%d,%d)", c.dim, c.n, s, lo, hi)
			}
			total += hi - lo
			prevHi = hi
			for i := lo; i < hi; i++ {
				if got := r.ShardForRow(i); got != s {
					t.Errorf("(%d,%d): ShardForRow(%d) = %d, want %d", c.dim, c.n, i, got, s)
				}
			}
		}
		if prevHi != c.dim || total != c.dim {
			t.Errorf("(%d,%d): blocks cover %d rows ending at %d, want %d", c.dim, c.n, total, prevHi, c.dim)
		}
	}
}

// TestRouterGolden pins the assignment for a fixed topology so any
// future change to the block arithmetic — which would strand every
// deployed cluster's row ownership — fails loudly instead of silently
// rerouting rows.
func TestRouterGolden(t *testing.T) {
	r, err := NewRouter([]int{10, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Blocks: [0,3) [3,6) [6,10).
	want := []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 2}
	for i, s := range want {
		if got := r.ShardForRow(i); got != s {
			t.Errorf("ShardForRow(%d) = %d, want %d", i, got, s)
		}
	}
}

// TestRouterStability: two independently constructed routers agree on
// every assignment — the routing is a pure function of (event, dims,
// n), so "the same event routes to the same shard across process
// restarts" holds by construction; this guards against anyone adding
// per-instance state later.
func TestRouterStability(t *testing.T) {
	dims := []int{37, 5, 9}
	a, _ := NewRouter(dims, 4)
	b, _ := NewRouter(dims, 4)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		ev := sptensor.Event{Coord: []int32{
			int32(rng.Intn(dims[0])), int32(rng.Intn(dims[1])), int32(rng.Intn(dims[2])),
		}, Value: 1}
		sa, errA := a.ShardFor(ev)
		sb, errB := b.ShardFor(ev)
		if errA != nil || errB != nil {
			t.Fatalf("valid event rejected: %v / %v", errA, errB)
		}
		if sa != sb {
			t.Fatalf("event %v routed to %d and %d", ev.Coord, sa, sb)
		}
		lo, hi := a.Block(sa)
		if i0 := int(ev.Coord[0]); i0 < lo || i0 >= hi {
			t.Fatalf("event row %d outside its shard's block [%d,%d)", i0, lo, hi)
		}
	}
}

// TestRouterPartitionRejectsWithoutPartialForwards: one bad event
// anywhere in the batch yields zero batches — nothing to forward — so
// a dim-mismatched batch cannot be delivered to some shards and
// refused for others.
func TestRouterPartitionRejectsWithoutPartialForwards(t *testing.T) {
	r, _ := NewRouter([]int{10, 4}, 3)
	good := func(row int) sptensor.Event {
		return sptensor.Event{Coord: []int32{int32(row), 0}, Value: 1}
	}
	bad := []sptensor.Event{
		{Coord: []int32{1}, Value: 1},          // too few modes
		{Coord: []int32{1, 0, 0}, Value: 1},    // too many modes
		{Coord: []int32{10, 0}, Value: 1},      // mode-0 out of range
		{Coord: []int32{-1, 0}, Value: 1},      // negative
		{Coord: []int32{1, 4}, Value: 1},       // mode-1 out of range
	}
	for _, b := range bad {
		batches, err := r.Partition([]sptensor.Event{good(0), good(5), b, good(9)})
		if err == nil {
			t.Fatalf("bad event %v accepted", b.Coord)
		}
		if batches != nil {
			t.Fatalf("bad event %v produced partial batches: %v", b.Coord, batches)
		}
		if _, err := r.ShardFor(b); err == nil {
			t.Fatalf("ShardFor accepted %v", b.Coord)
		}
	}

	// A clean batch partitions in order with nothing lost.
	batches, err := r.Partition([]sptensor.Event{good(9), good(0), good(5), good(1), good(6)})
	if err != nil {
		t.Fatal(err)
	}
	counts := []int{2, 1, 2} // rows {0,1}, {5}, {9,6}
	for s, want := range counts {
		if len(batches[s]) != want {
			t.Errorf("shard %d got %d events, want %d", s, len(batches[s]), want)
		}
	}
	// Order within a bucket is arrival order.
	if batches[2][0].Coord[0] != 9 || batches[2][1].Coord[0] != 6 {
		t.Errorf("shard 2 bucket out of order: %v", batches[2])
	}
}

func TestRouterRejectsBadTopology(t *testing.T) {
	for _, c := range []struct {
		dims []int
		n    int
	}{
		{[]int{10}, 2},      // single mode
		{nil, 2},            // no modes
		{[]int{0, 4}, 2},    // zero dim
		{[]int{10, -1}, 2},  // negative dim
		{[]int{10, 4}, 0},   // no shards
		{[]int{10, 4}, -3},  // negative shards
	} {
		if _, err := NewRouter(c.dims, c.n); err == nil {
			t.Errorf("NewRouter(%v, %d) accepted", c.dims, c.n)
		}
	}
}
