package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"spstream/internal/dense"
	"spstream/internal/mttkrp"
	"spstream/internal/parallel"
	"spstream/internal/resilience"
	"spstream/internal/sptensor"
	"spstream/internal/trace"
)

// explicitRun holds the per-slice state of Algorithm 1 between the
// begin/iterate/finish phases. Splitting the slice loop this way keeps
// every per-slice artifact (compiled MTTKRP layouts, convergence state)
// out of the Decomposer while letting tests drive — and measure — a
// single steady-state inner iteration in isolation. The kernel table
// d.kernels (resolved in beginExplicit) says which layout each mode's
// MTTKRP dispatches to; plan is nil when no mode chose it, and the CSF
// trees live in the Decomposer's pooled engine.
type explicitRun struct {
	x    *sptensor.Tensor
	plan *mttkrp.Plan
	// rm, when non-nil, is the layout manager's compact renumbering of
	// the slice (see beginKernelsLayout): the kernels run over rm.X and
	// the gathered d.aNzCur factors, while d.a/d.psi stay in global row
	// ids — the remapping is invisible outside the mode-update inner
	// loop, so snapshots and checkpoints always see global rows.
	rm        *mttkrp.Remapped
	optimized bool
	deltaPrev float64
	res       SliceResult
}

// processSliceExplicit runs one time slice of Algorithm 1 with explicit
// factor matrices — the Baseline and Optimized variants. The two differ
// in kernel choice: Lock vs plan-based segmented MTTKRP, single-lock vs
// thread-local streaming-mode update, and Algorithm 2 vs Algorithm 3
// ADMM for constrained problems. The context is checked at iteration
// boundaries (and inside long ADMM loops via the solver's cancel hook),
// so cancellation abandons the slice without tearing down mid-kernel.
func (d *Decomposer) processSliceExplicit(ctx context.Context, x *sptensor.Tensor) (SliceResult, error) {
	run, err := d.beginExplicit(x)
	if err != nil {
		return run.res, err
	}
	for iter := 1; iter <= d.opt.MaxIters; iter++ {
		d.iterNo = iter
		if err := ctx.Err(); err != nil {
			return run.res, err
		}
		if err := d.injectFault(resilience.StageIterate, iter); err != nil {
			return run.res, err
		}
		converged, err := d.iterateExplicit(run)
		if err != nil {
			return run.res, err
		}
		if converged {
			run.res.Converged = true
			break
		}
	}
	return d.finishExplicit(run), nil
}

// beginExplicit performs the per-slice Pre work: snapshot A_{t-1} and
// C_{t-1}, seed H = C (A == A_{t-1} at the start of the inner loop),
// resolve the per-mode kernel table and compile the layouts it needs
// (coordinate plan and/or CSF trees — both amortized over the inner
// iterations), and solve the closed-form sₜ warm start.
func (d *Decomposer) beginExplicit(x *sptensor.Tensor) (*explicitRun, error) {
	run := &explicitRun{
		x:         x,
		optimized: d.opt.Algorithm != Baseline,
		deltaPrev: math.Inf(1),
		res:       SliceResult{T: d.t, NNZ: x.NNZ(), Fit: math.NaN()},
	}
	var err error
	d.bd.Time(trace.Pre, func() {
		for m := range d.a {
			d.prevA[m].CopyFrom(d.a[m])
			d.cPrev[m].CopyFrom(d.c[m])
			d.h[m].CopyFrom(d.c[m])
		}
		run.plan, run.rm = d.beginKernelsLayout(x)
		if run.rm != nil {
			d.ensureNzPsi(run.rm)
			d.ensureANzCur(run.rm)
			err = d.solveS(run.rm.X, d.aNzCur, !run.optimized)
		} else {
			err = d.solveS(x, d.a, !run.optimized)
		}
	})
	if err != nil {
		return run, err
	}
	d.bd.Time(trace.Misc, d.buildMuG)
	d.ensurePsi()
	return run, nil
}

// iterateExplicit runs one inner ALS/ADMM iteration (all modes plus the
// time-mode block) and reports convergence. This is the steady-state hot
// path: all parallel work dispatches ctx-style through the persistent
// pool, timing uses explicit Add calls, and the Φ factorization reuses
// the Decomposer's Cholesky storage — zero heap allocations per call.
func (d *Decomposer) iterateExplicit(run *explicitRun) (bool, error) {
	run.res.Iters++
	d.bd.Iters++
	phi := d.scratch1
	q := d.scratch2
	for n := 0; n < d.n; n++ {
		// Φ⁽ⁿ⁾ and its Cholesky factorization. Hoisted ahead of the Ψ
		// work (on which it does not depend) so the remapped path can use
		// the factor for its fused compact update below.
		t0 := time.Now()
		d.buildPhi(phi, n)
		err := d.factorize(phi)
		d.bd.Add(trace.Inverse, time.Since(t0))
		if err != nil {
			return false, fmt.Errorf("core: mode %d Φ factorization: %w", n, err)
		}
		// Ψ⁽ⁿ⁾ = MTTKRP(Xₜ, {A}, n)·diag(sₜ) — the slice's time mode
		// contributes the single Khatri-Rao row sₜ, which (all nonzeros
		// sharing one time index) reduces to a column scaling of the
		// N-way MTTKRP …
		t0 = time.Now()
		if rm := run.rm; rm != nil && d.opt.Constraint == nil {
			// Remapped path: the kernel runs over the compact slice and
			// gathered factors into the |nz|×K Ψ_nz …
			psiNz := d.nzPsi[n]
			switch d.kernels[n] {
			case kcCSF:
				d.csfEng.MTTKRP(psiNz, d.aNzCur, n)
			case kcPlan:
				d.mt.PlanMTTKRP(psiNz, run.plan, d.aNzCur, n)
			default:
				d.mt.Lock(psiNz, rm.X, d.aNzCur, n)
			}
			d.bd.Add(trace.MTTKRP, time.Since(t0))
			// … the historical term folds into the compact rows only:
			// Ψ_nz ← Ψ_nz·diag(sₜ) + (A⁽ⁿ⁾ₜ₋₁)_nz·Q …
			t0 = time.Now()
			d.buildQ(q, n)
			s := d.s
			prev := d.prevA[n]
			for r, g := range rm.NZ[n] {
				dst := psiNz.Row(r)
				for j := range dst {
					dst[j] *= s[j]
				}
				for kk, av := range prev.Row(int(g)) {
					if av == 0 {
						continue
					}
					rb := q.Data[kk*q.Stride : kk*q.Stride+d.k]
					for j, bv := range rb {
						dst[j] += av * bv
					}
				}
			}
			d.bd.Add(trace.Historical, time.Since(t0))
			// … and the full Iₙ×K Ψ is never materialized: the kernel
			// output is zero off the nz rows, so Ψ_z = (A⁽ⁿ⁾ₜ₋₁·Q)_z and
			// the z-row solves collapse into one K×K composition
			// M = Q·Φ⁻¹ followed by a streaming product — the per-row
			// triangular solves run only over the |nz| compact rows.
			t0 = time.Now()
			d.solveRows(psiNz, psiNz, &d.chol)
			for i := 0; i < d.k; i++ {
				d.chol.SolveVec(q.Row(i))
			}
			d.mulAB(d.a[n], d.prevA[n], q)
			rm.ScatterMode(d.a[n], psiNz, n)
			d.bd.Add(trace.Update, time.Since(t0))
		} else if rm != nil {
			// Constrained remap: ADMM needs the full-row Ψ, so build it
			// as overwrite-plus-scatter (still no Iₙ×K zero fill).
			psiNz := d.nzPsi[n]
			switch d.kernels[n] {
			case kcCSF:
				d.csfEng.MTTKRP(psiNz, d.aNzCur, n)
			case kcPlan:
				d.mt.PlanMTTKRP(psiNz, run.plan, d.aNzCur, n)
			default:
				d.mt.Lock(psiNz, rm.X, d.aNzCur, n)
			}
			d.bd.Add(trace.MTTKRP, time.Since(t0))
			t0 = time.Now()
			d.buildQ(q, n)
			d.mulAB(d.psi[n], d.prevA[n], q)
			s := d.s
			for r, g := range rm.NZ[n] {
				dst := d.psi[n].Row(int(g))
				src := psiNz.Row(r)
				for j, v := range src {
					dst[j] += v * s[j]
				}
			}
			d.bd.Add(trace.Historical, time.Since(t0))
		} else {
			switch d.kernels[n] {
			case kcCSF:
				d.csfEng.MTTKRP(d.psi[n], d.a, n)
			case kcPlan:
				d.mt.PlanMTTKRP(d.psi[n], run.plan, d.a, n)
			default:
				d.mt.Lock(d.psi[n], run.x, d.a, n)
			}
			dense.ScaleColumns(d.psi[n], d.psi[n], d.s)
			d.bd.Add(trace.MTTKRP, time.Since(t0))
			// … + A⁽ⁿ⁾ₜ₋₁ ((⊛_{v≠n} H⁽ᵛ⁾) ⊛ µG): the "Historical" term,
			// an Iₙ×K by K×K product against the full previous factor.
			t0 = time.Now()
			d.buildQ(q, n)
			d.addMulAB(d.psi[n], d.prevA[n], q)
			d.bd.Add(trace.Historical, time.Since(t0))
		}
		// A⁽ⁿ⁾ update for the paths that materialized the full Ψ: direct
		// solve (non-constrained) or ADMM. The fused remap path already
		// updated A⁽ⁿ⁾ above.
		if run.rm == nil || d.opt.Constraint != nil {
			t0 = time.Now()
			if d.opt.Constraint == nil {
				d.solveRows(d.a[n], d.psi[n], &d.chol)
			} else if run.optimized {
				st, e := d.solver.BlockedFused(d.a[n], phi, d.psi[n], d.opt.Constraint)
				run.res.ADMMIters += st.Iters
				err = e
			} else {
				st, e := d.solver.Baseline(d.a[n], phi, d.psi[n], d.opt.Constraint)
				run.res.ADMMIters += st.Iters
				err = e
			}
			d.bd.Add(trace.Update, time.Since(t0))
			if err != nil {
				return false, fmt.Errorf("core: mode %d ADMM: %w", n, err)
			}
		}
		// Refresh the Gram matrices used by the other modes. The C⁽ⁿ⁾
		// refresh is "Gram" work; the H⁽ⁿ⁾ cross-Gram against A⁽ⁿ⁾ₜ₋₁ is
		// part of the historical term (Fig. 8 accounting).
		t0 = time.Now()
		dense.GramParallel(d.c[n], d.a[n], d.opt.Workers)
		d.bd.Add(trace.Gram, time.Since(t0))
		t0 = time.Now()
		dense.MulAtBParallel(d.h[n], d.prevA[n], d.a[n], d.opt.Workers)
		d.bd.Add(trace.Historical, time.Since(t0))
		if d.opt.Normalize {
			t0 = time.Now()
			d.normalizeModeExplicit(n)
			d.bd.Add(trace.Misc, time.Since(t0))
		}
		if run.rm != nil {
			// Refresh the mode's compact gather so the remaining modes'
			// kernels (and the time-mode solve) read the updated rows.
			t0 = time.Now()
			run.rm.GatherMode(d.aNzCur[n], d.a[n], n)
			d.bd.Add(trace.Misc, time.Since(t0))
		}
	}
	// Time-mode ALS block: refresh sₜ against the updated factors (the
	// single-row MTTKRP that motivates the Hybrid Lock kernel) and with
	// it the µG + ssᵀ Hadamard operand.
	t0 := time.Now()
	var err error
	if run.rm != nil {
		err = d.solveS(run.rm.X, d.aNzCur, !run.optimized)
	} else {
		err = d.solveS(run.x, d.a, !run.optimized)
	}
	d.bd.Add(trace.MTTKRP, time.Since(t0))
	if err != nil {
		return false, err
	}
	t0 = time.Now()
	d.buildMuG()
	d.bd.Add(trace.Misc, time.Since(t0))
	// δₜ = Σ_n ‖A⁽ⁿ⁾−A⁽ⁿ⁾ₜ₋₁‖_F / ‖A⁽ⁿ⁾‖_F (Eq. 15).
	t0 = time.Now()
	var delta float64
	for n := 0; n < d.n; n++ {
		num := dense.ParallelFrobNorm2Diff(d.a[n], d.prevA[n], d.opt.Workers)
		den := dense.FrobNorm2(d.a[n])
		if den > 0 {
			delta += math.Sqrt(num / den)
		}
	}
	d.bd.Add(trace.Error, time.Since(t0))
	run.res.Delta = delta
	converged := math.Abs(delta-run.deltaPrev) < d.opt.Tol
	run.deltaPrev = delta
	return converged, nil
}

// finishExplicit performs the Post work (fit tracking, G/S temporal
// update) and returns the slice result.
func (d *Decomposer) finishExplicit(run *explicitRun) SliceResult {
	if d.opt.TrackFit {
		d.bd.Time(trace.Misc, func() { run.res.Fit = d.sliceFit(run.x) })
	}
	d.bd.Time(trace.Post, d.finishSlice)
	return run.res
}

// ensurePsi lazily allocates the Ψ workspace (one Iₙ×K matrix per mode).
func (d *Decomposer) ensurePsi() {
	if d.psi != nil {
		return
	}
	d.psi = make([]*dense.Matrix, d.n)
	for m, dim := range d.dims {
		d.psi[m] = dense.NewMatrix(dim, d.k)
	}
}

// ensureANzCur sizes the per-mode gathered compact factors A_nz to the
// remapped slice's nz row counts (reallocating only modes whose count
// changed) and fills them from the current factors.
func (d *Decomposer) ensureANzCur(rm *mttkrp.Remapped) {
	if d.aNzCur == nil {
		d.aNzCur = make([]*dense.Matrix, d.n)
	}
	for m := range d.aNzCur {
		rows := len(rm.NZ[m])
		if d.aNzCur[m] == nil || d.aNzCur[m].Rows != rows || d.aNzCur[m].Cols != d.k {
			d.aNzCur[m] = dense.NewMatrix(rows, d.k)
		}
	}
	rm.GatherFactorsInto(d.aNzCur, d.a)
}

// mulAB computes dst = a·b (full overwrite — the write variant of
// addMulAB) with the row dimension parallelized (a: I×K, b: K×K,
// dst: I×K). Allocation-free via the Decomposer-owned argument block.
func (d *Decomposer) mulAB(dst, a, b *dense.Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("core: mulAB shape mismatch")
	}
	pa := &d.pargs
	pa.dst, pa.a, pa.b = dst, a, b
	d.pool.Do(a.Rows, d.opt.Workers, pa, mulABBody)
	*pa = coreArgs{}
}

func mulABBody(ctx any, _ int, r parallel.Range) {
	pa := ctx.(*coreArgs)
	a, b, dst := pa.a, pa.b, pa.dst
	n := b.Cols
	for i := r.Lo; i < r.Hi; i++ {
		ra := a.Row(i)
		rd := dst.Row(i)[:n]
		for j := range rd {
			rd[j] = 0
		}
		for kk, av := range ra {
			if av == 0 {
				continue
			}
			rb := b.Data[kk*b.Stride : kk*b.Stride+n]
			for j, bv := range rb {
				rd[j] += av * bv
			}
		}
	}
}

// addMulAB computes dst += a·b with the row dimension parallelized
// (a: I×K, b: K×K, dst: I×K). Allocation-free: the operands travel
// through the Decomposer-owned argument block.
func (d *Decomposer) addMulAB(dst, a, b *dense.Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("core: addMulAB shape mismatch")
	}
	pa := &d.pargs
	pa.dst, pa.a, pa.b = dst, a, b
	d.pool.Do(a.Rows, d.opt.Workers, pa, addMulABBody)
	*pa = coreArgs{}
}

func addMulABBody(ctx any, _ int, r parallel.Range) {
	pa := ctx.(*coreArgs)
	a, b, dst := pa.a, pa.b, pa.dst
	n := b.Cols
	for i := r.Lo; i < r.Hi; i++ {
		ra := a.Row(i)
		rd := dst.Row(i)
		for kk, av := range ra {
			if av == 0 {
				continue
			}
			rb := b.Data[kk*b.Stride : kk*b.Stride+n]
			for j, bv := range rb {
				rd[j] += av * bv
			}
		}
	}
}

// solveRows computes dst = rhs·Φ⁻¹ row by row using the shared Cholesky
// factor, parallelized over rows. Allocation-free like addMulAB.
func (d *Decomposer) solveRows(dst, rhs *dense.Matrix, chol *dense.Cholesky) {
	if dst.Rows != rhs.Rows || dst.Cols != rhs.Cols {
		panic("core: solveRows shape mismatch")
	}
	pa := &d.pargs
	pa.dst, pa.a, pa.chol = dst, rhs, chol
	d.pool.Do(rhs.Rows, d.opt.Workers, pa, solveRowsBody)
	*pa = coreArgs{}
}

func solveRowsBody(ctx any, _ int, r parallel.Range) {
	pa := ctx.(*coreArgs)
	for i := r.Lo; i < r.Hi; i++ {
		row := pa.dst.Row(i)
		copy(row, pa.a.Row(i))
		pa.chol.SolveVec(row)
	}
}
