package core

import (
	"fmt"
	"math"

	"spstream/internal/csf"
	"spstream/internal/dense"
	"spstream/internal/mttkrp"
	"spstream/internal/parallel"
	"spstream/internal/sptensor"
	"spstream/internal/trace"
)

// processSliceExplicit runs one time slice of Algorithm 1 with explicit
// factor matrices — the Baseline and Optimized variants. The two differ
// only in kernel choice: Lock vs Hybrid MTTKRP, single-lock vs
// thread-local streaming-mode update, and Algorithm 2 vs Algorithm 3
// ADMM for constrained problems.
func (d *Decomposer) processSliceExplicit(x *sptensor.Tensor) (SliceResult, error) {
	res := SliceResult{T: d.t, NNZ: x.NNZ(), Fit: math.NaN()}
	optimized := d.opt.Algorithm != Baseline
	var err error

	// Pre: snapshot A_{t-1} and C_{t-1}, seed H = C (A == A_{t-1} at the
	// start of the inner loop), solve the closed-form sₜ update, and —
	// with the SortedMTTKRP extension — build the per-mode sorted views
	// (amortized over the inner iterations).
	var sorted []*mttkrp.Sorted
	var forest *csf.Forest
	d.bd.Time(trace.Pre, func() {
		for m := range d.a {
			d.prevA[m].CopyFrom(d.a[m])
			d.cPrev[m].CopyFrom(d.c[m])
			d.h[m].CopyFrom(d.c[m])
		}
		if d.opt.SortedMTTKRP {
			sorted = make([]*mttkrp.Sorted, d.n)
			for m := range sorted {
				sorted[m] = mttkrp.SortForMode(x, m)
			}
		}
		if d.opt.CSFMTTKRP {
			forest, err = csf.NewForest(x)
		}
		if err == nil {
			err = d.solveS(x, d.a, !optimized)
		}
	})
	if err != nil {
		return res, err
	}
	d.bd.Time(trace.Misc, d.buildMuG)

	d.ensurePsi()
	phi := d.scratch1
	q := d.scratch2
	deltaPrev := math.Inf(1)
	for iter := 1; iter <= d.opt.MaxIters; iter++ {
		res.Iters = iter
		d.bd.Iters++
		for n := 0; n < d.n; n++ {
			// Ψ⁽ⁿ⁾ = MTTKRP(Xₜ, {A}, n)·diag(sₜ) — the slice's time mode
			// contributes the single Khatri-Rao row sₜ, which (all
			// nonzeros sharing one time index) reduces to a column
			// scaling of the N-way MTTKRP …
			d.bd.Time(trace.MTTKRP, func() {
				switch {
				case forest != nil:
					forest.MTTKRP(d.psi[n], d.a, n, d.opt.Workers)
				case sorted != nil:
					d.mt.SortedMTTKRP(d.psi[n], sorted[n], d.a)
				case optimized:
					d.mt.Hybrid(d.psi[n], x, d.a, n)
				default:
					d.mt.Lock(d.psi[n], x, d.a, n)
				}
				dense.ScaleColumns(d.psi[n], d.psi[n], d.s)
			})
			// … + A⁽ⁿ⁾ₜ₋₁ ((⊛_{v≠n} H⁽ᵛ⁾) ⊛ µG): the "Historical" term,
			// an Iₙ×K by K×K product against the full previous factor.
			d.bd.Time(trace.Historical, func() {
				d.buildQ(q, n)
				addMulAB(d.psi[n], d.prevA[n], q, d.opt.Workers)
			})
			// Φ⁽ⁿ⁾ and its Cholesky factorization.
			var chol *dense.Cholesky
			d.bd.Time(trace.Inverse, func() {
				d.buildPhi(phi, n)
				chol, err = dense.Factor(phi)
			})
			if err != nil {
				return res, fmt.Errorf("core: mode %d Φ factorization: %w", n, err)
			}
			// A⁽ⁿ⁾ update: direct solve (non-constrained) or ADMM.
			d.bd.Time(trace.Update, func() {
				if d.opt.Constraint == nil {
					solveRowsParallel(d.a[n], d.psi[n], chol, d.opt.Workers)
					return
				}
				if optimized {
					st, e := d.solver.BlockedFused(d.a[n], phi, d.psi[n], d.opt.Constraint)
					res.ADMMIters += st.Iters
					err = e
				} else {
					st, e := d.solver.Baseline(d.a[n], phi, d.psi[n], d.opt.Constraint)
					res.ADMMIters += st.Iters
					err = e
				}
			})
			if err != nil {
				return res, fmt.Errorf("core: mode %d ADMM: %w", n, err)
			}
			// Refresh the Gram matrices used by the other modes. The
			// C⁽ⁿ⁾ refresh is "Gram" work; the H⁽ⁿ⁾ cross-Gram against
			// A⁽ⁿ⁾ₜ₋₁ is part of the historical term (Fig. 8 accounting).
			d.bd.Time(trace.Gram, func() {
				dense.GramParallel(d.c[n], d.a[n], d.opt.Workers)
			})
			d.bd.Time(trace.Historical, func() {
				dense.MulAtBParallel(d.h[n], d.prevA[n], d.a[n], d.opt.Workers)
			})
			if d.opt.Normalize {
				d.bd.Time(trace.Misc, func() { d.normalizeModeExplicit(n) })
			}
		}
		// Time-mode ALS block: refresh sₜ against the updated factors
		// (the single-row MTTKRP that motivates the Hybrid Lock kernel)
		// and with it the µG + ssᵀ Hadamard operand.
		d.bd.Time(trace.MTTKRP, func() {
			err = d.solveS(x, d.a, !optimized)
		})
		if err != nil {
			return res, err
		}
		d.bd.Time(trace.Misc, d.buildMuG)
		// δₜ = Σ_n ‖A⁽ⁿ⁾−A⁽ⁿ⁾ₜ₋₁‖_F / ‖A⁽ⁿ⁾‖_F (Eq. 15).
		var delta float64
		d.bd.Time(trace.Error, func() {
			for n := 0; n < d.n; n++ {
				num := dense.ParallelFrobNorm2Diff(d.a[n], d.prevA[n], d.opt.Workers)
				den := dense.FrobNorm2(d.a[n])
				if den > 0 {
					delta += math.Sqrt(num / den)
				}
			}
		})
		res.Delta = delta
		if math.Abs(delta-deltaPrev) < d.opt.Tol {
			res.Converged = true
			break
		}
		deltaPrev = delta
	}

	if d.opt.TrackFit {
		d.bd.Time(trace.Misc, func() { res.Fit = d.sliceFit(x) })
	}
	d.bd.Time(trace.Post, d.finishSlice)
	return res, nil
}

// ensurePsi lazily allocates the Ψ workspace (one Iₙ×K matrix per mode).
func (d *Decomposer) ensurePsi() {
	if d.psi != nil {
		return
	}
	d.psi = make([]*dense.Matrix, d.n)
	for m, dim := range d.dims {
		d.psi[m] = dense.NewMatrix(dim, d.k)
	}
}

// addMulAB computes dst += a·b with the row dimension parallelized
// (a: I×K, b: K×K, dst: I×K).
func addMulAB(dst, a, b *dense.Matrix, workers int) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic("core: addMulAB shape mismatch")
	}
	n := b.Cols
	parallel.For(a.Rows, workers, func(_ int, r parallel.Range) {
		for i := r.Lo; i < r.Hi; i++ {
			ra := a.Row(i)
			rd := dst.Row(i)
			for kk, av := range ra {
				if av == 0 {
					continue
				}
				rb := b.Data[kk*b.Stride : kk*b.Stride+n]
				for j, bv := range rb {
					rd[j] += av * bv
				}
			}
		}
	})
}

// solveRowsParallel computes dst = rhs·Φ⁻¹ row by row using the shared
// Cholesky factor, parallelized over rows.
func solveRowsParallel(dst, rhs *dense.Matrix, chol *dense.Cholesky, workers int) {
	if dst.Rows != rhs.Rows || dst.Cols != rhs.Cols {
		panic("core: solveRowsParallel shape mismatch")
	}
	parallel.For(rhs.Rows, workers, func(_ int, r parallel.Range) {
		for i := r.Lo; i < r.Hi; i++ {
			row := dst.Row(i)
			copy(row, rhs.Row(i))
			chol.SolveVec(row)
		}
	})
}
