// Package ingest is the overload-robustness layer of the live
// streaming path: a bounded queue between the slice producer (event
// windowing) and the decomposer, pluggable shed policies for when the
// solver falls behind the feed, a lag-aware degradation controller
// that steps model quality down (and hysteretically back up) to match
// sustained load, and a graceful drain for shutdown.
//
// The design goal mirrors the fault-tolerance layer's (internal/
// resilience): a monitoring deployment must degrade instead of dying.
// Where resilience handles failures (NaN slices, non-SPD Grams,
// panics), ingest handles overload — the producer outpacing the
// solver. Every produced slice is accounted for exactly once:
//
//	produced == processed + failed + coalesced + shed
//
// with shed split by cause (policy, staleness, drain deadline), so an
// operator can tell "the model skipped data" apart from "the model
// aggregated data" (the Coalesce policy merges pending windows into
// one coarser slice — events aggregated, not lost).
//
// The Spill policy adds a durable tier: overflow goes to a write-ahead
// log (internal/ingest/wal) and is replayed as capacity frees — or
// after a crash — extending the invariant to
//
//	produced + spill_recovered ==
//	    processed + failed + coalesced + shed + spill_pending
package ingest

import "fmt"

// ShedPolicy selects what the bounded queue does with a new slice when
// it is full.
type ShedPolicy int

const (
	// Block applies backpressure: the producer waits for queue space.
	// No data is lost, but a slow solver stalls the feed (appropriate
	// when the producer can buffer upstream, e.g. reading a file).
	Block ShedPolicy = iota
	// DropNewest rejects the incoming slice, preserving the queued
	// backlog — freshest data is sacrificed first.
	DropNewest
	// DropOldest evicts the longest-queued slice to admit the new one —
	// the queue always holds the freshest window of the feed.
	DropOldest
	// Coalesce merges the incoming slice into the newest queued slice
	// (events aggregated into one coarser window), so the queue stays
	// bounded without losing any event mass.
	Coalesce
	// Spill overflows a full queue to a durable on-disk write-ahead log
	// (Config.Spill) instead of dropping or blocking: memory stays
	// bounded at QueueCap windows, no event is lost, and the backlog
	// survives a crash — a restart replays unconsumed segments. The
	// only lossy path is the WAL itself failing (disk full, write
	// fault), counted separately as ShedSpill. The accounting invariant
	// extends to
	//
	//	produced + spill_recovered ==
	//	    processed + failed + coalesced + shed + spill_pending
	//
	// where spill_pending is the durable backlog still on disk.
	Spill
)

// String names the policy.
func (p ShedPolicy) String() string {
	switch p {
	case Block:
		return "block"
	case DropNewest:
		return "drop-newest"
	case DropOldest:
		return "drop-oldest"
	case Coalesce:
		return "coalesce"
	case Spill:
		return "spill"
	default:
		return fmt.Sprintf("ShedPolicy(%d)", int(p))
	}
}

// ParseShedPolicy parses "block", "drop-newest", "drop-oldest",
// "coalesce", or "spill".
func ParseShedPolicy(s string) (ShedPolicy, error) {
	switch s {
	case "block":
		return Block, nil
	case "drop-newest":
		return DropNewest, nil
	case "drop-oldest":
		return DropOldest, nil
	case "coalesce":
		return Coalesce, nil
	case "spill":
		return Spill, nil
	default:
		return Block, fmt.Errorf("ingest: unknown shed policy %q (want block, drop-newest, drop-oldest, coalesce, spill)", s)
	}
}
