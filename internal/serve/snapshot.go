// Package serve is the fault-tolerant serving layer: an HTTP daemon
// (cmd/spstreamd) around the live-ingestion pipeline and the resilient
// decomposer, exposing the current model for reads while the stream is
// being solved.
//
// Its three load-bearing properties:
//
//   - Snapshot isolation. Readers never see the solver's in-progress or
//     rolled-back state: after every *committed* slice the decomposer's
//     commit hook deep-copies the factors into an immutable
//     FactorSnapshot published by atomic pointer swap. A slice that
//     fails, retries, or rolls back publishes nothing, so the visible
//     model always corresponds to a slice boundary that will never be
//     retracted.
//
//   - Backpressure-aware admission. The ingest queue is bounded; when
//     it sheds, the API says so (429 + Retry-After) instead of hanging
//     or lying. Request bodies are size-capped and every handler runs
//     under a deadline with panic containment.
//
//   - A circuit breaker around the solver loop. Consecutive slice
//     failures open it: ingest is refused at the front door (503,
//     counted separately from overload sheds), readiness goes false,
//     and after a cooldown a single probe slice decides whether to
//     close it again.
package serve

import (
	"fmt"
	"math"

	"spstream/internal/core"
	"spstream/internal/dense"
)

// FactorSnapshot is an immutable copy of the decomposition state at a
// committed slice boundary. All storage is deep-copied at publication
// and never mutated afterwards, so any number of readers may hold one
// while the solver advances or rolls back.
type FactorSnapshot struct {
	// T is the number of slices committed into this snapshot.
	T int
	// Dims are the slice mode lengths.
	Dims []int
	// Rank is the decomposition rank K.
	Rank int
	// Factors are deep copies of the non-temporal factor matrices.
	Factors []*dense.Matrix
	// S is the temporal row sₜ of the newest committed slice.
	S []float64
	// Fit is the newest committed slice's fit (NaN without TrackFit).
	Fit float64
}

// TakeSnapshot deep-copies the decomposer's current factor state. It
// must be called while the decomposer is quiescent — in practice from
// its commit hook or the pipeline's consumer callbacks.
func TakeSnapshot(d *core.Decomposer, fit float64) *FactorSnapshot {
	dims := d.Dims()
	s := &FactorSnapshot{
		T:       d.T(),
		Dims:    append([]int(nil), dims...),
		Rank:    d.Rank(),
		Factors: make([]*dense.Matrix, len(dims)),
		S:       append([]float64(nil), d.LastS()...),
		Fit:     fit,
	}
	for m := range dims {
		s.Factors[m] = d.Factor(m).Clone()
	}
	return s
}

// ReconstructAt evaluates the snapshot's model X̂ₜ = [[A…; sₜ]] at one
// coordinate of the newest slice, with bounds checking (the serving
// layer's trust boundary for client-supplied coordinates).
func (s *FactorSnapshot) ReconstructAt(coord []int32) (float64, error) {
	if len(coord) != len(s.Dims) {
		return 0, fmt.Errorf("serve: want %d coordinates, got %d", len(s.Dims), len(coord))
	}
	for m, c := range coord {
		if c < 0 || int(c) >= s.Dims[m] {
			return 0, fmt.Errorf("serve: coordinate %d out of range for mode %d (dim %d)", c, m, s.Dims[m])
		}
	}
	sum := 0.0
	for k := range s.S {
		p := s.S[k]
		for m := range s.Factors {
			p *= s.Factors[m].At(int(coord[m]), k)
		}
		sum += p
	}
	return sum, nil
}

// Equal reports bit-for-bit equality of two snapshots' numerical state
// (factors, temporal row, and slice counter). NaN fits compare equal to
// NaN. Used by the isolation tests to prove a snapshot taken during a
// rollback is identical to the pre-slice snapshot.
func (s *FactorSnapshot) Equal(o *FactorSnapshot) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.T != o.T || s.Rank != o.Rank || len(s.Dims) != len(o.Dims) ||
		len(s.Factors) != len(o.Factors) || len(s.S) != len(o.S) {
		return false
	}
	for m := range s.Dims {
		if s.Dims[m] != o.Dims[m] {
			return false
		}
	}
	for k := range s.S {
		if math.Float64bits(s.S[k]) != math.Float64bits(o.S[k]) {
			return false
		}
	}
	for m := range s.Factors {
		a, b := s.Factors[m], o.Factors[m]
		if a.Rows != b.Rows || a.Cols != b.Cols {
			return false
		}
		for i := 0; i < a.Rows; i++ {
			ra, rb := a.Row(i), b.Row(i)
			for j := range ra {
				if math.Float64bits(ra[j]) != math.Float64bits(rb[j]) {
					return false
				}
			}
		}
	}
	return true
}
