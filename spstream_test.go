package spstream_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"spstream"
	"spstream/internal/synth"
)

func TestQuickstartFlow(t *testing.T) {
	stream, err := spstream.GeneratePreset("uber", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := spstream.New(stream.Dims, spstream.Options{
		Rank:      4,
		Algorithm: spstream.SpCPStream,
		TrackFit:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	results, err := dec.ProcessStream(stream.Source(), func(spstream.SliceResult) { calls++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != stream.T() || calls != stream.T() {
		t.Fatalf("processed %d slices, callback %d times, want %d", len(results), calls, stream.T())
	}
	if dec.T() != stream.T() {
		t.Fatal("decomposer slice counter wrong")
	}
	for m := range stream.Dims {
		f := dec.Factor(m)
		if f.Rows != stream.Dims[m] || f.Cols != 4 {
			t.Fatalf("factor %d shape %d×%d", m, f.Rows, f.Cols)
		}
		if f.HasNaN() {
			t.Fatal("NaN in factors")
		}
	}
	if s := dec.Temporal(); s.Rows != stream.T() || s.Cols != 4 {
		t.Fatalf("temporal shape %d×%d", s.Rows, s.Cols)
	}
}

func TestAllAlgorithmsViaFacade(t *testing.T) {
	stream, err := spstream.GeneratePreset("uber", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []spstream.Algorithm{spstream.Baseline, spstream.Optimized, spstream.SpCPStream} {
		dec, err := spstream.New(stream.Dims, spstream.Options{Rank: 3, Algorithm: alg, MaxIters: 5})
		if err != nil {
			t.Fatal(err)
		}
		for ti := 0; ti < 3; ti++ {
			if _, err := dec.ProcessSlice(stream.Slices[ti]); err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
		}
	}
}

func TestConstraintsViaFacade(t *testing.T) {
	stream, err := spstream.GeneratePreset("uber", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, con := range []spstream.Constraint{spstream.NonNeg(), spstream.L1(0.01), spstream.NonNegMaxColNorm(100)} {
		dec, err := spstream.New(stream.Dims, spstream.Options{
			Rank: 3, Algorithm: spstream.Optimized, Constraint: con, MaxIters: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.ProcessSlice(stream.Slices[0]); err != nil {
			t.Fatalf("%s: %v", con.Name(), err)
		}
	}
}

func TestTNSRoundTripViaFacade(t *testing.T) {
	orig := spstream.NewTensor(4, 5, 3)
	orig.Append([]int32{0, 1, 2}, 1.5)
	orig.Append([]int32{3, 4, 0}, -2.5)
	path := t.TempDir() + "/x.tns"
	if err := spstream.SaveTNS(path, orig); err != nil {
		t.Fatal(err)
	}
	back, err := spstream.LoadTNS(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != 2 {
		t.Fatal("round trip lost nonzeros")
	}
	// ReadTNS with explicit dims.
	r := strings.NewReader("1 2 3 1.5\n")
	tt, err := spstream.ReadTNS(r, []int{4, 5, 3})
	if err != nil {
		t.Fatal(err)
	}
	if tt.Dims[0] != 4 {
		t.Fatal("dims ignored")
	}
}

func TestSplitStreamViaFacade(t *testing.T) {
	tensor := spstream.NewTensor(4, 5, 6)
	tensor.Append([]int32{1, 2, 3}, 1)
	tensor.Append([]int32{2, 2, 0}, 2)
	stream, err := spstream.SplitStream(tensor, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stream.T() != 6 || len(stream.Dims) != 2 {
		t.Fatalf("split shape: T=%d dims=%v", stream.T(), stream.Dims)
	}
}

func TestGenerateCustomConfig(t *testing.T) {
	stream, err := spstream.Generate(spstream.SynthConfig{
		Name:        "custom",
		Dists:       []synth.IndexDist{synth.Uniform{N: 10}, synth.Uniform{N: 12}},
		T:           3,
		NNZPerSlice: 50,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stream.T() != 3 {
		t.Fatal("custom generation wrong")
	}
}

func TestPresetNames(t *testing.T) {
	names := spstream.PresetNames()
	if len(names) != 4 {
		t.Fatalf("presets: %v", names)
	}
	for _, n := range names {
		if _, err := spstream.GeneratePreset(n, 0.05); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
	if _, err := spstream.GeneratePreset("bogus", 1); err == nil {
		t.Fatal("bogus preset accepted")
	}
}

func TestSaveFactors(t *testing.T) {
	stream, err := spstream.GeneratePreset("uber", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := spstream.New(stream.Dims, spstream.Options{Rank: 2, MaxIters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.ProcessSlice(stream.Slices[0]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := spstream.WriteFactorsTNS(&buf, dec); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	wantRows := 0
	for _, d := range stream.Dims {
		wantRows += d
	}
	if lines < wantRows {
		t.Fatalf("factor dump has %d lines, want ≥ %d", lines, wantRows)
	}
	path := t.TempDir() + "/factors.txt"
	if err := spstream.SaveFactors(path, dec); err != nil {
		t.Fatal(err)
	}
}

func TestFitSensible(t *testing.T) {
	// Near-dense planted data: fit should be clearly positive.
	stream, err := spstream.Generate(spstream.SynthConfig{
		Name:        "dense",
		Dists:       []synth.IndexDist{synth.Uniform{N: 8}, synth.Uniform{N: 8}, synth.Uniform{N: 8}},
		T:           4,
		NNZPerSlice: 2000,
		Values:      synth.ValuePlanted,
		PlantedRank: 2,
		NoiseStd:    0.01,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := spstream.New(stream.Dims, spstream.Options{Rank: 4, TrackFit: true, MaxIters: 20})
	if err != nil {
		t.Fatal(err)
	}
	results, err := dec.ProcessStream(stream.Source(), nil)
	if err != nil {
		t.Fatal(err)
	}
	last := results[len(results)-1]
	if math.IsNaN(last.Fit) || last.Fit < 0.5 {
		t.Fatalf("fit %.3f too low on near-dense planted data", last.Fit)
	}
}
