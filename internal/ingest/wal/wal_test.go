package wal

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustOpen(t *testing.T, opts Options) (*Log, Recovery) {
	t.Helper()
	l, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func payload(i int) []byte { return []byte(fmt.Sprintf("record-%06d-payload", i)) }

// drainAll reads every pending record, asserting contiguous sequence
// numbers from first.
func drainAll(t *testing.T, l *Log, first uint64) int {
	t.Helper()
	n := 0
	want := first
	for {
		p, seq, ok, err := l.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			return n
		}
		if seq != want {
			t.Fatalf("seq = %d, want %d", seq, want)
		}
		if !bytes.Equal(p, payload(int(seq))) {
			t.Fatalf("payload mismatch at seq %d", seq)
		}
		want++
		n++
	}
}

// TestAppendReadRoundTrip: records come back in order, byte-identical,
// across segment rotations.
func TestAppendReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rotations.
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	const n = 100
	for i := 1; i <= n; i++ {
		seq, err := l.Append(payload(i))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("Append seq = %d, want %d", seq, i)
		}
	}
	if l.Segments() < 5 {
		t.Fatalf("Segments() = %d with 256-byte segments, want many", l.Segments())
	}
	if got := drainAll(t, l, 1); got != n {
		t.Fatalf("drained %d records, want %d", got, n)
	}
	if p := l.Pending(); p != 0 {
		t.Fatalf("Pending = %d after drain, want 0", p)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestReopenResumes: close, reopen, and both the unread backlog and the
// append sequence continue where they left off.
func TestReopenResumes(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	for i := 1; i <= 10; i++ {
		if _, err := l.Append(payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Consume 4, leave 6 pending.
	for i := 0; i < 4; i++ {
		if _, _, ok, err := l.Next(); !ok || err != nil {
			t.Fatalf("Next: ok=%v err=%v", ok, err)
		}
	}
	l.Close()

	l2, rec := mustOpen(t, Options{Dir: dir, SegmentBytes: 256})
	if rec.Records != 10 {
		t.Fatalf("recovered %d records, want 10", rec.Records)
	}
	// Reader restarts at the oldest on-disk record (offset coordination
	// is the caller's job via SeekTo); appends continue at 11.
	if seq, err := l2.Append(payload(11)); err != nil || seq != 11 {
		t.Fatalf("Append after reopen: seq=%d err=%v", seq, err)
	}
	if got := drainAll(t, l2, 1); got != 11 {
		t.Fatalf("drained %d after reopen, want 11", got)
	}
	l2.Close()
}

// TestTornTailTruncated: a crash mid-append leaves a torn final record;
// recovery truncates it and the log keeps working.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir})
	for i := 1; i <= 5; i++ {
		if _, err := l.Append(payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Abort() // no flush — but the writes are in the page cache

	// Tear the last record: chop 7 bytes off the single segment.
	seg := filepath.Join(dir, "wal-000000001.seg")
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	l2, rec := mustOpen(t, Options{Dir: dir})
	if rec.Records != 4 {
		t.Fatalf("recovered %d records after torn tail, want 4", rec.Records)
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("TruncatedBytes = 0, want >0")
	}
	// The torn record's sequence number is reused by the next append —
	// it never existed durably.
	if seq, err := l2.Append(payload(5)); err != nil || seq != 5 {
		t.Fatalf("post-recovery Append: seq=%d err=%v", seq, err)
	}
	if got := drainAll(t, l2, 1); got != 5 {
		t.Fatalf("drained %d, want 5", got)
	}
	l2.Close()
}

// TestMidSegmentCorruption: a bit flip in an old record is detected by
// CRC; the reader skips the damaged segment's remainder and reports the
// loss rather than returning bad bytes.
func TestMidSegmentCorruption(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 200})
	for i := 1; i <= 12; i++ {
		if _, err := l.Append(payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Flip a byte inside the FIRST segment's second record (past header
	// + one full record).
	seg := filepath.Join(dir, "wal-000000001.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	off := segHeaderSize + recHeaderSize + len(payload(1)) + recHeaderSize + 3
	if off >= len(data) {
		t.Fatalf("test geometry: offset %d beyond segment size %d", off, len(data))
	}
	data[off] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := mustOpen(t, Options{Dir: dir, SegmentBytes: 200})
	if rec.LostRecords == 0 {
		t.Fatal("LostRecords = 0 after mid-segment corruption, want >0")
	}
	// Reading: first record fine, then a LossError, then the next
	// segment continues.
	if _, seq, ok, err := l2.Next(); !ok || err != nil || seq != 1 {
		t.Fatalf("first read: seq=%d ok=%v err=%v", seq, ok, err)
	}
	var loss *LossError
	good := 1
	for {
		_, _, ok, err := l2.Next()
		if err != nil {
			if !errors.As(err, &loss) {
				t.Fatalf("want LossError, got %v", err)
			}
			continue
		}
		if !ok {
			break
		}
		good++
	}
	if loss == nil {
		t.Fatal("reader never surfaced a LossError")
	}
	if good+int(loss.Lost) > 12 || good < 6 {
		t.Fatalf("good=%d lost=%d of 12", good, loss.Lost)
	}
	l2.Close()
}

// TestMaxBytes: the byte budget sheds instead of growing.
func TestMaxBytes(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 128, MaxBytes: 400})
	var full bool
	for i := 1; i <= 100; i++ {
		if _, err := l.Append(payload(i)); err != nil {
			if !errors.Is(err, ErrFull) {
				t.Fatalf("Append: %v, want ErrFull", err)
			}
			full = true
			break
		}
	}
	if !full {
		t.Fatal("100 appends never hit a 400-byte MaxBytes")
	}
	if l.DiskBytes() > 400 {
		t.Fatalf("DiskBytes = %d beyond MaxBytes 400", l.DiskBytes())
	}
	l.Close()
}

// TestOffsetsRoundTrip: offsets survive reopen, bind exactly, fall back
// to the newest at-or-below entry, and GC passed segments.
func TestOffsetsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 128})
	for i := 1; i <= 30; i++ {
		if _, err := l.Append(payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore := l.Segments()
	// Consume 20, then bind checkpoints: t=5→seq 10, t=9→seq 20.
	for i := 0; i < 20; i++ {
		l.Next()
	}
	if err := l.CommitOffset(5, 10); err != nil {
		t.Fatal(err)
	}
	if err := l.CommitOffset(9, 20); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, _ := mustOpen(t, Options{Dir: dir, SegmentBytes: 128})
	if l2.Segments() >= segsBefore {
		t.Fatalf("GC kept all %d segments despite floor seq 10", segsBefore)
	}
	if seq, ok := l2.OffsetFor(9); !ok || seq != 20 {
		t.Fatalf("OffsetFor(9) = %d,%v want 20,true", seq, ok)
	}
	// Exact t missing: newest at-or-below wins.
	if seq, ok := l2.OffsetFor(7); !ok || seq != 10 {
		t.Fatalf("OffsetFor(7) = %d,%v want 10,true", seq, ok)
	}
	// Below every entry: replay-everything fallback.
	if _, ok := l2.OffsetFor(3); ok {
		t.Fatal("OffsetFor(3) found an entry below the oldest commit")
	}
	// Replay from the t=9 offset: records 21..30.
	l2.SeekTo(20)
	if got := drainAll(t, l2, 21); got != 10 {
		t.Fatalf("replayed %d records from offset, want 10", got)
	}
	l2.Close()
}

// TestOffsetsCorruptionDegrades: a damaged offsets sidecar degrades to
// replay-everything, never an Open failure.
func TestOffsetsCorruptionDegrades(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir})
	for i := 1; i <= 5; i++ {
		l.Append(payload(i))
	}
	if err := l.CommitOffset(3, 4); err != nil {
		t.Fatal(err)
	}
	l.Close()

	if err := os.WriteFile(filepath.Join(dir, offsetName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, _ := mustOpen(t, Options{Dir: dir})
	if _, ok := l2.OffsetFor(3); ok {
		t.Fatal("corrupt offsets file still resolved an offset")
	}
	if got := l2.Pending(); got != 5 {
		t.Fatalf("Pending = %d with lost offsets, want 5 (replay everything)", got)
	}
	l2.Close()
}

// TestGroupCommit: with a long SyncEvery only the first append in the
// window fsyncs; Sync() forces the rest out.
func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	l, _ := mustOpen(t, Options{Dir: dir, SyncEvery: time.Hour, Clock: clock})
	for i := 1; i <= 8; i++ {
		if _, err := l.Append(payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !l.Dirty() {
		t.Fatal("log clean after appends inside the group-commit window")
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.Dirty() {
		t.Fatal("log dirty after explicit Sync")
	}
	// Advancing the clock past the window makes the next append flush.
	now = now.Add(2 * time.Hour)
	if _, err := l.Append(payload(9)); err != nil {
		t.Fatal(err)
	}
	if l.Dirty() {
		t.Fatal("append past the window did not group-commit")
	}
	l.Close()
}

// TestSeekToClamps: seeking beyond either end clamps instead of
// derailing the cursor.
func TestSeekToClamps(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir})
	for i := 1; i <= 3; i++ {
		l.Append(payload(i))
	}
	l.SeekTo(999)
	if p := l.Pending(); p != 0 {
		t.Fatalf("Pending = %d after over-seek, want 0", p)
	}
	l.SeekTo(0)
	if got := drainAll(t, l, 1); got != 3 {
		t.Fatalf("drained %d after rewind, want 3", got)
	}
	l.Close()
}

// TestEmptyDirOpen: a fresh directory yields an empty, working log.
func TestEmptyDirOpen(t *testing.T) {
	l, rec := mustOpen(t, Options{Dir: t.TempDir()})
	if rec.Records != 0 || rec.Segments != 0 {
		t.Fatalf("fresh recovery = %+v, want zero", rec)
	}
	if _, _, ok, err := l.Next(); ok || err != nil {
		t.Fatalf("Next on empty log: ok=%v err=%v", ok, err)
	}
	l.Close()
}

// TestOversizedRecordRejected at both ends: append refuses it, and a
// forged oversized length on disk reads as corruption without
// allocating the claimed size.
func TestOversizedRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, Options{Dir: dir, MaxRecordBytes: 64})
	if _, err := l.Append(make([]byte, 65)); err == nil {
		t.Fatal("oversized append accepted")
	}
	if _, err := l.Append(nil); err == nil {
		t.Fatal("empty append accepted")
	}
	l.Close()

	// Forge a record claiming 4 GiB.
	forged := make([]byte, 0, 64)
	forged = append(forged, segMagic[:]...)
	forged = append(forged, 1, 0, 0, 0, 0, 0, 0, 0) // firstSeq=1
	forged = append(forged, 0xFF, 0xFF, 0xFF, 0xFF) // len
	forged = append(forged, 0, 0, 0, 0)             // crc
	br := bufio.NewReader(bytes.NewReader(forged[segHeaderSize:]))
	if _, err := readRecord(br, 64); !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("forged length read as %v, want ErrCorruptRecord", err)
	}
}
