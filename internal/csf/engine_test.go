package csf

import (
	"math"
	"testing"

	"spstream/internal/dense"
	"spstream/internal/mttkrp"
	"spstream/internal/parallel"
	"spstream/internal/sptensor"
	"spstream/internal/synth"
)

// rawSlice is randomSlice without coalescing, so duplicate coordinates
// survive into the engine (which must merge them into leaf value
// ranges).
func rawSlice(seed uint64, dims []int, nnz int) *sptensor.Tensor {
	r := synth.NewRNG(seed)
	x := sptensor.New(dims...)
	coord := make([]int32, len(dims))
	for e := 0; e < nnz; e++ {
		for m, d := range dims {
			coord[m] = int32(r.Intn(d))
		}
		x.Append(coord, r.NormFloat64())
	}
	return x
}

func maxAbsDiff(a, b *dense.Matrix) float64 {
	m := 0.0
	for i, v := range a.Data {
		if d := math.Abs(v - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// TestEngineMatchesSequential is the property test of the CSF kernels
// against the reference kernel across the shapes the issue calls out:
// empty fibers (rows with no nonzeros), duplicate coordinates, a
// single-row streaming-like mode, and ranks 1 and 64. The engine
// reassociates the per-row sums (fiber tree order instead of entry
// order), so the comparison is tolerance-bounded — the exactness
// guarantee the engine does make, bit-identical output across worker
// counts, is asserted separately below.
func TestEngineMatchesSequential(t *testing.T) {
	cases := []struct {
		name string
		dims []int
		nnz  int
		dup  bool
	}{
		{"3way-sparse", []int{12, 30, 25}, 400, false},
		{"3way-dense-rows", []int{4, 9, 7}, 600, false},
		{"3way-duplicates", []int{6, 8, 5}, 500, true},
		{"single-row-mode", []int{1, 40, 30}, 300, false},
		{"short-mode", []int{2, 50, 60}, 800, false},
		{"4way", []int{7, 11, 5, 9}, 500, false},
		{"4way-duplicates", []int{3, 4, 5, 6}, 900, true},
		{"2way", []int{20, 35}, 250, false},
		{"empty", []int{10, 12, 8}, 0, false},
		{"one-nnz", []int{10, 12, 8}, 1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var x *sptensor.Tensor
			if tc.dup {
				x = rawSlice(42, tc.dims, tc.nnz)
			} else {
				x = randomSlice(42, tc.dims, tc.nnz)
			}
			for _, k := range []int{1, 4, 64} {
				factors := randomFactors(99, tc.dims, k)
				eng := NewEngine(3)
				eng.Begin(x)
				for mode := range tc.dims {
					want := dense.NewMatrix(tc.dims[mode], k)
					mttkrp.Sequential(want, x, factors, mode)
					got := dense.NewMatrix(tc.dims[mode], k)
					eng.MTTKRP(got, factors, mode)
					scale := 1.0
					for _, v := range want.Data {
						if a := math.Abs(v); a > scale {
							scale = a
						}
					}
					if d := maxAbsDiff(got, want); d > 1e-12*scale*float64(tc.nnz+1) {
						t.Fatalf("k=%d mode %d: engine differs from Sequential by %g", k, mode, d)
					}
				}
			}
		})
	}
}

// TestEngineWorkerBitIdentity asserts the engine's determinism contract:
// for a fixed slice the output is bit-identical for any worker count —
// the tile decomposition depends only on the tree, and shard merges run
// in tile order. The slice is large enough to produce split roots
// (dims[0]=2 concentrates ~half the nonzeros in each root, far above
// splitThresholdNNZ).
func TestEngineWorkerBitIdentity(t *testing.T) {
	dims := []int{2, 200, 300}
	x := randomSlice(7, dims, 20000)
	factors := randomFactors(8, dims, 9)
	pool := parallel.NewPool(6)
	defer pool.Close()

	ref := make([]*dense.Matrix, len(dims))
	eng1 := NewEngineWithPool(1, pool)
	eng1.Begin(x)
	for mode := range dims {
		ref[mode] = dense.NewMatrix(dims[mode], 9)
		eng1.MTTKRP(ref[mode], factors, mode)
	}
	if st := eng1.TreeStats(0); st.ShardTiles == 0 {
		t.Fatalf("test slice produced no shard tiles (tiles=%d); not exercising the sharded path", st.Tiles)
	}
	for _, workers := range []int{2, 3, 6} {
		eng := NewEngineWithPool(workers, pool)
		eng.Begin(x)
		for mode := range dims {
			got := dense.NewMatrix(dims[mode], 9)
			eng.MTTKRP(got, factors, mode)
			for i, v := range got.Data {
				if v != ref[mode].Data[i] {
					t.Fatalf("workers=%d mode=%d: output differs from 1-worker run at %d (%g ≠ %g)",
						workers, mode, i, v, ref[mode].Data[i])
				}
			}
		}
	}
}

// TestEngineRepeatIdentity: repeated MTTKRP calls on the same built tree
// must be bit-identical (the inner ALS loop relies on pure kernels).
func TestEngineRepeatIdentity(t *testing.T) {
	dims := []int{15, 20, 25}
	x := randomSlice(3, dims, 2000)
	factors := randomFactors(4, dims, 8)
	eng := NewEngine(4)
	eng.Begin(x)
	first := dense.NewMatrix(dims[1], 8)
	eng.MTTKRP(first, factors, 1)
	again := dense.NewMatrix(dims[1], 8)
	for i := 0; i < 3; i++ {
		eng.MTTKRP(again, factors, 1)
		for j, v := range again.Data {
			if v != first.Data[j] {
				t.Fatalf("call %d differs at %d", i, j)
			}
		}
	}
}

// TestEngineZeroAllocSteadyState matches the PR 1 guarantee for the
// coordinate plan: once the engine's buffers have grown to the stream's
// working size, a full slice cycle — Begin, per-mode build, and several
// MTTKRP calls per mode — allocates nothing.
func TestEngineZeroAllocSteadyState(t *testing.T) {
	dims := []int{2, 150, 200} // dims[0]=2 forces the sharded split-root path too
	slices := []*sptensor.Tensor{
		randomSlice(11, dims, 15000),
		randomSlice(12, dims, 14000),
		randomSlice(13, dims, 15000),
	}
	k := 8
	factors := randomFactors(5, dims, k)
	outs := make([]*dense.Matrix, len(dims))
	for m := range dims {
		outs[m] = dense.NewMatrix(dims[m], k)
	}
	pool := parallel.NewPool(2) // ≥ workers, so dispatch never hits the spawn fallback
	defer pool.Close()
	eng := NewEngineWithPool(2, pool)
	cycle := func(x *sptensor.Tensor) {
		eng.Begin(x)
		for m := range dims {
			eng.Build(m)
		}
		for it := 0; it < 2; it++ {
			for m := range dims {
				eng.MTTKRP(outs[m], factors, m)
			}
		}
	}
	// Warm up across all slices so every buffer reaches its high-water
	// mark (per-slice tree sizes differ).
	for _, x := range slices {
		cycle(x)
	}
	i := 0
	allocs := testing.AllocsPerRun(10, func() {
		cycle(slices[i%len(slices)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state slice cycle allocates %v times", allocs)
	}
}

// TestEngineLazyBuild: MTTKRP without an explicit Build must build the
// tree on first use and reuse it afterwards.
func TestEngineLazyBuild(t *testing.T) {
	dims := []int{10, 12, 14}
	x := randomSlice(21, dims, 800)
	factors := randomFactors(22, dims, 6)
	eng := NewEngine(2)
	eng.Begin(x)
	if eng.Built(1) {
		t.Fatal("tree reported built before first use")
	}
	out := dense.NewMatrix(dims[1], 6)
	eng.MTTKRP(out, factors, 1)
	if !eng.Built(1) {
		t.Fatal("tree not built after MTTKRP")
	}
	want := dense.NewMatrix(dims[1], 6)
	mttkrp.Sequential(want, x, factors, 1)
	if d := maxAbsDiff(out, want); d > 1e-9 {
		t.Fatalf("lazy-built result differs by %g", d)
	}
}

// TestModeOrder checks the level ordering: root first, then remaining
// modes by increasing length.
func TestModeOrder(t *testing.T) {
	dims := []int{50, 3, 40, 3}
	got := ModeOrder(nil, dims, 2)
	want := []int{2, 1, 3, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ModeOrder = %v, want %v", got, want)
		}
	}
	// In-place reuse must not allocate.
	buf := make([]int, 0, 8)
	if n := testing.AllocsPerRun(10, func() { buf = ModeOrder(buf, dims, 0) }); n != 0 {
		t.Fatalf("ModeOrder with capacity allocates %v times", n)
	}
}
