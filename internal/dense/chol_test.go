package dense

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// randomSPD builds A = BᵀB + I, guaranteed SPD.
func randomSPD(seed int64, n int) *Matrix {
	b := randomMatrix(seed, n+3, n)
	out := NewMatrix(n, n)
	Gram(out, b)
	AddScaledIdentity(out, out, 1)
	return out
}

func TestFactorRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		a := randomSPD(seed, 6)
		c, err := Factor(a)
		if err != nil {
			return false
		}
		l := c.L()
		recon := NewMatrix(6, 6)
		MulABt(recon, l, l)
		return recon.Equal(a, 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFactorRejectsIndefinite(t *testing.T) {
	a := Identity(3)
	a.Set(2, 2, -1)
	if _, err := Factor(a); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("expected ErrNotSPD, got %v", err)
	}
}

func TestFactorRejectsNonSquare(t *testing.T) {
	if _, err := Factor(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestSolveVec(t *testing.T) {
	a := randomSPD(1, 5)
	c, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, -2, 3, -4, 5}
	b := make([]float64, 5)
	MulVec(b, a, x)
	c.SolveVec(b)
	for i := range x {
		if !almostEqual(b[i], x[i], 1e-9) {
			t.Fatalf("SolveVec[%d] = %v want %v", i, b[i], x[i])
		}
	}
}

func TestSolveRowsIsRightInverse(t *testing.T) {
	// X = B·A⁻¹ must satisfy X·A = B.
	a := randomSPD(2, 4)
	c, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	b := randomMatrix(3, 6, 4)
	x := b.Clone()
	c.SolveRows(x)
	recon := NewMatrix(6, 4)
	MulAB(recon, x, a)
	if !recon.Equal(b, 1e-8) {
		t.Fatalf("SolveRows: X·A ≠ B (max diff %g)", recon.MaxAbsDiff(b))
	}
}

func TestInverse(t *testing.T) {
	a := randomSPD(4, 5)
	c, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	inv := c.Inverse()
	prod := NewMatrix(5, 5)
	MulAB(prod, a, inv)
	if !prod.Equal(Identity(5), 1e-8) {
		t.Fatalf("A·A⁻¹ ≠ I (max diff %g)", prod.MaxAbsDiff(Identity(5)))
	}
}

func TestFactorRidge(t *testing.T) {
	// A singular matrix becomes factorable with a ridge.
	a := NewMatrix(3, 3) // zero matrix: not SPD
	if _, err := Factor(a); err == nil {
		t.Fatal("zero matrix should not factor")
	}
	c, err := FactorRidge(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	// (0 + 2I)⁻¹ should halve.
	b := []float64{2, 4, 6}
	c.SolveVec(b)
	want := []float64{1, 2, 3}
	for i := range want {
		if !almostEqual(b[i], want[i], 1e-12) {
			t.Fatalf("ridge solve[%d] = %v", i, b[i])
		}
	}
}

func TestLogDet(t *testing.T) {
	a := Identity(4)
	a.Set(0, 0, 2)
	a.Set(1, 1, 3)
	c, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(6.0)
	if !almostEqual(c.LogDet(), want, 1e-12) {
		t.Fatalf("LogDet = %v want %v", c.LogDet(), want)
	}
}

func TestSolveSPD(t *testing.T) {
	a := randomSPD(9, 4)
	b := randomMatrix(10, 3, 4)
	x, err := SolveSPD(a, 0, b)
	if err != nil {
		t.Fatal(err)
	}
	recon := NewMatrix(3, 4)
	MulAB(recon, x, a)
	if !recon.Equal(b, 1e-8) {
		t.Fatal("SolveSPD failed round trip")
	}
}
