// Command spstream-gateway is the fault-tolerant front door of a
// row-sharded spstreamd cluster: a stateless HTTP gateway that routes
// ingest to shards by mode-0 row block, fans reads out to every shard
// and merges them, and degrades gracefully when shards are down.
//
// Endpoints (the single-node API, cluster-wide):
//
//	POST /v1/ingest        event lines; partitioned by mode-0 row and
//	                       forwarded per shard (FIFO, retried, breaker-guarded)
//	GET  /v1/factors       merged model: mode-0 row-block concatenation +
//	                       per-shard Gram norms; "partial": true with the
//	                       missing row ranges when shards are down
//	GET  /v1/reconstruct   ?coord routes to the owning shard; without coord
//	                       the merged model energy ‖X̂‖² = Σ_s ‖X̂_s‖²
//	GET  /v1/stats         forward ledger + per-shard breaker/backlog state,
//	                       with a topology audit of each shard's row block
//	GET  /healthz          liveness
//	GET  /readyz           503 only when draining or every shard is down
//
// Each shard is a full spstreamd started with -shard-id/-shard-count
// over the same -dims; the gateway and daemons derive identical row
// blocks from that pair, and /v1/stats flags any daemon whose
// self-reported block disagrees.
//
// Example (3 shards):
//
//	spstreamd -addr :9001 -dims 90,40 -shard-id 0 -shard-count 3 &
//	spstreamd -addr :9002 -dims 90,40 -shard-id 1 -shard-count 3 &
//	spstreamd -addr :9003 -dims 90,40 -shard-id 2 -shard-count 3 &
//	spstream-gateway -addr :8080 -dims 90,40 \
//	    -shards http://localhost:9001,http://localhost:9002,http://localhost:9003
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"spstream/internal/cluster"
	"spstream/internal/resilience"
	"spstream/internal/version"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address (\":0\" picks a free port, printed on startup)")
		dimsFlag   = flag.String("dims", "", "mode lengths of each event's coordinates, comma separated (required; must match the shards)")
		shardsFlag = flag.String("shards", "", "comma-separated shard base URLs in shard-id order (required)")

		queueEv  = flag.Int("queue", 65536, "per-shard forward-queue bound, in events")
		sendRet  = flag.Int("send-retries", 0, "max delivery attempts per batch (0 = retry until shutdown)")
		readRet  = flag.Int("read-retries", 1, "extra attempts per shard for fan-out reads")
		reqTO    = flag.Duration("request-timeout", 5*time.Second, "per-upstream-request deadline")
		probeInt = flag.Duration("probe-interval", time.Second, "per-shard /readyz probe cadence")

		backBase = flag.Duration("backoff-base", 100*time.Millisecond, "retry backoff base delay")
		backCap  = flag.Duration("backoff-cap", 15*time.Second, "retry backoff ceiling")
		brkFails = flag.Int("breaker-failures", 3, "consecutive upstream failures that open a shard's breaker")
		brkCool  = flag.Duration("breaker-cooldown", 5*time.Second, "shard breaker open→half-open cooldown")

		bodyLimit = flag.Int64("body-limit", 8<<20, "max ingest request body bytes")
		drainTO   = flag.Duration("drain-timeout", 30*time.Second, "max time to flush the forward queues on shutdown")
		showVer   = flag.Bool("version", false, "print version/build information and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("spstream-gateway", version.String())
		return
	}
	dims, err := parseDims(*dimsFlag)
	if err != nil {
		fatal(err)
	}
	if *shardsFlag == "" {
		fatal(fmt.Errorf("-shards is required"))
	}
	var shardURLs []string
	for _, u := range strings.Split(*shardsFlag, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			fatal(fmt.Errorf("empty shard URL in -shards"))
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		shardURLs = append(shardURLs, u)
	}
	router, err := cluster.NewRouter(dims, len(shardURLs))
	if err != nil {
		fatal(err)
	}

	g, err := cluster.New(cluster.Config{
		Router:         router,
		Shards:         shardURLs,
		Version:        version.String(),
		QueueEvents:    *queueEv,
		SendRetries:    *sendRet,
		ReadRetries:    *readRet,
		RequestTimeout: *reqTO,
		ProbeInterval:  *probeInt,
		Backoff:        resilience.BackoffConfig{Base: *backBase, Cap: *backCap},
		Breaker:        resilience.BreakerConfig{FailureThreshold: *brkFails, Cooldown: *brkCool},
		BodyLimit:      *bodyLimit,
		DrainTimeout:   *drainTO,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "spstream-gateway: "+format+"\n", args...)
		},
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// The e2e harness (and humans using :0) parse this line.
	fmt.Printf("spstream-gateway %s listening on %s\n", version.Version, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop() // a second signal force-quits a wedged drain
	}()

	if err := g.Run(ctx, ln); err != nil {
		fatal(err)
	}
}

func parseDims(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("-dims is required")
	}
	var dims []int
	for _, part := range strings.Split(s, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d < 1 {
			return nil, fmt.Errorf("bad dimension %q", part)
		}
		dims = append(dims, d)
	}
	if len(dims) < 2 {
		return nil, fmt.Errorf("need at least 2 modes")
	}
	return dims, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spstream-gateway:", err)
	os.Exit(1)
}
