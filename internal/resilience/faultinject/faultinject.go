// Package faultinject is the deterministic fault harness for the
// resilience layer. It corrupts slice data (NaN values, out-of-range
// coordinates), damages checkpoint files (truncation, bit flips), and
// compiles per-slice fault schedules into resilience.Hook callbacks
// (forced non-SPD factorizations, kernel panics, stalls). All
// randomness flows through an explicitly seeded SplitMix64 generator,
// so every chaos test replays bit-identically.
//
// It is a test harness: nothing in this package belongs in a
// production configuration.
package faultinject

import (
	"fmt"
	"math"
	"os"
	"time"

	"spstream/internal/dense"
	"spstream/internal/resilience"
	"spstream/internal/sptensor"
	"spstream/internal/synth"
)

// Injector drives the randomized corruptions from one deterministic
// seed.
type Injector struct {
	rng *synth.RNG
}

// New creates an injector from a seed.
func New(seed uint64) *Injector { return &Injector{rng: synth.NewRNG(seed)} }

// CorruptValues replaces up to count randomly chosen nonzero values of
// x with NaN (in place) and returns how many entries were written.
// Duplicates may land on the same entry; the slice is guaranteed to
// contain at least one NaN when count > 0 and the slice is non-empty.
func (in *Injector) CorruptValues(x *sptensor.Tensor, count int) int {
	if x.NNZ() == 0 || count <= 0 {
		return 0
	}
	for i := 0; i < count; i++ {
		x.Vals[in.rng.Intn(x.NNZ())] = math.NaN()
	}
	return count
}

// CorruptCoord sets one randomly chosen coordinate of x out of range
// (≥ the mode length), the corruption class that panics inside the
// MTTKRP kernels when it reaches them unscanned. It reports whether a
// coordinate was corrupted.
func (in *Injector) CorruptCoord(x *sptensor.Tensor) bool {
	if x.NNZ() == 0 || x.NModes() == 0 {
		return false
	}
	m := in.rng.Intn(x.NModes())
	e := in.rng.Intn(x.NNZ())
	x.Inds[m][e] = int32(x.Dims[m] + in.rng.Intn(16))
	return true
}

// TruncateFile chops the last n bytes off the file — the shape a crash
// mid-write or a torn copy leaves behind.
func TruncateFile(path string, n int64) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := info.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

// BitFlip flips one randomly chosen bit of the file in place — silent
// at-rest corruption that only an integrity footer catches.
func (in *Injector) BitFlip(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("faultinject: %s is empty, nothing to flip", path)
	}
	bit := in.rng.Intn(len(data) * 8)
	data[bit/8] ^= 1 << (bit % 8)
	return os.WriteFile(path, data, 0o644)
}

// Plan is a deterministic per-slice fault schedule. Compile it into a
// hook with Hook and install that on resilience.Config.FaultHook.
type Plan struct {
	// NotSPD forces the first n Φ factorizations of the listed slice
	// (first attempt only) to fail with dense.ErrNotSPD, exercising the
	// ridge-escalation ladder against a Gram that is actually fine.
	NotSPD map[int]int
	// PanicAt panics once at the listed slice's first iteration
	// boundary (first attempt only), exercising panic containment and
	// rollback; a retry of the same slice succeeds.
	PanicAt map[int]bool
	// StallAt sleeps for the given duration at every iteration boundary
	// of the listed slice (first attempt only), exercising the
	// per-slice deadline.
	StallAt map[int]time.Duration
}

// Hook compiles the plan into a stateful resilience.Hook. Each call
// creates independent consumption state, so one plan can arm several
// decomposers.
func (p Plan) Hook() resilience.Hook {
	notSPD := make(map[int]int, len(p.NotSPD))
	for t, n := range p.NotSPD {
		notSPD[t] = n
	}
	panicked := make(map[int]bool, len(p.PanicAt))
	return func(f resilience.Fault) error {
		switch f.Stage {
		case resilience.StageFactorize:
			if f.Attempt == 0 && notSPD[f.Slice] > 0 {
				notSPD[f.Slice]--
				return fmt.Errorf("faultinject: forced non-SPD at slice %d iter %d: %w", f.Slice, f.Iter, dense.ErrNotSPD)
			}
		case resilience.StageIterate:
			if f.Attempt != 0 {
				return nil
			}
			if p.PanicAt[f.Slice] && !panicked[f.Slice] {
				panicked[f.Slice] = true
				panic(fmt.Sprintf("faultinject: forced panic at slice %d iter %d", f.Slice, f.Iter))
			}
			if d := p.StallAt[f.Slice]; d > 0 {
				time.Sleep(d)
			}
		}
		return nil
	}
}
