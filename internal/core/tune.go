package core

import (
	"fmt"

	"spstream/internal/perfmodel"
)

// This file is the runtime tuning surface the lag-aware degradation
// controller (internal/ingest) drives: the knobs that trade model
// quality for per-slice throughput while a stream is live. All of them
// may only be called between slices (the Decomposer is not safe for
// concurrent use), which is exactly when the controller runs — after
// one ProcessSliceContext returns and before the next begins.

// MaxIters returns the current inner (per-slice) iteration bound.
func (d *Decomposer) MaxIters() int { return d.opt.MaxIters }

// SetMaxIters adjusts the inner iteration bound for subsequent slices
// (floor 1). Fewer inner iterations is the cheapest quality/throughput
// trade: the factors take smaller steps per slice but the model stays
// well-defined.
func (d *Decomposer) SetMaxIters(n int) {
	if n < 1 {
		n = 1
	}
	d.opt.MaxIters = n
}

// ADMMMaxIters returns the inner ADMM iteration bound (constrained
// runs).
func (d *Decomposer) ADMMMaxIters() int { return d.solver.Options().MaxIters }

// SetADMMMaxIters adjusts the ADMM inner-loop bound for subsequent
// solves (floor 1).
func (d *Decomposer) SetADMMMaxIters(n int) { d.solver.SetMaxIters(n) }

// Algorithm returns the solver variant currently in use.
func (d *Decomposer) Algorithm() Algorithm { return d.opt.Algorithm }

// SetAlgorithm switches the solver variant between slices. The three
// variants share the explicit factor/Gram state that crosses slice
// boundaries (finishSpCP materializes A = A_z ⊕ A_nz every slice), so
// the switch is exact: the next slice simply runs the other inner
// loop. The spCP-stream incremental C_z bookkeeping is invalidated by
// any switch (its prevNZ set refers to slices processed by the other
// path), so the next spCP slice recomputes C_z,t−1 from scratch — one
// extra Gram pass, after which incremental maintenance resumes.
//
// The same constraint-compatibility rules as construction apply
// (spCP-stream rejects constraints unless ConstrainedSpCP is set);
// incompatible switches return an error and leave the decomposer
// unchanged.
func (d *Decomposer) SetAlgorithm(a Algorithm) error {
	if a == d.opt.Algorithm {
		return nil
	}
	trial := d.opt
	trial.Algorithm = a
	if err := trial.Validate(d.dims); err != nil {
		return err
	}
	d.opt.Algorithm = a
	d.prevNZ = nil
	return nil
}

// MTTKRPKernel returns the current factor-mode MTTKRP kernel policy.
func (d *Decomposer) MTTKRPKernel() MTTKRPKernel { return d.opt.MTTKRPKernel }

// SetMTTKRPKernel overrides the MTTKRP kernel policy for subsequent
// slices. KernelDefault restores the per-algorithm default (Lock for
// Baseline, cost-model Auto otherwise); KernelAuto/KernelPlan/
// KernelCSF/KernelLock force a specific strategy. The switch is exact:
// every kernel computes the same MTTKRP, only its schedule (and hence
// rounding order) differs, and the table is re-resolved at the next
// slice begin. Unknown values return an error and leave the policy
// unchanged.
func (d *Decomposer) SetMTTKRPKernel(k MTTKRPKernel) error {
	if k < KernelDefault || k > KernelLock {
		return fmt.Errorf("core: unknown MTTKRPKernel %d", int(k))
	}
	d.opt.MTTKRPKernel = k
	return nil
}

// LayoutPolicy returns the current adaptive-layout policy.
func (d *Decomposer) LayoutPolicy() LayoutPolicy { return d.opt.Layout }

// SetLayoutPolicy overrides the adaptive-layout policy for subsequent
// slices. LayoutOff freezes remapping and histogram learning (the
// learned state is kept, so re-enabling resumes where it left off);
// LayoutDefault/LayoutAuto re-enable it. The switch is exact in the
// same sense as SetMTTKRPKernel: every layout computes the same
// updates, only memory order (and hence rounding order) differs.
// Unknown values return an error and leave the policy unchanged.
func (d *Decomposer) SetLayoutPolicy(l LayoutPolicy) error {
	if l < LayoutDefault || l > LayoutOff {
		return fmt.Errorf("core: unknown LayoutPolicy %d", int(l))
	}
	d.opt.Layout = l
	return nil
}

// LayoutStats summarizes the adaptive layout manager (zero value until
// the first slice profiles under an active layout policy).
func (d *Decomposer) LayoutStats() perfmodel.LayoutStats { return d.layout.Stats() }

// LastLayoutDecision reports the layout verdict of the most recent
// slice begin: whether the slice was renumbered into its compact
// nz-row space, and whether any mode used the learned hot-first order.
// Diagnostics surface for serve and the determinism tests.
func (d *Decomposer) LastLayoutDecision() (remapped, hotFirst bool) {
	remapped = d.lastDec.Remap
	for _, p := range d.lastDec.HotFirst {
		if p != nil {
			hotFirst = true
		}
	}
	return remapped, hotFirst
}

// KernelSchedule appends the current per-mode kernel table (resolved
// at the last slice begin) to dst as one letter per mode — "P"lan,
// "C"SF, "L"ock — the compact schedule string the determinism tests
// compare across checkpoint restores.
func (d *Decomposer) KernelSchedule(dst []byte) []byte {
	for _, kc := range d.kernels {
		switch kc {
		case kcPlan:
			dst = append(dst, 'P')
		case kcCSF:
			dst = append(dst, 'C')
		default:
			dst = append(dst, 'L')
		}
	}
	return dst
}

// NoteOverload folds the ingestion pipeline's overload counters into
// the recovery stats, so a single ResilienceStats read reports both
// failure recovery and load shedding for the stream.
func (d *Decomposer) NoteOverload(shed, coalesced, stale, drained int) {
	d.stats.OverloadSheds += shed
	d.stats.OverloadCoalesced += coalesced
	d.stats.StaleSheds += stale
	d.stats.DrainedSlices += drained
}

// NoteBreaker folds the serving layer's circuit-breaker counters into
// the recovery stats (open transitions, half-open probes, and slices
// shed at admission while the breaker was open).
func (d *Decomposer) NoteBreaker(opens, probes, sheds int) {
	d.stats.BreakerOpens += opens
	d.stats.BreakerProbes += probes
	d.stats.BreakerSheds += sheds
}

// NoteSpill folds the durable-backlog counters into the recovery stats
// (slices diverted to the WAL spill tier, slices replayed back out of
// it, and the backlog still on disk at drain time).
func (d *Decomposer) NoteSpill(spilled, replayed, pending int) {
	d.stats.SpilledSlices += spilled
	d.stats.SpillReplayed += replayed
	d.stats.SpillPending = pending
}
