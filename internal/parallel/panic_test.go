package parallel

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

// mustPanicWithError runs f, requires it to panic with a *PanicError,
// and returns it.
func mustPanicWithError(t *testing.T, f func()) *PanicError {
	t.Helper()
	var pe *PanicError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("no panic propagated")
			}
			var ok bool
			pe, ok = r.(*PanicError)
			if !ok {
				t.Fatalf("panic value is %T, want *PanicError", r)
			}
		}()
		f()
	}()
	return pe
}

func TestPoolWorkerPanicPropagates(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	pe := mustPanicWithError(t, func() {
		p.For(100, 4, func(w int, r Range) {
			if r.Lo <= 42 && 42 < r.Hi {
				panic("boom at 42")
			}
		})
	})
	if pe.Value != "boom at 42" {
		t.Errorf("Value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "panic_test.go") {
		t.Error("stack does not point at the panicking body")
	}
	if !strings.Contains(pe.Error(), "boom at 42") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

// TestPoolSurvivesPanic: the same pool must stay usable — workers
// parked, mutex released — after containing a panic in every primitive.
func TestPoolSurvivesPanic(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	prims := map[string]func(bad bool){
		"Do": func(bad bool) {
			p.For(64, 4, func(w int, r Range) {
				if bad {
					panic("do")
				}
			})
		},
		"DoChunked": func(bad bool) {
			p.ForChunked(64, 4, 8, func(w int, r Range) {
				if bad {
					panic("chunked")
				}
			})
		},
		"ReduceFloat64": func(bad bool) {
			p.ReduceFloat64(64, 4, func(w int, r Range) float64 {
				if bad {
					panic("reduce")
				}
				return 1
			})
		},
		"ReduceVec": func(bad bool) {
			p.ReduceVec(64, 4, 3, func(w int, r Range, acc []float64) {
				if bad {
					panic("reducevec")
				}
			})
		},
	}
	for name, prim := range prims {
		prim := prim
		t.Run(name, func(t *testing.T) {
			mustPanicWithError(t, func() { prim(true) })
			// The pool must immediately accept and complete new work.
			done := false
			p.For(8, 4, func(w int, r Range) {
				if r.Lo == 0 {
					done = true
				}
			})
			if !done {
				t.Fatal("pool did not run work after a contained panic")
			}
		})
	}
}

// TestSpawnFallbackPanicPropagates: when the pool is busy, primitives
// fall back to spawned goroutines; those must contain panics the same
// way. Entering the fallback deterministically: issue pool work from
// inside pool work (the inner call finds the pool locked).
func TestSpawnFallbackPanicPropagates(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var inner *PanicError
	var mu sync.Mutex
	p.For(4, 2, func(w int, r Range) {
		if w != 0 {
			return
		}
		pe := mustPanicOrNil(func() {
			p.For(32, 2, func(w int, r Range) {
				if r.Lo == 0 {
					panic("spawned boom")
				}
			})
		})
		mu.Lock()
		inner = pe
		mu.Unlock()
	})
	if inner == nil {
		t.Fatal("no *PanicError from the spawn-fallback path")
	}
	if inner.Value != "spawned boom" {
		t.Errorf("Value = %v", inner.Value)
	}
	if len(inner.Stack) == 0 {
		t.Error("missing worker stack")
	}
}

func mustPanicOrNil(f func()) (pe *PanicError) {
	defer func() {
		if r := recover(); r != nil {
			pe, _ = r.(*PanicError)
		}
	}()
	f()
	return nil
}

// TestPanicErrorUnwrap: error panic values unwrap for errors.Is.
func TestPanicErrorUnwrap(t *testing.T) {
	sentinel := errors.New("sentinel")
	p := NewPool(2)
	defer p.Close()
	pe := mustPanicWithError(t, func() {
		p.For(16, 2, func(w int, r Range) {
			if r.Lo == 0 {
				panic(sentinel)
			}
		})
	})
	if !errors.Is(pe, sentinel) {
		t.Error("PanicError does not unwrap to the panicked error")
	}
}

// TestFirstPanicWins: with several workers panicking, exactly one
// coherent PanicError surfaces.
func TestFirstPanicWins(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	pe := mustPanicWithError(t, func() {
		p.For(64, 4, func(w int, r Range) {
			panic(w)
		})
	})
	if _, ok := pe.Value.(int); !ok {
		t.Errorf("Value = %v (%T), want a worker index", pe.Value, pe.Value)
	}
}

// TestNestedPanicErrorPassthrough: a PanicError crossing a second
// containment layer is not double-wrapped.
func TestNestedPanicErrorPassthrough(t *testing.T) {
	orig := newPanicError("original")
	again := newPanicError(orig)
	if again != orig {
		t.Error("newPanicError re-wrapped an existing *PanicError")
	}
}

// TestWorkersOnePanicUnchanged: the workers==1 inline path is
// intentionally untrapped — the panic propagates raw on the caller's
// goroutine (callers' recover handles any value).
func TestWorkersOnePanicUnchanged(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	defer func() {
		if r := recover(); r != "raw" {
			t.Errorf("recovered %v, want the raw panic value", r)
		}
	}()
	p.For(4, 1, func(w int, r Range) { panic("raw") })
}
