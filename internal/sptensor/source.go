package sptensor

// ChannelSource adapts a Go channel of slices to the SliceSource
// interface, for live ingestion pipelines: a producer goroutine builds
// slices (e.g. by windowing incoming events) and the decomposer
// consumes them with ProcessStream. Closing the channel ends the
// stream.
type ChannelSource struct {
	dims []int
	ch   <-chan *Tensor
}

// NewChannelSource wraps a channel of slices with the given mode
// lengths.
func NewChannelSource(dims []int, ch <-chan *Tensor) *ChannelSource {
	return &ChannelSource{dims: append([]int(nil), dims...), ch: ch}
}

// Dims implements SliceSource.
func (c *ChannelSource) Dims() []int { return c.dims }

// Next implements SliceSource; it blocks until a slice arrives or the
// channel closes (returning nil).
func (c *ChannelSource) Next() *Tensor {
	x, ok := <-c.ch
	if !ok {
		return nil
	}
	return x
}

// Event is one timestamped nonzero for the window accumulator.
type Event struct {
	// Coord holds one index per (non-streaming) mode.
	Coord []int32
	Value float64
}

// WindowAccumulator groups events into fixed-size time windows and
// emits one coalesced slice per window — the standard way to turn an
// event feed (log lines, messages, flows) into a tensor stream.
type WindowAccumulator struct {
	dims    []int
	current *Tensor
	count   int
	// WindowEvents is the number of events per emitted slice.
	WindowEvents int
}

// NewWindowAccumulator creates an accumulator emitting a slice every
// windowEvents events.
func NewWindowAccumulator(dims []int, windowEvents int) *WindowAccumulator {
	if windowEvents < 1 {
		windowEvents = 1
	}
	w := &WindowAccumulator{dims: append([]int(nil), dims...), WindowEvents: windowEvents}
	w.reset()
	return w
}

func (w *WindowAccumulator) reset() {
	w.current = New(w.dims...)
	w.current.Reserve(w.WindowEvents)
	w.count = 0
}

// Add appends one event; when the window fills, the coalesced slice is
// returned (and a fresh window started), otherwise nil.
func (w *WindowAccumulator) Add(e Event) *Tensor {
	w.current.Append(e.Coord, e.Value)
	w.count++
	if w.count < w.WindowEvents {
		return nil
	}
	out := w.current
	out.Coalesce()
	w.reset()
	return out
}

// Flush returns the partial window as a slice (nil when empty) and
// starts a fresh window. Call at end of stream.
func (w *WindowAccumulator) Flush() *Tensor {
	if w.count == 0 {
		return nil
	}
	out := w.current
	out.Coalesce()
	w.reset()
	return out
}
