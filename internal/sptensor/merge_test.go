package sptensor

import (
	"strings"
	"testing"
)

// mk builds a tensor from parallel coordinate/value rows.
func mk(dims []int, coords [][]int32, vals []float64) *Tensor {
	t := New(dims...)
	for e, c := range coords {
		t.Append(c, vals[e])
	}
	return t
}

// asMap flattens a tensor into coordinate-string → value for
// order-independent comparison.
func asMap(t *Tensor) map[string]float64 {
	out := make(map[string]float64, t.NNZ())
	for e := 0; e < t.NNZ(); e++ {
		var sb strings.Builder
		for m := range t.Inds {
			if m > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(string(rune('0' + t.Inds[m][e])))
		}
		out[sb.String()] += t.Vals[e]
	}
	return out
}

func TestMergeTable(t *testing.T) {
	dims := []int{3, 4}
	cases := []struct {
		name    string
		dst     *Tensor
		src     *Tensor
		wantErr bool
		want    map[string]float64
		wantNNZ int
	}{
		{
			name:    "disjoint coordinates concatenate",
			dst:     mk(dims, [][]int32{{0, 0}, {1, 1}}, []float64{1, 2}),
			src:     mk(dims, [][]int32{{2, 2}}, []float64{3}),
			want:    map[string]float64{"0,0": 1, "1,1": 2, "2,2": 3},
			wantNNZ: 3,
		},
		{
			name:    "duplicate coordinates across windows coalesce",
			dst:     mk(dims, [][]int32{{0, 0}, {1, 1}}, []float64{1, 2}),
			src:     mk(dims, [][]int32{{1, 1}, {0, 0}}, []float64{10, 100}),
			want:    map[string]float64{"0,0": 101, "1,1": 12},
			wantNNZ: 2,
		},
		{
			name:    "duplicates within each window coalesce too",
			dst:     mk(dims, [][]int32{{0, 0}, {0, 0}}, []float64{1, 1}),
			src:     mk(dims, [][]int32{{0, 0}, {0, 0}}, []float64{2, 2}),
			want:    map[string]float64{"0,0": 6},
			wantNNZ: 1,
		},
		{
			name:    "cancelling values drop the nonzero",
			dst:     mk(dims, [][]int32{{0, 0}, {1, 2}}, []float64{5, 7}),
			src:     mk(dims, [][]int32{{0, 0}}, []float64{-5}),
			want:    map[string]float64{"1,2": 7},
			wantNNZ: 1,
		},
		{
			name:    "merge from empty is a no-op on content",
			dst:     mk(dims, [][]int32{{0, 1}}, []float64{4}),
			src:     New(dims...),
			want:    map[string]float64{"0,1": 4},
			wantNNZ: 1,
		},
		{
			name:    "merge into empty copies the source",
			dst:     New(dims...),
			src:     mk(dims, [][]int32{{2, 3}, {2, 3}}, []float64{1, 2}),
			want:    map[string]float64{"2,3": 3},
			wantNNZ: 1,
		},
		{
			name:    "empty into empty stays empty",
			dst:     New(dims...),
			src:     New(dims...),
			want:    map[string]float64{},
			wantNNZ: 0,
		},
		{
			name:    "mode count mismatch rejected",
			dst:     mk(dims, [][]int32{{0, 0}}, []float64{1}),
			src:     New(3, 4, 5),
			wantErr: true,
		},
		{
			name:    "mode length mismatch rejected",
			dst:     mk(dims, [][]int32{{0, 0}}, []float64{1}),
			src:     New(3, 5),
			wantErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := asMap(tc.dst)
			err := tc.dst.Merge(tc.src)
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error, got nil")
				}
				// A rejected merge must not mutate the destination.
				after := asMap(tc.dst)
				if len(after) != len(before) {
					t.Fatalf("rejected merge mutated dst: %v -> %v", before, after)
				}
				for k, v := range before {
					if after[k] != v {
						t.Fatalf("rejected merge mutated dst at %s: %g -> %g", k, v, after[k])
					}
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got := tc.dst.NNZ(); got != tc.wantNNZ {
				t.Fatalf("nnz = %d, want %d", got, tc.wantNNZ)
			}
			got := asMap(tc.dst)
			if len(got) != len(tc.want) {
				t.Fatalf("content = %v, want %v", got, tc.want)
			}
			for k, v := range tc.want {
				if got[k] != v {
					t.Fatalf("at %s: got %g, want %g", k, got[k], v)
				}
			}
			if err := tc.dst.Validate(); err != nil {
				t.Fatalf("merged tensor invalid: %v", err)
			}
		})
	}
}

// TestMergeNoDuplicateNonzeros pins the postcondition the Coalesce
// shed policy depends on: after Merge, every coordinate is stored at
// most once, so downstream Norm2 (which assumes unique coordinates) is
// correct.
func TestMergeNoDuplicateNonzeros(t *testing.T) {
	a := mk([]int{2, 2}, [][]int32{{0, 0}, {1, 1}}, []float64{1, 2})
	b := mk([]int{2, 2}, [][]int32{{0, 0}, {1, 1}}, []float64{3, 4})
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	seen := make(map[[2]int32]bool)
	for e := 0; e < a.NNZ(); e++ {
		key := [2]int32{a.Inds[0][e], a.Inds[1][e]}
		if seen[key] {
			t.Fatalf("coordinate %v stored twice after Merge", key)
		}
		seen[key] = true
	}
	// (0,0)=4, (1,1)=6 → Norm2 = 16+36 = 52.
	if a.Norm2() != 52 {
		t.Fatalf("Norm2 = %g, want 52", a.Norm2())
	}
}
