package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"spstream/internal/admm"
)

// The incremental C_z maintenance (Alg. 4 lines 8–11) must be exactly
// equivalent to recomputing C_z,t−1 from scratch each slice.
func TestDirectCzEquivalence(t *testing.T) {
	s := skewedStream(t, 101)
	inc, _ := runStream(t, s, Options{Rank: 4, Algorithm: SpCPStream, Seed: 5, Workers: 1})
	dir, _ := runStream(t, s, Options{Rank: 4, Algorithm: SpCPStream, Seed: 5, Workers: 1, DirectCz: true})
	if d := maxFactorDiff(inc, dir); d > 1e-8 {
		t.Fatalf("incremental vs direct C_z differ by %g", d)
	}
}

// Constrained spCP-stream (the paper's §VII future work) must keep the
// factors feasible and produce fits comparable to the exact constrained
// Optimized algorithm.
func TestConstrainedSpCPFeasibleAndComparable(t *testing.T) {
	s := skewedStream(t, 102)
	opt := Options{
		Rank: 4, Algorithm: SpCPStream, Constraint: admm.NonNeg{},
		ConstrainedSpCP: true, Seed: 5, TrackFit: true,
	}
	spc, resS := runStream(t, s, opt)
	for m := 0; m < 3; m++ {
		for _, v := range spc.Factor(m).Data {
			if v < 0 {
				t.Fatalf("mode %d: negative entry %g", m, v)
			}
		}
	}
	total := 0
	for _, r := range resS {
		total += r.ADMMIters
	}
	if total == 0 {
		t.Fatal("ADMM never ran in constrained spCP")
	}
	// Reference: exact constrained CP-stream with the same seed.
	_, resO := runStream(t, s, Options{
		Rank: 4, Algorithm: Optimized, Constraint: admm.NonNeg{}, Seed: 5, TrackFit: true,
	})
	for i := range resS {
		if math.IsNaN(resS[i].Fit) {
			t.Fatalf("slice %d: NaN fit", i)
		}
		if resS[i].Fit < resO[i].Fit-0.1 {
			t.Fatalf("slice %d: constrained spCP fit %.4f ≪ optimized %.4f", i, resS[i].Fit, resO[i].Fit)
		}
	}
}

func TestConstrainedSpCPValidation(t *testing.T) {
	// Without the opt-in flag the combination stays rejected
	// (paper-faithful behaviour).
	if _, err := NewDecomposer([]int{10, 10}, Options{
		Rank: 2, Algorithm: SpCPStream, Constraint: admm.NonNeg{},
	}); err == nil || !strings.Contains(err.Error(), "ConstrainedSpCP") {
		t.Fatalf("expected opt-in error, got %v", err)
	}
	// Column-norm constraints are not supported on this path.
	if _, err := NewDecomposer([]int{10, 10}, Options{
		Rank: 2, Algorithm: SpCPStream, Constraint: admm.NonNegMaxColNorm{R: 1},
		ConstrainedSpCP: true,
	}); err == nil {
		t.Fatal("column-norm constraint accepted on spCP path")
	}
}

// Checkpoint/restore: interrupting a stream mid-way and restoring into
// a fresh decomposer must continue bit-identically (fixed worker count
// and deterministic kernels).
func TestCheckpointContinuation(t *testing.T) {
	for _, alg := range []Algorithm{Optimized, SpCPStream} {
		s := skewedStream(t, 103)
		opt := Options{Rank: 3, Algorithm: alg, Seed: 9, Workers: 1}

		// Uninterrupted reference run.
		ref, _ := runStream(t, s, opt)

		// Interrupted run: half the slices, checkpoint, restore, rest.
		first, err := NewDecomposer(s.Dims, opt)
		if err != nil {
			t.Fatal(err)
		}
		half := s.T() / 2
		for ti := 0; ti < half; ti++ {
			if _, err := first.ProcessSlice(s.Slices[ti]); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := first.SaveState(&buf); err != nil {
			t.Fatal(err)
		}
		second, err := NewDecomposer(s.Dims, opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := second.RestoreState(&buf); err != nil {
			t.Fatal(err)
		}
		if second.T() != half {
			t.Fatalf("%v: restored T = %d, want %d", alg, second.T(), half)
		}
		for ti := half; ti < s.T(); ti++ {
			if _, err := second.ProcessSlice(s.Slices[ti]); err != nil {
				t.Fatal(err)
			}
		}
		if d := maxFactorDiff(ref, second); d != 0 {
			t.Fatalf("%v: restored run differs from uninterrupted by %g", alg, d)
		}
		if d := ref.Temporal().MaxAbsDiff(second.Temporal()); d != 0 {
			t.Fatalf("%v: temporal factors differ by %g", alg, d)
		}
	}
}

func TestCheckpointValidation(t *testing.T) {
	s := testStream(t, 104, []int{10, 12}, 100, 3)
	d, _ := runStream(t, s, Options{Rank: 2, Seed: 1})
	var buf bytes.Buffer
	if err := d.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Wrong dims.
	other, err := NewDecomposer([]int{10, 13}, Options{Rank: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.RestoreState(bytes.NewReader(raw)); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	// Wrong rank.
	other2, err := NewDecomposer([]int{10, 12}, Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := other2.RestoreState(bytes.NewReader(raw)); err == nil {
		t.Fatal("rank mismatch accepted")
	}
	// Garbage and truncation.
	ok, err := NewDecomposer([]int{10, 12}, Options{Rank: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.RestoreState(strings.NewReader("not a checkpoint")); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := ok.RestoreState(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
	// A valid restore into a matching decomposer succeeds.
	if err := ok.RestoreState(bytes.NewReader(raw)); err != nil {
		t.Fatal(err)
	}
	if ok.T() != 3 {
		t.Fatalf("restored T = %d", ok.T())
	}
}

// The constrained spCP extension must still beat the explicit
// constrained algorithm on iteration structure: its per-iteration phase
// times exclude full-factor Historical products. We check the weaker,
// robust property that it converges and the breakdown records spCP
// phases (Post > 0, since z rows are materialized and projected).
func TestConstrainedSpCPBreakdown(t *testing.T) {
	s := skewedStream(t, 105)
	opt := Options{
		Rank: 3, Algorithm: SpCPStream, Constraint: admm.NonNeg{},
		ConstrainedSpCP: true, Seed: 2,
	}
	d, err := NewDecomposer(s.Dims, opt)
	if err != nil {
		t.Fatal(err)
	}
	for ti := 0; ti < 3; ti++ {
		if _, err := d.ProcessSlice(s.Slices[ti]); err != nil {
			t.Fatal(err)
		}
	}
	bd := d.Breakdown()
	if bd.Times[6] <= 0 { // Historical phase still runs (K×K work)
		t.Fatal("no historical time recorded")
	}
	if bd.Times[1] <= 0 { // Post runs the projection + Gram resync
		t.Fatal("no post time recorded")
	}
}

// The plan-based MTTKRP kernel used by the Optimized algorithm must not
// make the factor trajectory depend on the worker count. The kernel
// itself is bit-identical across worker counts (single writer per
// output row); the dense reductions are worker-order deterministic, so
// trajectories agree to reduction-reordering precision.
func TestPlanKernelWorkerInvariance(t *testing.T) {
	s := skewedStream(t, 106)
	one, _ := runStream(t, s, Options{Rank: 3, Algorithm: Optimized, Seed: 4, Workers: 1})
	many, _ := runStream(t, s, Options{Rank: 3, Algorithm: Optimized, Seed: 4, Workers: 3})
	if d := maxFactorDiff(one, many); d > 1e-8 {
		t.Fatalf("worker count changed plan-kernel results by %g", d)
	}
}

// Normalization must not change the model's predictions — it only
// rebalances scale between the factors and sₜ.
func TestNormalizeModelInvariance(t *testing.T) {
	s := skewedStream(t, 107)
	plain, _ := runStream(t, s, Options{Rank: 3, Algorithm: SpCPStream, Seed: 6, Workers: 1})
	norm, _ := runStream(t, s, Options{Rank: 3, Algorithm: SpCPStream, Seed: 6, Workers: 1, Normalize: true})
	coords := [][]int32{{0, 0, 0}, {5, 100, 10}, {20, 399, 59}}
	for _, coord := range coords {
		a := reconstructAt(plain, coord)
		b := reconstructAt(norm, coord)
		rel := math.Abs(a - b)
		if math.Abs(a) > 1 {
			rel /= math.Abs(a)
		}
		if rel > 1e-4 {
			t.Fatalf("normalization changed the model at %v: %g vs %g", coord, a, b)
		}
	}
}

// reconstructAt evaluates [[A…; sₜ]] at one coordinate.
func reconstructAt(d *Decomposer, coord []int32) float64 {
	sum := 0.0
	for k := 0; k < d.Rank(); k++ {
		p := d.LastS()[k]
		for m := range d.Dims() {
			p *= d.Factor(m).At(int(coord[m]), k)
		}
		sum += p
	}
	return sum
}

// The plan kernel composes with constraints: the constrained Optimized
// path (BF-ADMM row solves fed by plan-based MTTKRP) stays feasible.
func TestPlanKernelComposition(t *testing.T) {
	s := skewedStream(t, 108)
	constrained, err := NewDecomposer(s.Dims, Options{
		Rank: 3, Algorithm: Optimized, Constraint: admm.NonNeg{},
		Seed: 4, MaxIters: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := constrained.ProcessSlice(s.Slices[i]); err != nil {
			t.Fatal(err)
		}
	}
	for m := range s.Dims {
		for _, v := range constrained.Factor(m).Data {
			if v < 0 {
				t.Fatal("plan + constrained produced infeasible factors")
			}
		}
	}
}

// The CSF kernel option must not change the factor trajectory either.
func TestCSFMTTKRPEquivalence(t *testing.T) {
	s := skewedStream(t, 109)
	plain, _ := runStream(t, s, Options{Rank: 3, Algorithm: Optimized, Seed: 4, Workers: 2})
	viaCSF, _ := runStream(t, s, Options{Rank: 3, Algorithm: Optimized, Seed: 4, Workers: 2, CSFMTTKRP: true})
	if d := maxFactorDiff(plain, viaCSF); d > 1e-8 {
		t.Fatalf("CSF MTTKRP changed results by %g", d)
	}
}
