package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"spstream/internal/dense"
	"spstream/internal/mttkrp"
	"spstream/internal/perfmodel"
	"spstream/internal/resilience"
	"spstream/internal/sptensor"
	"spstream/internal/trace"
)

// Out-of-core slice evaluation. A slice arriving as a sptensor.BlockSource
// (an .spblk reader, or any block iterator) is first sized against
// Options.MemBudget by perfmodel.SelectEval:
//
//   - EvalInMemory: the blocks are materialized into one tensor and the
//     slice takes the regular ProcessSliceContext path — kernel table,
//     adaptive layout, and all.
//   - EvalStreamed: the slice never materializes. Every kernel —
//     factor-mode MTTKRP, the streaming-mode (time) MTTKRP, the fit's
//     ‖X‖² — streams over the blocks via mttkrp.StreamKernel, so the
//     resident set is one decoded block plus the factor matrices,
//     independent of the slice's nonzero count.
//
// The streamed path runs the explicit (Algorithm 1) update with the
// optimized kernels: the streamed factor-mode MTTKRP is bit-identical
// to the compiled coordinate plan (mttkrp.PlanMTTKRP) and the streamed
// time-mode reduction is bit-identical to the thread-local in-memory
// reduction, both for any worker count — so on the same input (the
// block concatenation) a streamed slice produces bit-identical factors,
// temporal weights, and fit to the in-memory Optimized/KernelPlan run.
// The Baseline algorithm's deliberately contended lock kernels and the
// spCP-stream Gram-form recurrence have no out-of-core counterpart:
// under EvalStreamed those configurations run this same explicit
// streamed update. Constrained problems are supported — ADMM consumes
// the full Ψ⁽ⁿ⁾, which the streamed MTTKRP materializes per mode just
// like the in-memory path. Adaptive layout and per-mode kernel
// selection are in-memory concerns and stay off here.

// LastEvalMode reports where the most recent ProcessBlockSlice ran
// (in-memory after materialization, or streamed out of core). Slices
// fed through ProcessSlice do not update it.
func (d *Decomposer) LastEvalMode() perfmodel.EvalMode { return d.lastEval }

// streamKernel lazily creates the pooled streaming kernel. It shares
// the Decomposer's mttkrp.Computer, so worker count and scratch follow
// the same configuration as the in-memory kernels.
func (d *Decomposer) streamKernel() *mttkrp.StreamKernel {
	if d.sk == nil {
		d.sk = mttkrp.NewStreamKernel(d.mt)
	}
	return d.sk
}

// checkBlockSource validates a block source's shape against the
// decomposer (the BlockSource analog of checkSlice).
func (d *Decomposer) checkBlockSource(src sptensor.BlockSource) error {
	if src == nil {
		return fmt.Errorf("core: nil block source")
	}
	dims := src.Dims()
	if len(dims) != d.n {
		return fmt.Errorf("core: block source has %d modes, decomposer expects %d", len(dims), d.n)
	}
	for m, dim := range dims {
		if dim != d.dims[m] {
			return fmt.Errorf("core: block source mode %d length %d ≠ %d", m, dim, d.dims[m])
		}
	}
	return nil
}

// scanBlockInput is the guarded path's input scan for block sources:
// every block must decode, validate, and carry finite values, and the
// per-block counts must add up to the advertised total.
func scanBlockInput(src sptensor.BlockSource) error {
	total := 0
	for b := 0; b < src.Blocks(); b++ {
		blk, err := src.Block(b)
		if err != nil {
			return err
		}
		if err := scanSliceInput(blk); err != nil {
			return fmt.Errorf("block %d: %w", b, err)
		}
		total += blk.NNZ()
	}
	if total != src.NNZ() {
		return fmt.Errorf("sptensor: block source reports %d nonzeros, blocks hold %d", src.NNZ(), total)
	}
	return nil
}

// ProcessBlockSlice advances the factorization by one time slice
// delivered as blocks. It is ProcessBlockSliceContext with a background
// context.
func (d *Decomposer) ProcessBlockSlice(src sptensor.BlockSource) (SliceResult, error) {
	return d.ProcessBlockSliceContext(context.Background(), src)
}

// ProcessBlockSliceContext advances the factorization by one time slice
// delivered as a block source, choosing between materializing it (the
// regular in-memory path) and streaming it out of core according to
// Options.MemBudget. Context semantics, the resilience policy, and the
// commit hook behave exactly as in ProcessSliceContext.
func (d *Decomposer) ProcessBlockSliceContext(ctx context.Context, src sptensor.BlockSource) (SliceResult, error) {
	if err := d.checkBlockSource(src); err != nil {
		return SliceResult{}, err
	}
	mode := d.sel.SelectEval(src.NNZ(), d.n, d.opt.MemBudget)
	d.lastEval = mode
	if mode == perfmodel.EvalInMemory {
		x, err := sptensor.MaterializeBlocks(src)
		if err != nil {
			return SliceResult{}, fmt.Errorf("core: materializing block slice: %w", err)
		}
		return d.ProcessSliceContext(ctx, x)
	}
	res, err := d.guardedRun(ctx, src.NNZ(),
		func() error { return scanBlockInput(src) },
		func(runCtx context.Context) (SliceResult, error) { return d.runBlockSlice(runCtx, src) })
	if err == nil && d.commitHook != nil {
		d.commitHook(res)
	}
	return res, err
}

// runBlockSlice executes one streamed slice attempt with the same panic
// containment and solver cancellation hook as runSlice.
func (d *Decomposer) runBlockSlice(ctx context.Context, src sptensor.BlockSource) (res SliceResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			d.stats.PanicsRecovered++
			res.T, res.NNZ = d.t, src.NNZ()
			err = recoveredError(r)
		}
	}()
	if d.solver != nil {
		d.solver.SetCancel(ctx.Err)
		defer d.solver.SetCancel(nil)
	}
	d.iterNo = 0
	if err := d.injectFault(resilience.StageBegin, 0); err != nil {
		return SliceResult{T: d.t, NNZ: src.NNZ()}, err
	}
	return d.processSliceStreamed(ctx, src)
}

// streamedRun is the explicitRun counterpart for out-of-core slices:
// no compiled plan, no remapping — just the source and the convergence
// state.
type streamedRun struct {
	src       sptensor.BlockSource
	optimized bool
	deltaPrev float64
	res       SliceResult
}

// processSliceStreamed runs one time slice of Algorithm 1 entirely out
// of core, mirroring processSliceExplicit's begin/iterate/finish shape.
func (d *Decomposer) processSliceStreamed(ctx context.Context, src sptensor.BlockSource) (SliceResult, error) {
	run, err := d.beginStreamed(src)
	if err != nil {
		return run.res, err
	}
	for iter := 1; iter <= d.opt.MaxIters; iter++ {
		d.iterNo = iter
		if err := ctx.Err(); err != nil {
			return run.res, err
		}
		if err := d.injectFault(resilience.StageIterate, iter); err != nil {
			return run.res, err
		}
		converged, err := d.iterateStreamed(run)
		if err != nil {
			return run.res, err
		}
		if converged {
			run.res.Converged = true
			break
		}
	}
	return d.finishStreamed(run)
}

// beginStreamed performs the per-slice Pre work: snapshot A_{t-1} and
// C_{t-1}, seed H = C, and solve the sₜ warm start over the blocks.
// There is no kernel table or layout to resolve — every kernel streams.
func (d *Decomposer) beginStreamed(src sptensor.BlockSource) (*streamedRun, error) {
	run := &streamedRun{
		src:       src,
		optimized: d.opt.Algorithm != Baseline,
		deltaPrev: math.Inf(1),
		res:       SliceResult{T: d.t, NNZ: src.NNZ(), Fit: math.NaN()},
	}
	var err error
	d.bd.Time(trace.Pre, func() {
		for m := range d.a {
			d.prevA[m].CopyFrom(d.a[m])
			d.cPrev[m].CopyFrom(d.c[m])
			d.h[m].CopyFrom(d.c[m])
		}
		// The layout manager never sees streamed slices; clear the last
		// decision so diagnostics don't report a stale remap.
		d.lastDec = perfmodel.Decision{}
		err = d.solveSStreamed(src)
	})
	if err != nil {
		return run, err
	}
	d.bd.Time(trace.Misc, d.buildMuG)
	d.ensurePsi()
	return run, nil
}

// iterateStreamed is iterateExplicit's plain (non-remapped) branch with
// every sparse kernel replaced by its streaming twin. The dense algebra
// between kernels (Φ/Q Hadamards, Cholesky, Gram and cross-Gram
// refreshes, δ) is byte-for-byte the same code the in-memory path runs.
func (d *Decomposer) iterateStreamed(run *streamedRun) (bool, error) {
	run.res.Iters++
	d.bd.Iters++
	phi := d.scratch1
	q := d.scratch2
	sk := d.streamKernel()
	for n := 0; n < d.n; n++ {
		t0 := time.Now()
		d.buildPhi(phi, n)
		err := d.factorize(phi)
		d.bd.Add(trace.Inverse, time.Since(t0))
		if err != nil {
			return false, fmt.Errorf("core: mode %d Φ factorization: %w", n, err)
		}
		// Ψ⁽ⁿ⁾ = MTTKRP(Xₜ, {A}, n)·diag(sₜ), the MTTKRP streamed over
		// the blocks (bit-identical to the compiled plan kernel).
		t0 = time.Now()
		if err := sk.MTTKRP(d.psi[n], run.src, d.a, n); err != nil {
			return false, fmt.Errorf("core: mode %d streamed MTTKRP: %w", n, err)
		}
		dense.ScaleColumns(d.psi[n], d.psi[n], d.s)
		d.bd.Add(trace.MTTKRP, time.Since(t0))
		t0 = time.Now()
		d.buildQ(q, n)
		d.addMulAB(d.psi[n], d.prevA[n], q)
		d.bd.Add(trace.Historical, time.Since(t0))
		t0 = time.Now()
		if d.opt.Constraint == nil {
			d.solveRows(d.a[n], d.psi[n], &d.chol)
		} else if run.optimized {
			st, e := d.solver.BlockedFused(d.a[n], phi, d.psi[n], d.opt.Constraint)
			run.res.ADMMIters += st.Iters
			err = e
		} else {
			st, e := d.solver.Baseline(d.a[n], phi, d.psi[n], d.opt.Constraint)
			run.res.ADMMIters += st.Iters
			err = e
		}
		d.bd.Add(trace.Update, time.Since(t0))
		if err != nil {
			return false, fmt.Errorf("core: mode %d ADMM: %w", n, err)
		}
		t0 = time.Now()
		dense.GramParallel(d.c[n], d.a[n], d.opt.Workers)
		d.bd.Add(trace.Gram, time.Since(t0))
		t0 = time.Now()
		dense.MulAtBParallel(d.h[n], d.prevA[n], d.a[n], d.opt.Workers)
		d.bd.Add(trace.Historical, time.Since(t0))
		if d.opt.Normalize {
			t0 = time.Now()
			d.normalizeModeExplicit(n)
			d.bd.Add(trace.Misc, time.Since(t0))
		}
	}
	t0 := time.Now()
	err := d.solveSStreamed(run.src)
	d.bd.Add(trace.MTTKRP, time.Since(t0))
	if err != nil {
		return false, err
	}
	t0 = time.Now()
	d.buildMuG()
	d.bd.Add(trace.Misc, time.Since(t0))
	t0 = time.Now()
	var delta float64
	for n := 0; n < d.n; n++ {
		num := dense.ParallelFrobNorm2Diff(d.a[n], d.prevA[n], d.opt.Workers)
		den := dense.FrobNorm2(d.a[n])
		if den > 0 {
			delta += math.Sqrt(num / den)
		}
	}
	d.bd.Add(trace.Error, time.Since(t0))
	run.res.Delta = delta
	converged := math.Abs(delta-run.deltaPrev) < d.opt.Tol
	run.deltaPrev = delta
	return converged, nil
}

// finishStreamed performs the Post work (streamed fit tracking, G/S
// temporal update) and returns the slice result.
func (d *Decomposer) finishStreamed(run *streamedRun) (SliceResult, error) {
	if d.opt.TrackFit {
		var err error
		d.bd.Time(trace.Misc, func() { run.res.Fit, err = d.streamedFit(run.src) })
		if err != nil {
			return run.res, err
		}
	}
	d.bd.Time(trace.Post, d.finishSlice)
	return run.res, nil
}

// solveSStreamed is solveS with the streaming-mode MTTKRP taken over
// the blocks. The streamed reduction is the thread-local one (the
// Baseline algorithm's single-lock variant has no streamed twin), so
// it matches the in-memory Optimized path bit for bit.
func (d *Decomposer) solveSStreamed(src sptensor.BlockSource) error {
	phi := d.sPhi
	phi.Fill(1)
	for m := range d.c {
		dense.Hadamard(phi, phi, d.c[m])
	}
	dense.AddScaledIdentity(phi, phi, d.opt.StreamRidge)
	if err := d.streamKernel().TimeMode(d.s, src, d.a); err != nil {
		return fmt.Errorf("core: streamed sₜ MTTKRP: %w", err)
	}
	if err := d.factorize(phi); err != nil {
		return fmt.Errorf("core: sₜ solve: %w", err)
	}
	d.chol.SolveVec(d.s)
	return nil
}

// streamedFit is sliceFit out of core: ‖X‖² accumulates block by block
// in block order — the same left-to-right summation Norm2 performs on
// the materialized concatenation — and ψ comes from the streamed
// time-mode kernel, so the fit matches the in-memory value bit for bit.
func (d *Decomposer) streamedFit(src sptensor.BlockSource) (float64, error) {
	xnorm2 := 0.0
	for b := 0; b < src.Blocks(); b++ {
		blk, err := src.Block(b)
		if err != nil {
			return math.NaN(), fmt.Errorf("core: streamed fit: %w", err)
		}
		for _, v := range blk.Vals {
			xnorm2 += v * v
		}
	}
	if xnorm2 == 0 {
		return math.NaN(), nil
	}
	psi := make([]float64, d.k)
	if err := d.streamKernel().TimeMode(psi, src, d.a); err != nil {
		return math.NaN(), fmt.Errorf("core: streamed fit: %w", err)
	}
	had := d.scratch1
	had.Fill(1)
	for m := range d.c {
		dense.Hadamard(had, had, d.c[m])
	}
	tmp := make([]float64, d.k)
	dense.MulVec(tmp, had, d.s)
	model2 := dense.Dot(d.s, tmp)
	inner := dense.Dot(d.s, psi)
	err2 := xnorm2 - 2*inner + model2
	if err2 < 0 {
		err2 = 0
	}
	return 1 - math.Sqrt(err2/xnorm2), nil
}
