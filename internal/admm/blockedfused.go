package admm

import (
	"spstream/internal/dense"
	"spstream/internal/parallel"
)

// BlockedFused solves the same constrained problem as Baseline via the
// paper's Algorithm 3: row blocks are assigned to workers, the update /
// error / init operations and the next solve's right-hand side are fused
// into one element-wise loop whose intermediates live in registers, and
// the projection's column norms are accumulated per worker and
// all-reduced between iterations. a is updated in place.
//
// The iterate sequence is identical to Baseline (same Φ, ρ, stopping
// quantities), so both converge in the same number of iterations; the
// returned A differs by one extra solve+projection half-step, which is
// inherent in the fusion (the loop body computes iteration i's error
// after already producing iteration i+1's Ã).
func (s *Solver) BlockedFused(a, phi, psi *dense.Matrix, con Constraint) (Stats, error) {
	if err := checkShapes(a, phi, psi); err != nil {
		return Stats{}, err
	}
	opt := s.opt
	rows, k := a.Rows, a.Cols
	s.ensureWorkspace(rows, k)
	u, atld, a0 := s.u, s.atld, s.a0
	u.Zero()

	p := rho(phi)
	chol, err := dense.FactorRidge(phi, p)
	if err != nil {
		return Stats{}, err
	}

	// Row blocks; each parallel.For range below is a set of whole blocks.
	bs := opt.blockRows(k)
	nBlocks := (rows + bs - 1) / bs
	blockOf := func(b int) (int, int) {
		lo := b * bs
		hi := lo + bs
		if hi > rows {
			hi = rows
		}
		return lo, hi
	}

	// Pre-loop (Alg. 3 lines 4–10): A₀ ← A, first solve with U = 0,
	// A ← Ã − U, per-worker column-norm accumulation, all-reduce.
	colNorms2 := parallel.ReduceVec(nBlocks, opt.Workers, k, func(_ int, r parallel.Range, acc []float64) {
		for b := r.Lo; b < r.Hi; b++ {
			lo, hi := blockOf(b)
			for i := lo; i < hi; i++ {
				ra, r0, rp, rt := a.Row(i), a0.Row(i), psi.Row(i), atld.Row(i)
				for j := range rt {
					x := ra[j]
					r0[j] = x
					rt[j] = rp[j] + p*x
				}
				chol.SolveVec(rt)
				for j := range ra {
					v := rt[j] // U = 0, so A = Ã
					ra[j] = v
					acc[j] += v * v
				}
			}
		}
	})

	var stats Stats
	for iter := 1; iter <= opt.MaxIters; iter++ {
		if err := s.cancelled(); err != nil {
			return stats, err
		}
		stats.Iters = iter
		// One fused pass per iteration: project with the previous
		// all-reduced column norms, then the fused element loop
		// (update + error + init + next RHS), then the block solve and
		// fresh column norms. acc layout: [0..k) col norms², then
		// pr, pn, dr, dn.
		red := parallel.ReduceVec(nBlocks, opt.Workers, k+4, func(_ int, r parallel.Range, acc []float64) {
			errAcc := acc[k:]
			for b := r.Lo; b < r.Hi; b++ {
				lo, hi := blockOf(b)
				block := a.RowView(lo, hi)
				con.Project(block, colNorms2, p)
				for i := lo; i < hi; i++ {
					ra, ru, rp, rt, r0 := a.Row(i), u.Row(i), psi.Row(i), atld.Row(i), a0.Row(i)
					for j := range ra {
						x := ra[j]         // projected A
						y := x - rt[j]     // A − Ã
						di := ru[j] + y    // new dual value
						ru[j] = di         // update
						errAcc[0] += y * y // ‖A−Ã‖²
						errAcc[1] += x * x // ‖A‖²
						pd := x - r0[j]
						errAcc[2] += pd * pd // ‖A−A₀‖²
						errAcc[3] += di * di // ‖U‖²
						r0[j] = x            // init for next iteration
						rt[j] = rp[j] + p*(x+di)
					}
					chol.SolveVec(rt)
					for j := range ra {
						v := rt[j] - ru[j] // A ← Ã − U (fused with col norm)
						ra[j] = v
						acc[j] += v * v
					}
				}
			}
		})
		colNorms2 = red[:k]
		pr, pn, dr, dn := red[k], red[k+1], red[k+2], red[k+3]
		if relConverged(pr, pn, opt.Tol) && relConverged(dr, dn, opt.Tol) {
			stats.Converged = true
			break
		}
	}
	// The loop exits with A = Ã − U un-projected (the fusion is one
	// half-step ahead); apply the projection so the result is feasible.
	parallel.For(nBlocks, opt.Workers, func(_ int, r parallel.Range) {
		for b := r.Lo; b < r.Hi; b++ {
			lo, hi := blockOf(b)
			con.Project(a.RowView(lo, hi), colNorms2, p)
		}
	})
	return stats, nil
}
