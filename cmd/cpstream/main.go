// Command cpstream runs a streaming CP decomposition over a sparse
// tensor, slice by slice, printing per-slice convergence and timing.
//
// The input is a FROSTT .tns file (with -input and -streammode
// selecting the temporal mode), a built-in synthetic dataset analogue
// (-preset with -scale), or block-partitioned .spblk slices — a single
// file or a directory of them, processed out of core under -mem-budget
// (see cmd/spblk for the converter).
//
// Examples:
//
//	cpstream -preset nips -scale 0.2 -rank 16 -alg spcp
//	cpstream -input data.tns -streammode 3 -rank 32 -alg optimized -nonneg
//	cpstream -preset flickr -rank 16 -alg optimized -fit -breakdown
//	cpstream -input slices/ -mem-budget 67108864 -rank 16 -fit
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"syscall"
	"time"

	"spstream"
	"spstream/internal/resilience"
	"spstream/internal/trace"
	"spstream/internal/version"
)

// stopCPUProfile flushes an in-flight CPU profile; fatal() must call it
// because os.Exit skips deferred functions.
var stopCPUProfile func()

func main() {
	var (
		input      = flag.String("input", "", "FROSTT .tns input file")
		streamMode = flag.Int("streammode", -1, "streaming (time) mode index of the input tensor, 0-based")
		preset     = flag.String("preset", "", "synthetic preset: patents, flickr, uber, nips")
		scale      = flag.Float64("scale", 0.2, "synthetic preset scale")
		rank       = flag.Int("rank", 16, "decomposition rank K")
		alg        = flag.String("alg", "optimized", "algorithm: baseline, optimized, spcp")
		mu         = flag.Float64("mu", 0.99, "forgetting factor µ")
		tol        = flag.Float64("tol", 1e-5, "outer convergence tolerance")
		maxIters   = flag.Int("maxiters", 20, "max inner iterations per slice")
		workers    = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		seed       = flag.Uint64("seed", 1, "factor initialization seed")
		nonneg     = flag.Bool("nonneg", false, "apply a non-negativity constraint (ADMM)")
		l1         = flag.Float64("l1", 0, "apply an L1 sparsity constraint with this weight (ADMM)")
		memBudget  = flag.Int64("mem-budget", 0, "resident-memory budget in bytes per slice; block (.spblk) slices whose modeled working set exceeds it are processed out of core (0 = unconstrained)")
		fit        = flag.Bool("fit", false, "track per-slice fit (extra work)")
		breakdown  = flag.Bool("breakdown", false, "print the per-phase time breakdown at the end")
		maxSlices  = flag.Int("slices", 0, "process at most this many slices (0 = all)")
		factorsOut = flag.String("factors", "", "write final factor matrices to this file")
		checkpoint = flag.String("checkpoint", "", "write the decomposer state to this file after the run (atomic)")
		resume     = flag.String("resume", "", "restore the decomposer state before processing: a checkpoint file, or a directory (newest valid checkpoint wins)")
		ckptDir    = flag.String("checkpoint-dir", "", "write periodic crash-safe checkpoints into this directory")
		ckptEvery  = flag.Int("checkpoint-every", 10, "periodic checkpoint interval in slices (with -checkpoint-dir)")
		ckptKeep   = flag.Int("checkpoint-keep", 2, "periodic checkpoints retained (with -checkpoint-dir)")
		onError    = flag.String("on-error", "", "slice failure policy: abort, retry, skip (enables guarded processing)")
		sliceTmout = flag.Duration("slice-timeout", 0, "per-slice deadline (e.g. 30s; 0 = none)")
		shedPolicy = flag.String("shed-policy", "", "route slices through the bounded ingest pipeline with this full-queue policy: block, drop-newest, drop-oldest, coalesce, spill")
		spillDir   = flag.String("spill-dir", "", "durable backlog directory: queue overflow spills to a crash-safe WAL here and replays in order (implies -shed-policy spill)")
		spillMax   = flag.Int64("spill-max-bytes", 0, "cap on the on-disk spill backlog; 0 = unbounded (past the cap overflow is shed)")
		spillFsync = flag.Duration("spill-fsync-interval", 0, "WAL group-commit window — how much freshly spilled data a hard crash may lose (0 = fsync every slice)")
		maxLag     = flag.Duration("max-lag", 0, "shed slices older than this at solve time (enables the ingest pipeline; 0 = never)")
		degrade    = flag.Bool("degrade", false, "degrade model quality under sustained overload (enables the ingest pipeline)")
		drainTmout = flag.Duration("drain-timeout", 30*time.Second, "max time to flush the ingest backlog on shutdown")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		showVer    = flag.Bool("version", false, "print version/build information and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("cpstream", version.String())
		return
	}

	// SIGINT/SIGTERM cancel the stream at the next iteration boundary;
	// the decomposer is then still consistent and checkpointable.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		stopCPUProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stopCPUProfile()
	}

	opt := spstream.Options{
		Rank:      *rank,
		Mu:        *mu,
		Tol:       *tol,
		MaxIters:  *maxIters,
		Workers:   *workers,
		Seed:      *seed,
		TrackFit:  *fit,
		MemBudget: *memBudget,
	}
	switch *alg {
	case "baseline":
		opt.Algorithm = spstream.Baseline
	case "optimized":
		opt.Algorithm = spstream.Optimized
	case "spcp":
		opt.Algorithm = spstream.SpCPStream
	default:
		fatal(fmt.Errorf("unknown algorithm %q (want baseline, optimized, spcp)", *alg))
	}
	switch {
	case *nonneg && *l1 > 0:
		fatal(fmt.Errorf("choose one of -nonneg and -l1"))
	case *nonneg:
		opt.Constraint = spstream.NonNeg()
	case *l1 > 0:
		opt.Constraint = spstream.L1(*l1)
	}

	// Guarded processing: any of the resilience flags arms it.
	var rcfg *spstream.ResilienceConfig
	if *onError != "" || *ckptDir != "" || *sliceTmout > 0 {
		rcfg = &spstream.ResilienceConfig{SliceTimeout: *sliceTmout}
		if *onError != "" {
			pol, err := resilience.ParsePolicy(*onError)
			if err != nil {
				fatal(err)
			}
			rcfg.Policy = pol
		}
		if *ckptDir != "" {
			mgr, err := spstream.NewCheckpointManager(*ckptDir, *ckptEvery, *ckptKeep)
			if err != nil {
				fatal(err)
			}
			rcfg.Checkpoint = mgr
		}
		opt.Resilience = rcfg
	}

	// Block-partitioned (.spblk) inputs take the out-of-core path: each
	// file is one time slice, processed block by block under the memory
	// budget without ever materializing when it doesn't fit.
	if paths, err := spblkInputs(*input); err != nil {
		fatal(err)
	} else if paths != nil {
		runBlockInput(ctx, paths, opt, rcfg, *fit, *breakdown, *maxSlices, *factorsOut, *checkpoint, *resume)
		return
	}

	stream, err := loadStream(*input, *streamMode, *preset, *scale)
	if err != nil {
		fatal(err)
	}

	dec, err := spstream.New(stream.Dims, opt)
	if err != nil {
		fatal(err)
	}
	skip := 0
	if *resume != "" {
		from, err := restoreFrom(*resume, dec)
		if err != nil {
			fatal(err)
		}
		skip = dec.T()
		fmt.Printf("resumed from %s at slice %d\n", from, skip)
	}

	effWorkers := opt.Workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("cpstream: dims=%v T=%d nnz=%d rank=%d alg=%s workers=%d\n",
		stream.Dims, stream.T(), stream.NNZ(), *rank, *alg, effWorkers)
	fmt.Printf("%6s %10s %6s %12s %10s %10s %8s\n",
		"slice", "nnz", "iters", "delta", "fit", "time", "conv")

	src := stream.Source()
	processed := 0
	totalStart := time.Now()
	for skipped := 0; skipped < skip; skipped++ {
		if src.Next() == nil {
			fatal(fmt.Errorf("resume state is at slice %d but the stream has only %d", skip, skipped))
		}
	}
	interrupted := false
	if *shedPolicy != "" || *maxLag > 0 || *degrade || *spillDir != "" {
		// Overload-robust path: slices go through the bounded ingest
		// pipeline instead of the direct loop.
		policy := spstream.ShedBlock
		if *shedPolicy != "" {
			policy, err = spstream.ParseShedPolicy(*shedPolicy)
			if err != nil {
				fatal(err)
			}
		}
		if policy == spstream.ShedSpill && *spillDir == "" {
			fatal(fmt.Errorf("-shed-policy spill requires -spill-dir"))
		}
		var p *spstream.IngestPipeline
		pcfg := spstream.IngestConfig{
			Policy:       policy,
			MaxLag:       *maxLag,
			DrainTimeout: *drainTmout,
			OnResult: func(res spstream.SliceResult) {
				fitStr := "-"
				if *fit {
					fitStr = fmt.Sprintf("%.4f", res.Fit)
				}
				fmt.Printf("%6d %10d %6d %12.6g %10s %10s %8v\n",
					res.T, res.NNZ, res.Iters, res.Delta, fitStr, "-", res.Converged)
				if rcfg != nil && rcfg.Checkpoint != nil {
					// Consumer goroutine: the decomposer is quiescent
					// between slices here. Durably bind the spill offset
					// BEFORE the checkpoint that depends on it.
					t := dec.T()
					if t > 0 && t%*ckptEvery == 0 {
						if err := p.SpillMark(t); err != nil {
							fmt.Fprintf(os.Stderr, "cpstream: spill offset: %v\n", err)
						}
					}
					if _, err := rcfg.Checkpoint.MaybeWrite(t, dec); err != nil {
						fmt.Fprintf(os.Stderr, "cpstream: checkpoint: %v\n", err)
					}
				}
			},
			OnError: func(err error) {
				fmt.Fprintf(os.Stderr, "cpstream: %v\n", err)
			},
		}
		if *degrade {
			pcfg.Degrade = &spstream.DegradeConfig{MaxLag: *maxLag}
		}
		if *spillDir != "" {
			pcfg.Policy = spstream.ShedSpill
			pcfg.Spill = &spstream.SpillConfig{
				Dir:           *spillDir,
				MaxBytes:      *spillMax,
				FsyncInterval: *spillFsync,
				// Replay resumes after the slices folded into the resumed
				// state; a fresh start replays the whole backlog.
				ReplayFrom: dec.T(),
			}
		}
		p, err = spstream.NewIngestPipeline(dec, pcfg)
		if err != nil {
			fatal(err)
		}
		if pcfg.Spill != nil {
			if n := p.Stats().SpillRecovered; n > 0 {
				fmt.Printf("spill: recovered %d durable backlog slices (replay bound to t=%d)\n", n, pcfg.Spill.ReplayFrom)
			}
		}
		// The signal stops admissions; the backlog still drains
		// (bounded by -drain-timeout).
		p.Start(context.Background())
		offered := 0
		for {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			x := src.Next()
			if x == nil {
				break
			}
			if *maxSlices > 0 && offered >= *maxSlices {
				break
			}
			if err := p.Offer(x); err != nil {
				break
			}
			offered++
		}
		snap := p.Drain(context.Background())
		processed = int(snap.Processed)
		fmt.Printf("ingest: %s\n", snap.String())
	} else {
		for {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			x := src.Next()
			if x == nil {
				break
			}
			if *maxSlices > 0 && processed >= *maxSlices {
				break
			}
			start := time.Now()
			res, err := dec.ProcessSliceContext(ctx, x)
			switch {
			case err == nil:
			case errors.Is(err, spstream.ErrSliceSkipped):
				fmt.Fprintf(os.Stderr, "cpstream: %v\n", err)
			case errors.Is(err, context.Canceled):
				interrupted = true
			default:
				fatal(err)
			}
			if interrupted {
				break
			}
			elapsed := time.Since(start)
			fitStr := "-"
			if *fit {
				fitStr = fmt.Sprintf("%.4f", res.Fit)
			}
			status := fmt.Sprintf("%v", res.Converged)
			if res.Skipped {
				status = "skipped"
			}
			fmt.Printf("%6d %10d %6d %12.6g %10s %10s %8s\n",
				res.T, res.NNZ, res.Iters, res.Delta, fitStr, elapsed.Round(time.Microsecond), status)
			processed++
			if rcfg != nil && rcfg.Checkpoint != nil && !res.Skipped {
				if _, err := rcfg.Checkpoint.MaybeWrite(dec.T(), dec); err != nil {
					fmt.Fprintf(os.Stderr, "cpstream: checkpoint: %v\n", err)
				}
			}
		}
	}
	fmt.Printf("total: %d slices in %s\n", processed, time.Since(totalStart).Round(time.Millisecond))
	if interrupted {
		fmt.Printf("interrupted at slice %d; state is consistent at the last completed slice\n", dec.T())
	}
	if rcfg != nil {
		st := dec.ResilienceStats()
		fmt.Printf("resilience: retries=%d skips=%d rollbacks=%d ridge-recoveries=%d panics=%d rejects=%d timeouts=%d sheds=%d coalesced=%d stale=%d drained=%d\n",
			st.SliceRetries, st.SlicesSkipped, st.Rollbacks, st.RidgeRecoveries, st.PanicsRecovered, st.InputRejects, st.Timeouts,
			st.OverloadSheds, st.OverloadCoalesced, st.StaleSheds, st.DrainedSlices)
	}

	if *breakdown {
		bd := dec.Breakdown()
		per := bd.PerIter()
		fmt.Printf("\nper-iteration phase breakdown (%d inner iterations):\n", bd.Iters)
		for ph := 0; ph < trace.NumPhases; ph++ {
			fmt.Printf("  %-12s %v\n", trace.Phase(ph), per[ph].Round(time.Microsecond))
		}
	}
	if *factorsOut != "" {
		if err := spstream.SaveFactors(*factorsOut, dec); err != nil {
			fatal(err)
		}
		fmt.Printf("factors written to %s\n", *factorsOut)
	}
	// A final checkpoint survives interrupts too: the state is the
	// last completed slice either way.
	if rcfg != nil && rcfg.Checkpoint != nil && dec.T() > 0 {
		if path, err := rcfg.Checkpoint.Write(dec.T(), dec); err != nil {
			fmt.Fprintf(os.Stderr, "cpstream: final checkpoint: %v\n", err)
		} else {
			fmt.Printf("checkpoint written to %s\n", path)
		}
	}
	if *checkpoint != "" {
		if err := resilience.AtomicWriteFile(*checkpoint, dec.SaveState); err != nil {
			fatal(err)
		}
		fmt.Printf("checkpoint written to %s\n", *checkpoint)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("heap profile written to %s\n", *memprofile)
	}
}

// spblkInputs resolves -input to a list of block-slice files: a single
// .spblk file is one slice, a directory holding .spblk files is a
// stream of slices in name order. Any other input returns (nil, nil)
// and falls through to the .tns / preset path.
func spblkInputs(input string) ([]string, error) {
	if input == "" {
		return nil, nil
	}
	if strings.HasSuffix(input, ".spblk") {
		return []string{input}, nil
	}
	info, err := os.Stat(input)
	if err != nil || !info.IsDir() {
		return nil, nil
	}
	paths, err := filepath.Glob(filepath.Join(input, "*.spblk"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("directory %s holds no .spblk files", input)
	}
	sort.Strings(paths)
	return paths, nil
}

// runBlockInput processes a sequence of .spblk slice files out of core.
func runBlockInput(ctx context.Context, paths []string, opt spstream.Options, rcfg *spstream.ResilienceConfig,
	fit, breakdown bool, maxSlices int, factorsOut, checkpoint, resume string) {
	probe, err := spstream.OpenBlocks(paths[0])
	if err != nil {
		fatal(err)
	}
	dims := append([]int(nil), probe.Dims()...)
	probe.Close()

	dec, err := spstream.New(dims, opt)
	if err != nil {
		fatal(err)
	}
	skip := 0
	if resume != "" {
		from, err := restoreFrom(resume, dec)
		if err != nil {
			fatal(err)
		}
		skip = dec.T()
		fmt.Printf("resumed from %s at slice %d\n", from, skip)
	}
	effWorkers := opt.Workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("cpstream: dims=%v T=%d blocked input mem-budget=%d rank=%d workers=%d\n",
		dims, len(paths), opt.MemBudget, opt.Rank, effWorkers)
	fmt.Printf("%6s %10s %6s %12s %10s %10s %10s %8s\n",
		"slice", "nnz", "iters", "delta", "fit", "time", "eval", "conv")

	processed := 0
	interrupted := false
	totalStart := time.Now()
	for i, path := range paths {
		if i < skip {
			continue
		}
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		if maxSlices > 0 && processed >= maxSlices {
			break
		}
		r, err := spstream.OpenBlocks(path)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		start := time.Now()
		res, err := dec.ProcessBlockSliceContext(ctx, r)
		r.Close()
		switch {
		case err == nil:
		case errors.Is(err, spstream.ErrSliceSkipped):
			fmt.Fprintf(os.Stderr, "cpstream: %v\n", err)
		case errors.Is(err, context.Canceled):
			interrupted = true
		default:
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		if interrupted {
			break
		}
		elapsed := time.Since(start)
		fitStr := "-"
		if fit {
			fitStr = fmt.Sprintf("%.4f", res.Fit)
		}
		status := fmt.Sprintf("%v", res.Converged)
		if res.Skipped {
			status = "skipped"
		}
		fmt.Printf("%6d %10d %6d %12.6g %10s %10s %10s %8s\n",
			res.T, res.NNZ, res.Iters, res.Delta, fitStr,
			elapsed.Round(time.Microsecond), dec.LastEvalMode(), status)
		processed++
		if rcfg != nil && rcfg.Checkpoint != nil && !res.Skipped {
			if _, err := rcfg.Checkpoint.MaybeWrite(dec.T(), dec); err != nil {
				fmt.Fprintf(os.Stderr, "cpstream: checkpoint: %v\n", err)
			}
		}
	}
	fmt.Printf("total: %d slices in %s\n", processed, time.Since(totalStart).Round(time.Millisecond))
	if interrupted {
		fmt.Printf("interrupted at slice %d; state is consistent at the last completed slice\n", dec.T())
	}
	if rcfg != nil {
		st := dec.ResilienceStats()
		fmt.Printf("resilience: retries=%d skips=%d rollbacks=%d ridge-recoveries=%d panics=%d rejects=%d timeouts=%d\n",
			st.SliceRetries, st.SlicesSkipped, st.Rollbacks, st.RidgeRecoveries, st.PanicsRecovered, st.InputRejects, st.Timeouts)
	}
	if breakdown {
		bd := dec.Breakdown()
		per := bd.PerIter()
		fmt.Printf("\nper-iteration phase breakdown (%d inner iterations):\n", bd.Iters)
		for ph := 0; ph < trace.NumPhases; ph++ {
			fmt.Printf("  %-12s %v\n", trace.Phase(ph), per[ph].Round(time.Microsecond))
		}
	}
	if factorsOut != "" {
		if err := spstream.SaveFactors(factorsOut, dec); err != nil {
			fatal(err)
		}
		fmt.Printf("factors written to %s\n", factorsOut)
	}
	if rcfg != nil && rcfg.Checkpoint != nil && dec.T() > 0 {
		if path, err := rcfg.Checkpoint.Write(dec.T(), dec); err != nil {
			fmt.Fprintf(os.Stderr, "cpstream: final checkpoint: %v\n", err)
		} else {
			fmt.Printf("checkpoint written to %s\n", path)
		}
	}
	if checkpoint != "" {
		if err := resilience.AtomicWriteFile(checkpoint, dec.SaveState); err != nil {
			fatal(err)
		}
		fmt.Printf("checkpoint written to %s\n", checkpoint)
	}
}

func loadStream(input string, streamMode int, preset string, scale float64) (*spstream.Stream, error) {
	switch {
	case input != "" && preset != "":
		return nil, fmt.Errorf("choose one of -input and -preset")
	case input != "":
		if streamMode < 0 {
			return nil, fmt.Errorf("-streammode is required with -input")
		}
		t, err := spstream.LoadTNS(input)
		if err != nil {
			return nil, err
		}
		return spstream.SplitStream(t, streamMode)
	case preset != "":
		return spstream.GeneratePreset(preset, scale)
	default:
		return nil, fmt.Errorf("one of -input or -preset is required")
	}
}

// restoreFrom restores the decomposer from a checkpoint file, or — when
// path is a directory — from the newest valid checkpoint inside it.
// It returns the path actually used.
func restoreFrom(path string, dec *spstream.Decomposer) (string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	if info.IsDir() {
		return spstream.RestoreNewestCheckpoint(path, dec)
	}
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := dec.RestoreState(io.Reader(f)); err != nil {
		return "", err
	}
	return path, nil
}

func fatal(err error) {
	if stopCPUProfile != nil {
		stopCPUProfile()
	}
	fmt.Fprintln(os.Stderr, "cpstream:", err)
	os.Exit(1)
}
