// Command paperbench regenerates every table and figure of the paper's
// evaluation section (Soh et al., IPDPS 2021, §VI).
//
// Two modes are supported:
//
//   - model (default): kernel and algorithm times are predicted by the
//     calibrated performance model (internal/perfmodel) on the paper's
//     56-core quad-socket testbed, sweeping the paper's thread counts
//     {1,7,14,28,56}. This reproduces the *shapes* of Figs. 2–8
//     regardless of how many cores the current host has.
//   - measure: the real Go kernels run on this host with a worker-count
//     sweep up to GOMAXPROCS, and wall-clock per-iteration times are
//     reported. On a many-core host this measures true scaling; on a
//     single-core container it degenerates to overhead measurement.
//
// Usage:
//
//	paperbench -exp all            # every experiment, model mode
//	paperbench -exp fig4 -mode measure -scale 0.2
//	paperbench -exp table1 -rank 16
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"spstream/internal/version"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: all, table1, table2, fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fitlog, crossover, calibrate, bench, benchcmp, threshold, ooc")
		mode       = flag.String("mode", "model", "model (paper-testbed performance model) or measure (wall clock on this host)")
		scale      = flag.Float64("scale", 0.3, "synthetic dataset scale (1 = benchmark size)")
		rank       = flag.Int("rank", 16, "decomposition rank for table1")
		slices     = flag.Int("slices", 4, "slices to run per measurement")
		maxProc    = flag.Int("maxworkers", 0, "cap for the measured worker sweep (0 = GOMAXPROCS)")
		csvDir     = flag.String("csv", "", "also write raw per-experiment series as CSV files into this directory (model mode)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (useful with -mode measure)")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		benchJSON  = flag.String("benchjson", "", "bench experiment: write results JSON to this file")
		benchCmp   = flag.String("compare", "", "bench experiment: compare against this baseline JSON (advisory; warns on >10% regressions, never fails)")
		benchOnly  = flag.String("benchconfigs", "", "bench experiment: comma-separated subset of configs to run (default all)")
		cmpOld     = flag.String("old", "", "benchcmp experiment: older bench JSON")
		cmpNew     = flag.String("new", "", "benchcmp experiment: newer bench JSON")
		showVer    = flag.Bool("version", false, "print version/build information and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("paperbench", version.String())
		return
	}

	stopProfiles := func() {}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(2)
		}
		stopProfiles = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	writeMemProfile := func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			return
		}
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
		}
		f.Close()
	}

	h := &harness{
		mode:         *mode,
		scale:        *scale,
		rank:         *rank,
		slices:       *slices,
		maxWorkers:   *maxProc,
		csvDir:       *csvDir,
		benchJSON:    *benchJSON,
		benchCompare: *benchCmp,
		benchOnly:    *benchOnly,
		cmpOld:       *cmpOld,
		cmpNew:       *cmpNew,
		out:          os.Stdout,
	}
	if err := h.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(2)
	}

	experiments := map[string]func() error{
		"table1":    h.table1,
		"table2":    h.table2,
		"fig1":      h.fig1,
		"fig2":      h.fig2,
		"fig3":      h.fig3,
		"fig4":      h.fig4,
		"fig5":      h.fig5,
		"fig6":      h.fig6,
		"fig7":      h.fig7,
		"fig8":      h.fig8,
		"fitlog":    h.fitlog,
		"crossover": h.crossover,
		"calibrate": h.calibrate,
		"bench":     h.bench,
		"ooc":       h.ooc,
		"benchcmp":  h.benchcmpExp,
		"threshold": h.threshold,
	}
	// bench, ooc and threshold are excluded from "all": they are host
	// measurements (minutes of wall clock), run explicitly via
	// `make bench` / `make bench-ooc` / `-exp threshold`.
	order := []string{"table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fitlog", "crossover", "calibrate"}

	var run []string
	if *exp == "all" {
		run = order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if _, ok := experiments[name]; !ok {
				fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q (known: all, %s)\n", name, strings.Join(order, ", "))
				os.Exit(2)
			}
			run = append(run, name)
		}
	}
	for _, name := range run {
		if err := experiments[name](); err != nil {
			stopProfiles()
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	stopProfiles()
	writeMemProfile()
}
