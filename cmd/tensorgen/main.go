// Command tensorgen generates synthetic streaming sparse tensors in
// FROSTT .tns format (the streaming mode is appended as the last mode).
//
// Examples:
//
//	tensorgen -preset flickr -scale 0.5 -o flickr.tns
//	tensorgen -dims 1000,2000 -slices 50 -nnz 10000 -zipf 1.0 -o custom.tns
//	tensorgen -dims 2000,1500 -slices 10 -nnz 500000 -format spblk -o custom.spblk
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"spstream/internal/sptensor"
	"spstream/internal/sptensor/ooc"
	"spstream/internal/synth"
	"spstream/internal/version"
)

func main() {
	var (
		preset   = flag.String("preset", "", "built-in preset: patents, flickr, uber, nips")
		scale    = flag.Float64("scale", 0.2, "preset scale")
		dims     = flag.String("dims", "", "custom mode lengths, comma separated (non-streaming modes)")
		slices   = flag.Int("slices", 20, "custom: number of time slices")
		nnz      = flag.Int("nnz", 10000, "custom: nonzeros per slice")
		zipf     = flag.Float64("zipf", 0, "custom: Zipf exponent for index skew (0 = uniform)")
		rank     = flag.Int("rank", 8, "custom: planted low-rank structure rank (0 = count values)")
		noise    = flag.Float64("noise", 0.05, "custom: noise std dev on planted values")
		seed     = flag.Uint64("seed", 1, "random seed")
		out      = flag.String("o", "", "output .tns file (default stdout)")
		binary   = flag.Bool("binary", false, "write the compact binary format instead of .tns text (same as -format binary)")
		format   = flag.String("format", "", "output format: tns (default), binary, or spblk (block-partitioned out-of-core format; requires -o)")
		blockNNZ = flag.Int("block-nnz", 0, "spblk: target nonzeros per block (0 = default)")
		split    = flag.Bool("split", false, "spblk: write one file per time slice into the -o directory (cpstream's out-of-core stream input)")
		showVer  = flag.Bool("version", false, "print version/build information and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("tensorgen", version.String())
		return
	}

	cfg, err := buildConfig(*preset, *scale, *dims, *slices, *nnz, *zipf, *rank, *noise, *seed)
	if err != nil {
		fatal(err)
	}
	stream, err := synth.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	tensor := sptensor.Merge(stream)
	fmt.Fprintf(os.Stderr, "tensorgen: dims=%v (streaming mode last) nnz=%d\n", tensor.Dims, tensor.NNZ())

	f := *format
	if f == "" {
		if *binary {
			f = "binary"
		} else {
			f = "tns"
		}
	}
	if f == "spblk" {
		// The block format is written directly (atomic temp + rename),
		// not through a stream, so it needs a path.
		if *out == "" {
			fatal(fmt.Errorf("-format spblk requires -o"))
		}
		if *split {
			// One .spblk file per time slice, ready for cpstream's
			// out-of-core directory input.
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fatal(err)
			}
			for i, x := range stream.Slices {
				path := filepath.Join(*out, fmt.Sprintf("slice-%04d.spblk", i))
				if err := ooc.WriteTensor(path, x, *blockNNZ); err != nil {
					fatal(err)
				}
			}
			fmt.Fprintf(os.Stderr, "tensorgen: wrote %d slice files under %s\n", len(stream.Slices), *out)
			return
		}
		if err := ooc.WriteTensor(*out, tensor, *blockNNZ); err != nil {
			fatal(err)
		}
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch f {
	case "binary":
		err = sptensor.WriteBinary(w, tensor)
	case "tns":
		err = sptensor.WriteTNS(w, tensor)
	default:
		err = fmt.Errorf("unknown format %q (want tns, binary, spblk)", f)
	}
	if err != nil {
		fatal(err)
	}
}

func buildConfig(preset string, scale float64, dims string, slices, nnz int, zipf float64, rank int, noise float64, seed uint64) (synth.Config, error) {
	if preset != "" {
		cfg, err := synth.Preset(preset, scale)
		if err != nil {
			return synth.Config{}, err
		}
		cfg.Seed = seed
		return cfg, nil
	}
	if dims == "" {
		return synth.Config{}, fmt.Errorf("one of -preset or -dims is required")
	}
	var dists []synth.IndexDist
	for _, part := range strings.Split(dims, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d < 1 {
			return synth.Config{}, fmt.Errorf("bad dimension %q", part)
		}
		if zipf > 0 {
			dists = append(dists, synth.NewZipf(d, zipf))
		} else {
			dists = append(dists, synth.Uniform{N: d})
		}
	}
	cfg := synth.Config{
		Name:        "custom",
		Dists:       dists,
		T:           slices,
		NNZPerSlice: nnz,
		Seed:        seed,
	}
	if rank > 0 {
		cfg.Values = synth.ValuePlanted
		cfg.PlantedRank = rank
		cfg.NoiseStd = noise
	}
	return cfg, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tensorgen:", err)
	os.Exit(1)
}
