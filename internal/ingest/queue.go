package ingest

import (
	"sync"
	"time"

	"spstream/internal/sptensor"
	"spstream/internal/trace"
)

// item is one queued slice plus its admission bookkeeping.
type item struct {
	slice *sptensor.Tensor
	// admitted is when the slice entered the queue; the lag deadline
	// (Config.MaxLag) is measured from it.
	admitted time.Time
	// coalesced counts how many later slices were merged into this one
	// under the Coalesce policy.
	coalesced int
	// walSeq is the WAL sequence number of a slice that took the spill
	// tier (0 for slices that entered the queue directly). The consumer
	// tracks the highest fully-consumed walSeq so checkpoint offsets
	// make replay after a crash exactly-once.
	walSeq uint64
}

// queue is the bounded, policy-aware buffer between producer and
// consumer. It is a plain mutex/cond design rather than a channel
// because three of the four policies need to inspect or mutate the
// buffered backlog (evict the head, merge into the tail) — operations
// a channel cannot express.
type queue struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	buf      []item
	capacity int
	policy   ShedPolicy
	closed   bool
	// killed is the emergency stop: refillers give up instead of
	// waiting for space and pop stops delivering.
	killed bool
	// refillers counts registered backlog refillers (the spill tier's
	// reader). While one is registered, pop treats an empty closed
	// queue as "more coming" rather than "done" — the drain must
	// consume the durable backlog too.
	refillers int
	clock     func() time.Time
	ov        *trace.Overload
}

func newQueue(capacity int, policy ShedPolicy, clock func() time.Time, ov *trace.Overload) *queue {
	if capacity < 1 {
		capacity = 1
	}
	q := &queue{capacity: capacity, policy: policy, clock: clock, ov: ov}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// push admits one slice under the queue's shed policy. It reports
// whether the slice was enqueued; a false return means the slice was
// accounted as shed or coalesced (the counters are already updated).
// Under the Block policy push waits for space; a close during the wait
// sheds the slice (drain cause).
func (q *queue) push(x *sptensor.Tensor) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		q.ov.ShedDrain.Add(1)
		return false
	}
	if len(q.buf) == q.capacity {
		switch q.policy {
		case Block:
			for len(q.buf) == q.capacity && !q.closed {
				q.notFull.Wait()
			}
			if q.closed {
				q.ov.ShedDrain.Add(1)
				return false
			}
		case DropNewest:
			q.ov.ShedNewest.Add(1)
			return false
		case DropOldest:
			q.buf = q.buf[1:]
			q.ov.ShedOldest.Add(1)
		case Coalesce:
			tail := &q.buf[len(q.buf)-1]
			if err := tail.slice.Merge(x); err != nil {
				// A window whose shape disagrees with the queued
				// backlog cannot be folded in; shed it rather than
				// corrupt the neighbour.
				q.ov.ShedNewest.Add(1)
				return false
			}
			q.ov.CoalescedEvents.Add(int64(x.NNZ()))
			tail.coalesced++
			q.ov.Coalesced.Add(1)
			return false
		}
	}
	q.buf = append(q.buf, item{slice: x, admitted: q.clock()})
	q.ov.RaiseHighWater(int64(len(q.buf)))
	q.notEmpty.Signal()
	return true
}

// tryPush enqueues x only when there is room and admissions are open,
// with no shed-policy accounting: a false return means the caller (the
// spill tier) keeps responsibility for the slice.
func (q *queue) tryPush(x *sptensor.Tensor) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.buf) == q.capacity {
		return false
	}
	q.buf = append(q.buf, item{slice: x, admitted: q.clock()})
	q.ov.RaiseHighWater(int64(len(q.buf)))
	q.notEmpty.Signal()
	return true
}

// refillPush re-admits a slice read back from the durable backlog. It
// waits for space like Block does, but ignores the admission close —
// a graceful drain keeps refilling until the backlog is flushed. A
// false return means the queue was killed (emergency stop) and the
// item was not enqueued; it stays durable on disk.
func (q *queue) refillPush(it item) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) == q.capacity && !q.killed {
		q.notFull.Wait()
	}
	if q.killed {
		return false
	}
	q.buf = append(q.buf, it)
	q.ov.RaiseHighWater(int64(len(q.buf)))
	q.notEmpty.Signal()
	return true
}

// addRefiller registers a backlog refiller; pop will not report
// exhaustion while one is registered.
func (q *queue) addRefiller() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.refillers++
}

// refillerDone deregisters a refiller and wakes the consumer so a
// drain can complete.
func (q *queue) refillerDone() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.refillers--
	q.notEmpty.Broadcast()
}

// pop removes the oldest queued slice, blocking until one is available
// or the queue is closed, refiller-free and empty (ok=false).
func (q *queue) pop() (item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) == 0 && !q.killed && !(q.closed && q.refillers == 0) {
		q.notEmpty.Wait()
	}
	if len(q.buf) == 0 {
		return item{}, false
	}
	it := q.buf[0]
	q.buf = q.buf[1:]
	q.notFull.Signal()
	return it, true
}

// tryPop is pop without blocking, used when discarding the backlog
// after a drain deadline.
func (q *queue) tryPop() (item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buf) == 0 {
		return item{}, false
	}
	it := q.buf[0]
	q.buf = q.buf[1:]
	q.notFull.Signal()
	return it, true
}

// close stops admissions; queued slices remain poppable. Blocked
// producers wake and account their slice as drain-shed.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
}

// kill is the emergency stop: admissions close AND refillers stop
// waiting for space. Queued items remain poppable for accounting.
func (q *queue) kill() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.killed = true
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
}

// isClosed reports whether close has been called.
func (q *queue) isClosed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

// depth returns the current backlog length.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}
