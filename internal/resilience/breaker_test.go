package resilience

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	return NewBreaker(BreakerConfig{
		FailureThreshold: threshold,
		Cooldown:         cooldown,
		Clock:            clk.Now,
	}), clk
}

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		b.OnFailure()
		if !b.Allow() {
			t.Fatalf("breaker refused admission after only %d failures", i+1)
		}
	}
	b.OnFailure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a slice before the cooldown")
	}
	if snap := b.Snapshot(); snap.Opens != 1 || snap.ConsecutiveFailures != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestBreakerSuccessResetsRun(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.OnFailure()
	b.OnFailure()
	b.OnSuccess() // run broken
	b.OnFailure()
	b.OnFailure()
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures must not open the breaker")
	}
}

func TestBreakerHalfOpenProbeCycle(t *testing.T) {
	b, clk := newTestBreaker(2, time.Second)
	b.OnFailure()
	b.OnFailure()
	if b.State() != BreakerOpen {
		t.Fatal("breaker should be open")
	}

	// Before the cooldown: refused.
	clk.Advance(500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("admitted before cooldown elapsed")
	}

	// After the cooldown: exactly one probe.
	clk.Advance(600 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe refused after cooldown")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state during probe = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second admission while the probe is in flight")
	}

	// Probe fails → re-open, fresh cooldown.
	b.OnFailure()
	if b.State() != BreakerOpen {
		t.Fatal("failed probe must re-open the breaker")
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted without a fresh cooldown")
	}
	clk.Advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}

	// Probe succeeds → closed, admissions flow.
	b.OnSuccess()
	if b.State() != BreakerClosed {
		t.Fatal("successful probe must close the breaker")
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused admission")
	}
	if snap := b.Snapshot(); snap.Opens != 2 || snap.Probes != 2 {
		t.Fatalf("snapshot = %+v, want 2 opens / 2 probes", snap)
	}
}

func TestBreakerRetryAfter(t *testing.T) {
	b, clk := newTestBreaker(1, 10*time.Second)
	if b.RetryAfter() != 0 {
		t.Fatal("closed breaker should have no retry delay")
	}
	b.OnFailure()
	if got := b.RetryAfter(); got != 10*time.Second {
		t.Fatalf("RetryAfter just after opening = %v, want 10s", got)
	}
	clk.Advance(9500 * time.Millisecond)
	if got := b.RetryAfter(); got != time.Second {
		t.Fatalf("RetryAfter near cooldown end = %v, want 1s floor", got)
	}
}
