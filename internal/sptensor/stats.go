package sptensor

import "fmt"

// ModeStats summarizes how a time slice's nonzeros are distributed over
// one mode — the quantities that drive spCP-stream's advantage (paper
// §V-A and Fig. 1).
type ModeStats struct {
	Mode        int
	Dim         int     // mode length I_n
	NNZ         int     // nonzeros in the slice
	NonzeroRows int     // |nz(n)|: distinct index values present
	ZeroRowFrac float64 // fraction of rows never touched (the A_z share)
	MaxPerRow   int     // heaviest row
}

// StatsForMode computes ModeStats for one mode of a slice.
func StatsForMode(t *Tensor, mode int) ModeStats {
	counts := make(map[int32]int, 1024)
	maxPer := 0
	for _, i := range t.Inds[mode] {
		counts[i]++
		if counts[i] > maxPer {
			maxPer = counts[i]
		}
	}
	dim := t.Dims[mode]
	zeroFrac := 0.0
	if dim > 0 {
		zeroFrac = float64(dim-len(counts)) / float64(dim)
	}
	return ModeStats{
		Mode:        mode,
		Dim:         dim,
		NNZ:         t.NNZ(),
		NonzeroRows: len(counts),
		ZeroRowFrac: zeroFrac,
		MaxPerRow:   maxPer,
	}
}

// AllModeStats computes ModeStats for every mode.
func AllModeStats(t *Tensor) []ModeStats {
	out := make([]ModeStats, t.NModes())
	for m := range out {
		out[m] = StatsForMode(t, m)
	}
	return out
}

func (s ModeStats) String() string {
	return fmt.Sprintf("mode %d: dim=%d nnz=%d nzRows=%d zeroFrac=%.4f maxPerRow=%d",
		s.Mode, s.Dim, s.NNZ, s.NonzeroRows, s.ZeroRowFrac, s.MaxPerRow)
}

// Histogram bins the nonzero index values of one mode into `bins`
// equal-width buckets over [0, dim) — the data behind paper Fig. 1. The
// returned slice has length bins and sums to NNZ.
func Histogram(t *Tensor, mode, bins int) []int {
	if bins < 1 {
		bins = 1
	}
	out := make([]int, bins)
	dim := t.Dims[mode]
	if dim == 0 {
		return out
	}
	for _, i := range t.Inds[mode] {
		b := int(int64(i) * int64(bins) / int64(dim))
		if b >= bins {
			b = bins - 1
		}
		out[b]++
	}
	return out
}

// OccupiedSpan returns the fraction of the mode's index range spanned by
// the occupied histogram buckets — a scalar summary of Fig. 1's
// "clustered vs spread" distinction.
func OccupiedSpan(t *Tensor, mode, bins int) float64 {
	h := Histogram(t, mode, bins)
	occupied := 0
	for _, c := range h {
		if c > 0 {
			occupied++
		}
	}
	return float64(occupied) / float64(len(h))
}
