// Package dense implements the dense linear-algebra substrate required by
// CP-stream: row-major float64 matrices, cache-blocked matrix products,
// Gram (SYRK-style) products, Hadamard products, Cholesky factorization
// with triangular solves and SPD inversion, norms, and the row
// gather/scatter primitives used by spCP-stream's nz/z factor partition.
//
// Matrices are small in one dimension (the decomposition rank K, at most
// a few hundred) and potentially large in the other (a tensor mode
// length), so kernels are organised as row-blocked loops with dense inner
// K-loops that the compiler can keep in registers.
package dense

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix. Row i occupies
// Data[i*Stride : i*Stride+Cols]. For matrices created by this package
// Stride == Cols, but views produced by RowView share backing storage.
type Matrix struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("dense: invalid dimensions %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows (copying).
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("dense: ragged rows in FromRows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*m.Stride+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float64 {
	off := i * m.Stride
	return m.Data[off : off+m.Cols]
}

// RowView returns a matrix view of rows [lo, hi) sharing storage with m.
func (m *Matrix) RowView(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("dense: RowView[%d:%d) out of range for %d rows", lo, hi, m.Rows))
	}
	return &Matrix{
		Rows:   hi - lo,
		Cols:   m.Cols,
		Stride: m.Stride,
		Data:   m.Data[lo*m.Stride : (hi-1)*m.Stride+m.Cols : (hi-1)*m.Stride+m.Cols],
	}
}

// Clone returns a deep copy of m with compact stride.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// CopyFrom copies src into m; dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("dense: CopyFrom shape mismatch %d×%d ← %d×%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// Zero sets every element of m to zero.
func (m *Matrix) Zero() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
}

// Fill sets every element of m to v.
func (m *Matrix) Fill(v float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = v
		}
	}
}

// T returns the transpose of m as a new compact matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Stride+i] = v
		}
	}
	return out
}

// Equal reports whether m and n have the same shape and elements within
// absolute tolerance tol.
func (m *Matrix) Equal(n *Matrix, tol float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		a, b := m.Row(i), n.Row(i)
		for j := range a {
			if math.Abs(a[j]-b[j]) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// m and n, panicking on shape mismatch.
func (m *Matrix) MaxAbsDiff(n *Matrix) float64 {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		panic("dense: MaxAbsDiff shape mismatch")
	}
	maxDiff := 0.0
	for i := 0; i < m.Rows; i++ {
		a, b := m.Row(i), n.Row(i)
		for j := range a {
			d := math.Abs(a[j] - b[j])
			if d > maxDiff {
				maxDiff = d
			}
		}
	}
	return maxDiff
}

// HasNaN reports whether any element is NaN or ±Inf.
func (m *Matrix) HasNaN() bool {
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
	}
	return false
}

// String renders small matrices for debugging.
func (m *Matrix) String() string {
	s := fmt.Sprintf("Matrix %d×%d", m.Rows, m.Cols)
	if m.Rows*m.Cols <= 64 {
		for i := 0; i < m.Rows; i++ {
			s += "\n"
			for j := 0; j < m.Cols; j++ {
				s += fmt.Sprintf(" %10.4g", m.At(i, j))
			}
		}
	}
	return s
}
