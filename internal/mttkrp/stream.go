package mttkrp

import (
	"fmt"

	"spstream/internal/dense"
	"spstream/internal/parallel"
	"spstream/internal/sptensor"
)

// StreamKernel evaluates the MTTKRP kernels over a sptensor.BlockSource
// one block at a time, so only the current block (plus the factor
// matrices and the output) is resident. The results are bit-identical to
// running the in-memory plan kernels on the materialized concatenation
// of the blocks, for any worker count:
//
//   - MTTKRP: blocks are processed in source order; within a block a
//     stable counting sort groups nonzeros by output row and whole row
//     segments are assigned to workers, so each output row has exactly
//     one writer per block and its contributions arrive in original
//     entry order. Direct row accumulation then reproduces the plan
//     kernel's per-row left-to-right sum exactly.
//   - TimeMode: the global nonzero range is partitioned with the same
//     parallel.WorkerRange boundaries DoReduceVecInto uses, each worker
//     carries its rank-k accumulator across blocks, and the accumulators
//     merge into dst in worker order — the reduction tree is identical
//     to the in-memory TimeMode on the materialized tensor.
//
// A StreamKernel owns reusable scratch; steady-state calls are
// allocation-free once the buffers have grown to the largest block.
type StreamKernel struct {
	c *Computer

	// Per-block counting-sort state (MTTKRP).
	count  []int32
	perm   []int32
	segPtr []int32
	wseg   []int32

	// Per-worker persistent accumulators and global boundaries (TimeMode).
	accs   [][]float64
	bounds []parallel.Range

	// Dispatch arguments for the pool bodies (no closures).
	out     *dense.Matrix
	x       *sptensor.Tensor
	factors []*dense.Matrix
	col     []int32
	dst     []float64
	mode    int
	k       int
	active  int
	base    int
}

// NewStreamKernel creates a streamed kernel evaluator on top of c's
// worker pool and scratch arenas.
func NewStreamKernel(c *Computer) *StreamKernel {
	return &StreamKernel{c: c}
}

func (s *StreamKernel) reset() {
	s.out, s.x, s.factors, s.col, s.dst = nil, nil, nil, nil, nil
}

func checkStreamArgs(out *dense.Matrix, dims []int, factors []*dense.Matrix, mode int) int {
	if len(factors) != len(dims) {
		panic(fmt.Sprintf("mttkrp: %d factors for %d modes", len(factors), len(dims)))
	}
	if mode < 0 || mode >= len(dims) {
		panic(fmt.Sprintf("mttkrp: mode %d out of range", mode))
	}
	k := factors[0].Cols
	for m, f := range factors {
		if f.Cols != k {
			panic("mttkrp: factor rank mismatch")
		}
		if f.Rows != dims[m] {
			panic(fmt.Sprintf("mttkrp: factor %d has %d rows for dim %d", m, f.Rows, dims[m]))
		}
	}
	if out != nil && (out.Rows != dims[mode] || out.Cols != k) {
		panic("mttkrp: output shape mismatch")
	}
	return k
}

// MTTKRP computes out = MTTKRP(src, factors, mode) streaming over the
// blocks of src. Bit-identical to PlanMTTKRP on MaterializeBlocks(src).
func (s *StreamKernel) MTTKRP(out *dense.Matrix, src sptensor.BlockSource, factors []*dense.Matrix, mode int) error {
	k := checkStreamArgs(out, src.Dims(), factors, mode)
	out.Zero()
	c := s.c
	c.ensureScratch(k)
	s.out, s.factors, s.mode, s.k = out, factors, mode, k
	defer s.reset()
	for b := 0; b < src.Blocks(); b++ {
		blk, err := src.Block(b)
		if err != nil {
			return fmt.Errorf("mttkrp: block %d: %w", b, err)
		}
		s.blockMTTKRP(blk)
	}
	return nil
}

// blockMTTKRP adds one block's contributions into s.out. The stable
// counting sort runs over the block's row extent (not the full mode
// length), so cost is O(block nnz + block height) per block.
func (s *StreamKernel) blockMTTKRP(x *sptensor.Tensor) {
	nnz := x.NNZ()
	if nnz == 0 {
		return
	}
	col := x.Inds[s.mode]
	lo, hi := col[0], col[0]
	for _, i := range col {
		if i < lo {
			lo = i
		}
		if i > hi {
			hi = i
		}
	}
	width := int(hi-lo) + 1
	if cap(s.count) < width+1 {
		s.count = make([]int32, width+1)
	}
	cnt := s.count[:width+1]
	for i := range cnt {
		cnt[i] = 0
	}
	for _, i := range col {
		cnt[i-lo+1]++
	}
	for i := 0; i < width; i++ {
		cnt[i+1] += cnt[i]
	}
	// Segment boundaries (one per non-empty row) before the scatter
	// below repurposes cnt as running offsets.
	s.segPtr = s.segPtr[:0]
	for i := 0; i < width; i++ {
		if cnt[i+1] > cnt[i] {
			s.segPtr = append(s.segPtr, cnt[i])
		}
	}
	s.segPtr = append(s.segPtr, int32(nnz))
	if cap(s.perm) < nnz {
		s.perm = make([]int32, nnz)
	}
	perm := s.perm[:nnz]
	for e, i := range col {
		r := i - lo
		perm[cnt[r]] = int32(e)
		cnt[r]++
	}
	s.wseg = parallel.WeightedBoundaries(s.wseg, s.segPtr, s.c.Workers)
	s.active = len(s.wseg) - 1
	s.x, s.col = x, col
	s.c.pool.Do(s.active, s.active, s, streamBlockBody)
	s.x, s.col = nil, nil
}

func streamBlockBody(ctx any, w int, r parallel.Range) {
	s := ctx.(*StreamKernel)
	buf := s.c.scratch[w][:s.k]
	x := s.x
	for widx := r.Lo; widx < r.Hi; widx++ {
		for seg := s.wseg[widx]; seg < s.wseg[widx+1]; seg++ {
			plo, phi := s.segPtr[seg], s.segPtr[seg+1]
			row := s.out.Row(int(s.col[s.perm[plo]]))
			for pe := plo; pe < phi; pe++ {
				e := int(s.perm[pe])
				rowProduct(buf, x, s.factors, s.mode, e, x.Vals[e])
				for j, v := range buf {
					row[j] += v
				}
			}
		}
	}
}

// TimeMode computes dst[k] = Σ_e val_e · ∏_v factors[v][i_v][k] over all
// blocks of src. Bit-identical to Computer.TimeMode on the materialized
// tensor for the same worker count.
func (s *StreamKernel) TimeMode(dst []float64, src sptensor.BlockSource, factors []*dense.Matrix) error {
	dims := src.Dims()
	if len(factors) != len(dims) {
		panic("mttkrp: TimeMode factor count mismatch")
	}
	k := len(dst)
	for j := range dst {
		dst[j] = 0
	}
	total := src.NNZ()
	if total == 0 {
		return nil
	}
	c := s.c
	c.ensureScratch(k)
	active := parallel.ClampWorkers(c.Workers, total)
	if cap(s.bounds) < active {
		s.bounds = make([]parallel.Range, active)
	}
	s.bounds = s.bounds[:active]
	for w := 0; w < active; w++ {
		s.bounds[w] = parallel.WorkerRange(total, active, w)
	}
	if active > 1 {
		for len(s.accs) < active {
			s.accs = append(s.accs, nil)
		}
		for w := 0; w < active; w++ {
			if cap(s.accs[w]) < k {
				s.accs[w] = make([]float64, k)
			}
			acc := s.accs[w][:k]
			for j := range acc {
				acc[j] = 0
			}
		}
	}
	s.factors, s.dst, s.k, s.active = factors, dst, k, active
	defer s.reset()
	base := 0
	for b := 0; b < src.Blocks(); b++ {
		blk, err := src.Block(b)
		if err != nil {
			return fmt.Errorf("mttkrp: block %d: %w", b, err)
		}
		if blk.NNZ() == 0 {
			continue
		}
		s.x, s.base = blk, base
		if active == 1 {
			// Mirror DoReduceVecInto's single-worker fast path: dst is
			// the accumulator, so no +0/-0 merge artifacts can differ.
			streamTimeRange(s, 0, 0, blk.NNZ(), dst)
		} else {
			c.pool.Do(active, active, s, streamTimeBody)
		}
		base += blk.NNZ()
		s.x = nil
	}
	if active > 1 {
		for w := 0; w < active; w++ {
			for j, v := range s.accs[w][:k] {
				dst[j] += v
			}
		}
	}
	return nil
}

func streamTimeBody(ctx any, w int, r parallel.Range) {
	s := ctx.(*StreamKernel)
	for widx := r.Lo; widx < r.Hi; widx++ {
		// Intersect this worker's global range with the current block.
		glo, ghi := s.bounds[widx].Lo, s.bounds[widx].Hi
		blo, bhi := s.base, s.base+s.x.NNZ()
		if glo < blo {
			glo = blo
		}
		if ghi > bhi {
			ghi = bhi
		}
		if glo >= ghi {
			continue
		}
		streamTimeRange(s, w, glo-blo, ghi-blo, s.accs[widx][:s.k])
	}
}

// streamTimeRange accumulates block entries [lo,hi) into acc using
// pool-worker w's scratch row.
func streamTimeRange(s *StreamKernel, w, lo, hi int, acc []float64) {
	buf := s.c.scratch[w][:s.k]
	for e := lo; e < hi; e++ {
		timeModeRow(buf, s.x, s.factors, e)
		for j, v := range buf {
			acc[j] += v
		}
	}
}
