package admm

import (
	"errors"
	"fmt"

	"spstream/internal/dense"
)

// Options configure an ADMM solve.
type Options struct {
	// Workers is the parallel width (≤0 = GOMAXPROCS).
	Workers int
	// Tol is ε in the paper's stopping rule
	// ‖A−Ã‖²/‖A‖² < ε ∧ ‖A−A₀‖²/‖U‖² < ε. Default 1e-4.
	Tol float64
	// MaxIters bounds the inner loop. Default 50.
	MaxIters int
	// BlockRows is the row-block size for BlockedFused (0 = auto: a
	// block of the five I×K operands fits in ~256 KiB of cache).
	BlockRows int
	// AdaptiveRho enables residual balancing (Boyd et al. §3.4.1) in
	// the Baseline solver: when the primal residual dominates the dual
	// one by RhoBalance (or vice versa), ρ is doubled (halved) and the
	// scaled dual variable rescaled accordingly. Each adaptation pays a
	// re-factorization of Φ+ρI, which is why the paper's fused kernel
	// keeps ρ fixed; the option exists for hard constraint sets where
	// a poor initial ρ stalls convergence.
	AdaptiveRho bool
	// RhoBalance is the imbalance ratio that triggers adaptation
	// (default 100, on the squared-norm residuals).
	RhoBalance float64
}

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-4
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 50
	}
	if o.RhoBalance <= 0 {
		o.RhoBalance = 100
	}
	return o
}

// blockRows resolves the row-block size for rank k.
func (o Options) blockRows(k int) int {
	if o.BlockRows > 0 {
		return o.BlockRows
	}
	// Five I×K float64 operands (A, Ã, A₀, U, Ψ) per block ≲ 256 KiB.
	b := (256 * 1024) / (5 * 8 * k)
	if b < 16 {
		b = 16
	}
	return b
}

// Stats reports the outcome of one ADMM solve.
type Stats struct {
	Iters     int
	Converged bool
}

// ErrBadShape is returned when the A/Φ/Ψ shapes are inconsistent.
var ErrBadShape = errors.New("admm: inconsistent matrix shapes")

// Solver owns the reusable workspace (dual variable, Ã, A₀) so repeated
// solves at the same shape allocate nothing. A Solver is not safe for
// concurrent use.
type Solver struct {
	opt Options
	// Workspace, lazily (re)sized.
	u, atld, a0 *dense.Matrix
	// cancel, when set, is polled between ADMM iterations; a non-nil
	// return aborts the solve with that error.
	cancel func() error
}

// NewSolver creates a solver with the given options.
func NewSolver(opt Options) *Solver {
	return &Solver{opt: opt.withDefaults()}
}

// Options returns the solver's (defaulted) options.
func (s *Solver) Options() Options { return s.opt }

// SetMaxIters adjusts the inner-iteration bound for subsequent solves
// (floor 1). The live path's degradation controller uses it to trade
// constraint-solve accuracy for throughput under overload.
func (s *Solver) SetMaxIters(n int) {
	if n < 1 {
		n = 1
	}
	s.opt.MaxIters = n
}

// SetCancel installs (or clears, with nil) a cancellation check polled
// between ADMM iterations — typically a context.Context's Err method —
// so a hung or over-deadline slice can abandon the inner solve at an
// iteration boundary. The in-place iterate A stays well-defined (it is
// a feasible-in-progress ADMM iterate); callers roll back or retry at
// the slice level.
func (s *Solver) SetCancel(f func() error) { s.cancel = f }

// cancelled polls the installed cancellation check.
func (s *Solver) cancelled() error {
	if s.cancel == nil {
		return nil
	}
	return s.cancel()
}

func (s *Solver) ensureWorkspace(rows, cols int) {
	need := func(m *dense.Matrix) bool {
		return m == nil || m.Rows != rows || m.Cols != cols
	}
	if need(s.u) {
		s.u = dense.NewMatrix(rows, cols)
	}
	if need(s.atld) {
		s.atld = dense.NewMatrix(rows, cols)
	}
	if need(s.a0) {
		s.a0 = dense.NewMatrix(rows, cols)
	}
}

func checkShapes(a, phi, psi *dense.Matrix) error {
	k := phi.Rows
	if phi.Cols != k {
		return fmt.Errorf("%w: Φ is %d×%d", ErrBadShape, phi.Rows, phi.Cols)
	}
	if a.Cols != k || psi.Cols != k || a.Rows != psi.Rows {
		return fmt.Errorf("%w: A %d×%d, Ψ %d×%d, Φ %d×%d",
			ErrBadShape, a.Rows, a.Cols, psi.Rows, psi.Cols, k, k)
	}
	return nil
}

// rho returns the ADMM penalty ρ = tr(Φ)/K with a floor for degenerate
// (near-zero) Φ.
func rho(phi *dense.Matrix) float64 {
	r := dense.Trace(phi) / float64(phi.Rows)
	if r <= 1e-12 {
		r = 1e-12
	}
	return r
}

// relConverged implements num/den < tol with a guard against zero
// denominators (num == 0 counts as converged regardless).
func relConverged(num, den, tol float64) bool {
	if num == 0 {
		return true
	}
	return num < tol*den
}
