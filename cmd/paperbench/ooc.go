package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"spstream/internal/core"
	"spstream/internal/perfmodel"
	"spstream/internal/sptensor/ooc"
	"spstream/internal/synth"
)

// The ooc experiment is the out-of-core acceptance measurement behind
// `make bench-ooc`: it proves that the streamed evaluation path holds
// peak heap flat while the slice's nonzero count grows 100×, and that
// streaming costs at most a bounded throughput factor on inputs that
// would have fit in memory anyway.
//
// Protocol: a fixed-shape synthetic slice is generated at 1×, 10× and
// 100× the base nonzero count, written to .spblk block files, and the
// in-memory copy is dropped before each measurement. Each run opens the
// block file cold and processes it through a fresh decomposer with
// core.Options.MemBudget set, while a sampler goroutine tracks the
// heap high-water mark (runtime.ReadMemStats). Two checks follow:
//
//   - HARD: on every streamed run under the real budget, the heap
//     high-water delta over the pre-run baseline must stay within
//     1.25× of the budget. A violation fails the experiment (and the
//     CI job running it) — flat memory is the point of the subsystem,
//     not an advisory nicety.
//   - Advisory: on the 1× config (which fits in RAM), forced-streamed
//     throughput must be ≥ 0.6× the in-memory path; below that a WARN
//     prints, mirroring compareBench's noisy-runner policy.
//
// Results are appended to the bench JSON (Kind "ooc"), so a committed
// BENCH_PR<n>.json can carry the kernel grid and the out-of-core
// evidence in one regression baseline: existing non-ooc records in the
// -benchjson file are preserved, prior ooc records are replaced.

// oocBudget is the resident-memory budget handed to the decomposer for
// the scaled runs. Chosen so the 1× slice fits in memory (its estimated
// resident size is ~4 MB) while 10× and 100× must stream.
const oocBudget = 16 << 20

// oocBaseNNZ is the 1× nonzero count. 100× is 5M nonzeros — ~400 MB
// estimated resident, 25× the budget.
const oocBaseNNZ = 50_000

// oocRun is one measured decomposition of a block file.
type oocRun struct {
	name     string // record name, e.g. "ooc/x10/stream"
	scale    int
	budget   int64              // Options.MemBudget for this run
	want     perfmodel.EvalMode // expected selector verdict
	enforce  bool               // apply the 1.25×budget heap ceiling
	trials   int                // wall-clock trials (min is reported)
	nnz      int
	wall     time.Duration
	liveB    int64 // post-GC live-heap delta after the run
	peakB    int64 // sampled HeapAlloc high-water delta during the run
	evalMode perfmodel.EvalMode
}

func (h *harness) ooc() error {
	h.header("Out-of-core — flat memory at 100× nonzeros (streamed evaluation)",
		"hard gate: heap high-water ≤ 1.25× -mem-budget on streamed runs")

	dims := []int{1200, 900, 700}
	rank := h.rank
	dir, err := os.MkdirTemp("", "spstream-ooc-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Generate and write the scaled block files up front, then drop the
	// in-memory tensors so generation garbage cannot pollute the
	// per-run heap baselines.
	scales := []int{1, 10, 100}
	paths := make(map[int]string, len(scales))
	for _, sc := range scales {
		nnz := oocBaseNNZ * sc
		cfg := synth.Config{
			Name: "oocflat",
			Dists: []synth.IndexDist{
				synth.Uniform{N: dims[0]}, synth.Uniform{N: dims[1]}, synth.Uniform{N: dims[2]},
			},
			T: 1, NNZPerSlice: nnz, Seed: 29,
		}
		s, err := synth.Generate(cfg)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("x%d.spblk", sc))
		if err := ooc.WriteTensor(path, s.Slices[0], 0); err != nil {
			return err
		}
		paths[sc] = path
		fmt.Fprintf(h.out, "wrote %s: nnz=%d est-resident=%s\n",
			filepath.Base(path), nnz, fmtBytes(perfmodel.ResidentBytes(nnz, len(dims))))
	}
	runtime.GC()

	runs := []*oocRun{
		// 1× both ways: the throughput-ratio pair. Budget 0 keeps the
		// selector on the in-memory path; budget 1 forces streaming.
		{name: "ooc/x1/inmem", scale: 1, budget: 0, want: perfmodel.EvalInMemory, trials: 2},
		{name: "ooc/x1/stream", scale: 1, budget: 1, want: perfmodel.EvalStreamed, trials: 2},
		// The flat-memory sweep under the real budget.
		{name: "ooc/x10/stream", scale: 10, budget: oocBudget, want: perfmodel.EvalStreamed, enforce: true, trials: 1},
		{name: "ooc/x100/stream", scale: 100, budget: oocBudget, want: perfmodel.EvalStreamed, enforce: true, trials: 1},
	}

	fmt.Fprintf(h.out, "\nbudget=%s  ceiling=%s  rank=%d  iters=%d  workers=%d\n\n",
		fmtBytes(oocBudget), fmtBytes(oocBudget+oocBudget/4), rank, 4, runtime.GOMAXPROCS(0))
	fmt.Fprintf(h.out, "%-16s %10s %-10s %12s %10s %12s %12s\n",
		"run", "nnz", "eval", "wall", "Mnnz/s", "live-heap", "peak-heap")

	for _, r := range runs {
		if err := h.oocMeasure(r, dims, rank, paths[r.scale]); err != nil {
			return err
		}
		fmt.Fprintf(h.out, "%-16s %10d %-10s %12s %10.2f %12s %12s\n",
			r.name, r.nnz, r.evalMode, r.wall.Round(time.Millisecond),
			float64(r.nnz)/1e6/r.wall.Seconds(),
			fmtBytes(r.liveB), fmtBytes(r.peakB))
	}

	// Hard gate: flat memory on the streamed runs under the real budget.
	ceiling := int64(oocBudget) + int64(oocBudget)/4
	var violations []string
	for _, r := range runs {
		if r.enforce && r.peakB > ceiling {
			violations = append(violations, fmt.Sprintf(
				"%s: heap high-water %s exceeds 1.25× budget (%s)", r.name, fmtBytes(r.peakB), fmtBytes(ceiling)))
		}
	}
	x10, x100 := runs[2], runs[3]
	fmt.Fprintf(h.out, "\nflatness: peak heap %s at 10× → %s at 100× (nnz grew 10×, budget %s)\n",
		fmtBytes(x10.peakB), fmtBytes(x100.peakB), fmtBytes(oocBudget))
	if len(violations) == 0 {
		fmt.Fprintf(h.out, "PASS: all streamed runs within 1.25× of the memory budget\n")
	}

	// Advisory throughput ratio on the fits-in-RAM config.
	inmem, forced := runs[0], runs[1]
	ratio := inmem.wall.Seconds() / forced.wall.Seconds()
	fmt.Fprintf(h.out, "streamed/in-memory throughput at 1×: %.2fx (in-memory %s, streamed %s)\n",
		ratio, inmem.wall.Round(time.Millisecond), forced.wall.Round(time.Millisecond))
	if ratio < 0.6 {
		fmt.Fprintf(h.out, "WARN: streamed throughput below 0.6× of in-memory on a fits-in-RAM slice (advisory)\n")
	}

	if err := h.oocEmit(runs, rank); err != nil {
		return err
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(h.out, "FAIL: %s\n", v)
		}
		return fmt.Errorf("out-of-core memory gate failed: %d streamed run(s) over budget", len(violations))
	}
	return nil
}

// oocMeasure processes one block file through a fresh decomposer,
// reporting the min wall time over r.trials and the heap profile of the
// last trial. The baseline is the post-GC live heap with the block file
// open but the decomposer not yet built, so factor state, kernel
// scratch and block buffers all count against the budget.
func (h *harness) oocMeasure(r *oocRun, dims []int, rank int, path string) error {
	r.wall = time.Duration(1<<62 - 1)
	for trial := 0; trial < r.trials; trial++ {
		br, err := ooc.Open(path)
		if err != nil {
			return err
		}
		r.nnz = br.NNZ()

		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		base := ms.HeapAlloc
		stop := oocHeapSampler()

		start := time.Now()
		// KernelPlan + LayoutOff on both paths: the streamed kernels
		// are the plan's bit-identical twins, so this is the
		// apples-to-apples configuration for the throughput ratio.
		dec, err := core.NewDecomposer(dims, core.Options{
			Rank: rank, Algorithm: core.Optimized,
			MTTKRPKernel: core.KernelPlan, Layout: core.LayoutOff,
			Seed: 9, MaxIters: 4, Tol: 0, MemBudget: r.budget,
		})
		if err != nil {
			br.Close()
			stop()
			return err
		}
		if _, err := dec.ProcessBlockSlice(br); err != nil {
			br.Close()
			stop()
			return fmt.Errorf("%s: %w", r.name, err)
		}
		wall := time.Since(start)
		high := stop()

		r.evalMode = dec.LastEvalMode()
		if r.evalMode != r.want {
			br.Close()
			return fmt.Errorf("%s: selector chose %s, expected %s (nnz=%d budget=%d)",
				r.name, r.evalMode, r.want, r.nnz, r.budget)
		}
		runtime.GC()
		runtime.ReadMemStats(&ms)
		if wall < r.wall {
			r.wall = wall
		}
		r.liveB = heapDelta(ms.HeapAlloc, base)
		r.peakB = heapDelta(high, base)
		br.Close()
	}
	return nil
}

// oocHeapSampler polls HeapAlloc in the background and returns a stop
// function yielding the high-water mark. Sampling (10 ms) rides on top
// of the GC's own trigger points, so short allocation bursts between
// samples can hide — the post-GC live measurement is the stable floor,
// the sampled peak the observable ceiling.
func oocHeapSampler() (stop func() uint64) {
	var (
		high uint64
		done = make(chan struct{})
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		var ms runtime.MemStats
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > high {
					high = ms.HeapAlloc
				}
			}
		}
	}()
	return func() uint64 {
		close(done)
		wg.Wait()
		return high
	}
}

func heapDelta(now, base uint64) int64 {
	if now <= base {
		return 0
	}
	return int64(now - base)
}

// oocEmit appends the runs to the bench JSON named by -benchjson,
// preserving any non-ooc records already in the file (so one committed
// BENCH_PR<n>.json can hold the kernel grid and the out-of-core
// evidence), then runs the advisory -compare diff.
func (h *harness) oocEmit(runs []*oocRun, rank int) error {
	doc := benchFile{GoVersion: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0), Baseline: h.benchCompare}
	if h.benchJSON != "" {
		if prev, err := readBenchFile(h.benchJSON); err == nil {
			doc.Baseline = prev.Baseline
			doc.CSFBestSpeedup = prev.CSFBestSpeedup
			doc.CSFBestAt = prev.CSFBestAt
			for _, rec := range prev.Records {
				if rec.Kind != "ooc" {
					doc.Records = append(doc.Records, rec)
				}
			}
		}
	}
	for _, r := range runs {
		kernel := "stream"
		if r.want == perfmodel.EvalInMemory {
			kernel = "inmem"
		}
		doc.Records = append(doc.Records, benchRecord{
			Name: r.name, Kind: "ooc", Config: "oocflat", Kernel: kernel,
			Mode: -1, Rank: rank, Workers: runtime.GOMAXPROCS(0),
			NsPerOp:       float64(r.wall.Nanoseconds()),
			LiveHeapBytes: r.liveB,
			PeakHeapBytes: r.peakB,
		})
	}
	if h.benchJSON != "" {
		data, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(h.benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(h.out, "\nwrote %s (%d records)\n", h.benchJSON, len(doc.Records))
	}
	if h.benchCompare != "" {
		if err := compareBench(h, &doc); err != nil {
			return err
		}
	}
	return nil
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
