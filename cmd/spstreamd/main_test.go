package main

import (
	"errors"
	"testing"

	"spstream/internal/resilience"
)

func TestParseChaos(t *testing.T) {
	hook, err := parseChaos("fail=2-3")
	if err != nil {
		t.Fatal(err)
	}
	begin := func() error { return hook(resilience.Fault{Stage: resilience.StageBegin}) }
	if err := begin(); err != nil {
		t.Fatalf("attempt 1 should pass: %v", err)
	}
	for i := 2; i <= 3; i++ {
		if err := begin(); !errors.Is(err, resilience.ErrDiverged) {
			t.Fatalf("attempt %d = %v, want ErrDiverged", i, err)
		}
	}
	if err := begin(); err != nil {
		t.Fatalf("attempt 4 should pass: %v", err)
	}
	// Non-begin stages are never injected.
	if err := hook(resilience.Fault{Stage: resilience.StageIterate}); err != nil {
		t.Fatalf("iterate stage injected: %v", err)
	}

	for _, bad := range []string{"x", "fail=", "fail=0-2", "fail=5-3", "stall=1-2", "stall=1-2:zz", "boom=1-2"} {
		if _, err := parseChaos(bad); err == nil {
			t.Errorf("parseChaos(%q) accepted", bad)
		}
	}
	if _, err := parseChaos("fail=4,stall=1-2:10ms"); err != nil {
		t.Fatalf("compound spec rejected: %v", err)
	}
}
