package parallel

import (
	"fmt"
	"sync"
)

// MutexPool is a pool of striped mutual-exclusion locks guarding the rows
// of a factor matrix, as used by the baseline CP-stream MTTKRP. Row i is
// guarded by lock i mod len(pool); several rows therefore share a lock,
// trading memory for (bounded) false contention, exactly as in SPLATT's
// lock pool.
type MutexPool struct {
	locks []sync.Mutex
	mask  int
}

// NewMutexPool creates a pool with at least n locks, rounded up to a
// power of two so that the row→lock mapping is a cheap mask.
func NewMutexPool(n int) *MutexPool {
	if n < 1 {
		n = 1
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &MutexPool{locks: make([]sync.Mutex, size), mask: size - 1}
}

// Len returns the number of locks in the pool.
func (p *MutexPool) Len() int { return len(p.locks) }

// Lock acquires the lock guarding row i.
func (p *MutexPool) Lock(i int) { p.locks[i&p.mask].Lock() }

// Unlock releases the lock guarding row i.
func (p *MutexPool) Unlock(i int) { p.locks[i&p.mask].Unlock() }

// LocalBuffers holds one float64 scratch buffer per worker, used by the
// hybrid-lock MTTKRP to accumulate updates to short modes privately
// before a final reduction. Buffers are reused across calls to avoid
// per-iteration allocation.
type LocalBuffers struct {
	bufs [][]float64
}

// NewLocalBuffers creates per-worker buffers of the given size.
func NewLocalBuffers(workers, size int) *LocalBuffers {
	lb := &LocalBuffers{bufs: make([][]float64, workers)}
	for w := range lb.bufs {
		lb.bufs[w] = make([]float64, size)
	}
	return lb
}

// Get returns worker w's buffer, growing it to at least size and zeroing
// the first size elements.
func (lb *LocalBuffers) Get(w, size int) []float64 {
	if w >= len(lb.bufs) {
		// Grow the worker dimension lazily; callers normally size the
		// pool to the worker count, so this is a rare path.
		for len(lb.bufs) <= w {
			lb.bufs = append(lb.bufs, nil)
		}
	}
	if cap(lb.bufs[w]) < size {
		lb.bufs[w] = make([]float64, size)
	}
	buf := lb.bufs[w][:size]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Workers returns the number of per-worker buffers currently held.
func (lb *LocalBuffers) Workers() int { return len(lb.bufs) }

// Reduce sums the first size elements of the first workers buffers into
// dst (dst must have length ≥ size). The accumulation order is worker
// 0..workers-1, so the result is deterministic. A worker count beyond the
// held buffers or an undersized buffer is a caller sizing bug — silently
// skipping it would drop that worker's partial sums — so Reduce panics
// instead.
func (lb *LocalBuffers) Reduce(dst []float64, workers, size int) {
	if workers > len(lb.bufs) {
		panic(fmt.Sprintf("parallel: LocalBuffers.Reduce over %d workers but only %d buffers held", workers, len(lb.bufs)))
	}
	for w := 0; w < workers; w++ {
		buf := lb.bufs[w]
		if len(buf) < size {
			panic(fmt.Sprintf("parallel: LocalBuffers.Reduce worker %d buffer has %d elements, need %d", w, len(buf), size))
		}
		for i := 0; i < size; i++ {
			dst[i] += buf[i]
		}
	}
}
