package cluster

// This file is the cluster's merge math. The cluster model is additive
// over mode-0 row blocks: shard s trains a full spCP-stream model on
// the substream of events whose mode-0 row it owns, so its factors are
// only supported on rows [lo_s, hi_s) of mode 0 (rows it never saw
// keep their initial state and never meet data). The global model is
//
//	X̂ = Σ_s X̂_s,   X̂_s supported on mode-0 rows [lo_s, hi_s),
//
// which makes the merges exact, not approximate:
//
//   - Point reads route to the one shard owning the row.
//   - The global mode-0 factor is the row-block concatenation of each
//     shard's owned rows (MergeMode0).
//   - The global model energy splits over disjoint supports,
//     ‖X̂‖² = Σ_s ‖X̂_s‖², and each shard term collapses to a K×K
//     Gram/Hadamard contraction (BlockNorm2) instead of a sum over
//     Π dims entries.

// BlockNorm2 computes ‖X̂‖² of one shard's model restricted to its
// owned mode-0 rows [lo, hi):
//
//	‖X̂‖² = sᵀ (G₀ ∘ G₁ ∘ … ∘ G_{M-1}) s,
//	G₀ = A₀[lo:hi]ᵀ A₀[lo:hi],   G_m = A_mᵀ A_m (m ≥ 1),
//
// the standard Khatri-Rao Gram identity with the mode-0 Gram taken
// over the block only. factors is mode → rows → K (the /v1/factors
// wire layout); s is the temporal row sₜ.
func BlockNorm2(factors [][][]float64, s []float64, lo, hi int) float64 {
	K := len(s)
	if K == 0 || len(factors) == 0 {
		return 0
	}
	// H starts as s sᵀ and accumulates one Gram Hadamard-product per
	// mode; the final answer is the sum of its entries.
	H := make([]float64, K*K)
	for k := 0; k < K; k++ {
		for l := 0; l < K; l++ {
			H[k*K+l] = s[k] * s[l]
		}
	}
	G := make([]float64, K*K)
	for m, f := range factors {
		rlo, rhi := 0, len(f)
		if m == 0 {
			rlo, rhi = lo, hi
			if rlo < 0 {
				rlo = 0
			}
			if rhi > len(f) {
				rhi = len(f)
			}
		}
		for i := range G {
			G[i] = 0
		}
		for i := rlo; i < rhi; i++ {
			row := f[i]
			if len(row) < K {
				continue // malformed row; contributes nothing
			}
			for k := 0; k < K; k++ {
				rk := row[k]
				if rk == 0 {
					continue
				}
				for l := 0; l < K; l++ {
					G[k*K+l] += rk * row[l]
				}
			}
		}
		for i := range H {
			H[i] *= G[i]
		}
	}
	sum := 0.0
	for _, v := range H {
		sum += v
	}
	return sum
}

// RowRange is a contiguous [Lo, Hi) range of global mode-0 rows,
// tagged with the shard that owns it. The gateway's degraded-read
// contract reports missing coverage as a list of these.
type RowRange struct {
	Shard int `json:"shard"`
	Lo    int `json:"row_lo"`
	Hi    int `json:"row_hi"`
}

// MergeMode0 assembles the global mode-0 factor from per-shard factor
// matrices (mode-0 rows × K, full height dims[0] each): rows
// [lo_s, hi_s) come from shard s's matrix. A nil entry marks an
// unreachable shard; its rows are left zero and its non-empty block is
// reported in missing, so a caller can tell real zeros from absent
// coverage. Rows a present shard's matrix does not reach (truncated
// response) are also reported missing.
func MergeMode0(r *Router, perShard [][][]float64, rank int) (rows [][]float64, missing []RowRange) {
	d := r.Dims()[0]
	rows = make([][]float64, d)
	for i := range rows {
		rows[i] = make([]float64, rank)
	}
	for s := 0; s < r.Shards(); s++ {
		lo, hi := r.Block(s)
		if lo == hi {
			continue // empty block: nothing owed, nothing missing
		}
		if s >= len(perShard) || perShard[s] == nil {
			missing = append(missing, RowRange{Shard: s, Lo: lo, Hi: hi})
			continue
		}
		f := perShard[s]
		covered := hi
		if covered > len(f) {
			covered = len(f)
		}
		for i := lo; i < covered; i++ {
			copy(rows[i], f[i])
		}
		if covered < hi {
			missing = append(missing, RowRange{Shard: s, Lo: covered, Hi: hi})
		}
	}
	return rows, missing
}
