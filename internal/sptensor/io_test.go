package sptensor

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadTNSBasic(t *testing.T) {
	in := `# comment line
1 2 1 1.5

3 4 2 -2.0
2 1 1 3.0
`
	ts, err := ReadTNS(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ts.NModes() != 3 || ts.NNZ() != 3 {
		t.Fatalf("modes=%d nnz=%d", ts.NModes(), ts.NNZ())
	}
	// Dims inferred from max coordinate.
	if ts.Dims[0] != 3 || ts.Dims[1] != 4 || ts.Dims[2] != 2 {
		t.Fatalf("dims = %v", ts.Dims)
	}
	// 1-based → 0-based.
	if ts.Inds[0][0] != 0 || ts.Inds[1][0] != 1 || ts.Vals[0] != 1.5 {
		t.Fatal("coordinate conversion wrong")
	}
}

func TestReadTNSWithDims(t *testing.T) {
	ts, err := ReadTNS(strings.NewReader("1 1 2.0\n"), []int{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if ts.Dims[0] != 5 {
		t.Fatal("given dims ignored")
	}
	if _, err := ReadTNS(strings.NewReader("9 1 2.0\n"), []int{5, 5}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := ReadTNS(strings.NewReader("1 1 1 2.0\n"), []int{5, 5}); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestReadTNSMalformed(t *testing.T) {
	cases := []string{
		"",                 // empty
		"1\n",              // too few fields
		"x 1 2.0\n",        // bad coordinate
		"0 1 2.0\n",        // 0-based coordinate
		"1 1 zzz\n",        // bad value
		"1 1 NaN\n",        // non-finite
		"1 1 2.0\n1 2.0\n", // inconsistent arity
	}
	for i, in := range cases {
		if _, err := ReadTNS(strings.NewReader(in), nil); err == nil {
			t.Fatalf("case %d: expected error for %q", i, in)
		}
	}
}

func TestTNSRoundTrip(t *testing.T) {
	orig := buildTestTensor()
	var buf bytes.Buffer
	if err := WriteTNS(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTNS(&buf, orig.Dims)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != orig.NNZ() {
		t.Fatal("nnz changed")
	}
	for e := 0; e < orig.NNZ(); e++ {
		for m := range orig.Inds {
			if back.Inds[m][e] != orig.Inds[m][e] {
				t.Fatal("indices changed")
			}
		}
		if back.Vals[e] != orig.Vals[e] {
			t.Fatal("values changed")
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	orig := buildTestTensor()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != orig.NNZ() || back.NModes() != orig.NModes() {
		t.Fatal("shape changed")
	}
	for e := 0; e < orig.NNZ(); e++ {
		for m := range orig.Inds {
			if back.Inds[m][e] != orig.Inds[m][e] {
				t.Fatal("indices changed")
			}
		}
		if back.Vals[e] != orig.Vals[e] {
			t.Fatal("values changed")
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a tensor")); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Fatal("expected EOF error")
	}
	// Valid magic, truncated body.
	if _, err := ReadBinary(bytes.NewReader([]byte{'S', 'P', 'T', '1', 3})); err == nil {
		t.Fatal("expected truncation error")
	}
}

// BenchmarkReadTNS measures the .tns parser on a realistic mid-size
// input. The in-place field scanner keeps B/op at a small constant
// plus the tensor's own storage — no per-line strings.Fields garbage.
func BenchmarkReadTNS(b *testing.B) {
	x := buildBenchTensor(200, 150, 100, 50_000)
	var buf bytes.Buffer
	if err := WriteTNS(&buf, x); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadTNS(bytes.NewReader(data), x.Dims); err != nil {
			b.Fatal(err)
		}
	}
}

func buildBenchTensor(d0, d1, d2, nnz int) *Tensor {
	x := New(d0, d1, d2)
	state := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int32 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int32(state % uint64(n))
	}
	coord := make([]int32, 3)
	for e := 0; e < nnz; e++ {
		coord[0], coord[1], coord[2] = next(d0), next(d1), next(d2)
		x.Append(coord, float64(next(1000))/250.0+0.001)
	}
	return x
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/t.tns"
	orig := buildTestTensor()
	if err := WriteTNSFile(path, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTNSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != orig.NNZ() {
		t.Fatal("file round trip lost nonzeros")
	}
	if _, err := ReadTNSFile(dir + "/missing.tns"); err == nil {
		t.Fatal("expected error for missing file")
	}
}
