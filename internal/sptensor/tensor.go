// Package sptensor implements the sparse-tensor substrate for CP-stream:
// a coordinate-format (COO) sparse tensor, streaming-slice extraction
// along a designated time mode, nonzero-slice (index-set) analysis,
// FROSTT text and binary I/O, and mode histograms.
//
// Storage is struct-of-arrays: one int32 index column per mode plus one
// value column. Index columns are the natural layout for MTTKRP, which
// streams all nonzeros and touches every mode's index.
package sptensor

import (
	"fmt"
	"sort"
)

// Tensor is an N-way sparse tensor in coordinate format. Nonzero e has
// coordinates (Inds[0][e], …, Inds[N-1][e]) and value Vals[e]. Indices
// are 0-based and must lie in [0, Dims[m]).
type Tensor struct {
	Dims []int
	Inds [][]int32
	Vals []float64
}

// New creates an empty tensor with the given mode lengths.
func New(dims ...int) *Tensor {
	t := &Tensor{Dims: append([]int(nil), dims...), Inds: make([][]int32, len(dims))}
	return t
}

// NModes returns the number of modes.
func (t *Tensor) NModes() int { return len(t.Dims) }

// NNZ returns the number of stored nonzeros.
func (t *Tensor) NNZ() int { return len(t.Vals) }

// Append adds one nonzero. idx must have one coordinate per mode.
func (t *Tensor) Append(idx []int32, val float64) {
	if len(idx) != len(t.Dims) {
		panic(fmt.Sprintf("sptensor: Append with %d coordinates for %d modes", len(idx), len(t.Dims)))
	}
	for m, i := range idx {
		t.Inds[m] = append(t.Inds[m], i)
	}
	t.Vals = append(t.Vals, val)
}

// Reserve grows capacity for n additional nonzeros.
func (t *Tensor) Reserve(n int) {
	for m := range t.Inds {
		if cap(t.Inds[m])-len(t.Inds[m]) < n {
			grown := make([]int32, len(t.Inds[m]), len(t.Inds[m])+n)
			copy(grown, t.Inds[m])
			t.Inds[m] = grown
		}
	}
	if cap(t.Vals)-len(t.Vals) < n {
		grown := make([]float64, len(t.Vals), len(t.Vals)+n)
		copy(grown, t.Vals)
		t.Vals = grown
	}
}

// Validate checks structural invariants: equal column lengths and
// in-range indices. It returns a descriptive error for the first
// violation found.
func (t *Tensor) Validate() error {
	if len(t.Inds) != len(t.Dims) {
		return fmt.Errorf("sptensor: %d index columns for %d modes", len(t.Inds), len(t.Dims))
	}
	for m, col := range t.Inds {
		if len(col) != len(t.Vals) {
			return fmt.Errorf("sptensor: mode %d has %d indices, %d values", m, len(col), len(t.Vals))
		}
		dim := int32(t.Dims[m])
		for e, i := range col {
			if i < 0 || i >= dim {
				return fmt.Errorf("sptensor: nonzero %d mode %d index %d out of range [0,%d)", e, m, i, dim)
			}
		}
	}
	return nil
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{
		Dims: append([]int(nil), t.Dims...),
		Inds: make([][]int32, len(t.Inds)),
		Vals: append([]float64(nil), t.Vals...),
	}
	for m := range t.Inds {
		out.Inds[m] = append([]int32(nil), t.Inds[m]...)
	}
	return out
}

// Merge folds every nonzero of other into t, coalescing duplicate
// coordinates — both across the two tensors and within each — so the
// result stores each coordinate once with the summed value (exact
// zeros produced by cancellation are dropped). Merging to or from an
// empty tensor works: the result is the other operand, coalesced. The
// tensors must agree on mode count and every mode length; a mismatch
// is rejected without mutating t. The ingestion layer uses Merge to
// fold a pending window into its neighbour under the Coalesce shed
// policy, where duplicated nonzeros would silently double-count
// events.
func (t *Tensor) Merge(other *Tensor) error {
	if len(other.Dims) != len(t.Dims) {
		return fmt.Errorf("sptensor: Merge of %d-mode tensor into %d-mode tensor", len(other.Dims), len(t.Dims))
	}
	for m := range t.Dims {
		if t.Dims[m] != other.Dims[m] {
			return fmt.Errorf("sptensor: Merge mode %d length mismatch (%d ≠ %d)", m, other.Dims[m], t.Dims[m])
		}
	}
	if other.NNZ() == 0 {
		// Still canonicalize: the contract is unique coordinates out.
		t.Coalesce()
		return nil
	}
	for m := range t.Inds {
		t.Inds[m] = append(t.Inds[m], other.Inds[m]...)
	}
	t.Vals = append(t.Vals, other.Vals...)
	t.Coalesce()
	return nil
}

// Norm2 returns the squared Frobenius norm Σ val², assuming coordinates
// are unique (duplicates would need coalescing first).
func (t *Tensor) Norm2() float64 {
	sum := 0.0
	for _, v := range t.Vals {
		sum += v * v
	}
	return sum
}

// SortByMode sorts nonzeros lexicographically with the given mode as the
// primary key (remaining modes in order as tie-breakers). Used to build
// slice offsets and to coalesce duplicates.
func (t *Tensor) SortByMode(mode int) {
	n := t.NNZ()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	order := make([]int, 0, len(t.Dims))
	order = append(order, mode)
	for m := range t.Dims {
		if m != mode {
			order = append(order, m)
		}
	}
	sort.SliceStable(perm, func(a, b int) bool {
		for _, m := range order {
			ia, ib := t.Inds[m][perm[a]], t.Inds[m][perm[b]]
			if ia != ib {
				return ia < ib
			}
		}
		return false
	})
	t.applyPermutation(perm)
}

func (t *Tensor) applyPermutation(perm []int) {
	for m := range t.Inds {
		col := t.Inds[m]
		next := make([]int32, len(col))
		for i, p := range perm {
			next[i] = col[p]
		}
		t.Inds[m] = next
	}
	vals := make([]float64, len(t.Vals))
	for i, p := range perm {
		vals[i] = t.Vals[p]
	}
	t.Vals = vals
}

// Coalesce sums duplicate coordinates into a single nonzero and drops
// exact zeros. The tensor is left sorted by mode 0.
func (t *Tensor) Coalesce() {
	if t.NNZ() == 0 {
		return
	}
	t.SortByMode(0)
	write := 0
	for read := 0; read < t.NNZ(); read++ {
		if write > 0 && t.sameCoords(write-1, read) {
			t.Vals[write-1] += t.Vals[read]
			continue
		}
		if read != write {
			for m := range t.Inds {
				t.Inds[m][write] = t.Inds[m][read]
			}
			t.Vals[write] = t.Vals[read]
		}
		write++
	}
	// Drop zeros produced by cancellation.
	keep := 0
	for e := 0; e < write; e++ {
		if t.Vals[e] == 0 {
			continue
		}
		if e != keep {
			for m := range t.Inds {
				t.Inds[m][keep] = t.Inds[m][e]
			}
			t.Vals[keep] = t.Vals[e]
		}
		keep++
	}
	for m := range t.Inds {
		t.Inds[m] = t.Inds[m][:keep]
	}
	t.Vals = t.Vals[:keep]
}

func (t *Tensor) sameCoords(a, b int) bool {
	for m := range t.Inds {
		if t.Inds[m][a] != t.Inds[m][b] {
			return false
		}
	}
	return true
}

// NonzeroSlices returns the sorted distinct index values present in the
// given mode — the nz(n) set of spCP-stream.
func (t *Tensor) NonzeroSlices(mode int) []int32 {
	if t.NNZ() == 0 {
		return nil
	}
	seen := make(map[int32]struct{}, 1024)
	for _, i := range t.Inds[mode] {
		seen[i] = struct{}{}
	}
	out := make([]int32, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Density returns nnz / ∏ dims as a float64 (0 for degenerate shapes).
func (t *Tensor) Density() float64 {
	total := 1.0
	for _, d := range t.Dims {
		total *= float64(d)
	}
	if total == 0 {
		return 0
	}
	return float64(t.NNZ()) / total
}

// String summarizes the tensor shape.
func (t *Tensor) String() string {
	s := "Tensor"
	for m, d := range t.Dims {
		if m == 0 {
			s += fmt.Sprintf(" %d", d)
		} else {
			s += fmt.Sprintf("×%d", d)
		}
	}
	return fmt.Sprintf("%s (%d nnz)", s, t.NNZ())
}

// PermuteModes returns a copy of the tensor with its modes reordered:
// new mode m holds what was mode order[m]. Useful for putting a tensor's
// natural streaming mode last before Merge-style serialization or for
// CSF orderings.
func (t *Tensor) PermuteModes(order []int) (*Tensor, error) {
	if len(order) != t.NModes() {
		return nil, fmt.Errorf("sptensor: permutation has %d modes, tensor %d", len(order), t.NModes())
	}
	seen := make([]bool, t.NModes())
	for _, m := range order {
		if m < 0 || m >= t.NModes() || seen[m] {
			return nil, fmt.Errorf("sptensor: %v is not a mode permutation", order)
		}
		seen[m] = true
	}
	out := &Tensor{
		Dims: make([]int, t.NModes()),
		Inds: make([][]int32, t.NModes()),
		Vals: append([]float64(nil), t.Vals...),
	}
	for m, src := range order {
		out.Dims[m] = t.Dims[src]
		out.Inds[m] = append([]int32(nil), t.Inds[src]...)
	}
	return out, nil
}
