package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"spstream/internal/ingest"
	"spstream/internal/resilience"
	"spstream/internal/serve/httpx"
)

// routes wires the API surface onto the mux.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /v1/factors", s.handleFactors)
	s.mux.HandleFunc("GET /v1/reconstruct", s.handleReconstruct)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
}

// recoverMiddleware converts handler panics into 500s. It sits inside
// the timeout wrapper so a panicking handler kills neither the daemon
// nor the other in-flight requests.
func (s *Server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.cfg.Logf("panic in %s %s: %v", r.Method, r.URL.Path, p)
				// The header may already be out; this is best-effort.
				http.Error(w, "internal error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// writeJSON marshals v with a status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// jsonError is the error envelope every non-2xx response carries.
func jsonError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// ingestResponse summarizes one ingest POST. FirstRejectedLine is the
// 1-based body line number of the first rejected event (0 when nothing
// was rejected) so a producer posting a multi-line body can find the
// offending record instead of guessing.
type ingestResponse struct {
	Accepted           int    `json:"accepted"`
	Rejected           int    `json:"rejected"`
	Windows            int    `json:"windows_emitted"`
	Shed               int    `json:"windows_shed"`
	FirstRejectedLine  int    `json:"first_rejected_line,omitempty"`
	FirstRejectedError string `json:"first_rejected_error,omitempty"`
}

// handleIngest accepts a text body of event lines ("i j k [value]",
// 1-based coordinates, '#' comments), accumulates them into windows,
// and admits completed windows to the pipeline. ?flush=1 additionally
// flushes the partial window at the end of the body.
//
// Status codes are the backpressure contract: 200 all admitted, 429
// the queue shed at least one window (Retry-After: 1), 503 the circuit
// breaker is open (Retry-After: remaining cooldown) or the daemon is
// draining. Malformed events are counted, not fatal — a live feed
// keeps going past garbage — but a body with zero valid events is 400.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", httpx.RetryAfterSeconds(time.Second))
		jsonError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.BodyLimit)
	flush := r.URL.Query().Get("flush") != ""

	var resp ingestResponse
	var admitErr error
	lineNo := 0
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<20)

	s.accMu.Lock()
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		ev, err := ParseEvent(line, s.cfg.Dims)
		if err != nil {
			resp.Rejected++
			if resp.FirstRejectedLine == 0 {
				resp.FirstRejectedLine = lineNo
				resp.FirstRejectedError = err.Error()
			}
			s.rejected.Add(1)
			continue
		}
		resp.Accepted++
		if slice := s.acc.Add(ev); slice != nil {
			resp.Windows++
			if err := s.pipe.Admit(slice); err != nil {
				resp.Shed++
				admitErr = err
			}
		}
	}
	scanErr := sc.Err()
	if scanErr == nil && flush {
		if slice := s.acc.Flush(); slice != nil {
			resp.Windows++
			if err := s.pipe.Admit(slice); err != nil {
				resp.Shed++
				admitErr = err
			}
		}
	}
	s.accMu.Unlock()

	if scanErr != nil {
		var tooBig *http.MaxBytesError
		if errors.As(scanErr, &tooBig) {
			jsonError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", s.cfg.BodyLimit)
			return
		}
		jsonError(w, http.StatusBadRequest, "reading body: %v", scanErr)
		return
	}
	if resp.Accepted == 0 && resp.Rejected > 0 {
		jsonError(w, http.StatusBadRequest, "no valid events in body (%d rejected; line %d: %s)",
			resp.Rejected, resp.FirstRejectedLine, resp.FirstRejectedError)
		return
	}

	switch {
	case admitErr == nil:
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(admitErr, ingest.ErrGateClosed):
		w.Header().Set("Retry-After", httpx.RetryAfterSeconds(s.breaker.RetryAfter()))
		writeJSON(w, http.StatusServiceUnavailable, resp)
	case errors.Is(admitErr, ingest.ErrQueueFull):
		w.Header().Set("Retry-After", httpx.RetryAfterSeconds(time.Second))
		writeJSON(w, http.StatusTooManyRequests, resp)
	case errors.Is(admitErr, ingest.ErrDraining):
		w.Header().Set("Retry-After", httpx.RetryAfterSeconds(time.Second))
		writeJSON(w, http.StatusServiceUnavailable, resp)
	default:
		jsonError(w, http.StatusInternalServerError, "admit: %v", admitErr)
	}
}

// factorsResponse renders a snapshot. Factor matrices are row-major
// [][]float64 per mode; ?mode=N restricts to one mode for large
// models.
type factorsResponse struct {
	T       int           `json:"t"`
	Dims    []int         `json:"dims"`
	Rank    int           `json:"rank"`
	Fit     *float64      `json:"fit"` // null without fit tracking
	S       []float64     `json:"s"`
	Factors [][][]float64 `json:"factors,omitempty"`
	Mode    *int          `json:"mode,omitempty"`
	Factor  [][]float64   `json:"factor,omitempty"`
}

// handleFactors serves the published snapshot — by construction a
// committed slice boundary, regardless of what the solver is doing.
func (s *Server) handleFactors(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	resp := factorsResponse{
		T:    snap.T,
		Dims: snap.Dims,
		Rank: snap.Rank,
		Fit:  jsonFloat(snap.Fit),
		S:    snap.S,
	}
	if modeStr := r.URL.Query().Get("mode"); modeStr != "" {
		mode, err := strconv.Atoi(modeStr)
		if err != nil || mode < 0 || mode >= len(snap.Factors) {
			jsonError(w, http.StatusBadRequest, "bad mode %q (have %d modes)", modeStr, len(snap.Factors))
			return
		}
		resp.Mode = &mode
		resp.Factor = matrixRows(snap, mode)
	} else {
		resp.Factors = make([][][]float64, len(snap.Factors))
		for m := range snap.Factors {
			resp.Factors[m] = matrixRows(snap, m)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// matrixRows copies one factor into a JSON-friendly row-major slice.
func matrixRows(snap *FactorSnapshot, mode int) [][]float64 {
	f := snap.Factors[mode]
	rows := make([][]float64, f.Rows)
	for i := 0; i < f.Rows; i++ {
		rows[i] = f.Row(i) // snapshot storage is immutable; safe to alias
	}
	return rows
}

// jsonFloat maps NaN/Inf (invalid in JSON) to null.
func jsonFloat(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// handleReconstruct evaluates the snapshot model at ?coord=i,j,…
// (1-based, matching the event feed convention).
func (s *Server) handleReconstruct(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	coordStr := r.URL.Query().Get("coord")
	if coordStr == "" {
		jsonError(w, http.StatusBadRequest, "missing coord=i,j,… query parameter")
		return
	}
	parts := strings.Split(coordStr, ",")
	if len(parts) != len(snap.Dims) {
		jsonError(w, http.StatusBadRequest, "want %d coordinates, got %d", len(snap.Dims), len(parts))
		return
	}
	coord := make([]int32, len(parts))
	for m, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 32)
		if err != nil || v < 1 || int(v) > snap.Dims[m] {
			jsonError(w, http.StatusBadRequest, "bad coordinate %q for mode %d (dim %d)", p, m, snap.Dims[m])
			return
		}
		coord[m] = int32(v - 1)
	}
	val, err := snap.ReconstructAt(coord)
	if err != nil {
		jsonError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"t": snap.T, "coord": coordStr, "value": val})
}

// statsResponse is the /v1/stats document.
type statsResponse struct {
	Version        string           `json:"version"`
	T              int              `json:"t"`
	Fit            *float64         `json:"fit"`
	Draining       bool             `json:"draining"`
	QueueDepth     int              `json:"queue_depth"`
	RejectedEvents int64            `json:"rejected_events"`
	Shard          *shardStats      `json:"shard,omitempty"`
	Breaker        breakerStats     `json:"breaker"`
	Overload       map[string]int64 `json:"overload"`
	Resilience     resilience.Stats `json:"resilience"`
	Layout         layoutStats      `json:"layout"`
}

// shardStats reports this daemon's slot in a row-sharded cluster: it
// owns mode-0 rows [row_lo, row_hi) (0-based, half-open) of the global
// tensor. The gateway audits this block against its own router so a
// topology mismatch (wrong -shard-id, wrong -shard-count) is caught
// instead of silently splitting a row range across two owners.
type shardStats struct {
	ID    int `json:"id"`
	Count int `json:"count"`
	RowLo int `json:"row_lo"`
	RowHi int `json:"row_hi"`
}

// layoutStats reports the adaptive-layout manager: how much of the
// stream it has profiled, how often the hot-first permutations were
// rebuilt, and what the newest slice's verdict was. Row remapping is
// invisible in every other API — snapshots and checkpoints always carry
// global row ids — so these counters are the only external trace of it.
type layoutStats struct {
	Epoch    int     `json:"epoch"`
	Rebuilds int     `json:"rebuilds"`
	MaxCover float64 `json:"max_cover"`
	Remapped bool    `json:"remapped"`
	HotFirst bool    `json:"hot_first"`
}

type breakerStats struct {
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Opens               int    `json:"opens"`
	Probes              int    `json:"probes"`
	RetryAfterSeconds   int    `json:"retry_after_seconds,omitempty"`
}

// handleStats reports the live operational counters: build info, the
// published model position, breaker state, and the full overload and
// resilience breakdowns.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	view := s.stats.Load()
	ov := s.pipe.Stats()
	bs := s.breaker.Snapshot()
	resp := statsResponse{
		Version:        s.cfg.Version,
		T:              view.T,
		Fit:            jsonFloat(view.Fit),
		Draining:       s.draining.Load(),
		QueueDepth:     s.pipe.Depth(),
		RejectedEvents: s.rejected.Load(),
		Breaker: breakerStats{
			State:               bs.State.String(),
			ConsecutiveFailures: bs.ConsecutiveFailures,
			Opens:               int(bs.Opens),
			Probes:              int(bs.Probes),
		},
		Overload: map[string]int64{
			"produced":        ov.Produced,
			"processed":       ov.Processed,
			"failed":          ov.Failed,
			"shed_newest":     ov.ShedNewest,
			"shed_oldest":     ov.ShedOldest,
			"shed_stale":      ov.ShedStale,
			"shed_drain":      ov.ShedDrain,
			"shed_breaker":    ov.ShedBreaker,
			"coalesced":       ov.Coalesced,
			"queue_high":      ov.QueueHighWater,
			"spilled":         ov.Spilled,
			"spill_recovered": ov.SpillRecovered,
			"spill_drained":   ov.SpillDrained,
			"spill_pending":   ov.SpillPending(),
			"spill_bytes":     ov.SpillBytes,
			"shed_spill":      ov.ShedSpill,
		},
		Resilience: view.Resilience,
		Layout: layoutStats{
			Epoch:    view.Layout.Epoch,
			Rebuilds: view.Layout.Rebuilds,
			MaxCover: view.Layout.MaxCover,
			Remapped: view.Remapped,
			HotFirst: view.HotFirst,
		},
	}
	if sh := s.cfg.Shard; sh != nil {
		resp.Shard = &shardStats{ID: sh.ID, Count: sh.Count, RowLo: sh.RowLo, RowHi: sh.RowHi}
	}
	if bs.State != resilience.BreakerClosed {
		resp.Breaker.RetryAfterSeconds = httpx.Seconds(s.breaker.RetryAfter())
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is liveness: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: false while the breaker is open (the
// solver loop is sick — stop routing traffic here) or the daemon is
// draining. A half-open breaker reports ready: the probe path is how
// it heals, and refusing all traffic would deadlock recovery.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if st := s.breaker.State(); st == resilience.BreakerOpen {
		w.Header().Set("Retry-After", httpx.RetryAfterSeconds(s.breaker.RetryAfter()))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "breaker open"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}
