package main

import (
	"fmt"

	"spstream/internal/dense"
	"spstream/internal/mttkrp"
	"spstream/internal/synth"
)

// threshold calibrates mttkrp.DefaultShortModeThreshold: Hybrid routes
// a mode to the thread-local-accumulate path when its length is at or
// below the threshold and to the lock-pool path above it. The sweep
// holds the nonzero count fixed and grows one mode's length across the
// candidate range, timing both paths on the same slice; the crossover
// is where the lock path first wins. The thread-local path pays a
// rows×K×workers reduction that grows linearly in the mode length,
// while the lock path's contention *shrinks* as rows spread over more
// lock stripes — so the two must cross, and the crossover shifts with
// the worker count (more workers → bigger reduction → lower crossover).
// The default constant is calibrated against the multi-worker sweep;
// EXPERIMENTS.md records the measured table this default came from.
func (h *harness) threshold() error {
	h.header("Threshold — short-mode crossover calibration (DefaultShortModeThreshold)",
		"Hybrid Lock's local/lock switch (§IV-B); reproducible basis for the constant")
	const nnz = 150000
	const k = 16
	lengths := []int{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384}
	fmt.Fprintf(h.out, "slice: nnz=%d rank=%d, other modes 2000×2000 uniform (min of %d trials)\n",
		nnz, k, measureTrials)
	var rows [][]string
	for _, w := range h.measureWorkers() {
		fmt.Fprintf(h.out, "\nworkers=%d:\n", w)
		fmt.Fprintf(h.out, "%8s %14s %14s %10s\n", "rows", "local(s)", "lock(s)", "local/lock")
		crossover := -1
		for _, rowsN := range lengths {
			cfg := synth.Config{
				Name:        "threshold",
				Dists:       []synth.IndexDist{synth.Uniform{N: rowsN}, synth.Uniform{N: 2000}, synth.Uniform{N: 2000}},
				T:           1,
				NNZPerSlice: nnz,
				Seed:        31,
			}
			x, err := synth.GenerateSlice(cfg, 0)
			if err != nil {
				return err
			}
			dims := []int{rowsN, 2000, 2000}
			factors := randomFactors(dims, k, 13)
			c := mttkrp.NewComputer(w)
			out := dense.NewMatrix(rowsN, k)
			tLocal := minDuration(measureTrials, func() { c.LocalAccumulate(out, x, factors, 0) }).Seconds()
			tLock := minDuration(measureTrials, func() { c.Lock(out, x, factors, 0) }).Seconds()
			ratio := tLocal / tLock
			if ratio > 1 && crossover < 0 {
				crossover = rowsN
			}
			fmt.Fprintf(h.out, "%8d %14.6f %14.6f %10.2f\n", rowsN, tLocal, tLock, ratio)
			rows = append(rows, []string{itoa(w), itoa(rowsN), ftoa(tLocal), ftoa(tLock), ftoa(ratio)})
		}
		if crossover < 0 {
			fmt.Fprintf(h.out, "local path never lost in this sweep; crossover ≥ %d\n", lengths[len(lengths)-1])
		} else {
			fmt.Fprintf(h.out, "first lock win at %d rows → threshold in (%d, %d]\n",
				crossover, crossover/2, crossover)
		}
	}
	fmt.Fprintf(h.out, "\ncurrent DefaultShortModeThreshold = %d\n", mttkrp.DefaultShortModeThreshold)
	return h.writeCSV("threshold", []string{"workers", "rows", "local_s", "lock_s", "ratio"}, rows)
}
