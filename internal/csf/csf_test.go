package csf

import (
	"testing"
	"testing/quick"

	"spstream/internal/dense"
	"spstream/internal/mttkrp"
	"spstream/internal/sptensor"
	"spstream/internal/synth"
)

func randomSlice(seed uint64, dims []int, nnz int) *sptensor.Tensor {
	r := synth.NewRNG(seed)
	x := sptensor.New(dims...)
	coord := make([]int32, len(dims))
	for e := 0; e < nnz; e++ {
		for m, d := range dims {
			coord[m] = int32(r.Intn(d))
		}
		x.Append(coord, r.NormFloat64())
	}
	x.Coalesce()
	return x
}

func randomFactors(seed uint64, dims []int, k int) []*dense.Matrix {
	r := synth.NewRNG(seed)
	out := make([]*dense.Matrix, len(dims))
	for m, d := range dims {
		f := dense.NewMatrix(d, k)
		for i := range f.Data {
			f.Data[i] = r.NormFloat64()
		}
		out[m] = f
	}
	return out
}

func TestNewValidation(t *testing.T) {
	x := randomSlice(1, []int{4, 5}, 10)
	if _, err := New(x, []int{0}); err == nil {
		t.Fatal("short order accepted")
	}
	if _, err := New(x, []int{0, 0}); err == nil {
		t.Fatal("non-permutation accepted")
	}
	if _, err := New(x, []int{0, 2}); err == nil {
		t.Fatal("out-of-range order accepted")
	}
	tree, err := New(x, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if tree.NNZ() != x.NNZ() {
		t.Fatal("nnz changed")
	}
}

func TestTreeStructure(t *testing.T) {
	x := sptensor.New(3, 4, 2)
	x.Append([]int32{0, 1, 0}, 1)
	x.Append([]int32{0, 1, 1}, 2)
	x.Append([]int32{0, 2, 0}, 3)
	x.Append([]int32{2, 0, 1}, 4)
	tree, err := New(x, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Roots: indices 0 and 2.
	if tree.Roots() != 2 || tree.Levels[0].IDs[0] != 0 || tree.Levels[0].IDs[1] != 2 {
		t.Fatalf("roots = %v", tree.Levels[0].IDs)
	}
	// Level 1: fibers (0,1), (0,2), (2,0).
	if len(tree.Levels[1].IDs) != 3 {
		t.Fatalf("level 1 = %v", tree.Levels[1].IDs)
	}
	// Root 0 has children [0,2), root 2 has [2,3).
	if tree.Levels[0].Ptr[0] != 0 || tree.Levels[0].Ptr[1] != 2 || tree.Levels[0].Ptr[2] != 3 {
		t.Fatalf("root ptr = %v", tree.Levels[0].Ptr)
	}
	// Leaves: 4 distinct coordinates.
	if len(tree.Levels[2].IDs) != 4 {
		t.Fatalf("leaves = %v", tree.Levels[2].IDs)
	}
}

// CSF MTTKRP must match the COO reference for every mode, via the
// per-mode forest.
func TestForestMatchesSequential(t *testing.T) {
	f := func(seed uint64) bool {
		dims := []int{12, 18, 9}
		x := randomSlice(seed, dims, 200)
		factors := randomFactors(seed+1, dims, 4)
		forest, err := NewForest(x)
		if err != nil {
			return false
		}
		for mode := range dims {
			want := dense.NewMatrix(dims[mode], 4)
			mttkrp.Sequential(want, x, factors, mode)
			for _, workers := range []int{1, 4} {
				got := dense.NewMatrix(dims[mode], 4)
				forest.MTTKRP(got, factors, mode, workers)
				if got.MaxAbsDiff(want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestFourWayForest(t *testing.T) {
	dims := []int{6, 5, 4, 7}
	x := randomSlice(3, dims, 150)
	factors := randomFactors(4, dims, 3)
	forest, err := NewForest(x)
	if err != nil {
		t.Fatal(err)
	}
	for mode := range dims {
		want := dense.NewMatrix(dims[mode], 3)
		mttkrp.Sequential(want, x, factors, mode)
		got := dense.NewMatrix(dims[mode], 3)
		forest.MTTKRP(got, factors, mode, 2)
		if got.MaxAbsDiff(want) > 1e-9 {
			t.Fatalf("mode %d: CSF differs from reference", mode)
		}
	}
}

func TestEmptyTensor(t *testing.T) {
	x := sptensor.New(5, 5)
	tree, err := New(x, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	factors := randomFactors(9, []int{5, 5}, 2)
	out := dense.NewMatrix(5, 2)
	out.Fill(3)
	tree.MTTKRPRoot(out, factors, 2)
	for _, v := range out.Data {
		if v != 0 {
			t.Fatal("empty CSF MTTKRP must zero the output")
		}
	}
}

// The CSF structure must compress shared prefixes: a tensor whose
// nonzeros share few root indices has far fewer level-1 nodes than
// nonzeros.
func TestPrefixCompression(t *testing.T) {
	x := sptensor.New(4, 1000, 1000)
	r := synth.NewRNG(5)
	for e := 0; e < 3000; e++ {
		x.Append([]int32{int32(r.Intn(4)), int32(r.Intn(1000)), int32(r.Intn(1000))}, 1)
	}
	x.Coalesce()
	tree, err := New(x, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Roots() > 4 {
		t.Fatalf("roots = %d", tree.Roots())
	}
	if len(tree.Levels[1].IDs) >= x.NNZ() {
		t.Fatal("no prefix compression at level 1")
	}
}
