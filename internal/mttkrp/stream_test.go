package mttkrp

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"spstream/internal/dense"
	"spstream/internal/parallel"
	"spstream/internal/sptensor"
	"spstream/internal/sptensor/ooc"
)

// streamTensor builds a deterministic test tensor with optional skew
// (duplicate-heavy hot rows) and tiny-dim degeneracy.
func streamTensor(tb testing.TB, dims []int, nnz int, seed int64, skew bool) *sptensor.Tensor {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := sptensor.New(dims...)
	coord := make([]int32, len(dims))
	for e := 0; e < nnz; e++ {
		for m, d := range dims {
			if skew && rng.Intn(3) == 0 {
				coord[m] = int32(rng.Intn(1 + d/8))
			} else {
				coord[m] = int32(rng.Intn(d))
			}
		}
		x.Append(coord, rng.NormFloat64())
	}
	return x
}

func randFactors(rng *rand.Rand, dims []int, k int) []*dense.Matrix {
	fs := make([]*dense.Matrix, len(dims))
	for m, d := range dims {
		fs[m] = dense.NewMatrix(d, k)
		for i := range fs[m].Data {
			fs[m].Data[i] = rng.NormFloat64()
		}
	}
	return fs
}

// TestStreamMatchesPlan checks that the streamed kernels are
// bit-identical to the in-memory plan kernels on the materialized
// concatenation of the blocks, for worker counts below, at, and above
// the pool size, on random, skewed, and degenerate tensors.
func TestStreamMatchesPlan(t *testing.T) {
	pool := parallel.NewPool(4)
	cases := []struct {
		name string
		x    *sptensor.Tensor
	}{
		{"random", streamTensor(t, []int{50, 40, 60}, 5000, 1, false)},
		{"skewed", streamTensor(t, []int{200, 30, 100}, 8000, 2, true)},
		{"degenerate", streamTensor(t, []int{1, 3, 2}, 64, 3, false)},
		{"mode4", streamTensor(t, []int{12, 9, 14, 8}, 2000, 4, false)},
		{"empty", sptensor.New(5, 5, 5)},
	}
	const k = 9
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src, err := sptensor.SplitBlocks(tc.x, 700)
			if err != nil {
				t.Fatal(err)
			}
			mat, err := sptensor.MaterializeBlocks(src)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(99))
			factors := randFactors(rng, tc.x.Dims, k)
			for _, workers := range []int{1, 4, 7} {
				c := NewComputerWithPool(workers, pool)
				sk := NewStreamKernel(c)
				plan := c.NewPlan(mat)
				for mode := range tc.x.Dims {
					want := dense.NewMatrix(tc.x.Dims[mode], k)
					got := dense.NewMatrix(tc.x.Dims[mode], k)
					c.PlanMTTKRP(want, plan, factors, mode)
					if err := sk.MTTKRP(got, src, factors, mode); err != nil {
						t.Fatal(err)
					}
					for i, v := range want.Data {
						if math.Float64bits(got.Data[i]) != math.Float64bits(v) {
							t.Fatalf("workers=%d mode=%d: element %d = %v, want %v (not bit-identical)",
								workers, mode, i, got.Data[i], v)
						}
					}
				}
				want := make([]float64, k)
				got := make([]float64, k)
				c.TimeMode(want, mat, factors)
				if err := sk.TimeMode(got, src, factors); err != nil {
					t.Fatal(err)
				}
				for j := range want {
					if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
						t.Fatalf("workers=%d TimeMode[%d] = %v, want %v (not bit-identical)",
							workers, j, got[j], want[j])
					}
				}
			}
		})
	}
}

// TestStreamMatchesPlanOnBlockFile runs the same bit-identity check
// through a real .spblk file — mmap reader, CRC verification and all —
// so the full out-of-core read path is covered, not just MemBlocks.
func TestStreamMatchesPlanOnBlockFile(t *testing.T) {
	x := streamTensor(t, []int{80, 50, 70}, 6000, 7, true)
	path := filepath.Join(t.TempDir(), "x.spblk")
	if err := ooc.WriteTensor(path, x, 512); err != nil {
		t.Fatal(err)
	}
	r, err := ooc.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	mat, err := sptensor.MaterializeBlocks(r)
	if err != nil {
		t.Fatal(err)
	}
	const k = 12
	rng := rand.New(rand.NewSource(5))
	factors := randFactors(rng, x.Dims, k)
	pool := parallel.NewPool(4)
	for _, workers := range []int{1, 4, 7} {
		c := NewComputerWithPool(workers, pool)
		sk := NewStreamKernel(c)
		plan := c.NewPlan(mat)
		for mode := range x.Dims {
			want := dense.NewMatrix(x.Dims[mode], k)
			got := dense.NewMatrix(x.Dims[mode], k)
			c.PlanMTTKRP(want, plan, factors, mode)
			if err := sk.MTTKRP(got, r, factors, mode); err != nil {
				t.Fatal(err)
			}
			for i, v := range want.Data {
				if math.Float64bits(got.Data[i]) != math.Float64bits(v) {
					t.Fatalf("workers=%d mode=%d: element %d differs", workers, mode, i)
				}
			}
		}
		want := make([]float64, k)
		got := make([]float64, k)
		c.TimeMode(want, mat, factors)
		if err := sk.TimeMode(got, r, factors); err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
				t.Fatalf("workers=%d TimeMode[%d] differs", workers, j)
			}
		}
	}
}

// TestStreamKernelAllocFree checks the steady-state allocation contract:
// after the first call has grown the scratch, repeated streamed MTTKRP
// and TimeMode evaluations allocate nothing.
func TestStreamKernelAllocFree(t *testing.T) {
	x := streamTensor(t, []int{60, 45, 55}, 6000, 11, false)
	src, err := sptensor.SplitBlocks(x, 900)
	if err != nil {
		t.Fatal(err)
	}
	const k = 8
	rng := rand.New(rand.NewSource(21))
	factors := randFactors(rng, x.Dims, k)
	c := NewComputerWithPool(2, parallel.NewPool(2))
	sk := NewStreamKernel(c)
	out := dense.NewMatrix(x.Dims[0], k)
	dst := make([]float64, k)
	// Warm-up growth pass over every mode.
	for mode := range x.Dims {
		o := dense.NewMatrix(x.Dims[mode], k)
		if err := sk.MTTKRP(o, src, factors, mode); err != nil {
			t.Fatal(err)
		}
	}
	if err := sk.TimeMode(dst, src, factors); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := sk.MTTKRP(out, src, factors, 0); err != nil {
			t.Fatal(err)
		}
		if err := sk.TimeMode(dst, src, factors); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state streamed kernels allocate %v times per run, want 0", allocs)
	}
}
