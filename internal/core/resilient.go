package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"

	"spstream/internal/dense"
	"spstream/internal/parallel"
	"spstream/internal/resilience"
	"spstream/internal/sptensor"
)

// This file is the guarded half of the streaming runtime: context-aware
// slice processing with panic containment, a ridge-escalation recovery
// ladder for solver failures, post-slice numerical health checks, and
// rollback to an in-memory last-good snapshot with a configurable
// RetrySlice/SkipSlice/Abort policy. All of it is driven by
// Options.Resilience; with a nil config the context path still provides
// cancellation and panic-to-error conversion but never mutates recovery
// state.

// stateSnapshot is a deep copy of exactly the state that crosses slice
// boundaries (the same set SaveState serializes). It is owned by the
// Decomposer and its storage is reused across slices, so steady-state
// snapshotting allocates nothing.
type stateSnapshot struct {
	valid    bool
	a, c, cz []*dense.Matrix
	g        *dense.Matrix
	s        []float64
	histLen  int
	t        int
	hasNZ    bool
	prevNZ   [][]int32
}

// takeSnapshot captures the current between-slice state.
func (d *Decomposer) takeSnapshot() {
	if d.snap == nil {
		sn := &stateSnapshot{
			g:      dense.NewMatrix(d.k, d.k),
			s:      make([]float64, d.k),
			prevNZ: make([][]int32, d.n),
		}
		for _, dim := range d.dims {
			sn.a = append(sn.a, dense.NewMatrix(dim, d.k))
			sn.c = append(sn.c, dense.NewMatrix(d.k, d.k))
			sn.cz = append(sn.cz, dense.NewMatrix(d.k, d.k))
		}
		d.snap = sn
	}
	sn := d.snap
	for m := range d.a {
		sn.a[m].CopyFrom(d.a[m])
		sn.c[m].CopyFrom(d.c[m])
		sn.cz[m].CopyFrom(d.cz[m])
	}
	sn.g.CopyFrom(d.g)
	copy(sn.s, d.s)
	sn.histLen = len(d.sHist)
	sn.t = d.t
	sn.hasNZ = d.prevNZ != nil
	if sn.hasNZ {
		for m := range d.prevNZ {
			sn.prevNZ[m] = append(sn.prevNZ[m][:0], d.prevNZ[m]...)
		}
	}
	sn.valid = true
}

// rollback restores the last snapshot, reversing any partial mutation a
// failed, cancelled, or panicked slice left behind. It reports whether
// a snapshot was available.
func (d *Decomposer) rollback() bool {
	sn := d.snap
	if sn == nil || !sn.valid {
		return false
	}
	for m := range d.a {
		d.a[m].CopyFrom(sn.a[m])
		d.c[m].CopyFrom(sn.c[m])
		d.cz[m].CopyFrom(sn.cz[m])
		// Re-seed the slice-start invariants the begin phase established.
		d.cPrev[m].CopyFrom(sn.c[m])
		d.h[m].CopyFrom(sn.c[m])
	}
	d.g.CopyFrom(sn.g)
	copy(d.s, sn.s)
	d.sHist = d.sHist[:sn.histLen]
	d.t = sn.t
	if !sn.hasNZ {
		d.prevNZ = nil
	} else {
		if d.prevNZ == nil {
			d.prevNZ = make([][]int32, d.n)
		}
		for m := range sn.prevNZ {
			d.prevNZ[m] = append(d.prevNZ[m][:0], sn.prevNZ[m]...)
		}
	}
	return true
}

// ResilienceStats returns a copy of the per-stream recovery counters.
func (d *Decomposer) ResilienceStats() resilience.Stats { return d.stats }

// injectFault invokes the fault-injection hook (testing only; no-op
// without one).
func (d *Decomposer) injectFault(stage resilience.Stage, iter int) error {
	cfg := d.opt.Resilience
	if cfg == nil || cfg.FaultHook == nil {
		return nil
	}
	return cfg.FaultHook(resilience.Fault{Stage: stage, Slice: d.t, Iter: iter, Attempt: d.sliceAttempt})
}

// factorize runs the Φ Cholesky factorization with the recovery ladder:
// on ErrNotSPD (a numerically indefinite Gram, the classic CP-stream
// failure mode) it retries with an escalating ridge via
// dense.FactorRidge, bounded by MaxFactorizeRetries, before giving up
// with the original error. Without a resilience config it is exactly
// chol.Factorize.
func (d *Decomposer) factorize(phi *dense.Matrix) error {
	err := d.injectFault(resilience.StageFactorize, d.iterNo)
	if err == nil {
		err = d.chol.Factorize(phi)
	}
	cfg := d.opt.Resilience
	if err == nil || cfg == nil || !errors.Is(err, dense.ErrNotSPD) {
		return err
	}
	boost := cfg.RidgeBoost * dense.Trace(phi) / float64(d.k)
	if !(boost > 0) || math.IsInf(boost, 0) { // catches NaN traces too
		boost = 1e-10
	}
	for attempt := 0; attempt < cfg.MaxFactorizeRetries; attempt++ {
		d.stats.RidgeRetries++
		c, rerr := dense.FactorRidge(phi, boost)
		if rerr == nil {
			d.chol = *c
			d.stats.RidgeRecoveries++
			return nil
		}
		boost *= cfg.RidgeGrowth
	}
	return err
}

// scanSliceInput rejects slices that would corrupt the factorization:
// out-of-range or negative coordinates (which panic inside kernels) and
// non-finite values (which propagate NaN into every factor).
func scanSliceInput(x *sptensor.Tensor) error {
	if err := x.Validate(); err != nil {
		return err
	}
	for e, v := range x.Vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("sptensor: nonzero %d has non-finite value %g", e, v)
		}
	}
	return nil
}

// healthCheck validates the numerical state a just-finished slice left
// behind: finite convergence measure within the divergence guard,
// finite factors, temporal weights, and temporal Gram, and (optionally)
// the fit floor. Failures wrap resilience.ErrDiverged.
func (d *Decomposer) healthCheck(res *SliceResult) error {
	cfg := d.opt.Resilience
	if cfg == nil {
		return nil
	}
	if math.IsNaN(res.Delta) || math.IsInf(res.Delta, 0) || res.Delta > cfg.MaxDelta {
		return fmt.Errorf("core: slice t=%d finished with δ=%g: %w", res.T, res.Delta, resilience.ErrDiverged)
	}
	for m := range d.a {
		if d.a[m].HasNaN() {
			return fmt.Errorf("core: slice t=%d produced a non-finite mode-%d factor: %w", res.T, m, resilience.ErrDiverged)
		}
	}
	for _, v := range d.s {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: slice t=%d produced non-finite temporal weights: %w", res.T, resilience.ErrDiverged)
		}
	}
	if d.g.HasNaN() {
		return fmt.Errorf("core: slice t=%d produced a non-finite temporal Gram: %w", res.T, resilience.ErrDiverged)
	}
	if cfg.FitFloor != 0 && d.opt.TrackFit && !math.IsNaN(res.Fit) && res.Fit < cfg.FitFloor {
		return fmt.Errorf("core: slice t=%d fit %g below floor %g: %w", res.T, res.Fit, cfg.FitFloor, resilience.ErrDiverged)
	}
	return nil
}

// recoveredError converts a recovered panic value into an error that
// carries the panicking stack. Pool workers arrive pre-wrapped as
// *parallel.PanicError (with the worker's stack); anything else gets
// the current goroutine's stack, which still contains the panic frames
// when called from a deferred recover.
func recoveredError(r any) error {
	if pe, ok := r.(*parallel.PanicError); ok {
		return fmt.Errorf("core: panic in parallel kernel: %w", pe)
	}
	return fmt.Errorf("core: panic during slice processing: %v\n%s", r, debug.Stack())
}

// runSlice executes one slice attempt with panic containment and the
// solver-level cancellation check installed. It is the single choke
// point through which both the guarded and unguarded paths process a
// slice.
func (d *Decomposer) runSlice(ctx context.Context, x *sptensor.Tensor) (res SliceResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			d.stats.PanicsRecovered++
			res.T, res.NNZ = d.t, x.NNZ()
			err = recoveredError(r)
		}
	}()
	if d.solver != nil {
		d.solver.SetCancel(ctx.Err)
		defer d.solver.SetCancel(nil)
	}
	d.iterNo = 0
	if err := d.injectFault(resilience.StageBegin, 0); err != nil {
		return SliceResult{T: d.t, NNZ: x.NNZ()}, err
	}
	switch d.opt.Algorithm {
	case SpCPStream:
		return d.processSliceSpCP(ctx, x)
	default:
		return d.processSliceExplicit(ctx, x)
	}
}

// ProcessSliceContext advances the factorization by one time slice
// under the given context. Cancellation (including the per-slice
// deadline from the resilience config) is honoured between inner
// iterations, so the slice is abandoned at a consistent state boundary.
// With Options.Resilience set, the guarded path applies, in order: the
// input scan, the in-slice recovery ladder, the post-slice health
// check, and — on failure — rollback to the last-good snapshot plus the
// configured policy. A skipped slice returns an error wrapping
// resilience.ErrSliceSkipped alongside a result with Skipped set; the
// decomposer remains at its pre-slice state and can keep streaming.
func (d *Decomposer) ProcessSliceContext(ctx context.Context, x *sptensor.Tensor) (SliceResult, error) {
	res, err := d.processSliceCtx(ctx, x)
	if err == nil && d.commitHook != nil {
		// The slice is committed: every return path with err == nil has
		// passed the health check (guarded mode) and advanced t.
		// Rollback/skip/cancel paths all carry non-nil errors, so the
		// hook observes only states that will never be retracted.
		d.commitHook(res)
	}
	return res, err
}

// processSliceCtx is ProcessSliceContext without the commit hook.
func (d *Decomposer) processSliceCtx(ctx context.Context, x *sptensor.Tensor) (SliceResult, error) {
	if err := d.checkSlice(x); err != nil {
		return SliceResult{}, err
	}
	return d.guardedRun(ctx, x.NNZ(),
		func() error { return scanSliceInput(x) },
		func(runCtx context.Context) (SliceResult, error) { return d.runSlice(runCtx, x) })
}

// guardedRun wraps one slice-shaped unit of work (in-memory or blocked)
// in the resilience policy: input scan, snapshot, the retry loop with
// per-attempt timeout, health check, and rollback + policy on failure.
// With a nil resilience config it is exactly run(ctx).
func (d *Decomposer) guardedRun(ctx context.Context, nnz int, scan func() error, run func(context.Context) (SliceResult, error)) (SliceResult, error) {
	cfg := d.opt.Resilience
	if cfg == nil {
		return run(ctx)
	}
	if !cfg.DisableInputScan {
		if err := scan(); err != nil {
			d.stats.InputRejects++
			res := SliceResult{T: d.t, NNZ: nnz}
			if cfg.Policy == resilience.SkipSlice {
				d.stats.SlicesSkipped++
				res.Skipped = true
				return res, fmt.Errorf("core: slice t=%d rejected by input scan (%v): %w", d.t, err, resilience.ErrSliceSkipped)
			}
			return res, fmt.Errorf("core: slice t=%d rejected by input scan: %w", d.t, err)
		}
	}
	d.takeSnapshot()
	var res SliceResult
	var err error
	for attempt := 0; ; attempt++ {
		d.sliceAttempt = attempt
		runCtx, cancel := ctx, context.CancelFunc(func() {})
		if cfg.SliceTimeout > 0 {
			runCtx, cancel = context.WithTimeout(ctx, cfg.SliceTimeout)
		}
		res, err = run(runCtx)
		if err == nil {
			if herr := d.healthCheck(&res); herr != nil {
				d.stats.HealthFailures++
				err = herr
			}
		}
		cancel()
		if err == nil {
			res.Retries = attempt
			d.sliceAttempt = 0
			return res, nil
		}
		// Failed attempt: reverse whatever it mutated.
		d.rollback()
		d.stats.Rollbacks++
		if ctx.Err() != nil {
			// The caller's context ended — no policy applies; the
			// decomposer sits at the last-good snapshot, checkpointable
			// and resumable.
			d.stats.Cancellations++
			d.sliceAttempt = 0
			return res, ctx.Err()
		}
		if errors.Is(err, context.DeadlineExceeded) {
			d.stats.Timeouts++
		}
		if cfg.Policy == resilience.Abort {
			d.sliceAttempt = 0
			return res, err
		}
		if attempt < cfg.MaxSliceRetries {
			d.stats.SliceRetries++
			continue
		}
		d.sliceAttempt = 0
		if cfg.Policy == resilience.SkipSlice {
			d.stats.SlicesSkipped++
			res.Retries = attempt
			res.Skipped = true
			return res, fmt.Errorf("core: slice t=%d dropped after %d attempts (%v): %w", d.t, attempt+1, err, resilience.ErrSliceSkipped)
		}
		return res, err
	}
}

// ProcessStreamContext drains a slice source under a context, invoking
// cb (if non-nil) after every slice, including skipped ones. Slices
// skipped under the SkipSlice policy are recorded and the stream
// continues; any other error stops the drain. When the resilience
// config carries a checkpoint manager, the state is checkpointed
// crash-safely every manager interval; checkpoint write failures are
// counted, not fatal — losing a checkpoint must not kill the stream it
// exists to protect.
func (d *Decomposer) ProcessStreamContext(ctx context.Context, src sptensor.SliceSource, cb func(SliceResult)) ([]SliceResult, error) {
	cfg := d.opt.Resilience
	var out []SliceResult
	for {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		x := src.Next()
		if x == nil {
			return out, nil
		}
		res, err := d.ProcessSliceContext(ctx, x)
		if err != nil && !errors.Is(err, resilience.ErrSliceSkipped) {
			return out, err
		}
		out = append(out, res)
		if cb != nil {
			cb(res)
		}
		if err == nil && cfg != nil && cfg.Checkpoint != nil {
			if path, werr := cfg.Checkpoint.MaybeWrite(d.t, d); werr != nil {
				d.stats.CheckpointErrors++
			} else if path != "" {
				d.stats.CheckpointWrites++
			}
		}
	}
}
