package resilience

import (
	"math/rand"
	"time"
)

// BackoffConfig parameterizes the shared retry ladder used wherever
// this system retries an upstream: capped exponential growth with
// symmetric jitter, and an exact override when the upstream supplied a
// Retry-After hint. The zero value is usable.
type BackoffConfig struct {
	// Base is the delay before the first retry (default 100ms).
	Base time.Duration
	// Cap is the ceiling for every delay, including Retry-After
	// overrides (default 15s). An upstream cannot park a retry loop for
	// an hour by sending an absurd hint.
	Cap time.Duration
	// Jitter is the symmetric jitter fraction in [0,1): each ladder
	// delay is scaled by a uniform factor in [1−Jitter, 1+Jitter] so N
	// producers refused at the same instant do not retry in lockstep.
	// Default 0.2; negative disables jitter.
	Jitter float64
	// Rand replaces the uniform [0,1) source (deterministic tests).
	Rand func() float64
}

// withDefaults fills zero fields.
func (c BackoffConfig) withDefaults() BackoffConfig {
	if c.Base <= 0 {
		c.Base = 100 * time.Millisecond
	}
	if c.Cap <= 0 {
		c.Cap = 15 * time.Second
	}
	if c.Jitter == 0 {
		c.Jitter = 0.2
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.Jitter >= 1 {
		c.Jitter = 0.999
	}
	if c.Rand == nil {
		c.Rand = rand.Float64
	}
	if c.Base > c.Cap {
		c.Base = c.Cap
	}
	return c
}

// Backoff computes retry delays. Safe for concurrent use when Rand is
// (the default math/rand source is).
type Backoff struct {
	cfg BackoffConfig
}

// NewBackoff builds a ladder from cfg (zero value ok).
func NewBackoff(cfg BackoffConfig) *Backoff {
	return &Backoff{cfg: cfg.withDefaults()}
}

// Delay returns how long to wait before retry `attempt` (0-based):
// Base·2^attempt with jitter, capped at Cap. When the upstream sent a
// Retry-After hint (retryAfter > 0) it is honored exactly — no jitter,
// no ladder — clamped only by Cap: the upstream knows its own cooldown
// better than our schedule does.
func (b *Backoff) Delay(attempt int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		if retryAfter > b.cfg.Cap {
			return b.cfg.Cap
		}
		return retryAfter
	}
	d := b.cfg.Base
	for i := 0; i < attempt && d < b.cfg.Cap; i++ {
		d *= 2
	}
	if d > b.cfg.Cap {
		d = b.cfg.Cap
	}
	if j := b.cfg.Jitter; j > 0 {
		d = time.Duration(float64(d) * (1 + j*(2*b.cfg.Rand()-1)))
		if d > b.cfg.Cap {
			d = b.cfg.Cap
		}
		if d < 0 {
			d = 0
		}
	}
	return d
}

// Config exposes the resolved (defaulted) configuration.
func (b *Backoff) Config() BackoffConfig { return b.cfg }

// NewBreakers builds n independent breakers sharing one configuration —
// the construction for a gateway fronting n upstream shards, where each
// upstream's health must trip its own circuit without affecting its
// peers.
func NewBreakers(n int, cfg BreakerConfig) []*Breaker {
	bs := make([]*Breaker, n)
	for i := range bs {
		bs[i] = NewBreaker(cfg)
	}
	return bs
}
