package roofline

import (
	"math"
	"testing"
	"testing/quick"
)

// Table I totals: 19IK + 2IK² flops, (16IK + K²) reads + 6IK writes.
func TestBaselineTotalsMatchTableI(t *testing.T) {
	f := func(iRaw, kRaw uint16) bool {
		i := int64(iRaw%10000) + 1
		k := int64(kRaw%256) + 1
		tot := ADMMBaselineTotal(i, k)
		return tot.Flops == 19*i*k+2*i*k*k &&
			tot.Read == 16*i*k+k*k &&
			tot.Write == 6*i*k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFusedTotalsMatchPaper(t *testing.T) {
	i, k := int64(1000), int64(16)
	tot := ADMMFusedTotal(i, k)
	if tot.Flops != 18*i*k+2*i*k*k {
		t.Fatalf("fused flops = %d", tot.Flops)
	}
	if tot.Words() != 15*i*k+k*k {
		t.Fatalf("fused words = %d", tot.Words())
	}
}

// §IV-A: "more than a 30% reduction in data access".
func TestTrafficReductionOver30Percent(t *testing.T) {
	for _, k := range []int64{16, 32, 64, 128} {
		r := TrafficReduction(100000, k)
		if r < 0.30 || r > 0.35 {
			t.Fatalf("rank %d: traffic reduction %.3f outside [0.30, 0.35]", k, r)
		}
	}
}

// The paper observes every baseline ADMM op has arithmetic intensity
// < 0.125 flops/byte at rank 16 except the K²-heavy solve.
func TestArithmeticIntensityMemoryBound(t *testing.T) {
	costs := ADMMBaselineCosts(100000, 16)
	for _, c := range costs {
		if c.Name == "solve" || c.Name == "error" {
			continue // solve includes 2IK² flops; error is 10 flops/4 words
		}
		if ai := c.Intensity(); ai >= 0.125 {
			t.Fatalf("op %s: intensity %.4f not memory-bound", c.Name, ai)
		}
	}
}

func TestOpCostHelpers(t *testing.T) {
	c := OpCost{Name: "x", Flops: 80, Read: 8, Write: 2}
	if c.Words() != 10 {
		t.Fatal("Words wrong")
	}
	if c.Intensity() != 1.0 {
		t.Fatalf("Intensity = %v", c.Intensity())
	}
	if (OpCost{}).Intensity() != 0 {
		t.Fatal("zero-cost intensity should be 0")
	}
	if Total(ADMMBaselineCosts(10, 2)).Flops != ADMMBaselineTotal(10, 2).Flops {
		t.Fatal("Total/ADMMBaselineTotal disagree")
	}
	if c.String() == "" {
		t.Fatal("String empty")
	}
}

func TestMachineBandwidthScaling(t *testing.T) {
	m := PaperTestbed()
	if m.Cores() != 56 {
		t.Fatalf("cores = %d", m.Cores())
	}
	// Bandwidth must be non-decreasing in p.
	prev := 0.0
	for p := 1; p <= 56; p++ {
		bw := m.Bandwidth(p)
		if bw < prev {
			t.Fatalf("bandwidth decreased at p=%d", p)
		}
		prev = bw
	}
	// One core cannot saturate a socket.
	if m.Bandwidth(1) >= m.BandwidthPerSocket {
		t.Fatal("single core saturates socket bandwidth")
	}
	// All sockets engaged at 56 threads.
	if m.Bandwidth(56) != 4*m.BandwidthPerSocket {
		t.Fatalf("full-machine bandwidth = %g", m.Bandwidth(56))
	}
}

func TestMachineTimeRoofline(t *testing.T) {
	m := PaperTestbed()
	// Memory-bound kernel: time set by bytes/bandwidth.
	bytes := 1e9
	want := bytes / m.Bandwidth(56)
	if got := m.Time(1, bytes, 56); math.Abs(got-want) > 1e-12 {
		t.Fatalf("memory-bound time %g want %g", got, want)
	}
	// Compute-bound kernel: time set by flops/peak.
	flops := 1e13
	want = flops / (56 * m.PeakFlopsPerCore)
	if got := m.Time(flops, 8, 56); math.Abs(got-want) > 1e-12 {
		t.Fatalf("compute-bound time %g want %g", got, want)
	}
	// Time decreases (weakly) with threads.
	if m.Time(1e10, 1e9, 1) < m.Time(1e10, 1e9, 56) {
		t.Fatal("more threads made the kernel slower")
	}
	// Thread counts beyond the machine are clamped.
	if m.Time(1e10, 1e9, 1000) != m.Time(1e10, 1e9, 56) {
		t.Fatal("thread clamp missing")
	}
}
