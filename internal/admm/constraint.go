// Package admm implements the alternating direction method of
// multipliers solver used by constrained CP-stream for the factor-matrix
// update A ← argmin ½‖Ψ − AΦ‖ s.t. A ∈ C, in two variants:
//
//   - Baseline (paper Alg. 2): each ADMM operation (init, solve,
//     project, update, error) is a separate fine-grained parallel pass
//     over the I×K matrices, exactly like the original OpenMP code.
//     Every pass re-streams the matrices from memory, which is why the
//     kernel is bandwidth-bound (paper Table I).
//   - BlockedFused (paper Alg. 3): matrices are divided into row blocks
//     processed one-per-worker; update, error, init and the next solve's
//     right-hand side are fused into a single element-wise loop holding
//     intermediates in registers, and the column norms needed by the
//     projection are accumulated per worker and all-reduced. Memory
//     traffic drops from 22·I·K+K² to 15·I·K+K² words per iteration.
package admm

import (
	"math"

	"spstream/internal/dense"
)

// Constraint is a projection onto the constraint set C applied row-block
// by row-block. colNorms2, when the constraint requests it, holds the
// squared column 2-norms of the full pre-projection matrix (the CG
// all-reduce of Alg. 3); rho is the current ADMM penalty, needed by
// proximal (rather than pure projection) operators such as ℓ₁.
type Constraint interface {
	// Name identifies the constraint in logs and errors.
	Name() string
	// NeedsColNorms reports whether Project consumes colNorms2.
	NeedsColNorms() bool
	// Project applies the projection/proximal operator to block in
	// place.
	Project(block *dense.Matrix, colNorms2 []float64, rho float64)
}

// NonNeg projects onto the non-negative orthant: A[i][j] ← max(0, ·).
// This is the constraint the paper benchmarks ("e.g., non-negativity").
type NonNeg struct{}

// Name implements Constraint.
func (NonNeg) Name() string { return "nonneg" }

// NeedsColNorms implements Constraint.
func (NonNeg) NeedsColNorms() bool { return false }

// Project implements Constraint.
func (NonNeg) Project(block *dense.Matrix, _ []float64, _ float64) {
	for i := 0; i < block.Rows; i++ {
		row := block.Row(i)
		for j, v := range row {
			if v < 0 {
				row[j] = 0
			}
		}
	}
}

// L1 is the soft-thresholding proximal operator for λ‖A‖₁ (sparsity
// constraint, the paper's other example). Within ADMM the threshold is
// λ/ρ.
type L1 struct{ Lambda float64 }

// Name implements Constraint.
func (L1) Name() string { return "l1" }

// NeedsColNorms implements Constraint.
func (L1) NeedsColNorms() bool { return false }

// Project implements Constraint.
func (c L1) Project(block *dense.Matrix, _ []float64, rho float64) {
	thr := c.Lambda / rho
	for i := 0; i < block.Rows; i++ {
		row := block.Row(i)
		for j, v := range row {
			switch {
			case v > thr:
				row[j] = v - thr
			case v < -thr:
				row[j] = v + thr
			default:
				row[j] = 0
			}
		}
	}
}

// NonNegMaxColNorm combines non-negativity with a column-norm cap
// ‖aₖ‖₂ ≤ R (sequential projection onto the two sets). It exercises the
// column-norm all-reduce path of Alg. 3 — the one ADMM operation that is
// not row-wise independent (paper §IV-A).
type NonNegMaxColNorm struct{ R float64 }

// Name implements Constraint.
func (NonNegMaxColNorm) Name() string { return "nonneg-maxcolnorm" }

// NeedsColNorms implements Constraint.
func (NonNegMaxColNorm) NeedsColNorms() bool { return true }

// Project implements Constraint.
func (c NonNegMaxColNorm) Project(block *dense.Matrix, colNorms2 []float64, _ float64) {
	for i := 0; i < block.Rows; i++ {
		row := block.Row(i)
		for j, v := range row {
			if v < 0 {
				row[j] = 0
				continue
			}
			if n2 := colNorms2[j]; n2 > c.R*c.R {
				row[j] = v * c.R / math.Sqrt(n2)
			}
		}
	}
}

// Unconstrained is the identity projection; ADMM with it converges to
// the plain least-squares solution and exists for testing.
type Unconstrained struct{}

// Name implements Constraint.
func (Unconstrained) Name() string { return "unconstrained" }

// NeedsColNorms implements Constraint.
func (Unconstrained) NeedsColNorms() bool { return false }

// Project implements Constraint.
func (Unconstrained) Project(*dense.Matrix, []float64, float64) {}
