package resilience

import (
	"testing"
	"time"
)

// fixedRand returns a Rand hook that always yields u.
func fixedRand(u float64) func() float64 {
	return func() float64 { return u }
}

// TestBackoffLadder pins the deterministic ladder: with jitter disabled
// (Rand = 0.5 → scale 1.0 under symmetric jitter), delays double from
// Base and saturate at Cap.
func TestBackoffLadder(t *testing.T) {
	b := NewBackoff(BackoffConfig{
		Base:   100 * time.Millisecond,
		Cap:    2 * time.Second,
		Jitter: 0.2,
		Rand:   fixedRand(0.5), // 1 + 0.2·(2·0.5−1) = exactly 1.0
	})
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		2 * time.Second, // capped
		2 * time.Second, // stays capped
	}
	for attempt, w := range want {
		if got := b.Delay(attempt, 0); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
	// Huge attempt ordinals must not overflow past the cap.
	if got := b.Delay(500, 0); got != 2*time.Second {
		t.Errorf("Delay(500) = %v, want cap", got)
	}
}

// TestBackoffJitterBounds sweeps the Rand extremes: every delay stays
// within [d·(1−J), d·(1+J)] and never exceeds Cap.
func TestBackoffJitterBounds(t *testing.T) {
	const jitter = 0.25
	base, ceiling := 100*time.Millisecond, 10*time.Second
	for _, u := range []float64{0, 0.25, 0.5, 0.75, 0.999999} {
		b := NewBackoff(BackoffConfig{Base: base, Cap: ceiling, Jitter: jitter, Rand: fixedRand(u)})
		for attempt := 0; attempt < 8; attempt++ {
			ideal := base << attempt
			if ideal > ceiling {
				ideal = ceiling
			}
			lo := time.Duration(float64(ideal) * (1 - jitter))
			hi := time.Duration(float64(ideal) * (1 + jitter))
			if hi > ceiling {
				hi = ceiling
			}
			got := b.Delay(attempt, 0)
			if got < lo || got > hi {
				t.Errorf("u=%v Delay(%d) = %v, want in [%v, %v]", u, attempt, got, lo, hi)
			}
		}
	}
}

// TestBackoffRetryAfterOverride: an upstream Retry-After hint replaces
// the ladder exactly — no jitter, any attempt ordinal — clamped only by
// Cap.
func TestBackoffRetryAfterOverride(t *testing.T) {
	b := NewBackoff(BackoffConfig{
		Base:   100 * time.Millisecond,
		Cap:    5 * time.Second,
		Jitter: 0.5,
		Rand:   fixedRand(0.999), // would inflate ladder delays, must not touch overrides
	})
	for attempt := 0; attempt < 6; attempt++ {
		if got := b.Delay(attempt, 3*time.Second); got != 3*time.Second {
			t.Errorf("Delay(%d, 3s) = %v, want exactly 3s", attempt, got)
		}
	}
	// An absurd hint is clamped to Cap, not trusted blindly.
	if got := b.Delay(0, time.Hour); got != 5*time.Second {
		t.Errorf("Delay(0, 1h) = %v, want Cap", got)
	}
	// Sub-second hints are honored as-is (the parse layer already
	// floors rendered headers at 1s; a direct sub-second hint is fine).
	if got := b.Delay(0, 250*time.Millisecond); got != 250*time.Millisecond {
		t.Errorf("Delay(0, 250ms) = %v, want 250ms", got)
	}
}

func TestBackoffDefaults(t *testing.T) {
	b := NewBackoff(BackoffConfig{})
	cfg := b.Config()
	if cfg.Base != 100*time.Millisecond || cfg.Cap != 15*time.Second || cfg.Jitter != 0.2 || cfg.Rand == nil {
		t.Fatalf("defaults = %+v", cfg)
	}
	// Base above Cap is pulled down so the ladder is monotone.
	if got := NewBackoff(BackoffConfig{Base: time.Minute, Cap: time.Second, Jitter: -1}).Delay(0, 0); got != time.Second {
		t.Errorf("Base>Cap Delay(0) = %v, want 1s", got)
	}
}

func TestNewBreakersIndependent(t *testing.T) {
	bs := NewBreakers(3, BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour})
	if len(bs) != 3 {
		t.Fatalf("len = %d", len(bs))
	}
	bs[1].OnFailure()
	bs[1].OnFailure()
	if bs[1].State() != BreakerOpen {
		t.Fatal("breaker 1 should be open")
	}
	for _, i := range []int{0, 2} {
		if bs[i].State() != BreakerClosed {
			t.Fatalf("breaker %d tripped by its neighbour", i)
		}
		if !bs[i].Allow() {
			t.Fatalf("breaker %d refusing while closed", i)
		}
	}
}
