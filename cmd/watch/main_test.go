package main

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"spstream"
	"spstream/internal/synth"
)

// testConfig is the baseline command configuration the tests tweak.
func testConfig(dims []int, window int) config {
	return config{
		dims:         dims,
		window:       window,
		rank:         4,
		topN:         2,
		mu:           0.95,
		alg:          spstream.SpCPStream,
		queueCap:     8,
		policy:       spstream.ShedBlock,
		drainTimeout: 10 * time.Second,
	}
}

func TestParseDims(t *testing.T) {
	dims, err := parseDims("10, 20,30")
	if err != nil || len(dims) != 3 || dims[1] != 20 {
		t.Fatalf("dims=%v err=%v", dims, err)
	}
	for _, bad := range []string{"", "10", "10,x", "10,-2"} {
		if _, err := parseDims(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestParseEvent(t *testing.T) {
	dims := []int{5, 6}
	ev, err := parseEvent("2 3 1.5", dims)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Coord[0] != 1 || ev.Coord[1] != 2 || ev.Value != 1.5 {
		t.Fatalf("event = %+v", ev)
	}
	// Default value.
	ev, err = parseEvent("1 1", dims)
	if err != nil || ev.Value != 1 {
		t.Fatalf("default value wrong: %+v %v", ev, err)
	}
	for _, bad := range []string{
		"1", "0 1", "6 1", "1 1 x", "1 1 1 1",
		"99999999999999999999 1",          // coordinate overflow
		"1 1 NaN", "1 1 +Inf", "1 1 -Inf", // non-finite values
	} {
		if _, err := parseEvent(bad, dims); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

// FuzzParseEvent: the event-line parser is the trust boundary for
// arbitrary feed input — it must never panic, and anything it accepts
// must be a well-formed in-range event with a finite value.
func FuzzParseEvent(f *testing.F) {
	f.Add("1 2 3.5")
	f.Add("5 6")
	f.Add("0 0 0")
	f.Add("99999999999999999999 1")
	f.Add("1 1 NaN")
	f.Add("1 1 Inf")
	f.Add("-1 -1 -1e309")
	f.Add("\t 2 3 \x00")
	dims := []int{5, 6}
	f.Fuzz(func(t *testing.T, line string) {
		ev, err := parseEvent(line, dims)
		if err != nil {
			return
		}
		if len(ev.Coord) != len(dims) {
			t.Fatalf("accepted event with %d coords", len(ev.Coord))
		}
		for m, c := range ev.Coord {
			if c < 0 || int(c) >= dims[m] {
				t.Fatalf("accepted out-of-range coordinate %d for mode %d in %q", c, m, line)
			}
		}
		if math.IsNaN(ev.Value) || math.IsInf(ev.Value, 0) {
			t.Fatalf("accepted non-finite value %v in %q", ev.Value, line)
		}
	})
}

func TestParseAlg(t *testing.T) {
	if a, err := parseAlg("spcp"); err != nil || a != spstream.SpCPStream {
		t.Fatal("spcp parse wrong")
	}
	if _, err := parseAlg("nope"); err == nil {
		t.Fatal("bad algorithm accepted")
	}
}

// syncBuffer lets tests poll output while run() is still writing.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// eventFeed synthesizes a diagonal-structured event feed.
func eventFeed(events int, seed uint64) *bytes.Buffer {
	r := synth.NewRNG(seed)
	var in bytes.Buffer
	for e := 0; e < events; e++ {
		i := r.Intn(10) + 1
		j := i // diagonal-ish structure
		if r.Float64() < 0.2 {
			j = r.Intn(10) + 1
		}
		fmt.Fprintf(&in, "%d %d %g\n", i, j, 1+0.1*r.NormFloat64())
	}
	return &in
}

func TestRunEndToEnd(t *testing.T) {
	in := eventFeed(2500, 4)
	in.WriteString("# a comment\n\n")
	var out bytes.Buffer
	if err := run(context.Background(), in, &out, testConfig([]int{10, 10}, 1000)); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Count(s, "window ") != 3 { // 2500 events → 2 full + 1 flush
		t.Fatalf("expected 3 windows:\n%s", s)
	}
	if !strings.Contains(s, "component") || !strings.Contains(s, "fit") {
		t.Fatalf("summary missing fields:\n%s", s)
	}
}

// TestRunRejectsGarbageLines: malformed lines in a live feed are
// counted and skipped, not fatal — and reported by -stats.
func TestRunRejectsGarbageLines(t *testing.T) {
	in := eventFeed(1000, 5)
	in.WriteString("99 1 garbage\n1 1 NaN\nnot numbers at all\n")
	var out bytes.Buffer
	cfg := testConfig([]int{10, 10}, 500)
	cfg.stats = true
	if err := run(context.Background(), in, &out, cfg); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "rejected=3") {
		t.Fatalf("stats line missing rejected=3:\n%s", s)
	}
	if !strings.Contains(s, "produced=") || !strings.Contains(s, "processed=") {
		t.Fatalf("stats line missing counters:\n%s", s)
	}
}

// TestRunGracefulInterrupt: cancelling the context mid-feed (the SIGINT
// path) drains the backlog and writes a restorable checkpoint.
func TestRunGracefulInterrupt(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	// An endless feed: the run can only end via the context.
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	feedErr := make(chan error, 1)
	go func() {
		defer pw.Close()
		r := synth.NewRNG(7)
		for {
			i, j := r.Intn(10)+1, r.Intn(10)+1
			if _, err := fmt.Fprintf(pw, "%d %d 1\n", i, j); err != nil {
				feedErr <- nil // reader gone: expected at shutdown
				return
			}
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	var out syncBuffer
	cfg := testConfig([]int{10, 10}, 200)
	cfg.checkpointDir = dir
	cfg.stats = true
	done := make(chan error, 1)
	go func() { done <- run(ctx, pr, &out, cfg) }()

	// Let a few windows through, then interrupt.
	deadline := time.After(10 * time.Second)
	for {
		time.Sleep(10 * time.Millisecond)
		if strings.Count(out.String(), "window ") >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("no windows processed:\n%s", out.String())
		default:
		}
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("run after interrupt: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "interrupted: backlog drained") {
		t.Fatalf("missing drain message:\n%s", s)
	}
	if !strings.Contains(s, "checkpoint: ") {
		t.Fatalf("missing checkpoint message:\n%s", s)
	}
	// The checkpoint must restore into a fresh decomposer.
	dec, err := spstream.New([]int{10, 10}, spstream.Options{Rank: 4, Algorithm: spstream.SpCPStream, Mu: 0.95, TrackFit: true, Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spstream.RestoreNewestCheckpoint(dir, dec); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if dec.T() == 0 {
		t.Fatal("restored checkpoint has no slices")
	}
}

// TestRunWindowTimeout: a sparse feed emits a partial window after the
// wall-clock timeout instead of stalling until EOF.
func TestRunWindowTimeout(t *testing.T) {
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuffer
	cfg := testConfig([]int{10, 10}, 1_000_000) // count alone would never trigger
	cfg.windowTimeout = 30 * time.Millisecond
	done := make(chan error, 1)
	go func() { done <- run(ctx, pr, &out, cfg) }()

	for e := 0; e < 50; e++ {
		fmt.Fprintf(pw, "%d %d 1\n", e%10+1, e%10+1)
	}
	deadline := time.After(10 * time.Second)
	for strings.Count(out.String(), "window ") < 1 {
		time.Sleep(10 * time.Millisecond)
		select {
		case <-deadline:
			t.Fatalf("timeout window never emitted:\n%s", out.String())
		default:
		}
	}
	pw.Close()
	if err := <-done; err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), strings.NewReader(""), &out, testConfig([]int{5, 5}, 100)); err == nil {
		t.Fatal("empty input accepted")
	}
	// A lone malformed line is rejected, leaving no windows.
	if err := run(context.Background(), strings.NewReader("99 1\n"), &out, testConfig([]int{5, 5}, 100)); err == nil {
		t.Fatal("feed with no valid events accepted")
	}
}
