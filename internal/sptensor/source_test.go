package sptensor

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestChannelSource(t *testing.T) {
	ch := make(chan *Tensor, 2)
	src := NewChannelSource([]int{3, 3}, ch)
	if len(src.Dims()) != 2 {
		t.Fatal("dims wrong")
	}
	a := New(3, 3)
	a.Append([]int32{0, 0}, 1)
	ch <- a
	close(ch)
	if got := src.Next(); got == nil || got.NNZ() != 1 {
		t.Fatal("first slice wrong")
	}
	if src.Next() != nil {
		t.Fatal("closed channel should yield nil")
	}
}

func TestWindowAccumulator(t *testing.T) {
	w := NewWindowAccumulator([]int{4, 4}, 3)
	if out := w.Add(Event{Coord: []int32{0, 0}, Value: 1}); out != nil {
		t.Fatal("window emitted early")
	}
	if out := w.Add(Event{Coord: []int32{0, 0}, Value: 2}); out != nil {
		t.Fatal("window emitted early")
	}
	out := w.Add(Event{Coord: []int32{1, 1}, Value: 5})
	if out == nil {
		t.Fatal("full window did not emit")
	}
	// Duplicates coalesced: (0,0)=3, (1,1)=5.
	if out.NNZ() != 2 {
		t.Fatalf("coalesced nnz = %d", out.NNZ())
	}
	total := 0.0
	for _, v := range out.Vals {
		total += v
	}
	if total != 8 {
		t.Fatalf("mass = %v", total)
	}
	// Next window starts clean.
	if w.Flush() != nil {
		t.Fatal("fresh window should flush to nil")
	}
	w.Add(Event{Coord: []int32{2, 2}, Value: 7})
	fl := w.Flush()
	if fl == nil || fl.NNZ() != 1 {
		t.Fatal("flush of partial window wrong")
	}
	if w.Flush() != nil {
		t.Fatal("double flush should be nil")
	}
}

func TestWindowAccumulatorMinWindow(t *testing.T) {
	w := NewWindowAccumulator([]int{2, 2}, 0) // clamps to 1
	if out := w.Add(Event{Coord: []int32{0, 1}, Value: 1}); out == nil {
		t.Fatal("window of 1 should emit every event")
	}
}

// End-to-end: a producer goroutine feeds windows through a channel into
// a decomposer-style consumer loop.
func TestChannelSourceEndToEnd(t *testing.T) {
	ch := make(chan *Tensor)
	go func() {
		w := NewWindowAccumulator([]int{5, 5}, 4)
		for i := 0; i < 10; i++ {
			if out := w.Add(Event{Coord: []int32{int32(i % 5), int32((i * 2) % 5)}, Value: 1}); out != nil {
				ch <- out
			}
		}
		if out := w.Flush(); out != nil {
			ch <- out
		}
		close(ch)
	}()
	src := NewChannelSource([]int{5, 5}, ch)
	slices, events := 0, 0
	for {
		x := src.Next()
		if x == nil {
			break
		}
		slices++
		for _, v := range x.Vals {
			events += int(v)
		}
	}
	if slices != 3 { // 4+4+2 events
		t.Fatalf("slices = %d", slices)
	}
	if events != 10 {
		t.Fatalf("events = %d", events)
	}
}

func TestWindowAccumulatorRejectsMalformedEvents(t *testing.T) {
	w := NewWindowAccumulator([]int{4, 4}, 2)
	bad := []Event{
		{Coord: []int32{0}, Value: 1},     // wrong arity
		{Coord: []int32{4, 0}, Value: 1},  // out of range
		{Coord: []int32{-1, 0}, Value: 1}, // negative
		{Coord: []int32{0, 0}, Value: math.NaN()},
		{Coord: []int32{0, 0}, Value: math.Inf(1)},
	}
	for i, e := range bad {
		if out := w.Add(e); out != nil {
			t.Fatalf("bad event %d emitted a slice", i)
		}
	}
	if w.Rejected() != len(bad) {
		t.Fatalf("Rejected = %d, want %d", w.Rejected(), len(bad))
	}
	// Bad events do not advance the window: two good events still fill it.
	if out := w.Add(Event{Coord: []int32{1, 1}, Value: 2}); out != nil {
		t.Fatal("window emitted early")
	}
	out := w.Add(Event{Coord: []int32{2, 2}, Value: 3})
	if out == nil || out.NNZ() != 2 {
		t.Fatalf("good events lost: %v", out)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestChannelSourceRejectsInvalidSlices(t *testing.T) {
	ch := make(chan *Tensor, 4)
	src := NewChannelSource([]int{3, 3}, ch)

	wrongShape := New(3, 4)
	corrupt := New(3, 3)
	corrupt.Append([]int32{0, 0}, 1)
	corrupt.Inds[0][0] = 7 // out of range
	good := New(3, 3)
	good.Append([]int32{1, 1}, 2)

	ch <- wrongShape
	ch <- nil
	ch <- corrupt
	ch <- good
	close(ch)

	got := src.Next()
	if got == nil || got.NNZ() != 1 || got.Vals[0] != 2 {
		t.Fatalf("Next did not skip to the valid slice: %v", got)
	}
	if src.Rejected() != 3 {
		t.Fatalf("Rejected = %d, want 3", src.Rejected())
	}
	if src.Next() != nil {
		t.Fatal("closed channel should yield nil")
	}
}

// fakeClock is a manually advanced clock for the timeout trigger.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestWindowAccumulatorCountTrigger(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowAccumulator([]int{4, 4}, 2)
	w.WindowTimeout = time.Hour // far away: the count must trigger first
	w.SetClock(clk.now)
	if out := w.Add(Event{Coord: []int32{0, 0}, Value: 1}); out != nil {
		t.Fatal("emitted before the window filled")
	}
	out := w.Add(Event{Coord: []int32{1, 1}, Value: 1})
	if out == nil || out.NNZ() != 2 {
		t.Fatalf("count trigger failed: %v", out)
	}
}

func TestWindowAccumulatorTimeoutTrigger(t *testing.T) {
	clk := newFakeClock()
	w := NewWindowAccumulator([]int{4, 4}, 1000) // count will never trigger
	w.WindowTimeout = time.Second
	w.SetClock(clk.now)
	if out := w.Add(Event{Coord: []int32{0, 0}, Value: 1}); out != nil {
		t.Fatal("emitted immediately")
	}
	// An event arriving after the deadline closes the window with it.
	clk.advance(2 * time.Second)
	out := w.Add(Event{Coord: []int32{1, 1}, Value: 1})
	if out == nil || out.NNZ() != 2 {
		t.Fatalf("timeout trigger on Add failed: %v", out)
	}
	// The window restarted: a fresh event does not inherit the old age.
	if out := w.Add(Event{Coord: []int32{2, 2}, Value: 1}); out != nil {
		t.Fatal("fresh window inherited the expired deadline")
	}
	// Poll closes an aged window with no new events (sparse feed).
	if out := w.Poll(); out != nil {
		t.Fatal("Poll emitted before the deadline")
	}
	clk.advance(2 * time.Second)
	out = w.Poll()
	if out == nil || out.NNZ() != 1 {
		t.Fatalf("Poll after the deadline failed: %v", out)
	}
	// An empty window never times out.
	clk.advance(time.Hour)
	if out := w.Poll(); out != nil {
		t.Fatal("empty window emitted")
	}
}

func TestWindowAccumulatorSetWindowEvents(t *testing.T) {
	w := NewWindowAccumulator([]int{4, 4}, 2)
	w.Add(Event{Coord: []int32{0, 0}, Value: 1})
	w.SetWindowEvents(4) // widen mid-window (the degradation ladder's move)
	if out := w.Add(Event{Coord: []int32{1, 1}, Value: 1}); out != nil {
		t.Fatal("widened window emitted at the old threshold")
	}
	w.Add(Event{Coord: []int32{2, 2}, Value: 1})
	if out := w.Add(Event{Coord: []int32{3, 3}, Value: 1}); out == nil || out.NNZ() != 4 {
		t.Fatalf("widened window wrong: %v", out)
	}
	w.SetWindowEvents(0) // clamps to 1
	if out := w.Add(Event{Coord: []int32{0, 1}, Value: 1}); out == nil || out.NNZ() != 1 {
		t.Fatalf("narrowed window wrong: %v", out)
	}
}

// TestChannelSourceConcurrentProducers is the race test for the live
// ingestion fan-in: several producer goroutines feed the channel
// (valid and invalid slices) while another goroutine polls Rejected —
// the monitoring pattern a stats reporter uses. Run under -race in CI.
func TestChannelSourceConcurrentProducers(t *testing.T) {
	const producers = 4
	const perProducer = 50
	ch := make(chan *Tensor, 16)
	src := NewChannelSource([]int{3, 3}, ch)

	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if i%5 == 4 {
					ch <- New(3, 4) // wrong shape: must be rejected
					continue
				}
				x := New(3, 3)
				x.Append([]int32{int32(pr % 3), int32(i % 3)}, 1)
				ch <- x
			}
		}(pr)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()

	stop := make(chan struct{})
	var polls atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = src.Rejected() // concurrent poll under -race
				polls.Add(1)
			}
		}
	}()

	got := 0
	for src.Next() != nil {
		got++
	}
	close(stop)
	wantRejected := producers * perProducer / 5
	if got != producers*perProducer-wantRejected {
		t.Fatalf("consumed %d slices, want %d", got, producers*perProducer-wantRejected)
	}
	if src.Rejected() != wantRejected {
		t.Fatalf("Rejected = %d, want %d", src.Rejected(), wantRejected)
	}
	if polls.Load() == 0 {
		t.Fatal("stats poller never ran")
	}
}
