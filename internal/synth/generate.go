package synth

import (
	"fmt"
	"math"

	"spstream/internal/dense"
	"spstream/internal/sptensor"
)

// ValueModel selects how nonzero values are generated.
type ValueModel int

const (
	// ValueCounts draws positive log-normal "count" values with no
	// planted structure — the fastest generator, used by kernel
	// micro-benchmarks where only sparsity structure matters.
	ValueCounts ValueModel = iota
	// ValuePlanted evaluates a hidden low-rank CP model (plus Gaussian
	// noise) at each sampled coordinate, so a decomposition of the
	// stream has real structure to recover and fit improves over
	// iterations.
	ValuePlanted
)

// Config describes a synthetic streaming tensor.
type Config struct {
	Name        string
	Dists       []IndexDist // one per non-streaming mode, in mode order
	T           int         // number of time slices
	NNZPerSlice int         // nonzeros drawn per slice (before coalescing)
	Values      ValueModel
	PlantedRank int     // rank of the hidden model (ValuePlanted)
	NoiseStd    float64 // additive noise std dev (ValuePlanted)
	Seed        uint64
}

// Dims returns the slice mode lengths implied by the distributions.
func (c Config) Dims() []int {
	dims := make([]int, len(c.Dists))
	for m, d := range c.Dists {
		dims[m] = d.Dim()
	}
	return dims
}

func (c Config) validate() error {
	if len(c.Dists) < 2 {
		return fmt.Errorf("synth: need at least 2 non-streaming modes, got %d", len(c.Dists))
	}
	if c.T < 1 {
		return fmt.Errorf("synth: need at least 1 time slice")
	}
	if c.NNZPerSlice < 1 {
		return fmt.Errorf("synth: need at least 1 nonzero per slice")
	}
	if c.Values == ValuePlanted && c.PlantedRank < 1 {
		return fmt.Errorf("synth: planted values need PlantedRank ≥ 1")
	}
	return nil
}

// Generate materializes the full stream described by cfg. Slices are
// generated from per-slice RNGs derived from the seed, so the result is
// identical regardless of evaluation order.
func Generate(cfg Config) (*sptensor.Stream, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	planted, sliceRNGs := deriveGenerators(cfg)
	dims := cfg.Dims()
	slices := make([]*sptensor.Tensor, cfg.T)
	for t := 0; t < cfg.T; t++ {
		slices[t] = generateSlice(cfg, planted, sliceRNGs[t], t, dims)
	}
	return &sptensor.Stream{Dims: dims, Slices: slices}, nil
}

// GenerateSlice materializes only time step t of the stream described
// by cfg. Because every slice has its own derived RNG, the result is
// bit-identical to Generate(cfg).Slices[t] at a fraction of the cost —
// useful when a workload profile needs one paper-scale slice.
func GenerateSlice(cfg Config, t int) (*sptensor.Tensor, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if t < 0 || t >= cfg.T {
		return nil, fmt.Errorf("synth: slice %d out of range [0,%d)", t, cfg.T)
	}
	planted, sliceRNGs := deriveGenerators(cfg)
	return generateSlice(cfg, planted, sliceRNGs[t], t, cfg.Dims()), nil
}

// deriveGenerators builds the planted model (when configured) and the
// per-slice RNGs in the canonical derivation order.
func deriveGenerators(cfg Config) (*plantedModel, []*RNG) {
	root := NewRNG(cfg.Seed)
	var planted *plantedModel
	if cfg.Values == ValuePlanted {
		planted = newPlantedModel(root.Split(), cfg)
	}
	sliceRNGs := make([]*RNG, cfg.T)
	for t := range sliceRNGs {
		sliceRNGs[t] = root.Split()
	}
	return planted, sliceRNGs
}

func generateSlice(cfg Config, planted *plantedModel, r *RNG, t int, dims []int) *sptensor.Tensor {
	sl := sptensor.New(dims...)
	sl.Reserve(cfg.NNZPerSlice)
	coord := make([]int32, len(dims))
	for e := 0; e < cfg.NNZPerSlice; e++ {
		for m, d := range cfg.Dists {
			coord[m] = d.Sample(r, t)
		}
		var val float64
		if planted != nil {
			val = planted.value(coord, t) + cfg.NoiseStd*r.NormFloat64()
		} else {
			val = r.LogNormal(0, 0.5)
		}
		sl.Append(coord, val)
	}
	sl.Coalesce()
	return sl
}

// plantedModel holds the hidden ground-truth CP factors.
type plantedModel struct {
	factors []*dense.Matrix // one In×R matrix per mode
	s       [][]float64     // s[t]: length-R temporal weights
}

func newPlantedModel(r *RNG, cfg Config) *plantedModel {
	rank := cfg.PlantedRank
	m := &plantedModel{}
	scale := 1 / math.Sqrt(float64(rank))
	for _, d := range cfg.Dists {
		f := dense.NewMatrix(d.Dim(), rank)
		for i := range f.Data {
			f.Data[i] = math.Abs(r.NormFloat64()) * scale
		}
		m.factors = append(m.factors, f)
	}
	// Temporal weights drift smoothly: sₜ = 0.9·sₜ₋₁ + 0.1·|N(0,1)|,
	// so consecutive slices share structure the way real streams do.
	m.s = make([][]float64, cfg.T)
	prev := make([]float64, rank)
	for k := range prev {
		prev[k] = math.Abs(r.NormFloat64()) + 0.5
	}
	for t := 0; t < cfg.T; t++ {
		cur := make([]float64, rank)
		for k := range cur {
			cur[k] = 0.9*prev[k] + 0.1*(math.Abs(r.NormFloat64())+0.5)
		}
		m.s[t] = cur
		prev = cur
	}
	return m
}

// value evaluates the planted model at a coordinate for time step t.
func (m *plantedModel) value(coord []int32, t int) float64 {
	rank := len(m.s[t])
	sum := 0.0
	for k := 0; k < rank; k++ {
		p := m.s[t][k]
		for mm, f := range m.factors {
			p *= f.At(int(coord[mm]), k)
		}
		sum += p
	}
	return sum
}
