package core

import (
	"testing"

	"spstream/internal/admm"
	"spstream/internal/synth"
)

func TestSetMaxItersFloorAndEffect(t *testing.T) {
	s, err := synth.Generate(synth.Config{
		Name:        "tune",
		Dists:       []synth.IndexDist{synth.Uniform{N: 20}, synth.Uniform{N: 25}},
		T:           4,
		NNZPerSlice: 300,
		Values:      synth.ValuePlanted,
		PlantedRank: 3,
		NoiseStd:    0.01,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDecomposer(s.Dims, Options{Rank: 4, Algorithm: Optimized, Seed: 1, Tol: 1e-12, MaxIters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxIters() != 10 {
		t.Fatalf("MaxIters = %d, want 10", d.MaxIters())
	}
	d.SetMaxIters(0)
	if d.MaxIters() != 1 {
		t.Fatalf("SetMaxIters floor: got %d, want 1", d.MaxIters())
	}
	res, err := d.ProcessSlice(s.Slices[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters != 1 {
		t.Fatalf("degraded slice ran %d iterations, want 1", res.Iters)
	}
	d.SetMaxIters(10)
	res, err = d.ProcessSlice(s.Slices[1])
	if err != nil {
		t.Fatal(err)
	}
	if res.Iters < 2 {
		t.Fatalf("restored slice ran %d iterations, want ≥ 2", res.Iters)
	}
}

func TestSetADMMMaxIters(t *testing.T) {
	d, err := NewDecomposer([]int{10, 10}, Options{Rank: 3, Algorithm: Optimized, Constraint: admm.NonNeg{}, ADMMMaxIters: 40})
	if err != nil {
		t.Fatal(err)
	}
	if d.ADMMMaxIters() != 40 {
		t.Fatalf("ADMMMaxIters = %d, want 40", d.ADMMMaxIters())
	}
	d.SetADMMMaxIters(-3)
	if d.ADMMMaxIters() != 1 {
		t.Fatalf("SetADMMMaxIters floor: got %d, want 1", d.ADMMMaxIters())
	}
}

// TestSetAlgorithmMidStream switches Optimized → spCP-stream halfway
// through a stream and checks the model matches an all-Optimized run:
// the degradation ladder's algorithm rung must not change the model,
// only its cost.
func TestSetAlgorithmMidStream(t *testing.T) {
	s, err := synth.Generate(synth.Config{
		Name:        "tune",
		Dists:       []synth.IndexDist{synth.Uniform{N: 20}, synth.Uniform{N: 25}},
		T:           8,
		NNZPerSlice: 300,
		Values:      synth.ValuePlanted,
		PlantedRank: 3,
		NoiseStd:    0.01,
		Seed:        12,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Rank: 4, Algorithm: Optimized, Seed: 5, Workers: 2}
	ref, err := NewDecomposer(s.Dims, opt)
	if err != nil {
		t.Fatal(err)
	}
	switching, err := NewDecomposer(s.Dims, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range s.Slices {
		if _, err := ref.ProcessSlice(x); err != nil {
			t.Fatal(err)
		}
		if i == len(s.Slices)/2 {
			if err := switching.SetAlgorithm(SpCPStream); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := switching.ProcessSlice(x); err != nil {
			t.Fatal(err)
		}
	}
	if got := switching.Algorithm(); got != SpCPStream {
		t.Fatalf("Algorithm() = %v after switch", got)
	}
	if d := maxFactorDiff(ref, switching); d > 1e-4 {
		t.Fatalf("mid-stream Optimized→spCP switch drifted from all-Optimized run: max factor diff %g", d)
	}
	// And back down the ladder: spCP → Optimized, again without drift.
	if err := switching.SetAlgorithm(Optimized); err != nil {
		t.Fatal(err)
	}
	extra, err := synth.GenerateSlice(synth.Config{
		Name:        "tune",
		Dists:       []synth.IndexDist{synth.Uniform{N: 20}, synth.Uniform{N: 25}},
		T:           9,
		NNZPerSlice: 300,
		Values:      synth.ValuePlanted,
		PlantedRank: 3,
		NoiseStd:    0.01,
		Seed:        12,
	}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.ProcessSlice(extra); err != nil {
		t.Fatal(err)
	}
	if _, err := switching.ProcessSlice(extra.Clone()); err != nil {
		t.Fatal(err)
	}
	if d := maxFactorDiff(ref, switching); d > 1e-4 {
		t.Fatalf("switch back to Optimized drifted: max factor diff %g", d)
	}
}

func TestSetAlgorithmRejectsConstrainedSpCP(t *testing.T) {
	d, err := NewDecomposer([]int{10, 10}, Options{Rank: 3, Algorithm: Optimized, Constraint: admm.NonNeg{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetAlgorithm(SpCPStream); err == nil {
		t.Fatal("constrained decomposer accepted a switch to spCP-stream")
	}
	if d.Algorithm() != Optimized {
		t.Fatalf("failed switch mutated the algorithm: %v", d.Algorithm())
	}
}

func TestNoteOverloadFoldsIntoStats(t *testing.T) {
	d, err := NewDecomposer([]int{10, 10}, Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	d.NoteOverload(5, 2, 3, 4)
	d.NoteOverload(1, 1, 0, 0)
	st := d.ResilienceStats()
	if st.OverloadSheds != 6 || st.OverloadCoalesced != 3 || st.StaleSheds != 3 || st.DrainedSlices != 4 {
		t.Fatalf("overload stats = %+v", st)
	}
}
