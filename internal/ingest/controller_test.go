package ingest

import (
	"testing"
	"time"

	"spstream/internal/admm"
	"spstream/internal/core"
	"spstream/internal/trace"
)

func newTestDecomposer(t *testing.T, opt core.Options) *core.Decomposer {
	t.Helper()
	if opt.Rank == 0 {
		opt.Rank = 3
	}
	d, err := core.NewDecomposer([]int{10, 12}, opt)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestControllerLadderDownAndUp drives the controller with synthetic
// depth observations and checks the full ladder walk: every level
// degrades the configured knobs, and the documented hysteresis bound
// holds — from the deepest level the controller is back at full
// quality within numLevels×StepUpAfter calm observations.
func TestControllerLadderDownAndUp(t *testing.T) {
	var ov trace.Overload
	d := newTestDecomposer(t, core.Options{Algorithm: core.Optimized, MaxIters: 20, ADMMMaxIters: 50})
	c := NewController(d, ControllerConfig{StepUpAfter: 2}, &ov)

	// Sustained pressure: full queue every observation.
	for i := 0; i < 10; i++ {
		c.Observe(8, 8, time.Millisecond, 0)
	}
	if c.Level() != numLevels-1 {
		t.Fatalf("level = %d under sustained pressure, want %d", c.Level(), numLevels-1)
	}
	if d.MaxIters() != 10 {
		t.Fatalf("degraded MaxIters = %d, want 10", d.MaxIters())
	}
	if d.ADMMMaxIters() != 25 {
		t.Fatalf("degraded ADMMMaxIters = %d, want 25", d.ADMMMaxIters())
	}
	if d.Algorithm() != core.SpCPStream {
		t.Fatalf("deepest level algorithm = %v, want spCP-stream", d.Algorithm())
	}
	if c.WindowFactor() != 4 {
		t.Fatalf("deepest level window factor = %d, want 4", c.WindowFactor())
	}
	if got := ov.DegradeSteps.Load(); got != int64(numLevels-1) {
		t.Fatalf("DegradeSteps = %d, want %d", got, numLevels-1)
	}

	// Calm: empty queue. Documented bound: level×StepUpAfter calm
	// slices to full quality.
	bound := (numLevels - 1) * 2
	for i := 0; i < bound; i++ {
		c.Observe(0, 8, 0, 0)
	}
	if c.Level() != 0 {
		t.Fatalf("level = %d after %d calm slices, want 0", c.Level(), bound)
	}
	if d.MaxIters() != 20 || d.ADMMMaxIters() != 50 {
		t.Fatalf("restored iters = %d/%d, want 20/50", d.MaxIters(), d.ADMMMaxIters())
	}
	if d.Algorithm() != core.Optimized {
		t.Fatalf("restored algorithm = %v, want Optimized", d.Algorithm())
	}
	if c.WindowFactor() != 1 {
		t.Fatalf("restored window factor = %d, want 1", c.WindowFactor())
	}
	if got := ov.RestoreSteps.Load(); got != int64(numLevels-1) {
		t.Fatalf("RestoreSteps = %d, want %d", got, numLevels-1)
	}
}

// TestControllerHysteresis: a single calm observation between pressure
// must not step up; mid-range depth resets the calm run.
func TestControllerHysteresis(t *testing.T) {
	var ov trace.Overload
	d := newTestDecomposer(t, core.Options{Algorithm: core.Optimized, MaxIters: 20})
	c := NewController(d, ControllerConfig{StepUpAfter: 3}, &ov)
	c.Observe(8, 8, 0, 0) // degrade to 1
	if c.Level() != 1 {
		t.Fatalf("level = %d, want 1", c.Level())
	}
	c.Observe(0, 8, 0, 0)
	c.Observe(0, 8, 0, 0)
	c.Observe(4, 8, 0, 0) // neither calm nor pressure: resets the run
	c.Observe(0, 8, 0, 0)
	c.Observe(0, 8, 0, 0)
	if c.Level() != 1 {
		t.Fatalf("level = %d after interrupted calm run, want 1 (hysteresis)", c.Level())
	}
	c.Observe(0, 8, 0, 0)
	if c.Level() != 0 {
		t.Fatalf("level = %d after 3 consecutive calm slices, want 0", c.Level())
	}
}

// TestControllerLagPressure: lag beyond MaxLag is pressure even with a
// shallow queue.
func TestControllerLagPressure(t *testing.T) {
	var ov trace.Overload
	d := newTestDecomposer(t, core.Options{Algorithm: core.Optimized, MaxIters: 20})
	c := NewController(d, ControllerConfig{MaxLag: 10 * time.Millisecond, LagAlpha: 1}, &ov)
	c.Observe(0, 8, 50*time.Millisecond, 0)
	if c.Level() != 1 {
		t.Fatalf("level = %d with lag 5× MaxLag, want 1", c.Level())
	}
	// Calm needs lag ≤ MaxLag/2 as well as a shallow queue.
	c.Observe(0, 8, 8*time.Millisecond, 0)
	if got := c.LagEWMA(); got != 8*time.Millisecond {
		t.Fatalf("LagEWMA = %v with α=1, want 8ms", got)
	}
}

// TestControllerConstrainedFallback: a constrained model cannot take
// the spCP rung; the deepest level must deepen the iteration cut
// instead — and still restore exactly.
func TestControllerConstrainedFallback(t *testing.T) {
	var ov trace.Overload
	d := newTestDecomposer(t, core.Options{Algorithm: core.Optimized, Constraint: admm.NonNeg{}, MaxIters: 20, ADMMMaxIters: 40})
	c := NewController(d, ControllerConfig{StepUpAfter: 1}, &ov)
	for i := 0; i < numLevels; i++ {
		c.Observe(8, 8, 0, 0)
	}
	if d.Algorithm() != core.Optimized {
		t.Fatalf("constrained decomposer switched to %v", d.Algorithm())
	}
	if d.MaxIters() != 5 || d.ADMMMaxIters() != 10 {
		t.Fatalf("constrained fallback iters = %d/%d, want 5/10", d.MaxIters(), d.ADMMMaxIters())
	}
	for i := 0; i < numLevels; i++ {
		c.Observe(0, 8, 0, 0)
	}
	if d.MaxIters() != 20 || d.ADMMMaxIters() != 40 || c.Level() != 0 {
		t.Fatalf("constrained restore = %d/%d level %d", d.MaxIters(), d.ADMMMaxIters(), c.Level())
	}
}

// TestControllerSpillPressure: a growing durable backlog is lag the
// queue depth cannot see — the disk absorbs the overflow, so the queue
// looks shallow while the backlog (and the disk bill) grows. The
// controller must treat any spill backlog as pressure and must not
// restore quality until the backlog has fully drained.
func TestControllerSpillPressure(t *testing.T) {
	var ov trace.Overload
	d := newTestDecomposer(t, core.Options{Algorithm: core.Optimized, MaxIters: 20})
	c := NewController(d, ControllerConfig{StepUpAfter: 1}, &ov)

	// Empty queue + spilled backlog: step down anyway.
	c.Observe(0, 8, 0, 500)
	if c.Level() != 1 {
		t.Fatalf("level = %d with a 500-slice spill backlog, want 1", c.Level())
	}

	// A backlog that persists keeps the pressure on — the controller
	// walks the whole ladder before the disk fills, even though the
	// in-memory queue never looks busy.
	for i := 0; i < numLevels; i++ {
		c.Observe(0, 8, 0, 300)
	}
	if c.Level() != numLevels-1 {
		t.Fatalf("level = %d under a sustained backlog, want %d", c.Level(), numLevels-1)
	}

	// The queue has calmed but the disk hasn't: any remaining backlog
	// blocks the restore — the hysteretic path drains the spill tier
	// first.
	for i := 0; i < 5; i++ {
		c.Observe(0, 8, 0, 3)
	}
	if c.Level() != numLevels-1 {
		t.Fatalf("level = %d while the backlog still drains, want %d (restore must wait)", c.Level(), numLevels-1)
	}

	// Backlog gone: calm observations (StepUpAfter=1, one per rung)
	// restore full quality.
	for i := 0; i < numLevels-1; i++ {
		c.Observe(0, 8, 0, 0)
	}
	if c.Level() != 0 || d.MaxIters() != 20 {
		t.Fatalf("level = %d iters = %d after the backlog drained, want 0/20", c.Level(), d.MaxIters())
	}
}
