// Package perfmodel predicts per-iteration kernel and algorithm
// execution times for CP-stream on a modeled multi-socket machine. It
// exists because the paper's evaluation (Figs. 2–8) sweeps 1–56 threads
// on a quad-socket Xeon; this reproduction must regenerate those scaling
// curves even on hosts without 56 cores. The model combines:
//
//   - the roofline bound (compute vs memory bandwidth, with per-socket
//     bandwidth scaling and a cache-resident fast path),
//   - a fine-grained-scheduling overhead term for the baseline ADMM's
//     one-thread-per-element OpenMP parallelization,
//   - a lock-contention model for the baseline MTTKRP's mutex pool,
//     driven by the measured per-mode row-popularity skew of the actual
//     slice (hot rows serialize and their cache line ping-pongs, so the
//     contended path *degrades* with thread count, reproducing Fig. 4),
//   - footprint-dependent cache residency for spMTTKRP's gathered
//     factors (the §VI-E1 effect).
//
// Constants are calibrated against the paper's reported speedups (see
// EXPERIMENTS.md); tests assert the qualitative shapes (monotonicity,
// saturation, baseline degradation, algorithm ordering), not absolute
// times. An independent discrete-event lock simulator (eventsim.go)
// cross-checks the contention model.
package perfmodel

import (
	"spstream/internal/roofline"
	"spstream/internal/sptensor"
)

// Params holds the calibrated cost constants (all times in seconds).
type Params struct {
	// RowProductNsPerK is the per-nonzero, per-rank-element cost of the
	// MTTKRP row product and update (ns).
	RowProductNsPerK float64
	// NnzOverheadNs is the per-nonzero fixed cost common to every
	// MTTKRP variant (index decode, scheduling, cache misses on the
	// factor rows).
	NnzOverheadNs float64
	// LockNs is the cost of an uncontended mutex acquire/release.
	LockNs float64
	// ContendNs is the additional cost per contending thread when a hot
	// lock's cache line ping-pongs between cores.
	ContendNs float64
	// ElemNs and ElemAlpha model the baseline ADMM's fine-grained
	// per-element scheduling: cost/element = ElemNs·(1/p + ElemAlpha),
	// i.e. a component that does not scale with threads (coherence and
	// scheduling overhead that grows with parallelism).
	ElemNs    float64
	ElemAlpha float64
	// BarrierNs is the per-parallel-region fork/join cost, multiplied
	// by log₂(p).
	BarrierNs float64
	// CacheBWMultiplier is the bandwidth multiplier applied when a
	// kernel's working set fits in the aggregate LLC.
	CacheBWMultiplier float64
	// SpLocalityFactor is the row-product cost multiplier for spMTTKRP
	// when the gathered factors are cache resident (<1: fewer TLB
	// misses, better prefetch — §VI-E1).
	SpLocalityFactor float64
	// RemapNsPerNnz is the per-slice preprocessing cost of building the
	// remapped slice (amortized over inner iterations).
	RemapNsPerNnz float64
	// GramNsPerElem is the per-element cost of dense Gram/GEMM updates
	// (beyond the roofline bound; covers loop overheads).
	GramNsPerElem float64
	// ReduceNs is the per-element cost of the serial p-way reduction of
	// thread-local MTTKRP copies.
	ReduceNs float64
	// KKFlopNs is the per-flop cost of small cache-hot K×K dense
	// kernels (Cholesky, Gram-form products); much faster than the
	// streaming GramNsPerElem rate.
	KKFlopNs float64
	// KernelCacheFraction is the share of the LLC effectively available
	// to one kernel's working set (the rest is polluted by the streamed
	// tensor and other operands).
	KernelCacheFraction float64
	// TinyFootprintBytes is the factor-matrix footprint below which
	// contended lock handoffs stay on-chip and cost only
	// CacheContendFactor of the normal transfer (the paper's Uber
	// effect: "updates occur more quickly in cache, leading to lower
	// wait time during contention").
	TinyFootprintBytes int64
	// CacheContendFactor scales contention cost for tiny footprints.
	CacheContendFactor float64
}

// DefaultParams returns constants calibrated so the model lands in the
// paper's reported speedup ranges on the synthetic dataset analogues.
func DefaultParams() Params {
	return Params{
		RowProductNsPerK:    0.55,
		NnzOverheadNs:       150,
		LockNs:              18,
		ContendNs:           40,
		ElemNs:              7,
		ElemAlpha:           0.10,
		BarrierNs:           1500,
		CacheBWMultiplier:   4.0,
		SpLocalityFactor:    0.45,
		RemapNsPerNnz:       14,
		GramNsPerElem:       0.4,
		ReduceNs:            0.3,
		KKFlopNs:            0.05,
		KernelCacheFraction: 0.25,
		TinyFootprintBytes:  2 << 20,
		CacheContendFactor:  0.25,
	}
}

// Model couples a machine description with cost constants.
type Model struct {
	M roofline.Machine
	P Params
}

// PaperModel returns the model of the paper's 56-core testbed with the
// default calibration.
func PaperModel() Model {
	return Model{M: roofline.PaperTestbed(), P: DefaultParams()}
}

// ModeProfile summarizes one mode of a time slice for the contention
// and footprint models.
type ModeProfile struct {
	Dim        int     // full mode length Iₙ
	NZRows     int     // |nz(n)| distinct rows touched
	TopRowFrac float64 // fraction of nonzeros hitting the hottest row
}

// SliceProfile summarizes a time slice.
type SliceProfile struct {
	NNZ   int
	Modes []ModeProfile
	// Sorted reports that the slice is stored in lexicographic
	// (mode 0, 1, …) order — what sptensor.Coalesce produces — which
	// unlocks the CSF engine's reduced-pass builds; Pair01 is the
	// measured distinct (mode0, mode1) coordinate-pair count (0 when
	// unsorted), replacing the birthday estimate for the level-1 node
	// counts of trees rooted at modes 0 and 1.
	Sorted bool
	Pair01 int
}

// Profile measures a SliceProfile from an actual slice.
func Profile(x *sptensor.Tensor) SliceProfile {
	p := SliceProfile{NNZ: x.NNZ(), Modes: make([]ModeProfile, x.NModes())}
	for m := range p.Modes {
		st := sptensor.StatsForMode(x, m)
		top := 0.0
		if st.NNZ > 0 {
			top = float64(st.MaxPerRow) / float64(st.NNZ)
		}
		p.Modes[m] = ModeProfile{Dim: st.Dim, NZRows: st.NonzeroRows, TopRowFrac: top}
	}
	p.Sorted, p.Pair01 = scanOrder(x)
	return p
}

// TotalDim returns ΣIₙ over modes.
func (s SliceProfile) TotalDim() int {
	t := 0
	for _, m := range s.Modes {
		t += m.Dim
	}
	return t
}

// TotalNZRows returns Σ|nz(n)| over modes.
func (s SliceProfile) TotalNZRows() int {
	t := 0
	for _, m := range s.Modes {
		t += m.NZRows
	}
	return t
}

// barrier returns the fork/join cost for p threads.
func (mo Model) barrier(p int) float64 {
	if p <= 1 {
		return 0
	}
	lg := 0
	for v := p - 1; v > 0; v >>= 1 {
		lg++
	}
	return mo.P.BarrierNs * float64(lg) * 1e-9
}

// clampThreads bounds p to the machine.
func (mo Model) clampThreads(p int) int {
	if p < 1 {
		return 1
	}
	if c := mo.M.Cores(); p > c {
		return c
	}
	return p
}

// cacheResident reports whether a working set of the given bytes fits
// in the kernel-usable share of the LLC reachable by p threads.
func (mo Model) cacheResident(bytes int64, p int) bool {
	sockets := (p + mo.M.CoresPerSocket - 1) / mo.M.CoresPerSocket
	if sockets < 1 {
		sockets = 1
	}
	if sockets > mo.M.Sockets {
		sockets = mo.M.Sockets
	}
	avail := float64(mo.M.CacheBytes) * float64(sockets) * mo.P.KernelCacheFraction
	return float64(bytes) <= avail
}

// memTime returns the roofline time with the cache fast path.
func (mo Model) memTime(flops, bytes float64, footprint int64, p int) float64 {
	t := mo.M.Time(flops, bytes, p)
	if mo.cacheResident(footprint, p) {
		fast := mo.M.Time(flops, bytes/mo.P.CacheBWMultiplier, p)
		if fast < t {
			t = fast
		}
	}
	return t
}
