//go:build !((linux || darwin) && !spblk_pread)

package ooc

import (
	"fmt"
	"os"
)

// preadFile is the portable fallback backend (and the forced choice
// under -tags spblk_pread): sections are read with positional reads
// into the caller's scratch. Semantically identical to the mmap
// backend, just one copy slower per section.
type preadFile struct {
	f  *os.File
	sz int64
}

func openBlockFile(path string) (blockFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &preadFile{f: f, sz: st.Size()}, nil
}

func (f *preadFile) section(scratch []byte, off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > f.sz {
		return nil, fmt.Errorf("ooc: section [%d,%d) outside file of %d bytes", off, off+n, f.sz)
	}
	if int64(cap(scratch)) < n {
		scratch = make([]byte, n)
	}
	buf := scratch[:n]
	if _, err := f.f.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}

func (f *preadFile) size() int64 { return f.sz }

func (f *preadFile) close() error { return f.f.Close() }
