package resilience

import (
	"fmt"
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: the solver is healthy; admissions flow.
	BreakerClosed BreakerState = iota
	// BreakerOpen: too many consecutive slice failures; admissions are
	// refused until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed and exactly one probe slice
	// has been admitted; its outcome decides whether the breaker closes
	// or re-opens.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int32(s))
	}
}

// BreakerConfig parameterizes a Breaker. The zero value is usable:
// open after 3 consecutive failures, probe after a 5s cooldown.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive slice failures open the
	// breaker. Default 3.
	FailureThreshold int
	// Cooldown is how long an open breaker refuses admissions before
	// letting one probe slice through. Default 5s.
	Cooldown time.Duration
	// Clock replaces time.Now (testing).
	Clock func() time.Time
}

// withDefaults fills zero fields.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Breaker is a circuit breaker around the solver loop of a serving
// deployment. The ingestion side calls Allow before admitting a slice
// (the ingest pipeline's Gate hook); the solver side reports each
// slice's outcome with OnSuccess/OnFailure. After FailureThreshold
// consecutive failures the breaker opens: admissions are shed (and the
// daemon's /readyz goes unready) so a poisoned or diverging stream
// cannot grind the solver through endless rollback churn. After the
// cooldown one probe slice is admitted; if it solves, the breaker
// closes and traffic resumes, otherwise it re-opens for another
// cooldown.
//
// All methods are safe for concurrent use: Allow runs on producer
// (HTTP handler) goroutines while the outcome reports arrive from the
// pipeline's consumer goroutine.
type Breaker struct {
	mu          sync.Mutex
	cfg         BreakerConfig
	state       BreakerState
	consecutive int       // consecutive failures while closed
	openedAt    time.Time // when the breaker last opened
	opens       int64     // lifetime open transitions
	probes      int64     // lifetime half-open probe admissions
}

// NewBreaker builds a breaker from cfg (zero value ok).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether one slice may be admitted now. In the open
// state it returns false until the cooldown elapses, then admits
// exactly one probe (transitioning to half-open); while that probe is
// in flight further admissions are refused.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		return false // one probe at a time
	default: // BreakerOpen
		if b.cfg.Clock().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probes++
		return true
	}
}

// OnSuccess records a successfully committed slice: the failure run
// resets, and a half-open breaker closes.
func (b *Breaker) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	if b.state != BreakerClosed {
		b.state = BreakerClosed
	}
}

// OnFailure records a failed slice. A half-open breaker re-opens
// immediately (the probe failed); a closed breaker opens once the
// consecutive-failure run reaches the threshold.
func (b *Breaker) OnFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.cfg.Clock()
		b.opens++
	case BreakerClosed:
		if b.consecutive >= b.cfg.FailureThreshold {
			b.state = BreakerOpen
			b.openedAt = b.cfg.Clock()
			b.opens++
		}
	}
}

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// RetryAfter returns how long a refused producer should wait before
// retrying: the remaining cooldown when open (floor 1s so clients do
// not busy-poll), 0 when admissions are flowing.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerClosed {
		return 0
	}
	rem := b.cfg.Cooldown - b.cfg.Clock().Sub(b.openedAt)
	if rem < time.Second {
		rem = time.Second
	}
	return rem
}

// BreakerSnapshot is a point-in-time copy of the breaker's counters.
type BreakerSnapshot struct {
	State               BreakerState
	ConsecutiveFailures int
	Opens               int64
	Probes              int64
}

// Snapshot copies the counters at one instant.
func (b *Breaker) Snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{
		State:               b.state,
		ConsecutiveFailures: b.consecutive,
		Opens:               b.opens,
		Probes:              b.probes,
	}
}
