package admm

import (
	"math"
	"testing"
	"testing/quick"

	"spstream/internal/dense"
	"spstream/internal/synth"
)

// randomProblem builds a random well-conditioned constrained LS problem:
// Φ = BᵀB + I (K×K SPD), Ψ = A*·Φ for a known A*, so the unconstrained
// minimizer is exactly A*.
func randomProblem(seed uint64, rows, k int) (aStar, phi, psi *dense.Matrix) {
	r := synth.NewRNG(seed)
	b := dense.NewMatrix(k+4, k)
	for i := range b.Data {
		b.Data[i] = r.NormFloat64()
	}
	phi = dense.NewMatrix(k, k)
	dense.Gram(phi, b)
	dense.AddScaledIdentity(phi, phi, 1)
	aStar = dense.NewMatrix(rows, k)
	for i := range aStar.Data {
		aStar.Data[i] = r.NormFloat64()
	}
	psi = dense.NewMatrix(rows, k)
	dense.MulAB(psi, aStar, phi)
	return aStar, phi, psi
}

func TestUnconstrainedConvergesToLeastSquares(t *testing.T) {
	aStar, phi, psi := randomProblem(1, 40, 5)
	a := dense.NewMatrix(40, 5) // cold start at zero
	s := NewSolver(Options{Tol: 1e-10, MaxIters: 500})
	stats, err := s.Baseline(a, phi, psi, Unconstrained{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Converged {
		t.Fatalf("did not converge in %d iters", stats.Iters)
	}
	if d := a.MaxAbsDiff(aStar); d > 1e-3 {
		t.Fatalf("unconstrained ADMM off from LS solution by %g", d)
	}
}

func TestNonNegProducesFeasibleSolution(t *testing.T) {
	_, phi, psi := randomProblem(2, 60, 6)
	a := dense.NewMatrix(60, 6)
	s := NewSolver(Options{Tol: 1e-8, MaxIters: 300})
	if _, err := s.Baseline(a, phi, psi, NonNeg{}); err != nil {
		t.Fatal(err)
	}
	for _, v := range a.Data {
		if v < 0 {
			t.Fatalf("negative entry %g in NonNeg solution", v)
		}
	}
	// NNLS optimality sanity: objective at A must be ≤ objective at the
	// clipped unconstrained solution.
	obj := func(m *dense.Matrix) float64 {
		// ½tr(MΦMᵀ) − tr(MΨᵀ): the quadratic objective up to a constant.
		tmp := dense.NewMatrix(m.Rows, m.Cols)
		dense.MulAB(tmp, m, phi)
		v := 0.0
		for i := 0; i < m.Rows; i++ {
			rm, rt, rp := m.Row(i), tmp.Row(i), psi.Row(i)
			for j := range rm {
				v += 0.5*rm[j]*rt[j] - rm[j]*rp[j]
			}
		}
		return v
	}
	clipped, err := dense.SolveSPD(phi, 0, psi)
	if err != nil {
		t.Fatal(err)
	}
	NonNeg{}.Project(clipped, nil, 0)
	if obj(a) > obj(clipped)+1e-6*math.Abs(obj(clipped)) {
		t.Fatalf("ADMM NNLS objective %g worse than clipped LS %g", obj(a), obj(clipped))
	}
}

func TestBlockedFusedMatchesBaseline(t *testing.T) {
	f := func(seed uint64) bool {
		_, phi, psi := randomProblem(seed, 50, 4)
		warm := dense.NewMatrix(50, 4)
		for _, con := range []Constraint{NonNeg{}, Unconstrained{}, L1{Lambda: 0.1}} {
			aBase := warm.Clone()
			aBF := warm.Clone()
			sb := NewSolver(Options{Tol: 1e-9, MaxIters: 400, Workers: 2})
			sf := NewSolver(Options{Tol: 1e-9, MaxIters: 400, Workers: 2, BlockRows: 7})
			stB, err := sb.Baseline(aBase, phi, psi, con)
			if err != nil {
				return false
			}
			stF, err := sf.BlockedFused(aBF, phi, psi, con)
			if err != nil {
				return false
			}
			// Identical iterate sequences → identical iteration counts.
			if stB.Iters != stF.Iters || stB.Converged != stF.Converged {
				return false
			}
			// Solutions agree to solver tolerance (BF is one half-step
			// ahead, so allow slack proportional to √tol).
			if aBase.MaxAbsDiff(aBF) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockedFusedFinalProjectionFeasible(t *testing.T) {
	_, phi, psi := randomProblem(11, 33, 5)
	a := dense.NewMatrix(33, 5)
	s := NewSolver(Options{Tol: 1e-6, MaxIters: 100, BlockRows: 8})
	if _, err := s.BlockedFused(a, phi, psi, NonNeg{}); err != nil {
		t.Fatal(err)
	}
	for _, v := range a.Data {
		if v < 0 {
			t.Fatalf("BF result infeasible: %g", v)
		}
	}
}

func TestL1InducesSparsity(t *testing.T) {
	_, phi, psi := randomProblem(3, 80, 6)
	dense0 := dense.NewMatrix(80, 6)
	s := NewSolver(Options{Tol: 1e-8, MaxIters: 300})
	if _, err := s.Baseline(dense0, phi, psi, Unconstrained{}); err != nil {
		t.Fatal(err)
	}
	sparse := dense.NewMatrix(80, 6)
	if _, err := s.Baseline(sparse, phi, psi, L1{Lambda: 5}); err != nil {
		t.Fatal(err)
	}
	zeros := func(m *dense.Matrix) int {
		n := 0
		for _, v := range m.Data {
			if v == 0 {
				n++
			}
		}
		return n
	}
	if zeros(sparse) <= zeros(dense0) {
		t.Fatalf("L1 did not induce sparsity: %d vs %d zeros", zeros(sparse), zeros(dense0))
	}
}

func TestNonNegMaxColNormCapsColumns(t *testing.T) {
	_, phi, psi := randomProblem(4, 50, 4)
	dense.Scale(psi, 10, psi) // force large columns
	a := dense.NewMatrix(50, 4)
	s := NewSolver(Options{Tol: 1e-8, MaxIters: 300})
	cap := 2.0
	if _, err := s.Baseline(a, phi, psi, NonNegMaxColNorm{R: cap}); err != nil {
		t.Fatal(err)
	}
	for _, v := range a.Data {
		if v < 0 {
			t.Fatal("infeasible: negative entry")
		}
	}
}

func TestProjectionOperators(t *testing.T) {
	m := dense.FromRows([][]float64{{-1, 2}, {3, -4}})
	NonNeg{}.Project(m, nil, 1)
	if m.At(0, 0) != 0 || m.At(0, 1) != 2 || m.At(1, 1) != 0 {
		t.Fatalf("NonNeg projection wrong: %v", m)
	}
	// Idempotence.
	before := m.Clone()
	NonNeg{}.Project(m, nil, 1)
	if !m.Equal(before, 0) {
		t.Fatal("NonNeg not idempotent")
	}

	l := dense.FromRows([][]float64{{-1, 0.05}, {0.3, -0.02}})
	L1{Lambda: 0.1}.Project(l, nil, 1) // threshold = 0.1
	if l.At(0, 0) != -0.9 || l.At(0, 1) != 0 || math.Abs(l.At(1, 0)-0.2) > 1e-15 || l.At(1, 1) != 0 {
		t.Fatalf("L1 soft threshold wrong: %v", l)
	}

	c := dense.FromRows([][]float64{{3, -1}, {4, 2}})
	norms2 := []float64{25, 5} // col 0 norm 5 > cap 1
	NonNegMaxColNorm{R: 1}.Project(c, norms2, 1)
	if math.Abs(c.At(0, 0)-3.0/5) > 1e-15 || c.At(0, 1) != 0 {
		t.Fatalf("col norm projection wrong: %v", c)
	}
}

func TestShapeErrors(t *testing.T) {
	s := NewSolver(Options{})
	a := dense.NewMatrix(5, 3)
	phi := dense.NewMatrix(3, 3)
	dense.AddScaledIdentity(phi, phi, 1)
	badPsi := dense.NewMatrix(4, 3)
	if _, err := s.Baseline(a, phi, badPsi, NonNeg{}); err == nil {
		t.Fatal("expected shape error")
	}
	if _, err := s.BlockedFused(a, dense.NewMatrix(3, 2), dense.NewMatrix(5, 3), NonNeg{}); err == nil {
		t.Fatal("expected non-square Φ error")
	}
}

func TestWarmStartConvergesFaster(t *testing.T) {
	aStar, phi, psi := randomProblem(7, 60, 5)
	cold := dense.NewMatrix(60, 5)
	s := NewSolver(Options{Tol: 1e-8, MaxIters: 500})
	stCold, err := s.Baseline(cold, phi, psi, Unconstrained{})
	if err != nil {
		t.Fatal(err)
	}
	warm := aStar.Clone() // start at the solution
	stWarm, err := s.Baseline(warm, phi, psi, Unconstrained{})
	if err != nil {
		t.Fatal(err)
	}
	if stWarm.Iters > stCold.Iters {
		t.Fatalf("warm start (%d iters) slower than cold (%d)", stWarm.Iters, stCold.Iters)
	}
}

func TestRhoFloor(t *testing.T) {
	zero := dense.NewMatrix(3, 3)
	if rho(zero) <= 0 {
		t.Fatal("rho must stay positive for zero Φ")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Tol != 1e-4 || o.MaxIters != 50 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	if b := o.blockRows(16); b < 16 {
		t.Fatalf("blockRows(16) = %d", b)
	}
	o.BlockRows = 5
	if o.blockRows(16) != 5 {
		t.Fatal("explicit BlockRows ignored")
	}
}

// Adaptive ρ (residual balancing) must still converge to the
// constrained solution and remain feasible; on problems where the
// default ρ is far off, it should not take more iterations than the
// fixed-ρ solver.
func TestAdaptiveRho(t *testing.T) {
	aStar, phi, _ := randomProblem(21, 60, 5)
	// Skew the problem so tr(Φ)/K is a poor penalty: scale Φ up, making
	// the default ρ huge relative to the data term.
	phiBig := phi.Clone()
	dense.Scale(phiBig, 1000, phiBig)
	psiBig := dense.NewMatrix(60, 5)
	dense.MulAB(psiBig, aStar, phiBig)

	fixed := NewSolver(Options{Tol: 1e-10, MaxIters: 400})
	aFixed := dense.NewMatrix(60, 5)
	stFixed, err := fixed.Baseline(aFixed, phiBig, psiBig, NonNeg{})
	if err != nil {
		t.Fatal(err)
	}
	adaptive := NewSolver(Options{Tol: 1e-10, MaxIters: 400, AdaptiveRho: true})
	aAdaptive := dense.NewMatrix(60, 5)
	stAdaptive, err := adaptive.Baseline(aAdaptive, phiBig, psiBig, NonNeg{})
	if err != nil {
		t.Fatal(err)
	}
	if !stAdaptive.Converged {
		t.Fatalf("adaptive ρ did not converge in %d iters (fixed: %d, converged=%v)",
			stAdaptive.Iters, stFixed.Iters, stFixed.Converged)
	}
	for _, v := range aAdaptive.Data {
		if v < 0 {
			t.Fatal("adaptive ρ produced infeasible solution")
		}
	}
	// Both solvers, when converged, agree on the solution.
	if stFixed.Converged && aFixed.MaxAbsDiff(aAdaptive) > 1e-3 {
		t.Fatalf("adaptive and fixed ρ solutions differ by %g", aFixed.MaxAbsDiff(aAdaptive))
	}
}
