package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spstream/internal/core"
	"spstream/internal/resilience"
)

// TestConcurrentReadsDuringChaos hammers the snapshot and the read
// handlers from many goroutines while the solver loop processes a
// stream with injected divergence faults (retries and rollbacks).
// Run with -race. Readers assert the two invariants that concurrency
// must not break: every observed snapshot is internally consistent,
// and the observed slice counter never goes backwards — a rollback is
// invisible to readers.
func TestConcurrentReadsDuringChaos(t *testing.T) {
	stream := testStream(t, 40, 31)
	var attempts atomic.Int64
	srv, err := New(Config{
		Dims: stream.Dims,
		Options: core.Options{
			Rank: 3, Seed: 1, TrackFit: true,
			Resilience: &resilience.Config{
				Policy:          resilience.RetrySlice,
				MaxSliceRetries: 2,
				FaultHook: func(f resilience.Fault) error {
					// Fail every 5th begin attempt once (retries pass),
					// keeping a steady mix of rollbacks and commits.
					if f.Stage == resilience.StageBegin && f.Attempt == 0 &&
						attempts.Add(1)%5 == 0 {
						return resilience.ErrDiverged
					}
					return nil
				},
			},
		},
		QueueCap: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	handler := srv.Handler()
	srv.pipe.Start(context.Background())

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastT := -1
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := srv.Snapshot()
				if snap.T < lastT {
					t.Errorf("snapshot T went backwards: %d after %d", snap.T, lastT)
					return
				}
				lastT = snap.T
				if len(snap.Factors) != len(snap.Dims) || len(snap.S) != snap.Rank {
					t.Errorf("inconsistent snapshot: %d factors, |s|=%d, rank %d",
						len(snap.Factors), len(snap.S), snap.Rank)
					return
				}
				if _, err := snap.ReconstructAt([]int32{1, 1}); err != nil {
					t.Errorf("reconstruct: %v", err)
					return
				}
			}
		}()
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			paths := []string{"/v1/factors", "/v1/stats", "/readyz", "/healthz", "/v1/reconstruct?coord=1,1"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest("GET", paths[i%len(paths)], nil)
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, req)
				if rec.Code >= 500 && rec.Code != http.StatusServiceUnavailable {
					t.Errorf("GET %s = %d", paths[i%len(paths)], rec.Code)
					return
				}
			}
		}()
	}

	for _, x := range stream.Slices {
		if err := srv.pipe.Offer(x); err != nil {
			t.Errorf("offer: %v", err)
			break
		}
		time.Sleep(time.Millisecond)
	}
	snap := srv.pipe.Drain(context.Background())
	close(stop)
	wg.Wait()

	if snap.Processed == 0 {
		t.Fatal("nothing processed under chaos")
	}
	st := srv.dec.ResilienceStats()
	if st.Rollbacks == 0 {
		t.Fatal("chaos injected no rollbacks; the test exercised nothing")
	}
	if got := srv.Snapshot().T; got != srv.dec.T() {
		t.Fatalf("final snapshot T = %d, decomposer t = %d", got, srv.dec.T())
	}
}
