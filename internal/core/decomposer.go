package core

import (
	"context"
	"fmt"
	"math"

	"spstream/internal/admm"
	"spstream/internal/csf"
	"spstream/internal/dense"
	"spstream/internal/mttkrp"
	"spstream/internal/parallel"
	"spstream/internal/perfmodel"
	"spstream/internal/resilience"
	"spstream/internal/sptensor"
	"spstream/internal/synth"
	"spstream/internal/trace"
)

// Decomposer consumes time slices one at a time and maintains the
// streaming CP factorization. It is not safe for concurrent use.
type Decomposer struct {
	opt  Options
	dims []int
	n    int // number of non-streaming modes
	k    int // rank

	// Factor state.
	a     []*dense.Matrix // current factors A⁽ⁿ⁾ (Iₙ×K)
	prevA []*dense.Matrix // A⁽ⁿ⁾ₜ₋₁ snapshot during a slice
	c     []*dense.Matrix // C⁽ⁿ⁾ = A⁽ⁿ⁾ᵀA⁽ⁿ⁾ (K×K)
	cPrev []*dense.Matrix // C⁽ⁿ⁾ₜ₋₁ (K×K)
	h     []*dense.Matrix // H⁽ⁿ⁾ = Aₜ₋₁ᵀA (K×K)
	g     *dense.Matrix   // temporal Gram G (K×K)
	s     []float64       // current sₜ
	sHist [][]float64     // all temporal rows (the S factor)
	t     int             // slices processed

	// spCP-stream state carried across slices.
	prevNZ [][]int32       // nz sets of the previous slice
	cz     []*dense.Matrix // Gram of A's z-rows w.r.t. prevNZ

	// Kernels and workspaces.
	psi    []*dense.Matrix // Ψ workspace for the explicit algorithms
	nzPsi  []*dense.Matrix // per-mode Ψ_nz workspaces for spCP-stream
	mt     *mttkrp.Computer
	solver *admm.Solver
	bd     trace.Breakdown
	rng    *synth.RNG
	pool   *parallel.Pool

	// MTTKRP kernel selection (see kernels.go): the pooled CSF engine
	// (created on first use), the cost-model selector, the reusable slice
	// profile it reads, and the per-mode kernel table resolved at every
	// slice begin.
	csfEng  *csf.Engine
	sel     perfmodel.Selector
	prof    perfmodel.SliceProfile
	kernels []kernelChoice

	// Out-of-core evaluation (see streamed.go): the pooled streaming
	// MTTKRP kernel (created on first blocked slice) and the evaluation
	// mode the selector picked for the most recent block slice.
	sk       *mttkrp.StreamKernel
	lastEval perfmodel.EvalMode

	// Adaptive memory layout (see kernels.go and perfmodel/layout.go):
	// the stream-lifetime layout manager (lazily created when the
	// policy allows it), the pooled profiler that folds each slice's
	// row counts into its histograms, the pooled remapper, the compact
	// profile of the remapped view, the gathered compact factors the
	// remapped kernels read, and the last slice's resolved decision
	// (for the tune/serve diagnostics and the determinism tests).
	layout   *perfmodel.Layout
	profiler perfmodel.Profiler
	remapper mttkrp.Remapper
	profNz   perfmodel.SliceProfile
	aNzCur   []*dense.Matrix
	lastDec  perfmodel.Decision

	// Scratch K×K matrices reused across iterations.
	muG, phiS, sPhi, scratch1, scratch2 *dense.Matrix

	// Reusable Cholesky factorization of the per-mode Φ (and the sₜ Φ).
	chol dense.Cholesky

	// Reusable column-scale buffer for normalization.
	colScale []float64

	// Reusable argument block for the ctx-style parallel helpers below.
	pargs coreArgs

	// Resilience state (see resilient.go): recovery counters, the
	// last-good snapshot, and the slice attempt / inner iteration
	// counters reported to the fault-injection hook.
	stats        resilience.Stats
	snap         *stateSnapshot
	sliceAttempt int
	iterNo       int

	// commitHook, when set, observes every committed slice (see
	// SetCommitHook).
	commitHook func(SliceResult)
}

// SetCommitHook registers a callback invoked immediately after a slice
// commits — ProcessSliceContext returning nil, with the factor state
// advanced to include the slice. It never fires for failed, skipped,
// rolled-back, or cancelled slices, so a hook that snapshots the
// factors (the serving layer's snapshot publisher) can never observe
// state a later rollback will retract: by the time the hook runs, the
// slice's mutations are final. The hook runs on the goroutine driving
// the decomposer, while it is quiescent — reading factors, Fit, and T
// inside the hook is safe; retaining references past its return is not.
func (d *Decomposer) SetCommitHook(h func(SliceResult)) { d.commitHook = h }

// coreArgs carries addMulAB/solveRows operands through the worker pool
// without closures; owned by the Decomposer and cleared after each call.
type coreArgs struct {
	dst, a, b *dense.Matrix
	chol      *dense.Cholesky
}

// NewDecomposer creates a decomposer for slices with the given mode
// lengths. Factors are randomly initialized (non-negative uniform, so
// constrained runs start feasible).
func NewDecomposer(dims []int, opt Options) (*Decomposer, error) {
	opt = opt.withDefaults()
	if err := opt.Validate(dims); err != nil {
		return nil, err
	}
	d := &Decomposer{
		opt:  opt,
		dims: append([]int(nil), dims...),
		n:    len(dims),
		k:    opt.Rank,
		mt:   mttkrp.NewComputer(opt.Workers),
		rng:  synth.NewRNG(opt.Seed),
		pool: parallel.Default(),
		sel:  perfmodel.NewSelector(opt.Workers),
	}
	d.solver = admm.NewSolver(admm.Options{
		Workers:  opt.Workers,
		Tol:      opt.ADMMTol,
		MaxIters: opt.ADMMMaxIters,
	})
	k := d.k
	for _, dim := range dims {
		f := dense.NewMatrix(dim, k)
		for i := range f.Data {
			f.Data[i] = d.rng.Float64() + 0.1 // positive, well away from 0
		}
		d.a = append(d.a, f)
		d.prevA = append(d.prevA, dense.NewMatrix(dim, k))
		d.c = append(d.c, dense.NewMatrix(k, k))
		d.cPrev = append(d.cPrev, dense.NewMatrix(k, k))
		d.h = append(d.h, dense.NewMatrix(k, k))
	}
	d.g = dense.NewMatrix(k, k)
	d.s = make([]float64, k)
	d.muG = dense.NewMatrix(k, k)
	d.phiS = dense.NewMatrix(k, k)
	d.sPhi = dense.NewMatrix(k, k)
	d.scratch1 = dense.NewMatrix(k, k)
	d.scratch2 = dense.NewMatrix(k, k)
	d.colScale = make([]float64, k)
	for range dims {
		d.cz = append(d.cz, dense.NewMatrix(k, k))
	}
	// Invariant: d.c always holds Gram(d.a) at slice boundaries.
	d.refreshGrams()
	return d, nil
}

// Dims returns the slice mode lengths.
func (d *Decomposer) Dims() []int { return d.dims }

// Rank returns the decomposition rank K.
func (d *Decomposer) Rank() int { return d.k }

// T returns the number of slices processed so far.
func (d *Decomposer) T() int { return d.t }

// Factor returns the current factor matrix for mode n (live storage; do
// not modify).
func (d *Decomposer) Factor(n int) *dense.Matrix { return d.a[n] }

// TemporalGram returns the temporal Gram matrix G (live storage).
func (d *Decomposer) TemporalGram() *dense.Matrix { return d.g }

// Temporal returns the accumulated temporal factor S as a T×K matrix.
func (d *Decomposer) Temporal() *dense.Matrix { return dense.FromRows(d.sHist) }

// LastS returns the most recent temporal row sₜ (live storage).
func (d *Decomposer) LastS() []float64 { return d.s }

// Breakdown returns the accumulated per-phase time breakdown.
func (d *Decomposer) Breakdown() *trace.Breakdown { return &d.bd }

// ResetBreakdown clears accumulated phase timings.
func (d *Decomposer) ResetBreakdown() { d.bd.Reset() }

// checkSlice validates a slice's shape against the decomposer.
func (d *Decomposer) checkSlice(x *sptensor.Tensor) error {
	if x == nil {
		return fmt.Errorf("core: nil slice")
	}
	if x.NModes() != d.n {
		return fmt.Errorf("core: slice has %d modes, decomposer expects %d", x.NModes(), d.n)
	}
	for m, dim := range x.Dims {
		if dim != d.dims[m] {
			return fmt.Errorf("core: slice mode %d length %d ≠ %d", m, dim, d.dims[m])
		}
	}
	return nil
}

// ProcessSlice advances the factorization by one time slice. It is
// ProcessSliceContext with a background context.
func (d *Decomposer) ProcessSlice(x *sptensor.Tensor) (SliceResult, error) {
	return d.ProcessSliceContext(context.Background(), x)
}

// ProcessStream drains a slice source, invoking cb (if non-nil) after
// every slice, and returns the per-slice results. It is
// ProcessStreamContext with a background context.
func (d *Decomposer) ProcessStream(src sptensor.SliceSource, cb func(SliceResult)) ([]SliceResult, error) {
	return d.ProcessStreamContext(context.Background(), src, cb)
}

// --- shared helpers ---------------------------------------------------

// refreshGrams recomputes C⁽ⁿ⁾ for all modes from the current factors.
func (d *Decomposer) refreshGrams() {
	for m := range d.a {
		dense.GramParallel(d.c[m], d.a[m], d.opt.Workers)
	}
}

// solveS computes the closed-form sₜ update
// (⊛_v C⁽ᵛ⁾ + λI)s = ψ with ψ from the streaming-mode MTTKRP over the
// given factors. It runs once before the inner loop (warm start from
// the previous slice's factors) and once per inner iteration (the time
// mode is the (N+1)-th ALS block). The locked flag selects the
// pathological single-lock kernel (Baseline) vs the thread-local
// reduction — the paper's prime example of lock contention (§IV-B).
func (d *Decomposer) solveS(x *sptensor.Tensor, factors []*dense.Matrix, locked bool) error {
	phi := d.sPhi
	phi.Fill(1)
	for m := range factors {
		dense.Hadamard(phi, phi, d.c[m])
	}
	dense.AddScaledIdentity(phi, phi, d.opt.StreamRidge)
	if locked {
		d.mt.TimeModeLocked(d.s, x, factors)
	} else {
		d.mt.TimeMode(d.s, x, factors)
	}
	if err := d.factorize(phi); err != nil {
		return fmt.Errorf("core: sₜ solve: %w", err)
	}
	d.chol.SolveVec(d.s)
	return nil
}

// buildMuG caches µG + ssᵀ (into phiS scratch) and µG (into muG) for the
// current slice; both are fixed across inner iterations.
func (d *Decomposer) buildMuG() {
	dense.Scale(d.muG, d.opt.Mu, d.g)
	dense.OuterProduct(d.phiS, d.s, d.s)
	dense.Add(d.phiS, d.phiS, d.muG)
}

// buildPhi computes Φ⁽ⁿ⁾ = (⊛_{v≠n} C⁽ᵛ⁾) ⊛ (µG + ssᵀ) + ridge·I into
// dst, returning the ridge actually applied.
func (d *Decomposer) buildPhi(dst *dense.Matrix, mode int) float64 {
	dst.Fill(1)
	for v := range d.c {
		if v == mode {
			continue
		}
		dense.Hadamard(dst, dst, d.c[v])
	}
	dense.Hadamard(dst, dst, d.phiS)
	ridge := d.opt.FactorRidgeRel * dense.Trace(dst) / float64(d.k)
	if ridge <= 0 || math.IsNaN(ridge) {
		ridge = 1e-12
	}
	dense.AddScaledIdentity(dst, dst, ridge)
	return ridge
}

// buildQ computes Q⁽ⁿ⁾ = (⊛_{v≠n} H⁽ᵛ⁾) ⊛ µG into dst.
func (d *Decomposer) buildQ(dst *dense.Matrix, mode int) {
	dst.Fill(1)
	for v := range d.h {
		if v == mode {
			continue
		}
		dense.Hadamard(dst, dst, d.h[v])
	}
	dense.Hadamard(dst, dst, d.muG)
}

// finishSlice performs the bookkeeping common to all algorithms after
// the inner loop converges: the G/S temporal updates and the slice
// counter. (Normalization, when enabled, already ran per iteration —
// Algorithm 4 line 30.)
func (d *Decomposer) finishSlice() {
	// Gₜ = µGₜ₋₁ + sₜsₜᵀ.
	dense.Scale(d.g, d.opt.Mu, d.g)
	for i := 0; i < d.k; i++ {
		gi := d.g.Row(i)
		si := d.s[i]
		for j := 0; j < d.k; j++ {
			gi[j] += si * d.s[j]
		}
	}
	d.sHist = append(d.sHist, append([]float64(nil), d.s...))
	d.t++
}

// columnScales extracts the per-column 2-norms λ of mode m's factor
// from diag(C⁽ᵐ⁾) (so it works identically for the Gram-form algorithm)
// and their inverses, guarding dead columns, and absorbs λ into sₜ so
// the model [[A…; s]] is unchanged by the rescaling.
func (d *Decomposer) columnScales(m int) (inv []float64) {
	inv = d.colScale
	for j := 0; j < d.k; j++ {
		v := d.c[m].At(j, j)
		lambda := 1.0
		if v > 0 {
			lambda = math.Sqrt(v)
		}
		inv[j] = 1 / lambda
		d.s[j] *= lambda
	}
	return inv
}

// scaleGrams applies the column rescaling to mode m's cached Gram
// state: C ← D⁻¹CD⁻¹ and H ← H·D⁻¹ (H's left side is the unscaled
// A⁽ᵐ⁾ₜ₋₁).
func (d *Decomposer) scaleGrams(m int, inv []float64) {
	dense.ScaleColumns(d.c[m], d.c[m], inv)
	dense.ScaleRows(d.c[m], d.c[m], inv)
	dense.ScaleColumns(d.h[m], d.h[m], inv)
}

// normalizeModeExplicit implements Algorithm 4's per-iteration
// normalize(C, H) (line 30) for the explicit algorithms: after mode m's
// update, its factor columns are rescaled to unit norm, the scale is
// absorbed into sₜ, and the µG + ssᵀ operand is refreshed so subsequent
// modes in the same iteration see a consistent model.
func (d *Decomposer) normalizeModeExplicit(m int) {
	inv := d.columnScales(m)
	dense.ScaleColumns(d.a[m], d.a[m], inv)
	d.scaleGrams(m, inv)
	d.buildMuG()
}

// normalizeModeSpCP is the Gram-form counterpart: the explicit nz rows
// and the z-row transform T⁽ᵐ⁾ are rescaled (A_z = A_z,t₋₁·T, so
// scaling T's columns scales the implicit z rows), along with the
// current C_z and the C/H state.
func (d *Decomposer) normalizeModeSpCP(m int, aNz, tCur, czCur *dense.Matrix) {
	inv := d.columnScales(m)
	dense.ScaleColumns(aNz, aNz, inv)
	dense.ScaleColumns(tCur, tCur, inv)
	dense.ScaleColumns(czCur, czCur, inv)
	dense.ScaleRows(czCur, czCur, inv)
	d.scaleGrams(m, inv)
	d.buildMuG()
}
