package main

import (
	"path/filepath"
	"testing"

	"spstream/internal/sptensor"
)

func writeTestTensor(t *testing.T) string {
	t.Helper()
	x := sptensor.New(5, 6, 3)
	x.Append([]int32{0, 1, 0}, 1)
	x.Append([]int32{4, 5, 2}, 2)
	path := filepath.Join(t.TempDir(), "x.tns")
	if err := sptensor.WriteTNSFile(path, x); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadWholeTensor(t *testing.T) {
	path := writeTestTensor(t)
	x, err := load(path, "", 0, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if x.NModes() != 3 || x.NNZ() != 2 {
		t.Fatalf("tensor shape: %v", x)
	}
}

func TestLoadSliceFromFile(t *testing.T) {
	path := writeTestTensor(t)
	x, err := load(path, "", 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if x.NModes() != 2 || x.NNZ() != 1 {
		t.Fatalf("slice: %v", x)
	}
}

func TestLoadPresetSlice(t *testing.T) {
	x, err := load("", "uber", 0.05, -1, -1)
	if err != nil {
		t.Fatal(err)
	}
	if x.NModes() != 3 {
		t.Fatalf("preset slice modes = %d", x.NModes())
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadErrors(t *testing.T) {
	path := writeTestTensor(t)
	if _, err := load("", "", 0, -1, -1); err == nil {
		t.Fatal("no input accepted")
	}
	if _, err := load(path, "uber", 1, -1, -1); err == nil {
		t.Fatal("both inputs accepted")
	}
	if _, err := load(path, "", 0, -1, 1); err == nil {
		t.Fatal("slice without streammode accepted")
	}
	if _, err := load(path, "", 0, 2, 99); err == nil {
		t.Fatal("out-of-range slice accepted")
	}
	if _, err := load("", "bogus", 1, -1, -1); err == nil {
		t.Fatal("bogus preset accepted")
	}
}

func TestBars(t *testing.T) {
	if bars(3) != "###" {
		t.Fatalf("bars = %q", bars(3))
	}
}
