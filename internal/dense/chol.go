package dense

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned when Cholesky factorization encounters a
// non-positive pivot, i.e. the input is not (numerically) symmetric
// positive definite.
var ErrNotSPD = errors.New("dense: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L of an SPD matrix
// Φ = L·Lᵀ. The factor is stored compactly and reused across the many
// solves CP-stream performs against the same Φ within one ADMM call.
type Cholesky struct {
	n int
	l *Matrix // lower triangle, including diagonal; upper is garbage
}

// Factor computes the Cholesky factorization of SPD matrix a (which is
// not modified). It returns ErrNotSPD when a pivot is not positive.
func Factor(a *Matrix) (*Cholesky, error) {
	c := new(Cholesky)
	if err := c.Factorize(a); err != nil {
		return nil, err
	}
	return c, nil
}

// Factorize computes the factorization of a into the receiver, reusing
// its existing storage when the dimension matches. This is the
// allocation-free path for the per-iteration Φ factorizations of the
// inner ALS loop; a is not modified. On error the receiver's previous
// factor is invalid.
func (c *Cholesky) Factorize(a *Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("dense: Cholesky of non-square %d×%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	if c.l == nil || c.l.Rows != n || c.l.Cols != n {
		c.l = NewMatrix(n, n)
	}
	c.n = n
	l := c.l
	l.CopyFrom(a)
	for j := 0; j < n; j++ {
		rowJ := l.Row(j)
		d := rowJ[j]
		for p := 0; p < j; p++ {
			d -= rowJ[p] * rowJ[p]
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("%w (pivot %d = %g)", ErrNotSPD, j, d)
		}
		d = math.Sqrt(d)
		rowJ[j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			rowI := l.Row(i)
			s := rowI[j]
			for p := 0; p < j; p++ {
				s -= rowI[p] * rowJ[p]
			}
			rowI[j] = s * inv
		}
	}
	return nil
}

// FactorRidge factors a + ridge·I without modifying a. CP-stream uses
// this for Φ + ρI in ADMM and Φ + λI ridge solves.
func FactorRidge(a *Matrix, ridge float64) (*Cholesky, error) {
	tmp := a.Clone()
	AddScaledIdentity(tmp, tmp, ridge)
	return Factor(tmp)
}

// N returns the factored dimension.
func (c *Cholesky) N() int { return c.n }

// L returns a copy of the lower-triangular factor with zeroed upper part.
func (c *Cholesky) L() *Matrix {
	out := NewMatrix(c.n, c.n)
	for i := 0; i < c.n; i++ {
		copy(out.Row(i)[:i+1], c.l.Row(i)[:i+1])
	}
	return out
}

// SolveVec solves (L·Lᵀ)·x = b in place: b is overwritten with x.
func (c *Cholesky) SolveVec(b []float64) {
	if len(b) != c.n {
		panic("dense: SolveVec length mismatch")
	}
	// Forward substitution L·y = b.
	for i := 0; i < c.n; i++ {
		row := c.l.Row(i)
		s := b[i]
		for p := 0; p < i; p++ {
			s -= row[p] * b[p]
		}
		b[i] = s / row[i]
	}
	// Back substitution Lᵀ·x = y.
	for i := c.n - 1; i >= 0; i-- {
		s := b[i]
		for p := i + 1; p < c.n; p++ {
			s -= c.l.Data[p*c.l.Stride+i] * b[p]
		}
		b[i] = s / c.l.Data[i*c.l.Stride+i]
	}
}

// SolveRows solves X·(L·Lᵀ) = B for X where B is m×n, overwriting B with
// X row by row. Because L·Lᵀ is symmetric, X = B·(LLᵀ)⁻¹ is obtained by
// solving (LLᵀ)·xᵢᵀ = bᵢᵀ for each row bᵢ. This is exactly the
// "A ← Ψ·Φ⁻¹" update of CP-stream with Ψ stored row-major.
func (c *Cholesky) SolveRows(b *Matrix) {
	if b.Cols != c.n {
		panic("dense: SolveRows column mismatch")
	}
	for i := 0; i < b.Rows; i++ {
		c.SolveVec(b.Row(i))
	}
}

// SolveRowsInto writes the row-solve result into dst without modifying b.
func (c *Cholesky) SolveRowsInto(dst, b *Matrix) {
	if dst.Rows != b.Rows || dst.Cols != b.Cols {
		panic("dense: SolveRowsInto shape mismatch")
	}
	if dst != b {
		dst.CopyFrom(b)
	}
	c.SolveRows(dst)
}

// Inverse returns (L·Lᵀ)⁻¹ as a dense matrix. spCP-stream needs the
// explicit inverse only through products with K×K matrices, so a dense
// inverse of the K×K Φ is cheap and convenient.
func (c *Cholesky) Inverse() *Matrix {
	out := Identity(c.n)
	c.SolveRows(out) // rows of I solved against symmetric LLᵀ gives inverse
	return out
}

// LogDet returns log det(L·Lᵀ) = 2·Σ log L[i][i].
func (c *Cholesky) LogDet() float64 {
	sum := 0.0
	for i := 0; i < c.n; i++ {
		sum += math.Log(c.l.Data[i*c.l.Stride+i])
	}
	return 2 * sum
}

// SolveSPD is a convenience that factors a+ridge·I and solves X·a' = b,
// returning the new X (b unmodified).
func SolveSPD(a *Matrix, ridge float64, b *Matrix) (*Matrix, error) {
	c, err := FactorRidge(a, ridge)
	if err != nil {
		return nil, err
	}
	out := b.Clone()
	c.SolveRows(out)
	return out, nil
}
