package main

import (
	"testing"

	"spstream/internal/synth"
)

func TestBuildConfigPreset(t *testing.T) {
	cfg, err := buildConfig("uber", 0.05, "", 0, 0, 0, 0, 0, 77)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 77 {
		t.Fatal("seed override lost")
	}
	if _, err := synth.Generate(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestBuildConfigCustomUniform(t *testing.T) {
	cfg, err := buildConfig("", 1, "10, 20", 4, 50, 0, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Dists) != 2 || cfg.Dists[0].Dim() != 10 || cfg.Dists[1].Dim() != 20 {
		t.Fatalf("dists = %v", cfg.Dists)
	}
	if cfg.Values != synth.ValueCounts {
		t.Fatal("rank 0 should disable planted values")
	}
	s, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.T() != 4 {
		t.Fatalf("T = %d", s.T())
	}
}

func TestBuildConfigCustomZipfPlanted(t *testing.T) {
	cfg, err := buildConfig("", 1, "30,40", 3, 100, 1.1, 4, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Values != synth.ValuePlanted || cfg.PlantedRank != 4 {
		t.Fatal("planted config lost")
	}
	if cfg.Dists[0].Describe() != "zipf(30, s=1.10)" {
		t.Fatalf("dist = %s", cfg.Dists[0].Describe())
	}
}

func TestBuildConfigErrors(t *testing.T) {
	if _, err := buildConfig("", 1, "", 3, 10, 0, 0, 0, 1); err == nil {
		t.Fatal("no input accepted")
	}
	if _, err := buildConfig("", 1, "10,abc", 3, 10, 0, 0, 0, 1); err == nil {
		t.Fatal("bad dim accepted")
	}
	if _, err := buildConfig("", 1, "10,-3", 3, 10, 0, 0, 0, 1); err == nil {
		t.Fatal("negative dim accepted")
	}
	if _, err := buildConfig("bogus", 1, "", 3, 10, 0, 0, 0, 1); err == nil {
		t.Fatal("bogus preset accepted")
	}
}
