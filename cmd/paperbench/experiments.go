package main

import (
	"fmt"

	"spstream/internal/perfmodel"
	"spstream/internal/roofline"
	"spstream/internal/sptensor"
	"spstream/internal/trace"
)

// table1 prints the ADMM operation cost model (paper Table I) plus the
// fused totals of §IV-A.
func (h *harness) table1() error {
	h.header("Table I — ADMM compute and memory costs per operation",
		"Table I; §IV-A blocked & fused totals")
	i, k := int64(100000), int64(h.rank)
	fmt.Fprintf(h.out, "I=%d K=%d (words are 8-byte doubles)\n\n", i, k)
	fmt.Fprintf(h.out, "%-10s %15s %15s %15s %10s\n", "operation", "flops", "read(words)", "write(words)", "AI(f/B)")
	for _, c := range roofline.ADMMBaselineCosts(i, k) {
		fmt.Fprintf(h.out, "%-10s %15d %15d %15d %10.4f\n", c.Name, c.Flops, c.Read, c.Write, c.Intensity())
	}
	tot := roofline.ADMMBaselineTotal(i, k)
	fused := roofline.ADMMFusedTotal(i, k)
	fmt.Fprintf(h.out, "%-10s %15d %15d %15d %10.4f\n", "total", tot.Flops, tot.Read, tot.Write, tot.Intensity())
	fmt.Fprintf(h.out, "%-10s %15d %15d %15d %10.4f\n", "BF total", fused.Flops, fused.Read, fused.Write, fused.Intensity())
	fmt.Fprintf(h.out, "\nfusion eliminates %.1f%% of memory traffic (paper: \"more than 30%%\")\n",
		100*roofline.TrafficReduction(i, k))
	fmt.Fprintf(h.out, "baseline: 19IK+2IK² flops, 22IK+K² words — matches Table I\n")
	fmt.Fprintf(h.out, "fused:    18IK+2IK² flops, 15IK+K² words — matches §IV-A\n")
	return nil
}

// table2 prints the synthetic dataset inventory next to the FROSTT
// originals (paper Table II).
func (h *harness) table2() error {
	h.header("Table II — datasets (synthetic analogues of the FROSTT originals)",
		"Table II")
	paper := map[string]string{
		"patents": "year(46)ˢ × 239K × 239K, 3.5B nnz",
		"flickr":  "320K × 28M × 1.6M × date(731)ˢ, 113M nnz",
		"uber":    "date(183)ˢ × 24 × 1.1K × 1.7K, 3.3M nnz",
		"nips":    "2.5K × 2.9K × 14K × year(7)ˢ, 3.1M nnz",
	}
	for _, name := range []string{"patents", "flickr", "uber", "nips"} {
		s, err := h.stream(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(h.out, "%-8s paper: %s\n", name, paper[name])
		fmt.Fprintf(h.out, "%-8s here:  dims=%v T=%d nnz=%d (scale %g, streaming mode = slice sequence)\n\n",
			"", s.Dims, s.T(), s.NNZ(), h.scale)
	}
	return nil
}

// fig1 prints per-mode nonzero histograms for a mid-stream Flickr
// slice (paper Fig. 1: the image mode is clustered; others are spread).
func (h *harness) fig1() error {
	h.header("Fig. 1 — histogram of nonzero indices per mode, Flickr mid-stream slice",
		"Fig. 1 (time slice 500 of Flickr)")
	s, err := h.stream("flickr")
	if err != nil {
		return err
	}
	x := s.Slices[s.T()/2]
	const bins = 48
	for mode := 0; mode < x.NModes(); mode++ {
		hist := sptensor.Histogram(x, mode, bins)
		maxC := 0
		for _, c := range hist {
			if c > maxC {
				maxC = c
			}
		}
		st := sptensor.StatsForMode(x, mode)
		fmt.Fprintf(h.out, "mode %d (dim %d, %d nz rows, %.1f%% zero rows, span %.2f):\n",
			mode, st.Dim, st.NonzeroRows, 100*st.ZeroRowFrac, sptensor.OccupiedSpan(x, mode, bins))
		for b, c := range hist {
			fmt.Fprintf(h.out, "  [%2d] %7d %s\n", b, c, bar(c, maxC, 40))
		}
	}
	fmt.Fprintln(h.out, "\nexpected shape: mode 1 (image) occupies a narrow index band; modes 0/2 spread across the range")
	return nil
}

// fig2 compares Blocked & Fused ADMM to the baseline on NIPS for ranks
// 16 and 32 across the thread sweep.
func (h *harness) fig2() error {
	h.header("Fig. 2 — Blocked & Fused ADMM vs baseline, NIPS",
		"Fig. 2 (paper speedups: rank16 2.0→8.1; rank32 1.8→12.3)")
	if h.mode == "measure" {
		return h.measureFig2()
	}
	prof, err := h.profile("nips")
	if err != nil {
		return err
	}
	mo := h.perfModel()
	var rows [][]string
	for _, k := range []int{16, 32} {
		fmt.Fprintf(h.out, "\nrank %d:\n%8s %14s %14s %10s\n", k, "threads", "baseline(s)", "BF(s)", "speedup")
		for _, p := range paperThreads {
			base, bf := 0.0, 0.0
			for _, m := range prof.Modes {
				base += mo.ADMMIterTime(perfmodel.ADMMBaseline, m.Dim, k, p)
				bf += mo.ADMMIterTime(perfmodel.ADMMBlockedFused, m.Dim, k, p)
			}
			fmt.Fprintf(h.out, "%8d %14.6f %14.6f %9.1fx\n", p, base, bf, base/bf)
			rows = append(rows, []string{itoa(k), itoa(p), ftoa(base), ftoa(bf), ftoa(base / bf)})
		}
	}
	return h.writeCSV("fig2", []string{"rank", "threads", "baseline_s", "bf_s", "speedup"}, rows)
}

// fig3 reports ADMM and MTTKRP speedups at full thread count across
// datasets and ranks.
func (h *harness) fig3() error {
	h.header("Fig. 3 — kernel speedups at 56 threads across datasets and ranks",
		"Fig. 3 (paper rank16: ADMM 17.1/8.1/3.3, MTTKRP 50.3/30.6/7.9 for Patents/NIPS/Uber)")
	if h.mode == "measure" {
		return h.measureFig3()
	}
	mo := h.perfModel()
	var rows [][]string
	fmt.Fprintf(h.out, "%6s %-8s %12s %14s\n", "rank", "dataset", "ADMM", "MTTKRP")
	for _, k := range paperRanks {
		for _, name := range []string{"patents", "nips", "uber"} {
			prof, err := h.profile(name)
			if err != nil {
				return err
			}
			base, bf := 0.0, 0.0
			for _, m := range prof.Modes {
				base += mo.ADMMIterTime(perfmodel.ADMMBaseline, m.Dim, k, 56)
				bf += mo.ADMMIterTime(perfmodel.ADMMBlockedFused, m.Dim, k, 56)
			}
			lock := mo.MTTKRPTime(perfmodel.MTTKRPLock, prof, k, 56) + mo.TimeModeUpdateTime(prof, k, 56, true)
			hl := mo.MTTKRPTime(perfmodel.MTTKRPHybrid, prof, k, 56) + mo.TimeModeUpdateTime(prof, k, 56, false)
			fmt.Fprintf(h.out, "%6d %-8s %11.1fx %13.1fx\n", k, name, base/bf, lock/hl)
			rows = append(rows, []string{itoa(k), name, ftoa(base / bf), ftoa(lock / hl)})
		}
	}
	return h.writeCSV("fig3", []string{"rank", "dataset", "admm_speedup", "mttkrp_speedup"}, rows)
}

// fig4 compares Hybrid Lock MTTKRP to the baseline on NIPS across the
// thread sweep for ranks 16 and 128.
func (h *harness) fig4() error {
	h.header("Fig. 4 — Hybrid Lock MTTKRP vs baseline, NIPS",
		"Fig. 4 (paper speedups: rank16 1.2→30.6; rank128 1.4→24.1; baseline degrades with threads)")
	if h.mode == "measure" {
		return h.measureFig4()
	}
	prof, err := h.profile("nips")
	if err != nil {
		return err
	}
	mo := h.perfModel()
	var rows [][]string
	for _, k := range []int{16, 128} {
		fmt.Fprintf(h.out, "\nrank %d:\n%8s %14s %14s %10s\n", k, "threads", "baseline(s)", "HL(s)", "speedup")
		for _, p := range paperThreads {
			lock := mo.MTTKRPTime(perfmodel.MTTKRPLock, prof, k, p) + mo.TimeModeUpdateTime(prof, k, p, true)
			hl := mo.MTTKRPTime(perfmodel.MTTKRPHybrid, prof, k, p) + mo.TimeModeUpdateTime(prof, k, p, false)
			fmt.Fprintf(h.out, "%8d %14.6f %14.6f %9.1fx\n", p, lock, hl, lock/hl)
			rows = append(rows, []string{itoa(k), itoa(p), ftoa(lock), ftoa(hl), ftoa(lock / hl)})
		}
	}
	return h.writeCSV("fig4", []string{"rank", "threads", "baseline_s", "hl_s", "speedup"}, rows)
}

// fig5 reports the overall constrained CP-stream speedup (BF-ADMM +
// HL-MTTKRP vs baseline) at 56 threads.
func (h *harness) fig5() error {
	h.header("Fig. 5 — optimized constrained CP-stream speedup at 56 threads",
		"Fig. 5 (paper rank16: 47.0/21.5/5.1 for Patents/NIPS/Uber; falls with rank)")
	if h.mode == "measure" {
		return h.measureFig5()
	}
	mo := h.perfModel()
	admmIters, err := h.estimateADMMIters()
	if err != nil {
		return err
	}
	fmt.Fprintf(h.out, "(ADMM iterations per mode update estimated from a real constrained run: %d)\n\n", admmIters)
	fmt.Fprintf(h.out, "%6s %-8s %10s\n", "rank", "dataset", "speedup")
	var rows [][]string
	for _, k := range paperRanks {
		for _, name := range []string{"patents", "nips", "uber"} {
			prof, err := h.profile(name)
			if err != nil {
				return err
			}
			b := mo.ConstrainedIterTime(perfmodel.AlgBaseline, prof, k, 56, 6, admmIters)
			o := mo.ConstrainedIterTime(perfmodel.AlgOptimized, prof, k, 56, 6, admmIters)
			fmt.Fprintf(h.out, "%6d %-8s %9.1fx\n", k, name, b/o)
			rows = append(rows, []string{itoa(k), name, ftoa(b / o)})
		}
	}
	return h.writeCSV("fig5", []string{"rank", "dataset", "speedup"}, rows)
}

// fig6 compares spCP-stream and optimized CP-stream to the baseline
// (non-constrained) on NIPS across the thread sweep.
func (h *harness) fig6() error {
	h.header("Fig. 6 — non-constrained: spCP-stream vs optimized vs baseline, NIPS",
		"Fig. 6 (paper rank16 at 56thr: optimized 18.8x, spCP 31.9x; rank128: 10.4x / 12.0x)")
	if h.mode == "measure" {
		return h.measureNonConstrained([]string{"nips"}, []int{16, 128})
	}
	return h.modelNonConstrained("fig6", []string{"nips"}, []int{16, 128})
}

// fig7 is the rank-16 version of fig6 on the remaining datasets.
func (h *harness) fig7() error {
	h.header("Fig. 7 — non-constrained comparison, Patents/Uber/Flickr, rank 16",
		"Fig. 7 (paper at 56thr: Patents N/B 102.2 O/B 54.2; Uber 18.4/6.8; Flickr 14.9/1.9)")
	if h.mode == "measure" {
		return h.measureNonConstrained([]string{"patents", "uber", "flickr"}, []int{16})
	}
	return h.modelNonConstrained("fig7", []string{"patents", "uber", "flickr"}, []int{16})
}

func (h *harness) modelNonConstrained(exp string, datasets []string, ranks []int) error {
	mo := h.perfModel()
	var rows [][]string
	for _, name := range datasets {
		prof, err := h.profile(name)
		if err != nil {
			return err
		}
		for _, k := range ranks {
			fmt.Fprintf(h.out, "\n%s rank %d:\n%8s %12s %12s %12s %8s %8s\n",
				name, k, "threads", "baseline(s)", "optimized(s)", "spCP(s)", "N/B", "O/B")
			for _, p := range paperThreads {
				b := mo.IterTime(perfmodel.AlgBaseline, prof, k, p, 6)
				o := mo.IterTime(perfmodel.AlgOptimized, prof, k, p, 6)
				n := mo.IterTime(perfmodel.AlgSpCP, prof, k, p, 6)
				fmt.Fprintf(h.out, "%8d %12.6f %12.6f %12.6f %7.1fx %7.1fx\n", p, b, o, n, b/n, b/o)
				rows = append(rows, []string{name, itoa(k), itoa(p), ftoa(b), ftoa(o), ftoa(n)})
			}
		}
	}
	return h.writeCSV(exp, []string{"dataset", "rank", "threads", "baseline_s", "optimized_s", "spcp_s"}, rows)
}

// fig8 prints the per-iteration execution time breakdown for Flickr.
func (h *harness) fig8() error {
	h.header("Fig. 8 — per-iteration time breakdown, Flickr rank 16, 56 threads",
		"Fig. 8 (Historical dominates optimized; spCP eliminates it; paper speedups 14.9/7.7/1.0)")
	if h.mode == "measure" {
		return h.measureFig8()
	}
	mo := h.perfModel()
	prof, err := h.profile("flickr")
	if err != nil {
		return err
	}
	algs := []perfmodel.AlgKind{perfmodel.AlgBaseline, perfmodel.AlgOptimized, perfmodel.AlgSpCP}
	base := mo.IterTime(perfmodel.AlgBaseline, prof, 16, 56, 6)
	fmt.Fprintf(h.out, "%-12s %10s %8s", "algorithm", "total(ms)", "speedup")
	for ph := 0; ph < trace.NumPhases; ph++ {
		fmt.Fprintf(h.out, " %10s", trace.Phase(ph))
	}
	fmt.Fprintln(h.out)
	var rows [][]string
	for _, alg := range algs {
		bd := mo.IterBreakdown(alg, prof, 16, 56, 6)
		fmt.Fprintf(h.out, "%-12s %10.3f %7.1fx", alg, bd.Total()*1e3, base/bd.Total())
		row := []string{alg.String(), ftoa(bd.Total())}
		for ph := 0; ph < trace.NumPhases; ph++ {
			fmt.Fprintf(h.out, " %10.4f", bd[ph]*1e3)
			row = append(row, ftoa(bd[ph]))
		}
		fmt.Fprintln(h.out)
		rows = append(rows, row)
	}
	fmt.Fprintln(h.out, "(columns in ms; Historical = cross-Grams + A_{t-1}·Q term)")
	header := []string{"algorithm", "total_s"}
	for ph := 0; ph < trace.NumPhases; ph++ {
		header = append(header, trace.Phase(ph).String())
	}
	return h.writeCSV("fig8", header, rows)
}
