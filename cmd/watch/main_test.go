package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"spstream"
	"spstream/internal/synth"
)

func TestParseDims(t *testing.T) {
	dims, err := parseDims("10, 20,30")
	if err != nil || len(dims) != 3 || dims[1] != 20 {
		t.Fatalf("dims=%v err=%v", dims, err)
	}
	for _, bad := range []string{"", "10", "10,x", "10,-2"} {
		if _, err := parseDims(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestParseEvent(t *testing.T) {
	dims := []int{5, 6}
	ev, err := parseEvent("2 3 1.5", dims)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Coord[0] != 1 || ev.Coord[1] != 2 || ev.Value != 1.5 {
		t.Fatalf("event = %+v", ev)
	}
	// Default value.
	ev, err = parseEvent("1 1", dims)
	if err != nil || ev.Value != 1 {
		t.Fatalf("default value wrong: %+v %v", ev, err)
	}
	for _, bad := range []string{"1", "0 1", "6 1", "1 1 x", "1 1 1 1"} {
		if _, err := parseEvent(bad, dims); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestParseAlg(t *testing.T) {
	if a, err := parseAlg("spcp"); err != nil || a != spstream.SpCPStream {
		t.Fatal("spcp parse wrong")
	}
	if _, err := parseAlg("nope"); err == nil {
		t.Fatal("bad algorithm accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	// Synthesize an event feed with a clear structure.
	r := synth.NewRNG(4)
	var in bytes.Buffer
	for e := 0; e < 2500; e++ {
		i := r.Intn(10) + 1
		j := i // diagonal-ish structure
		if r.Float64() < 0.2 {
			j = r.Intn(10) + 1
		}
		fmt.Fprintf(&in, "%d %d %g\n", i, j, 1+0.1*r.NormFloat64())
	}
	in.WriteString("# a comment\n\n")
	var out bytes.Buffer
	if err := run(&in, &out, []int{10, 10}, 1000, 4, 2, 0.95, spstream.SpCPStream); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Count(s, "window ") != 3 { // 2500 events → 2 full + 1 flush
		t.Fatalf("expected 3 windows:\n%s", s)
	}
	if !strings.Contains(s, "component") || !strings.Contains(s, "fit") {
		t.Fatalf("summary missing fields:\n%s", s)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader(""), &out, []int{5, 5}, 100, 2, 2, 0.9, spstream.SpCPStream); err == nil {
		t.Fatal("empty input accepted")
	}
	if err := run(strings.NewReader("99 1\n"), &out, []int{5, 5}, 100, 2, 2, 0.9, spstream.SpCPStream); err == nil {
		t.Fatal("out-of-range coordinate accepted")
	}
}
