package ingest

import (
	"context"
	"testing"

	"spstream/internal/core"
	"spstream/internal/sptensor"
	"spstream/internal/synth"
)

// BenchmarkIngestPipeline measures the live path end to end: slices
// offered through the bounded queue and solved by a real decomposer,
// so the perf trajectory captures queue overhead alongside the solver.
// Block policy → every slice is processed (the number reported is
// honest slices/op, not sheds/op).
func BenchmarkIngestPipeline(b *testing.B) {
	s, err := synth.Generate(synth.Config{
		Name:        "bench",
		Dists:       []synth.IndexDist{synth.Uniform{N: 50}, synth.Uniform{N: 60}},
		T:           8,
		NNZPerSlice: 2000,
		Values:      synth.ValuePlanted,
		PlantedRank: 4,
		NoiseStd:    0.01,
		Seed:        1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dec, err := core.NewDecomposer(s.Dims, core.Options{Rank: 8, Algorithm: core.Optimized, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		p, err := New(dec, Config{QueueCap: 4, Policy: Block})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		p.Start(context.Background())
		for _, x := range s.Slices {
			if err := p.Offer(x.Clone()); err != nil {
				b.Fatal(err)
			}
		}
		snap := p.Drain(context.Background())
		if snap.Processed != int64(len(s.Slices)) {
			b.Fatalf("processed %d of %d", snap.Processed, len(s.Slices))
		}
	}
}

// BenchmarkIngestQueueOnly isolates the queue from the solver: a no-op
// processor, so ns/op ≈ per-slice queue overhead.
func BenchmarkIngestQueueOnly(b *testing.B) {
	x := testSlice(1)
	p, err := New(nopProcessor{}, Config{QueueCap: 64, Policy: Block})
	if err != nil {
		b.Fatal(err)
	}
	p.Start(context.Background())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Offer(x); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	p.Drain(context.Background())
}

type nopProcessor struct{}

func (nopProcessor) ProcessSliceContext(context.Context, *sptensor.Tensor) (core.SliceResult, error) {
	return core.SliceResult{}, nil
}
