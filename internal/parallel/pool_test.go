package parallel

import (
	"sync"
	"testing"
)

func TestPoolForMatchesPartition(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{0, 1, 3, 10, 97, 1000} {
		for _, workers := range []int{1, 2, 4} {
			seen := make([]bool, n)
			var mu sync.Mutex
			p.For(n, workers, func(w int, r Range) {
				mu.Lock()
				defer mu.Unlock()
				for i := r.Lo; i < r.Hi; i++ {
					if seen[i] {
						t.Errorf("n=%d w=%d: index %d visited twice", n, workers, i)
					}
					seen[i] = true
				}
			})
			for i, ok := range seen {
				if !ok {
					t.Fatalf("n=%d workers=%d: index %d not visited", n, workers, i)
				}
			}
		}
	}
}

func TestPoolWorkerRangeMatchesPartition(t *testing.T) {
	for n := 1; n < 50; n++ {
		for workers := 1; workers <= n && workers <= 8; workers++ {
			ranges := Partition(n, workers)
			for w, want := range ranges {
				if got := workerRange(n, workers, w); got != want {
					t.Fatalf("workerRange(%d,%d,%d)=%v want %v", n, workers, w, got, want)
				}
			}
		}
	}
}

func TestPoolChunkedMatchesFreeFunction(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	n, chunk := 1000, 64
	got := make([]int, n)
	p.ForChunked(n, 3, chunk, func(w int, r Range) {
		for i := r.Lo; i < r.Hi; i++ {
			got[i] = w
		}
	})
	// Round-robin: chunk c goes to worker c mod workers.
	for i := range got {
		want := (i / chunk) % 3
		if got[i] != want {
			t.Fatalf("index %d ran on worker %d, want %d", i, got[i], want)
		}
	}
}

func TestPoolReduceDeterministic(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = 1.0 / float64(i+1)
	}
	body := func(_ int, r Range) float64 {
		s := 0.0
		for i := r.Lo; i < r.Hi; i++ {
			s += vals[i]
		}
		return s
	}
	first := p.ReduceFloat64(len(vals), 4, body)
	for trial := 0; trial < 10; trial++ {
		if again := p.ReduceFloat64(len(vals), 4, body); again != first {
			t.Fatalf("trial %d: %v != %v", trial, again, first)
		}
	}
}

func TestPoolReduceVecIntoOverwritesDst(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	dst := []float64{9, 9, 9}
	p.DoReduceVecInto(dst, 8, 4, nil, func(_ any, _ int, r Range, acc []float64) {
		for i := r.Lo; i < r.Hi; i++ {
			acc[0]++
			acc[2] += 2
		}
	})
	if dst[0] != 8 || dst[1] != 0 || dst[2] != 16 {
		t.Fatalf("dst = %v", dst)
	}
	// n == 0 must still zero dst.
	p.DoReduceVecInto(dst, 0, 4, nil, func(_ any, _ int, _ Range, _ []float64) {})
	if dst[0] != 0 || dst[2] != 0 {
		t.Fatalf("dst not zeroed on empty reduction: %v", dst)
	}
}

// Nested dispatch on the same pool must fall back to the spawn path
// rather than deadlock, and outer worker IDs stay stable.
func TestPoolNestedDispatch(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var total int64
	var mu sync.Mutex
	p.For(4, 4, func(w int, r Range) {
		p.For(10, 2, func(_ int, inner Range) {
			mu.Lock()
			total += int64(inner.Hi - inner.Lo)
			mu.Unlock()
		})
	})
	if total != 40 {
		t.Fatalf("nested total = %d, want 40", total)
	}
}

// Concurrent dispatch from independent goroutines: one wins the pool,
// the others take the spawn fallback; all must complete correctly.
func TestPoolConcurrentDispatch(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				got := p.ReduceFloat64(1000, 4, func(_ int, r Range) float64 {
					return float64(r.Hi - r.Lo)
				})
				if got != 1000 {
					t.Errorf("reduce = %v, want 1000", got)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Requesting more workers than the pool holds must still run all work
// (via the spawn fallback).
func TestPoolOversubscribed(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var count int64
	var mu sync.Mutex
	p.For(100, 8, func(_ int, r Range) {
		mu.Lock()
		count += int64(r.Hi - r.Lo)
		mu.Unlock()
	})
	if count != 100 {
		t.Fatalf("count = %d", count)
	}
}

// The steady-state ctx-style primitives must not allocate: the worker
// goroutines are parked, the descriptor lives in pool fields, and the
// reduction arenas are pool-owned. Closure captures would break this, so
// the bodies below are top-level functions with a pointer ctx.
type poolAllocArgs struct {
	vals []float64
	out  []float64
}

func poolAllocForBody(ctx any, _ int, r Range) {
	a := ctx.(*poolAllocArgs)
	for i := r.Lo; i < r.Hi; i++ {
		a.out[i] = 2 * a.vals[i]
	}
}

func poolAllocReduceBody(ctx any, _ int, r Range) float64 {
	a := ctx.(*poolAllocArgs)
	s := 0.0
	for i := r.Lo; i < r.Hi; i++ {
		s += a.vals[i]
	}
	return s
}

func poolAllocReduceVecBody(ctx any, _ int, r Range, acc []float64) {
	a := ctx.(*poolAllocArgs)
	for i := r.Lo; i < r.Hi; i++ {
		acc[i%len(acc)] += a.vals[i]
	}
}

func TestPoolSteadyStateZeroAlloc(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	args := &poolAllocArgs{vals: make([]float64, 4096), out: make([]float64, 4096)}
	for i := range args.vals {
		args.vals[i] = float64(i)
	}
	dst := make([]float64, 16)
	// Warm up: grows the vector-reduction arenas once.
	p.DoReduceVecInto(dst, len(args.vals), 4, args, poolAllocReduceVecBody)
	cases := map[string]func(){
		"Do": func() { p.Do(len(args.vals), 4, args, poolAllocForBody) },
		"DoChunked": func() {
			p.DoChunked(len(args.vals), 4, 256, args, poolAllocForBody)
		},
		"DoReduceFloat64": func() {
			_ = p.DoReduceFloat64(len(args.vals), 4, args, poolAllocReduceBody)
		},
		"DoReduceVecInto": func() {
			p.DoReduceVecInto(dst, len(args.vals), 4, args, poolAllocReduceVecBody)
		},
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs per run, want 0", name, allocs)
		}
	}
}

func TestDefaultPoolWrappers(t *testing.T) {
	// The free functions must dispatch through the default pool and keep
	// their documented semantics.
	if Default() != Default() {
		t.Fatal("Default must return a singleton")
	}
	sum := ReduceFloat64(100, 4, func(_ int, r Range) float64 { return float64(r.Hi - r.Lo) })
	if sum != 100 {
		t.Fatalf("wrapper ReduceFloat64 = %v", sum)
	}
	vec := ReduceVec(10, 2, 3, func(_ int, r Range, acc []float64) {
		acc[1] += float64(r.Hi - r.Lo)
	})
	if vec[1] != 10 || vec[0] != 0 {
		t.Fatalf("wrapper ReduceVec = %v", vec)
	}
}
