package ooc

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"spstream/internal/sptensor"
)

// randomTensor builds a deterministic random tensor, optionally with
// duplicate coordinates and heavy skew.
func randomTensor(t testing.TB, dims []int, nnz int, seed int64, skew bool) *sptensor.Tensor {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := sptensor.New(dims...)
	coord := make([]int32, len(dims))
	for e := 0; e < nnz; e++ {
		for m, d := range dims {
			if skew && rng.Intn(3) == 0 {
				coord[m] = int32(rng.Intn(1 + d/10))
			} else {
				coord[m] = int32(rng.Intn(d))
			}
		}
		x.Append(coord, rng.NormFloat64())
	}
	return x
}

func writeRead(t *testing.T, x *sptensor.Tensor, target int) *BlockReader {
	t.Helper()
	path := filepath.Join(t.TempDir(), "x.spblk")
	if err := WriteTensor(path, x, target); err != nil {
		t.Fatalf("WriteTensor: %v", err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// expectGridSort returns the stable grid-sort of x under the layout the
// writer will pick — the canonical materialization of the file.
func expectGridSort(x *sptensor.Tensor, target int) *sptensor.Tensor {
	lay := Layout{Dims: x.Dims, Splits: BlockShape(x.Dims, x.NNZ(), target)}
	out := x.Clone()
	n := x.NNZ()
	type keyed struct {
		rank int64
		pos  int
	}
	keys := make([]keyed, n)
	for e := 0; e < n; e++ {
		r := int64(0)
		for m := range x.Dims {
			r = r*int64(lay.GridDim(m)) + int64(lay.GridCoord(m, x.Inds[m][e]))
		}
		keys[e] = keyed{r, e}
	}
	// Insertion-sort stability via pos tiebreak.
	for i := 1; i < n; i++ {
		k := keys[i]
		j := i - 1
		for j >= 0 && (keys[j].rank > k.rank) {
			keys[j+1] = keys[j]
			j--
		}
		keys[j+1] = k
	}
	for i, k := range keys {
		for m := range x.Dims {
			out.Inds[m][i] = x.Inds[m][k.pos]
		}
		out.Vals[i] = x.Vals[k.pos]
	}
	return out
}

func tensorsEqual(a, b *sptensor.Tensor) bool {
	if a.NNZ() != b.NNZ() || a.NModes() != b.NModes() {
		return false
	}
	for m := range a.Dims {
		if a.Dims[m] != b.Dims[m] {
			return false
		}
		for e := range a.Inds[m] {
			if a.Inds[m][e] != b.Inds[m][e] {
				return false
			}
		}
	}
	for e, v := range a.Vals {
		if b.Vals[e] != v {
			return false
		}
	}
	return true
}

func TestWriteReadRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		x      *sptensor.Tensor
		target int
	}{
		{"small3", randomTensor(t, []int{40, 30, 50}, 2000, 1, false), 256},
		{"skewed", randomTensor(t, []int{100, 200, 60}, 5000, 2, true), 512},
		{"mode4", randomTensor(t, []int{9, 8, 7, 6}, 900, 3, false), 100},
		{"oneblock", randomTensor(t, []int{20, 20}, 50, 4, false), 1 << 20},
		{"degenerate", randomTensor(t, []int{1, 1, 1}, 10, 5, false), 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := writeRead(t, tc.x, tc.target)
			if r.NNZ() != tc.x.NNZ() {
				t.Fatalf("NNZ = %d, want %d", r.NNZ(), tc.x.NNZ())
			}
			got, err := sptensor.MaterializeBlocks(r)
			if err != nil {
				t.Fatalf("MaterializeBlocks: %v", err)
			}
			want := expectGridSort(tc.x, tc.target)
			if !tensorsEqual(got, want) {
				t.Fatalf("materialized blocks differ from stable grid-sort of input")
			}
			// Blocks must honour their extents and ascending rank.
			lastRank := int64(-1)
			for b := 0; b < r.Blocks(); b++ {
				rank := r.Layout().Rank(r.BlockGrid(b))
				if rank <= lastRank {
					t.Fatalf("block %d rank %d not ascending", b, rank)
				}
				lastRank = rank
				blk, err := r.Block(b)
				if err != nil {
					t.Fatalf("Block(%d): %v", b, err)
				}
				for m := range blk.Inds {
					lo, hi := r.Extent(b, m)
					for _, c := range blk.Inds[m] {
						if c < lo || c >= hi {
							t.Fatalf("block %d mode %d coord %d outside [%d,%d)", b, m, c, lo, hi)
						}
					}
				}
			}
		})
	}
}

func TestBlockShape(t *testing.T) {
	dims := []int{1000, 10, 1000}
	splits := BlockShape(dims, 1<<20, 1<<12)
	prod := 1
	for m, s := range splits {
		if s < 1 || s > dims[m] {
			t.Fatalf("split %d out of range: %v", m, splits)
		}
		prod *= s
	}
	if prod < 256 { // ⌈2^20/2^12⌉ = 256 blocks wanted
		t.Fatalf("grid of %d blocks cannot reach the target: %v", prod, splits)
	}
	// The long modes should absorb nearly all splitting.
	if splits[1] > 2 || splits[0] < 8 || splits[2] < 8 {
		t.Fatalf("unbalanced shape %v for dims %v", splits, dims)
	}
	// Tiny tensors stay monolithic.
	one := BlockShape([]int{5, 5}, 100, 1000)
	if one[0] != 1 || one[1] != 1 {
		t.Fatalf("small tensor split %v, want [1 1]", one)
	}
}

func TestConvertTNSMatchesWriteTensor(t *testing.T) {
	x := randomTensor(t, []int{60, 45, 80}, 4000, 7, true)
	dir := t.TempDir()
	tns := filepath.Join(dir, "x.tns")
	if err := sptensor.WriteTNSFile(tns, x); err != nil {
		t.Fatal(err)
	}
	direct := filepath.Join(dir, "direct.spblk")
	if err := WriteTensor(direct, x, 300); err != nil {
		t.Fatal(err)
	}
	// Tiny budget forces many sort runs; the merged output must still
	// be byte-identical to the in-memory write.
	conv := filepath.Join(dir, "conv.spblk")
	st, err := ConvertTNS(tns, conv, ConvertOptions{TargetBlockNNZ: 300, MemBudget: 64 << 10})
	if err != nil {
		t.Fatalf("ConvertTNS: %v", err)
	}
	if st.Runs < 2 {
		t.Fatalf("budget of 64KiB produced %d runs; external path not exercised", st.Runs)
	}
	if st.NNZ != x.NNZ() {
		t.Fatalf("converted %d nonzeros, want %d", st.NNZ, x.NNZ())
	}
	a, err := os.ReadFile(direct)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(conv)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("converter output differs from in-memory WriteTensor (%d vs %d bytes)", len(b), len(a))
	}
	// No stray run files left beside the output.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "x.tns" && e.Name() != "direct.spblk" && e.Name() != "conv.spblk" {
			t.Fatalf("leftover temp file %q", e.Name())
		}
	}
}

func TestConvertTNSRejectsTooManyModes(t *testing.T) {
	dir := t.TempDir()
	tns := filepath.Join(dir, "big.tns")
	line := ""
	for m := 0; m < MaxModes+1; m++ {
		line += "1 "
	}
	line += "2.5\n"
	if err := os.WriteFile(tns, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ConvertTNS(tns, filepath.Join(dir, "big.spblk"), ConvertOptions{}); err == nil {
		t.Fatal("expected a mode-count error")
	}
}

func TestReaderRejectsCorruption(t *testing.T) {
	x := randomTensor(t, []int{30, 30, 30}, 1500, 11, false)
	path := filepath.Join(t.TempDir(), "x.spblk")
	if err := WriteTensor(path, x, 200); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(name string, f func(b []byte) []byte) {
		t.Run(name, func(t *testing.T) {
			b := f(append([]byte(nil), orig...))
			p := filepath.Join(t.TempDir(), "bad.spblk")
			if err := os.WriteFile(p, b, 0o644); err != nil {
				t.Fatal(err)
			}
			r, err := Open(p)
			if err != nil {
				return // rejected at open: fine
			}
			defer r.Close()
			for blk := 0; blk < r.Blocks(); blk++ {
				if _, err := r.Block(blk); err != nil {
					return // rejected at decode: fine
				}
			}
			t.Fatal("corrupted file fully readable")
		})
	}
	mutate("badmagic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	mutate("badendmagic", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b })
	mutate("truncated", func(b []byte) []byte { return b[:len(b)/2] })
	mutate("truncated-tail", func(b []byte) []byte { return b[:len(b)-3] })
	mutate("bitflip-payload", func(b []byte) []byte { b[len(Magic)+sectionHeaderLen+9] ^= 0x10; return b })
	mutate("bitflip-footer-offset", func(b []byte) []byte { b[len(b)-12] ^= 0x01; return b })
	mutate("zero-footer-offset", func(b []byte) []byte {
		for i := len(b) - 16; i < len(b)-8; i++ {
			b[i] = 0
		}
		return b
	})
}

func BenchmarkBlockDecode(b *testing.B) {
	x := randomTensor(b, []int{200, 200, 200}, 1<<17, 3, false)
	path := filepath.Join(b.TempDir(), "x.spblk")
	if err := WriteTensor(path, x, 1<<14); err != nil {
		b.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	// Warm pass verifies CRCs so the loop measures steady-state decode.
	for blk := 0; blk < r.Blocks(); blk++ {
		if _, err := r.Block(blk); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.SetBytes(int64(x.NNZ()) * int64(entryBytes(3)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for blk := 0; blk < r.Blocks(); blk++ {
			if _, err := r.Block(blk); err != nil {
				b.Fatal(err)
			}
		}
	}
}
