package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"spstream/internal/core"
	"spstream/internal/sptensor"
	"spstream/internal/trace"
)

// Processor consumes slices; implemented by core.Decomposer.
type Processor interface {
	ProcessSliceContext(ctx context.Context, x *sptensor.Tensor) (core.SliceResult, error)
}

// overloadNoter lets the pipeline fold its shed counters into the
// decomposer's recovery stats at drain time; implemented by
// core.Decomposer.
type overloadNoter interface {
	NoteOverload(shed, coalesced, stale, drained int)
}

// spillNoter folds the durable-backlog counters into the decomposer's
// recovery stats at drain time; implemented by core.Decomposer.
type spillNoter interface {
	NoteSpill(spilled, replayed, pending int)
}

// ErrDraining is returned by Offer once Drain has begun (or the
// pipeline's context ended); the offered slice is accounted as shed.
var ErrDraining = errors.New("ingest: pipeline is draining")

// ErrGateClosed is returned by Offer/Admit when the admission gate
// (Config.Gate — the serving layer's circuit breaker) refused the
// slice; it is accounted as a breaker shed.
var ErrGateClosed = errors.New("ingest: admission gate closed (circuit breaker open)")

// ErrQueueFull is returned by Admit when the full-queue policy shed
// the offered slice instead of queueing it (DropNewest). Offer keeps
// its fire-and-forget contract and returns nil for policy sheds; Admit
// exists for admission-controlled producers (the HTTP serving layer)
// that must translate the shed into backpressure (429 Retry-After).
var ErrQueueFull = errors.New("ingest: queue full, slice shed")

// Config parameterizes a Pipeline. The zero value is a bounded
// blocking (backpressure) pipeline with no lag shedding and no
// degradation.
type Config struct {
	// QueueCap bounds the producer→consumer backlog, in slices.
	// Default 8. Memory is therefore bounded by QueueCap windows (plus
	// the slice being solved), whatever the producer does.
	QueueCap int
	// Policy selects what happens to new slices when the queue is
	// full. Default Block.
	Policy ShedPolicy
	// MaxLag, when positive, is the admission-to-solve deadline: a
	// slice older than MaxLag at pop time is shed without solving, and
	// the deadline is propagated through ProcessSliceContext so a
	// solve that starts in time but overruns is abandoned at an
	// iteration boundary (rolled back when resilience is configured).
	MaxLag time.Duration
	// Degrade, when non-nil, arms the lag-aware degradation
	// controller; the Processor must then implement Tunable.
	Degrade *ControllerConfig
	// DrainTimeout bounds how long Drain processes the backlog before
	// shedding what remains. Default 30s.
	DrainTimeout time.Duration
	// OnResult, when non-nil, is invoked from the consumer goroutine
	// after every successfully processed slice.
	OnResult func(core.SliceResult)
	// OnError, when non-nil, is invoked for per-slice errors the
	// pipeline absorbed (failed or skipped slices); fatal errors
	// surface from Drain instead.
	OnError func(error)
	// Clock replaces time.Now (testing). With a non-standard clock the
	// context-deadline propagation is disabled (the fake instants are
	// meaningless to the runtime timer); pop-time staleness shedding
	// still applies.
	Clock func() time.Time
	// Gate, when non-nil, is consulted before every Offer/Admit touches
	// the queue; a false return sheds the slice (counted in
	// ShedBreaker) and surfaces ErrGateClosed to the producer. The
	// serving layer wires its circuit breaker's Allow here so an
	// unhealthy solver stops admissions at the front door, keeping the
	// accounting invariant produced == processed+failed+coalesced+shed
	// exact across breaker-open phases.
	Gate func() bool
	// Spill configures the durable on-disk backlog; required by (and
	// only meaningful with) the Spill policy.
	Spill *SpillConfig
}

// Pipeline is the bounded, overload-robust conveyor between a slice
// producer and a Processor. Producers call Offer (any goroutine);
// Start launches the consumer loop; Drain performs the graceful
// shutdown. Counters live in a trace.Overload and satisfy, after
// Drain:
//
//	produced == processed + failed + coalesced + shed
type Pipeline struct {
	cfg      Config
	proc     Processor
	ctrl     *Controller
	q        *queue
	sp       *spiller
	ov       trace.Overload
	clock    func() time.Time
	realTime bool

	// consumedSeq is the highest WAL sequence number of a slice the
	// consumer fully finished (processed, failed, or stale-shed —
	// outcomes an uncrashed run would reproduce). SpillMark binds it to
	// a checkpoint so replay after a crash is exactly-once.
	consumedSeq atomic.Uint64

	cancel context.CancelFunc
	done   chan struct{}
}

// New validates the configuration and builds a pipeline around proc.
func New(proc Processor, cfg Config) (*Pipeline, error) {
	if proc == nil {
		return nil, errors.New("ingest: nil processor")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 8
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	p := &Pipeline{cfg: cfg, proc: proc, clock: cfg.Clock, realTime: cfg.Clock == nil}
	if p.clock == nil {
		p.clock = time.Now
	}
	if cfg.Degrade != nil {
		tun, ok := proc.(Tunable)
		if !ok {
			return nil, fmt.Errorf("ingest: degradation requires a Tunable processor, got %T", proc)
		}
		p.ctrl = NewController(tun, *cfg.Degrade, &p.ov)
	}
	p.q = newQueue(cfg.QueueCap, cfg.Policy, p.clock, &p.ov)
	if cfg.Policy == Spill {
		if cfg.Spill == nil {
			return nil, errors.New("ingest: Spill policy requires Config.Spill")
		}
		sp, err := newSpiller(*cfg.Spill, p.q, &p.ov, p.clock)
		if err != nil {
			return nil, err
		}
		p.sp = sp
	} else if cfg.Spill != nil {
		return nil, fmt.Errorf("ingest: Config.Spill is only valid with the Spill policy, got %v", cfg.Policy)
	}
	p.done = make(chan struct{})
	return p, nil
}

// Start launches the consumer loop. The context cancels in-flight and
// future work (an emergency stop); use Drain for a graceful shutdown.
func (p *Pipeline) Start(ctx context.Context) {
	ctx, p.cancel = context.WithCancel(ctx)
	if p.sp != nil {
		p.sp.start()
	}
	go p.loop(ctx)
}

// Offer submits one slice from a producer. Under the Block policy it
// waits for queue space (backpressure); under the shedding policies it
// returns immediately. Every offered slice is counted exactly once:
// queued, shed, or coalesced. After Drain begins, Offer returns
// ErrDraining (the slice is accounted as drain-shed); a closed
// admission gate returns ErrGateClosed. Policy sheds return nil — a
// fire-and-forget feed should keep feeding.
func (p *Pipeline) Offer(x *sptensor.Tensor) error {
	err := p.admit(x)
	if errors.Is(err, ErrQueueFull) {
		return nil
	}
	return err
}

// Admit is Offer for admission-controlled producers: identical
// accounting, but sheds at the admission boundary are reported —
// ErrGateClosed when the gate (circuit breaker) refused, ErrQueueFull
// when the DropNewest policy shed the slice, ErrDraining after Drain
// began. Under DropOldest/Coalesce the new slice is always absorbed
// (nil), at the cost of older data; under Block, Admit waits like
// Offer does.
func (p *Pipeline) Admit(x *sptensor.Tensor) error {
	return p.admit(x)
}

// admit is the shared admission path; it classifies every produced
// slice exactly once.
func (p *Pipeline) admit(x *sptensor.Tensor) error {
	p.ov.Produced.Add(1)
	if p.cfg.Gate != nil && !p.cfg.Gate() {
		p.ov.ShedBreaker.Add(1)
		return ErrGateClosed
	}
	if p.sp != nil {
		if p.q.isClosed() {
			p.ov.ShedDrain.Add(1)
			return ErrDraining
		}
		// Queue if room and no backlog ahead, else durably to the WAL;
		// an error means the slice could not be made durable (shed).
		return p.sp.admit(x)
	}
	if !p.q.push(x) {
		// push already classified the slice (shed or coalesced); the
		// producer-visible errors are a closed queue and a DropNewest
		// shed.
		if p.q.isClosed() {
			return ErrDraining
		}
		if p.cfg.Policy == DropNewest {
			return ErrQueueFull
		}
	}
	return nil
}

// WindowFactor returns the degradation controller's current window
// multiplier (1 without a controller). Producers poll it between
// events to widen their accumulation window under load.
func (p *Pipeline) WindowFactor() int {
	if p.ctrl == nil {
		return 1
	}
	return p.ctrl.WindowFactor()
}

// Level returns the controller's ladder level (0 without a controller).
func (p *Pipeline) Level() int {
	if p.ctrl == nil {
		return 0
	}
	return p.ctrl.Level()
}

// Depth returns the current queue backlog, in slices.
func (p *Pipeline) Depth() int { return p.q.depth() }

// SpillPending returns the durable backlog not yet re-admitted to the
// queue (0 without the Spill policy).
func (p *Pipeline) SpillPending() int64 {
	if p.sp == nil {
		return 0
	}
	return int64(p.sp.pending())
}

// SpillDiskBytes returns the WAL's on-disk footprint (0 without the
// Spill policy).
func (p *Pipeline) SpillDiskBytes() int64 {
	if p.sp == nil {
		return 0
	}
	return p.sp.log.DiskBytes()
}

// SpillMark durably binds the checkpoint about to be written at slice
// counter t to the pipeline's spill-consumption progress. Call it
// immediately BEFORE writing checkpoint t: if the process dies between
// the two writes, restore falls back to an older checkpoint whose
// offset record is retained, and replay stays exactly-once with
// respect to committed slices. A pipeline without the Spill policy
// returns nil.
func (p *Pipeline) SpillMark(t int) error {
	if p.sp == nil {
		return nil
	}
	return p.sp.commitOffset(t, p.consumedSeq.Load())
}

// Kill is the crash simulation used by the durability tests: it stops
// the consumer and refiller immediately and closes the WAL WITHOUT
// flushing the group commit or committing an offset — exactly the
// state a SIGKILL leaves behind. Production shutdown is Drain.
func (p *Pipeline) Kill() {
	started := p.cancel != nil
	if started {
		p.cancel()
	}
	p.q.kill()
	if p.sp != nil {
		p.sp.kill()
		if started {
			p.sp.wait()
		}
		p.sp.abort()
	}
	if started {
		<-p.done
	}
}

// Stats snapshots the overload counters.
func (p *Pipeline) Stats() trace.OverloadSnapshot { return p.ov.Snapshot() }

// loop is the consumer: pop, staleness check, solve with the
// propagated deadline, controller observation.
func (p *Pipeline) loop(ctx context.Context) {
	defer close(p.done)
	for {
		if ctx.Err() != nil {
			return
		}
		it, ok := p.q.pop()
		if !ok {
			return
		}
		p.consume(ctx, it)
		if ctx.Err() != nil {
			return
		}
	}
}

// consume handles one popped item end to end.
func (p *Pipeline) consume(ctx context.Context, it item) {
	lag := p.clock().Sub(it.admitted)
	if p.cfg.MaxLag > 0 && lag > p.cfg.MaxLag {
		// Stale before solving: shedding now is strictly better than
		// spending solver time on a window the feed has already
		// outrun.
		p.ov.ShedStale.Add(1)
		p.markConsumed(it)
		p.observe(lag)
		return
	}
	sctx := ctx
	if p.cfg.MaxLag > 0 && p.realTime {
		var cancel context.CancelFunc
		sctx, cancel = context.WithDeadline(ctx, it.admitted.Add(p.cfg.MaxLag))
		defer cancel()
	}
	res, err := p.proc.ProcessSliceContext(sctx, it.slice)
	switch {
	case err == nil:
		p.ov.Processed.Add(1)
		p.markConsumed(it)
		if p.cfg.OnResult != nil {
			p.cfg.OnResult(res)
		}
	case errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
		// The propagated lag deadline expired mid-solve: the slice is
		// stale, same accounting as shedding it before the solve.
		p.ov.ShedStale.Add(1)
		p.markConsumed(it)
		if p.cfg.OnError != nil {
			p.cfg.OnError(err)
		}
	case ctx.Err() != nil:
		// Emergency stop: the item was popped but not completed; count
		// it with the drain sheds so the accounting stays exact. The
		// consumed mark is NOT advanced — a spilled slice stopped
		// mid-solve stays below any committed offset and replays after
		// restart.
		p.ov.ShedDrain.Add(1)
		return
	default:
		// Solver error (or a slice skipped by the resilience policy):
		// absorbed, counted, stream continues.
		p.ov.Failed.Add(1)
		p.markConsumed(it)
		if p.cfg.OnError != nil {
			p.cfg.OnError(err)
		}
	}
	p.observe(p.clock().Sub(it.admitted))
}

// markConsumed records that a slice's outcome is final. For spilled
// slices this advances the replay offset candidate: an outcome an
// uncrashed run would reproduce (processed into state; failed or
// stale-shed and skipped) must not replay after a crash, or recovery
// diverges from the uncrashed run.
func (p *Pipeline) markConsumed(it item) {
	if it.walSeq > p.consumedSeq.Load() {
		// Single consumer goroutine: plain store ordering is enough.
		p.consumedSeq.Store(it.walSeq)
	}
}

// observe feeds the controller (when armed) one measurement.
func (p *Pipeline) observe(lag time.Duration) {
	if p.ctrl != nil {
		p.ctrl.Observe(p.q.depth(), p.cfg.QueueCap, lag, p.SpillPending())
	}
}

// Drain performs the graceful shutdown: admissions stop, the backlog
// is processed until done or the drain deadline (Config.DrainTimeout,
// further bounded by ctx), and anything still queued is shed and
// counted. It then folds the shed/coalesced counters into the
// processor's recovery stats (when it is a core.Decomposer) and
// returns the final counter snapshot. Drain must be called exactly
// once, after producers have stopped offering.
func (p *Pipeline) Drain(ctx context.Context) trace.OverloadSnapshot {
	preDrain := p.ov.Processed.Load()
	p.q.close()
	if p.sp != nil {
		// No more spills are coming; the refiller flushes the durable
		// backlog into the queue and exits, which lets the consumer's
		// pop report exhaustion.
		p.sp.closeAdmissions()
	}
	timer := time.NewTimer(p.cfg.DrainTimeout)
	defer timer.Stop()
	graceful := false
	select {
	case <-p.done:
		graceful = true
	case <-timer.C:
	case <-ctx.Done():
	}
	if !graceful {
		// Deadline: stop the consumer and refiller, then account the
		// backlog. Direct-queued slices are shed; spilled slices are
		// returned to the durable backlog — they are on disk below any
		// committed offset, so the next run replays them instead.
		if p.cancel != nil {
			p.cancel()
		}
		if p.sp != nil {
			// Wake a refiller blocked waiting for queue space, then
			// wait it out; its in-flight record stays durable on disk.
			p.q.kill()
			p.sp.kill()
			p.sp.wait()
		}
		<-p.done
		for {
			it, ok := p.q.tryPop()
			if !ok {
				break
			}
			if it.walSeq > 0 {
				p.sp.requeue()
			} else {
				p.ov.ShedDrain.Add(1)
			}
		}
	} else if p.sp != nil {
		p.sp.wait()
	}
	if p.sp != nil {
		// Bind the final consumption point to the processor's slice
		// counter so a restart does not replay slices this run already
		// committed, then flush and close the WAL. Callers writing a
		// final checkpoint after Drain (the serving layer) re-commit
		// the same pair via SpillMark first — both orders are safe
		// because the offset always precedes its checkpoint.
		if t, ok := p.proc.(interface{ T() int }); ok {
			_ = p.sp.commitOffset(t.T(), p.consumedSeq.Load())
		}
		if err := p.sp.close(); err != nil && p.cfg.OnError != nil {
			p.cfg.OnError(err)
		}
	}
	snap := p.ov.Snapshot()
	if n, ok := p.proc.(overloadNoter); ok {
		n.NoteOverload(int(snap.Shed()), int(snap.Coalesced), int(snap.ShedStale),
			int(snap.Processed-preDrain))
		if sn, ok := p.proc.(spillNoter); ok && p.sp != nil {
			sn.NoteSpill(int(snap.Spilled), int(snap.SpillDrained), int(snap.SpillPending()))
		}
	}
	return snap
}
