// Package ooc implements the out-of-core block-slice tensor format
// (SPBLK001) and its bounded-memory tooling: an atomic sequential
// writer, an mmap-backed random-access BlockReader implementing
// sptensor.BlockSource, and an external-sort converter from FROSTT
// text. The format partitions a sparse tensor into balanced
// hyper-rectangular coordinate blocks (the Ballard/Rouse/Knight
// block-shape rule, shape.go) so blocked kernels touch one block's
// working set at a time while the whole file stays on disk.
//
// File layout (all integers little-endian):
//
//	[8]  magic "SPBLK001"
//	     one section per non-empty block, in ascending row-major grid
//	     order:
//	[4]    crc32 (IEEE) of the payload
//	[8]    payload length
//	         payload: [8] nnz, then per mode nnz×[4] int32
//	         coordinates (columnar), then nnz×[8] float64 values
//	     footer section (same crc+len framing):
//	         [8] nModes, nModes×[8] dims, [8] total nnz,
//	         nModes×[8] grid splits, [8] nBlocks, then per block:
//	         nModes×[4] grid coordinate, [8] file offset, [8] nnz
//	[8]  footer offset
//	[8]  end magic "SPBLKEND"
//
// Block extents are derived from dims and splits (Layout), never
// stored, so distinct grid coordinates cannot overlap by construction;
// the reader rejects any index whose grid ranks are not strictly
// increasing, which is exactly the overlapping/duplicated-extent
// corruption class. The trailer carries the footer offset so a reader
// can locate metadata without scanning block sections, and the end
// magic distinguishes truncation from other corruption.
package ooc

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

const (
	// Magic opens every block-slice file.
	Magic = "SPBLK001"
	// EndMagic closes every block-slice file.
	EndMagic = "SPBLKEND"
	// MaxModes bounds the mode count, matching the SPT1 binary format.
	MaxModes = 16

	sectionHeaderLen = 4 + 8 // crc32 + payload length
	trailerLen       = 8 + 8 // footer offset + end magic
)

// entryBytes is the encoded size of one nonzero: one int32 per mode
// plus a float64 value.
func entryBytes(nModes int) int { return 4*nModes + 8 }

// blockPayloadLen is the payload size of a block section holding nnz
// nonzeros.
func blockPayloadLen(nModes int, nnz int64) int64 {
	return 8 + nnz*int64(entryBytes(nModes))
}

// Layout is the derived block grid of a file: mode m is cut into
// Splits[m] near-equal coordinate ranges and a block is one cell of
// the resulting grid. Extents are a pure function of (Dims, Splits),
// so writer and reader always agree without storing per-block bounds.
type Layout struct {
	Dims   []int
	Splits []int
}

// Side returns the coordinate width of mode m's grid cells
// (⌈dim/splits⌉; the last cell may be narrower).
func (l Layout) Side(m int) int32 {
	d, s := l.Dims[m], l.Splits[m]
	if s < 1 {
		s = 1
	}
	if d <= 0 {
		return 1
	}
	return int32((d + s - 1) / s)
}

// GridDim returns the number of occupied-able cells along mode m:
// ⌈dim/side⌉, which can be smaller than Splits[m] when the rounding
// in Side swallows the tail.
func (l Layout) GridDim(m int) int32 {
	d := l.Dims[m]
	if d <= 0 {
		return 1
	}
	side := int64(l.Side(m))
	return int32((int64(d) + side - 1) / side)
}

// GridCoord returns the grid cell of coordinate c along mode m.
func (l Layout) GridCoord(m int, c int32) int32 { return c / l.Side(m) }

// Rank returns the row-major rank of a grid coordinate — the order
// blocks appear in the file.
func (l Layout) Rank(grid []int32) int64 {
	r := int64(0)
	for m := range l.Dims {
		r = r*int64(l.GridDim(m)) + int64(grid[m])
	}
	return r
}

// Extent returns the half-open coordinate range [lo, hi) of grid cell
// g along mode m.
func (l Layout) Extent(m int, g int32) (lo, hi int32) {
	side := l.Side(m)
	lo = g * side
	hi = lo + side
	if d := int32(l.Dims[m]); hi > d {
		hi = d
	}
	return lo, hi
}

// validate checks a layout decoded from an untrusted footer.
func (l Layout) validate() error {
	if len(l.Dims) < 1 || len(l.Dims) > MaxModes {
		return fmt.Errorf("ooc: %d modes outside [1,%d]", len(l.Dims), MaxModes)
	}
	for m, d := range l.Dims {
		if d < 1 || d > math.MaxInt32 {
			return fmt.Errorf("ooc: mode %d length %d out of range", m, d)
		}
		s := l.Splits[m]
		if s < 1 || s > d {
			return fmt.Errorf("ooc: mode %d split count %d out of range [1,%d]", m, s, d)
		}
	}
	return nil
}

// indexEntry is one block-index record of the footer.
type indexEntry struct {
	grid   []int32
	offset int64 // file offset of the block's section header
	nnz    int64
}

var crcTable = crc32.IEEETable

// byteReader is a bounds-checked cursor over an untrusted byte slice;
// every decode helper reports truncation instead of panicking, which is
// what lets the fuzzer drive arbitrary footers through the parser.
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) remaining() int { return len(r.b) - r.off }

func (r *byteReader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, fmt.Errorf("ooc: truncated field at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *byteReader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("ooc: truncated field at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

// i64 decodes a u64 that must fit in a non-negative int64.
func (r *byteReader) i64() (int64, error) {
	v, err := r.u64()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt64 {
		return 0, fmt.Errorf("ooc: field value %d overflows int64", v)
	}
	return int64(v), nil
}

// appendU32/appendU64/putU32/putU64/floatBits are the encode-side twins.
func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func putU32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }

func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }

func floatBits(v float64) uint64 { return math.Float64bits(v) }

// encodeFooter serializes the footer payload.
func encodeFooter(buf []byte, lay Layout, totalNNZ int64, idx []indexEntry) []byte {
	buf = buf[:0]
	buf = appendU64(buf, uint64(len(lay.Dims)))
	for _, d := range lay.Dims {
		buf = appendU64(buf, uint64(d))
	}
	buf = appendU64(buf, uint64(totalNNZ))
	for _, s := range lay.Splits {
		buf = appendU64(buf, uint64(s))
	}
	buf = appendU64(buf, uint64(len(idx)))
	for _, e := range idx {
		for _, g := range e.grid {
			buf = appendU32(buf, uint32(g))
		}
		buf = appendU64(buf, uint64(e.offset))
		buf = appendU64(buf, uint64(e.nnz))
	}
	return buf
}

// decodeFooter parses and validates an untrusted footer payload.
// footerOff bounds every offset and count so a corrupt footer can
// neither address bytes outside the block region nor force allocations
// beyond what the file size can justify.
func decodeFooter(payload []byte, footerOff int64) (Layout, int64, []indexEntry, error) {
	r := &byteReader{b: payload}
	nModes, err := r.i64()
	if err != nil {
		return Layout{}, 0, nil, err
	}
	if nModes < 1 || nModes > MaxModes {
		return Layout{}, 0, nil, fmt.Errorf("ooc: %d modes outside [1,%d]", nModes, MaxModes)
	}
	lay := Layout{Dims: make([]int, nModes), Splits: make([]int, nModes)}
	for m := range lay.Dims {
		d, err := r.i64()
		if err != nil {
			return Layout{}, 0, nil, err
		}
		if d < 1 || d > math.MaxInt32 {
			return Layout{}, 0, nil, fmt.Errorf("ooc: mode %d length %d out of range", m, d)
		}
		lay.Dims[m] = int(d)
	}
	totalNNZ, err := r.i64()
	if err != nil {
		return Layout{}, 0, nil, err
	}
	// Every stored nonzero occupies entryBytes in some block section;
	// a total beyond what the block region could hold is corruption,
	// and catching it here caps all downstream buffer sizing.
	if totalNNZ > footerOff/int64(entryBytes(int(nModes))) {
		return Layout{}, 0, nil, fmt.Errorf("ooc: declared %d nonzeros exceed file capacity", totalNNZ)
	}
	for m := range lay.Splits {
		s, err := r.i64()
		if err != nil {
			return Layout{}, 0, nil, err
		}
		if s < 1 || s > int64(lay.Dims[m]) {
			return Layout{}, 0, nil, fmt.Errorf("ooc: mode %d split count %d out of range", m, s)
		}
		lay.Splits[m] = int(s)
	}
	nBlocks, err := r.i64()
	if err != nil {
		return Layout{}, 0, nil, err
	}
	entryLen := int64(4*nModes + 16)
	if nBlocks < 0 || nBlocks > int64(r.remaining())/entryLen {
		return Layout{}, 0, nil, fmt.Errorf("ooc: block index count %d exceeds footer size", nBlocks)
	}
	idx := make([]indexEntry, nBlocks)
	grids := make([]int32, nBlocks*nModes)
	prevRank := int64(-1)
	prevEnd := int64(len(Magic))
	var sumNNZ int64
	for b := range idx {
		e := &idx[b]
		e.grid = grids[int64(b)*nModes : (int64(b)+1)*nModes]
		for m := range e.grid {
			g, err := r.u32()
			if err != nil {
				return Layout{}, 0, nil, err
			}
			if int32(g) < 0 || int32(g) >= lay.GridDim(m) {
				return Layout{}, 0, nil, fmt.Errorf("ooc: block %d grid coordinate %d out of range in mode %d", b, g, m)
			}
			e.grid[m] = int32(g)
		}
		rank := lay.Rank(e.grid)
		if rank <= prevRank {
			return Layout{}, 0, nil, fmt.Errorf("ooc: block %d grid rank %d not after %d (duplicate or overlapping block extents)", b, rank, prevRank)
		}
		prevRank = rank
		if e.offset, err = r.i64(); err != nil {
			return Layout{}, 0, nil, err
		}
		if e.nnz, err = r.i64(); err != nil {
			return Layout{}, 0, nil, err
		}
		if e.nnz < 0 || e.nnz > totalNNZ {
			return Layout{}, 0, nil, fmt.Errorf("ooc: block %d nonzero count %d out of range", b, e.nnz)
		}
		end := e.offset + sectionHeaderLen + blockPayloadLen(int(nModes), e.nnz)
		if e.offset < prevEnd || end > footerOff {
			return Layout{}, 0, nil, fmt.Errorf("ooc: block %d section [%d,%d) outside [%d,%d)", b, e.offset, end, prevEnd, footerOff)
		}
		prevEnd = end
		sumNNZ += e.nnz
	}
	if sumNNZ != totalNNZ {
		return Layout{}, 0, nil, fmt.Errorf("ooc: block index sums to %d nonzeros, footer declares %d", sumNNZ, totalNNZ)
	}
	if err := lay.validate(); err != nil {
		return Layout{}, 0, nil, err
	}
	return lay, totalNNZ, idx, nil
}
