package csf

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"spstream/internal/dense"
	"spstream/internal/parallel"
	"spstream/internal/sptensor"
	"spstream/internal/sptensor/ooc"
)

func blockedTensor(tb testing.TB, dims []int, nnz int, seed int64, skew bool) *sptensor.Tensor {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := sptensor.New(dims...)
	coord := make([]int32, len(dims))
	for e := 0; e < nnz; e++ {
		for m, d := range dims {
			if skew && rng.Intn(3) == 0 {
				coord[m] = int32(rng.Intn(1 + d/8))
			} else {
				coord[m] = int32(rng.Intn(d))
			}
		}
		x.Append(coord, rng.NormFloat64())
	}
	return x
}

func blockedFactors(rng *rand.Rand, dims []int, k int) []*dense.Matrix {
	fs := make([]*dense.Matrix, len(dims))
	for m, d := range dims {
		fs[m] = dense.NewMatrix(d, k)
		for i := range fs[m].Data {
			fs[m].Data[i] = rng.NormFloat64()
		}
	}
	return fs
}

// sameTree compares two built trees structurally and bit-wise.
func sameTree(t *testing.T, a, b *tree) {
	t.Helper()
	if len(a.order) != len(b.order) {
		t.Fatalf("order lengths differ")
	}
	for i := range a.order {
		if a.order[i] != b.order[i] {
			t.Fatalf("order differs: %v vs %v", a.order, b.order)
		}
	}
	for l := range a.levels {
		la, lb := &a.levels[l], &b.levels[l]
		if len(la.IDs) != len(lb.IDs) || len(la.Ptr) != len(lb.Ptr) {
			t.Fatalf("level %d sizes differ: %d/%d vs %d/%d",
				l, len(la.IDs), len(la.Ptr), len(lb.IDs), len(lb.Ptr))
		}
		for i := range la.IDs {
			if la.IDs[i] != lb.IDs[i] {
				t.Fatalf("level %d IDs[%d] = %d vs %d", l, i, la.IDs[i], lb.IDs[i])
			}
		}
		for i := range la.Ptr {
			if la.Ptr[i] != lb.Ptr[i] {
				t.Fatalf("level %d Ptr[%d] = %d vs %d", l, i, la.Ptr[i], lb.Ptr[i])
			}
		}
	}
	if len(a.vals) != len(b.vals) {
		t.Fatalf("vals lengths differ: %d vs %d", len(a.vals), len(b.vals))
	}
	for i := range a.vals {
		if math.Float64bits(a.vals[i]) != math.Float64bits(b.vals[i]) {
			t.Fatalf("vals[%d] differ", i)
		}
	}
}

// TestBlockedBuildMatchesInMemory is the blocked-build property test:
// for random, skewed, and degenerate tensors, the tree built from a
// block source — both a grid-partitioned .spblk reader (extent fast
// path) and consecutive-run MemBlocks (scan fallback) — must be
// structurally identical to the in-memory build on the materialized
// concatenation, and MTTKRP over it bit-identical, for worker counts
// below, at, and above the pool size.
func TestBlockedBuildMatchesInMemory(t *testing.T) {
	pool := parallel.NewPool(4)
	cases := []struct {
		name string
		x    *sptensor.Tensor
	}{
		{"random", blockedTensor(t, []int{60, 50, 40}, 6000, 1, false)},
		{"skewed", blockedTensor(t, []int{300, 20, 150}, 9000, 2, true)},
		{"degenerate", blockedTensor(t, []int{2, 1, 3}, 120, 3, false)},
		{"mode4", blockedTensor(t, []int{15, 11, 9, 13}, 2500, 4, false)},
	}
	const k = 10
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "x.spblk")
			if err := ooc.WriteTensor(path, tc.x, 800); err != nil {
				t.Fatal(err)
			}
			r, err := ooc.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			fileTwin, err := sptensor.MaterializeBlocks(r)
			if err != nil {
				t.Fatal(err)
			}
			memSrc, err := sptensor.SplitBlocks(tc.x, 700)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(31))
			factors := blockedFactors(rng, tc.x.Dims, k)
			for _, workers := range []int{1, 4, 7} {
				ref := NewEngineWithPool(workers, pool)
				fromFile := NewEngineWithPool(workers, pool)
				fromMem := NewEngineWithPool(workers, pool)
				ref.Begin(fileTwin)
				fromFile.BeginBlocks(r)
				refMem := NewEngineWithPool(workers, pool)
				refMem.Begin(tc.x)
				fromMem.BeginBlocks(memSrc)
				for mode := range tc.x.Dims {
					ref.Build(mode)
					fromFile.Build(mode)
					sameTree(t, ref.trees[mode], fromFile.trees[mode])
					refMem.Build(mode)
					fromMem.Build(mode)
					sameTree(t, refMem.trees[mode], fromMem.trees[mode])

					want := dense.NewMatrix(tc.x.Dims[mode], k)
					got := dense.NewMatrix(tc.x.Dims[mode], k)
					ref.MTTKRP(want, factors, mode)
					fromFile.MTTKRP(got, factors, mode)
					for i, v := range want.Data {
						if math.Float64bits(got.Data[i]) != math.Float64bits(v) {
							t.Fatalf("workers=%d mode=%d: file-blocked MTTKRP element %d differs", workers, mode, i)
						}
					}
					refMem.MTTKRP(want, factors, mode)
					fromMem.MTTKRP(got, factors, mode)
					for i, v := range want.Data {
						if math.Float64bits(got.Data[i]) != math.Float64bits(v) {
							t.Fatalf("workers=%d mode=%d: mem-blocked MTTKRP element %d differs", workers, mode, i)
						}
					}
				}
			}
		})
	}
}

// TestBlockedBuildDuplicates checks that duplicate coordinates crossing
// a block boundary still coalesce into one leaf, exactly as in memory.
func TestBlockedBuildDuplicates(t *testing.T) {
	x := sptensor.New(4, 4, 4)
	coord := []int32{2, 1, 3}
	for e := 0; e < 10; e++ {
		x.Append(coord, float64(e+1))
	}
	coord2 := []int32{0, 0, 0}
	x.Append(coord2, 5)
	src, err := sptensor.SplitBlocks(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	pool := parallel.NewPool(2)
	ref := NewEngineWithPool(2, pool)
	ref.Begin(x)
	blk := NewEngineWithPool(2, pool)
	blk.BeginBlocks(src)
	for mode := range x.Dims {
		ref.Build(mode)
		blk.Build(mode)
		sameTree(t, ref.trees[mode], blk.trees[mode])
	}
	if got := len(blk.trees[0].levels[2].IDs); got != 2 {
		t.Fatalf("expected 2 coalesced leaves, tree has %d", got)
	}
}
