package ingest

import (
	"testing"
	"time"

	"spstream/internal/sptensor"
	"spstream/internal/trace"
)

// testSlice builds a tiny 2-mode slice whose single nonzero's value
// tags it, so tests can tell which slices survived shedding.
func testSlice(tag float64) *sptensor.Tensor {
	x := sptensor.New(4, 4)
	x.Append([]int32{0, 0}, tag)
	return x
}

func fixedClock() func() time.Time {
	base := time.Unix(1000, 0)
	return func() time.Time { return base }
}

func TestQueueDropNewest(t *testing.T) {
	var ov trace.Overload
	q := newQueue(2, DropNewest, fixedClock(), &ov)
	for i := 1; i <= 5; i++ {
		q.push(testSlice(float64(i)))
	}
	if got := ov.ShedNewest.Load(); got != 3 {
		t.Fatalf("ShedNewest = %d, want 3", got)
	}
	it, _ := q.pop()
	if it.slice.Vals[0] != 1 {
		t.Fatalf("head = %g, want the oldest (1)", it.slice.Vals[0])
	}
	it, _ = q.pop()
	if it.slice.Vals[0] != 2 {
		t.Fatalf("second = %g, want 2", it.slice.Vals[0])
	}
}

func TestQueueDropOldest(t *testing.T) {
	var ov trace.Overload
	q := newQueue(2, DropOldest, fixedClock(), &ov)
	for i := 1; i <= 5; i++ {
		q.push(testSlice(float64(i)))
	}
	if got := ov.ShedOldest.Load(); got != 3 {
		t.Fatalf("ShedOldest = %d, want 3", got)
	}
	it, _ := q.pop()
	if it.slice.Vals[0] != 4 {
		t.Fatalf("head = %g, want the freshest window start (4)", it.slice.Vals[0])
	}
}

func TestQueueCoalesceAggregatesNotLoses(t *testing.T) {
	var ov trace.Overload
	q := newQueue(2, Coalesce, fixedClock(), &ov)
	for i := 1; i <= 5; i++ {
		q.push(testSlice(float64(i)))
	}
	if got := ov.Coalesced.Load(); got != 3 {
		t.Fatalf("Coalesced = %d, want 3", got)
	}
	if got := ov.CoalescedEvents.Load(); got != 3 {
		t.Fatalf("CoalescedEvents = %d, want 3", got)
	}
	it1, _ := q.pop()
	it2, _ := q.pop()
	// All five slices share the coordinate (0,0); coalescing must have
	// summed the merged values, so total event mass is preserved.
	total := 0.0
	for _, it := range []item{it1, it2} {
		for _, v := range it.slice.Vals {
			total += v
		}
	}
	if total != 1+2+3+4+5 {
		t.Fatalf("merged value mass = %g, want 15 (no events lost)", total)
	}
	if it2.coalesced != 3 {
		t.Fatalf("tail item coalesced = %d, want 3", it2.coalesced)
	}
}

func TestQueueBlockBackpressureAndClose(t *testing.T) {
	var ov trace.Overload
	q := newQueue(1, Block, time.Now, &ov)
	q.push(testSlice(1))
	pushed := make(chan bool)
	go func() { pushed <- q.push(testSlice(2)) }()
	select {
	case <-pushed:
		t.Fatal("push into a full Block queue returned without space")
	case <-time.After(20 * time.Millisecond):
	}
	// Popping frees space and unblocks the producer.
	if _, ok := q.pop(); !ok {
		t.Fatal("pop failed")
	}
	if ok := <-pushed; !ok {
		t.Fatal("unblocked push reported shed")
	}
	// Close wakes a blocked producer, shedding its slice as drain.
	go func() { pushed <- q.push(testSlice(3)) }()
	time.Sleep(10 * time.Millisecond)
	q.close()
	if ok := <-pushed; ok {
		t.Fatal("push after close reported enqueued")
	}
	if got := ov.ShedDrain.Load(); got != 1 {
		t.Fatalf("ShedDrain = %d, want 1", got)
	}
	// The backlog survives close; then pop reports end of stream.
	if _, ok := q.pop(); !ok {
		t.Fatal("queued slice lost at close")
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop after close+empty returned a slice")
	}
}

func TestQueueHighWater(t *testing.T) {
	var ov trace.Overload
	q := newQueue(3, DropNewest, fixedClock(), &ov)
	for i := 0; i < 10; i++ {
		q.push(testSlice(1))
	}
	if got := ov.QueueHighWater.Load(); got != 3 {
		t.Fatalf("QueueHighWater = %d, want cap 3", got)
	}
}
