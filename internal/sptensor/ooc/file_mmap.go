//go:build (linux || darwin) && !spblk_pread

package ooc

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile is the default backend on unix hosts: the whole file is
// mapped read-only and section returns zero-copy subslices, so block
// re-reads cost page-cache hits rather than syscalls. Build with
// -tags spblk_pread to force the portable pread backend instead.
type mmapFile struct {
	data []byte
}

func openBlockFile(path string) (blockFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() == 0 {
		// A zero-length mmap is an error on some kernels; an empty
		// file is invalid anyway, let the header check say so.
		return &mmapFile{}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("ooc: mmap %s: %w", path, err)
	}
	return &mmapFile{data: data}, nil
}

func (f *mmapFile) section(_ []byte, off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > int64(len(f.data)) {
		return nil, fmt.Errorf("ooc: section [%d,%d) outside mapped %d bytes", off, off+n, len(f.data))
	}
	return f.data[off : off+n], nil
}

func (f *mmapFile) size() int64 { return int64(len(f.data)) }

func (f *mmapFile) close() error {
	if f.data == nil {
		return nil
	}
	data := f.data
	f.data = nil
	return syscall.Munmap(data)
}
