// Command tensorgen generates synthetic streaming sparse tensors in
// FROSTT .tns format (the streaming mode is appended as the last mode).
//
// Examples:
//
//	tensorgen -preset flickr -scale 0.5 -o flickr.tns
//	tensorgen -dims 1000,2000 -slices 50 -nnz 10000 -zipf 1.0 -o custom.tns
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"spstream/internal/sptensor"
	"spstream/internal/synth"
	"spstream/internal/version"
)

func main() {
	var (
		preset  = flag.String("preset", "", "built-in preset: patents, flickr, uber, nips")
		scale   = flag.Float64("scale", 0.2, "preset scale")
		dims    = flag.String("dims", "", "custom mode lengths, comma separated (non-streaming modes)")
		slices  = flag.Int("slices", 20, "custom: number of time slices")
		nnz     = flag.Int("nnz", 10000, "custom: nonzeros per slice")
		zipf    = flag.Float64("zipf", 0, "custom: Zipf exponent for index skew (0 = uniform)")
		rank    = flag.Int("rank", 8, "custom: planted low-rank structure rank (0 = count values)")
		noise   = flag.Float64("noise", 0.05, "custom: noise std dev on planted values")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("o", "", "output .tns file (default stdout)")
		binary  = flag.Bool("binary", false, "write the compact binary format instead of .tns text")
		showVer = flag.Bool("version", false, "print version/build information and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println("tensorgen", version.String())
		return
	}

	cfg, err := buildConfig(*preset, *scale, *dims, *slices, *nnz, *zipf, *rank, *noise, *seed)
	if err != nil {
		fatal(err)
	}
	stream, err := synth.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	tensor := sptensor.Merge(stream)
	fmt.Fprintf(os.Stderr, "tensorgen: dims=%v (streaming mode last) nnz=%d\n", tensor.Dims, tensor.NNZ())

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *binary {
		err = sptensor.WriteBinary(w, tensor)
	} else {
		err = sptensor.WriteTNS(w, tensor)
	}
	if err != nil {
		fatal(err)
	}
}

func buildConfig(preset string, scale float64, dims string, slices, nnz int, zipf float64, rank int, noise float64, seed uint64) (synth.Config, error) {
	if preset != "" {
		cfg, err := synth.Preset(preset, scale)
		if err != nil {
			return synth.Config{}, err
		}
		cfg.Seed = seed
		return cfg, nil
	}
	if dims == "" {
		return synth.Config{}, fmt.Errorf("one of -preset or -dims is required")
	}
	var dists []synth.IndexDist
	for _, part := range strings.Split(dims, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d < 1 {
			return synth.Config{}, fmt.Errorf("bad dimension %q", part)
		}
		if zipf > 0 {
			dists = append(dists, synth.NewZipf(d, zipf))
		} else {
			dists = append(dists, synth.Uniform{N: d})
		}
	}
	cfg := synth.Config{
		Name:        "custom",
		Dists:       dists,
		T:           slices,
		NNZPerSlice: nnz,
		Seed:        seed,
	}
	if rank > 0 {
		cfg.Values = synth.ValuePlanted
		cfg.PlantedRank = rank
		cfg.NoiseStd = noise
	}
	return cfg, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tensorgen:", err)
	os.Exit(1)
}
