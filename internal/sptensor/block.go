package sptensor

import "fmt"

// BlockSource exposes a sparse tensor as an ordered sequence of
// coordinate blocks, each small enough to hold in memory while the
// whole tensor need not be. It is the seam between the out-of-core
// storage layer (internal/sptensor/ooc) and the blocked kernels: the
// CSF engine's block-incremental build and the streamed MTTKRP both
// consume one block at a time and depend only on the *concatenation
// order* of the blocks — the tensor a BlockSource represents is, by
// definition, block 0's nonzeros followed by block 1's, and so on.
//
// Block(b) is random access so consumers can make multiple passes
// (one per mode per iteration) and group blocks (the CSF slab build)
// without re-opening the source. The returned tensor is valid only
// until the next Block call on the same source: implementations decode
// into a reusable buffer so a full pass allocates nothing in steady
// state. Callers that need a block to outlive the next call must copy.
type BlockSource interface {
	// Dims returns the mode lengths of the whole tensor.
	Dims() []int
	// NNZ returns the total nonzero count across all blocks.
	NNZ() int
	// Blocks returns the number of blocks.
	Blocks() int
	// Block decodes block b (0 ≤ b < Blocks). The result aliases
	// internal buffers and is invalidated by the next Block call.
	Block(b int) (*Tensor, error)
}

// MemBlocks adapts an in-memory list of block tensors to BlockSource.
// Tests and the fits-in-RAM bench configs use it to drive the blocked
// kernels without touching disk.
type MemBlocks struct {
	dims   []int
	blocks []*Tensor
	nnz    int
}

// NewMemBlocks wraps the given blocks. Every block must have the given
// dims; the concatenation order is the slice order.
func NewMemBlocks(dims []int, blocks []*Tensor) (*MemBlocks, error) {
	mb := &MemBlocks{dims: append([]int(nil), dims...), blocks: blocks}
	for i, b := range blocks {
		if b.NModes() != len(dims) {
			return nil, fmt.Errorf("sptensor: block %d has %d modes, want %d", i, b.NModes(), len(dims))
		}
		for m, d := range b.Dims {
			if d != dims[m] {
				return nil, fmt.Errorf("sptensor: block %d mode %d length %d, want %d", i, m, d, dims[m])
			}
		}
		mb.nnz += b.NNZ()
	}
	return mb, nil
}

// SplitBlocks partitions x into ⌈nnz/blockNNZ⌉ consecutive-run blocks
// of at most blockNNZ nonzeros each, preserving storage order. The
// blocks alias x's arrays (no copies); mutating x invalidates them.
func SplitBlocks(x *Tensor, blockNNZ int) (*MemBlocks, error) {
	if blockNNZ < 1 {
		return nil, fmt.Errorf("sptensor: SplitBlocks with block size %d", blockNNZ)
	}
	var blocks []*Tensor
	n := x.NNZ()
	for lo := 0; lo < n; lo += blockNNZ {
		hi := lo + blockNNZ
		if hi > n {
			hi = n
		}
		b := &Tensor{Dims: x.Dims, Inds: make([][]int32, x.NModes()), Vals: x.Vals[lo:hi]}
		for m := range b.Inds {
			b.Inds[m] = x.Inds[m][lo:hi]
		}
		blocks = append(blocks, b)
	}
	return NewMemBlocks(x.Dims, blocks)
}

func (mb *MemBlocks) Dims() []int { return mb.dims }

func (mb *MemBlocks) NNZ() int { return mb.nnz }

func (mb *MemBlocks) Blocks() int { return len(mb.blocks) }

func (mb *MemBlocks) Block(b int) (*Tensor, error) {
	if b < 0 || b >= len(mb.blocks) {
		return nil, fmt.Errorf("sptensor: block %d out of range [0,%d)", b, len(mb.blocks))
	}
	return mb.blocks[b], nil
}

// MaterializeBlocks concatenates every block of src into one in-memory
// tensor, in block order. This is the bridge back to the in-memory
// path: a decomposer whose memory budget admits the whole slice
// materializes it and runs the unblocked kernels, and the equivalence
// tests compare blocked kernels against the in-memory ones on the
// materialized twin.
func MaterializeBlocks(src BlockSource) (*Tensor, error) {
	out := New(src.Dims()...)
	out.Reserve(src.NNZ())
	nb := src.Blocks()
	for b := 0; b < nb; b++ {
		blk, err := src.Block(b)
		if err != nil {
			return nil, err
		}
		for m := range out.Inds {
			out.Inds[m] = append(out.Inds[m], blk.Inds[m]...)
		}
		out.Vals = append(out.Vals, blk.Vals...)
	}
	if out.NNZ() != src.NNZ() {
		return nil, fmt.Errorf("sptensor: block source declared %d nonzeros, blocks held %d", src.NNZ(), out.NNZ())
	}
	return out, nil
}
