// Package baselines implements the related-work streaming decomposition
// methods the paper compares against conceptually (§II): OnlineCP
// (Zhou et al., KDD'16) and Online-SGD (Mardani et al., TSP'15). They
// exist so the repository can substantiate the paper's positioning —
// CP-stream-family methods versus accumulation- and SGD-based updates —
// on the same streams, with the same factors API.
//
// Both are adapted to sparse slices through the shared MTTKRP kernels.
// OnlineCP here is the sparse adaptation of the paper's description
// ("has not been adapted to handle sparse tensors"): it accumulates the
// normal-equation matrices P⁽ⁿ⁾ and Q⁽ⁿ⁾ over the whole history with no
// forgetting and performs one closed-form update per slice (no inner
// iterations). It is cheap per slice but cannot track drift — exactly
// the behaviour the comparison example demonstrates.
package baselines

import (
	"fmt"
	"math"

	"spstream/internal/dense"
	"spstream/internal/mttkrp"
	"spstream/internal/sptensor"
	"spstream/internal/synth"
)

// OnlineCP maintains per-mode accumulation matrices
// P⁽ⁿ⁾ = Σ_t MTTKRP(Xₜ,{A},n)·diag(sₜ) and
// Q⁽ⁿ⁾ = Σ_t (⊛_{v≠n} C⁽ᵛ⁾) ⊛ sₜsₜᵀ and updates each factor once per
// slice as A⁽ⁿ⁾ = P⁽ⁿ⁾(Q⁽ⁿ⁾)⁻¹.
type OnlineCP struct {
	dims []int
	k    int
	a    []*dense.Matrix
	c    []*dense.Matrix // Gram cache
	p    []*dense.Matrix
	q    []*dense.Matrix
	s    []float64
	hist [][]float64
	mt   *mttkrp.Computer
	// ridge stabilizes the Q solves.
	ridge float64
	psi   []*dense.Matrix
	t     int
}

// NewOnlineCP creates an OnlineCP tracker for slices with the given
// mode lengths.
func NewOnlineCP(dims []int, rank, workers int, seed uint64) (*OnlineCP, error) {
	if rank < 1 {
		return nil, fmt.Errorf("baselines: rank must be ≥ 1")
	}
	if len(dims) < 2 {
		return nil, fmt.Errorf("baselines: need ≥ 2 modes")
	}
	o := &OnlineCP{
		dims:  append([]int(nil), dims...),
		k:     rank,
		mt:    mttkrp.NewComputer(workers),
		ridge: 1e-6,
		s:     make([]float64, rank),
	}
	r := synth.NewRNG(seed)
	for _, d := range dims {
		f := dense.NewMatrix(d, rank)
		for i := range f.Data {
			f.Data[i] = r.Float64() + 0.1
		}
		o.a = append(o.a, f)
		o.c = append(o.c, dense.NewMatrix(rank, rank))
		o.p = append(o.p, dense.NewMatrix(d, rank))
		o.q = append(o.q, dense.NewMatrix(rank, rank))
		o.psi = append(o.psi, dense.NewMatrix(d, rank))
	}
	o.refreshGrams()
	return o, nil
}

func (o *OnlineCP) refreshGrams() {
	for m := range o.a {
		dense.Gram(o.c[m], o.a[m])
	}
}

// Factor returns the mode-n factor matrix (live storage).
func (o *OnlineCP) Factor(n int) *dense.Matrix { return o.a[n] }

// LastS returns the latest temporal row.
func (o *OnlineCP) LastS() []float64 { return o.s }

// T returns the number of slices processed.
func (o *OnlineCP) T() int { return o.t }

// ProcessSlice performs the OnlineCP update for one slice.
func (o *OnlineCP) ProcessSlice(x *sptensor.Tensor) error {
	if x.NModes() != len(o.dims) {
		return fmt.Errorf("baselines: slice has %d modes, want %d", x.NModes(), len(o.dims))
	}
	k := o.k
	// sₜ: closed-form LS against the current factors.
	phiS := dense.NewMatrix(k, k)
	phiS.Fill(1)
	for m := range o.c {
		dense.Hadamard(phiS, phiS, o.c[m])
	}
	dense.AddScaledIdentity(phiS, phiS, 1e-2)
	o.mt.TimeMode(o.s, x, o.a)
	chol, err := dense.Factor(phiS)
	if err != nil {
		return fmt.Errorf("baselines: s solve: %w", err)
	}
	chol.SolveVec(o.s)

	// Accumulate P and Q and refresh each factor once.
	ssT := dense.NewMatrix(k, k)
	dense.OuterProduct(ssT, o.s, o.s)
	for n := range o.a {
		o.mt.Hybrid(o.psi[n], x, o.a, n)
		dense.ScaleColumns(o.psi[n], o.psi[n], o.s)
		dense.Add(o.p[n], o.p[n], o.psi[n])
		had := dense.NewMatrix(k, k)
		had.Fill(1)
		for v := range o.c {
			if v != n {
				dense.Hadamard(had, had, o.c[v])
			}
		}
		dense.Hadamard(had, had, ssT)
		dense.Add(o.q[n], o.q[n], had)
		ridge := o.ridge * (1 + dense.Trace(o.q[n])/float64(k))
		qc, err := dense.FactorRidge(o.q[n], ridge)
		if err != nil {
			return fmt.Errorf("baselines: mode %d Q factorization: %w", n, err)
		}
		qc.SolveRowsInto(o.a[n], o.p[n])
		dense.Gram(o.c[n], o.a[n])
	}
	o.hist = append(o.hist, append([]float64(nil), o.s...))
	o.t++
	return nil
}

// Fit returns 1 − ‖X−X̂‖/‖X‖ of the current model on the given slice.
func (o *OnlineCP) Fit(x *sptensor.Tensor) float64 {
	return modelFit(o.mt, x, o.a, o.c, o.s)
}

// modelFit is the shared sparse fit computation (see core.sliceFit).
func modelFit(mt *mttkrp.Computer, x *sptensor.Tensor, a, c []*dense.Matrix, s []float64) float64 {
	xnorm2 := x.Norm2()
	if xnorm2 == 0 {
		return 0
	}
	k := len(s)
	psi := make([]float64, k)
	mt.TimeMode(psi, x, a)
	had := dense.NewMatrix(k, k)
	had.Fill(1)
	for m := range c {
		dense.Hadamard(had, had, c[m])
	}
	tmp := make([]float64, k)
	dense.MulVec(tmp, had, s)
	model2 := dense.Dot(s, tmp)
	inner := dense.Dot(s, psi)
	err2 := xnorm2 - 2*inner + model2
	if err2 < 0 {
		err2 = 0
	}
	return 1 - math.Sqrt(err2/xnorm2)
}
