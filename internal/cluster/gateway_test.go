package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spstream/internal/resilience"
)

// ingestReply scripts one fake-shard response to POST /v1/ingest.
type ingestReply struct {
	status     int
	envelope   bool // {"error": …} instead of the accepted/rejected ledger
	retryAfter string
}

// fakeShard is an httptest stand-in for one spstreamd: it records
// every forwarded body and answers from a scripted reply plan
// (default: 200 + ledger accepting every line).
type fakeShard struct {
	id, count  int
	lo, hi     int
	dims       []int
	rank       int
	t          int
	mu         sync.Mutex
	bodies     []string
	flushes    []bool
	plan       []ingestReply
	ready      bool
	mode0      [][]float64
	s          []float64
	srv        *httptest.Server
}

func countEvents(body string) int {
	n := 0
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if line != "" && !strings.HasPrefix(line, "#") {
			n++
		}
	}
	return n
}

func newFakeShard(t *testing.T, id, count int, r *Router, rank int) *fakeShard {
	t.Helper()
	lo, hi := r.Block(id)
	f := &fakeShard{
		id: id, count: count, lo: lo, hi: hi,
		dims: r.Dims(), rank: rank, t: 3, ready: true,
		s: make([]float64, rank),
	}
	for k := range f.s {
		f.s[k] = 1 + float64(k)
	}
	// Mode-0 rows are tagged by (shard, row) so the merge test can
	// prove provenance; rows outside the owned block stay zero like a
	// real shard that never saw them.
	f.mode0 = make([][]float64, f.dims[0])
	for i := range f.mode0 {
		f.mode0[i] = make([]float64, rank)
		if i >= lo && i < hi {
			for k := range f.mode0[i] {
				f.mode0[i][k] = float64(100*id+i) + float64(k)/10
			}
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/ingest", f.handleIngest)
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		ready := f.ready
		f.mu.Unlock()
		if !ready {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "not ready"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("GET /v1/factors", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		factors := [][][]float64{f.mode0}
		for _, d := range f.dims[1:] {
			m := make([][]float64, d)
			for i := range m {
				m[i] = make([]float64, f.rank)
				for k := range m[i] {
					m[i][k] = 1 // simple but nonzero so norms are nontrivial
				}
			}
			factors = append(factors, m)
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"t": f.t, "dims": f.dims, "rank": f.rank, "fit": nil,
			"s": f.s, "factors": factors,
		})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"version": "fake", "t": f.t,
			"shard": map[string]int{"id": f.id, "count": f.count, "row_lo": f.lo, "row_hi": f.hi},
		})
	})
	mux.HandleFunc("GET /v1/reconstruct", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"t": f.t, "coord": r.URL.Query().Get("coord"), "value": float64(f.id),
		})
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeShard) handleIngest(w http.ResponseWriter, r *http.Request) {
	body := new(strings.Builder)
	if _, err := fmt.Fprint(body, readAll(r)); err != nil {
		panic(err)
	}
	f.mu.Lock()
	f.bodies = append(f.bodies, body.String())
	f.flushes = append(f.flushes, r.URL.Query().Get("flush") != "")
	var reply ingestReply
	if len(f.plan) > 0 {
		reply, f.plan = f.plan[0], f.plan[1:]
	} else {
		reply = ingestReply{status: http.StatusOK}
	}
	f.mu.Unlock()
	if reply.retryAfter != "" {
		w.Header().Set("Retry-After", reply.retryAfter)
	}
	if reply.envelope {
		writeJSON(w, reply.status, map[string]string{"error": "injected fault"})
		return
	}
	writeJSON(w, reply.status, map[string]any{
		"accepted": countEvents(body.String()), "rejected": 0,
		"windows_emitted": 0, "windows_shed": 0,
	})
}

func readAll(r *http.Request) string {
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

func (f *fakeShard) recorded() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.bodies...)
}

// newTestGateway wires a gateway over the fakes with fast timeouts.
func newTestGateway(t *testing.T, r *Router, fakes []*fakeShard, mutate func(*Config)) *Gateway {
	t.Helper()
	urls := make([]string, len(fakes))
	for i, f := range fakes {
		urls[i] = f.srv.URL
	}
	cfg := Config{
		Router:         r,
		Shards:         urls,
		Version:        "test",
		RequestTimeout: 2 * time.Second,
		ProbeInterval:  time.Hour, // probes quiesce unless a test wants them
		Backoff:        resilience.BackoffConfig{Base: time.Millisecond, Cap: 5 * time.Millisecond},
		DrainTimeout:   2 * time.Second,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func postIngest(g *Gateway, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", "/v1/ingest", strings.NewReader(body))
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, req)
	return rec
}

func get(g *Gateway, target string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("GET", target, nil)
	rec := httptest.NewRecorder()
	g.Handler().ServeHTTP(rec, req)
	return rec
}

// TestGatewayRoutesIngest: events split by mode-0 row block, arrive at
// the right shards in order, 1-based on the wire, and the forward
// ledger balances to zero pending.
func TestGatewayRoutesIngest(t *testing.T) {
	r, _ := NewRouter([]int{12, 9}, 3) // blocks [0,4) [4,8) [8,12)
	fakes := []*fakeShard{newFakeShard(t, 0, 3, r, 2), newFakeShard(t, 1, 3, r, 2), newFakeShard(t, 2, 3, r, 2)}
	g := newTestGateway(t, r, fakes, nil)
	g.Start()
	defer g.Shutdown()

	// Rows 1,5,9,2,6,10 (1-based) → shards 0,1,2,0,1,2.
	body := "1 1 1.5\n5 2 2.5\n9 3 3.5\n2 4 4.5\n6 5 5.5\n10 6 6.5\n"
	rec := postIngest(g, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d (%s)", rec.Code, rec.Body)
	}
	var resp gatewayIngestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 6 || resp.Enqueued != 6 || resp.Rejected != 0 || resp.ShedEvents != 0 {
		t.Fatalf("response = %+v", resp)
	}
	waitFor(t, "forward ledger to settle", func() bool {
		return g.Overload().Processed == 6 && g.Pending() == 0
	})
	want := []string{"1 1 1.5\n2 4 4.5\n", "5 2 2.5\n6 5 5.5\n", "9 3 3.5\n10 6 6.5\n"}
	for i, f := range fakes {
		got := strings.Join(f.recorded(), "")
		if got != want[i] {
			t.Errorf("shard %d received %q, want %q", i, got, want[i])
		}
	}
	ov := g.Overload()
	if ov.Produced != 6 || ov.Processed != 6 || ov.Failed != 0 || ov.Shed() != 0 {
		t.Fatalf("ledger = %s", ov.String())
	}
}

// TestGatewayIngestRejectsWithLineNumbers mirrors the single-node
// contract at the gateway's trust boundary: garbage lines are counted
// and located, never forwarded; an all-garbage body is a 400 with zero
// forwards.
func TestGatewayIngestRejectsWithLineNumbers(t *testing.T) {
	r, _ := NewRouter([]int{12, 9}, 3)
	fakes := []*fakeShard{newFakeShard(t, 0, 3, r, 2), newFakeShard(t, 1, 3, r, 2), newFakeShard(t, 2, 3, r, 2)}
	g := newTestGateway(t, r, fakes, nil)
	g.Start()
	defer g.Shutdown()

	body := "# comment\n1 1 1.0\nbogus\n99 1 1.0\n5 2 2.0\n"
	rec := postIngest(g, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("mixed body = %d (%s)", rec.Code, rec.Body)
	}
	var resp gatewayIngestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 2 || resp.Rejected != 2 || resp.FirstRejectedLine != 3 || resp.FirstRejectedError == "" {
		t.Fatalf("mixed response = %+v", resp)
	}
	waitFor(t, "both events forwarded", func() bool { return g.Overload().Processed == 2 })

	// All-garbage: 400, located, and no shard hears about it.
	before := len(fakes[0].recorded()) + len(fakes[1].recorded()) + len(fakes[2].recorded())
	rec = postIngest(g, "nope\n99 99 1.0\n")
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "line 1") {
		t.Fatalf("all-garbage = %d (%s)", rec.Code, rec.Body)
	}
	time.Sleep(20 * time.Millisecond)
	after := len(fakes[0].recorded()) + len(fakes[1].recorded()) + len(fakes[2].recorded())
	if after != before {
		t.Fatalf("rejected body reached a shard: %d forwards before, %d after", before, after)
	}
}

// TestGatewayShedsWhenQueueFull: with senders parked, the bounded
// forward queue sheds at admission with 429 + Retry-After and exact
// accounting, and the ledger balances once delivery resumes.
func TestGatewayShedsWhenQueueFull(t *testing.T) {
	r, _ := NewRouter([]int{12, 9}, 1)
	fakes := []*fakeShard{newFakeShard(t, 0, 1, r, 2)}
	g := newTestGateway(t, r, fakes, func(c *Config) { c.QueueEvents = 4 })
	// Senders not started: pushes accumulate deterministically.

	if rec := postIngest(g, "1 1 1\n2 1 1\n3 1 1\n4 1 1\n"); rec.Code != http.StatusOK {
		t.Fatalf("first batch = %d (%s)", rec.Code, rec.Body)
	}
	rec := postIngest(g, "5 1 1\n6 1 1\n")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow batch = %d, want 429 (%s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var resp gatewayIngestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ShedEvents != 2 || resp.Enqueued != 0 {
		t.Fatalf("overflow response = %+v", resp)
	}
	ov := g.Overload()
	if ov.Produced != 6 || ov.ShedNewest != 2 || g.Pending() != 4 {
		t.Fatalf("mid-flight ledger: %s pending=%d", ov.String(), g.Pending())
	}

	// Resume delivery: everything accepted is delivered, nothing twice.
	g.Start()
	defer g.Shutdown()
	waitFor(t, "backlog delivery", func() bool { return g.Overload().Processed == 4 && g.Pending() == 0 })
	ov = g.Overload()
	if ov.Produced != ov.Processed+ov.Failed+ov.Shed() {
		t.Fatalf("ledger does not balance: %s", ov.String())
	}
}

// TestGatewayConsumedBatchNeverResent: a shard answering 429 *with the
// ledger* has absorbed the batch (its own queue shed a window past
// admission); resending would double-ingest. The gateway must treat it
// as terminal after exactly one delivery.
func TestGatewayConsumedBatchNeverResent(t *testing.T) {
	r, _ := NewRouter([]int{12, 9}, 1)
	f := newFakeShard(t, 0, 1, r, 2)
	f.plan = []ingestReply{{status: http.StatusTooManyRequests, retryAfter: "1"}}
	g := newTestGateway(t, r, []*fakeShard{f}, nil)
	g.Start()
	defer g.Shutdown()

	if rec := postIngest(g, "1 1 1\n2 1 1\n"); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d", rec.Code)
	}
	waitFor(t, "consumed batch settles", func() bool { return g.Overload().Processed == 2 })
	time.Sleep(20 * time.Millisecond) // a wrongful retry would land in this window
	if calls := len(f.recorded()); calls != 1 {
		t.Fatalf("consumed batch sent %d times, want exactly 1", calls)
	}
}

// TestGatewayRetryBackoffLadder: transient shard failures (error
// envelopes) are retried with the same body — FIFO, no reordering, no
// loss — walking the backoff ladder, and a shard Retry-After overrides
// the computed delay exactly.
func TestGatewayRetryBackoffLadder(t *testing.T) {
	r, _ := NewRouter([]int{12, 9}, 1)
	f := newFakeShard(t, 0, 1, r, 2)
	f.plan = []ingestReply{
		{status: http.StatusServiceUnavailable, envelope: true, retryAfter: "2"},
		{status: http.StatusInternalServerError, envelope: true},
		{status: http.StatusBadGateway, envelope: true},
		// then the default 200 ledger
	}
	var mu sync.Mutex
	var delays []time.Duration
	g := newTestGateway(t, r, []*fakeShard{f}, func(c *Config) {
		// Keep the breaker out of the way: its cooldown runs on the real
		// clock and this test's sleeps are instant.
		c.Breaker = resilience.BreakerConfig{FailureThreshold: 100}
		c.Backoff = resilience.BackoffConfig{Base: 100 * time.Millisecond, Cap: 10 * time.Second, Jitter: -1}
		c.Sleep = func(d time.Duration) bool {
			if d >= time.Minute {
				return false // parked prober; irrelevant here
			}
			mu.Lock()
			delays = append(delays, d)
			mu.Unlock()
			return true
		}
	})
	g.Start()
	defer g.Shutdown()

	if rec := postIngest(g, "1 1 1\n2 1 1\n"); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d", rec.Code)
	}
	waitFor(t, "delivery after retries", func() bool { return g.Overload().Processed == 2 })
	bodies := f.recorded()
	if len(bodies) != 4 {
		t.Fatalf("delivered in %d attempts, want 4", len(bodies))
	}
	for i := 1; i < len(bodies); i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("attempt %d body %q differs from first %q", i+1, bodies[i], bodies[0])
		}
	}
	mu.Lock()
	got := append([]time.Duration(nil), delays...)
	mu.Unlock()
	// Rung 0 is overridden by Retry-After: 2; rungs 1, 2 are the pure
	// exponential ladder (jitter disabled).
	want := []time.Duration{2 * time.Second, 200 * time.Millisecond, 400 * time.Millisecond}
	if len(got) < 3 {
		t.Fatalf("recorded %d delays, want ≥ 3 (%v)", len(got), got)
	}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("delay[%d] = %v, want %v (all: %v)", i, got[i], w, got)
		}
	}
	ov := g.Overload()
	if ov.Produced != 2 || ov.Processed != 2 || ov.Failed != 0 {
		t.Fatalf("ledger = %s", ov.String())
	}
}

// TestGatewayDegradedReads: with one shard gone, merged reads stay 200
// but say exactly what is missing; point reads for the dead shard's
// rows refuse honestly with 503 + Retry-After; point reads for live
// rows still work.
func TestGatewayDegradedReads(t *testing.T) {
	r, _ := NewRouter([]int{12, 9}, 3) // blocks [0,4) [4,8) [8,12)
	fakes := []*fakeShard{newFakeShard(t, 0, 3, r, 2), newFakeShard(t, 1, 3, r, 2), newFakeShard(t, 2, 3, r, 2)}
	fakes[1].srv.Close() // shard 1 is down hard (connection refused)
	g := newTestGateway(t, r, fakes, func(c *Config) {
		c.Sleep = func(d time.Duration) bool { return d < time.Minute }
		c.ReadRetries = 1
	})
	g.Start()
	defer g.Shutdown()

	rec := get(g, "/v1/factors")
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded factors = %d, want 200 (%s)", rec.Code, rec.Body)
	}
	var fr gatewayFactorsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &fr); err != nil {
		t.Fatal(err)
	}
	if !fr.Partial {
		t.Fatal("degraded read not marked partial")
	}
	if len(fr.Missing) != 1 || fr.Missing[0] != (RowRange{Shard: 1, Lo: 4, Hi: 8}) {
		t.Fatalf("missing = %v, want [{1 4 8}]", fr.Missing)
	}
	// Live shards' rows carry their provenance tags; dead rows are zero.
	if fr.Mode0[0][0] != 0+0.0 && fr.Mode0[0][0] == 0 {
		t.Fatalf("row 0 lost shard 0's data: %v", fr.Mode0[0])
	}
	if fr.Mode0[9][0] != 209 {
		t.Fatalf("row 9 = %v, want shard 2's tag 209", fr.Mode0[9])
	}
	for i := 4; i < 8; i++ {
		for _, v := range fr.Mode0[i] {
			if v != 0 {
				t.Fatalf("dead shard's row %d has data: %v", i, fr.Mode0[i])
			}
		}
	}
	// The merged norm is the sum of the live shards' block norms.
	wantNorm := 0.0
	for _, id := range []int{0, 2} {
		f := fakes[id]
		factors := [][][]float64{f.mode0}
		for _, d := range r.Dims()[1:] {
			m := make([][]float64, d)
			for i := range m {
				m[i] = []float64{1, 1}
			}
			factors = append(factors, m)
		}
		wantNorm += BlockNorm2(factors, f.s, f.lo, f.hi)
	}
	if diff := fr.ModelNorm2 - wantNorm; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("merged norm %g, want %g", fr.ModelNorm2, wantNorm)
	}

	// Point read, live row → proxied with the owner's id.
	rec = get(g, "/v1/reconstruct?coord=9,1")
	if rec.Code != http.StatusOK {
		t.Fatalf("live point read = %d (%s)", rec.Code, rec.Body)
	}
	var pr map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr["shard"] != float64(2) {
		t.Fatalf("point read served by %v, want shard 2", pr["shard"])
	}
	// Point read, dead row → 503 with a hint, not a hang or a lie.
	rec = get(g, "/v1/reconstruct?coord=5,1")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("dead point read = %d, want 503 (%s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("dead point read missing Retry-After")
	}

	// Norm document (coordinate-less reconstruct) degrades the same way.
	rec = get(g, "/v1/reconstruct")
	if rec.Code != http.StatusOK {
		t.Fatalf("norm read = %d (%s)", rec.Code, rec.Body)
	}
	var nr struct {
		Partial    bool       `json:"partial"`
		ModelNorm2 float64    `json:"model_norm2"`
		Missing    []RowRange `json:"missing"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &nr); err != nil {
		t.Fatal(err)
	}
	if !nr.Partial || len(nr.Missing) != 1 {
		t.Fatalf("norm doc = %+v", nr)
	}

	// Stats: partial, the dead shard carries an error, live ones audit
	// clean against the router.
	rec = get(g, "/v1/stats")
	var sr gatewayStatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Partial || sr.Shards[1].OK || sr.Shards[1].Error == "" {
		t.Fatalf("stats shard 1 = %+v", sr.Shards[1])
	}
	if !sr.Shards[0].OK || sr.Shards[0].Mismatch != "" || sr.Shards[2].Mismatch != "" {
		t.Fatalf("live shard stats = %+v / %+v", sr.Shards[0], sr.Shards[2])
	}

	// Readiness: degraded is still ready; only a fully dark cluster is
	// unready.
	if rec = get(g, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("degraded readyz = %d, want 200", rec.Code)
	}
	for _, s := range g.shards {
		s.breaker.OnFailure()
		s.breaker.OnFailure()
		s.breaker.OnFailure()
	}
	if rec = get(g, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("all-dark readyz = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("all-dark readyz missing Retry-After")
	}
}

// TestGatewayStatsTopologyMismatch: a shard claiming the wrong row
// block is flagged in /v1/stats instead of silently corrupting merges.
func TestGatewayStatsTopologyMismatch(t *testing.T) {
	r, _ := NewRouter([]int{12, 9}, 2)
	fakes := []*fakeShard{newFakeShard(t, 0, 2, r, 2), newFakeShard(t, 1, 2, r, 2)}
	fakes[1].lo, fakes[1].hi = 0, 6 // lies about its block
	g := newTestGateway(t, r, fakes, nil)

	var sr gatewayStatsResponse
	rec := get(g, "/v1/stats")
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Shards[0].Mismatch != "" {
		t.Fatalf("honest shard flagged: %s", sr.Shards[0].Mismatch)
	}
	if sr.Shards[1].Mismatch == "" {
		t.Fatal("lying shard not flagged")
	}
}

// TestGatewayDrainShedsBacklog: shutdown with an undeliverable backlog
// accounts every event as drain-shed — the ledger balances even when
// the cluster goes down dirty.
func TestGatewayDrainShedsBacklog(t *testing.T) {
	r, _ := NewRouter([]int{12, 9}, 1)
	f := newFakeShard(t, 0, 1, r, 2)
	f.srv.Close() // nothing can be delivered
	g := newTestGateway(t, r, []*fakeShard{f}, func(c *Config) {
		c.DrainTimeout = 50 * time.Millisecond
	})
	g.Start()

	if rec := postIngest(g, "1 1 1\n2 1 1\n3 1 1\n"); rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d", rec.Code)
	}
	g.Shutdown()
	ov := g.Overload()
	if ov.ShedDrain != 3 || g.Pending() != 0 {
		t.Fatalf("drain ledger = %s pending=%d", ov.String(), g.Pending())
	}
	if ov.Produced != ov.Processed+ov.Failed+ov.Shed() {
		t.Fatalf("ledger does not balance after drain: %s", ov.String())
	}
	// Post-drain ingest refuses with 503.
	if rec := postIngest(g, "1 1 1\n"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain ingest = %d, want 503", rec.Code)
	}
}
