package perfmodel

import "spstream/internal/sptensor"

// LockSim is a discrete-event simulator of the lock-based MTTKRP: p
// virtual threads process their statically assigned nonzeros in order;
// each update computes its row product lock-free, then serializes on the
// striped mutex guarding its output row. It exists as an independent
// cross-check of the closed-form contention model in kernels.go — tests
// assert that both predict the same qualitative behaviour (hot rows
// flatten or invert thread scaling).
type LockSim struct {
	Threads  int
	PoolSize int
	// WorkNs is the lock-free row-product time per nonzero.
	WorkNs float64
	// UpdateNs is the in-critical-section accumulate time.
	UpdateNs float64
	// LockNs is the uncontended acquire/release cost.
	LockNs float64
	// ContendNs is the extra cost when the acquire had to wait (cache
	// line transfer from another core).
	ContendNs float64
	// Chunk is the round-robin scheduling chunk (nonzeros per grab).
	Chunk int
}

// Run simulates processing the given per-update output rows and returns
// the makespan in seconds. Updates are assigned to threads in
// round-robin chunks (like the real kernel's schedule) and then
// processed in global time order: at every step the thread with the
// earliest clock executes its next update, waiting if the target lock
// is still held. Processing in time order is what makes the simulation
// causally correct — a thread can only contend with updates that have
// actually happened.
func (ls LockSim) Run(rows []int32) float64 {
	p := ls.Threads
	if p < 1 {
		p = 1
	}
	chunk := ls.Chunk
	if chunk < 1 {
		chunk = 256
	}
	pool := ls.PoolSize
	if pool < 1 {
		pool = 1024
	}
	// Next-pow2 mask like the real pool.
	size := 1
	for size < pool {
		size <<= 1
	}
	mask := int32(size - 1)
	n := len(rows)
	if n == 0 {
		return 0
	}
	if p > (n+chunk-1)/chunk {
		p = (n + chunk - 1) / chunk
	}

	// Assign update indices to threads in chunked round-robin order.
	assigned := make([][]int32, p)
	for start := 0; start < n; start += chunk {
		tid := (start / chunk) % p
		end := start + chunk
		if end > n {
			end = n
		}
		assigned[tid] = append(assigned[tid], rows[start:end]...)
	}

	lockFree := make([]float64, size)
	clock := make([]float64, p)
	cursor := make([]int, p)
	remaining := p
	for remaining > 0 {
		// Pick the unfinished thread with the earliest clock (p ≤ 64,
		// linear scan is cheap).
		tid := -1
		for w := 0; w < p; w++ {
			if cursor[w] >= len(assigned[w]) {
				continue
			}
			if tid < 0 || clock[w] < clock[tid] {
				tid = w
			}
		}
		i := cursor[tid]
		cursor[tid]++
		if cursor[tid] >= len(assigned[tid]) {
			remaining--
		}
		// Deterministic ±25% jitter on the lock-free work breaks the
		// lockstep artifact of identical per-update costs.
		h := (uint64(tid)<<32 | uint64(i)) * 0x9E3779B97F4A7C15
		h ^= h >> 29
		jitter := 0.75 + 0.5*float64(h&0xFFFF)/65536.0
		t := clock[tid] + ls.WorkNs*jitter
		l := assigned[tid][i] & mask
		cost := ls.LockNs
		if lockFree[l] > t {
			t = lockFree[l]
			cost += ls.ContendNs
		}
		done := t + cost + ls.UpdateNs
		lockFree[l] = done
		clock[tid] = done
	}
	makespan := 0.0
	for _, t := range clock {
		if t > makespan {
			makespan = t
		}
	}
	return makespan * 1e-9
}

// SimulateLockMTTKRP runs the event simulator over an actual slice's
// target-mode rows with costs derived from the model parameters.
func (mo Model) SimulateLockMTTKRP(x *sptensor.Tensor, mode, k, p int) float64 {
	sim := LockSim{
		Threads:   p,
		PoolSize:  lockPoolSize,
		WorkNs:    mo.rowWork(k, x.NModes()),
		UpdateNs:  mo.updateWork(k),
		LockNs:    mo.P.LockNs,
		ContendNs: mo.P.ContendNs,
	}
	return sim.Run(x.Inds[mode])
}
