package baselines

import (
	"math"
	"testing"

	"spstream/internal/sptensor"
	"spstream/internal/synth"
)

// denseStream generates a near-dense planted stream where all methods
// should achieve meaningful fit.
func denseStream(t *testing.T, seed uint64) *sptensor.Stream {
	t.Helper()
	s, err := synth.Generate(synth.Config{
		Name:        "bl",
		Dists:       []synth.IndexDist{synth.Uniform{N: 10}, synth.Uniform{N: 10}, synth.Uniform{N: 10}},
		T:           6,
		NNZPerSlice: 2500,
		Values:      synth.ValuePlanted,
		PlantedRank: 2,
		NoiseStd:    0.01,
		Seed:        seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOnlineCPFitsPlantedData(t *testing.T) {
	s := denseStream(t, 1)
	o, err := NewOnlineCP(s.Dims, 4, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	var lastFit float64
	for _, sl := range s.Slices {
		if err := o.ProcessSlice(sl); err != nil {
			t.Fatal(err)
		}
		lastFit = o.Fit(sl)
	}
	if o.T() != s.T() {
		t.Fatal("slice counter wrong")
	}
	if math.IsNaN(lastFit) || lastFit < 0.5 {
		t.Fatalf("OnlineCP fit %.3f too low on static planted data", lastFit)
	}
	for m := range s.Dims {
		if o.Factor(m).HasNaN() {
			t.Fatal("NaN in OnlineCP factors")
		}
	}
	if len(o.LastS()) != 4 {
		t.Fatal("temporal row length wrong")
	}
}

func TestOnlineSGDFitsPlantedData(t *testing.T) {
	s := denseStream(t, 2)
	o, err := NewOnlineSGD(s.Dims, 4, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	o.LearningRate = 0.003
	o.Passes = 4
	var lastFit float64
	for _, sl := range s.Slices {
		if err := o.ProcessSlice(sl); err != nil {
			t.Fatal(err)
		}
		lastFit = o.Fit(sl)
	}
	if math.IsNaN(lastFit) || lastFit < 0.3 {
		t.Fatalf("OnlineSGD fit %.3f too low on static planted data", lastFit)
	}
	for m := range s.Dims {
		if o.Factor(m).HasNaN() {
			t.Fatal("NaN in OnlineSGD factors")
		}
	}
}

// The paper's §II criticism of SGD: "finding the optimal learning rate
// is non-trivial". We demonstrate exactly that — the final fit swings
// wildly across a small grid of learning rates on the same stream
// (including outright divergence without the step clip), whereas
// CP-stream has no such knob.
func TestOnlineSGDLearningRateSensitivity(t *testing.T) {
	s := denseStream(t, 3)
	run := func(eta, clip float64) float64 {
		o, err := NewOnlineSGD(s.Dims, 4, 1, 7)
		if err != nil {
			t.Fatal(err)
		}
		o.LearningRate = eta
		o.MaxStep = clip
		fit := 0.0
		for _, sl := range s.Slices {
			if err := o.ProcessSlice(sl); err != nil {
				return math.Inf(-1) // divergence shows up as a solve failure
			}
			fit = o.Fit(sl)
		}
		if math.IsNaN(fit) {
			return math.Inf(-1)
		}
		return fit
	}
	// Unclipped, an aggressive rate must diverge or end far below the
	// clipped well-tuned run.
	reference := run(0.003, 0.5)
	wild := run(0.3, math.MaxFloat64)
	if !(math.IsInf(wild, -1) || wild < reference-0.1) {
		t.Fatalf("unclipped aggressive rate (fit %.3f) did not show instability vs reference %.3f", wild, reference)
	}
	// Across a rate grid the outcome spread must be large (the
	// sensitivity itself).
	fits := []float64{run(1e-4, 0.5), run(0.003, 0.5), run(0.3, 0.5)}
	minF, maxF := math.Inf(1), math.Inf(-1)
	for _, f := range fits {
		if math.IsInf(f, -1) {
			f = 0
		}
		minF = math.Min(minF, f)
		maxF = math.Max(maxF, f)
	}
	if maxF-minF < 0.1 {
		t.Fatalf("fit insensitive to learning rate: grid results %v", fits)
	}
}

func TestBaselineValidation(t *testing.T) {
	if _, err := NewOnlineCP([]int{10, 10}, 0, 1, 1); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := NewOnlineCP([]int{10}, 2, 1, 1); err == nil {
		t.Fatal("single mode accepted")
	}
	if _, err := NewOnlineSGD([]int{10, 10}, 0, 1, 1); err == nil {
		t.Fatal("rank 0 accepted")
	}
	if _, err := NewOnlineSGD([]int{10}, 2, 1, 1); err == nil {
		t.Fatal("single mode accepted")
	}
	o, err := NewOnlineCP([]int{10, 10}, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := sptensor.New(10, 10, 10)
	if err := o.ProcessSlice(bad); err == nil {
		t.Fatal("mode mismatch accepted")
	}
	og, err := NewOnlineSGD([]int{10, 10}, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := og.ProcessSlice(bad); err == nil {
		t.Fatal("mode mismatch accepted")
	}
}

func TestOnlineCPEmptySlice(t *testing.T) {
	o, err := NewOnlineCP([]int{8, 8}, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	empty := sptensor.New(8, 8)
	if err := o.ProcessSlice(empty); err != nil {
		t.Fatal(err)
	}
	if o.Fit(empty) != 0 {
		t.Fatal("empty-slice fit should be 0")
	}
}
